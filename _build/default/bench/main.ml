(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section and times the regeneration of each artifact with
   Bechamel (one Test.make per artifact), plus the headline
   evaluations-per-second measurement behind the paper's 100000x claim.

   Usage:
     dune exec bench/main.exe                 # all artifacts + timings
     dune exec bench/main.exe -- table4 fig5  # selected artifacts
     dune exec bench/main.exe -- --full       # Fig. 10 with 100000 samples
     dune exec bench/main.exe -- --no-bench   # skip the Bechamel timings *)

let section name f =
  Format.printf "@.===================== %s =====================@.@." name;
  f ();
  Format.printf "@."

let fig10_samples = ref 5000

let artifacts =
  [
    ("table1", fun () -> Experiments.Table1.print (Experiments.Table1.run ()));
    ("table2", Experiments.Setup_tables.print_table2);
    ("table3", Experiments.Setup_tables.print_table3);
    ("table4", fun () -> Experiments.Table4.print (Experiments.Table4.run ()));
    ("table5", fun () -> Experiments.Table5.print (Experiments.Table5.run ()));
    ("fig5", fun () -> Experiments.Tradeoff.print (Experiments.Tradeoff.fig5 ()));
    ("fig6", fun () -> Experiments.Fig6.print (Experiments.Fig6.run ()));
    ("fig7", fun () -> Experiments.Fig7.print (Experiments.Fig7.run ()));
    ("fig8", fun () -> Experiments.Tradeoff.print (Experiments.Tradeoff.fig8 ()));
    ("fig9", fun () -> Experiments.Fig9.print (Experiments.Fig9.run ()));
    ( "fig10",
      fun () ->
        Experiments.Fig10.print
          (Experiments.Fig10.run ~samples:!fig10_samples ()) );
    ( "ablations",
      fun () -> Experiments.Ablations.print (Experiments.Ablations.run ()) );
    ( "sensitivity",
      fun () ->
        Experiments.Sensitivity.print (Experiments.Sensitivity.run ()) );
    ( "extremes",
      fun () -> Experiments.Extremes.print (Experiments.Extremes.run ()) );
  ]

(* ------------------------------------------------------------------ *)
(* Bechamel timings: one Test.make per artifact (how long regenerating
   it takes) and the per-design evaluation speed (the quantity behind
   the paper's 100000x-faster-than-synthesis claim). *)

let speed_tests () =
  let open Bechamel in
  let xcp = Cnn.Model_zoo.xception () in
  let res50 = Cnn.Model_zoo.resnet50 () in
  let per_design =
    [
      Test.make ~name:"evaluate/Segmented4-XCp-VCU110"
        (Staged.stage (fun () ->
             Mccm.Evaluate.metrics xcp Platform.Board.vcu110
               (Arch.Baselines.segmented ~ces:4 xcp)));
      Test.make ~name:"evaluate/Hybrid7-XCp-VCU110"
        (Staged.stage (fun () ->
             Mccm.Evaluate.metrics xcp Platform.Board.vcu110
               (Arch.Baselines.hybrid ~ces:7 xcp)));
      Test.make ~name:"evaluate/SegmentedRR2-Res50-ZC706"
        (Staged.stage (fun () ->
             Mccm.Evaluate.metrics res50 Platform.Board.zc706
               (Arch.Baselines.segmented_rr ~ces:2 res50)));
      Test.make ~name:"surrogate/Hybrid7-XCp-VCU110"
        (Staged.stage (fun () ->
             Sim.Simulate.evaluate xcp Platform.Board.vcu110
               (Arch.Baselines.hybrid ~ces:7 xcp)));
    ]
  in
  let artifact_tests =
    [
      Test.make ~name:"artifact/table1"
        (Staged.stage (fun () -> ignore (Experiments.Table1.run ())));
      Test.make ~name:"artifact/fig5"
        (Staged.stage (fun () -> ignore (Experiments.Tradeoff.fig5 ())));
      Test.make ~name:"artifact/fig6"
        (Staged.stage (fun () -> ignore (Experiments.Fig6.run ())));
      Test.make ~name:"artifact/fig7"
        (Staged.stage (fun () -> ignore (Experiments.Fig7.run ())));
      Test.make ~name:"artifact/fig8"
        (Staged.stage (fun () -> ignore (Experiments.Tradeoff.fig8 ())));
      Test.make ~name:"artifact/fig9"
        (Staged.stage (fun () -> ignore (Experiments.Fig9.run ())));
      Test.make ~name:"artifact/fig10-100designs"
        (Staged.stage (fun () ->
             ignore (Experiments.Fig10.run ~samples:100 ())));
    ]
  in
  Test.make_grouped ~name:"mccm" (per_design @ artifact_tests)

let run_bechamel () =
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 1.0) () in
  let raw =
    Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] (speed_tests ())
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (t :: _) -> t
          | _ -> Float.nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort compare
  in
  let table =
    Util.Table.create ~title:"Bechamel timings (monotonic clock)"
      ~columns:[ ("benchmark", Util.Table.Left); ("time/run", Util.Table.Right) ]
      ()
  in
  List.iter
    (fun (name, ns) ->
      Util.Table.add_row table
        [ name; Format.asprintf "%a" Util.Units.pp_seconds (ns *. 1e-9) ])
    rows;
  Util.Table.print table;
  (* The paper's speed claim: ~6.3 ms per design vs ~1 hour of synthesis. *)
  match List.assoc_opt "mccm/evaluate/Hybrid7-XCp-VCU110" rows with
  | Some ns when not (Float.is_nan ns) ->
    let per_design_s = ns *. 1e-9 in
    Format.printf
      "@.One MCCM evaluation takes %a; against the paper's ~1 h synthesis \
       per design that is a %.0fx speedup (paper: ~100000x at 6.3 ms per \
       design).@."
      Util.Units.pp_seconds per_design_s
      (3600.0 /. per_design_s)
  | _ -> ()

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let flags, picks = List.partition (fun a -> String.length a > 1 && a.[0] = '-') args in
  if List.mem "--full" flags then fig10_samples := 100000;
  let run_bench = not (List.mem "--no-bench" flags) in
  let selected =
    if picks = [] then artifacts
    else
      List.filter_map
        (fun p ->
          match List.assoc_opt p artifacts with
          | Some f -> Some (p, f)
          | None ->
            Format.eprintf "unknown artifact %s (have: %s)@." p
              (String.concat ", " (List.map fst artifacts));
            None)
        picks
  in
  List.iter (fun (name, f) -> section name f) selected;
  if run_bench && picks = [] then section "speed (Bechamel)" run_bechamel
