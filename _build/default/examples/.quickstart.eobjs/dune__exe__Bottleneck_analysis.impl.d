examples/bottleneck_analysis.ml: Arch Cnn Float Format List Mccm Platform Util
