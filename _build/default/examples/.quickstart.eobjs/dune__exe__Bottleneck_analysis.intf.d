examples/bottleneck_analysis.mli:
