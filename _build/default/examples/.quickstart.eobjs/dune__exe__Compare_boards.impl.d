examples/compare_boards.ml: Arch Cnn Format List Mccm Platform Sys Util
