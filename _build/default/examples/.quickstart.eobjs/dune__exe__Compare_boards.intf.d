examples/compare_boards.mli:
