examples/custom_model.ml: Arch Cnn Dse Format List Mccm Platform String
