examples/explore_design_space.ml: Arch Cnn Dse Format List Mccm Platform Sys Util
