examples/explore_design_space.mli:
