examples/quickstart.ml: Arch Cnn Format List Mccm Platform Printf Util
