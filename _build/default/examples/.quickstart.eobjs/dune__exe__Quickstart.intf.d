examples/quickstart.mli:
