(* Use Case 2 (fine-grained evaluation): find an accelerator's
   performance bottleneck and quantify what an optimization — here weight
   compression — would buy, segment by segment.

   The paper's example: SegmentedRR with 2 CEs on ResNet50 / ZC706 is
   memory-bound in its tail segments; compression helps only there, and
   only on weights.

   Run with: dune exec examples/bottleneck_analysis.exe *)

let () =
  let model = Cnn.Model_zoo.resnet50 () in
  let board = Platform.Board.zc706 in
  let archi = Arch.Baselines.segmented_rr ~ces:2 model in
  let e = Mccm.Evaluate.evaluate model board archi in
  let b = e.Mccm.Evaluate.breakdown in

  Format.printf "Fine-grained evaluation of %s on %s / %s@.@."
    archi.Arch.Block.name model.Cnn.Model.abbreviation
    board.Platform.Board.name;
  Format.printf "%a@.@." Mccm.Breakdown.pp b;

  (* Identify memory-bound segments: where transfer time exceeds compute
     time, the engines idle waiting for data. *)
  let memory_bound =
    List.filter
      (fun (s : Mccm.Breakdown.segment) ->
        s.Mccm.Breakdown.memory_s > s.Mccm.Breakdown.compute_s)
      b.Mccm.Breakdown.segments
  in
  Format.printf
    "%d of %d segments are memory-bound; engines idle %.1f%% of the time:@."
    (List.length memory_bound)
    (List.length b.Mccm.Breakdown.segments)
    (100.0 *. b.Mccm.Breakdown.stall_fraction);
  List.iter
    (fun (s : Mccm.Breakdown.segment) ->
      Format.printf "  %-6s memory %a vs compute %a (%a of traffic)@."
        s.Mccm.Breakdown.label Util.Units.pp_seconds s.Mccm.Breakdown.memory_s
        Util.Units.pp_seconds s.Mccm.Breakdown.compute_s Mccm.Access.pp
        s.Mccm.Breakdown.accesses)
    memory_bound;

  (* What-if: compress weights 2x, but only for the memory-bound
     segments' layers (the paper's point — applying compression where it
     is pure overhead wastes resources).  A segment's time under
     compression is bounded below by its compute time. *)
  let whatif_time ratio =
    List.fold_left
      (fun acc (s : Mccm.Breakdown.segment) ->
        if s.Mccm.Breakdown.memory_s > s.Mccm.Breakdown.compute_s then begin
          let w =
            float_of_int
              s.Mccm.Breakdown.accesses.Mccm.Access.weights_bytes
            /. ratio
          in
          let fm = float_of_int s.Mccm.Breakdown.accesses.Mccm.Access.fms_bytes in
          let mem =
            (w +. fm) /. board.Platform.Board.bandwidth_bytes_per_sec
          in
          acc +. Float.max s.Mccm.Breakdown.compute_s mem
        end
        else acc +. s.Mccm.Breakdown.time_s)
      0.0 b.Mccm.Breakdown.segments
  in
  let base = whatif_time 1.0 in
  Format.printf
    "@.What-if, compressing only the bottleneck segments' weights:@.";
  List.iter
    (fun ratio ->
      Format.printf "  %.1fx weight compression -> %a total (%.1f%% faster)@."
        ratio Util.Units.pp_seconds (whatif_time ratio)
        (100.0 *. (1.0 -. (whatif_time ratio /. base))))
    [ 1.5; 2.0; 4.0 ];

  (* And the paper's second point: FM compression would be pure overhead
     here because weights dominate the traffic. *)
  let acc = b.Mccm.Breakdown.accesses in
  Format.printf
    "@.Traffic split: %a — compressing FMs could save at most %.1f%% of \
     accesses.@."
    Mccm.Access.pp acc
    (100.0
    *. float_of_int acc.Mccm.Access.fms_bytes
    /. float_of_int (Mccm.Access.total acc))
