(* End-to-end evaluation across resource budgets (the workflow behind the
   paper's Use Case 1 / Table V): for every board and CNN, find the best
   baseline architecture per metric over CE counts 2-11.

   Run with: dune exec examples/compare_boards.exe [-- <cnn-abbrev>] *)

let best_for ~metric evals =
  let best =
    List.fold_left
      (fun acc (name, m) ->
        match acc with
        | None -> Some (name, m)
        | Some (_, mb) ->
          if Mccm.Metrics.better ~metric m mb then Some (name, m) else acc)
      None evals
  in
  match best with
  | Some (name, _) -> name
  | None -> "-"

let () =
  let models =
    match Sys.argv with
    | [| _ |] -> Cnn.Model_zoo.all ()
    | [| _; abbrev |] -> (
      match Cnn.Model_zoo.by_abbreviation abbrev with
      | Some m -> [ m ]
      | None ->
        Format.eprintf "unknown model %s@." abbrev;
        exit 1)
    | _ ->
      Format.eprintf "usage: compare_boards [<cnn-abbrev>]@.";
      exit 1
  in
  List.iter
    (fun board ->
      let table =
        Util.Table.create
          ~title:
            (Format.asprintf "Best baseline per metric on %a"
               Platform.Board.pp board)
          ~columns:
            [
              ("CNN", Util.Table.Left);
              ("latency", Util.Table.Left);
              ("throughput", Util.Table.Left);
              ("accesses", Util.Table.Left);
              ("buffers", Util.Table.Left);
            ]
          ()
      in
      List.iter
        (fun model ->
          let evals =
            List.map
              (fun (name, archi) ->
                (name, Mccm.Evaluate.metrics model board archi))
              (Arch.Baselines.all_instances model)
          in
          Util.Table.add_row table
            [
              model.Cnn.Model.abbreviation;
              best_for ~metric:`Latency evals;
              best_for ~metric:`Throughput evals;
              best_for ~metric:`Accesses evals;
              best_for ~metric:`Buffers evals;
            ])
        models;
      Util.Table.print table;
      print_newline ())
    Platform.Board.all
