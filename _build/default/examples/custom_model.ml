(* Evaluating accelerators for a CNN outside the built-in zoo: define the
   network in the textual model format (Cnn.Model_io), then run the whole
   methodology on it — sweep the baselines, pick a winner per metric, and
   refine a custom design with local search.

   Run with: dune exec examples/custom_model.exe *)

let description =
  {|
# A small edge-vision backbone: stem + four inverted-residual stages.
cnn EdgeNet Edge
input 3x96x96
conv 16 k=3 s=2
dw k=3 s=1
pw 24
pw 144 name=s2_exp
dw k=3 s=2 name=s2_dw
pw 32 name=s2_prj
pw 192 extra=18432 name=s3_exp
dw k=3 s=1 extra=18432 name=s3_dw
pw 32 extra=18432 name=s3_prj
pw 192 name=s4_exp
dw k=5 s=2 name=s4_dw
pw 64 name=s4_prj
pw 384 name=s5_exp
dw k=5 s=2 name=s5_dw
pw 96 name=s5_prj
pw 256 name=head
|}

let () =
  let model =
    match Cnn.Model_io.of_string description with
    | Ok m -> m
    | Error e ->
      Format.eprintf "model parse error: %s@." e;
      exit 1
  in
  let board = Platform.Board.zc706 in
  Format.printf "%a@.@." Cnn.Model.pp_summary model;

  (* Baselines. *)
  let candidates =
    List.filter_map
      (fun (name, archi) ->
        let m = Mccm.Evaluate.metrics model board archi in
        if m.Mccm.Metrics.feasible then Some (name, m) else None)
      (Arch.Baselines.all_instances model)
  in
  let best metric =
    let cs =
      List.map
        (fun (label, metrics) -> { Dse.Select.label; metrics })
        candidates
    in
    String.concat " " (Dse.Select.winner_labels ~metric cs)
  in
  Format.printf "Best baselines (10%% tie rule):@.";
  Format.printf "  latency:    %s@." (best `Latency);
  Format.printf "  throughput: %s@." (best `Throughput);
  Format.printf "  accesses:   %s@." (best `Accesses);
  Format.printf "  buffers:    %s@.@." (best `Buffers);

  (* Refine a custom design toward throughput. *)
  let seed = { Arch.Custom.pipelined_layers = 3; tail_boundaries = [ 9 ] } in
  let steps =
    Dse.Enumerate.local_search
      ~objective:(fun m -> m.Mccm.Metrics.throughput_ips)
      model board seed
  in
  Format.printf "Local search from %s:@."
    (Arch.Notation.to_string (Arch.Custom.arch_of_spec model seed));
  List.iter
    (fun (s : Dse.Enumerate.step) ->
      Format.printf "  %-26s -> %5.1f inf/s  %s@." s.Dse.Enumerate.moved
        s.Dse.Enumerate.metrics.Mccm.Metrics.throughput_ips
        (Arch.Notation.to_string
           (Arch.Custom.arch_of_spec model s.Dse.Enumerate.spec)))
    steps
