(* Use Case 3 (design-space exploration): MCCM's millisecond evaluation
   makes it practical to search the space of custom CE arrangements — a
   Hybrid-like pipelined first block followed by Segmented-like blocks —
   and beat the fixed baseline architectures on the throughput/buffer
   trade-off.

   Run with: dune exec examples/explore_design_space.exe [-- <samples>] *)

let () =
  let samples =
    match Sys.argv with
    | [| _; n |] -> int_of_string n
    | _ -> 3000
  in
  let model = Cnn.Model_zoo.xception () in
  let board = Platform.Board.vcu110 in

  Format.printf "Design space: %.3g custom architectures (CE counts 2-11)@."
    (Dse.Space.total_designs
       ~num_layers:(Cnn.Model.num_layers model)
       ~ce_counts:Arch.Baselines.default_ce_counts);

  (* The two promising baselines from the paper's Fig. 8. *)
  let seg4 =
    Mccm.Evaluate.metrics model board (Arch.Baselines.segmented ~ces:4 model)
  in
  let hyb7 =
    Mccm.Evaluate.metrics model board (Arch.Baselines.hybrid ~ces:7 model)
  in
  Format.printf "Baselines:@.  Segmented/4: %a@.  Hybrid/7:    %a@.@."
    Mccm.Metrics.pp seg4 Mccm.Metrics.pp hyb7;

  let r = Dse.Explore.run ~samples model board in
  Format.printf "Explored %d designs in %.1f s (%.2f ms per design)@.@."
    samples r.Dse.Explore.elapsed_s
    (1000.0 *. r.Dse.Explore.elapsed_s /. float_of_int samples);

  Format.printf "Throughput/buffer Pareto front:@.";
  List.iter
    (fun (p : Dse.Explore.evaluated Dse.Pareto.point) ->
      let e = p.Dse.Pareto.item in
      Format.printf "  %-44s thr %6.1f inf/s, buffers %a@."
        (Arch.Notation.to_string
           (Arch.Custom.arch_of_spec model e.Dse.Explore.spec))
        e.Dse.Explore.metrics.Mccm.Metrics.throughput_ips Util.Units.pp_bytes
        e.Dse.Explore.metrics.Mccm.Metrics.buffer_bytes)
    r.Dse.Explore.front;

  match Dse.Explore.improvement_over r ~reference:seg4 with
  | None -> print_endline "no design qualifies against Segmented/4"
  | Some (buffer_cut, throughput_gain) ->
    Format.printf
      "@.vs Segmented/4: same-or-better throughput at %.0f%% smaller \
       buffers; up to %.0f%% more throughput within its buffer budget@."
      (100.0 *. buffer_cut)
      (100.0 *. throughput_gain)
