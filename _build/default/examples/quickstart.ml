(* Quickstart: express three state-of-the-art multiple-CE accelerators,
   evaluate them with MCCM on one board, and print the paper's four
   metrics side by side (the workflow behind Table I).

   Run with: dune exec examples/quickstart.exe *)

let () =
  let model = Cnn.Model_zoo.resnet50 () in
  let board = Platform.Board.zc706 in
  Format.printf "Model: %a@." Cnn.Model.pp_summary model;
  Format.printf "Board: %a@.@." Platform.Board.pp board;

  (* The three architectural patterns of the paper, 4 CEs each.  The same
     descriptions can be written in the paper's notation and parsed with
     Arch.Notation.parse_arch; see the README. *)
  let candidates =
    [
      Arch.Baselines.segmented ~ces:4 model;
      Arch.Baselines.segmented_rr ~ces:4 model;
      Arch.Baselines.hybrid ~ces:4 model;
    ]
  in

  let table =
    Util.Table.create ~title:"MCCM evaluation (ResNet50 on ZC706, 4 CEs)"
      ~columns:
        [
          ("architecture", Util.Table.Left);
          ("latency", Util.Table.Right);
          ("throughput", Util.Table.Right);
          ("buffers", Util.Table.Right);
          ("accesses", Util.Table.Right);
        ]
      ()
  in
  List.iter
    (fun archi ->
      let m = Mccm.Evaluate.metrics model board archi in
      Util.Table.add_row table
        [
          archi.Arch.Block.name;
          Format.asprintf "%a" Util.Units.pp_seconds m.Mccm.Metrics.latency_s;
          Printf.sprintf "%.1f inf/s" m.Mccm.Metrics.throughput_ips;
          Format.asprintf "%a" Util.Units.pp_bytes m.Mccm.Metrics.buffer_bytes;
          Format.asprintf "%a" Util.Units.pp_bytes
            (Mccm.Metrics.accesses_bytes m);
        ])
    candidates;
  Util.Table.print table;

  (* The notation round-trip: any of these accelerators can be expressed
     as a string and parsed back. *)
  let seg = List.hd candidates in
  Format.printf "@.Notation: %s@." (Arch.Notation.to_string seg)
