lib/arch/baselines.ml: Array Block Cnn List Printf Util
