lib/arch/baselines.mli: Block Cnn
