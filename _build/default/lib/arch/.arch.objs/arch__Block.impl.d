lib/arch/block.ml: Format Int List Printf Set
