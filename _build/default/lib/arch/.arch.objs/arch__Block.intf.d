lib/arch/block.mli: Format
