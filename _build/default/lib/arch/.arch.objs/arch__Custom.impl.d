lib/arch/custom.ml: Array Block Cnn Format List Printf Util
