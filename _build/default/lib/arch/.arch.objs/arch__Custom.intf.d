lib/arch/custom.mli: Block Cnn Format
