lib/arch/notation.ml: Block Format List Option String
