lib/arch/notation.mli: Block
