lib/arch/shorthand.ml: Baselines Cnn List Notation Option Printf String
