lib/arch/shorthand.mli: Block Cnn
