let check_ces ~ces ~num_layers ~what =
  if ces < 2 then
    invalid_arg (what ^ ": a multiple-CE accelerator needs at least 2 CEs");
  if ces > num_layers then
    invalid_arg
      (Printf.sprintf "%s: %d CEs exceed the model's %d layers" what ces
         num_layers)

let macs_weights model =
  Array.init (Cnn.Model.num_layers model) (fun i ->
      Cnn.Layer.macs (Cnn.Model.layer model i))

let segmented ~ces model =
  let n = Cnn.Model.num_layers model in
  check_ces ~ces ~num_layers:n ~what:"Baselines.segmented";
  let ranges =
    Util.Partition.min_max_partition ~weights:(macs_weights model) ~parts:ces
  in
  let blocks =
    List.mapi
      (fun i (first, last) -> Block.Single { ce = i; first; last })
      ranges
  in
  Block.arch
    ~name:(Printf.sprintf "Segmented/%d" ces)
    ~style:Block.Segmented ~blocks ~coarse_pipelined:true ~num_layers:n

let segmented_rr ~ces model =
  let n = Cnn.Model.num_layers model in
  check_ces ~ces ~num_layers:n ~what:"Baselines.segmented_rr";
  let blocks =
    [ Block.Pipelined { ce_first = 0; ce_last = ces - 1; first = 0; last = n - 1 } ]
  in
  Block.arch
    ~name:(Printf.sprintf "SegmentedRR/%d" ces)
    ~style:Block.Segmented_rr ~blocks ~coarse_pipelined:false ~num_layers:n

let hybrid ~ces model =
  let n = Cnn.Model.num_layers model in
  check_ces ~ces ~num_layers:n ~what:"Baselines.hybrid";
  if ces - 1 >= n then
    invalid_arg "Baselines.hybrid: no layers left for the single-CE part";
  let blocks =
    [
      Block.Pipelined { ce_first = 0; ce_last = ces - 2; first = 0; last = ces - 2 };
      Block.Single { ce = ces - 1; first = ces - 1; last = n - 1 };
    ]
  in
  Block.arch
    ~name:(Printf.sprintf "Hybrid/%d" ces)
    ~style:Block.Hybrid ~blocks ~coarse_pipelined:true ~num_layers:n

let hybrid_dual ~ces model =
  let n = Cnn.Model.num_layers model in
  if ces < 3 then
    invalid_arg "Baselines.hybrid_dual: needs at least 3 CEs (1 + 2)";
  if ces > n then
    invalid_arg
      (Printf.sprintf "Baselines.hybrid_dual: %d CEs exceed the model's %d layers"
         ces n);
  if ces - 2 >= n - 1 then
    invalid_arg "Baselines.hybrid_dual: too few layers for the second part";
  let blocks =
    [
      Block.Pipelined { ce_first = 0; ce_last = ces - 3; first = 0; last = ces - 3 };
      Block.Pipelined { ce_first = ces - 2; ce_last = ces - 1; first = ces - 2; last = n - 1 };
    ]
  in
  Block.arch
    ~name:(Printf.sprintf "HybridDual/%d" ces)
    ~style:Block.Hybrid ~blocks ~coarse_pipelined:true ~num_layers:n

let single_ce model =
  let n = Cnn.Model.num_layers model in
  Block.arch ~name:"SingleCE"
    ~style:Block.Segmented
    ~blocks:[ Block.Single { ce = 0; first = 0; last = n - 1 } ]
    ~coarse_pipelined:false ~num_layers:n

let layer_per_ce model =
  let n = Cnn.Model.num_layers model in
  Block.arch ~name:"LayerPerCE"
    ~style:Block.Segmented_rr
    ~blocks:[ Block.Pipelined { ce_first = 0; ce_last = n - 1; first = 0; last = n - 1 } ]
    ~coarse_pipelined:false ~num_layers:n

let default_ce_counts = List.init 10 (fun i -> i + 2)

let all_instances model =
  List.concat_map
    (fun ces ->
      [
        (Printf.sprintf "Segmented/%d" ces, segmented ~ces model);
        (Printf.sprintf "SegmentedRR/%d" ces, segmented_rr ~ces model);
        (Printf.sprintf "Hybrid/%d" ces, hybrid ~ces model);
      ])
    default_ce_counts
