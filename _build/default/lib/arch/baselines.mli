(** Generators for the three state-of-the-art multiple-CE architectural
    patterns of the paper (Section II-C, Fig. 2), parameterised by CE
    count.  The paper evaluates each with 2 to 11 CEs
    (Section V-A3). *)

val segmented : ces:int -> Cnn.Model.t -> Block.arch
(** Segmented (Shen et al.): the CNN is split into [ces] consecutive
    segments with MAC-balanced boundaries; each segment is a single-CE
    block; coarse-grained (whole-input) pipelining runs between segments.
    @raise Invalid_argument if [ces < 2] or [ces] exceeds the layer
    count. *)

val segmented_rr : ces:int -> Cnn.Model.t -> Block.arch
(** SegmentedRR (Wei et al., TGPA): one pipelined-CEs block over all
    layers; the [ces] engines process the layers round-robin at tile
    granularity.  @raise Invalid_argument if [ces < 2] or [ces] exceeds
    the layer count. *)

val hybrid : ces:int -> Cnn.Model.t -> Block.arch
(** Hybrid (Qararyah et al., FiBHA): the first [ces - 1] layers run on a
    tile-grained pipelined-CEs block (one engine per layer) and the
    remaining layers on one larger single-CE block; coarse-grained
    pipelining joins the two parts.  @raise Invalid_argument if [ces < 2]
    or if fewer than one layer would remain for the second part. *)

val hybrid_dual : ces:int -> Cnn.Model.t -> Block.arch
(** The paper's "Hybrid (b)" variant: when a CNN mixes convolution types,
    the Hybrid's second part splits into two sub-engines (Qararyah et
    al.).  Modelled as the first [ces - 2] layers on a tile-pipelined
    block plus a two-engine pipelined block over the rest — on
    depthwise-separable CNNs the round-robin assignment puts depthwise
    and pointwise layers on alternating engines.
    @raise Invalid_argument if [ces < 3] or too few layers remain. *)

val single_ce : Cnn.Model.t -> Block.arch
(** The generic reusable-engine extreme (paper Section II-D): one engine
    processes every layer.  Not a multiple-CE accelerator — included as
    the comparison point the literature optimises against. *)

val layer_per_ce : Cnn.Model.t -> Block.arch
(** The opposite extreme: one dedicated engine per layer, fully
    pipelined.  "Resource-demanding and not scalable" (Section II-C) —
    included to let the methodology demonstrate exactly that. *)

val default_ce_counts : int list
(** The CE counts the paper sweeps: 2 to 11. *)

val all_instances : Cnn.Model.t -> (string * Block.arch) list
(** Every baseline at every default CE count, labelled e.g.
    ["Segmented/4"]. *)
