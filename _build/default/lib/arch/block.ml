type t =
  | Single of { ce : int; first : int; last : int }
  | Pipelined of { ce_first : int; ce_last : int; first : int; last : int }

type style = Segmented | Segmented_rr | Hybrid | Custom

type arch = {
  name : string;
  style : style;
  blocks : t list;
  coarse_pipelined : bool;
}

let layer_range = function
  | Single { first; last; _ } -> (first, last)
  | Pipelined { first; last; _ } -> (first, last)

let num_layers_of_block b =
  let first, last = layer_range b in
  last - first + 1

let ce_count = function
  | Single _ -> 1
  | Pipelined { ce_first; ce_last; _ } -> ce_last - ce_first + 1

let ces_of_block = function
  | Single { ce; _ } -> [ ce ]
  | Pipelined { ce_first; ce_last; _ } ->
    List.init (ce_last - ce_first + 1) (fun i -> ce_first + i)

let validate_block b =
  let first, last = layer_range b in
  if first < 0 || last < first then
    invalid_arg "Block.arch: invalid layer range in block";
  match b with
  | Single { ce; _ } ->
    if ce < 0 then invalid_arg "Block.arch: negative CE index"
  | Pipelined { ce_first; ce_last; _ } ->
    if ce_first < 0 || ce_last < ce_first then
      invalid_arg "Block.arch: invalid CE range in block"

let arch ~name ~style ~blocks ~coarse_pipelined ~num_layers =
  if blocks = [] then invalid_arg "Block.arch: no blocks";
  List.iter validate_block blocks;
  let next =
    List.fold_left
      (fun expected b ->
        let first, last = layer_range b in
        if first <> expected then
          invalid_arg
            (Printf.sprintf
               "Block.arch: block starts at layer %d, expected %d" first
               expected);
        last + 1)
      0 blocks
  in
  if next <> num_layers then
    invalid_arg
      (Printf.sprintf "Block.arch: blocks cover %d layers, model has %d" next
         num_layers);
  { name; style; blocks; coarse_pipelined }

let num_blocks a = List.length a.blocks

let total_ces a =
  let module IS = Set.Make (Int) in
  List.fold_left
    (fun acc b -> List.fold_left (fun s ce -> IS.add ce s) acc (ces_of_block b))
    IS.empty a.blocks
  |> IS.cardinal

let style_to_string = function
  | Segmented -> "Segmented"
  | Segmented_rr -> "SegmentedRR"
  | Hybrid -> "Hybrid"
  | Custom -> "Custom"

let pp_block ppf b =
  let first, last = layer_range b in
  let pp_layers ppf () =
    if first = last then Format.fprintf ppf "L%d" (first + 1)
    else Format.fprintf ppf "L%d-L%d" (first + 1) (last + 1)
  in
  match b with
  | Single { ce; _ } -> Format.fprintf ppf "%a:CE%d" pp_layers () (ce + 1)
  | Pipelined { ce_first; ce_last; _ } ->
    Format.fprintf ppf "%a:CE%d-CE%d" pp_layers () (ce_first + 1)
      (ce_last + 1)

let pp ppf a =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       pp_block)
    a.blocks
