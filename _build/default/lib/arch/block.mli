(** Multiple-CE accelerator descriptions.

    Any multiple-CE accelerator is a sequence of the paper's two building
    blocks (Section III-B): a {e single-CE} block processing a range of
    layers one by one, and a {e pipelined-CEs} block processing a range of
    layers concurrently at tile granularity.  Layer and CE indices here are
    0-based internally; the notation module converts to the paper's 1-based
    display form. *)

type t =
  | Single of { ce : int; first : int; last : int }
      (** one engine [ce] processes layers [first..last] sequentially *)
  | Pipelined of { ce_first : int; ce_last : int; first : int; last : int }
      (** engines [ce_first..ce_last] process layers [first..last] in a
          tile-grained pipeline; if the layer range exceeds the CE count
          the block processes CE-count layers at a time, round-robin *)

type style = Segmented | Segmented_rr | Hybrid | Custom

type arch = private {
  name : string;
  style : style;
  blocks : t list;
  coarse_pipelined : bool;
      (** whether consecutive blocks overlap on distinct inputs
          (inter-segment, whole-input pipelining — paper Section IV-B) *)
}

val arch :
  name:string -> style:style -> blocks:t list -> coarse_pipelined:bool ->
  num_layers:int -> arch
(** Builds and validates an architecture: blocks must cover layers
    [0 .. num_layers-1] contiguously in order; every block must be
    non-empty; CE indices must be non-negative with [ce_first <= ce_last].
    @raise Invalid_argument otherwise. *)

val layer_range : t -> int * int
(** Inclusive layer range of a block. *)

val num_layers_of_block : t -> int
(** Layer count of a block. *)

val ce_count : t -> int
(** Engines in a block: 1 for [Single]. *)

val ces_of_block : t -> int list
(** CE indices of a block in order. *)

val num_blocks : arch -> int
(** Block count. *)

val total_ces : arch -> int
(** Number of distinct engines across the architecture. *)

val style_to_string : style -> string
(** Display name: ["Segmented"], ["SegmentedRR"], ["Hybrid"],
    ["Custom"]. *)

val pp : Format.formatter -> arch -> unit
(** Prints the architecture in the paper's notation. *)
