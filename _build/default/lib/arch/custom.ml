type spec = { pipelined_layers : int; tail_boundaries : int list }

let total_ces spec = spec.pipelined_layers + List.length spec.tail_boundaries + 1

let arch_of_spec model spec =
  let n = Cnn.Model.num_layers model in
  let f = spec.pipelined_layers in
  if f < 1 then invalid_arg "Custom.arch_of_spec: pipelined_layers < 1";
  if f >= n then invalid_arg "Custom.arch_of_spec: no tail layers left";
  let rec check prev = function
    | [] -> ()
    | b :: rest ->
      if b <= prev || b >= n then
        invalid_arg "Custom.arch_of_spec: bad tail boundary";
      check b rest
  in
  check f spec.tail_boundaries;
  let starts = f :: spec.tail_boundaries in
  let ends =
    List.map (fun b -> b - 1) spec.tail_boundaries @ [ n - 1 ]
  in
  let tail_blocks =
    List.mapi
      (fun i (first, last) -> Block.Single { ce = f + i; first; last })
      (List.combine starts ends)
  in
  let blocks =
    Block.Pipelined { ce_first = 0; ce_last = f - 1; first = 0; last = f - 1 }
    :: tail_blocks
  in
  Block.arch
    ~name:
      (Printf.sprintf "Custom/p%d+s%d" f (List.length spec.tail_boundaries + 1))
    ~style:Block.Custom ~blocks ~coarse_pipelined:true ~num_layers:n

let balanced model ~pipelined_layers ~tail_segments =
  let n = Cnn.Model.num_layers model in
  let f = pipelined_layers in
  if f < 1 || f >= n then invalid_arg "Custom.balanced: bad pipelined_layers";
  if tail_segments < 1 || tail_segments > n - f then
    invalid_arg "Custom.balanced: bad tail_segments";
  let tail_weights =
    Array.init (n - f) (fun i -> Cnn.Layer.macs (Cnn.Model.layer model (f + i)))
  in
  let ranges =
    Util.Partition.min_max_partition ~weights:tail_weights
      ~parts:tail_segments
  in
  let tail_boundaries =
    List.filteri (fun i _ -> i > 0) (List.map (fun (first, _) -> f + first) ranges)
  in
  arch_of_spec model { pipelined_layers = f; tail_boundaries }

let pp_spec ppf spec =
  Format.fprintf ppf "pipelined=%d, boundaries=[%a]" spec.pipelined_layers
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       Format.pp_print_int)
    spec.tail_boundaries
