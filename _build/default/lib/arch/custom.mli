(** Custom architectures for design-space exploration (paper Use Case 3).

    The paper's DSE explores accelerators with "a Hybrid-like first block
    followed by Segmented-like blocks": a tile-grained pipelined-CEs block
    over the first [f] layers (one engine per layer), then [s] single-CE
    segments over the remaining layers, with coarse-grained pipelining
    throughout. *)

type spec = {
  pipelined_layers : int;  (** [f >= 1]: layers (and CEs) in the first block *)
  tail_boundaries : int list;
      (** 0-based indices of the first layer of every tail segment after
          the first tail segment; strictly increasing, all in
          [(pipelined_layers, num_layers)).  Empty means one tail
          segment. *)
}

val arch_of_spec : Cnn.Model.t -> spec -> Block.arch
(** Materialises a spec.  CE indices: [0 .. f-1] for the pipelined block,
    then one per tail segment.
    @raise Invalid_argument if the spec is out of range for the model,
    leaves no tail layer, or has non-increasing boundaries. *)

val balanced : Cnn.Model.t -> pipelined_layers:int -> tail_segments:int -> Block.arch
(** [balanced m ~pipelined_layers ~tail_segments] places the tail
    boundaries by MAC-balancing (the sensible default a designer would
    try first).  @raise Invalid_argument under the same conditions as
    {!arch_of_spec}. *)

val total_ces : spec -> int
(** Engines a spec uses: [pipelined_layers + tail segments]. *)

val pp_spec : Format.formatter -> spec -> unit
(** Debug printer. *)
