(* Hand-written lexer and recursive-descent parser; the grammar is small
   enough that error messages benefit from full manual control. *)

type token =
  | Lbrace
  | Rbrace
  | Comma
  | Colon
  | Dash
  | Word of string  (* identifier-like run: "L", "CE", "last", ... *)
  | Number of int

exception Syntax of string

let fail fmt = Format.kasprintf (fun s -> raise (Syntax s)) fmt

let tokenize s =
  let n = String.length s in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '{' then (emit Lbrace; incr i)
    else if c = '}' then (emit Rbrace; incr i)
    else if c = ',' then (emit Comma; incr i)
    else if c = ':' then (emit Colon; incr i)
    else if c = '-' then (emit Dash; incr i)
    else if c >= '0' && c <= '9' then begin
      let start = !i in
      while !i < n && s.[!i] >= '0' && s.[!i] <= '9' do
        incr i
      done;
      emit (Number (int_of_string (String.sub s start (!i - start))))
    end
    else if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') then begin
      let start = !i in
      while
        !i < n
        && ((s.[!i] >= 'a' && s.[!i] <= 'z')
           || (s.[!i] >= 'A' && s.[!i] <= 'Z'))
      do
        incr i
      done;
      emit (Word (String.lowercase_ascii (String.sub s start (!i - start))))
    end
    else fail "unexpected character %C at position %d" c !i
  done;
  List.rev !tokens

type state = { mutable rest : token list }

let peek st = match st.rest with [] -> None | t :: _ -> Some t

let advance st =
  match st.rest with
  | [] -> fail "unexpected end of input"
  | t :: rest ->
    st.rest <- rest;
    t

let expect st tok what =
  let t = advance st in
  if t <> tok then fail "expected %s" what

let expect_word st w =
  match advance st with
  | Word got when got = w -> ()
  | _ -> fail "expected '%s'" w

let expect_number st what =
  match advance st with
  | Number n -> n
  | _ -> fail "expected %s" what

(* layers ::= 'L' int ('-' ('L'? int | 'last'))? *)
let parse_layers st ~num_layers =
  expect_word st "l";
  let first = expect_number st "layer number" in
  if first < 1 || first > num_layers then
    fail "layer L%d out of range (model has %d layers)" first num_layers;
  let last =
    match peek st with
    | Some Dash -> begin
      ignore (advance st);
      match advance st with
      | Word "last" -> num_layers
      | Word "l" -> expect_number st "layer number after 'L'"
      | Number n -> n
      | _ -> fail "expected layer number or 'last' after '-'"
    end
    | _ -> first
  in
  if last < first || last > num_layers then
    fail "invalid layer range L%d-L%d (model has %d layers)" first last
      num_layers;
  (first - 1, last - 1)

(* ces ::= 'CE' int ('-' 'CE'? int)?
   An explicit range marks a pipelined-CEs block even when it names a
   single engine ("CE1-CE1" is a one-stage pipeline, "CE1" a plain
   single-CE block). *)
let parse_ces st =
  expect_word st "ce";
  let first = expect_number st "CE number" in
  if first < 1 then fail "CE numbers are 1-based";
  let last_opt =
    match peek st with
    | Some Dash -> begin
      ignore (advance st);
      match advance st with
      | Word "ce" -> Some (expect_number st "CE number after 'CE'")
      | Number n -> Some n
      | _ -> fail "expected CE number after '-'"
    end
    | _ -> None
  in
  (match last_opt with
  | Some last when last < first -> fail "invalid CE range CE%d-CE%d" first last
  | _ -> ());
  (first - 1, Option.map (fun l -> l - 1) last_opt)

let parse_entry st ~num_layers =
  let first, last = parse_layers st ~num_layers in
  expect st Colon "':'";
  match parse_ces st with
  | ce, None -> Block.Single { ce; first; last }
  | ce_first, Some ce_last -> Block.Pipelined { ce_first; ce_last; first; last }

let parse ~num_layers s =
  try
    let st = { rest = tokenize s } in
    expect st Lbrace "'{'";
    let rec entries acc =
      let entry = parse_entry st ~num_layers in
      match advance st with
      | Comma -> entries (entry :: acc)
      | Rbrace -> List.rev (entry :: acc)
      | _ -> fail "expected ',' or '}'"
    in
    let blocks = entries [] in
    (match peek st with
    | None -> ()
    | Some _ -> fail "trailing input after '}'");
    Ok blocks
  with Syntax msg -> Error msg

let parse_arch ?name ?(style = Block.Custom) ~coarse_pipelined ~num_layers s =
  match parse ~num_layers s with
  | Error _ as e -> e
  | Ok blocks -> (
    let name = Option.value name ~default:s in
    try Ok (Block.arch ~name ~style ~blocks ~coarse_pipelined ~num_layers)
    with Invalid_argument msg -> Error msg)

let to_string a = Format.asprintf "%a" Block.pp a
