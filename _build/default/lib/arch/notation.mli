(** The paper's textual notation for multiple-CE accelerators
    (Section III-B).

    Grammar (case-insensitive, whitespace ignored):
    {v
      arch   ::= '{' entry (',' entry)* '}'
      entry  ::= layers ':' ces
      layers ::= 'L' int ('-' ('L'? int | 'last'))?
      ces    ::= 'CE' int ('-' 'CE'? int)?
    v}

    Examples from the paper:
    - Segmented: [{L1-L4:CE1, L5-L6:CE2, L7-L9:CE3, L10-L12:CE4}]
    - SegmentedRR: [{L1-Last:CE1-CE4}]

    Layer and CE numbers are 1-based in the notation and converted to the
    0-based indices of {!Block}. *)

val parse : num_layers:int -> string -> (Block.t list, string) result
(** [parse ~num_layers s] parses blocks, resolving ['last'] to
    [num_layers].  Returns [Error msg] on any syntax or range problem
    (including non-contiguous coverage, which {!Block.arch} would also
    reject). *)

val parse_arch :
  ?name:string ->
  ?style:Block.style ->
  coarse_pipelined:bool ->
  num_layers:int ->
  string ->
  (Block.arch, string) result
(** [parse_arch] combines {!parse} and {!Block.arch}.  [name] defaults to
    the input string and [style] to [Custom]. *)

val to_string : Block.arch -> string
(** [to_string a] renders in the paper's notation; inverse of {!parse} up
    to whitespace and capitalisation. *)
