let known_forms =
  [
    "segmented/N"; "segmentedrr/N"; "hybrid/N"; "hybriddual/N"; "singlece";
    "layerperce"; "{Lx-Ly:CEz, ...}";
  ]

let with_ces lower prefix =
  let plen = String.length prefix in
  if
    String.length lower > plen + 1
    && String.sub lower 0 plen = prefix
    && lower.[plen] = '/'
  then
    int_of_string_opt (String.sub lower (plen + 1) (String.length lower - plen - 1))
  else None

let parse model s =
  let lower = String.lowercase_ascii (String.trim s) in
  let generators =
    [
      ("segmentedrr", fun ~ces -> Baselines.segmented_rr ~ces model);
      ("segmented", fun ~ces -> Baselines.segmented ~ces model);
      ("hybriddual", fun ~ces -> Baselines.hybrid_dual ~ces model);
      ("hybrid", fun ~ces -> Baselines.hybrid ~ces model);
    ]
  in
  let baseline =
    List.find_map
      (fun (prefix, make) ->
        Option.map (fun ces -> (make, ces)) (with_ces lower prefix))
      generators
  in
  match baseline with
  | Some (make, ces) -> (
    try Ok (make ~ces) with Invalid_argument msg -> Error msg)
  | None -> (
    match lower with
    | "singlece" -> Ok (Baselines.single_ce model)
    | "layerperce" -> Ok (Baselines.layer_per_ce model)
    | _ ->
      if String.length lower > 0 && lower.[0] = '{' then
        Notation.parse_arch ~coarse_pipelined:true
          ~num_layers:(Cnn.Model.num_layers model)
          s
      else
        Error
          (Printf.sprintf "cannot parse %S: expected one of %s" s
             (String.concat ", " known_forms)))
