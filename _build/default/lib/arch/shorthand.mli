(** Human-friendly architecture shorthand.

    Accepts the baseline names used throughout the paper's evaluation —
    ["segmented/4"], ["segmentedrr/2"], ["hybrid/7"], ["hybriddual/6"],
    ["singlece"], ["layerperce"] — as well as the full block notation of
    {!Notation} (anything starting with ['{']).  Used by the command-line
    tool and anywhere an accelerator is named in text. *)

val parse : Cnn.Model.t -> string -> (Block.arch, string) result
(** [parse model s] resolves [s] against [model] (baseline generators
    need the model's layer count and MAC profile).  Case-insensitive;
    surrounding whitespace ignored.  Notation strings are parsed with
    coarse-grained pipelining enabled (the convention for hand-written
    custom architectures). *)

val known_forms : string list
(** The accepted spellings, for error messages and help text. *)
