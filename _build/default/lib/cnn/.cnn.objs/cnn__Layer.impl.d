lib/cnn/layer.ml: Format Shape
