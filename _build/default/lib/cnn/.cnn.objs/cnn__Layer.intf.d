lib/cnn/layer.mli: Format Shape
