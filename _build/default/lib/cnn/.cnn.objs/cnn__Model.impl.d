lib/cnn/model.ml: Array Format Hashtbl Layer List Printf Util
