lib/cnn/model.mli: Format Layer Shape
