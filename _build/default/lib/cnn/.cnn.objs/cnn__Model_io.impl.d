lib/cnn/model_io.ml: Buffer Format In_channel Layer List Model Option Printf Shape String
