lib/cnn/model_io.mli: Model
