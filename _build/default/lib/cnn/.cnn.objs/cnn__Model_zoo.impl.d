lib/cnn/model_zoo.ml: Array Layer List Model Printf Shape String
