lib/cnn/model_zoo.mli: Model
