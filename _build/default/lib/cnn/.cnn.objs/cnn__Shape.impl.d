lib/cnn/shape.ml: Format
