lib/cnn/shape.mli: Format
