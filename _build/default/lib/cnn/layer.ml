type kind = Standard | Depthwise | Pointwise | Fully_connected

type t = {
  index : int;
  name : string;
  kind : kind;
  in_shape : Shape.t;
  out_channels : int;
  kernel : int;
  stride : int;
  padding : int;
  extra_resident_elements : int;
}

let v ~index ~name ~kind ~in_shape ~out_channels ~kernel ~stride ~padding
    ?(extra_resident_elements = 0) () =
  if out_channels <= 0 then invalid_arg "Layer.v: non-positive out_channels";
  if kernel <= 0 then invalid_arg "Layer.v: non-positive kernel";
  if stride <= 0 then invalid_arg "Layer.v: non-positive stride";
  if padding < 0 then invalid_arg "Layer.v: negative padding";
  if extra_resident_elements < 0 then
    invalid_arg "Layer.v: negative extra_resident_elements";
  (match kind with
  | Depthwise ->
    if out_channels <> in_shape.Shape.channels then
      invalid_arg "Layer.v: depthwise must preserve channel count"
  | Pointwise | Fully_connected ->
    if kernel <> 1 then invalid_arg "Layer.v: pointwise kernel must be 1"
  | Standard -> ());
  (* Raises if the spatial output would be empty. *)
  let _ = Shape.conv_output in_shape ~kernel ~stride ~padding ~out_channels in
  {
    index;
    name;
    kind;
    in_shape;
    out_channels;
    kernel;
    stride;
    padding;
    extra_resident_elements;
  }

let with_index l ~index = { l with index }

let out_shape l =
  Shape.conv_output l.in_shape ~kernel:l.kernel ~stride:l.stride
    ~padding:l.padding ~out_channels:l.out_channels

let weight_elements l =
  match l.kind with
  | Standard | Pointwise | Fully_connected ->
    l.out_channels * l.in_shape.Shape.channels * l.kernel * l.kernel
  | Depthwise -> l.in_shape.Shape.channels * l.kernel * l.kernel

let macs l =
  let o = out_shape l in
  let spatial = o.Shape.height * o.Shape.width in
  match l.kind with
  | Standard | Pointwise | Fully_connected ->
    spatial * l.out_channels * l.in_shape.Shape.channels * l.kernel * l.kernel
  | Depthwise -> spatial * l.in_shape.Shape.channels * l.kernel * l.kernel

let ifm_elements l = Shape.elements l.in_shape

let ofm_elements l = Shape.elements (out_shape l)

let fms_elements l = ifm_elements l + ofm_elements l + l.extra_resident_elements

let loop_extent l d =
  let o = out_shape l in
  match d with
  | `Filters -> (match l.kind with Depthwise -> 1 | _ -> l.out_channels)
  | `Channels -> l.in_shape.Shape.channels
  | `Height -> o.Shape.height
  | `Width -> o.Shape.width
  | `Kernel_h -> l.kernel
  | `Kernel_w -> l.kernel

let kind_to_string = function
  | Standard -> "conv"
  | Depthwise -> "dw"
  | Pointwise -> "pw"
  | Fully_connected -> "fc"

let pp ppf l =
  Format.fprintf ppf "L%d %s [%s %dx%d s%d] %a -> %a" (l.index + 1) l.name
    (kind_to_string l.kind) l.kernel l.kernel l.stride Shape.pp l.in_shape
    Shape.pp (out_shape l)
