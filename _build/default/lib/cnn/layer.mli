(** Convolutional-layer descriptions.

    MCCM never needs weight values, only layer structure: the six
    convolution loop extents (paper Section II-B), the weight footprint and
    the feature-map footprints.  Depthwise and pointwise convolutions are
    first-class because Hybrid architectures treat them specially; a fully
    connected layer is modelled as a 1x1 convolution over a 1x1 feature
    map. *)

type kind =
  | Standard          (** dense KxK convolution across all input channels *)
  | Depthwise         (** one KxK filter per channel, no cross-channel sum *)
  | Pointwise         (** 1x1 dense convolution *)
  | Fully_connected   (** dense layer, modelled as 1x1 conv on 1x1 FMs *)

type t = private {
  index : int;          (** position in the model, 0-based *)
  name : string;        (** human-readable, unique within a model *)
  kind : kind;
  in_shape : Shape.t;
  out_channels : int;
  kernel : int;         (** square kernel extent *)
  stride : int;
  padding : int;
  extra_resident_elements : int;
      (** feature-map elements beyond this layer's IFM and OFM that must
          stay live while it executes — residual shortcuts held for a later
          elementwise addition (paper Eq. 4 remark). *)
}

val v :
  index:int ->
  name:string ->
  kind:kind ->
  in_shape:Shape.t ->
  out_channels:int ->
  kernel:int ->
  stride:int ->
  padding:int ->
  ?extra_resident_elements:int ->
  unit ->
  t
(** Builds a layer.
    @raise Invalid_argument on non-positive kernel/stride/out_channels, on a
    depthwise layer whose [out_channels] differs from its input channels, on
    a pointwise/fully-connected layer with [kernel <> 1], or on an empty
    spatial output. *)

val with_index : t -> index:int -> t
(** [with_index l ~index] is [l] renumbered; used when models are assembled
    from block generators. *)

val out_shape : t -> Shape.t
(** OFM shape. *)

val weight_elements : t -> int
(** Number of trainable weights (biases excluded; they are negligible and
    the paper's model ignores them too). *)

val macs : t -> int
(** Multiply-accumulate operations for one inference of this layer. *)

val ifm_elements : t -> int
(** IFM element count. *)

val ofm_elements : t -> int
(** OFM element count. *)

val fms_elements : t -> int
(** [ifm_elements + ofm_elements + extra_resident_elements]: what a
    single-CE block must buffer to avoid FM spills (paper Eq. 4). *)

val loop_extent : t -> [ `Filters | `Channels | `Height | `Width | `Kernel_h | `Kernel_w ] -> int
(** [loop_extent l d] is the extent of convolution loop [d] for this layer;
    the "disjoint dimensions" DD of paper Eq. 1.  For a depthwise layer the
    [`Filters] extent is 1 and [`Channels] ranges over the channels. *)

val kind_to_string : kind -> string
(** Short printable name of the kind. *)

val pp : Format.formatter -> t -> unit
(** One-line summary. *)
