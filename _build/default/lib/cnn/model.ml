type t = { name : string; abbreviation : string; layers : Layer.t array }

let v ~name ~abbreviation ~layers =
  if layers = [] then invalid_arg "Model.v: empty layer list";
  let arr = Array.of_list layers in
  Array.iteri
    (fun i (l : Layer.t) ->
      if l.Layer.index <> i then
        invalid_arg
          (Printf.sprintf "Model.v: layer %s has index %d, expected %d"
             l.Layer.name l.Layer.index i))
    arr;
  let seen = Hashtbl.create (Array.length arr) in
  Array.iter
    (fun (l : Layer.t) ->
      if Hashtbl.mem seen l.Layer.name then
        invalid_arg ("Model.v: duplicate layer name " ^ l.Layer.name);
      Hashtbl.add seen l.Layer.name ())
    arr;
  { name; abbreviation; layers = arr }

let num_layers m = Array.length m.layers

let layer m i =
  if i < 0 || i >= Array.length m.layers then
    invalid_arg (Printf.sprintf "Model.layer: index %d out of range" i);
  m.layers.(i)

let check_range m ~first ~last =
  if first < 0 || last >= Array.length m.layers || first > last then
    invalid_arg
      (Printf.sprintf "Model: invalid layer range [%d, %d] in %s (%d layers)"
         first last m.name (Array.length m.layers))

let layers_in_range m ~first ~last =
  check_range m ~first ~last;
  List.init (last - first + 1) (fun i -> m.layers.(first + i))

let fold_range f m ~first ~last =
  check_range m ~first ~last;
  let acc = ref 0 in
  for i = first to last do
    acc := f !acc m.layers.(i)
  done;
  !acc

let total_weights m =
  Array.fold_left (fun acc l -> acc + Layer.weight_elements l) 0 m.layers

let total_macs m = Array.fold_left (fun acc l -> acc + Layer.macs l) 0 m.layers

let macs_in_range m ~first ~last =
  fold_range (fun acc l -> acc + Layer.macs l) m ~first ~last

let weights_in_range m ~first ~last =
  fold_range (fun acc l -> acc + Layer.weight_elements l) m ~first ~last

let max_fms_elements m ~first ~last =
  fold_range (fun acc l -> max acc (Layer.fms_elements l)) m ~first ~last

let input_shape m = m.layers.(0).Layer.in_shape

let output_elements m =
  Layer.ofm_elements m.layers.(Array.length m.layers - 1)

let pp_summary ppf m =
  Format.fprintf ppf "%s (%s): %d conv layers, %a weights, %a MACs" m.name
    m.abbreviation (num_layers m) Util.Units.pp_count
    (float_of_int (total_weights m))
    Util.Units.pp_count
    (float_of_int (total_macs m))
