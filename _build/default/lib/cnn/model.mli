(** CNN models as ordered sequences of convolutional layers.

    MCCM (like the accelerators it models) processes convolution layers in
    topological order; branch convolutions such as ResNet projection
    shortcuts are linearised into the sequence, and the buffering cost of
    live skip tensors is carried on each layer's
    [extra_resident_elements]. *)

type t = private {
  name : string;
  abbreviation : string;  (** the paper's short name, e.g. ["Res50"] *)
  layers : Layer.t array; (** indices are contiguous from 0 *)
}

val v : name:string -> abbreviation:string -> layers:Layer.t list -> t
(** Builds a model and validates it.
    @raise Invalid_argument if [layers] is empty, if layer indices are not
    [0..n-1] in order, or if two layers share a name. *)

val num_layers : t -> int
(** Layer count. *)

val layer : t -> int -> Layer.t
(** [layer m i] is the [i]-th (0-based) layer.
    @raise Invalid_argument when out of range. *)

val layers_in_range : t -> first:int -> last:int -> Layer.t list
(** [layers_in_range m ~first ~last] is the inclusive 0-based slice.
    @raise Invalid_argument on an invalid range. *)

val total_weights : t -> int
(** Sum of weight elements over all layers. *)

val total_macs : t -> int
(** Sum of MACs over all layers. *)

val macs_in_range : t -> first:int -> last:int -> int
(** Total MACs of an inclusive layer range. *)

val weights_in_range : t -> first:int -> last:int -> int
(** Total weight elements of an inclusive layer range. *)

val max_fms_elements : t -> first:int -> last:int -> int
(** Largest per-layer FM residency over the range (paper Eq. 4 first
    term). *)

val input_shape : t -> Shape.t
(** IFM shape of the first layer. *)

val output_elements : t -> int
(** OFM element count of the last layer. *)

val pp_summary : Format.formatter -> t -> unit
(** Multi-line summary: name, layer count, weights, MACs. *)
