(* Line-based parser and printer for CNN model descriptions. *)

(* ----------------------------------------------------------- lexing *)

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let tokens_of_line line =
  String.split_on_char ' ' (String.trim (strip_comment line))
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

(* key=value attributes after the positional arguments *)
let split_attr tok =
  match String.index_opt tok '=' with
  | Some i ->
    Some
      ( String.sub tok 0 i,
        String.sub tok (i + 1) (String.length tok - i - 1) )
  | None -> None

exception Parse_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

let parse_shape s =
  match String.split_on_char 'x' (String.lowercase_ascii s) with
  | [ c; h; w ] -> (
    match (int_of_string_opt c, int_of_string_opt h, int_of_string_opt w) with
    | Some c, Some h, Some w -> (
      try Shape.v ~channels:c ~height:h ~width:w
      with Invalid_argument msg -> fail "%s" msg)
    | _ -> fail "malformed shape %S (expected CxHxW)" s)
  | _ -> fail "malformed shape %S (expected CxHxW)" s

let parse_int what s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> fail "malformed %s %S" what s

(* ---------------------------------------------------------- parsing *)

type state = {
  mutable header : (string * string) option;
  mutable shape : Shape.t option;
  mutable rev_layers : Layer.t list;
  mutable count : int;
}

let attrs_of tokens =
  List.fold_left
    (fun (pos, attrs) tok ->
      match split_attr tok with
      | Some kv -> (pos, kv :: attrs)
      | None -> (tok :: pos, attrs))
    ([], []) tokens
  |> fun (pos, attrs) -> (List.rev pos, attrs)

let attr attrs key ~default ~of_string =
  match List.assoc_opt key attrs with
  | Some v -> of_string v
  | None -> default

let current_shape st =
  match st.shape with
  | Some s -> s
  | None -> fail "layer before 'input' line"

let add_layer st ~kind ~out_channels ~kernel ~stride ~extra ~name ~from =
  let in_shape = Option.value from ~default:(current_shape st) in
  let padding =
    match kind with
    | Layer.Pointwise | Layer.Fully_connected -> 0
    | Layer.Standard | Layer.Depthwise ->
      if kernel = 1 then 0 else Shape.same_padding ~kernel
  in
  let name =
    match name with
    | Some n -> n
    | None ->
      Printf.sprintf "%s%d" (Layer.kind_to_string kind) (st.count + 1)
  in
  let layer =
    try
      Layer.v ~index:st.count ~name ~kind ~in_shape ~out_channels ~kernel
        ~stride ~padding ~extra_resident_elements:extra ()
    with Invalid_argument msg -> fail "%s" msg
  in
  st.rev_layers <- layer :: st.rev_layers;
  st.count <- st.count + 1;
  (* Branch layers ([from=...]) do not advance the running shape. *)
  if from = None then st.shape <- Some (Layer.out_shape layer)

let conv_like st ~kind pos attrs =
  let out_channels =
    match (kind, pos) with
    | Layer.Depthwise, [] -> (current_shape st).Shape.channels
    | Layer.Depthwise, _ -> fail "dw takes no output-channel argument"
    | _, [ out ] -> parse_int "output channels" out
    | _, _ -> fail "expected exactly one output-channel argument"
  in
  let kernel =
    attr attrs "k"
      ~default:(match kind with Layer.Pointwise | Layer.Fully_connected -> 1 | _ -> 3)
      ~of_string:(parse_int "kernel")
  in
  let stride = attr attrs "s" ~default:1 ~of_string:(parse_int "stride") in
  let extra = attr attrs "extra" ~default:0 ~of_string:(parse_int "extra") in
  let name = List.assoc_opt "name" attrs in
  let from = Option.map parse_shape (List.assoc_opt "from" attrs) in
  add_layer st ~kind ~out_channels ~kernel ~stride ~extra ~name ~from

let pool st attrs =
  let stride = attr attrs "s" ~default:2 ~of_string:(parse_int "stride") in
  if stride <= 0 then fail "pool stride must be positive";
  let s = current_shape st in
  st.shape <-
    Some
      (Shape.v ~channels:s.Shape.channels
         ~height:(max 1 ((s.Shape.height + stride - 1) / stride))
         ~width:(max 1 ((s.Shape.width + stride - 1) / stride)))

let fc st pos attrs =
  let out = match pos with
    | [ out ] -> parse_int "output channels" out
    | _ -> fail "fc expects one output-channel argument"
  in
  (* Flatten the running feature map. *)
  let s = current_shape st in
  st.shape <- Some (Shape.v ~channels:(Shape.elements s) ~height:1 ~width:1);
  conv_like st ~kind:Layer.Fully_connected [ string_of_int out ] attrs

let set_shape st pos =
  match pos with
  | [ shape ] -> st.shape <- Some (parse_shape shape)
  | _ -> fail "set expects one CxHxW argument"

let parse_line st tokens =
  match tokens with
  | [] -> ()
  | keyword :: rest -> (
    let pos, attrs = attrs_of rest in
    match String.lowercase_ascii keyword with
    | "cnn" -> (
      match pos with
      | [ name; abbrev ] -> st.header <- Some (name, abbrev)
      | [ name ] -> st.header <- Some (name, name)
      | _ -> fail "cnn expects a name and an abbreviation")
    | "input" -> set_shape st pos
    | "set" -> set_shape st pos
    | "conv" -> conv_like st ~kind:Layer.Standard pos attrs
    | "dw" -> conv_like st ~kind:Layer.Depthwise pos attrs
    | "pw" -> conv_like st ~kind:Layer.Pointwise pos attrs
    | "fc" -> fc st pos attrs
    | "pool" -> pool st attrs
    | other -> fail "unknown keyword %S" other)

let of_string text =
  let st = { header = None; shape = None; rev_layers = []; count = 0 } in
  let lines = String.split_on_char '\n' text in
  try
    List.iteri
      (fun i line ->
        try parse_line st (tokens_of_line line)
        with Parse_error msg -> fail "line %d: %s" (i + 1) msg)
      lines;
    match st.header with
    | None -> Error "missing 'cnn <name> <abbrev>' header"
    | Some (name, abbreviation) -> (
      match List.rev st.rev_layers with
      | [] -> Error "model has no layers"
      | layers -> (
        try Ok (Model.v ~name ~abbreviation ~layers)
        with Invalid_argument msg -> Error msg))
  with Parse_error msg -> Error msg

(* --------------------------------------------------------- printing *)

let keyword_of_kind = function
  | Layer.Standard -> "conv"
  | Layer.Depthwise -> "dw"
  | Layer.Pointwise -> "pw"
  | Layer.Fully_connected -> "fc"

(* Infer the pooling stride that turns shape [a] into spatial shape [b]
   (same channels), if any. *)
let pool_stride a b =
  if a.Shape.channels <> b.Shape.channels then None
  else
    List.find_opt
      (fun s ->
        (a.Shape.height + s - 1) / s = b.Shape.height
        && (a.Shape.width + s - 1) / s = b.Shape.width)
      [ 2; 3; 4; 5; 6; 7; 8 ]

let print_layer buf (l : Layer.t) =
  Buffer.add_string buf (keyword_of_kind l.Layer.kind);
  (match l.Layer.kind with
  | Layer.Depthwise -> ()
  | _ -> Buffer.add_string buf (Printf.sprintf " %d" l.Layer.out_channels));
  if
    l.Layer.kernel
    <> (match l.Layer.kind with
       | Layer.Pointwise | Layer.Fully_connected -> 1
       | _ -> 3)
  then Buffer.add_string buf (Printf.sprintf " k=%d" l.Layer.kernel);
  if l.Layer.stride <> 1 then
    Buffer.add_string buf (Printf.sprintf " s=%d" l.Layer.stride);
  if l.Layer.extra_resident_elements <> 0 then
    Buffer.add_string buf
      (Printf.sprintf " extra=%d" l.Layer.extra_resident_elements);
  Buffer.add_string buf (Printf.sprintf " name=%s" l.Layer.name);
  Buffer.add_char buf '\n'

(* Printing mirrors the parser's running-shape semantics: before a layer
   whose input differs from the running shape, an explicit [pool] (same
   channels, spatial shrink) or [set] line moves the running shape to the
   layer's input; every layer then advances it.  This handles residual
   branches and concatenations without a special construct. *)
let to_string (m : Model.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "cnn %s %s\n" m.Model.name m.Model.abbreviation);
  let input = Model.input_shape m in
  Buffer.add_string buf (Printf.sprintf "input %s\n" (Shape.to_string input));
  let running = ref input in
  let n = Model.num_layers m in
  for i = 0 to n - 1 do
    let l = Model.layer m i in
    if not (Shape.equal l.Layer.in_shape !running) then begin
      (match pool_stride !running l.Layer.in_shape with
      | Some s -> Buffer.add_string buf (Printf.sprintf "pool s=%d\n" s)
      | None ->
        Buffer.add_string buf
          (Printf.sprintf "set %s\n" (Shape.to_string l.Layer.in_shape)));
      running := l.Layer.in_shape
    end;
    (* A fully connected layer re-flattens in the parser; print it only
       when the flattening reproduces this input shape. *)
    print_layer buf l;
    running := Layer.out_shape l
  done;
  Buffer.contents buf

let load_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error msg -> Error msg
