(** A small textual format for CNN models, so accelerators can be
    evaluated on networks outside the built-in zoo (e.g. through the
    command-line tool).

    Line-based; ['#'] starts a comment; blank lines are ignored:

    {v
      cnn TinyNet Tny
      input 3x32x32
      conv 16 k=3 s=1          # standard convolution, 16 filters
      dw k=3 s=2               # depthwise (preserves channels)
      pw 32                    # pointwise (1x1)
      pw 32 extra=16384        # keeps 16384 extra FM elements resident
      pool s=2                 # non-parametric pooling: spatial reduction
      fc 10                    # fully connected (1x1 conv on 1x1 FMs)
    v}

    Standard and depthwise convolutions use same-style padding; an
    optional [name=<id>] overrides the auto-generated layer name.  [fc]
    collapses the running feature map spatially before applying a dense
    layer.  *)

val of_string : string -> (Model.t, string) result
(** [of_string text] parses a model; [Error] carries a message with the
    offending line number. *)

val to_string : Model.t -> string
(** [to_string m] renders a model in the format above; pooling steps are
    re-derived from spatial shrinks between consecutive layers.
    [of_string (to_string m)] reconstructs a structurally identical
    model. *)

val load_file : string -> (Model.t, string) result
(** [load_file path] reads and parses a file. *)
