(* Structural generators for the evaluation CNNs.  Each generator threads a
   running feature-map shape through a small mutable builder; branch layers
   (projection shortcuts) read an explicit input shape and leave the running
   shape untouched. *)

module B = struct
  type t = {
    mutable shape : Shape.t;
    mutable rev_layers : Layer.t list;
    mutable count : int;
  }

  let create input = { shape = input; rev_layers = []; count = 0 }

  let push t layer =
    t.rev_layers <- layer :: t.rev_layers;
    t.count <- t.count + 1

  (* Append a layer consuming the running shape and advance it. *)
  let add t ~name ~kind ~out_channels ~kernel ~stride ?(extra = 0) () =
    let padding =
      match kind with
      | Layer.Pointwise | Layer.Fully_connected -> 0
      | Layer.Standard | Layer.Depthwise -> Shape.same_padding ~kernel
    in
    let layer =
      Layer.v ~index:t.count ~name ~kind ~in_shape:t.shape ~out_channels
        ~kernel ~stride ~padding ~extra_resident_elements:extra ()
    in
    push t layer;
    t.shape <- Layer.out_shape layer

  (* Append a branch layer that reads [from_shape] instead of the running
     shape (projection shortcuts); the running shape is unchanged.  Returns
     the branch OFM element count so callers can keep it resident. *)
  let add_branch t ~name ~kind ~from_shape ~out_channels ~kernel ~stride
      ?(extra = 0) () =
    let padding =
      match kind with
      | Layer.Pointwise | Layer.Fully_connected -> 0
      | Layer.Standard | Layer.Depthwise -> Shape.same_padding ~kernel
    in
    let layer =
      Layer.v ~index:t.count ~name ~kind ~in_shape:from_shape ~out_channels
        ~kernel ~stride ~padding ~extra_resident_elements:extra ()
    in
    push t layer;
    Layer.ofm_elements layer

  let conv t name out_channels kernel stride =
    add t ~name ~kind:Layer.Standard ~out_channels ~kernel ~stride ()

  let pw ?(extra = 0) t name out_channels stride =
    (* A strided 1x1 "pointwise" is a standard conv in our taxonomy so that
       the pointwise invariant (kernel = stride = 1 semantics) stays crisp;
       functionally both have kernel 1. *)
    if stride = 1 then
      add t ~name ~kind:Layer.Pointwise ~out_channels ~kernel:1 ~stride ~extra
        ()
    else
      add t ~name ~kind:Layer.Standard ~out_channels ~kernel:1 ~stride ~extra
        ()

  let dw ?(extra = 0) t name kernel stride =
    add t ~name ~kind:Layer.Depthwise
      ~out_channels:t.shape.Shape.channels ~kernel ~stride ~extra ()

  (* Non-parametric pooling: spatial reduction only, no layer appended. *)
  let pool t ~stride =
    let s = t.shape in
    t.shape <-
      Shape.v ~channels:s.Shape.channels
        ~height:(max 1 ((s.Shape.height + stride - 1) / stride))
        ~width:(max 1 ((s.Shape.width + stride - 1) / stride))

  let shape t = t.shape

  let finish t ~name ~abbreviation =
    Model.v ~name ~abbreviation ~layers:(List.rev t.rev_layers)
end

let imagenet_input = Shape.v ~channels:3 ~height:224 ~width:224

(* ---------------------------------------------------------------- ResNet *)

let resnet ~name ~abbreviation ~stage_depths =
  let b = B.create imagenet_input in
  B.conv b "stem" 64 7 2;
  B.pool b ~stride:2;
  let widths = [| 64; 128; 256; 512 |] in
  List.iteri
    (fun stage depth ->
      let mid = widths.(stage) in
      let out = mid * 4 in
      for block = 0 to depth - 1 do
        let stride = if block = 0 && stage > 0 then 2 else 1 in
        let tag = Printf.sprintf "s%db%d" (stage + 1) (block + 1) in
        let block_input = B.shape b in
        let block_input_elems = Shape.elements block_input in
        (* First block of each stage needs a projection shortcut; its output
           stays resident until the elementwise add after conv3. *)
        let shortcut_elems =
          if block = 0 then
            B.add_branch b ~name:(tag ^ "_proj") ~kind:Layer.Standard
              ~from_shape:block_input ~out_channels:out ~kernel:1 ~stride ()
          else block_input_elems
        in
        let extra_c1 = if block = 0 then shortcut_elems else 0 in
        B.pw ~extra:extra_c1 b (tag ^ "_c1") mid 1;
        B.add b ~name:(tag ^ "_c2") ~kind:Layer.Standard ~out_channels:mid
          ~kernel:3 ~stride ~extra:shortcut_elems ();
        B.pw ~extra:shortcut_elems b (tag ^ "_c3") out 1
      done)
    stage_depths;
  B.finish b ~name ~abbreviation

let resnet50 () =
  resnet ~name:"ResNet50" ~abbreviation:"Res50" ~stage_depths:[ 3; 4; 6; 3 ]

let resnet152 () =
  resnet ~name:"ResNet152" ~abbreviation:"Res152"
    ~stage_depths:[ 3; 8; 36; 3 ]

(* ------------------------------------------------------------- Xception *)

let xception () =
  let b = B.create (Shape.v ~channels:3 ~height:299 ~width:299) in
  B.conv b "stem1" 32 3 2;
  B.conv b "stem2" 64 3 1;
  (* Entry-flow modules: projection shortcut (stride 2) + two separable
     convolutions + max-pool. *)
  let entry_module i out =
    let tag = Printf.sprintf "entry%d" i in
    let block_input = B.shape b in
    let shortcut =
      B.add_branch b ~name:(tag ^ "_proj") ~kind:Layer.Standard
        ~from_shape:block_input ~out_channels:out ~kernel:1 ~stride:2 ()
    in
    B.dw ~extra:shortcut b (tag ^ "_dw1") 3 1;
    B.pw ~extra:shortcut b (tag ^ "_pw1") out 1;
    B.dw ~extra:shortcut b (tag ^ "_dw2") 3 1;
    B.pw ~extra:shortcut b (tag ^ "_pw2") out 1;
    B.pool b ~stride:2
  in
  entry_module 1 128;
  entry_module 2 256;
  entry_module 3 728;
  (* Middle-flow modules: identity shortcut + three separable convs. *)
  for i = 1 to 8 do
    let tag = Printf.sprintf "mid%d" i in
    let shortcut = Shape.elements (B.shape b) in
    for j = 1 to 3 do
      B.dw ~extra:shortcut b (Printf.sprintf "%s_dw%d" tag j) 3 1;
      B.pw ~extra:shortcut b (Printf.sprintf "%s_pw%d" tag j) 728 1
    done
  done;
  (* Exit flow: one shortcut module then two plain separable convs. *)
  let block_input = B.shape b in
  let shortcut =
    B.add_branch b ~name:"exit_proj" ~kind:Layer.Standard
      ~from_shape:block_input ~out_channels:1024 ~kernel:1 ~stride:2 ()
  in
  B.dw ~extra:shortcut b "exit_dw1" 3 1;
  B.pw ~extra:shortcut b "exit_pw1" 728 1;
  B.dw ~extra:shortcut b "exit_dw2" 3 1;
  B.pw ~extra:shortcut b "exit_pw2" 1024 1;
  B.pool b ~stride:2;
  B.dw b "exit_dw3" 3 1;
  B.pw b "exit_pw3" 1536 1;
  B.dw b "exit_dw4" 3 1;
  B.pw b "exit_pw4" 2048 1;
  B.finish b ~name:"Xception" ~abbreviation:"XCp"

(* ----------------------------------------------------------- DenseNet121 *)

let densenet121 () =
  let growth = 32 in
  let b = B.create imagenet_input in
  B.conv b "stem" 64 7 2;
  B.pool b ~stride:2;
  let block_depths = [ 6; 12; 24; 16 ] in
  List.iteri
    (fun bi depth ->
      for li = 1 to depth do
        let tag = Printf.sprintf "d%dl%d" (bi + 1) li in
        (* The concatenated feature stack so far is this layer's IFM; it
           must stay resident across the bottleneck for the concatenation
           that follows. *)
        let concat_resident = Shape.elements (B.shape b) in
        B.pw b (tag ^ "_bott") (4 * growth) 1;
        B.add b ~name:(tag ^ "_conv") ~kind:Layer.Standard
          ~out_channels:growth ~kernel:3 ~stride:1 ~extra:concat_resident ();
        (* Concatenate: channels grow by [growth]; spatial unchanged. *)
        let s = B.shape b in
        b.B.shape <-
          Shape.v
            ~channels:(concat_resident / (s.Shape.height * s.Shape.width)
                       + growth)
            ~height:s.Shape.height ~width:s.Shape.width
      done;
      if bi < List.length block_depths - 1 then begin
        let s = B.shape b in
        B.pw b (Printf.sprintf "trans%d" (bi + 1)) (s.Shape.channels / 2) 1;
        B.pool b ~stride:2
      end)
    block_depths;
  B.finish b ~name:"DenseNet121" ~abbreviation:"Dns121"

(* --------------------------------------- MobileNetV2-family (MBConv) *)

(* One stack of inverted-residual (MBConv) blocks.  [settings] lists
   (expansion, out_channels, repeats, first_stride, kernel) per stage;
   identity shortcuts exist when stride is 1 and channels match, and stay
   resident through the whole expand/depthwise/project triple. *)
let mbconv_stages b ~counter settings =
  List.iter
    (fun (expansion, out, repeats, first_stride, kernel) ->
      for r = 0 to repeats - 1 do
        incr counter;
        let tag = Printf.sprintf "b%d" !counter in
        let stride = if r = 0 then first_stride else 1 in
        let in_c = (B.shape b).Shape.channels in
        let shortcut =
          if stride = 1 && in_c = out then Shape.elements (B.shape b) else 0
        in
        if expansion > 1 then
          B.pw ~extra:shortcut b (tag ^ "_exp") (expansion * in_c) 1;
        B.dw ~extra:shortcut b (tag ^ "_dw") kernel stride;
        B.pw ~extra:shortcut b (tag ^ "_prj") out 1
      done)
    settings

let mobilenet_v2 () =
  let b = B.create imagenet_input in
  B.conv b "stem" 32 3 2;
  (* First inverted residual has no expansion: depthwise + project. *)
  B.dw b "b0_dw" 3 1;
  B.pw b "b0_pw" 16 1;
  let counter = ref 0 in
  mbconv_stages b ~counter
    [ (6, 24, 2, 2, 3); (6, 32, 3, 2, 3); (6, 64, 4, 2, 3); (6, 96, 3, 1, 3);
      (6, 160, 3, 2, 3); (6, 320, 1, 1, 3) ];
  B.pw b "head" 1280 1;
  B.finish b ~name:"MobileNetV2" ~abbreviation:"MobV2"

let efficientnet_b0 () =
  let b = B.create imagenet_input in
  B.conv b "stem" 32 3 2;
  let counter = ref 0 in
  mbconv_stages b ~counter
    [ (1, 16, 1, 1, 3); (6, 24, 2, 2, 3); (6, 40, 2, 2, 5); (6, 80, 3, 2, 3);
      (6, 112, 3, 1, 5); (6, 192, 4, 2, 5); (6, 320, 1, 1, 3) ];
  B.pw b "head" 1280 1;
  B.finish b ~name:"EfficientNet-B0" ~abbreviation:"EffB0"

let mnasnet_a1 () =
  let b = B.create imagenet_input in
  B.conv b "stem" 32 3 2;
  (* SepConv block. *)
  B.dw b "b0_dw" 3 1;
  B.pw b "b0_pw" 16 1;
  let counter = ref 0 in
  mbconv_stages b ~counter
    [ (6, 24, 2, 2, 3); (3, 40, 3, 2, 5); (6, 80, 4, 2, 3); (6, 112, 2, 1, 3);
      (6, 160, 3, 2, 5); (6, 320, 1, 1, 3) ];
  B.pw b "head" 1280 1;
  B.finish b ~name:"MnasNet-A1" ~abbreviation:"MnasA1"

let vgg16 () =
  let b = B.create imagenet_input in
  let block i widths =
    List.iteri
      (fun j w -> B.conv b (Printf.sprintf "b%dc%d" i (j + 1)) w 3 1)
      widths;
    B.pool b ~stride:2
  in
  block 1 [ 64; 64 ];
  block 2 [ 128; 128 ];
  block 3 [ 256; 256; 256 ];
  block 4 [ 512; 512; 512 ];
  block 5 [ 512; 512; 512 ];
  B.finish b ~name:"VGG16" ~abbreviation:"VGG16"

(* ------------------------------------------------------------------ API *)

let all () =
  [ resnet152 (); resnet50 (); xception (); densenet121 (); mobilenet_v2 () ]

let extended () = all () @ [ efficientnet_b0 (); mnasnet_a1 (); vgg16 () ]

let by_abbreviation s =
  let target = String.lowercase_ascii s in
  List.find_opt
    (fun m -> String.lowercase_ascii m.Model.abbreviation = target)
    (extended ())
