(** The five CNNs of the paper's evaluation (Table III), generated
    structurally from their published architectures.

    Conv-layer counts match the paper exactly: ResNet152 155, ResNet50 53,
    Xception 74, DenseNet121 120, MobileNetV2 52.  Fully connected
    classifier layers are excluded (the paper counts convolution layers
    only and MCCM models convolutions); weight totals are therefore the
    convolutional weights, a few percent below Table III's full-model
    counts. *)

val resnet50 : unit -> Model.t
(** ResNet-50 (He et al. 2016), 224x224 input, bottleneck residual blocks
    with linearised projection shortcuts. *)

val resnet152 : unit -> Model.t
(** ResNet-152, stage depths 3/8/36/3. *)

val xception : unit -> Model.t
(** Xception (Chollet 2017), 299x299 input; separable convolutions are
    expanded into explicit depthwise + pointwise layer pairs. *)

val densenet121 : unit -> Model.t
(** DenseNet-121 (Huang et al. 2017), growth rate 32; concatenated features
    appear as growing input-channel counts and as extra resident
    feature-map elements. *)

val mobilenet_v2 : unit -> Model.t
(** MobileNetV2 (Sandler et al. 2018), inverted residual blocks expanded
    into expand / depthwise / project layer triples. *)

val efficientnet_b0 : unit -> Model.t
(** EfficientNet-B0 (Tan and Le 2019).  Not part of the paper's Table III,
    but the paper motivates generalisation through it: its MBConv blocks
    are MobileNetV2's.  Squeeze-excitation layers (not convolutions) are
    omitted. *)

val mnasnet_a1 : unit -> Model.t
(** MnasNet-A1 (Tan et al. 2019), same rationale as
    {!efficientnet_b0}. *)

val vgg16 : unit -> Model.t
(** VGG-16 (Simonyan and Zisserman 2015): the benchmark the Segmented
    baseline's original paper (Shen et al.) evaluated on — 13 uniform
    3x3 convolutions, the homogeneous extreme of the zoo. *)

val all : unit -> Model.t list
(** The five models in the paper's Table III order: ResNet152, ResNet50,
    Xception, DenseNet121, MobileNetV2. *)

val extended : unit -> Model.t list
(** {!all} plus {!efficientnet_b0}, {!mnasnet_a1} and {!vgg16}. *)

val by_abbreviation : string -> Model.t option
(** [by_abbreviation s] looks a model up by its short name (["Res152"],
    ["Res50"], ["XCp"], ["Dns121"], ["MobV2"], ["EffB0"], ["MnasA1"], ["VGG16"]);
    case-insensitive; searches {!extended}. *)
