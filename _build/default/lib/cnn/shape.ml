type t = { channels : int; height : int; width : int }

let v ~channels ~height ~width =
  if channels <= 0 || height <= 0 || width <= 0 then
    invalid_arg "Shape.v: non-positive dimension";
  { channels; height; width }

let elements s = s.channels * s.height * s.width

let equal a b =
  a.channels = b.channels && a.height = b.height && a.width = b.width

let pp ppf s = Format.fprintf ppf "%dx%dx%d" s.channels s.height s.width

let to_string s = Format.asprintf "%a" pp s

let spatial_out ~extent ~kernel ~stride ~padding =
  ((extent + (2 * padding) - kernel) / stride) + 1

let conv_output ifm ~kernel ~stride ~padding ~out_channels =
  let height = spatial_out ~extent:ifm.height ~kernel ~stride ~padding in
  let width = spatial_out ~extent:ifm.width ~kernel ~stride ~padding in
  if height <= 0 || width <= 0 then
    invalid_arg "Shape.conv_output: empty spatial output";
  v ~channels:out_channels ~height ~width

let same_padding ~kernel = (kernel - 1) / 2
