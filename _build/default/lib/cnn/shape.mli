(** Feature-map shapes.

    A feature map (IFM or OFM, Section II-A of the paper) is a stack of
    [channels] 2-D slices of [height] x [width] elements. *)

type t = { channels : int; height : int; width : int }

val v : channels:int -> height:int -> width:int -> t
(** [v ~channels ~height ~width] builds a shape.
    @raise Invalid_argument if any dimension is non-positive. *)

val elements : t -> int
(** [elements s] is the total element count [channels * height * width]. *)

val equal : t -> t -> bool
(** Structural equality. *)

val pp : Format.formatter -> t -> unit
(** Prints as ["CxHxW"]. *)

val to_string : t -> string
(** [to_string s] is [Format.asprintf "%a" pp s]. *)

val conv_output : t -> kernel:int -> stride:int -> padding:int -> out_channels:int -> t
(** [conv_output ifm ~kernel ~stride ~padding ~out_channels] is the OFM
    shape of a convolution with square [kernel], square [stride] and
    symmetric [padding] applied to [ifm].
    @raise Invalid_argument if the spatial output would be empty. *)

val same_padding : kernel:int -> int
(** [same_padding ~kernel] is the symmetric padding that preserves spatial
    extent at stride 1 for an odd [kernel] ([(kernel - 1) / 2]). *)
