lib/dse/enumerate.ml: Arch Cnn Explore List Mccm Printf
