lib/dse/enumerate.mli: Arch Cnn Explore Mccm Platform
