lib/dse/explore.ml: Arch Cnn Domain Float Int64 List Mccm Pareto Space Unix Util
