lib/dse/explore.mli: Arch Cnn Mccm Pareto Platform
