lib/dse/objective.ml: Explore Float List Mccm Option
