lib/dse/objective.mli: Explore Mccm
