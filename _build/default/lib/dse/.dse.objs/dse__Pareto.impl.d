lib/dse/pareto.ml: List
