lib/dse/pareto.mli:
