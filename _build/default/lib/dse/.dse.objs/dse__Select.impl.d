lib/dse/select.ml: List Mccm Report Util
