lib/dse/select.mli: Mccm
