lib/dse/space.ml: Arch Array List Util
