lib/dse/space.mli: Arch Util
