(** Exhaustive and guided exploration complements to random sampling.

    Random sampling (the paper's Fig. 10) covers the huge spaces; when the
    space slice is small — a fixed CE count with few tail segments — it can
    be enumerated exactly, and a promising design can be refined by local
    search over its boundaries (the paper's "take the most promising
    architectures as starting points ... explore architectures that
    mitigate these bottlenecks"). *)

val enumerate_specs :
  num_layers:int -> ces:int -> max_specs:int -> Arch.Custom.spec list
(** [enumerate_specs ~num_layers ~ces ~max_specs] lists every custom spec
    with exactly [ces] engines, in lexicographic order, stopping after
    [max_specs] (the caller bounds the work; the spaces explode).
    @raise Invalid_argument if [ces < 2]. *)

val exhaustive :
  ?max_specs:int ->
  ces:int ->
  Cnn.Model.t ->
  Platform.Board.t ->
  Explore.evaluated list
(** [exhaustive ~ces model board] evaluates every (up to [max_specs],
    default 20000) custom design with exactly [ces] engines; feasible
    ones, in enumeration order. *)

type step = {
  moved : string;                 (** human-readable description *)
  spec : Arch.Custom.spec;
  metrics : Mccm.Metrics.t;
}

val local_search :
  objective:(Mccm.Metrics.t -> float) ->
  ?max_steps:int ->
  Cnn.Model.t ->
  Platform.Board.t ->
  Arch.Custom.spec ->
  step list
(** [local_search ~objective model board seed] hill-climbs from [seed],
    at each step trying every single-boundary shift by one layer, every
    pipelined-depth change by one, and tail-segment splits/merges,
    keeping the neighbour that most improves [objective] (higher is
    better).  Returns the improvement trajectory, seed first; stops at a
    local optimum or after [max_steps] (default 25) moves. *)
