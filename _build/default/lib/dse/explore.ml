type evaluated = { spec : Arch.Custom.spec; metrics : Mccm.Metrics.t }

type result = {
  sampled : int;
  evaluated : evaluated list;
  front : evaluated Pareto.point list;
  elapsed_s : float;
}

let point (e : evaluated) =
  {
    Pareto.item = e;
    objective_up = e.metrics.Mccm.Metrics.throughput_ips;
    objective_down = float_of_int e.metrics.Mccm.Metrics.buffer_bytes;
  }

(* One worker's share of the sweep: its own PRNG stream, its own chunk. *)
let run_chunk ~seed ~ce_counts ~samples model board =
  let rng = Util.Prng.create ~seed in
  let num_layers = Cnn.Model.num_layers model in
  let evaluated = ref [] in
  for _ = 1 to samples do
    let spec = Space.random_spec rng ~num_layers ~ce_counts in
    let archi = Arch.Custom.arch_of_spec model spec in
    let metrics = Mccm.Evaluate.metrics model board archi in
    if metrics.Mccm.Metrics.feasible then
      evaluated := { spec; metrics } :: !evaluated
  done;
  List.rev !evaluated

let run ?(seed = 42L) ?(ce_counts = Arch.Baselines.default_ce_counts)
    ?(domains = 1) ~samples model board =
  if samples <= 0 then invalid_arg "Explore.run: non-positive sample count";
  if domains <= 0 then invalid_arg "Explore.run: non-positive domain count";
  (* More domains than cores is strictly harmful (every minor collection
     synchronises all domains); clamp to what the runtime recommends. *)
  let domains = min domains (Domain.recommended_domain_count ()) in
  let started = Unix.gettimeofday () in
  let evaluated =
    if domains = 1 then run_chunk ~seed ~ce_counts ~samples model board
    else begin
      (* Split samples across domains; derive per-domain seeds so the
         result is a deterministic function of (seed, domains). *)
      let per = samples / domains and rem = samples mod domains in
      let chunk i = per + if i < rem then 1 else 0 in
      let spawned =
        List.init domains (fun i ->
            let seed_i =
              if i = 0 then seed
              else Int64.add seed (Int64.of_int (0x9E37 * i))
            in
            Domain.spawn (fun () ->
                run_chunk ~seed:seed_i ~ce_counts ~samples:(chunk i) model
                  board))
      in
      List.concat_map Domain.join spawned
    end
  in
  let elapsed_s = Unix.gettimeofday () -. started in
  {
    sampled = samples;
    evaluated;
    front = Pareto.front (List.map point evaluated);
    elapsed_s;
  }

let improvement_over r ~reference =
  let ref_thr = reference.Mccm.Metrics.throughput_ips in
  let ref_buf = float_of_int reference.Mccm.Metrics.buffer_bytes in
  let matching_thr =
    List.filter
      (fun e -> e.metrics.Mccm.Metrics.throughput_ips >= ref_thr)
      r.evaluated
  in
  let no_buf_increase =
    List.filter
      (fun e -> float_of_int e.metrics.Mccm.Metrics.buffer_bytes <= ref_buf)
      r.evaluated
  in
  if matching_thr = [] && no_buf_increase = [] then None
  else begin
    let buffer_reduction =
      match matching_thr with
      | [] -> 0.0
      | es ->
        let best =
          Util.Stats.minimum
            (List.map
               (fun e -> float_of_int e.metrics.Mccm.Metrics.buffer_bytes)
               es)
        in
        Float.max 0.0 (1.0 -. (best /. ref_buf))
    in
    let throughput_gain =
      match no_buf_increase with
      | [] -> 0.0
      | es ->
        let best =
          Util.Stats.maximum
            (List.map (fun e -> e.metrics.Mccm.Metrics.throughput_ips) es)
        in
        Float.max 0.0 ((best /. ref_thr) -. 1.0)
    in
    Some (buffer_reduction, throughput_gain)
  end
