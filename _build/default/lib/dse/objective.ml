type atom = Latency | Throughput | Buffers | Accesses

type t =
  | Atom of atom
  | Weighted of (t * float) list
  | Constrained of { base : t; max_buffers : int option; max_accesses : int option }

let latency = Atom Latency
let throughput = Atom Throughput
let buffers = Atom Buffers
let accesses = Atom Accesses

let weighted parts =
  if parts = [] then invalid_arg "Objective.weighted: empty combination";
  List.iter
    (fun (_, w) ->
      if w <= 0.0 then invalid_arg "Objective.weighted: non-positive weight")
    parts;
  Weighted parts

let subject_to base ~max_buffers ~max_accesses =
  Constrained { base; max_buffers; max_accesses }

(* Gain of [m] over [reference] on one metric, as a ratio > 0 where bigger
   is better (reference scores 1.0 on every atom). *)
let atom_gain atom ~(reference : Mccm.Metrics.t) (m : Mccm.Metrics.t) =
  let ratio a b = if b > 0.0 then a /. b else 1.0 in
  match atom with
  | Latency -> ratio reference.Mccm.Metrics.latency_s m.Mccm.Metrics.latency_s
  | Throughput ->
    ratio m.Mccm.Metrics.throughput_ips reference.Mccm.Metrics.throughput_ips
  | Buffers ->
    ratio
      (float_of_int reference.Mccm.Metrics.buffer_bytes)
      (float_of_int m.Mccm.Metrics.buffer_bytes)
  | Accesses ->
    ratio
      (float_of_int (Mccm.Metrics.accesses_bytes reference))
      (float_of_int (Mccm.Metrics.accesses_bytes m))

let rec score obj ~reference (m : Mccm.Metrics.t) =
  if not m.Mccm.Metrics.feasible then neg_infinity
  else
    match obj with
    | Atom a -> atom_gain a ~reference m
    | Weighted parts ->
      (* Geometric combination: exponents are the weights, so the score is
         scale-free in every metric. *)
      List.fold_left
        (fun acc (o, w) -> acc *. Float.pow (score o ~reference m) w)
        1.0 parts
    | Constrained { base; max_buffers; max_accesses } ->
      let over_buffers =
        match max_buffers with
        | Some b -> m.Mccm.Metrics.buffer_bytes > b
        | None -> false
      in
      let over_accesses =
        match max_accesses with
        | Some a -> Mccm.Metrics.accesses_bytes m > a
        | None -> false
      in
      if over_buffers || over_accesses then neg_infinity
      else score base ~reference m

let best obj ~reference designs =
  List.fold_left
    (fun acc (e : Explore.evaluated) ->
      let s = score obj ~reference e.Explore.metrics in
      if s = neg_infinity then acc
      else
        match acc with
        | Some (_, sb) when sb >= s -> acc
        | _ -> Some (e, s))
    None designs
  |> Option.map fst
