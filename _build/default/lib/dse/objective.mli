(** Scalar objectives over the four metrics, for guided exploration.

    Use Case 3's goal is stated as a multi-objective one — "maximize
    throughput while minimizing on-chip memory usage".  This module turns
    such goals into scalar scores usable by {!Explore} post-processing and
    {!Enumerate.local_search}: single metrics, weighted combinations of
    normalised metrics, and constrained forms ("best throughput subject to
    a buffer budget"). *)

type t

val latency : t
(** Minimise latency. *)

val throughput : t
(** Maximise throughput. *)

val buffers : t
(** Minimise on-chip buffers. *)

val accesses : t
(** Minimise off-chip accesses. *)

val weighted : (t * float) list -> t
(** [weighted parts] combines objectives; each component is normalised by
    a reference before weighing (see {!score}), so weights express
    relative importance, not unit conversions.
    @raise Invalid_argument on an empty list or non-positive weight. *)

val subject_to :
  t -> max_buffers:int option -> max_accesses:int option -> t
(** [subject_to obj ~max_buffers ~max_accesses] gives negative infinity to
    designs violating a budget. *)

val score : t -> reference:Mccm.Metrics.t -> Mccm.Metrics.t -> float
(** [score obj ~reference m] is higher-is-better; [reference] anchors
    normalisation (each metric is expressed as a gain over the
    reference).  Infeasible [m] scores negative infinity. *)

val best :
  t ->
  reference:Mccm.Metrics.t ->
  (Explore.evaluated list) ->
  Explore.evaluated option
(** [best obj ~reference designs] is the highest-scoring design, if any
    scores above negative infinity. *)
