type 'a point = { item : 'a; objective_up : float; objective_down : float }

let dominates a b =
  a.objective_up >= b.objective_up
  && a.objective_down <= b.objective_down
  && (a.objective_up > b.objective_up || a.objective_down < b.objective_down)

(* Sweep in descending objective_up order: a point joins the front iff its
   objective_down improves on everything seen so far.  O(n log n). *)
let front pts =
  let sorted =
    List.sort
      (fun a b ->
        match compare b.objective_up a.objective_up with
        | 0 -> compare a.objective_down b.objective_down
        | c -> c)
      pts
  in
  let _, rev_front =
    List.fold_left
      (fun (best_down, acc) p ->
        if p.objective_down < best_down then (p.objective_down, p :: acc)
        else (best_down, acc))
      (infinity, []) sorted
  in
  List.rev rev_front
