(** Pareto-front extraction for two-objective trade-off studies
    (throughput vs. buffer in the paper's Fig. 8/10). *)

type 'a point = { item : 'a; objective_up : float; objective_down : float }
(** A candidate with one maximised and one minimised objective. *)

val front : 'a point list -> 'a point list
(** [front pts] keeps the non-dominated points: no other point is
    simultaneously >= on [objective_up] and <= on [objective_down] with
    at least one strict inequality.  Result is sorted by descending
    [objective_up].  Duplicate-coordinate points keep one
    representative. *)

val dominates : 'a point -> 'a point -> bool
(** [dominates a b] per the definition above. *)
