type candidate = { label : string; metrics : Mccm.Metrics.t }

let winners ~metric cs =
  let feasible =
    List.filter (fun c -> c.metrics.Mccm.Metrics.feasible) cs
  in
  match feasible with
  | [] -> []
  | _ ->
    let value c = Mccm.Metrics.metric_value metric c.metrics in
    let higher_is_better = metric = `Throughput in
    let best =
      if higher_is_better then
        Util.Stats.maximum (List.map value feasible)
      else Util.Stats.minimum (List.map value feasible)
    in
    List.filter
      (fun c ->
        let v = value c in
        if higher_is_better then
          v >= best *. (1.0 -. Report.Normalize.tie_threshold)
        else v <= best *. (1.0 +. Report.Normalize.tie_threshold))
      feasible

let winner_labels ~metric cs =
  List.map (fun c -> c.label) (winners ~metric cs)
