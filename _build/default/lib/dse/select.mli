(** Best-architecture selection with the paper's tie rule (Table V).

    Given a set of evaluated designs, the winner on a metric is the best
    value; every design within 10% of it is reported as tied "to account
    for estimation errors" (paper Section V-C). *)

type candidate = { label : string; metrics : Mccm.Metrics.t }

val winners :
  metric:[ `Latency | `Throughput | `Buffers | `Accesses ] ->
  candidate list ->
  candidate list
(** [winners ~metric cs] returns the best candidate and everything tied
    with it (within the 10% margin on the metric value), preserving input
    order.  Infeasible candidates are excluded; result is empty only if
    [cs] has no feasible entry. *)

val winner_labels :
  metric:[ `Latency | `Throughput | `Buffers | `Accesses ] ->
  candidate list ->
  string list
(** Labels of {!winners}. *)
