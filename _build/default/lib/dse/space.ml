(* Binomial in floats: the design-space sizes exceed integer range. *)
let float_binomial n k =
  if k < 0 || k > n then 0.0
  else begin
    let k = min k (n - k) in
    let acc = ref 1.0 in
    for i = 1 to k do
      acc := !acc *. float_of_int (n - k + i) /. float_of_int i
    done;
    !acc
  end

let designs_for_ce_count ~num_layers ~ces =
  let total = ref 0.0 in
  for f = 1 to ces - 1 do
    let s = ces - f in
    let tail_layers = num_layers - f in
    if tail_layers >= s then
      total := !total +. float_binomial (tail_layers - 1) (s - 1)
  done;
  !total

let total_designs ~num_layers ~ce_counts =
  List.fold_left
    (fun acc ces -> acc +. designs_for_ce_count ~num_layers ~ces)
    0.0 ce_counts

let random_spec rng ~num_layers ~ce_counts =
  if ce_counts = [] then invalid_arg "Space.random_spec: no CE counts";
  let candidates =
    List.filter
      (fun c -> c >= 2 && designs_for_ce_count ~num_layers ~ces:c > 0.0)
      ce_counts
  in
  if candidates = [] then
    invalid_arg "Space.random_spec: no feasible CE count";
  let ces = Util.Prng.choose rng (Array.of_list candidates) in
  (* Draw the pipelined-block depth, then the tail split. *)
  let rec draw_f () =
    let f = Util.Prng.int_in_range rng ~lo:1 ~hi:(ces - 1) in
    let s = ces - f in
    if num_layers - f >= s then (f, s) else draw_f ()
  in
  let f, s = draw_f () in
  let tail_boundaries =
    if s = 1 then []
    else
      Util.Prng.sorted_distinct_ints rng ~count:(s - 1) ~lo:(f + 1)
        ~hi:(num_layers - 1)
  in
  { Arch.Custom.pipelined_layers = f; tail_boundaries }
