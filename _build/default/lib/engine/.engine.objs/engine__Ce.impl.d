lib/engine/ce.ml: Cnn Dataflow Format List Parallelism Util
