lib/engine/ce.mli: Cnn Dataflow Format Parallelism
