lib/engine/dataflow.ml: Format String
