lib/engine/dataflow.mli: Format
