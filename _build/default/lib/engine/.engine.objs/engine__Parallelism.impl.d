lib/engine/parallelism.ml: Cnn Format List
