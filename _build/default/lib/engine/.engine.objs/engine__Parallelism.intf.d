lib/engine/parallelism.mli: Cnn Format
