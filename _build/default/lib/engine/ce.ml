type t = {
  id : int;
  pes : int;
  parallelism : Parallelism.t;
  dataflow : Dataflow.t;
}

let v ~id ~pes ~parallelism ~dataflow =
  if pes <= 0 then invalid_arg "Engine.v: non-positive PE count";
  if Parallelism.degree parallelism > pes then
    invalid_arg "Engine.v: parallelism degree exceeds PE budget";
  { id; pes; parallelism; dataflow }

(* Eq. 1: one ceil-division term per convolution loop dimension. *)
let cycles_with_extents t extents =
  List.fold_left
    (fun acc (d, extent) ->
      acc * Util.Int_math.ceil_div extent (Parallelism.factor t.parallelism d))
    1 extents

let dim_extents layer =
  List.map
    (fun d -> (d, Parallelism.layer_dim_extent layer d))
    Parallelism.all_dims

let layer_cycles t layer = cycles_with_extents t (dim_extents layer)

let tile_cycles t layer ~rows =
  let rows = max 1 rows in
  let extents =
    List.map
      (fun (d, extent) ->
        match d with
        | Parallelism.Height -> (d, min rows extent)
        | _ -> (d, extent))
      (dim_extents layer)
  in
  cycles_with_extents t extents

let ideal_cycles ~pes layer =
  Util.Int_math.ceil_div (Cnn.Layer.macs layer) pes

let utilization t layer =
  let actual = layer_cycles t layer in
  let ideal = ideal_cycles ~pes:t.pes layer in
  float_of_int ideal /. float_of_int actual

let average_utilization t layers =
  if layers = [] then invalid_arg "Engine.average_utilization: empty list";
  let weighted, total =
    List.fold_left
      (fun (w, tot) l ->
        let m = float_of_int (Cnn.Layer.macs l) in
        (w +. (m *. utilization t l), tot +. m))
      (0.0, 0.0) layers
  in
  weighted /. total

let pp ppf t =
  Format.fprintf ppf "CE%d[%d PEs, %a, %a]" t.id t.pes Parallelism.pp
    t.parallelism Dataflow.pp t.dataflow
