type t = Weight_stationary | Output_stationary | Input_stationary

let all = [ Weight_stationary; Output_stationary; Input_stationary ]

let to_string = function
  | Weight_stationary -> "WS"
  | Output_stationary -> "OS"
  | Input_stationary -> "IS"

let of_string s =
  match String.uppercase_ascii s with
  | "WS" -> Some Weight_stationary
  | "OS" -> Some Output_stationary
  | "IS" -> Some Input_stationary
  | _ -> None

let pp ppf t = Format.pp_print_string ppf (to_string t)
