(** Compute-engine dataflows.

    The dataflow names which operand an engine schedules to move least
    (paper Section II-B).  In the cost model it selects the off-chip access
    pattern when buffers cannot hold a whole layer (paper Eq. 6): an
    output-stationary engine falls back to either a locally input-stationary
    or a locally weight-stationary loop order, whichever moves fewer
    bytes. *)

type t =
  | Weight_stationary
  | Output_stationary
  | Input_stationary

val all : t list
(** The three dataflows. *)

val to_string : t -> string
(** e.g. ["WS"]. *)

val of_string : string -> t option
(** Case-insensitive parse of ["WS"], ["OS"] or ["IS"]. *)

val pp : Format.formatter -> t -> unit
(** Prints {!to_string}. *)
