type dim = Filters | Channels | Height | Width | Kernel_h | Kernel_w

let all_dims = [ Filters; Channels; Height; Width; Kernel_h; Kernel_w ]

let dim_to_string = function
  | Filters -> "F"
  | Channels -> "C"
  | Height -> "H"
  | Width -> "W"
  | Kernel_h -> "Kh"
  | Kernel_w -> "Kw"

type t = {
  filters : int;
  channels : int;
  height : int;
  width : int;
  kernel_h : int;
  kernel_w : int;
}

let scalar =
  { filters = 1; channels = 1; height = 1; width = 1; kernel_h = 1;
    kernel_w = 1 }

let set t d v =
  match d with
  | Filters -> { t with filters = v }
  | Channels -> { t with channels = v }
  | Height -> { t with height = v }
  | Width -> { t with width = v }
  | Kernel_h -> { t with kernel_h = v }
  | Kernel_w -> { t with kernel_w = v }

let factor t = function
  | Filters -> t.filters
  | Channels -> t.channels
  | Height -> t.height
  | Width -> t.width
  | Kernel_h -> t.kernel_h
  | Kernel_w -> t.kernel_w

let of_factors l =
  let seen = ref [] in
  List.fold_left
    (fun acc (d, v) ->
      if v <= 0 then invalid_arg "Parallelism.of_factors: non-positive factor";
      if List.mem d !seen then
        invalid_arg "Parallelism.of_factors: repeated dimension";
      seen := d :: !seen;
      set acc d v)
    scalar l

let three_d ~filters ~height ~width =
  of_factors [ (Filters, filters); (Height, height); (Width, width) ]

let degree t =
  t.filters * t.channels * t.height * t.width * t.kernel_h * t.kernel_w

let dimensions_used t = List.filter (fun d -> factor t d > 1) all_dims

let layer_dim_extent layer d =
  let key =
    match d with
    | Filters -> `Filters
    | Channels -> `Channels
    | Height -> `Height
    | Width -> `Width
    | Kernel_h -> `Kernel_h
    | Kernel_w -> `Kernel_w
  in
  Cnn.Layer.loop_extent layer key

let equal a b = a = b

let pp ppf t =
  let used = dimensions_used t in
  if used = [] then Format.pp_print_string ppf "scalar"
  else
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "x")
      (fun ppf d -> Format.fprintf ppf "%s%d" (dim_to_string d) (factor t d))
      ppf used
