(** Compute-engine parallelism strategies.

    A strategy assigns an unrolling factor to some of the six convolution
    loops (paper Section II-B, Fig. 1).  The product of all factors is the
    number of PEs the engine keeps busy in a fully utilised cycle and must
    not exceed the engine's PE budget (constraint of paper Eq. 1). *)

type dim = Filters | Channels | Height | Width | Kernel_h | Kernel_w

val all_dims : dim list
(** The six convolution loop dimensions. *)

val dim_to_string : dim -> string
(** Short printable name. *)

type t
(** A parallelism strategy: a positive factor per dimension (1 when the
    dimension is not parallelised). *)

val scalar : t
(** The strategy with factor 1 everywhere (a single-PE engine). *)

val of_factors : (dim * int) list -> t
(** [of_factors l] builds a strategy; dimensions absent from [l] get factor
    1.  @raise Invalid_argument on a non-positive factor or a repeated
    dimension. *)

val three_d : filters:int -> height:int -> width:int -> t
(** The 3-D strategy the paper identifies as best on average (across
    filters and within a channel's height and width, per Ma et al.). *)

val factor : t -> dim -> int
(** [factor t d] is the unrolling factor on [d]. *)

val degree : t -> int
(** Product of all factors: PEs kept busy per fully-utilised cycle. *)

val dimensions_used : t -> dim list
(** Dimensions with factor > 1, in [all_dims] order. *)

val layer_dim_extent : Cnn.Layer.t -> dim -> int
(** Extent of loop [d] for a layer (the |d| of paper Eq. 1). *)

val equal : t -> t -> bool
(** Structural equality. *)

val pp : Format.formatter -> t -> unit
(** Prints as e.g. ["F4xH2xW2"]. *)
