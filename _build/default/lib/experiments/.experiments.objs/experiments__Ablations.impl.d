lib/experiments/ablations.ml: Arch Builder Cnn Format List Mccm Platform Printf Util
