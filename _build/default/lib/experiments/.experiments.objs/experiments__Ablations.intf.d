lib/experiments/ablations.mli: Cnn Mccm Platform
