lib/experiments/common.ml: Arch List Mccm Printf
