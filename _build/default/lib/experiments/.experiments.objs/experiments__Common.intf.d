lib/experiments/common.mli: Arch Cnn Mccm Platform
