lib/experiments/extremes.ml: Arch Cnn Common Format List Mccm Platform Printf Util
