lib/experiments/extremes.mli: Mccm Platform
