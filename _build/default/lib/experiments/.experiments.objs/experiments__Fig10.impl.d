lib/experiments/fig10.ml: Arch Cnn Dse Format List Mccm Option Platform Report Util
