lib/experiments/fig10.mli: Dse Mccm
