lib/experiments/fig6.ml: Arch Cnn Format List Mccm Platform String Util
