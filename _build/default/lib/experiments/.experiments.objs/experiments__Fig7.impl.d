lib/experiments/fig7.ml: Arch Cnn Common Format List Mccm Platform Printf Util
