lib/experiments/fig9.ml: Arch Cnn Float Format List Mccm Platform Util
