lib/experiments/sensitivity.ml: Arch Cnn Format List Mccm Platform Printf Util
