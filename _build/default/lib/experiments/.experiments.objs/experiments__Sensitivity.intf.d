lib/experiments/sensitivity.mli: Cnn Mccm
