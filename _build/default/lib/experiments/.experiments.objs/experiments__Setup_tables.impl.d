lib/experiments/setup_tables.ml: Cnn List Platform Printf Util
