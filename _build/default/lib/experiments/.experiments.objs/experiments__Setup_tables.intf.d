lib/experiments/setup_tables.mli:
