lib/experiments/table1.ml: Arch Cnn Common List Mccm Platform Printf Report Util
