lib/experiments/table4.ml: Arch Builder Cnn Common Format List Mccm Platform Printf Report Sim String Util
