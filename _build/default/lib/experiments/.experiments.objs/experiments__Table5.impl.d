lib/experiments/table5.ml: Cnn Common Dse Format List Platform Printf String Util
