lib/experiments/tradeoff.ml: Arch Cnn Common Format List Mccm Platform Printf Report String Util
