lib/experiments/tradeoff.mli: Arch
