type row = {
  ablation : string;
  variant : string;
  instance : string;
  metrics : Mccm.Metrics.t;
}

type t = { rows : row list }

(* Equal-layer-count Segmented: the naive alternative to MAC-balanced
   boundaries. *)
let segmented_equal ~ces model =
  let n = Cnn.Model.num_layers model in
  let base = n / ces and rem = n mod ces in
  let blocks = ref [] in
  let start = ref 0 in
  for i = 0 to ces - 1 do
    let len = base + if i < rem then 1 else 0 in
    blocks :=
      Arch.Block.Single { ce = i; first = !start; last = !start + len - 1 }
      :: !blocks;
    start := !start + len
  done;
  Arch.Block.arch
    ~name:(Printf.sprintf "SegmentedEq/%d" ces)
    ~style:Arch.Block.Segmented ~blocks:(List.rev !blocks)
    ~coarse_pipelined:true ~num_layers:n

let eval ?options model board archi =
  (Mccm.Evaluate.run (Builder.Build.build ?options model board archi))
    .Mccm.Evaluate.metrics

let run ?(model = Cnn.Model_zoo.resnet50 ())
    ?(board = Platform.Board.vcu108) () =
  let instances =
    [
      ("Segmented/4", Arch.Baselines.segmented ~ces:4 model);
      ("SegmentedRR/4", Arch.Baselines.segmented_rr ~ces:4 model);
      ("Hybrid/4", Arch.Baselines.hybrid ~ces:4 model);
    ]
  in
  let with_options ~ablation ~variant options =
    List.map
      (fun (instance, archi) ->
        { ablation; variant; instance; metrics = eval ~options model board archi })
      instances
  in
  let parallelism =
    with_options ~ablation:"parallelism selection" ~variant:"builder"
      Builder.Build.default_options
    @ with_options ~ablation:"parallelism selection" ~variant:"naive square"
        { Builder.Build.default_options with parallelism = `Naive }
  in
  let buffers =
    with_options ~ablation:"buffer allocation" ~variant:"builder"
      Builder.Build.default_options
    @ with_options ~ablation:"buffer allocation" ~variant:"minimal only"
        { Builder.Build.default_options with buffers = `Minimal }
  in
  let pe_allocation =
    with_options ~ablation:"PE allocation" ~variant:"MAC-proportional"
      Builder.Build.default_options
    @ with_options ~ablation:"PE allocation" ~variant:"cycle-balanced"
        { Builder.Build.default_options with pe_allocation = `Balanced }
  in
  let segmentation =
    [
      {
        ablation = "segmentation";
        variant = "builder";
        instance = "Segmented/4";
        metrics = eval model board (Arch.Baselines.segmented ~ces:4 model);
      };
      {
        ablation = "segmentation";
        variant = "equal layer counts";
        instance = "SegmentedEq/4";
        metrics = eval model board (segmented_equal ~ces:4 model);
      };
    ]
  in
  { rows = parallelism @ buffers @ pe_allocation @ segmentation }

let print t =
  let ablations =
    List.sort_uniq compare (List.map (fun r -> r.ablation) t.rows)
  in
  List.iter
    (fun ablation ->
      let table =
        Util.Table.create
          ~title:(Printf.sprintf "Ablation: %s" ablation)
          ~columns:
            [
              ("variant", Util.Table.Left);
              ("instance", Util.Table.Left);
              ("latency", Util.Table.Right);
              ("throughput", Util.Table.Right);
              ("buffers", Util.Table.Right);
              ("accesses", Util.Table.Right);
            ]
          ()
      in
      List.iter
        (fun r ->
          if r.ablation = ablation then
            Util.Table.add_row table
              [
                r.variant;
                r.instance;
                Format.asprintf "%a" Util.Units.pp_seconds
                  r.metrics.Mccm.Metrics.latency_s;
                Printf.sprintf "%.1f inf/s"
                  r.metrics.Mccm.Metrics.throughput_ips;
                Format.asprintf "%a" Util.Units.pp_bytes
                  r.metrics.Mccm.Metrics.buffer_bytes;
                Format.asprintf "%a" Util.Units.pp_bytes
                  (Mccm.Metrics.accesses_bytes r.metrics);
              ])
        t.rows;
      Util.Table.print table;
      print_newline ())
    ablations
