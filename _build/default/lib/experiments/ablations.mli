(** Ablation studies of the Multiple-CE Builder's design choices
    (DESIGN.md calls these out; none are ablated in the paper itself, but
    each is a heuristic the methodology leans on):

    - {b parallelism selection}: layer-fitting factor search vs naive
      square unrolling (affects Eq. 1's ceil-division waste);
    - {b buffer allocation}: access-driven greedy upgrades vs minimal
      working sets (affects Eq. 6/7 traffic);
    - {b PE allocation}: MAC-proportional DSP shares vs iterative
      cycle-balancing (Eq. 3's stage balancing on measured latencies);
    - {b segmentation}: MAC-balanced segment boundaries (exact DP) vs
      equal layer counts (affects coarse-pipeline balance, Eq. 3). *)

type row = {
  ablation : string;        (** which knob *)
  variant : string;         (** "builder" or the ablated alternative *)
  instance : string;        (** accelerator evaluated *)
  metrics : Mccm.Metrics.t;
}

type t = { rows : row list }

val run : ?model:Cnn.Model.t -> ?board:Platform.Board.t -> unit -> t
(** [run ()] evaluates each knob's two variants on representative
    instances of the three baselines (default ResNet50 / VCU108). *)

val print : t -> unit
(** Renders each ablation as a small before/after table. *)
