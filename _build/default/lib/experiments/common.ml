type instance = {
  style : Arch.Block.style;
  ces : int;
  archi : Arch.Block.arch;
  metrics : Mccm.Metrics.t;
  breakdown : Mccm.Breakdown.t;
}

let baseline_arch style ~ces model =
  match style with
  | Arch.Block.Segmented -> Arch.Baselines.segmented ~ces model
  | Arch.Block.Segmented_rr -> Arch.Baselines.segmented_rr ~ces model
  | Arch.Block.Hybrid -> Arch.Baselines.hybrid ~ces model
  | Arch.Block.Custom ->
    invalid_arg "Common.baseline_arch: Custom is not a baseline"

let styles = [ Arch.Block.Segmented; Arch.Block.Segmented_rr; Arch.Block.Hybrid ]

let sweep model board =
  List.concat_map
    (fun ces ->
      List.map
        (fun style ->
          let archi = baseline_arch style ~ces model in
          let e = Mccm.Evaluate.evaluate model board archi in
          {
            style;
            ces;
            archi;
            metrics = e.Mccm.Evaluate.metrics;
            breakdown = e.Mccm.Evaluate.breakdown;
          })
        styles)
    Arch.Baselines.default_ce_counts

let best_by ~metric instances =
  let feasible =
    List.filter (fun i -> i.metrics.Mccm.Metrics.feasible) instances
  in
  if feasible = [] then invalid_arg "Common.best_by: no feasible instance";
  List.fold_left
    (fun best i ->
      if Mccm.Metrics.better ~metric i.metrics best.metrics then i else best)
    (List.hd feasible) (List.tl feasible)

let instances_of_style style = List.filter (fun i -> i.style = style)

let label i =
  Printf.sprintf "%s/%d" (Arch.Block.style_to_string i.style) i.ces
