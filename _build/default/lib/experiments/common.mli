(** Shared plumbing for the paper's experiments: every table and figure
    sweeps the three baseline architectures over CE counts 2-11 on some
    (CNN, board) pair. *)

type instance = {
  style : Arch.Block.style;
  ces : int;
  archi : Arch.Block.arch;
  metrics : Mccm.Metrics.t;
  breakdown : Mccm.Breakdown.t;
}

val sweep : Cnn.Model.t -> Platform.Board.t -> instance list
(** [sweep model board] evaluates all 30 baseline instances
    (3 architectures x CE counts 2-11) with the analytical model. *)

val best_by :
  metric:[ `Latency | `Throughput | `Buffers | `Accesses ] ->
  instance list ->
  instance
(** Best feasible instance on a metric.  @raise Invalid_argument if no
    instance is feasible. *)

val instances_of_style : Arch.Block.style -> instance list -> instance list
(** Filter by architecture style. *)

val label : instance -> string
(** e.g. ["SegmentedRR/4"]. *)

val baseline_arch : Arch.Block.style -> ces:int -> Cnn.Model.t -> Arch.Block.arch
(** Generator dispatch by style.  @raise Invalid_argument for
    [Custom]. *)
