type row = {
  cnn : string;
  instance : string;
  metrics : Mccm.Metrics.t;
  utilization : float;
}

type t = { board : string; rows : row list }

let mac_weighted_utilization (breakdown : Mccm.Breakdown.t) =
  (* Segments already carry MAC-weighted utilizations; weight them by
     their compute time as a proxy for their MAC share. *)
  let weighted, total =
    List.fold_left
      (fun (w, t) (s : Mccm.Breakdown.segment) ->
        ( w +. (s.Mccm.Breakdown.compute_s *. s.Mccm.Breakdown.utilization),
          t +. s.Mccm.Breakdown.compute_s ))
      (0.0, 0.0) breakdown.Mccm.Breakdown.segments
  in
  if total > 0.0 then weighted /. total else 1.0

let eval model board archi =
  let e = Mccm.Evaluate.evaluate model board archi in
  (e.Mccm.Evaluate.metrics, mac_weighted_utilization e.Mccm.Evaluate.breakdown)

let run ?(board = Platform.Board.zcu102) () =
  let rows =
    List.concat_map
      (fun model ->
        let cnn = model.Cnn.Model.abbreviation in
        let make instance archi =
          let metrics, utilization = eval model board archi in
          { cnn; instance; metrics; utilization }
        in
        let best_multiple =
          let instances = Common.sweep model board in
          let best = Common.best_by ~metric:`Throughput instances in
          {
            cnn;
            instance = "best multiple-CE (" ^ Common.label best ^ ")";
            metrics = best.Common.metrics;
            utilization =
              mac_weighted_utilization best.Common.breakdown;
          }
        in
        let dual =
          if Cnn.Model.num_layers model >= 6 then
            [ make "HybridDual/6" (Arch.Baselines.hybrid_dual ~ces:6 model) ]
          else []
        in
        [
          make "SingleCE" (Arch.Baselines.single_ce model);
          best_multiple;
        ]
        @ dual
        @ [ make "LayerPerCE" (Arch.Baselines.layer_per_ce model) ])
      (Cnn.Model_zoo.all ())
  in
  { board = board.Platform.Board.name; rows }

let print t =
  let cnns = List.sort_uniq compare (List.map (fun r -> r.cnn) t.rows) in
  Format.printf
    "Extremes vs multiple-CE on %s (paper Sections II-C/II-D)@.@." t.board;
  List.iter
    (fun cnn ->
      let table =
        Util.Table.create ~title:cnn
          ~columns:
            [
              ("instance", Util.Table.Left);
              ("latency", Util.Table.Right);
              ("throughput", Util.Table.Right);
              ("buffers", Util.Table.Right);
              ("accesses", Util.Table.Right);
              ("PE util", Util.Table.Right);
              ("feasible", Util.Table.Center);
            ]
          ()
      in
      List.iter
        (fun r ->
          if r.cnn = cnn then
            Util.Table.add_row table
              [
                r.instance;
                Format.asprintf "%a" Util.Units.pp_seconds
                  r.metrics.Mccm.Metrics.latency_s;
                Printf.sprintf "%.1f inf/s" r.metrics.Mccm.Metrics.throughput_ips;
                Format.asprintf "%a" Util.Units.pp_bytes
                  r.metrics.Mccm.Metrics.buffer_bytes;
                Format.asprintf "%a" Util.Units.pp_bytes
                  (Mccm.Metrics.accesses_bytes r.metrics);
                Printf.sprintf "%.1f%%" (100.0 *. r.utilization);
                (if r.metrics.Mccm.Metrics.feasible then "yes" else "NO");
              ])
        t.rows;
      Util.Table.print table;
      print_newline ())
    cnns
