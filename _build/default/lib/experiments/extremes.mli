(** The two design extremes the literature optimises between
    (paper Sections II-C/II-D): a single generic reusable engine, and one
    dedicated engine per layer.

    The paper argues the per-layer extreme is "resource-demanding and not
    scalable" and that generic single engines suffer dynamic
    underutilization; this experiment quantifies both against the best
    multiple-CE instance per metric, per CNN. *)

type row = {
  cnn : string;
  instance : string;
  metrics : Mccm.Metrics.t;
  utilization : float;      (** MAC-weighted PE utilization *)
}

type t = { board : string; rows : row list }

val run : ?board:Platform.Board.t -> unit -> t
(** [run ()] evaluates SingleCE, LayerPerCE, HybridDual (where it
    applies) and the best-throughput baseline for every Table III CNN on
    [board] (default ZCU102 — the largest, so the per-layer extreme's
    failure is about scalability, not just capacity). *)

val print : t -> unit
(** One table per CNN. *)
