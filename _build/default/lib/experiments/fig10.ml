type t = {
  samples : int;
  space_size : float;
  result : Dse.Explore.result;
  ms_per_design : float;
  reference_segmented : Mccm.Metrics.t;
  reference_hybrid : Mccm.Metrics.t;
  buffer_reduction_at_segmented_throughput : float option;
  throughput_gain_without_buffer_increase : float option;
  refined : Dse.Enumerate.step list;
}

let run ?(samples = 5000) () =
  let model = Cnn.Model_zoo.xception () in
  let board = Platform.Board.vcu110 in
  let result = Dse.Explore.run ~samples model board in
  let reference_segmented =
    Mccm.Evaluate.metrics model board (Arch.Baselines.segmented ~ces:4 model)
  in
  let reference_hybrid =
    Mccm.Evaluate.metrics model board (Arch.Baselines.hybrid ~ces:7 model)
  in
  let improvements =
    Dse.Explore.improvement_over result ~reference:reference_segmented
  in
  (* Refine the sampled front's best-throughput design by local search
     over its boundaries. *)
  let refined =
    match result.Dse.Explore.front with
    | [] -> []
    | front ->
      let best =
        Util.Stats.argmax
          (fun (p : Dse.Explore.evaluated Dse.Pareto.point) ->
            p.Dse.Pareto.objective_up)
          front
      in
      Dse.Enumerate.local_search
        ~objective:(fun m -> m.Mccm.Metrics.throughput_ips)
        ~max_steps:10 model board
        best.Dse.Pareto.item.Dse.Explore.spec
  in
  {
    samples;
    space_size =
      Dse.Space.total_designs
        ~num_layers:(Cnn.Model.num_layers model)
        ~ce_counts:Arch.Baselines.default_ce_counts;
    result;
    ms_per_design =
      1000.0 *. result.Dse.Explore.elapsed_s /. float_of_int samples;
    reference_segmented;
    reference_hybrid;
    buffer_reduction_at_segmented_throughput = Option.map fst improvements;
    throughput_gain_without_buffer_increase = Option.map snd improvements;
    refined;
  }

let print t =
  print_endline
    "Fig. 10: DSE of custom accelerators, throughput vs on-chip buffers \
     (Xception / VCU110)";
  let to_point (e : Dse.Explore.evaluated) =
    ( Util.Units.mib_of_bytes e.Dse.Explore.metrics.Mccm.Metrics.buffer_bytes,
      e.Dse.Explore.metrics.Mccm.Metrics.throughput_ips )
  in
  let series =
    [
      {
        Report.Scatter.name = "custom designs";
        marker = '.';
        points = List.map to_point t.result.Dse.Explore.evaluated;
      };
      {
        Report.Scatter.name = "Pareto front";
        marker = '*';
        points =
          List.map
            (fun (p : Dse.Explore.evaluated Dse.Pareto.point) ->
              to_point p.Dse.Pareto.item)
            t.result.Dse.Explore.front;
      };
    ]
  in
  print_string
    (Report.Scatter.render ~x_label:"on-chip buffers (MiB)"
       ~y_label:"throughput (inf/s)" series);
  Format.printf
    "space: %.3g designs over CE counts 2-11; sampled %d; evaluated %d \
     feasible in %.1f s (%.2f ms per design)@."
    t.space_size t.samples
    (List.length t.result.Dse.Explore.evaluated)
    t.result.Dse.Explore.elapsed_s t.ms_per_design;
  Format.printf "references: Segmented/4 %a@.            Hybrid/7    %a@."
    Mccm.Metrics.pp t.reference_segmented Mccm.Metrics.pp t.reference_hybrid;
  (match t.buffer_reduction_at_segmented_throughput with
  | Some r ->
    Format.printf
      "best custom design matching Segmented/4 throughput cuts buffers by \
       %.0f%%@."
      (100.0 *. r)
  | None -> print_endline "no custom design matches Segmented/4 throughput");
  (match t.throughput_gain_without_buffer_increase with
  | Some g ->
    Format.printf
      "best custom design within Segmented/4's buffer budget gains %.0f%% \
       throughput@."
      (100.0 *. g)
  | None ->
    print_endline "no custom design fits within Segmented/4's buffer budget");
  match t.refined with
  | [] | [ _ ] -> print_endline "local search: front design is a local optimum"
  | steps ->
    Format.printf
      "local search refines the front's best design over %d moves:@."
      (List.length steps - 1);
    List.iter
      (fun (s : Dse.Enumerate.step) ->
        Format.printf "  %-26s -> %5.1f inf/s, buffers %a@."
          s.Dse.Enumerate.moved
          s.Dse.Enumerate.metrics.Mccm.Metrics.throughput_ips
          Util.Units.pp_bytes
          s.Dse.Enumerate.metrics.Mccm.Metrics.buffer_bytes)
      steps
