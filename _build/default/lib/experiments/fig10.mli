(** Fig. 10 — design-space exploration of custom accelerators (a
    Hybrid-like first block followed by Segmented-like blocks) on
    Xception / VCU110, driven by MCCM's fast evaluation.

    Reports the design-space size (the paper quotes roughly 97.1 billion
    for 2-11 CEs on Xception), the evaluation rate, the
    throughput/buffer Pareto front, and the improvements over the two
    reference baselines of Fig. 8 (Segmented/4: highest throughput;
    Hybrid/7: smallest buffers). *)

type t = {
  samples : int;
  space_size : float;
  result : Dse.Explore.result;
  ms_per_design : float;
  reference_segmented : Mccm.Metrics.t;  (** Segmented/4 *)
  reference_hybrid : Mccm.Metrics.t;     (** Hybrid/7 *)
  buffer_reduction_at_segmented_throughput : float option;
  throughput_gain_without_buffer_increase : float option;
  refined : Dse.Enumerate.step list;
      (** hill-climbing trajectory from the sampled front's
          best-throughput design (the paper's "take the most promising
          architectures as starting points" step) *)
}

val run : ?samples:int -> unit -> t
(** [run ~samples ()] draws and evaluates [samples] designs (default
    5000; the paper uses 100000 — pass that for the full
    reproduction). *)

val print : t -> unit
(** Renders the scatter, the Pareto front and the headline numbers. *)
