type segment_share = {
  label : string;
  compute_share : float;
  memory_share : float;
}

type side = {
  instance : string;
  segments : segment_share list;
  stall_fraction : float;
}

type t = { a : side; b : side }

let side_of ~instance (breakdown : Mccm.Breakdown.t) =
  let total =
    List.fold_left
      (fun acc (s : Mccm.Breakdown.segment) -> acc +. s.Mccm.Breakdown.time_s)
      0.0 breakdown.Mccm.Breakdown.segments
  in
  let segments =
    List.map
      (fun (s : Mccm.Breakdown.segment) ->
        {
          label = s.Mccm.Breakdown.label;
          compute_share = s.Mccm.Breakdown.compute_s /. total;
          memory_share = s.Mccm.Breakdown.memory_s /. total;
        })
      breakdown.Mccm.Breakdown.segments
  in
  { instance; segments; stall_fraction = breakdown.Mccm.Breakdown.stall_fraction }

let run () =
  let model = Cnn.Model_zoo.resnet50 () in
  let board = Platform.Board.zc706 in
  let eval archi =
    (Mccm.Evaluate.evaluate model board archi).Mccm.Evaluate.breakdown
  in
  {
    a =
      side_of ~instance:"SegmentedRR/2"
        (eval (Arch.Baselines.segmented_rr ~ces:2 model));
    b =
      side_of ~instance:"Segmented/7"
        (eval (Arch.Baselines.segmented ~ces:7 model));
  }

let bar share =
  let n = Util.Int_math.clamp ~lo:0 ~hi:40 (int_of_float (share *. 200.0)) in
  String.make n '#'

let print_side s =
  Format.printf "%s (stall fraction %.1f%%)@." s.instance
    (100.0 *. s.stall_fraction);
  Format.printf "%-8s %9s %9s@." "segment" "compute" "memory";
  List.iter
    (fun seg ->
      Format.printf "%-8s %8.2f%% %8.2f%%  C|%s@.%28s M|%s@." seg.label
        (100.0 *. seg.compute_share)
        (100.0 *. seg.memory_share)
        (bar seg.compute_share) "" (bar seg.memory_share))
    s.segments

let print t =
  print_endline
    "Fig. 6: segment compute and memory time, normalised to overall \
     execution time (ResNet50 / ZC706)";
  print_side t.a;
  print_newline ();
  print_side t.b
