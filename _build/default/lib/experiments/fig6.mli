(** Fig. 6 — per-segment compute and memory time, normalised to the
    overall execution time, for the two instances the paper examines on
    ResNet50 / ZC706: SegmentedRR with 2 CEs (memory-bound tail segments,
    engines idle a sizeable fraction of the time) and Segmented with
    7 CEs (no such bottleneck). *)

type segment_share = {
  label : string;
  compute_share : float;   (** fraction of total execution time *)
  memory_share : float;
}

type side = {
  instance : string;
  segments : segment_share list;
  stall_fraction : float;  (** engines idle waiting for memory *)
}

type t = { a : side; b : side }
(** [a] is SegmentedRR/2, [b] is Segmented/7. *)

val run : unit -> t
(** Regenerates both breakdowns. *)

val print : t -> unit
(** Renders both sides as bar-style tables. *)
