type row = { instance : string; weights_bytes : int; fms_bytes : int }

type t = { rows : row list }

let run () =
  let model = Cnn.Model_zoo.resnet50 () in
  let board = Platform.Board.zc706 in
  let instances = Common.sweep model board in
  let rows =
    List.map
      (fun style ->
        let best =
          Common.best_by ~metric:`Throughput
            (Common.instances_of_style style instances)
        in
        let acc = best.Common.metrics.Mccm.Metrics.accesses in
        {
          instance = Common.label best;
          weights_bytes = acc.Mccm.Access.weights_bytes;
          fms_bytes = acc.Mccm.Access.fms_bytes;
        })
      [ Arch.Block.Segmented_rr; Arch.Block.Segmented; Arch.Block.Hybrid ]
  in
  { rows }

let print t =
  let table =
    Util.Table.create
      ~title:
        "Fig. 7: off-chip access breakdown of the highest-throughput \
         instances (ResNet50 / ZC706)"
      ~columns:
        [
          ("instance", Util.Table.Left);
          ("weights", Util.Table.Right);
          ("feature maps", Util.Table.Right);
          ("FM share", Util.Table.Right);
        ]
      ()
  in
  List.iter
    (fun r ->
      let total = r.weights_bytes + r.fms_bytes in
      Util.Table.add_row table
        [
          r.instance;
          Format.asprintf "%a" Util.Units.pp_bytes r.weights_bytes;
          Format.asprintf "%a" Util.Units.pp_bytes r.fms_bytes;
          Printf.sprintf "%.1f%%"
            (100.0 *. float_of_int r.fms_bytes /. float_of_int (max 1 total));
        ])
    t.rows;
  Util.Table.print table
