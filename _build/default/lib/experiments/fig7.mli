(** Fig. 7 — off-chip access breakdown (weights vs feature maps) for the
    highest-throughput instance of each architecture on ResNet50 / ZC706.
    The paper's takeaway: weight compression would pay off for
    SegmentedRR and Hybrid, FM compression would be pure overhead. *)

type row = {
  instance : string;
  weights_bytes : int;
  fms_bytes : int;
}

type t = { rows : row list }

val run : unit -> t
(** Regenerates the breakdown. *)

val print : t -> unit
(** Renders the split per instance. *)
