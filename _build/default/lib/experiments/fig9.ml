type segment_stat = {
  label : string;
  buffer_share : float;
  underutilization : float;
  underutilization_norm : float;
}

type side = { instance : string; segments : segment_stat list }

type t = { segmented : side; hybrid : side }

let run () =
  let model = Cnn.Model_zoo.xception () in
  let board = Platform.Board.vcu110 in
  let breakdown archi =
    (Mccm.Evaluate.evaluate model board archi).Mccm.Evaluate.breakdown
  in
  let seg = breakdown (Arch.Baselines.segmented ~ces:4 model) in
  let hyb = breakdown (Arch.Baselines.hybrid ~ces:7 model) in
  let segmented_total =
    List.fold_left
      (fun acc (s : Mccm.Breakdown.segment) ->
        acc + s.Mccm.Breakdown.buffer_bytes)
      0 seg.Mccm.Breakdown.segments
  in
  let min_under =
    let unders =
      List.map Mccm.Breakdown.underutilization
        (seg.Mccm.Breakdown.segments @ hyb.Mccm.Breakdown.segments)
    in
    Float.max 1e-6 (Util.Stats.minimum unders)
  in
  let side_of instance (b : Mccm.Breakdown.t) =
    {
      instance;
      segments =
        List.map
          (fun (s : Mccm.Breakdown.segment) ->
            let under = Mccm.Breakdown.underutilization s in
            {
              label = s.Mccm.Breakdown.label;
              buffer_share =
                float_of_int s.Mccm.Breakdown.buffer_bytes
                /. float_of_int (max 1 segmented_total);
              underutilization = under;
              underutilization_norm = under /. min_under;
            })
          b.Mccm.Breakdown.segments;
    }
  in
  {
    segmented = side_of "Segmented/4" seg;
    hybrid = side_of "Hybrid/7" hyb;
  }

let print_side s =
  Format.printf "%s@." s.instance;
  List.iter
    (fun seg ->
      Format.printf
        "  %-6s buffers %6.1f%% of Segmented total; underutilization %5.1f%% \
         (%.1fx min)@."
        seg.label
        (100.0 *. seg.buffer_share)
        (100.0 *. seg.underutilization)
        seg.underutilization_norm)
    s.segments

let print t =
  print_endline
    "Fig. 9: per-segment buffers and PE underutilization (Xception / VCU110)";
  print_side t.segmented;
  print_side t.hybrid
