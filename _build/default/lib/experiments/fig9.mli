(** Fig. 9 — bottleneck anatomy of the two promising Fig. 8 instances on
    Xception / VCU110: per-segment buffer shares (normalised to the
    Segmented instance's total buffer, as in Fig. 9a) and per-segment PE
    underutilization (normalised to the smallest underutilization across
    both instances, Fig. 9b). *)

type segment_stat = {
  label : string;
  buffer_share : float;          (** of the Segmented total buffer *)
  underutilization : float;      (** 1 - utilization *)
  underutilization_norm : float; (** normalised to the global minimum *)
}

type side = { instance : string; segments : segment_stat list }

type t = { segmented : side; hybrid : side }
(** Segmented with 4 CEs (4 segments) and Hybrid with 7 CEs (2
    segments). *)

val run : unit -> t
(** Regenerates the figure's data. *)

val print : t -> unit
(** Renders both panels. *)
