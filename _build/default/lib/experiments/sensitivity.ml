type point = {
  value : float;
  instance : string;
  metrics : Mccm.Metrics.t;
  stall_fraction : float;
}

type sweep = { resource : string; points : point list }

type t = { sweeps : sweep list }

let instances model =
  [
    ("Segmented/4", Arch.Baselines.segmented ~ces:4 model);
    ("SegmentedRR/4", Arch.Baselines.segmented_rr ~ces:4 model);
    ("Hybrid/4", Arch.Baselines.hybrid ~ces:4 model);
  ]

let eval model board archi =
  let e = Mccm.Evaluate.evaluate model board archi in
  (e.Mccm.Evaluate.metrics,
   e.Mccm.Evaluate.breakdown.Mccm.Breakdown.stall_fraction)

let sweep_points model ~values ~board_of =
  List.concat_map
    (fun v ->
      let board = board_of v in
      List.map
        (fun (instance, archi) ->
          let metrics, stall_fraction = eval model board archi in
          { value = v; instance; metrics; stall_fraction })
        (instances model))
    values

let run ?(model = Cnn.Model_zoo.resnet50 ()) () =
  let base ~dsps ~bram_mib ~bw =
    Platform.Board.v ~name:"sweep" ~dsps ~bram_mib ~bandwidth_gb_per_sec:bw ()
  in
  let bandwidth =
    {
      resource = "bandwidth (GB/s)";
      points =
        sweep_points model
          ~values:[ 1.0; 2.0; 3.2; 6.4; 12.8; 19.2; 32.0 ]
          ~board_of:(fun bw -> base ~dsps:900 ~bram_mib:2.4 ~bw);
    }
  in
  let bram =
    {
      resource = "BRAM (MiB)";
      points =
        sweep_points model
          ~values:[ 1.0; 2.4; 4.0; 7.6; 16.6 ]
          ~board_of:(fun b -> base ~dsps:900 ~bram_mib:b ~bw:3.2);
    }
  in
  let dsps =
    {
      resource = "DSPs";
      points =
        sweep_points model
          ~values:[ 256.0; 512.0; 900.0; 1800.0; 2520.0 ]
          ~board_of:(fun d ->
            base ~dsps:(int_of_float d) ~bram_mib:2.4 ~bw:3.2);
    }
  in
  { sweeps = [ bandwidth; bram; dsps ] }

let print t =
  List.iter
    (fun sweep ->
      let table =
        Util.Table.create
          ~title:(Printf.sprintf "Sensitivity: %s" sweep.resource)
          ~columns:
            [
              (sweep.resource, Util.Table.Right);
              ("instance", Util.Table.Left);
              ("latency", Util.Table.Right);
              ("throughput", Util.Table.Right);
              ("accesses", Util.Table.Right);
              ("stall", Util.Table.Right);
              ("feasible", Util.Table.Center);
            ]
          ()
      in
      List.iter
        (fun p ->
          Util.Table.add_row table
            [
              Printf.sprintf "%g" p.value;
              p.instance;
              Format.asprintf "%a" Util.Units.pp_seconds
                p.metrics.Mccm.Metrics.latency_s;
              Printf.sprintf "%.1f inf/s" p.metrics.Mccm.Metrics.throughput_ips;
              Format.asprintf "%a" Util.Units.pp_bytes
                (Mccm.Metrics.accesses_bytes p.metrics);
              Printf.sprintf "%.0f%%" (100.0 *. p.stall_fraction);
              (if p.metrics.Mccm.Metrics.feasible then "yes" else "NO");
            ])
        sweep.points;
      Util.Table.print table;
      print_newline ())
    t.sweeps
