(** Resource-sensitivity study (an extension beyond the paper's figures,
    motivated by its Table II spread: the boards differ mainly in DSP
    count, BRAM and bandwidth).

    Sweeps one resource at a time around a base board and reports how the
    three architectures respond — showing, e.g., the bandwidth at which
    SegmentedRR stops being memory-bound, and how buffer-hungry designs
    degrade as BRAM shrinks. *)

type point = {
  value : float;           (** the swept resource's value *)
  instance : string;
  metrics : Mccm.Metrics.t;
  stall_fraction : float;
}

type sweep = {
  resource : string;       (** "bandwidth (GB/s)", "BRAM (MiB)", "DSPs" *)
  points : point list;
}

type t = { sweeps : sweep list }

val run : ?model:Cnn.Model.t -> unit -> t
(** [run ()] sweeps bandwidth (1-32 GB/s), BRAM (1-16 MiB) and DSPs
    (256-2520) around a ZC706-like base for the three baselines at 4 CEs
    (default model ResNet50). *)

val print : t -> unit
(** One table per swept resource. *)
