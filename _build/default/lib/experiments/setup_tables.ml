let print_table2 () =
  let table =
    Util.Table.create ~title:"Table II: evaluation FPGA boards"
      ~columns:
        [
          ("", Util.Table.Left);
          ("ZC706", Util.Table.Right);
          ("VCU108", Util.Table.Right);
          ("VCU110", Util.Table.Right);
          ("ZCU102", Util.Table.Right);
        ]
      ()
  in
  let row name f = Util.Table.add_row table (name :: List.map f Platform.Board.all) in
  row "DSPs" (fun b -> string_of_int b.Platform.Board.dsps);
  row "Block RAM (MiB)" (fun b ->
      Printf.sprintf "%.1f" (Util.Units.mib_of_bytes b.Platform.Board.bram_bytes));
  row "Off-chip memory BW (GB/s)" (fun b ->
      Printf.sprintf "%.1f" (b.Platform.Board.bandwidth_bytes_per_sec /. 1e9));
  Util.Table.print table

let print_table3 () =
  let models = Cnn.Model_zoo.all () in
  let table =
    Util.Table.create ~title:"Table III: evaluated CNN models"
      ~columns:
        (("", Util.Table.Left)
        :: List.map (fun m -> (m.Cnn.Model.name, Util.Table.Right)) models)
      ()
  in
  let row name f = Util.Table.add_row table (name :: List.map f models) in
  row "Abbreviation" (fun m -> m.Cnn.Model.abbreviation);
  row "Conv weights (M)" (fun m ->
      Printf.sprintf "%.1f" (float_of_int (Cnn.Model.total_weights m) /. 1e6));
  row "Conv layers" (fun m -> string_of_int (Cnn.Model.num_layers m));
  row "MACs (G)" (fun m ->
      Printf.sprintf "%.2f" (float_of_int (Cnn.Model.total_macs m) /. 1e9));
  Util.Table.print table
