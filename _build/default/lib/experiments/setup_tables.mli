(** The paper's setup tables: Table II (evaluation FPGA boards) and
    Table III (evaluated CNN models).  Regenerated from the platform
    descriptions and the structural model zoo, so a drift in either shows
    up against the paper's numbers. *)

val print_table2 : unit -> unit
(** DSPs, Block RAM and off-chip bandwidth per board. *)

val print_table3 : unit -> unit
(** Abbreviation, convolutional weights and conv-layer count per CNN.
    Weight totals are convolutional weights only; the paper's totals
    additionally include classifier and normalisation parameters. *)
