type row = { label : string; latency : float; buffers : float; accesses : float }

type t = { rows : row list }

let run () =
  let model = Cnn.Model_zoo.resnet50 () in
  let board = Platform.Board.zcu102 in
  let instances = Common.sweep model board in
  let picks =
    List.map
      (fun style ->
        Common.best_by ~metric:`Latency
          (Common.instances_of_style style instances))
      [ Arch.Block.Segmented_rr; Arch.Block.Segmented; Arch.Block.Hybrid ]
  in
  let latencies =
    Report.Normalize.to_best ~higher_is_better:false
      (List.map (fun i -> i.Common.metrics.Mccm.Metrics.latency_s) picks)
  in
  let buffers =
    Report.Normalize.to_best ~higher_is_better:false
      (List.map
         (fun i -> float_of_int i.Common.metrics.Mccm.Metrics.buffer_bytes)
         picks)
  in
  let accesses =
    Report.Normalize.to_best ~higher_is_better:false
      (List.map
         (fun i -> float_of_int (Mccm.Metrics.accesses_bytes i.Common.metrics))
         picks)
  in
  let rows =
    List.map2
      (fun (i, latency) (buffers, accesses) ->
        { label = Common.label i; latency; buffers; accesses })
      (List.combine picks latencies)
      (List.combine buffers accesses)
  in
  { rows }

let print t =
  let table =
    Util.Table.create
      ~title:
        "Table I: multiple-CE accelerators on ResNet50 / ZCU102\n\
         (per-architecture lowest-latency instance; values normalised to \
         the best in each metric)"
      ~columns:
        [
          ("architecture", Util.Table.Left);
          ("latency", Util.Table.Right);
          ("on-chip buffers", Util.Table.Right);
          ("off-chip accesses", Util.Table.Right);
        ]
      ()
  in
  List.iter
    (fun r ->
      Util.Table.add_row table
        [
          r.label;
          Printf.sprintf "%.2f" r.latency;
          Printf.sprintf "%.2f" r.buffers;
          Printf.sprintf "%.2f" r.accesses;
        ])
    t.rows;
  Util.Table.print table
