(** Table I — normalized comparison of the three multiple-CE
    architectures on ResNet50 / ZCU102.

    The paper reports one representative instance per architecture; we
    take each architecture's lowest-latency instance over CE counts 2-11
    (Table I leads with latency and its SegmentedRR row is the latency
    winner), then normalise each metric column to its best value. *)

type row = {
  label : string;
  latency : float;     (** normalised, best = 1.0 *)
  buffers : float;
  accesses : float;
}

type t = { rows : row list }

val run : unit -> t
(** Regenerates the table. *)

val print : t -> unit
(** Renders it like the paper's Table I. *)
