type metric_summary = {
  segmented : Report.Accuracy.summary;
  segmented_rr : Report.Accuracy.summary;
  hybrid : Report.Accuracy.summary;
}

type t = {
  buffers : metric_summary;
  latency : metric_summary;
  throughput : metric_summary;
  accesses : metric_summary;
  experiments : int;
  best_arch_agreement : (string * int) list;
  settings : int;
}

type sample = {
  style : Arch.Block.style;
  ces : int;
  cnn : string;
  comparison : Report.Accuracy.comparison;
  estimated : Mccm.Metrics.t;
  reference : Mccm.Metrics.t;
}

let styles =
  [ Arch.Block.Segmented; Arch.Block.Segmented_rr; Arch.Block.Hybrid ]

let collect () =
  let board = Platform.Board.vcu108 in
  List.concat_map
    (fun model ->
      List.concat_map
        (fun ces ->
          List.map
            (fun style ->
              let archi = Common.baseline_arch style ~ces model in
              let built = Builder.Build.build model board archi in
              let estimated = (Mccm.Evaluate.run built).Mccm.Evaluate.metrics in
              let reference = (Sim.Simulate.run built).Sim.Simulate.metrics in
              {
                style;
                ces;
                cnn = model.Cnn.Model.abbreviation;
                comparison =
                  Report.Accuracy.compare_metrics ~reference ~estimated;
                estimated;
                reference;
              })
            styles)
        Arch.Baselines.default_ce_counts)
    (Cnn.Model_zoo.all ())

let summary_of samples pick =
  let of_style style =
    Report.Accuracy.summarize
      (List.filter_map
         (fun s -> if s.style = style then Some (pick s.comparison) else None)
         samples)
  in
  {
    segmented = of_style Arch.Block.Segmented;
    segmented_rr = of_style Arch.Block.Segmented_rr;
    hybrid = of_style Arch.Block.Hybrid;
  }

(* In how many (CNN, CE count) settings do the model and the surrogate
   name the same best architecture for a metric? *)
let agreement samples ~metric =
  let settings =
    List.sort_uniq compare (List.map (fun s -> (s.cnn, s.ces)) samples)
  in
  List.fold_left
    (fun acc (cnn, ces) ->
      let group =
        List.filter (fun s -> s.cnn = cnn && s.ces = ces) samples
      in
      let best_by value =
        List.fold_left
          (fun best s ->
            match best with
            | None -> Some s
            | Some b ->
              if Mccm.Metrics.better ~metric (value s) (value b) then Some s
              else best)
          None group
      in
      let est = best_by (fun s -> s.estimated) in
      let ref_ = best_by (fun s -> s.reference) in
      match (est, ref_) with
      | Some e, Some r when e.style = r.style -> acc + 1
      | _ -> acc)
    0 settings

let run () =
  let samples = collect () in
  let settings =
    List.length
      (List.sort_uniq compare (List.map (fun s -> (s.cnn, s.ces)) samples))
  in
  {
    buffers = summary_of samples (fun c -> c.Report.Accuracy.buffers);
    latency = summary_of samples (fun c -> c.Report.Accuracy.latency);
    throughput = summary_of samples (fun c -> c.Report.Accuracy.throughput);
    accesses = summary_of samples (fun c -> c.Report.Accuracy.accesses);
    experiments = List.length samples;
    best_arch_agreement =
      [
        ("latency", agreement samples ~metric:`Latency);
        ("throughput", agreement samples ~metric:`Throughput);
        ("buffers", agreement samples ~metric:`Buffers);
        ("accesses", agreement samples ~metric:`Accesses);
      ];
    settings;
  }

let print t =
  let table =
    Util.Table.create
      ~title:
        (Printf.sprintf
           "Table IV: MCCM accuracy vs synthesis surrogate on VCU108 (%d \
            experiments)"
           t.experiments)
      ~columns:
        [
          ("metric", Util.Table.Left);
          ("architecture", Util.Table.Left);
          ("max", Util.Table.Right);
          ("min", Util.Table.Right);
          ("average", Util.Table.Right);
        ]
      ()
  in
  let pct v = Printf.sprintf "%.1f%%" v in
  let rows ?(last = false) name (m : metric_summary) =
    List.iter
      (fun (arch, (s : Report.Accuracy.summary)) ->
        Util.Table.add_row table
          [ name; arch; pct s.Report.Accuracy.max; pct s.Report.Accuracy.min;
            pct s.Report.Accuracy.average ])
      [
        ("Segmented", m.segmented);
        ("SegmentedRR", m.segmented_rr);
        ("Hybrid", m.hybrid);
      ];
    if not last then Util.Table.add_separator table
  in
  rows "On-chip buffers" t.buffers;
  rows "Latency" t.latency;
  rows "Throughput" t.throughput;
  rows ~last:true "Off-chip accesses" t.accesses;
  Util.Table.print table;
  Format.printf
    "Best-architecture prediction agreement over %d settings: %s@."
    t.settings
    (String.concat ", "
       (List.map
          (fun (m, n) -> Printf.sprintf "%s %d/%d" m n t.settings)
          t.best_arch_agreement))
