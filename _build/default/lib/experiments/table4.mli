(** Table IV — MCCM estimation accuracy against the synthesis surrogate
    on VCU108: 150 experiments (3 architectures x 10 CE counts x 5
    CNNs), summarised as max / min / average accuracy per metric and per
    architecture, plus the best-architecture prediction agreement the
    paper reports alongside. *)

type metric_summary = {
  segmented : Report.Accuracy.summary;
  segmented_rr : Report.Accuracy.summary;
  hybrid : Report.Accuracy.summary;
}

type t = {
  buffers : metric_summary;
  latency : metric_summary;
  throughput : metric_summary;
  accesses : metric_summary;
  experiments : int;                (** 150 *)
  best_arch_agreement : (string * int) list;
      (** per metric: in how many of the 50 (CE count x CNN) settings the
          model and the surrogate pick the same best architecture *)
  settings : int;                   (** 50 *)
}

val run : unit -> t
(** Runs all 150 model + surrogate evaluations (takes a few seconds). *)

val print : t -> unit
(** Renders the summary like the paper's Table IV. *)
