type cell = {
  board : string;
  cnn : string;
  metric : string;
  winners : string list;
}

type t = {
  cells : cell list;
  columns : int;
  no_single_winner_columns : int;
  segmented_rr_latency_wins : int;
  hybrid_buffer_wins : int;
  hybrid_access_wins : int;
}

let metrics =
  [ ("latency", `Latency); ("throughput", `Throughput);
    ("accesses", `Accesses); ("buffers", `Buffers) ]

let style_of_label label =
  match String.index_opt label '/' with
  | Some i -> String.sub label 0 i
  | None -> label

let run () =
  let cells =
    List.concat_map
      (fun board ->
        List.concat_map
          (fun model ->
            let instances = Common.sweep model board in
            let candidates =
              List.map
                (fun (i : Common.instance) ->
                  { Dse.Select.label = Common.label i; metrics = i.Common.metrics })
                instances
            in
            List.map
              (fun (name, metric) ->
                {
                  board = board.Platform.Board.name;
                  cnn = model.Cnn.Model.abbreviation;
                  metric = name;
                  winners = Dse.Select.winner_labels ~metric candidates;
                })
              metrics)
          (Cnn.Model_zoo.all ()))
      Platform.Board.all
  in
  let columns =
    List.sort_uniq compare (List.map (fun c -> (c.board, c.cnn)) cells)
  in
  let column_cells col =
    List.filter (fun c -> (c.board, c.cnn) = col) cells
  in
  let count pred = List.length (List.filter pred columns) in
  let no_single_winner_columns =
    count (fun col ->
        let winner_styles_per_metric =
          List.map
            (fun c -> List.sort_uniq compare (List.map style_of_label c.winners))
            (column_cells col)
        in
        match winner_styles_per_metric with
        | [] -> false
        | first :: rest ->
          let common =
            List.fold_left
              (fun acc styles -> List.filter (fun s -> List.mem s styles) acc)
              first rest
          in
          common = [])
  in
  let wins ~metric ~style =
    count (fun col ->
        List.exists
          (fun c ->
            c.metric = metric
            && List.exists (fun w -> style_of_label w = style) c.winners)
          (column_cells col))
  in
  {
    cells;
    columns = List.length columns;
    no_single_winner_columns;
    segmented_rr_latency_wins = wins ~metric:"latency" ~style:"SegmentedRR";
    hybrid_buffer_wins = wins ~metric:"buffers" ~style:"Hybrid";
    hybrid_access_wins = wins ~metric:"accesses" ~style:"Hybrid";
  }

let print t =
  let boards =
    List.sort_uniq compare (List.map (fun c -> c.board) t.cells)
  in
  List.iter
    (fun board ->
      let cnns =
        List.sort_uniq compare
          (List.filter_map
             (fun c -> if c.board = board then Some c.cnn else None)
             t.cells)
      in
      let table =
        Util.Table.create
          ~title:(Printf.sprintf "Table V (board %s): best architectures" board)
          ~columns:
            (("metric", Util.Table.Left)
            :: List.map (fun cnn -> (cnn, Util.Table.Left)) cnns)
          ()
      in
      List.iter
        (fun (metric, _) ->
          Util.Table.add_row table
            (metric
            :: List.map
                 (fun cnn ->
                   match
                     List.find_opt
                       (fun c ->
                         c.board = board && c.cnn = cnn && c.metric = metric)
                       t.cells
                   with
                   | Some c -> String.concat " " c.winners
                   | None -> "-")
                 cnns))
        metrics;
      Util.Table.print table;
      print_newline ())
    boards;
  Format.printf
    "Insights: %d/%d columns have no single architecture winning all four \
     metrics; SegmentedRR wins latency in %d/%d; Hybrid wins buffers in \
     %d/%d; Hybrid reaches minimum accesses in %d/%d.@."
    t.no_single_winner_columns t.columns t.segmented_rr_latency_wins t.columns
    t.hybrid_buffer_wins t.columns t.hybrid_access_wins t.columns
