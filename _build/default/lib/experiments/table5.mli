(** Table V — the best architecture (with CE count) per board, CNN and
    metric, with the paper's 10% tie rule.  The paper's headline insights
    are derived alongside: in how many (board, CNN) columns no single
    architecture wins all four metrics, how often SegmentedRR wins
    latency, how often Hybrid wins buffers, and whether Hybrid always
    reaches the minimum off-chip accesses. *)

type cell = {
  board : string;
  cnn : string;
  metric : string;
  winners : string list;  (** e.g. [["Hybrid/2"; "SegmentedRR/2"]] *)
}

type t = {
  cells : cell list;
  columns : int;                         (** board x CNN combinations *)
  no_single_winner_columns : int;
  segmented_rr_latency_wins : int;
  hybrid_buffer_wins : int;
  hybrid_access_wins : int;
}

val run : unit -> t
(** Sweeps all 4 boards x 5 CNNs x 30 instances (takes ~a minute). *)

val print : t -> unit
(** Renders one table per board plus the insight summary. *)
