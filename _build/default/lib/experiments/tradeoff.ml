type point = {
  label : string;
  style : Arch.Block.style;
  ces : int;
  throughput : float;
  second : float;
}

type t = {
  title : string;
  second_axis : string;
  points : point list;
  best_throughput : (string * string) list;
  best_second : (string * string) list;
}

let styles =
  [ Arch.Block.Segmented; Arch.Block.Segmented_rr; Arch.Block.Hybrid ]

let build ~title ~second_axis ~second model board =
  let instances = Common.sweep model board in
  let points =
    List.map
      (fun (i : Common.instance) ->
        {
          label = Common.label i;
          style = i.Common.style;
          ces = i.Common.ces;
          throughput = i.Common.metrics.Mccm.Metrics.throughput_ips;
          second = second i.Common.metrics;
        })
      (List.filter
         (fun (i : Common.instance) -> i.Common.metrics.Mccm.Metrics.feasible)
         instances)
  in
  let per_style pick =
    List.filter_map
      (fun style ->
        match List.filter (fun p -> p.style = style) points with
        | [] -> None
        | ps ->
          let best = pick ps in
          Some (Arch.Block.style_to_string style, best.label))
      styles
  in
  {
    title;
    second_axis;
    points;
    best_throughput =
      per_style (Util.Stats.argmax (fun p -> p.throughput));
    best_second = per_style (Util.Stats.argmin (fun p -> p.second));
  }

let fig5 () =
  build ~title:"Fig. 5: throughput vs off-chip accesses (ResNet50 / ZC706)"
    ~second_axis:"off-chip accesses (MB)"
    ~second:(fun m -> float_of_int (Mccm.Metrics.accesses_bytes m) /. 1e6)
    (Cnn.Model_zoo.resnet50 ()) Platform.Board.zc706

let fig8 () =
  build ~title:"Fig. 8: throughput vs on-chip buffers (Xception / VCU110)"
    ~second_axis:"on-chip buffers (MiB)"
    ~second:(fun m -> Util.Units.mib_of_bytes m.Mccm.Metrics.buffer_bytes)
    (Cnn.Model_zoo.xception ()) Platform.Board.vcu110

let marker_of_style = function
  | Arch.Block.Segmented -> 's'
  | Arch.Block.Segmented_rr -> 'r'
  | Arch.Block.Hybrid -> 'h'
  | Arch.Block.Custom -> 'c'

let print t =
  print_endline t.title;
  let series =
    List.filter_map
      (fun style ->
        match List.filter (fun p -> p.style = style) t.points with
        | [] -> None
        | ps ->
          Some
            {
              Report.Scatter.name = Arch.Block.style_to_string style;
              marker = marker_of_style style;
              points = List.map (fun p -> (p.second, p.throughput)) ps;
            })
      styles
  in
  print_string
    (Report.Scatter.render ~x_label:t.second_axis
       ~y_label:"throughput (inf/s)" series);
  Format.printf "highest throughput: %s@."
    (String.concat ", "
       (List.map (fun (s, l) -> Printf.sprintf "%s -> %s" s l)
          t.best_throughput));
  Format.printf "lowest %s: %s@." t.second_axis
    (String.concat ", "
       (List.map (fun (s, l) -> Printf.sprintf "%s -> %s" s l) t.best_second))
