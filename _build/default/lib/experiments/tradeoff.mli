(** Figures 5 and 8 — trade-off scatter plots over the 30 baseline
    instances.

    Fig. 5 plots throughput against off-chip accesses for ResNet50 on
    ZC706; Fig. 8 plots throughput against on-chip buffers for Xception
    on VCU110.  Both annotate, per architecture, the instance with the
    highest throughput and the one with the smallest second metric. *)

type point = {
  label : string;
  style : Arch.Block.style;
  ces : int;
  throughput : float;
  second : float;  (** accesses bytes (Fig. 5) or buffer bytes (Fig. 8) *)
}

type t = {
  title : string;
  second_axis : string;
  points : point list;
  best_throughput : (string * string) list;  (** per style: instance label *)
  best_second : (string * string) list;
}

val fig5 : unit -> t
(** Throughput vs off-chip accesses, ResNet50 on ZC706. *)

val fig8 : unit -> t
(** Throughput vs on-chip buffers, Xception on VCU110. *)

val print : t -> unit
(** Renders the ASCII scatter and the per-architecture annotations. *)
