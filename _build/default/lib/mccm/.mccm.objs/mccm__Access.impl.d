lib/mccm/access.ml: Format List Util
