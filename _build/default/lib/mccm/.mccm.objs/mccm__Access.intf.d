lib/mccm/access.mli: Format
