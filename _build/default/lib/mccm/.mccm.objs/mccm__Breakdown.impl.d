lib/mccm/breakdown.ml: Access Float Format List Util
