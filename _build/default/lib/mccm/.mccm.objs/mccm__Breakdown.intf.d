lib/mccm/breakdown.mli: Access Format
