lib/mccm/compression.ml: Access Breakdown Float List Platform
