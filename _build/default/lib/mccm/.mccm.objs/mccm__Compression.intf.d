lib/mccm/compression.mli: Access Breakdown Platform
