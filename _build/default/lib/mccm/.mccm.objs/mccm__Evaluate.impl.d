lib/mccm/evaluate.ml: Access Arch Array Breakdown Builder Cnn Float List Metrics Pipelined_model Platform Printf Single_ce_model
