lib/mccm/evaluate.mli: Access Arch Breakdown Builder Cnn Metrics Platform
