lib/mccm/layer_report.ml: Access Array Builder Cnn Engine Format List Platform Single_ce_model Util
