lib/mccm/layer_report.mli: Access Builder Cnn Format
