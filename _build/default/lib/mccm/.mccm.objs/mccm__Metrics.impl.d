lib/mccm/metrics.ml: Access Format Util
