lib/mccm/metrics.mli: Access Format
