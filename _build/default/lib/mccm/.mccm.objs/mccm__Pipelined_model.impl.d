lib/mccm/pipelined_model.ml: Access Array Builder Cnn Engine Float List Platform Util
