lib/mccm/pipelined_model.mli: Access Builder Cnn Engine Platform
