lib/mccm/roofline.ml: Cnn Float Format Metrics Platform
