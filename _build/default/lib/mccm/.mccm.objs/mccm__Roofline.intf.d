lib/mccm/roofline.mli: Cnn Format Metrics Platform
