lib/mccm/single_ce_model.ml: Access Builder Cnn Engine Float List Platform Util
