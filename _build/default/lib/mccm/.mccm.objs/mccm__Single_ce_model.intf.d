lib/mccm/single_ce_model.mli: Access Builder Cnn Engine Platform
