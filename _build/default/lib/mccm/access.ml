type t = { weights_bytes : int; fms_bytes : int }

let zero = { weights_bytes = 0; fms_bytes = 0 }

let weights n = { weights_bytes = n; fms_bytes = 0 }

let fms n = { weights_bytes = 0; fms_bytes = n }

let add a b =
  {
    weights_bytes = a.weights_bytes + b.weights_bytes;
    fms_bytes = a.fms_bytes + b.fms_bytes;
  }

let total t = t.weights_bytes + t.fms_bytes

let sum l = List.fold_left add zero l

let pp ppf t =
  Format.fprintf ppf "%a (W %a + FM %a)" Util.Units.pp_bytes (total t)
    Util.Units.pp_bytes t.weights_bytes Util.Units.pp_bytes t.fms_bytes
