(** Off-chip access tallies, split by operand class.

    The paper's fine-grained evaluation (Use Case 2, Fig. 7) breaks
    accesses down into weight traffic and feature-map traffic; every
    access computation in the model carries that split. *)

type t = { weights_bytes : int; fms_bytes : int }

val zero : t
(** No traffic. *)

val weights : int -> t
(** [weights n] is [n] bytes of weight traffic. *)

val fms : int -> t
(** [fms n] is [n] bytes of feature-map traffic. *)

val add : t -> t -> t
(** Componentwise sum. *)

val total : t -> int
(** [weights_bytes + fms_bytes]. *)

val sum : t list -> t
(** Fold of {!add} over a list. *)

val pp : Format.formatter -> t -> unit
(** e.g. ["23.45 MiB (W 22.10 MiB + FM 1.35 MiB)"]. *)
