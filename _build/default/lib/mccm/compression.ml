type target = Weights_only | Fms_only | Both

type policy = { target : target; ratio : float; memory_bound_only : bool }

let uniform_weights ~ratio =
  { target = Weights_only; ratio; memory_bound_only = false }

let bottleneck_weights ~ratio =
  { target = Weights_only; ratio; memory_bound_only = true }

type outcome = {
  baseline_time_s : float;
  compressed_time_s : float;
  speedup : float;
  baseline_accesses : Access.t;
  compressed_accesses : Access.t;
  segments_affected : int;
}

let compressed_segment_accesses policy (s : Breakdown.segment) =
  let squeeze bytes =
    int_of_float (Float.round (float_of_int bytes /. policy.ratio))
  in
  let a = s.Breakdown.accesses in
  match policy.target with
  | Weights_only ->
    { Access.weights_bytes = squeeze a.Access.weights_bytes;
      fms_bytes = a.Access.fms_bytes }
  | Fms_only ->
    { Access.weights_bytes = a.Access.weights_bytes;
      fms_bytes = squeeze a.Access.fms_bytes }
  | Both ->
    { Access.weights_bytes = squeeze a.Access.weights_bytes;
      fms_bytes = squeeze a.Access.fms_bytes }

let applies policy (s : Breakdown.segment) =
  (not policy.memory_bound_only)
  || s.Breakdown.memory_s > s.Breakdown.compute_s

let apply ~board policy (b : Breakdown.t) =
  if policy.ratio <= 1.0 then
    invalid_arg "Compression.apply: ratio must exceed 1.0";
  let affected = ref 0 in
  let baseline_time = ref 0.0 and compressed_time = ref 0.0 in
  let baseline_acc = ref Access.zero and compressed_acc = ref Access.zero in
  List.iter
    (fun (s : Breakdown.segment) ->
      baseline_time := !baseline_time +. s.Breakdown.time_s;
      baseline_acc := Access.add !baseline_acc s.Breakdown.accesses;
      if applies policy s then begin
        incr affected;
        let acc' = compressed_segment_accesses policy s in
        let memory_s' =
          Platform.Board.bytes_to_seconds board (Access.total acc')
        in
        compressed_time :=
          !compressed_time +. Float.max s.Breakdown.compute_s memory_s';
        compressed_acc := Access.add !compressed_acc acc'
      end
      else begin
        compressed_time := !compressed_time +. s.Breakdown.time_s;
        compressed_acc := Access.add !compressed_acc s.Breakdown.accesses
      end)
    b.Breakdown.segments;
  {
    baseline_time_s = !baseline_time;
    compressed_time_s = !compressed_time;
    speedup =
      (if !compressed_time > 0.0 then !baseline_time /. !compressed_time
       else 1.0);
    baseline_accesses = !baseline_acc;
    compressed_accesses = !compressed_acc;
    segments_affected = !affected;
  }

let best_single_target ~board ~ratio b =
  let w =
    apply ~board { target = Weights_only; ratio; memory_bound_only = true } b
  in
  let f =
    apply ~board { target = Fms_only; ratio; memory_bound_only = true } b
  in
  if w.speedup >= f.speedup then (Weights_only, w) else (Fms_only, f)
