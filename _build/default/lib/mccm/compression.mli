(** What-if analysis for off-chip data compression (paper Use Case 2).

    The paper's fine-grained evaluation exists to guide optimizations such
    as compression: it identifies {e which segments} are memory-bound and
    {e which operand} dominates their traffic, so compression can be
    applied only where it pays ("compression has its overhead...
    compressing FMs would be a pure overhead").

    This module models lossless off-chip compression as a bandwidth
    multiplier on the selected operand of the selected segments: a
    segment's transfer time shrinks by the compressed share; its compute
    time is unchanged (decompressors sit on the DMA path); segment time
    remains the max of the two.  Latency and throughput are re-derived
    from the adjusted segment times; buffers are unchanged. *)

type target = Weights_only | Fms_only | Both

type policy = {
  target : target;
  ratio : float;             (** compression factor, > 1.0 *)
  memory_bound_only : bool;
      (** apply only to segments whose memory time exceeds compute time —
          the paper's recommendation *)
}

val uniform_weights : ratio:float -> policy
(** Weights everywhere. *)

val bottleneck_weights : ratio:float -> policy
(** Weights, memory-bound segments only (the paper's suggestion for
    SegmentedRR on ResNet50/ZC706). *)

type outcome = {
  baseline_time_s : float;      (** sum of segment times before *)
  compressed_time_s : float;    (** sum of segment times after *)
  speedup : float;              (** baseline / compressed, >= 1.0 *)
  baseline_accesses : Access.t;
  compressed_accesses : Access.t;
  segments_affected : int;
}

val apply : board:Platform.Board.t -> policy -> Breakdown.t -> outcome
(** [apply ~board policy breakdown] evaluates the policy on an existing
    fine-grained breakdown.  @raise Invalid_argument if [ratio <= 1.0]. *)

val best_single_target :
  board:Platform.Board.t -> ratio:float -> Breakdown.t -> target * outcome
(** [best_single_target ~board ~ratio b] compares compressing only
    weights against only FMs (both restricted to memory-bound segments)
    and returns the better target with its outcome — automating the
    paper's Fig. 7 reading. *)
