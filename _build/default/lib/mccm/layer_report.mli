(** Per-layer fine-grained evaluation.

    The methodology's outputs include "a fine-grained analysis of PE
    utilization and a breakdown of the results on the level of weights and
    FMs" (paper Section III-A).  This module reports, for every layer of a
    built accelerator: which engine runs it, its Eq. 1/Eq. 2 cycle count,
    its PE utilization, and its off-chip traffic split. *)

type row = {
  layer_index : int;
  layer_name : string;
  kind : Cnn.Layer.kind;
  engine_id : int;          (** 1-based CE id *)
  pipelined : bool;         (** tile-pipelined (vs sequential single-CE) *)
  cycles : int;             (** total cycles the engine spends on it *)
  utilization : float;      (** ideal/actual, in (0, 1] *)
  accesses : Access.t;      (** this layer's off-chip traffic *)
}

val of_build : Builder.Build.t -> row list
(** [of_build built] analyses every layer in model order.  Per-layer
    access numbers follow the same Eq. 6/Eq. 7 accounting as
    {!Evaluate.run}; block-boundary FM traffic is attributed to the
    boundary layers. *)

val hotspots : ?top:int -> row list -> row list
(** [hotspots rows] returns the [top] (default 5) layers by cycle count —
    the compute bottlenecks an architect would attack first. *)

val pp : Format.formatter -> row list -> unit
(** Tabular dump in layer order. *)
