type t = {
  latency_s : float;
  throughput_ips : float;
  buffer_bytes : int;
  accesses : Access.t;
  feasible : bool;
}

let accesses_bytes t = Access.total t.accesses

let metric_value metric t =
  match metric with
  | `Latency -> t.latency_s
  | `Throughput -> t.throughput_ips
  | `Buffers -> float_of_int t.buffer_bytes
  | `Accesses -> float_of_int (accesses_bytes t)

let better ~metric a b =
  if a.feasible <> b.feasible then a.feasible
  else
    let va = metric_value metric a and vb = metric_value metric b in
    match metric with `Throughput -> va > vb | _ -> va < vb

let pp ppf t =
  Format.fprintf ppf
    "latency %a, throughput %.2f inf/s, buffers %a, accesses %a%s"
    Util.Units.pp_seconds t.latency_s t.throughput_ips Util.Units.pp_bytes
    t.buffer_bytes Access.pp t.accesses
    (if t.feasible then "" else " [infeasible]")
