(** The four evaluation outputs of MCCM (paper Fig. 3): latency,
    throughput, on-chip buffer requirement and off-chip accesses. *)

type t = {
  latency_s : float;       (** end-to-end time for a single input *)
  throughput_ips : float;  (** steady-state inferences per second *)
  buffer_bytes : int;      (** on-chip buffer requirement (Eq. 4/5/8) *)
  accesses : Access.t;     (** off-chip traffic per inference (Eq. 6/7/9) *)
  feasible : bool;         (** false when minimal buffers exceed BRAM *)
}

val accesses_bytes : t -> int
(** Total off-chip bytes per inference. *)

val better : metric:[ `Latency | `Throughput | `Buffers | `Accesses ] -> t -> t -> bool
(** [better ~metric a b] is true when [a] beats [b] on [metric] (higher
    throughput, lower everything else).  Infeasible designs never beat
    feasible ones. *)

val metric_value : [ `Latency | `Throughput | `Buffers | `Accesses ] -> t -> float
(** Scalar view of one metric (throughput as-is; the others as given). *)

val pp : Format.formatter -> t -> unit
(** One-line summary. *)
