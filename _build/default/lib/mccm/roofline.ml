type bound = Compute_bound | Memory_bound

type t = {
  arithmetic_intensity : float;
  machine_balance : float;
  bound : bound;
  attainable_ips : float;
  achieved_ips : float;
  efficiency : float;
}

let analyze model board (metrics : Metrics.t) =
  let macs = float_of_int (Cnn.Model.total_macs model) in
  let bytes = float_of_int (max 1 (Metrics.accesses_bytes metrics)) in
  let peak_macs_per_s =
    float_of_int board.Platform.Board.dsps *. board.Platform.Board.clock_hz
  in
  let bw = board.Platform.Board.bandwidth_bytes_per_sec in
  let arithmetic_intensity = macs /. bytes in
  let machine_balance = peak_macs_per_s /. bw in
  let compute_ceiling = peak_macs_per_s /. macs in
  let memory_ceiling = bw /. bytes in
  let attainable_ips = Float.min compute_ceiling memory_ceiling in
  let bound =
    if memory_ceiling < compute_ceiling then Memory_bound else Compute_bound
  in
  {
    arithmetic_intensity;
    machine_balance;
    bound;
    attainable_ips;
    achieved_ips = metrics.Metrics.throughput_ips;
    efficiency = metrics.Metrics.throughput_ips /. attainable_ips;
  }

let pp ppf t =
  Format.fprintf ppf "%s: AI %.1f MACs/B vs balance %.1f; %.0f%% of the %.1f inf/s roofline"
    (match t.bound with
    | Compute_bound -> "compute-bound"
    | Memory_bound -> "memory-bound")
    t.arithmetic_intensity t.machine_balance
    (100.0 *. t.efficiency)
    t.attainable_ips
