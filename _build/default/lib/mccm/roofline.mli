(** Roofline analysis of an evaluated design.

    Places a design against the board's two ceilings — peak MAC rate
    (DSPs x clock) and off-chip bandwidth — using the classic roofline
    formulation: attainable throughput is the lower of
    [peak_macs / macs_per_inference] and
    [bandwidth / bytes_per_inference].  The gap between attainable and
    achieved is what the fine-grained breakdown explains (PE
    underutilization, pipeline skew, unbalanced stages). *)

type bound = Compute_bound | Memory_bound

type t = {
  arithmetic_intensity : float;
      (** MACs per off-chip byte of this design's schedule *)
  machine_balance : float;
      (** the board's MACs-per-byte break-even point *)
  bound : bound;
      (** which ceiling caps this design *)
  attainable_ips : float;
      (** roofline ceiling, inferences per second *)
  achieved_ips : float;
      (** the design's modelled throughput *)
  efficiency : float;
      (** achieved / attainable, in (0, 1] for a sound model *)
}

val analyze : Cnn.Model.t -> Platform.Board.t -> Metrics.t -> t
(** [analyze model board metrics] derives the roofline position from a
    design's access count and throughput. *)

val pp : Format.formatter -> t -> unit
(** One-line summary, e.g.
    ["memory-bound: AI 12.3 MACs/B vs balance 56.2; 61% of roofline"]. *)
