type layer_result = {
  layer_index : int;
  compute_cycles : int;
  accesses : Access.t;
  ifm_on_chip : bool;
  ofm_stays_on_chip : bool;
}

type result = {
  layers : layer_result list;
  compute_cycles : int;
  accesses : Access.t;
  compute_s : float;
  memory_s : float;
  latency_s : float;
  utilization : float;
}

(* Eq. 6 for one layer.  [ifm_in_cap] is true when the IFM occupies this
   block's FM capacity (it was produced by the previous layer); when the
   IFM sits in an inter-segment buffer it is on-chip but costs no
   capacity.  [ofm_to_interseg] likewise frees the OFM from the
   capacity.  *)
let layer_accesses ~board ~plan ~layer ~ifm_on_chip ~ifm_in_cap
    ~ofm_to_interseg =
  let bpe = board.Platform.Board.bytes_per_element in
  let cap = plan.Builder.Buffer_alloc.fm_capacity_bytes in
  let w = Cnn.Layer.weight_elements layer * bpe in
  let ifm = Cnn.Layer.ifm_elements layer * bpe in
  let ofm = Cnn.Layer.ofm_elements layer * bpe in
  let extra = layer.Cnn.Layer.extra_resident_elements * bpe in
  let ifm_cap_bytes = if ifm_in_cap then ifm else 0 in
  let ofm_cap_bytes = if ofm_to_interseg then 0 else ofm in
  let footprint = ifm_cap_bytes + ofm_cap_bytes + extra in
  (* A resident shortcut stays on-chip only while everything fits; when a
     layer spills, the shortcut spills too, at roughly one pass of its
     bytes per carrying layer (a residual chain of two carrying layers
     pays its store once and its reload once). *)
  let extra_spill = Access.fms extra in
  if ifm_on_chip then
    if footprint <= cap then
      (* Ideal case: one access per weight. *)
      (Access.weights w, true)
    else begin
      (* IFM is resident but the OFM cannot stay: stream it out.  The
         shortcut only spills if it no longer fits beside the IFM. *)
      let extra_spill =
        if ifm_cap_bytes + extra <= cap then Access.zero else extra_spill
      in
      let acc =
        Access.add
          (Access.add (Access.weights w) extra_spill)
          (if ofm_to_interseg then Access.zero else Access.fms ofm)
      in
      (acc, ofm_to_interseg)
    end
  else begin
    (* IFM off-chip.  Decide whether the OFM can accumulate on-chip, then
       charge the cheaper of Eq. 6's two streaming options. *)
    let ifm_band =
      Builder.Tiling.ifm_rows_for_ofm_rows layer ~rows:1
      * layer.Cnn.Layer.in_shape.Cnn.Shape.width
      * layer.Cnn.Layer.in_shape.Cnn.Shape.channels
      * bpe
    in
    let ifm_fits_whole = ifm + ofm_cap_bytes + extra <= cap in
    if ifm_fits_whole then
      (* Load the IFM once; everything is buffered afterwards. *)
      (Access.add (Access.weights w) (Access.fms ifm), true)
    else begin
      let extra_kept = extra + ofm_cap_bytes + ifm_band <= cap in
      let extra_reserved = if extra_kept then extra else 0 in
      let extra_spill = if extra_kept then Access.zero else extra_spill in
      let keep_ofm =
        (not ofm_to_interseg) && ofm + extra_reserved + ifm_band <= cap
      in
      let avail =
        let reserved = extra_reserved + if keep_ofm then ofm else 0 in
        max 1 (cap - reserved)
      in
      (* Option 1 — OS, locally input-stationary: each IFM chunk is loaded
         once and the weights re-streamed per chunk. *)
      let opt1_w = w * Util.Int_math.ceil_div ifm avail in
      let opt1_fm = ifm in
      (* Option 2 — OS, locally weight-stationary: each weight chunk is
         loaded once and the IFM re-streamed per chunk. *)
      let opt2_w = w in
      let opt2_fm = ifm * Util.Int_math.ceil_div w avail in
      let w_acc, ifm_acc =
        if opt1_w + opt1_fm <= opt2_w + opt2_fm then (opt1_w, opt1_fm)
        else (opt2_w, opt2_fm)
      in
      let ofm_acc = if keep_ofm || ofm_to_interseg then 0 else ofm in
      ( Access.add extra_spill
          (Access.add (Access.weights w_acc) (Access.fms (ifm_acc + ofm_acc))),
        keep_ofm || ofm_to_interseg )
    end
  end

let evaluate ~model ~board ~engine ~plan ~first ~last ~input_on_chip
    ~output_on_chip =
  let rec walk i ~ifm_on_chip ~ifm_in_cap acc =
    if i > last then List.rev acc
    else begin
      let layer = Cnn.Model.layer model i in
      let is_last = i = last in
      let ofm_to_interseg = is_last && output_on_chip in
      let accesses, ofm_stays =
        layer_accesses ~board ~plan ~layer ~ifm_on_chip ~ifm_in_cap
          ~ofm_to_interseg
      in
      (* A last layer writing off-chip does not leave its OFM for anyone. *)
      let accesses =
        if is_last && (not output_on_chip) && ofm_stays then
          Access.add accesses
            (Access.fms (Cnn.Layer.ofm_elements layer
                         * board.Platform.Board.bytes_per_element))
        else accesses
      in
      let r =
        {
          layer_index = i;
          compute_cycles = Engine.Ce.layer_cycles engine layer;
          accesses;
          ifm_on_chip;
          ofm_stays_on_chip = ofm_stays;
        }
      in
      walk (i + 1) ~ifm_on_chip:ofm_stays ~ifm_in_cap:true (r :: acc)
    end
  in
  let layers : layer_result list =
    walk first ~ifm_on_chip:input_on_chip ~ifm_in_cap:false []
  in
  let compute_cycles =
    List.fold_left (fun a (r : layer_result) -> a + r.compute_cycles) 0 layers
  in
  let accesses =
    Access.sum (List.map (fun (r : layer_result) -> r.accesses) layers)
  in
  let compute_s = Platform.Board.cycles_to_seconds board compute_cycles in
  let memory_s = Platform.Board.bytes_to_seconds board (Access.total accesses) in
  (* Per-layer overlap of compute and transfer (double-buffered streams). *)
  let latency_s =
    List.fold_left
      (fun acc (r : layer_result) ->
        let c = Platform.Board.cycles_to_seconds board r.compute_cycles in
        let m =
          Platform.Board.bytes_to_seconds board (Access.total r.accesses)
        in
        acc +. Float.max c m)
      0.0 layers
  in
  let utilization =
    Engine.Ce.average_utilization engine
      (Cnn.Model.layers_in_range model ~first ~last)
  in
  { layers; compute_cycles; accesses; compute_s; memory_s; latency_s;
    utilization }
