lib/platform/board.ml: Format List String Util
