lib/platform/board.mli: Format
