type t = {
  name : string;
  dsps : int;
  bram_bytes : int;
  bandwidth_bytes_per_sec : float;
  clock_hz : float;
  bytes_per_element : int;
}

let v ~name ~dsps ~bram_mib ~bandwidth_gb_per_sec ?(clock_mhz = 200.0)
    ?(bytes_per_element = 2) () =
  if dsps <= 0 then invalid_arg "Board.v: non-positive DSP count";
  if bram_mib <= 0.0 then invalid_arg "Board.v: non-positive BRAM";
  if bandwidth_gb_per_sec <= 0.0 then
    invalid_arg "Board.v: non-positive bandwidth";
  if clock_mhz <= 0.0 then invalid_arg "Board.v: non-positive clock";
  if bytes_per_element <= 0 then
    invalid_arg "Board.v: non-positive element size";
  {
    name;
    dsps;
    bram_bytes = Util.Units.bytes_of_mib bram_mib;
    bandwidth_bytes_per_sec = bandwidth_gb_per_sec *. 1e9;
    clock_hz = clock_mhz *. 1e6;
    bytes_per_element;
  }

let zc706 =
  v ~name:"ZC706" ~dsps:900 ~bram_mib:2.4 ~bandwidth_gb_per_sec:3.2 ()

let vcu108 =
  v ~name:"VCU108" ~dsps:768 ~bram_mib:7.6 ~bandwidth_gb_per_sec:19.2 ()

let vcu110 =
  v ~name:"VCU110" ~dsps:1800 ~bram_mib:4.0 ~bandwidth_gb_per_sec:19.2 ()

let zcu102 =
  v ~name:"ZCU102" ~dsps:2520 ~bram_mib:16.6 ~bandwidth_gb_per_sec:19.2 ()

let all = [ zc706; vcu108; vcu110; zcu102 ]

let by_name s =
  let target = String.lowercase_ascii s in
  List.find_opt (fun b -> String.lowercase_ascii b.name = target) all

let cycles_to_seconds b c = float_of_int c /. b.clock_hz

let bytes_to_seconds b n = float_of_int n /. b.bandwidth_bytes_per_sec

let pp ppf b =
  Format.fprintf ppf "%s: %d DSPs, %a BRAM, %a off-chip" b.name b.dsps
    Util.Units.pp_bytes b.bram_bytes Util.Units.pp_rate
    b.bandwidth_bytes_per_sec
