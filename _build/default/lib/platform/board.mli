(** FPGA platform descriptions.

    A board contributes three resource budgets to the evaluation
    methodology (paper Fig. 3): the number of PEs (DSP slices, one MAC per
    cycle each), the on-chip memory capacity (Block RAM) and the off-chip
    memory bandwidth.  The clock is a nominal accelerator frequency; the
    paper's comparisons are all normalized so its absolute value only sets
    the time scale. *)

type t = private {
  name : string;
  dsps : int;                     (** available PEs *)
  bram_bytes : int;               (** on-chip memory capacity *)
  bandwidth_bytes_per_sec : float;(** off-chip memory bandwidth *)
  clock_hz : float;               (** accelerator clock *)
  bytes_per_element : int;        (** datapath word size (16-bit: 2) *)
}

val v :
  name:string ->
  dsps:int ->
  bram_mib:float ->
  bandwidth_gb_per_sec:float ->
  ?clock_mhz:float ->
  ?bytes_per_element:int ->
  unit ->
  t
(** Builds a board description.  Defaults: 200 MHz clock, 2 bytes per
    element (16-bit fixed point, as used by the baseline accelerators the
    paper models).  @raise Invalid_argument on non-positive budgets. *)

val zc706 : t
(** AMD Zynq ZC706: 900 DSPs, 2.4 MiB BRAM, 3.2 GB/s (Table II). *)

val vcu108 : t
(** AMD Virtex VCU108: 768 DSPs, 7.6 MiB BRAM, 19.2 GB/s. *)

val vcu110 : t
(** AMD Virtex VCU110: 1800 DSPs, 4 MiB BRAM, 19.2 GB/s. *)

val zcu102 : t
(** AMD Zynq UltraScale+ ZCU102: 2520 DSPs, 16.6 MiB BRAM, 19.2 GB/s. *)

val all : t list
(** The four evaluation boards in Table II order. *)

val by_name : string -> t option
(** Case-insensitive lookup among {!all}. *)

val cycles_to_seconds : t -> int -> float
(** [cycles_to_seconds b c] converts a cycle count at the board clock. *)

val bytes_to_seconds : t -> int -> float
(** [bytes_to_seconds b n] is the time to move [n] bytes at full off-chip
    bandwidth. *)

val pp : Format.formatter -> t -> unit
(** One-line summary. *)
