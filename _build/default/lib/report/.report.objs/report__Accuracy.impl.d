lib/report/accuracy.ml: Float Format Mccm Util
