lib/report/accuracy.mli: Format Mccm
