lib/report/csv.ml: Buffer List Mccm Out_channel Printf String
