lib/report/csv.mli: Mccm
