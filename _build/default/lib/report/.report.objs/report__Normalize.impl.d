lib/report/normalize.ml: List Util
