lib/report/normalize.mli:
