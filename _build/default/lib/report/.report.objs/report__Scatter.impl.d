lib/report/scatter.ml: Array Buffer Float List Printf String Util
