lib/report/scatter.mli:
