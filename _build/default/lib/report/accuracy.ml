let accuracy ~reference ~estimated =
  if reference = 0.0 then invalid_arg "Accuracy.accuracy: zero reference";
  100.0 *. (1.0 -. (Float.abs (reference -. estimated) /. Float.abs reference))

type summary = { max : float; min : float; average : float }

let summarize values =
  if values = [] then invalid_arg "Accuracy.summarize: empty list";
  {
    max = Util.Stats.maximum values;
    min = Util.Stats.minimum values;
    average = Util.Stats.mean values;
  }

type comparison = {
  latency : float;
  throughput : float;
  buffers : float;
  accesses : float;
}

let compare_metrics ~(reference : Mccm.Metrics.t)
    ~(estimated : Mccm.Metrics.t) =
  {
    latency =
      accuracy ~reference:reference.Mccm.Metrics.latency_s
        ~estimated:estimated.Mccm.Metrics.latency_s;
    throughput =
      accuracy ~reference:reference.Mccm.Metrics.throughput_ips
        ~estimated:estimated.Mccm.Metrics.throughput_ips;
    buffers =
      accuracy
        ~reference:(float_of_int reference.Mccm.Metrics.buffer_bytes)
        ~estimated:(float_of_int estimated.Mccm.Metrics.buffer_bytes);
    accesses =
      accuracy
        ~reference:(float_of_int (Mccm.Metrics.accesses_bytes reference))
        ~estimated:(float_of_int (Mccm.Metrics.accesses_bytes estimated));
  }

let pp_summary ppf s =
  Format.fprintf ppf "max %.1f%% / min %.1f%% / avg %.1f%%" s.max s.min
    s.average
