(** Estimation-accuracy computation (paper Eq. 10) and aggregation over
    experiment batches (Table IV). *)

val accuracy : reference:float -> estimated:float -> float
(** [accuracy ~reference ~estimated] is
    [100 * (1 - |reference - estimated| / reference)] percent; can be
    negative when the estimate is off by more than 100%.
    @raise Invalid_argument when [reference] is zero. *)

type summary = { max : float; min : float; average : float }
(** Aggregates of a batch of accuracy values, as Table IV reports. *)

val summarize : float list -> summary
(** @raise Invalid_argument on an empty list. *)

type comparison = {
  latency : float;
  throughput : float;
  buffers : float;
  accesses : float;
}
(** Per-metric accuracies of one experiment. *)

val compare_metrics : reference:Mccm.Metrics.t -> estimated:Mccm.Metrics.t -> comparison
(** [compare_metrics ~reference ~estimated] applies Eq. 10 to the four
    metrics of one design, with the simulator (or synthesis) as
    [reference]. *)

val pp_summary : Format.formatter -> summary -> unit
(** e.g. ["max 99.4% / min 84.2% / avg 93.1%"]. *)
