type t = { header : string list; mutable rev_rows : string list list }

let create ~header = { header; rev_rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.header then
    invalid_arg "Csv.add_row: cell count mismatch";
  t.rev_rows <- cells :: t.rev_rows

let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let quote s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\""
        else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let to_string t =
  let buf = Buffer.create 1024 in
  let line cells =
    Buffer.add_string buf (String.concat "," (List.map quote cells));
    Buffer.add_char buf '\n'
  in
  line t.header;
  List.iter line (List.rev t.rev_rows);
  Buffer.contents buf

let save t ~path =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_string t))

let of_breakdown (b : Mccm.Breakdown.t) =
  let t =
    create
      ~header:
        [ "segment"; "compute_s"; "memory_s"; "time_s"; "buffer_bytes";
          "utilization"; "weights_bytes"; "fms_bytes" ]
  in
  List.iter
    (fun (s : Mccm.Breakdown.segment) ->
      add_row t
        [
          s.Mccm.Breakdown.label;
          Printf.sprintf "%.9g" s.Mccm.Breakdown.compute_s;
          Printf.sprintf "%.9g" s.Mccm.Breakdown.memory_s;
          Printf.sprintf "%.9g" s.Mccm.Breakdown.time_s;
          string_of_int s.Mccm.Breakdown.buffer_bytes;
          Printf.sprintf "%.6f" s.Mccm.Breakdown.utilization;
          string_of_int s.Mccm.Breakdown.accesses.Mccm.Access.weights_bytes;
          string_of_int s.Mccm.Breakdown.accesses.Mccm.Access.fms_bytes;
        ])
    b.Mccm.Breakdown.segments;
  t

let of_metrics_rows ~label_header rows =
  let t =
    create
      ~header:
        [ label_header; "latency_s"; "throughput_ips"; "buffer_bytes";
          "accesses_bytes"; "feasible" ]
  in
  List.iter
    (fun (label, (m : Mccm.Metrics.t)) ->
      add_row t
        [
          label;
          Printf.sprintf "%.9g" m.Mccm.Metrics.latency_s;
          Printf.sprintf "%.9g" m.Mccm.Metrics.throughput_ips;
          string_of_int m.Mccm.Metrics.buffer_bytes;
          string_of_int (Mccm.Metrics.accesses_bytes m);
          (if m.Mccm.Metrics.feasible then "1" else "0");
        ])
    rows;
  t
