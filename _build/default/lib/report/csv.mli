(** Minimal CSV writing (RFC-4180-style quoting) for exporting sweeps and
    DSE results to external plotting tools. *)

type t
(** A CSV document under construction. *)

val create : header:string list -> t
(** [create ~header] starts a document with one header row. *)

val add_row : t -> string list -> unit
(** [add_row t cells] appends a row.  @raise Invalid_argument if the cell
    count differs from the header's. *)

val to_string : t -> string
(** Renders with CRLF-free ['\n'] line endings; cells containing commas,
    quotes or newlines are quoted, with inner quotes doubled. *)

val save : t -> path:string -> unit
(** [save t ~path] writes {!to_string} to a file. *)

val of_metrics_rows :
  label_header:string -> (string * Mccm.Metrics.t) list -> t
(** [of_metrics_rows ~label_header rows] is the standard five-column
    export: label, latency_s, throughput_ips, buffer_bytes,
    accesses_bytes, feasible. *)

val of_breakdown : Mccm.Breakdown.t -> t
(** [of_breakdown b] exports per-segment fine-grained data (the Fig. 6/9
    series): segment, compute_s, memory_s, time_s, buffer_bytes,
    utilization, weights_bytes, fms_bytes. *)
