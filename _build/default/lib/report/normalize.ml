let to_best ~higher_is_better vs =
  if vs = [] then invalid_arg "Normalize.to_best: empty list";
  let best =
    if higher_is_better then Util.Stats.maximum vs else Util.Stats.minimum vs
  in
  if best <= 0.0 then invalid_arg "Normalize.to_best: non-positive best";
  List.map
    (fun v -> if higher_is_better then best /. v else v /. best)
    vs

let tie_threshold = 0.10

let within_tie ~best v = v <= best *. (1.0 +. tie_threshold)
