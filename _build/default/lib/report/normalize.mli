(** Normalisation utilities for the paper's comparative tables.

    Table I normalises each metric to the best value among the compared
    designs; Table V calls two designs tied when they are within 10% of
    each other ("to account for estimation errors"). *)

val to_best : higher_is_better:bool -> float list -> float list
(** [to_best ~higher_is_better vs] divides every value by the best one so
    the best design reads 1.0 and the rest are its multiples (for
    higher-is-better metrics the ratio is inverted, keeping 1.0 best and
    values >= 1).  @raise Invalid_argument on an empty list or a
    non-positive best. *)

val tie_threshold : float
(** The paper's tie margin: 0.10. *)

val within_tie : best:float -> float -> bool
(** [within_tie ~best v] is true when normalised value [v] is within
    {!tie_threshold} of [best] (both as to-best ratios, i.e.
    [v <= best * 1.1]). *)
