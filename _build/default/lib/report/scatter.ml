type series = { name : string; marker : char; points : (float * float) list }

let render ?(width = 72) ?(height = 20) ?(log_x = false) ?(log_y = false)
    ~x_label ~y_label series =
  let all_points = List.concat_map (fun s -> s.points) series in
  if all_points = [] then invalid_arg "Scatter.render: no points";
  let tx v =
    if log_x then
      if v <= 0.0 then invalid_arg "Scatter.render: log of non-positive x"
      else log10 v
    else v
  in
  let ty v =
    if log_y then
      if v <= 0.0 then invalid_arg "Scatter.render: log of non-positive y"
      else log10 v
    else v
  in
  let xs = List.map (fun (x, _) -> tx x) all_points in
  let ys = List.map (fun (_, y) -> ty y) all_points in
  let x_min = Util.Stats.minimum xs and x_max = Util.Stats.maximum xs in
  let y_min = Util.Stats.minimum ys and y_max = Util.Stats.maximum ys in
  let x_span = if x_max > x_min then x_max -. x_min else 1.0 in
  let y_span = if y_max > y_min then y_max -. y_min else 1.0 in
  let grid = Array.make_matrix height width ' ' in
  List.iter
    (fun s ->
      List.iter
        (fun (x, y) ->
          let cx =
            int_of_float
              (Float.round
                 ((tx x -. x_min) /. x_span *. float_of_int (width - 1)))
          in
          let cy =
            int_of_float
              (Float.round
                 ((ty y -. y_min) /. y_span *. float_of_int (height - 1)))
          in
          grid.(height - 1 - cy).(cx) <- s.marker)
        s.points)
    series;
  let buf = Buffer.create ((width + 8) * (height + 4)) in
  Buffer.add_string buf (Printf.sprintf "%s\n" y_label);
  Array.iteri
    (fun row line ->
      let y_val =
        y_max -. (float_of_int row /. float_of_int (height - 1) *. y_span)
      in
      let y_val = if log_y then Float.pow 10.0 y_val else y_val in
      Buffer.add_string buf (Printf.sprintf "%10.3g |" y_val);
      Array.iter (Buffer.add_char buf) line;
      Buffer.add_char buf '\n')
    grid;
  Buffer.add_string buf (String.make 12 ' ');
  Buffer.add_string buf (String.make width '-');
  Buffer.add_char buf '\n';
  let x_lo = if log_x then Float.pow 10.0 x_min else x_min in
  let x_hi = if log_x then Float.pow 10.0 x_max else x_max in
  Buffer.add_string buf
    (Printf.sprintf "%12s%.3g%s%.3g  (%s)\n" "" x_lo
       (String.make (max 1 (width - 16)) ' ')
       x_hi x_label);
  List.iter
    (fun s ->
      Buffer.add_string buf (Printf.sprintf "  %c = %s\n" s.marker s.name))
    series;
  Buffer.contents buf
