(** ASCII scatter plots for regenerating the paper's figures (Fig. 5, 8,
    10) in a terminal. *)

type series = {
  name : string;
  marker : char;
  points : (float * float) list;  (** (x, y) *)
}

val render :
  ?width:int ->
  ?height:int ->
  ?log_x:bool ->
  ?log_y:bool ->
  x_label:string ->
  y_label:string ->
  series list ->
  string
(** [render ~x_label ~y_label series] lays all series on one grid
    (default 72x20 characters).  When two series overlap on a cell the
    later series' marker wins.  Log scales require strictly positive
    coordinates.  @raise Invalid_argument when there are no points, or a
    non-positive coordinate meets a log scale. *)
