lib/sim/dma.ml: Platform Sim_config
