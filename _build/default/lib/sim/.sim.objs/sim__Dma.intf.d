lib/sim/dma.mli: Platform Sim_config
