lib/sim/sim_config.ml: Float Platform
