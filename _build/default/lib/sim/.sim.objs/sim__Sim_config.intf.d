lib/sim/sim_config.mli: Platform
