lib/sim/sim_pipeline.ml: Array Builder Cnn Dma Engine Float Mccm Platform Printf Sim_config Trace Util
