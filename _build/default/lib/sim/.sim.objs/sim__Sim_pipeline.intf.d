lib/sim/sim_pipeline.mli: Builder Cnn Dma Engine Mccm Platform Sim_config Trace
