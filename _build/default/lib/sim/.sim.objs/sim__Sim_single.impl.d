lib/sim/sim_single.ml: Builder Cnn Dma Engine Float List Mccm Platform Sim_config Util
