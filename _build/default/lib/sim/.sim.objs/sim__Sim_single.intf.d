lib/sim/sim_single.mli: Builder Cnn Dma Engine Mccm Platform Sim_config
