lib/sim/simulate.ml: Arch Array Builder Cnn Dma Engine Float List Mccm Platform Sim_config Sim_pipeline Sim_single Trace Util
