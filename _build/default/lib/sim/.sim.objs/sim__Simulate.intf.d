lib/sim/simulate.mli: Arch Builder Cnn Mccm Platform Sim_config Trace
