lib/sim/trace.ml: Buffer Bytes Float List Printf Util
