lib/sim/trace.mli:
