type t = {
  latency_cycles : float;
  bytes_per_cycle : float;
  mutable free_at : float;
  mutable moved : int;
}

let create cfg board ~clock_hz =
  {
    latency_cycles = float_of_int cfg.Sim_config.dma_latency_cycles;
    bytes_per_cycle = board.Platform.Board.bandwidth_bytes_per_sec /. clock_hz;
    free_at = 0.0;
    moved = 0;
  }

let transfer_cycles t ~bytes =
  if bytes <= 0 then 0.0
  else t.latency_cycles +. (float_of_int bytes /. t.bytes_per_cycle)

(* Bursts are not serialised against each other here: the simulators issue
   requests in dependency order, not time order, so strict FIFO queueing
   would let a far-future prefetch block earlier traffic.  Contention is
   instead captured in aggregate — the per-input port time bounds every
   block's initiation interval. *)
let request t ~at ~bytes =
  if bytes <= 0 then at
  else begin
    let finish = at +. transfer_cycles t ~bytes in
    if finish > t.free_at then t.free_at <- finish;
    t.moved <- t.moved + bytes;
    finish
  end

let busy_until t = t.free_at

let total_bytes t = t.moved
