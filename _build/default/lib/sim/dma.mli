(** The off-chip memory port.

    One shared DMA engine serves the whole accelerator.  Each burst pays
    an initiation latency plus its transfer time; callers that stream
    sequentially chain completions explicitly, while cross-engine
    contention is charged in aggregate (per-input port time bounds the
    initiation interval).  Time is measured in cycles of the achieved
    clock. *)

type t
(** Mutable port state. *)

val create : Sim_config.t -> Platform.Board.t -> clock_hz:float -> t
(** [create cfg board ~clock_hz] derives the port's bytes-per-cycle from
    the board bandwidth and the achieved clock. *)

val request : t -> at:float -> bytes:int -> float
(** [request port ~at ~bytes] enqueues a burst that cannot start before
    [at]; returns its completion time.  Zero-byte requests complete
    immediately at [at]. *)

val busy_until : t -> float
(** Completion time of the last accepted burst. *)

val total_bytes : t -> int
(** All bytes moved so far — the simulator's off-chip access count. *)

val transfer_cycles : t -> bytes:int -> float
(** Pure burst duration (latency + data), without queueing. *)
