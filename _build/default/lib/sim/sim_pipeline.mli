(** Event-driven simulation of a pipelined-CEs block.

    The block is replayed on the (layer, tile) grid: tile [t] of layer [l]
    starts once the covering tiles of layer [l-1] are done, its engine is
    free, and — for weights that are not retained on-chip — its weight
    burst has arrived over the shared DMA port.  Each engine walks its
    work items in (round, tile) order, which is the continuous tile
    schedule the analytical model approximates in closed form; the
    simulation adds per-tile synchronisation cost, burst latencies and
    port queueing.  Running several back-to-back inputs exposes the
    steady-state initiation interval. *)

type t = {
  finish_cycle : float;          (** completion of the last simulated input *)
  latency_cycles : float;        (** first input's end-to-end time *)
  interval_cycles : float;       (** spacing of the last two completions *)
  accesses : Mccm.Access.t;      (** per input; equals the model's *)
  port_cycles : float;           (** per input pure transfer time *)
}

val simulate :
  trace:Trace.t option ->
  cfg:Sim_config.t ->
  dma:Dma.t ->
  model:Cnn.Model.t ->
  board:Platform.Board.t ->
  engines:Engine.Ce.t array ->
  plan:Builder.Buffer_alloc.pipelined_plan ->
  first:int ->
  last:int ->
  input_on_chip:bool ->
  output_on_chip:bool ->
  start:float ->
  images:int ->
  t
(** [simulate ~images] pushes [images >= 1] inputs through the block.
    When [trace] is given, the first input's tiles and every DMA burst
    are recorded into it. *)
