(** Event-driven simulation of a single-CE block.

    The block is replayed layer by layer at weight-group granularity:
    every group of filters is fetched as a DMA burst, double-buffered
    against compute; spilled feature maps stream through the same port.
    Off-chip byte counts replay the analytical model's Eq. 6 decisions
    exactly (accesses are deterministic — paper Section V-B); what the
    simulation adds is time: burst initiation latencies, per-layer setup,
    and queueing on the shared port. *)

type t = {
  finish_cycle : float;        (** completion time of the block's work *)
  busy_cycles : float;         (** duration from its start to finish *)
  accesses : Mccm.Access.t;    (** equals the analytical model's *)
  port_cycles : float;         (** pure transfer time of its bursts *)
}

val simulate :
  cfg:Sim_config.t ->
  dma:Dma.t ->
  model:Cnn.Model.t ->
  board:Platform.Board.t ->
  engine:Engine.Ce.t ->
  plan:Builder.Buffer_alloc.single_plan ->
  first:int ->
  last:int ->
  input_on_chip:bool ->
  output_on_chip:bool ->
  start:float ->
  t
(** [simulate] runs the block once starting no earlier than [start]. *)
