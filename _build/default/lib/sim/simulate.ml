type t = { metrics : Mccm.Metrics.t; achieved_clock_hz : float }

type block_sim = {
  latency_cycles : float;
  interval_cycles : float;
  accesses : Mccm.Access.t;
  port_cycles : float;
}

let boundary_flags plan ~num_blocks ~index =
  let on_chip = plan.Builder.Buffer_alloc.inter_seg_on_chip in
  let input_on_chip = if index = 0 then false else on_chip.(index - 1) in
  let output_on_chip =
    if index = num_blocks - 1 then false else on_chip.(index)
  in
  (input_on_chip, output_on_chip)

(* Buffer accounting with BRAM-bank rounding: every physically separate
   buffer rounds up to whole banks, which is why synthesised designs use
   slightly more memory than the model predicts. *)
let banked_buffer_bytes cfg (built : Builder.Build.t) =
  let bank b = Util.Int_math.round_up_to ~multiple:cfg.Sim_config.bram_bank_bytes b in
  let plan = built.Builder.Build.plan in
  let bpe = built.Builder.Build.board.Platform.Board.bytes_per_element in
  let total = ref 0 in
  Array.iteri
    (fun bi bp ->
      match (bp, built.Builder.Build.blocks.(bi)) with
      | Builder.Buffer_alloc.Plan_single p, _ ->
        total :=
          !total
          + bank p.Builder.Buffer_alloc.weights_tile_bytes
          + bank p.Builder.Buffer_alloc.fm_capacity_bytes
      | ( Builder.Buffer_alloc.Plan_pipelined p,
          Builder.Build.Built_pipelined { first; _ } ) ->
        Array.iteri
          (fun i tile ->
            (* Two physical copies per tile buffer (double buffering). *)
            total := !total + (2 * bank tile);
            if p.Builder.Buffer_alloc.weights_retained.(i) then
              total :=
                !total
                + bank
                    (Cnn.Layer.weight_elements
                       (Cnn.Model.layer built.Builder.Build.model (first + i))
                    * bpe))
          p.Builder.Buffer_alloc.fm_tile_bytes;
        if Array.exists not p.Builder.Buffer_alloc.weights_retained then
          total := !total + bank p.Builder.Buffer_alloc.weights_staging_bytes
      | Builder.Buffer_alloc.Plan_pipelined _, Builder.Build.Built_single _ ->
        assert false)
    plan.Builder.Buffer_alloc.block_plans;
  Array.iteri
    (fun i on ->
      if on then
        total := !total + (2 * bank plan.Builder.Buffer_alloc.inter_seg_bytes.(i)))
    plan.Builder.Buffer_alloc.inter_seg_on_chip;
  !total

let simulate_block cfg ~clock (built : Builder.Build.t) ~index ~start =
  let model = built.Builder.Build.model in
  let board = built.Builder.Build.board in
  (* Each block gets a fresh port view: blocks overlap on different
     inputs, so their queueing does not chain; cross-block contention is
     captured by the global port term in {!run}. *)
  let dma = Dma.create cfg board ~clock_hz:clock in
  let plan = built.Builder.Build.plan in
  let num_blocks = Array.length built.Builder.Build.blocks in
  let input_on_chip, output_on_chip =
    boundary_flags plan ~num_blocks ~index
  in
  match
    (built.Builder.Build.blocks.(index),
     plan.Builder.Buffer_alloc.block_plans.(index))
  with
  | ( Builder.Build.Built_single { engine; first; last },
      Builder.Buffer_alloc.Plan_single splan ) ->
    let r =
      Sim_single.simulate ~cfg ~dma ~model ~board ~engine ~plan:splan ~first
        ~last ~input_on_chip ~output_on_chip ~start
    in
    {
      latency_cycles = r.Sim_single.busy_cycles;
      interval_cycles = r.Sim_single.busy_cycles;
      accesses = r.Sim_single.accesses;
      port_cycles = r.Sim_single.port_cycles;
    }
  | ( Builder.Build.Built_pipelined { engines; first; last; _ },
      Builder.Buffer_alloc.Plan_pipelined pplan ) ->
    let r =
      Sim_pipeline.simulate ~trace:None ~cfg ~dma ~model ~board ~engines
        ~plan:pplan ~first ~last ~input_on_chip ~output_on_chip ~start
        ~images:3
    in
    {
      latency_cycles = r.Sim_pipeline.latency_cycles;
      interval_cycles = r.Sim_pipeline.interval_cycles;
      accesses = r.Sim_pipeline.accesses;
      port_cycles = r.Sim_pipeline.port_cycles;
    }
  | Builder.Build.Built_single _, Builder.Buffer_alloc.Plan_pipelined _
  | Builder.Build.Built_pipelined _, Builder.Buffer_alloc.Plan_single _ ->
    assert false

let run ?(cfg = Sim_config.default) (built : Builder.Build.t) =
  let board = built.Builder.Build.board in
  let plan = built.Builder.Build.plan in
  let buffer_bytes = banked_buffer_bytes cfg built in
  let dsps_used = Array.fold_left (fun a e -> a + e.Engine.Ce.pes) 0
      built.Builder.Build.engines
  in
  let clock =
    Sim_config.achieved_clock_hz cfg board ~dsps_used ~bram_used:buffer_bytes
  in
  let num_blocks = Array.length built.Builder.Build.blocks in
  (* One input flows through the blocks in order; each block starts when
     the previous one is done with this input. *)
  let t = ref 0.0 in
  let sims =
    List.init num_blocks (fun index ->
        let s = simulate_block cfg ~clock built ~index ~start:!t in
        t := !t +. s.latency_cycles;
        s)
  in
  let latency_cycles = !t in
  let accesses = Mccm.Access.sum (List.map (fun s -> s.accesses) sims) in
  (* Initiation interval: the slowest stage when blocks overlap on
     different inputs, the whole schedule otherwise, and never faster
     than the shared port can feed one input's traffic. *)
  let ii_blocks =
    if built.Builder.Build.archi.Arch.Block.coarse_pipelined then
      List.fold_left (fun a s -> Float.max a s.interval_cycles) 0.0 sims
    else
      match sims with
      | [ only ] -> only.interval_cycles
      | _ -> latency_cycles
  in
  let ii_port = List.fold_left (fun a s -> a +. s.port_cycles) 0.0 sims in
  let ii = Float.max ii_blocks ii_port in
  let latency_s = latency_cycles /. clock in
  let throughput_ips = if ii > 0.0 then clock /. ii else 0.0 in
  {
    metrics =
      {
        Mccm.Metrics.latency_s;
        throughput_ips;
        buffer_bytes;
        accesses;
        feasible = plan.Builder.Buffer_alloc.feasible;
      };
    achieved_clock_hz = clock;
  }

let evaluate ?cfg model board archi =
  run ?cfg (Builder.Build.build model board archi)

let trace_block ?(cfg = Sim_config.default) (built : Builder.Build.t) ~block =
  let num_blocks = Array.length built.Builder.Build.blocks in
  if block < 0 || block >= num_blocks then
    invalid_arg "Simulate.trace_block: block index out of range";
  let plan = built.Builder.Build.plan in
  match
    (built.Builder.Build.blocks.(block),
     plan.Builder.Buffer_alloc.block_plans.(block))
  with
  | Builder.Build.Built_single _, _ -> None
  | ( Builder.Build.Built_pipelined { engines; first; last; _ },
      Builder.Buffer_alloc.Plan_pipelined pplan ) ->
    let board = built.Builder.Build.board in
    let buffer_bytes = banked_buffer_bytes cfg built in
    let dsps_used =
      Array.fold_left
        (fun a e -> a + e.Engine.Ce.pes)
        0 built.Builder.Build.engines
    in
    let clock =
      Sim_config.achieved_clock_hz cfg board ~dsps_used
        ~bram_used:buffer_bytes
    in
    let dma = Dma.create cfg board ~clock_hz:clock in
    let input_on_chip, output_on_chip =
      boundary_flags plan ~num_blocks ~index:block
    in
    let trace = Trace.create () in
    let _ =
      Sim_pipeline.simulate ~trace:(Some trace) ~cfg ~dma
        ~model:built.Builder.Build.model ~board ~engines ~plan:pplan ~first
        ~last ~input_on_chip ~output_on_chip ~start:0.0 ~images:1
    in
    Some trace
  | Builder.Build.Built_pipelined _, Builder.Buffer_alloc.Plan_single _ ->
    assert false
