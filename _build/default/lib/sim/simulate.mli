(** Top-level synthesis-surrogate evaluation.

    Mirrors {!Mccm.Evaluate} on the same built accelerator so the two can
    be compared one-to-one, the way the paper compares MCCM against Vitis
    HLS synthesis (Table IV).  The simulator runs at the achieved clock
    (timing-closure derating), pays DMA/setup/sync overheads, carves
    buffers out of discrete BRAM banks, and serialises all off-chip
    traffic on one port.  Off-chip access counts equal the analytical
    model's exactly — they are deterministic replay — matching the
    paper's observation that access estimation is exact. *)

type t = {
  metrics : Mccm.Metrics.t;     (** the surrogate's "ground truth" *)
  achieved_clock_hz : float;    (** post-derating clock *)
}

val run : ?cfg:Sim_config.t -> Builder.Build.t -> t
(** [run built] simulates the accelerator; [cfg] defaults to
    {!Sim_config.default}. *)

val evaluate :
  ?cfg:Sim_config.t -> Cnn.Model.t -> Platform.Board.t -> Arch.Block.arch -> t
(** Build with the Multiple-CE Builder, then {!run}. *)

val trace_block :
  ?cfg:Sim_config.t -> Builder.Build.t -> block:int -> Trace.t option
(** [trace_block built ~block] re-simulates one input through the
    [block]-th architecture block, recording a {!Trace.t} of its tiles
    and DMA bursts.  Returns [None] for a single-CE block (no tile
    schedule to show).  @raise Invalid_argument on an out-of-range
    index. *)
