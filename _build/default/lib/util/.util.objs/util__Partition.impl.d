lib/util/partition.ml: Array Printf
