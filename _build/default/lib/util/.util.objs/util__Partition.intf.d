lib/util/partition.mli:
