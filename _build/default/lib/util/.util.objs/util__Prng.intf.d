lib/util/prng.mli:
