lib/util/stats.ml: Int_math List
