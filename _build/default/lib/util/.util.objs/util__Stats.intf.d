lib/util/stats.mli:
