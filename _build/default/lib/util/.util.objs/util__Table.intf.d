lib/util/table.mli:
