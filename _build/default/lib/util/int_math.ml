let ceil_div a b =
  if b <= 0 then invalid_arg "Int_math.ceil_div: non-positive divisor";
  if a < 0 then invalid_arg "Int_math.ceil_div: negative dividend";
  (a + b - 1) / b

let round_up_to ~multiple x =
  if multiple <= 0 then invalid_arg "Int_math.round_up_to: non-positive multiple";
  if x < 0 then invalid_arg "Int_math.round_up_to: negative value";
  ceil_div x multiple * multiple

let pow b e =
  if e < 0 then invalid_arg "Int_math.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else if e land 1 = 1 then go (acc * b) (b * b) (e asr 1)
    else go acc (b * b) (e asr 1)
  in
  go 1 b e

let isqrt n =
  if n < 0 then invalid_arg "Int_math.isqrt: negative argument";
  if n = 0 then 0
  else begin
    let x = ref (int_of_float (sqrt (float_of_int n))) in
    while !x * !x > n do
      decr x
    done;
    while (!x + 1) * (!x + 1) <= n do
      incr x
    done;
    !x
  end

let divisors n =
  if n <= 0 then invalid_arg "Int_math.divisors: non-positive argument";
  let small = ref [] and large = ref [] in
  let root = isqrt n in
  for d = root downto 1 do
    if n mod d = 0 then begin
      small := d :: !small;
      if d <> n / d then large := (n / d) :: !large
    end
  done;
  !small @ List.rev !large

let closest_divisor n ~target =
  let better candidate best =
    let dc = abs (candidate - target) and db = abs (best - target) in
    dc < db || (dc = db && candidate < best)
  in
  List.fold_left
    (fun best d -> if better d best then d else best)
    n (divisors n)

let clamp ~lo ~hi x = if x < lo then lo else if x > hi then hi else x

let sum l = List.fold_left ( + ) 0 l

let binomial n k =
  if k < 0 || k > n then 0
  else begin
    let k = min k (n - k) in
    let acc = ref 1 in
    for i = 1 to k do
      (* Multiply before dividing: the intermediate product of a running
         binomial by its next factor is always divisible by [i]. *)
      acc := !acc * (n - k + i) / i
    done;
    !acc
  end

let compositions n k = binomial (n - 1) (k - 1)
