(** Integer arithmetic helpers used throughout the cost model.

    The analytical model (paper Eq. 1-9) is dominated by ceiling divisions
    over loop extents; this module centralises them together with the
    divisor enumeration used to pick parallelism factors. *)

val ceil_div : int -> int -> int
(** [ceil_div a b] is [ceil(a / b)] on non-negative [a] and positive [b].
    @raise Invalid_argument if [b <= 0] or [a < 0]. *)

val round_up_to : multiple:int -> int -> int
(** [round_up_to ~multiple x] is the least multiple of [multiple] that is
    [>= x].  @raise Invalid_argument if [multiple <= 0] or [x < 0]. *)

val pow : int -> int -> int
(** [pow b e] is [b] raised to [e].  @raise Invalid_argument on negative
    [e]. *)

val isqrt : int -> int
(** [isqrt n] is the integer square root (floor).  @raise Invalid_argument
    on negative [n]. *)

val divisors : int -> int list
(** [divisors n] lists all positive divisors of [n] in ascending order.
    @raise Invalid_argument if [n <= 0]. *)

val closest_divisor : int -> target:int -> int
(** [closest_divisor n ~target] is the divisor of [n] nearest to [target]
    (ties resolved toward the smaller divisor). *)

val clamp : lo:int -> hi:int -> int -> int
(** [clamp ~lo ~hi x] limits [x] to [\[lo, hi\]]. *)

val sum : int list -> int
(** [sum l] adds up the list. *)

val binomial : int -> int -> int
(** [binomial n k] is the binomial coefficient C(n, k), computed with
    overflow-conscious interleaved division; result must fit in [int].
    Returns [0] when [k < 0] or [k > n]. *)

val compositions : int -> int -> int
(** [compositions n k] counts the ways to split [n] items into [k]
    non-empty consecutive groups, i.e. C(n-1, k-1). *)
