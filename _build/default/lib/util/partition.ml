let prefix_sums weights =
  let n = Array.length weights in
  let p = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    if weights.(i) < 0 then
      invalid_arg "Partition.min_max_partition: negative weight";
    p.(i + 1) <- p.(i) + weights.(i)
  done;
  p

let range_weight ~weights ~first ~last =
  if first < 0 || last >= Array.length weights || first > last then
    invalid_arg "Partition.range_weight: invalid range";
  let acc = ref 0 in
  for i = first to last do
    acc := !acc + weights.(i)
  done;
  !acc

(* Exact linear-partition dynamic program.  cost.(i).(k) is the minimal
   achievable maximum part-sum when the first [i] elements are split into
   [k] parts; split.(i).(k) records the start of the last part. *)
let min_max_partition ~weights ~parts =
  let n = Array.length weights in
  if parts <= 0 then invalid_arg "Partition.min_max_partition: parts <= 0";
  if parts > n then
    invalid_arg
      (Printf.sprintf
         "Partition.min_max_partition: %d parts for %d elements" parts n);
  let p = prefix_sums weights in
  let sum_range a b = p.(b) - p.(a) in
  let cost = Array.make_matrix (n + 1) (parts + 1) max_int in
  let split = Array.make_matrix (n + 1) (parts + 1) 0 in
  cost.(0).(0) <- 0;
  for i = 1 to n do
    cost.(i).(1) <- sum_range 0 i;
    split.(i).(1) <- 0
  done;
  for k = 2 to parts do
    for i = k to n do
      for j = k - 1 to i - 1 do
        if cost.(j).(k - 1) < max_int then begin
          let candidate = max cost.(j).(k - 1) (sum_range j i) in
          if candidate < cost.(i).(k) then begin
            cost.(i).(k) <- candidate;
            split.(i).(k) <- j
          end
        end
      done
    done
  done;
  let rec backtrack i k acc =
    if k = 0 then acc
    else
      let j = split.(i).(k) in
      backtrack j (k - 1) ((j, i - 1) :: acc)
  in
  backtrack n parts []
