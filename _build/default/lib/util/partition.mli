(** Linear partitioning of a weighted sequence.

    Splitting consecutive CNN layers into pipeline segments whose work is
    balanced is the classic linear-partition problem: divide a sequence
    into [k] consecutive non-empty parts minimising the largest part sum.
    Balanced segments are what maximise coarse-grained pipeline throughput
    (paper Section IV-A1: "balancing the pipeline stages"). *)

val min_max_partition : weights:int array -> parts:int -> (int * int) list
(** [min_max_partition ~weights ~parts] returns [parts] inclusive index
    ranges [(first, last)] covering [0 .. n-1] in order, chosen to minimise
    the maximum range weight (exact dynamic program, O(n^2 k)).
    @raise Invalid_argument if [parts <= 0], [parts > n], or any weight is
    negative. *)

val range_weight : weights:int array -> first:int -> last:int -> int
(** [range_weight ~weights ~first ~last] sums the inclusive range. *)
