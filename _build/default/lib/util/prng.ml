type t = { mutable state : int64 }

let create ~seed = { state = seed }

let copy t = { state = t.state }

(* SplitMix64 (Steele, Lea, Flood 2014): a 64-bit mix of a Weyl sequence.
   Chosen for its tiny state, provable equidistribution of the underlying
   counter, and trivial portability. *)
let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let int t ~bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling over the top 62 bits to avoid modulo bias. *)
  let mask = Int64.max_int in
  let rec draw () =
    let r = Int64.to_int (Int64.logand (next_int64 t) mask) in
    let r = r land max_int in
    let v = r mod bound in
    if r - v + (bound - 1) < 0 then draw () else v
  in
  draw ()

let int_in_range t ~lo ~hi =
  if hi < lo then invalid_arg "Prng.int_in_range: hi < lo";
  lo + int t ~bound:(hi - lo + 1)

let float t =
  (* 53 random bits scaled into [0, 1). *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Prng.choose: empty array";
  arr.(int t ~bound:(Array.length arr))

let shuffle_in_place t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t ~bound:(i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sorted_distinct_ints t ~count ~lo ~hi =
  let range = hi - lo + 1 in
  if count < 0 then invalid_arg "Prng.sorted_distinct_ints: negative count";
  if range < count then
    invalid_arg "Prng.sorted_distinct_ints: range smaller than count";
  (* Floyd's algorithm: O(count) expected draws, no O(range) allocation. *)
  let module IS = Set.Make (Int) in
  let chosen = ref IS.empty in
  for j = range - count to range - 1 do
    let v = lo + int t ~bound:(j + 1) in
    if IS.mem v !chosen then chosen := IS.add (lo + j) !chosen
    else chosen := IS.add v !chosen
  done;
  IS.elements !chosen
