(** Deterministic pseudo-random number generation.

    A self-contained SplitMix64 generator.  Every stochastic experiment in
    the repository (design-space sampling in particular) draws from this
    module so that results are reproducible across runs and platforms. *)

type t
(** Mutable generator state. *)

val create : seed:int64 -> t
(** [create ~seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator starting from [t]'s current
    state. *)

val next_int64 : t -> int64
(** [next_int64 t] advances the state and returns 64 uniformly random
    bits. *)

val int : t -> bound:int -> int
(** [int t ~bound] is uniform in [\[0, bound)].  @raise Invalid_argument if
    [bound <= 0]. *)

val int_in_range : t -> lo:int -> hi:int -> int
(** [int_in_range t ~lo ~hi] is uniform in [\[lo, hi\]] inclusive.
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float
(** [float t] is uniform in [\[0, 1)]. *)

val bool : t -> bool
(** [bool t] is a fair coin flip. *)

val choose : t -> 'a array -> 'a
(** [choose t arr] picks a uniform element.  @raise Invalid_argument on an
    empty array. *)

val shuffle_in_place : t -> 'a array -> unit
(** [shuffle_in_place t arr] applies a Fisher-Yates shuffle. *)

val sorted_distinct_ints : t -> count:int -> lo:int -> hi:int -> int list
(** [sorted_distinct_ints t ~count ~lo ~hi] draws [count] distinct integers
    from [\[lo, hi\]] and returns them sorted ascending.  Used to draw random
    segment boundaries.  @raise Invalid_argument if the range holds fewer
    than [count] integers. *)
