type align = Left | Right | Center

type row = Cells of string list | Separator

type t = {
  title : string option;
  headers : string list;
  aligns : align list;
  mutable rows : row list; (* reversed *)
}

let create ?title ~columns () =
  {
    title;
    headers = List.map fst columns;
    aligns = List.map snd columns;
    rows = [];
  }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: cell count mismatch";
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = width - n in
    match align with
    | Left -> s ^ String.make fill ' '
    | Right -> String.make fill ' ' ^ s
    | Center ->
      let left = fill / 2 in
      String.make left ' ' ^ s ^ String.make (fill - left) ' '

let render t =
  let rows = List.rev t.rows in
  let widths =
    List.fold_left
      (fun ws row ->
        match row with
        | Separator -> ws
        | Cells cells -> List.map2 (fun w c -> max w (String.length c)) ws cells)
      (List.map String.length t.headers)
      rows
  in
  let buf = Buffer.create 1024 in
  let rule () =
    Buffer.add_char buf '+';
    List.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let line cells aligns =
    Buffer.add_char buf '|';
    List.iteri
      (fun i c ->
        let w = List.nth widths i and a = List.nth aligns i in
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad a w c);
        Buffer.add_string buf " |")
      cells;
    Buffer.add_char buf '\n'
  in
  (match t.title with
  | None -> ()
  | Some title ->
    Buffer.add_string buf title;
    Buffer.add_char buf '\n');
  rule ();
  line t.headers (List.map (fun _ -> Center) t.headers);
  rule ();
  List.iter
    (fun row ->
      match row with
      | Separator -> rule ()
      | Cells cells -> line cells t.aligns)
    rows;
  rule ();
  Buffer.contents buf

let escape_markdown s =
  String.concat "\\|" (String.split_on_char '|' s)

let render_markdown t =
  let rows = List.rev t.rows in
  let buf = Buffer.create 1024 in
  (match t.title with
  | None -> ()
  | Some title ->
    Buffer.add_string buf "### ";
    Buffer.add_string buf title;
    Buffer.add_string buf "\n\n");
  let line cells =
    Buffer.add_string buf "| ";
    Buffer.add_string buf (String.concat " | " (List.map escape_markdown cells));
    Buffer.add_string buf " |\n"
  in
  line t.headers;
  Buffer.add_string buf "|";
  List.iter
    (fun a ->
      Buffer.add_string buf
        (match a with
        | Left -> " :--- |"
        | Right -> " ---: |"
        | Center -> " :---: |"))
    t.aligns;
  Buffer.add_string buf "\n";
  List.iter
    (fun row -> match row with Separator -> () | Cells cells -> line cells)
    rows;
  Buffer.contents buf

let print t = print_string (render t)
