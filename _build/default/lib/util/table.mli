(** Plain-text table rendering.

    The benchmark harness regenerates the paper's tables as aligned ASCII;
    this module owns column sizing and alignment so every table in the
    output looks the same. *)

type align = Left | Right | Center

type t
(** A table under construction. *)

val create : ?title:string -> columns:(string * align) list -> unit -> t
(** [create ~columns ()] starts a table whose header and per-column
    alignment are given by [columns]. *)

val add_row : t -> string list -> unit
(** [add_row t cells] appends a data row.  @raise Invalid_argument if the
    number of cells differs from the number of columns. *)

val add_separator : t -> unit
(** [add_separator t] inserts a horizontal rule between the rows added so
    far and the ones added later. *)

val render : t -> string
(** [render t] lays the table out with box-drawing in plain ASCII. *)

val render_markdown : t -> string
(** [render_markdown t] renders GitHub-flavoured markdown: a header row,
    an alignment row (using [:---]/[---:]/[:---:]), and the data rows.
    Separators added with {!add_separator} have no markdown equivalent
    and are dropped; pipe characters in cells are escaped. *)

val print : t -> unit
(** [print t] renders to standard output followed by a newline. *)
