let kib = 1024
let mib = 1024 * 1024
let gib = 1024 * 1024 * 1024

let mib_of_bytes b = float_of_int b /. float_of_int mib

let bytes_of_mib m = int_of_float (Float.round (m *. float_of_int mib))

let pp_bytes ppf b =
  let f = float_of_int b in
  if b >= gib then Format.fprintf ppf "%.2f GiB" (f /. float_of_int gib)
  else if b >= mib then Format.fprintf ppf "%.2f MiB" (f /. float_of_int mib)
  else if b >= kib then Format.fprintf ppf "%.2f KiB" (f /. float_of_int kib)
  else Format.fprintf ppf "%d B" b

let pp_rate ppf r =
  if r >= 1e9 then Format.fprintf ppf "%.1f GB/s" (r /. 1e9)
  else if r >= 1e6 then Format.fprintf ppf "%.1f MB/s" (r /. 1e6)
  else Format.fprintf ppf "%.0f B/s" r

let pp_seconds ppf s =
  if s >= 1.0 then Format.fprintf ppf "%.3f s" s
  else if s >= 1e-3 then Format.fprintf ppf "%.3f ms" (s *. 1e3)
  else if s >= 1e-6 then Format.fprintf ppf "%.3f us" (s *. 1e6)
  else Format.fprintf ppf "%.1f ns" (s *. 1e9)

let pp_count ppf c =
  if c >= 1e9 then Format.fprintf ppf "%.2f G" (c /. 1e9)
  else if c >= 1e6 then Format.fprintf ppf "%.2f M" (c /. 1e6)
  else if c >= 1e3 then Format.fprintf ppf "%.2f K" (c /. 1e3)
  else Format.fprintf ppf "%.0f" c
