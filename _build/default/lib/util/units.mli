(** Unit conversions and human-readable formatting of sizes, rates and
    times.  All byte quantities in the repository are plain [int] byte
    counts; this module is the single place where they are scaled for
    display. *)

val kib : int
(** 1 KiB in bytes. *)

val mib : int
(** 1 MiB in bytes. *)

val gib : int
(** 1 GiB in bytes. *)

val mib_of_bytes : int -> float
(** [mib_of_bytes b] is [b] expressed in MiB. *)

val bytes_of_mib : float -> int
(** [bytes_of_mib m] is [m] MiB expressed in (rounded) bytes. *)

val pp_bytes : Format.formatter -> int -> unit
(** Pretty-print a byte count with a binary suffix, e.g. ["2.40 MiB"]. *)

val pp_rate : Format.formatter -> float -> unit
(** Pretty-print a bytes-per-second rate, e.g. ["19.2 GB/s"] (decimal
    prefix, matching vendor datasheets). *)

val pp_seconds : Format.formatter -> float -> unit
(** Pretty-print a duration picking an appropriate unit among s, ms, us,
    ns. *)

val pp_count : Format.formatter -> float -> unit
(** Pretty-print a dimensionless magnitude with K/M/G suffixes, e.g.
    ["25.6 M"]. *)
