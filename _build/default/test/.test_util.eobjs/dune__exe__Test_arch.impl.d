test/test_arch.ml: Alcotest Arch Cnn Fun List Printf QCheck2 QCheck_alcotest Result
