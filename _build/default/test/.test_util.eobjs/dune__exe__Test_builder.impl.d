test/test_builder.ml: Alcotest Arch Array Builder Cnn Engine List Platform Printf QCheck2 QCheck_alcotest String Util Workload_helper
