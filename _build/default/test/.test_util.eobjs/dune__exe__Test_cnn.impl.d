test/test_cnn.ml: Alcotest Cnn List Printf QCheck2 QCheck_alcotest
