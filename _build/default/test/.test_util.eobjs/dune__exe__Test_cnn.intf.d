test/test_cnn.mli:
