test/test_compression.ml: Alcotest Arch Cnn List Mccm Platform QCheck2 QCheck_alcotest
