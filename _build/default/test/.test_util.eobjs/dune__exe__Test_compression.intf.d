test/test_compression.mli:
