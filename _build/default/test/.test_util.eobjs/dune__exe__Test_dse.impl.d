test/test_dse.ml: Alcotest Arch Cnn Dse List Mccm Platform Printf QCheck2 QCheck_alcotest Util
