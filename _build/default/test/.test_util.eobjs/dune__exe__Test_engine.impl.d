test/test_engine.ml: Alcotest Cnn Engine Format List QCheck2 QCheck_alcotest Util
