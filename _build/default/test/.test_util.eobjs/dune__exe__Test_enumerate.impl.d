test/test_enumerate.ml: Alcotest Arch Array Builder Cnn Dse Engine Fun List Mccm Platform Printf
