test/test_experiments.ml: Alcotest Arch Cnn Experiments Lazy List Mccm Platform
