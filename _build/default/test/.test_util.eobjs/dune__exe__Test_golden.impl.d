test/test_golden.ml: Alcotest Arch Cnn Dse Float Lazy List Mccm Platform Printf
