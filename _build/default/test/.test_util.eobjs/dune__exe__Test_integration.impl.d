test/test_integration.ml: Alcotest Arch Dse Experiments Float List Mccm Printf Report String Util
