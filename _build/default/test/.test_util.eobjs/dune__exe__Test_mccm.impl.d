test/test_mccm.ml: Alcotest Arch Array Builder Cnn Engine Float List Mccm Platform Printf QCheck2 QCheck_alcotest Util
