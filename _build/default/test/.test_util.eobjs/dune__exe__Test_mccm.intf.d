test/test_mccm.mli:
