test/test_model_io.ml: Alcotest Arch Cnn List Mccm Platform Printf Result String
