test/test_model_io.mli:
