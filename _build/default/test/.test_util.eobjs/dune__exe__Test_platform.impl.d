test/test_platform.ml: Alcotest List Platform Util
