test/test_report.ml: Alcotest Float List Mccm QCheck2 QCheck_alcotest Report String
