test/test_reporting.ml: Alcotest Arch Builder Cnn Filename In_channel List Mccm Platform Report String Sys
