test/test_robustness.ml: Alcotest Arch Builder Bytes Cnn Dse Int64 List Mccm Platform Printf QCheck2 QCheck_alcotest Sim String Util
