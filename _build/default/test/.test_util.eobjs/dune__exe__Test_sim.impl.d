test/test_sim.ml: Alcotest Arch Array Builder Cnn Hashtbl List Mccm Platform Printf QCheck2 QCheck_alcotest Report Sim String
