test/test_util.ml: Alcotest Array Format Fun Int64 List QCheck2 QCheck_alcotest String Util
