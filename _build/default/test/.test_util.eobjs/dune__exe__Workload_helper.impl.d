test/workload_helper.ml: Builder
