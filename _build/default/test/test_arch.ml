(* Tests for architecture descriptions: blocks, the paper notation,
   baseline generators and custom DSE architectures. *)

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let res50 = Cnn.Model_zoo.resnet50 ()
let mobv2 = Cnn.Model_zoo.mobilenet_v2 ()

(* ------------------------------------------------------------ Block *)

let test_block_accessors () =
  let s = Arch.Block.Single { ce = 0; first = 2; last = 5 } in
  let p = Arch.Block.Pipelined { ce_first = 1; ce_last = 3; first = 6; last = 9 } in
  check "single layers" 4 (Arch.Block.num_layers_of_block s);
  check "single ces" 1 (Arch.Block.ce_count s);
  check "pipelined ces" 3 (Arch.Block.ce_count p);
  Alcotest.(check (list int)) "ces list" [ 1; 2; 3 ] (Arch.Block.ces_of_block p)

let test_arch_validation_gap () =
  Alcotest.check_raises "gap"
    (Invalid_argument "Block.arch: block starts at layer 5, expected 4")
    (fun () ->
      ignore
        (Arch.Block.arch ~name:"bad" ~style:Arch.Block.Custom
           ~blocks:
             [
               Arch.Block.Single { ce = 0; first = 0; last = 3 };
               Arch.Block.Single { ce = 1; first = 5; last = 9 };
             ]
           ~coarse_pipelined:true ~num_layers:10))

let test_arch_validation_short () =
  Alcotest.check_raises "short"
    (Invalid_argument "Block.arch: blocks cover 4 layers, model has 10")
    (fun () ->
      ignore
        (Arch.Block.arch ~name:"bad" ~style:Arch.Block.Custom
           ~blocks:[ Arch.Block.Single { ce = 0; first = 0; last = 3 } ]
           ~coarse_pipelined:false ~num_layers:10))

let test_total_ces_dedup () =
  let a =
    Arch.Block.arch ~name:"reuse" ~style:Arch.Block.Segmented
      ~blocks:
        [
          Arch.Block.Single { ce = 0; first = 0; last = 4 };
          Arch.Block.Single { ce = 1; first = 5; last = 7 };
          Arch.Block.Single { ce = 0; first = 8; last = 9 };
        ]
      ~coarse_pipelined:true ~num_layers:10
  in
  check "two distinct engines" 2 (Arch.Block.total_ces a)

(* --------------------------------------------------------- Notation *)

let test_notation_parse_segmented () =
  match
    Arch.Notation.parse ~num_layers:12 "{L1-L4:CE1, L5-L6:CE2, L7-L12:CE3}"
  with
  | Error e -> Alcotest.failf "parse error: %s" e
  | Ok blocks ->
    check "three blocks" 3 (List.length blocks);
    (match List.hd blocks with
    | Arch.Block.Single { ce; first; last } ->
      check "ce" 0 ce;
      check "first" 0 first;
      check "last" 3 last
    | Arch.Block.Pipelined _ -> Alcotest.fail "expected Single")

let test_notation_parse_rr () =
  match Arch.Notation.parse ~num_layers:53 "{L1-Last:CE1-CE4}" with
  | Error e -> Alcotest.failf "parse error: %s" e
  | Ok [ Arch.Block.Pipelined { ce_first; ce_last; first; last } ] ->
    check "ce_first" 0 ce_first;
    check "ce_last" 3 ce_last;
    check "first" 0 first;
    check "last" 52 last
  | Ok _ -> Alcotest.fail "expected one pipelined block"

let test_notation_single_layer () =
  match Arch.Notation.parse ~num_layers:5 "{L1:CE1, L2-L5:CE2}" with
  | Error e -> Alcotest.failf "parse error: %s" e
  | Ok blocks -> check "two blocks" 2 (List.length blocks)

let test_notation_whitespace_and_case () =
  checkb "tolerant" true
    (Result.is_ok
       (Arch.Notation.parse ~num_layers:10 "{ l1 - l4 : ce1 , l5-last : ce2-ce3 }"))

let test_notation_errors () =
  let bad s =
    checkb (Printf.sprintf "reject %s" s) true
      (Result.is_error (Arch.Notation.parse ~num_layers:10 s))
  in
  bad "";
  bad "{L1-L4:CE1";
  bad "{L0-L4:CE1}";
  bad "{L1-L20:CE1}";
  bad "{L4-L2:CE1}";
  bad "{L1-L4:CE2-CE1}";
  bad "{L1-L4:CE1} trailing";
  bad "{L1-L4:}";
  bad "{L1?L4:CE1}"

let test_notation_round_trip_baselines () =
  List.iter
    (fun (_, archi) ->
      let s = Arch.Notation.to_string archi in
      match
        Arch.Notation.parse_arch
          ~coarse_pipelined:archi.Arch.Block.coarse_pipelined
          ~num_layers:(Cnn.Model.num_layers res50) s
      with
      | Error e -> Alcotest.failf "round trip failed for %s: %s" s e
      | Ok parsed ->
        Alcotest.(check string)
          "same notation" s
          (Arch.Notation.to_string parsed))
    (Arch.Baselines.all_instances res50)

let test_parse_arch_non_contiguous () =
  checkb "parse_arch rejects gaps" true
    (Result.is_error
       (Arch.Notation.parse_arch ~coarse_pipelined:true ~num_layers:10
          "{L1-L4:CE1, L6-L10:CE2}"))

(* -------------------------------------------------------- Baselines *)

let test_segmented_structure () =
  let a = Arch.Baselines.segmented ~ces:4 res50 in
  check "4 blocks" 4 (Arch.Block.num_blocks a);
  check "4 ces" 4 (Arch.Block.total_ces a);
  checkb "coarse pipelined" true a.Arch.Block.coarse_pipelined;
  List.iter
    (fun b ->
      match b with
      | Arch.Block.Single _ -> ()
      | Arch.Block.Pipelined _ -> Alcotest.fail "Segmented has single blocks")
    a.Arch.Block.blocks

let test_segmented_balanced () =
  (* MAC-balanced boundaries: the largest segment should not be grossly
     above the mean (the DP is optimal, so <= 2x mean is loose). *)
  let a = Arch.Baselines.segmented ~ces:4 res50 in
  let total = Cnn.Model.total_macs res50 in
  List.iter
    (fun b ->
      let first, last = Arch.Block.layer_range b in
      let m = Cnn.Model.macs_in_range res50 ~first ~last in
      checkb "segment below 2x mean" true (m * 4 <= 2 * total))
    a.Arch.Block.blocks

let test_segmented_rr_structure () =
  let a = Arch.Baselines.segmented_rr ~ces:4 res50 in
  check "1 block" 1 (Arch.Block.num_blocks a);
  check "4 ces" 4 (Arch.Block.total_ces a);
  checkb "not coarse pipelined" false a.Arch.Block.coarse_pipelined

let test_hybrid_structure () =
  let a = Arch.Baselines.hybrid ~ces:4 res50 in
  check "2 blocks" 2 (Arch.Block.num_blocks a);
  match a.Arch.Block.blocks with
  | [ Arch.Block.Pipelined { first; last; _ }; Arch.Block.Single { first = f2; last = l2; _ } ] ->
    check "first part layers" 3 (last - first + 1);
    check "rest start" 3 f2;
    check "rest end" 52 l2
  | _ -> Alcotest.fail "unexpected hybrid structure"

let test_hybrid_dual_structure () =
  let a = Arch.Baselines.hybrid_dual ~ces:6 mobv2 in
  check "2 blocks" 2 (Arch.Block.num_blocks a);
  check "6 ces" 6 (Arch.Block.total_ces a);
  match a.Arch.Block.blocks with
  | [ Arch.Block.Pipelined { first = 0; last = 3; _ };
      Arch.Block.Pipelined { ce_first = 4; ce_last = 5; first = 4; last; _ } ] ->
    check "covers rest" (Cnn.Model.num_layers mobv2 - 1) last
  | _ -> Alcotest.fail "unexpected dual structure"

let test_hybrid_dual_invalid () =
  Alcotest.check_raises "2 CEs"
    (Invalid_argument "Baselines.hybrid_dual: needs at least 3 CEs (1 + 2)")
    (fun () -> ignore (Arch.Baselines.hybrid_dual ~ces:2 mobv2))

let test_extremes_structure () =
  let s = Arch.Baselines.single_ce mobv2 in
  check "one block" 1 (Arch.Block.num_blocks s);
  check "one engine" 1 (Arch.Block.total_ces s);
  let l = Arch.Baselines.layer_per_ce mobv2 in
  check "engine per layer" (Cnn.Model.num_layers mobv2) (Arch.Block.total_ces l)

let test_baseline_invalid_ces () =
  Alcotest.check_raises "1 CE"
    (Invalid_argument
       "Baselines.segmented: a multiple-CE accelerator needs at least 2 CEs")
    (fun () -> ignore (Arch.Baselines.segmented ~ces:1 res50))

let test_all_instances () =
  check "30 instances" 30 (List.length (Arch.Baselines.all_instances res50));
  check "ce counts" 10 (List.length Arch.Baselines.default_ce_counts)

(* -------------------------------------------------------- Shorthand *)

let test_shorthand_baselines () =
  let ok s expected_name =
    match Arch.Shorthand.parse res50 s with
    | Ok a -> Alcotest.(check string) s expected_name a.Arch.Block.name
    | Error e -> Alcotest.failf "%s: %s" s e
  in
  ok "segmented/4" "Segmented/4";
  ok "SegmentedRR/2" "SegmentedRR/2";
  ok " hybrid/7 " "Hybrid/7";
  ok "hybriddual/6" "HybridDual/6";
  ok "singlece" "SingleCE";
  ok "LayerPerCE" "LayerPerCE"

let test_shorthand_notation () =
  match Arch.Shorthand.parse res50 "{L1-L10:CE1, L11-Last:CE2}" with
  | Ok a -> check "two blocks" 2 (Arch.Block.num_blocks a)
  | Error e -> Alcotest.failf "notation: %s" e

let test_shorthand_errors () =
  checkb "gibberish rejected" true
    (Result.is_error (Arch.Shorthand.parse res50 "frobnicate/3"));
  checkb "bad ces propagates" true
    (Result.is_error (Arch.Shorthand.parse res50 "segmented/1"));
  checkb "bad notation propagates" true
    (Result.is_error (Arch.Shorthand.parse res50 "{L1-L99:CE1}"))

(* ----------------------------------------------------------- Custom *)

let test_custom_balanced () =
  let a = Arch.Custom.balanced mobv2 ~pipelined_layers:5 ~tail_segments:3 in
  check "4 blocks" 4 (Arch.Block.num_blocks a);
  check "8 ces" 8 (Arch.Block.total_ces a);
  match a.Arch.Block.blocks with
  | Arch.Block.Pipelined { first = 0; last = 4; _ } :: rest ->
    check "3 tail blocks" 3 (List.length rest)
  | _ -> Alcotest.fail "expected leading pipelined block"

let test_custom_spec_validation () =
  Alcotest.check_raises "bad boundary"
    (Invalid_argument "Custom.arch_of_spec: bad tail boundary") (fun () ->
      ignore
        (Arch.Custom.arch_of_spec mobv2
           { Arch.Custom.pipelined_layers = 5; tail_boundaries = [ 4 ] }))

let test_custom_total_ces () =
  check "spec ces" 7
    (Arch.Custom.total_ces
       { Arch.Custom.pipelined_layers = 4; tail_boundaries = [ 10; 20 ] })

(* ------------------------------------------------------- properties *)

let prop_baseline_coverage =
  QCheck2.Test.make ~name:"baselines cover every layer exactly once"
    QCheck2.Gen.(pair (int_range 2 11) (oneofl [ `Seg; `Rr; `Hyb ]))
    (fun (ces, which) ->
      let a =
        match which with
        | `Seg -> Arch.Baselines.segmented ~ces res50
        | `Rr -> Arch.Baselines.segmented_rr ~ces res50
        | `Hyb -> Arch.Baselines.hybrid ~ces res50
      in
      let covered =
        List.concat_map
          (fun b ->
            let first, last = Arch.Block.layer_range b in
            List.init (last - first + 1) (fun i -> first + i))
          a.Arch.Block.blocks
      in
      covered = List.init (Cnn.Model.num_layers res50) Fun.id)

let prop_notation_round_trip =
  QCheck2.Test.make ~name:"notation round trip on random customs"
    QCheck2.Gen.(pair (int_range 1 10) (int_range 1 5))
    (fun (f, s) ->
      QCheck2.assume (f + s <= 20);
      let model = mobv2 in
      QCheck2.assume (Cnn.Model.num_layers model - f >= s);
      let a = Arch.Custom.balanced model ~pipelined_layers:f ~tail_segments:s in
      let str = Arch.Notation.to_string a in
      match
        Arch.Notation.parse_arch ~coarse_pipelined:true
          ~num_layers:(Cnn.Model.num_layers model) str
      with
      | Error _ -> false
      | Ok parsed -> Arch.Notation.to_string parsed = str)

let properties =
  List.map QCheck_alcotest.to_alcotest
    [ prop_baseline_coverage; prop_notation_round_trip ]

let () =
  Alcotest.run "arch"
    [
      ( "block",
        [
          Alcotest.test_case "accessors" `Quick test_block_accessors;
          Alcotest.test_case "validation gap" `Quick test_arch_validation_gap;
          Alcotest.test_case "validation short" `Quick test_arch_validation_short;
          Alcotest.test_case "total ces dedup" `Quick test_total_ces_dedup;
        ] );
      ( "notation",
        [
          Alcotest.test_case "parse segmented" `Quick test_notation_parse_segmented;
          Alcotest.test_case "parse round robin" `Quick test_notation_parse_rr;
          Alcotest.test_case "single layer" `Quick test_notation_single_layer;
          Alcotest.test_case "whitespace/case" `Quick test_notation_whitespace_and_case;
          Alcotest.test_case "errors" `Quick test_notation_errors;
          Alcotest.test_case "round trip baselines" `Quick
            test_notation_round_trip_baselines;
          Alcotest.test_case "non-contiguous" `Quick test_parse_arch_non_contiguous;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "segmented structure" `Quick test_segmented_structure;
          Alcotest.test_case "segmented balanced" `Quick test_segmented_balanced;
          Alcotest.test_case "segmented_rr structure" `Quick test_segmented_rr_structure;
          Alcotest.test_case "hybrid structure" `Quick test_hybrid_structure;
          Alcotest.test_case "hybrid dual structure" `Quick
            test_hybrid_dual_structure;
          Alcotest.test_case "hybrid dual invalid" `Quick
            test_hybrid_dual_invalid;
          Alcotest.test_case "extremes structure" `Quick
            test_extremes_structure;
          Alcotest.test_case "invalid ces" `Quick test_baseline_invalid_ces;
          Alcotest.test_case "all instances" `Quick test_all_instances;
        ] );
      ( "shorthand",
        [
          Alcotest.test_case "baselines" `Quick test_shorthand_baselines;
          Alcotest.test_case "notation" `Quick test_shorthand_notation;
          Alcotest.test_case "errors" `Quick test_shorthand_errors;
        ] );
      ( "custom",
        [
          Alcotest.test_case "balanced" `Quick test_custom_balanced;
          Alcotest.test_case "spec validation" `Quick test_custom_spec_validation;
          Alcotest.test_case "total ces" `Quick test_custom_total_ces;
        ] );
      ("properties", properties);
    ]
