(* Unit and property tests for the CNN representation and model zoo. *)

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ------------------------------------------------------------ Shape *)

let test_shape_basics () =
  let s = Cnn.Shape.v ~channels:3 ~height:224 ~width:224 in
  check "elements" (3 * 224 * 224) (Cnn.Shape.elements s);
  Alcotest.(check string) "to_string" "3x224x224" (Cnn.Shape.to_string s)

let test_shape_invalid () =
  Alcotest.check_raises "zero channel"
    (Invalid_argument "Shape.v: non-positive dimension") (fun () ->
      ignore (Cnn.Shape.v ~channels:0 ~height:1 ~width:1))

let test_conv_output_same () =
  let s = Cnn.Shape.v ~channels:3 ~height:224 ~width:224 in
  let o =
    Cnn.Shape.conv_output s ~kernel:3 ~stride:1
      ~padding:(Cnn.Shape.same_padding ~kernel:3)
      ~out_channels:64
  in
  checkb "same padding preserves spatial" true
    (Cnn.Shape.equal o (Cnn.Shape.v ~channels:64 ~height:224 ~width:224))

let test_conv_output_strided () =
  let s = Cnn.Shape.v ~channels:3 ~height:224 ~width:224 in
  let o = Cnn.Shape.conv_output s ~kernel:7 ~stride:2 ~padding:3 ~out_channels:64 in
  check "112 high" 112 o.Cnn.Shape.height;
  check "112 wide" 112 o.Cnn.Shape.width

let test_same_padding () =
  check "k=1" 0 (Cnn.Shape.same_padding ~kernel:1);
  check "k=3" 1 (Cnn.Shape.same_padding ~kernel:3);
  check "k=7" 3 (Cnn.Shape.same_padding ~kernel:7)

(* ------------------------------------------------------------ Layer *)

let conv_layer ?(index = 0) ?(kind = Cnn.Layer.Standard) ?(in_c = 3)
    ?(out_c = 64) ?(hw = 224) ?(k = 3) ?(stride = 1) ?(extra = 0) () =
  Cnn.Layer.v ~index ~name:(Printf.sprintf "l%d" index) ~kind
    ~in_shape:(Cnn.Shape.v ~channels:in_c ~height:hw ~width:hw)
    ~out_channels:out_c ~kernel:k ~stride
    ~padding:(Cnn.Shape.same_padding ~kernel:k)
    ~extra_resident_elements:extra ()

let test_layer_weights () =
  check "standard 3x3" (64 * 3 * 3 * 3)
    (Cnn.Layer.weight_elements (conv_layer ()));
  check "pointwise" (128 * 64)
    (Cnn.Layer.weight_elements
       (conv_layer ~kind:Cnn.Layer.Pointwise ~in_c:64 ~out_c:128 ~k:1 ()));
  check "depthwise" (64 * 9)
    (Cnn.Layer.weight_elements
       (conv_layer ~kind:Cnn.Layer.Depthwise ~in_c:64 ~out_c:64 ()))

let test_layer_macs () =
  (* Standard conv: out_h*out_w*out_c*in_c*k*k. *)
  check "standard" (224 * 224 * 64 * 3 * 9) (Cnn.Layer.macs (conv_layer ()));
  (* Depthwise drops the cross-channel factor. *)
  check "depthwise" (224 * 224 * 64 * 9)
    (Cnn.Layer.macs (conv_layer ~kind:Cnn.Layer.Depthwise ~in_c:64 ~out_c:64 ()))

let test_layer_fms () =
  let l = conv_layer ~extra:100 () in
  check "ifm" (3 * 224 * 224) (Cnn.Layer.ifm_elements l);
  check "ofm" (64 * 224 * 224) (Cnn.Layer.ofm_elements l);
  check "fms includes extra"
    ((3 * 224 * 224) + (64 * 224 * 224) + 100)
    (Cnn.Layer.fms_elements l)

let test_layer_loop_extents () =
  let l = conv_layer ~in_c:16 ~out_c:32 ~hw:56 () in
  check "filters" 32 (Cnn.Layer.loop_extent l `Filters);
  check "channels" 16 (Cnn.Layer.loop_extent l `Channels);
  check "height" 56 (Cnn.Layer.loop_extent l `Height);
  check "kernel" 3 (Cnn.Layer.loop_extent l `Kernel_w);
  let dw = conv_layer ~kind:Cnn.Layer.Depthwise ~in_c:16 ~out_c:16 () in
  check "depthwise has no filter loop" 1 (Cnn.Layer.loop_extent dw `Filters)

let test_layer_invalid () =
  Alcotest.check_raises "depthwise channel mismatch"
    (Invalid_argument "Layer.v: depthwise must preserve channel count")
    (fun () ->
      ignore (conv_layer ~kind:Cnn.Layer.Depthwise ~in_c:16 ~out_c:32 ()));
  Alcotest.check_raises "pointwise kernel"
    (Invalid_argument "Layer.v: pointwise kernel must be 1") (fun () ->
      ignore (conv_layer ~kind:Cnn.Layer.Pointwise ~k:3 ()))

(* ------------------------------------------------------------ Model *)

let tiny_model () =
  let l0 = conv_layer ~index:0 () in
  let l1 =
    Cnn.Layer.v ~index:1 ~name:"l1" ~kind:Cnn.Layer.Pointwise
      ~in_shape:(Cnn.Layer.out_shape l0) ~out_channels:32 ~kernel:1 ~stride:1
      ~padding:0 ()
  in
  Cnn.Model.v ~name:"Tiny" ~abbreviation:"Tny" ~layers:[ l0; l1 ]

let test_model_ranges () =
  let m = tiny_model () in
  check "num_layers" 2 (Cnn.Model.num_layers m);
  check "macs range = total"
    (Cnn.Model.total_macs m)
    (Cnn.Model.macs_in_range m ~first:0 ~last:1);
  check "weights single layer"
    (Cnn.Layer.weight_elements (Cnn.Model.layer m 1))
    (Cnn.Model.weights_in_range m ~first:1 ~last:1)

let test_model_validation () =
  let l0 = conv_layer ~index:0 () in
  let bad = conv_layer ~index:5 () in
  Alcotest.check_raises "bad indices"
    (Invalid_argument "Model.v: layer l5 has index 5, expected 1") (fun () ->
      ignore
        (Cnn.Model.v ~name:"Bad" ~abbreviation:"B"
           ~layers:[ l0; Cnn.Layer.with_index bad ~index:5 ]))

let test_model_out_of_range () =
  let m = tiny_model () in
  Alcotest.check_raises "layer 9"
    (Invalid_argument "Model.layer: index 9 out of range") (fun () ->
      ignore (Cnn.Model.layer m 9))

(* -------------------------------------------------------- Model zoo *)

(* Conv-layer counts from the paper's Table III. *)
let test_zoo_layer_counts () =
  check "ResNet152" 155 (Cnn.Model.num_layers (Cnn.Model_zoo.resnet152 ()));
  check "ResNet50" 53 (Cnn.Model.num_layers (Cnn.Model_zoo.resnet50 ()));
  check "Xception" 74 (Cnn.Model.num_layers (Cnn.Model_zoo.xception ()));
  check "DenseNet121" 120 (Cnn.Model.num_layers (Cnn.Model_zoo.densenet121 ()));
  check "MobileNetV2" 52 (Cnn.Model.num_layers (Cnn.Model_zoo.mobilenet_v2 ()))

(* Convolutional weight totals within a few percent of the published
   architectures (Table III totals additionally include classifier and
   batch-norm parameters). *)
let test_zoo_weight_ballpark () =
  let within model lo hi =
    let w = Cnn.Model.total_weights model in
    checkb
      (Printf.sprintf "%s weights %d in [%d, %d]" model.Cnn.Model.name w lo hi)
      true
      (w >= lo && w <= hi)
  in
  within (Cnn.Model_zoo.resnet50 ()) 23_000_000 24_000_000;
  within (Cnn.Model_zoo.resnet152 ()) 57_000_000 59_000_000;
  within (Cnn.Model_zoo.xception ()) 20_000_000 21_500_000;
  within (Cnn.Model_zoo.densenet121 ()) 6_500_000 7_200_000;
  within (Cnn.Model_zoo.mobilenet_v2 ()) 2_100_000 2_300_000

(* Published MAC counts (one 224/299-input inference). *)
let test_zoo_mac_ballpark () =
  let within model lo hi =
    let m = Cnn.Model.total_macs model in
    checkb
      (Printf.sprintf "%s MACs %d in [%d, %d]" model.Cnn.Model.name m lo hi)
      true
      (m >= lo && m <= hi)
  in
  within (Cnn.Model_zoo.resnet50 ()) 3_800_000_000 4_300_000_000;
  within (Cnn.Model_zoo.mobilenet_v2 ()) 280_000_000 320_000_000;
  within (Cnn.Model_zoo.xception ()) 8_000_000_000 9_000_000_000

let test_zoo_shapes_chain () =
  (* Every layer's spatial extent must divide sensibly: outputs are
     positive and channels match declared structures. *)
  List.iter
    (fun m ->
      for i = 0 to Cnn.Model.num_layers m - 1 do
        let l = Cnn.Model.layer m i in
        let o = Cnn.Layer.out_shape l in
        checkb "positive out" true
          (o.Cnn.Shape.channels > 0 && o.Cnn.Shape.height > 0
         && o.Cnn.Shape.width > 0)
      done)
    (Cnn.Model_zoo.all ())

let test_zoo_residual_extras () =
  (* ResNet50 carries shortcut residency on mid-block layers. *)
  let m = Cnn.Model_zoo.resnet50 () in
  let with_extra =
    List.length
      (List.filter
         (fun (l : Cnn.Layer.t) -> l.Cnn.Layer.extra_resident_elements > 0)
         (Cnn.Model.layers_in_range m ~first:0 ~last:(Cnn.Model.num_layers m - 1)))
  in
  (* 16 blocks x (c1-of-first-block + c2 + c3 coverage) => at least 32. *)
  checkb "many layers carry shortcut residency" true (with_extra >= 32)

let test_zoo_depthwise_presence () =
  let count_kind m kind =
    List.length
      (List.filter
         (fun (l : Cnn.Layer.t) -> l.Cnn.Layer.kind = kind)
         (Cnn.Model.layers_in_range m ~first:0 ~last:(Cnn.Model.num_layers m - 1)))
  in
  check "MobileNetV2 depthwise" 17
    (count_kind (Cnn.Model_zoo.mobilenet_v2 ()) Cnn.Layer.Depthwise);
  check "Xception depthwise" 34
    (count_kind (Cnn.Model_zoo.xception ()) Cnn.Layer.Depthwise);
  check "ResNet50 has none" 0
    (count_kind (Cnn.Model_zoo.resnet50 ()) Cnn.Layer.Depthwise)

let test_zoo_lookup () =
  checkb "res50" true (Cnn.Model_zoo.by_abbreviation "res50" <> None);
  checkb "XCP case-insensitive" true (Cnn.Model_zoo.by_abbreviation "XCP" <> None);
  checkb "unknown" true (Cnn.Model_zoo.by_abbreviation "nope" = None)

let test_zoo_input_shapes () =
  checkb "imagenet input" true
    (Cnn.Shape.equal
       (Cnn.Model.input_shape (Cnn.Model_zoo.resnet50 ()))
       (Cnn.Shape.v ~channels:3 ~height:224 ~width:224));
  checkb "xception input" true
    (Cnn.Shape.equal
       (Cnn.Model.input_shape (Cnn.Model_zoo.xception ()))
       (Cnn.Shape.v ~channels:3 ~height:299 ~width:299))

(* ------------------------------------------------------- properties *)

let layer_gen =
  QCheck2.Gen.(
    let* in_c = int_range 1 64 in
    let* out_c = int_range 1 64 in
    let* hw = int_range 7 64 in
    let* k = oneofl [ 1; 3; 5; 7 ] in
    let* stride = int_range 1 2 in
    return (in_c, out_c, hw, k, stride))

let prop_macs_vs_weights =
  QCheck2.Test.make ~name:"macs = weights x output spatial (standard conv)"
    layer_gen (fun (in_c, out_c, hw, k, stride) ->
      let l =
        Cnn.Layer.v ~index:0 ~name:"p" ~kind:Cnn.Layer.Standard
          ~in_shape:(Cnn.Shape.v ~channels:in_c ~height:hw ~width:hw)
          ~out_channels:out_c ~kernel:k ~stride
          ~padding:(Cnn.Shape.same_padding ~kernel:k)
          ()
      in
      let o = Cnn.Layer.out_shape l in
      Cnn.Layer.macs l
      = Cnn.Layer.weight_elements l * o.Cnn.Shape.height * o.Cnn.Shape.width)

let prop_out_shape_shrinks =
  QCheck2.Test.make ~name:"stride-2 halves spatial extent (same padding)"
    layer_gen (fun (in_c, out_c, hw, k, _) ->
      QCheck2.assume (k mod 2 = 1);
      let l =
        Cnn.Layer.v ~index:0 ~name:"p" ~kind:Cnn.Layer.Standard
          ~in_shape:(Cnn.Shape.v ~channels:in_c ~height:hw ~width:hw)
          ~out_channels:out_c ~kernel:k ~stride:2
          ~padding:(Cnn.Shape.same_padding ~kernel:k)
          ()
      in
      let o = Cnn.Layer.out_shape l in
      o.Cnn.Shape.height = ((hw - 1) / 2) + 1 || o.Cnn.Shape.height = hw / 2)

let properties =
  List.map QCheck_alcotest.to_alcotest
    [ prop_macs_vs_weights; prop_out_shape_shrinks ]

let () =
  Alcotest.run "cnn"
    [
      ( "shape",
        [
          Alcotest.test_case "basics" `Quick test_shape_basics;
          Alcotest.test_case "invalid" `Quick test_shape_invalid;
          Alcotest.test_case "conv same" `Quick test_conv_output_same;
          Alcotest.test_case "conv strided" `Quick test_conv_output_strided;
          Alcotest.test_case "same padding" `Quick test_same_padding;
        ] );
      ( "layer",
        [
          Alcotest.test_case "weights" `Quick test_layer_weights;
          Alcotest.test_case "macs" `Quick test_layer_macs;
          Alcotest.test_case "fms" `Quick test_layer_fms;
          Alcotest.test_case "loop extents" `Quick test_layer_loop_extents;
          Alcotest.test_case "invalid" `Quick test_layer_invalid;
        ] );
      ( "model",
        [
          Alcotest.test_case "ranges" `Quick test_model_ranges;
          Alcotest.test_case "validation" `Quick test_model_validation;
          Alcotest.test_case "out of range" `Quick test_model_out_of_range;
        ] );
      ( "zoo",
        [
          Alcotest.test_case "layer counts (Table III)" `Quick test_zoo_layer_counts;
          Alcotest.test_case "weight ballpark" `Quick test_zoo_weight_ballpark;
          Alcotest.test_case "MAC ballpark" `Quick test_zoo_mac_ballpark;
          Alcotest.test_case "shape chain" `Quick test_zoo_shapes_chain;
          Alcotest.test_case "residual extras" `Quick test_zoo_residual_extras;
          Alcotest.test_case "depthwise presence" `Quick test_zoo_depthwise_presence;
          Alcotest.test_case "lookup" `Quick test_zoo_lookup;
          Alcotest.test_case "input shapes" `Quick test_zoo_input_shapes;
        ] );
      ("properties", properties);
    ]
