(* Tests for the compression what-if analysis (Use Case 2). *)

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))

let res50 = Cnn.Model_zoo.resnet50 ()

let segrr2_breakdown () =
  (Mccm.Evaluate.evaluate res50 Platform.Board.zc706
     (Arch.Baselines.segmented_rr ~ces:2 res50))
    .Mccm.Evaluate.breakdown

let board = Platform.Board.zc706

let test_invalid_ratio () =
  let b = segrr2_breakdown () in
  Alcotest.check_raises "ratio 1.0"
    (Invalid_argument "Compression.apply: ratio must exceed 1.0") (fun () ->
      ignore
        (Mccm.Compression.apply ~board
           (Mccm.Compression.uniform_weights ~ratio:2.0
           |> fun p -> { p with Mccm.Compression.ratio = 1.0 })
           b))

let test_speedup_at_least_one () =
  let b = segrr2_breakdown () in
  List.iter
    (fun policy ->
      let o = Mccm.Compression.apply ~board policy b in
      checkb "speedup >= 1" true (o.Mccm.Compression.speedup >= 1.0 -. 1e-12);
      checkb "time does not grow" true
        (o.Mccm.Compression.compressed_time_s
        <= o.Mccm.Compression.baseline_time_s +. 1e-12))
    [
      Mccm.Compression.uniform_weights ~ratio:2.0;
      Mccm.Compression.bottleneck_weights ~ratio:2.0;
      { Mccm.Compression.target = Fms_only; ratio = 2.0;
        memory_bound_only = true };
    ]

let test_bottleneck_weights_helps_segrr () =
  (* SegmentedRR/2 on ZC706 is weight-traffic bound in its tail; the
     paper's recommended policy must yield a real speedup. *)
  let b = segrr2_breakdown () in
  let o =
    Mccm.Compression.apply ~board
      (Mccm.Compression.bottleneck_weights ~ratio:2.0)
      b
  in
  checkb "affects segments" true (o.Mccm.Compression.segments_affected > 0);
  checkb "speedup over 3%" true (o.Mccm.Compression.speedup > 1.03)

let test_fm_compression_useless_for_segrr () =
  (* Fig. 7's reading: FM compression is pure overhead for SegmentedRR. *)
  let b = segrr2_breakdown () in
  let o =
    Mccm.Compression.apply ~board
      { Mccm.Compression.target = Fms_only; ratio = 4.0;
        memory_bound_only = true }
      b
  in
  checkb "speedup below 1%" true (o.Mccm.Compression.speedup < 1.01)

let test_best_single_target_picks_weights () =
  let b = segrr2_breakdown () in
  let target, _ = Mccm.Compression.best_single_target ~board ~ratio:2.0 b in
  checkb "weights win" true (target = Mccm.Compression.Weights_only)

let test_accesses_reduced_exactly () =
  (* Uniform 2x weight compression halves weight bytes everywhere. *)
  let b = segrr2_breakdown () in
  let o =
    Mccm.Compression.apply ~board
      (Mccm.Compression.uniform_weights ~ratio:2.0)
      b
  in
  let base = o.Mccm.Compression.baseline_accesses in
  let comp = o.Mccm.Compression.compressed_accesses in
  (* Rounding per segment: allow one byte per segment of slack. *)
  let segments = List.length (segrr2_breakdown ()).Mccm.Breakdown.segments in
  checkb "weights halved" true
    (abs ((base.Mccm.Access.weights_bytes / 2) - comp.Mccm.Access.weights_bytes)
    <= segments);
  check "FM bytes untouched" base.Mccm.Access.fms_bytes
    comp.Mccm.Access.fms_bytes

let test_memory_bound_only_filter () =
  let b = segrr2_breakdown () in
  let all = Mccm.Compression.apply ~board (Mccm.Compression.uniform_weights ~ratio:2.0) b in
  let bound =
    Mccm.Compression.apply ~board (Mccm.Compression.bottleneck_weights ~ratio:2.0) b
  in
  checkb "uniform touches more segments" true
    (all.Mccm.Compression.segments_affected
    >= bound.Mccm.Compression.segments_affected);
  check "uniform touches all" (List.length b.Mccm.Breakdown.segments)
    all.Mccm.Compression.segments_affected

let test_baseline_time_matches_breakdown () =
  let b = segrr2_breakdown () in
  let o =
    Mccm.Compression.apply ~board (Mccm.Compression.uniform_weights ~ratio:2.0) b
  in
  let expect =
    List.fold_left
      (fun acc (s : Mccm.Breakdown.segment) -> acc +. s.Mccm.Breakdown.time_s)
      0.0 b.Mccm.Breakdown.segments
  in
  checkf "baseline time" expect o.Mccm.Compression.baseline_time_s

let prop_higher_ratio_never_slower =
  QCheck2.Test.make ~name:"higher ratio never reduces the speedup" ~count:20
    QCheck2.Gen.(pair (float_range 1.1 4.0) (float_range 0.1 4.0))
    (fun (r, dr) ->
      let b = segrr2_breakdown () in
      let s ratio =
        (Mccm.Compression.apply ~board
           (Mccm.Compression.bottleneck_weights ~ratio)
           b)
          .Mccm.Compression.speedup
      in
      s (r +. dr) >= s r -. 1e-9)

let () =
  Alcotest.run "compression"
    [
      ( "apply",
        [
          Alcotest.test_case "invalid ratio" `Quick test_invalid_ratio;
          Alcotest.test_case "speedup >= 1" `Quick test_speedup_at_least_one;
          Alcotest.test_case "bottleneck weights help" `Quick
            test_bottleneck_weights_helps_segrr;
          Alcotest.test_case "FM compression useless" `Quick
            test_fm_compression_useless_for_segrr;
          Alcotest.test_case "best target" `Quick
            test_best_single_target_picks_weights;
          Alcotest.test_case "accesses reduced exactly" `Quick
            test_accesses_reduced_exactly;
          Alcotest.test_case "memory-bound filter" `Quick
            test_memory_bound_only_filter;
          Alcotest.test_case "baseline time" `Quick
            test_baseline_time_matches_breakdown;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_higher_ratio_never_slower ] );
    ]
