(* Tests for compute-engine modelling: parallelism strategies, dataflows
   and Eq. 1 latency. *)

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))

let layer ?(kind = Cnn.Layer.Standard) ?(in_c = 8) ?(out_c = 6) ?(hw = 8)
    ?(k = 3) () =
  Cnn.Layer.v ~index:0 ~name:"l" ~kind
    ~in_shape:(Cnn.Shape.v ~channels:in_c ~height:hw ~width:hw)
    ~out_channels:out_c ~kernel:k ~stride:1
    ~padding:(Cnn.Shape.same_padding ~kernel:k)
    ()

(* ------------------------------------------------------ Parallelism *)

let test_parallelism_degree () =
  let p = Engine.Parallelism.three_d ~filters:4 ~height:2 ~width:2 in
  check "degree" 16 (Engine.Parallelism.degree p);
  check "filters" 4 (Engine.Parallelism.factor p Engine.Parallelism.Filters);
  check "channels default" 1
    (Engine.Parallelism.factor p Engine.Parallelism.Channels)

let test_parallelism_invalid () =
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Parallelism.of_factors: non-positive factor")
    (fun () ->
      ignore (Engine.Parallelism.of_factors [ (Engine.Parallelism.Filters, 0) ]));
  Alcotest.check_raises "repeated"
    (Invalid_argument "Parallelism.of_factors: repeated dimension") (fun () ->
      ignore
        (Engine.Parallelism.of_factors
           [ (Engine.Parallelism.Filters, 2); (Engine.Parallelism.Filters, 3) ]))

let test_parallelism_pp () =
  let p = Engine.Parallelism.three_d ~filters:4 ~height:2 ~width:2 in
  Alcotest.(check string) "pp" "F4xH2xW2"
    (Format.asprintf "%a" Engine.Parallelism.pp p);
  Alcotest.(check string) "scalar" "scalar"
    (Format.asprintf "%a" Engine.Parallelism.pp Engine.Parallelism.scalar)

let test_dims_used () =
  let p = Engine.Parallelism.three_d ~filters:4 ~height:1 ~width:2 in
  check "two dims" 2 (List.length (Engine.Parallelism.dimensions_used p))

(* --------------------------------------------------------- Dataflow *)

let test_dataflow_strings () =
  List.iter
    (fun d ->
      checkb "round trip" true
        (Engine.Dataflow.of_string (Engine.Dataflow.to_string d) = Some d))
    Engine.Dataflow.all;
  checkb "case-insensitive" true
    (Engine.Dataflow.of_string "ws" = Some Engine.Dataflow.Weight_stationary);
  checkb "unknown" true (Engine.Dataflow.of_string "XX" = None)

(* --------------------------------------------------------------- Ce *)

let fig4c_engine () =
  (* The paper's Fig. 4c single-CE: 16 PEs with parallelism 4x2x2. *)
  Engine.Ce.v ~id:1 ~pes:16
    ~parallelism:(Engine.Parallelism.three_d ~filters:4 ~height:2 ~width:2)
    ~dataflow:Engine.Dataflow.Output_stationary

(* Eq. 1 on the paper's own example: a 6-filter layer on a 4-filter-wide
   engine needs ceil(6/4) = 2 filter passes, so the PEs are half idle on
   the second pass. *)
let test_eq1_fig4c () =
  let ce = fig4c_engine () in
  let l = layer ~out_c:6 ~hw:8 () in
  let expected =
    (* ceil(6/4) * ceil(8/1) [channels] * ceil(8/2) * ceil(8/2) * 3 * 3 *)
    2 * 8 * 4 * 4 * 9
  in
  check "Eq. 1 cycles" expected (Engine.Ce.layer_cycles ce l)

let test_eq1_exact_fit_is_ideal () =
  (* When every factor divides its extent, utilization is exactly 1. *)
  let ce =
    Engine.Ce.v ~id:1 ~pes:16
      ~parallelism:(Engine.Parallelism.three_d ~filters:4 ~height:2 ~width:2)
      ~dataflow:Engine.Dataflow.Output_stationary
  in
  let l = layer ~out_c:4 ~hw:8 () in
  checkf "full utilization" 1.0 (Engine.Ce.utilization ce l)

let test_eq1_underutilization () =
  let ce = fig4c_engine () in
  let l = layer ~out_c:6 ~hw:8 () in
  (* 6 filters on a 4-wide engine: 6/8 = 0.75 utilization. *)
  checkf "three quarters" 0.75 (Engine.Ce.utilization ce l)

let test_depthwise_wastes_filter_parallelism () =
  let ce = fig4c_engine () in
  let dw = layer ~kind:Cnn.Layer.Depthwise ~in_c:8 ~out_c:8 () in
  (* Filter-parallel PEs idle on depthwise: cycles insensitive to the
     filter factor. *)
  let ce_nofilter =
    Engine.Ce.v ~id:2 ~pes:16
      ~parallelism:(Engine.Parallelism.three_d ~filters:1 ~height:2 ~width:2)
      ~dataflow:Engine.Dataflow.Output_stationary
  in
  check "same cycles" (Engine.Ce.layer_cycles ce_nofilter dw)
    (Engine.Ce.layer_cycles ce dw)

let test_tile_cycles () =
  let ce = fig4c_engine () in
  let l = layer ~out_c:4 ~hw:8 () in
  let full = Engine.Ce.layer_cycles ce l in
  let half = Engine.Ce.tile_cycles ce l ~rows:4 in
  check "half rows = half cycles" (full / 2) half;
  check "clamped rows" full (Engine.Ce.tile_cycles ce l ~rows:100)

let test_ideal_cycles () =
  let l = layer ~out_c:4 ~hw:8 () in
  check "ceil(macs/pes)"
    (Util.Int_math.ceil_div (Cnn.Layer.macs l) 16)
    (Engine.Ce.ideal_cycles ~pes:16 l)

let test_engine_invalid () =
  Alcotest.check_raises "degree over budget"
    (Invalid_argument "Engine.v: parallelism degree exceeds PE budget")
    (fun () ->
      ignore
        (Engine.Ce.v ~id:1 ~pes:8
           ~parallelism:(Engine.Parallelism.three_d ~filters:4 ~height:2 ~width:2)
           ~dataflow:Engine.Dataflow.Output_stationary))

let test_average_utilization_weighted () =
  let ce = fig4c_engine () in
  let l_fit = layer ~out_c:4 ~hw:8 () in
  let l_miss = layer ~out_c:6 ~hw:8 () in
  let avg = Engine.Ce.average_utilization ce [ l_fit; l_miss ] in
  checkb "between the two" true (avg > 0.75 && avg < 1.0)

(* ------------------------------------------------------- properties *)

let engine_gen =
  QCheck2.Gen.(
    let* f = oneofl [ 1; 2; 4; 8 ] in
    let* h = oneofl [ 1; 2; 4 ] in
    let* w = oneofl [ 1; 2; 4 ] in
    return (f, h, w))

let prop_utilization_bounds =
  QCheck2.Test.make ~name:"utilization in (0, 1]"
    QCheck2.Gen.(pair engine_gen (pair (int_range 1 32) (int_range 7 32)))
    (fun ((f, h, w), (out_c, hw)) ->
      let ce =
        Engine.Ce.v ~id:1 ~pes:(f * h * w)
          ~parallelism:(Engine.Parallelism.three_d ~filters:f ~height:h ~width:w)
          ~dataflow:Engine.Dataflow.Output_stationary
      in
      let l = layer ~out_c ~hw () in
      let u = Engine.Ce.utilization ce l in
      u > 0.0 && u <= 1.0 +. 1e-9)

let prop_more_parallelism_never_slower =
  QCheck2.Test.make ~name:"doubling a factor never increases cycles"
    QCheck2.Gen.(pair engine_gen (pair (int_range 1 32) (int_range 7 32)))
    (fun ((f, h, w), (out_c, hw)) ->
      let mk f' =
        Engine.Ce.v ~id:1 ~pes:(f' * h * w)
          ~parallelism:
            (Engine.Parallelism.three_d ~filters:f' ~height:h ~width:w)
          ~dataflow:Engine.Dataflow.Output_stationary
      in
      let l = layer ~out_c ~hw () in
      Engine.Ce.layer_cycles (mk (2 * f)) l <= Engine.Ce.layer_cycles (mk f) l)

let prop_tiles_cover_layer =
  QCheck2.Test.make ~name:"sum of tile cycles >= layer cycles"
    QCheck2.Gen.(pair engine_gen (pair (int_range 1 32) (int_range 7 32)))
    (fun ((f, h, w), (out_c, hw)) ->
      let ce =
        Engine.Ce.v ~id:1 ~pes:(f * h * w)
          ~parallelism:(Engine.Parallelism.three_d ~filters:f ~height:h ~width:w)
          ~dataflow:Engine.Dataflow.Output_stationary
      in
      let l = layer ~out_c ~hw () in
      let rows = max 1 (hw / 3) in
      let tiles = Util.Int_math.ceil_div hw rows in
      tiles * Engine.Ce.tile_cycles ce l ~rows >= Engine.Ce.layer_cycles ce l)

let properties =
  List.map QCheck_alcotest.to_alcotest
    [ prop_utilization_bounds; prop_more_parallelism_never_slower;
      prop_tiles_cover_layer ]

let () =
  Alcotest.run "engine"
    [
      ( "parallelism",
        [
          Alcotest.test_case "degree" `Quick test_parallelism_degree;
          Alcotest.test_case "invalid" `Quick test_parallelism_invalid;
          Alcotest.test_case "pp" `Quick test_parallelism_pp;
          Alcotest.test_case "dims used" `Quick test_dims_used;
        ] );
      ("dataflow", [ Alcotest.test_case "strings" `Quick test_dataflow_strings ]);
      ( "ce",
        [
          Alcotest.test_case "Eq.1 Fig.4c example" `Quick test_eq1_fig4c;
          Alcotest.test_case "exact fit ideal" `Quick test_eq1_exact_fit_is_ideal;
          Alcotest.test_case "underutilization" `Quick test_eq1_underutilization;
          Alcotest.test_case "depthwise filter waste" `Quick
            test_depthwise_wastes_filter_parallelism;
          Alcotest.test_case "tile cycles" `Quick test_tile_cycles;
          Alcotest.test_case "ideal cycles" `Quick test_ideal_cycles;
          Alcotest.test_case "invalid engine" `Quick test_engine_invalid;
          Alcotest.test_case "average utilization" `Quick
            test_average_utilization_weighted;
        ] );
      ("properties", properties);
    ]
