(* Tests for the experiment-driver library: the shared sweep plumbing and
   the beyond-the-paper studies (ablations, sensitivity, extremes). *)

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let res50 = Cnn.Model_zoo.resnet50 ()

(* ------------------------------------------------------------ Common *)

let test_sweep_size_and_labels () =
  let instances = Experiments.Common.sweep res50 Platform.Board.zcu102 in
  check "30 instances" 30 (List.length instances);
  let labels = List.map Experiments.Common.label instances in
  check "distinct labels" 30 (List.length (List.sort_uniq compare labels));
  checkb "has SegmentedRR/7" true (List.mem "SegmentedRR/7" labels)

let test_best_by_agrees_with_manual_scan () =
  let instances = Experiments.Common.sweep res50 Platform.Board.zcu102 in
  let best = Experiments.Common.best_by ~metric:`Latency instances in
  List.iter
    (fun (i : Experiments.Common.instance) ->
      if i.Experiments.Common.metrics.Mccm.Metrics.feasible then
        checkb "best is minimal" true
          (best.Experiments.Common.metrics.Mccm.Metrics.latency_s
          <= i.Experiments.Common.metrics.Mccm.Metrics.latency_s +. 1e-12))
    instances

let test_instances_of_style () =
  let instances = Experiments.Common.sweep res50 Platform.Board.zcu102 in
  check "10 per style" 10
    (List.length
       (Experiments.Common.instances_of_style Arch.Block.Hybrid instances))

(* --------------------------------------------------------- Ablations *)

let ablations = lazy (Experiments.Ablations.run ())

let test_ablations_structure () =
  let t = Lazy.force ablations in
  let count ablation =
    List.length
      (List.filter
         (fun (r : Experiments.Ablations.row) ->
           r.Experiments.Ablations.ablation = ablation)
         t.Experiments.Ablations.rows)
  in
  check "parallelism rows" 6 (count "parallelism selection");
  check "buffer rows" 6 (count "buffer allocation");
  check "PE allocation rows" 6 (count "PE allocation");
  check "segmentation rows" 2 (count "segmentation")

let test_ablations_naive_parallelism_worse () =
  (* The builder variant must beat (or tie) the naive variant on
     throughput for every instance — the heuristic earns its keep. *)
  let t = Lazy.force ablations in
  let find variant instance =
    List.find
      (fun (r : Experiments.Ablations.row) ->
        r.Experiments.Ablations.ablation = "parallelism selection"
        && r.Experiments.Ablations.variant = variant
        && r.Experiments.Ablations.instance = instance)
      t.Experiments.Ablations.rows
  in
  List.iter
    (fun instance ->
      let b = find "builder" instance and n = find "naive square" instance in
      checkb
        (instance ^ " builder throughput >= naive")
        true
        (b.Experiments.Ablations.metrics.Mccm.Metrics.throughput_ips
        >= n.Experiments.Ablations.metrics.Mccm.Metrics.throughput_ips
           *. 0.999))
    [ "Segmented/4"; "SegmentedRR/4"; "Hybrid/4" ]

(* ------------------------------------------------------- Sensitivity *)

let sensitivity = lazy (Experiments.Sensitivity.run ())

let test_sensitivity_structure () =
  let t = Lazy.force sensitivity in
  check "three sweeps" 3 (List.length t.Experiments.Sensitivity.sweeps);
  List.iter
    (fun (s : Experiments.Sensitivity.sweep) ->
      checkb (s.Experiments.Sensitivity.resource ^ " non-empty") true
        (s.Experiments.Sensitivity.points <> []))
    t.Experiments.Sensitivity.sweeps

let test_sensitivity_bandwidth_monotone () =
  (* For a fixed design, more bandwidth never increases latency. *)
  let t = Lazy.force sensitivity in
  let bw_sweep =
    List.find
      (fun (s : Experiments.Sensitivity.sweep) ->
        s.Experiments.Sensitivity.resource = "bandwidth (GB/s)")
      t.Experiments.Sensitivity.sweeps
  in
  List.iter
    (fun instance ->
      let series =
        List.filter
          (fun (p : Experiments.Sensitivity.point) ->
            p.Experiments.Sensitivity.instance = instance)
          bw_sweep.Experiments.Sensitivity.points
        |> List.sort (fun (a : Experiments.Sensitivity.point) b ->
               compare a.Experiments.Sensitivity.value
                 b.Experiments.Sensitivity.value)
      in
      let rec non_increasing = function
        | (a : Experiments.Sensitivity.point)
          :: (b :: _ as rest) ->
          a.Experiments.Sensitivity.metrics.Mccm.Metrics.latency_s
          >= b.Experiments.Sensitivity.metrics.Mccm.Metrics.latency_s
             *. 0.999
          && non_increasing rest
        | _ -> true
      in
      checkb (instance ^ " latency non-increasing in BW") true
        (non_increasing series))
    [ "Segmented/4"; "SegmentedRR/4"; "Hybrid/4" ]

let test_sensitivity_stalls_fade_with_bandwidth () =
  let t = Lazy.force sensitivity in
  let bw_sweep =
    List.find
      (fun (s : Experiments.Sensitivity.sweep) ->
        s.Experiments.Sensitivity.resource = "bandwidth (GB/s)")
      t.Experiments.Sensitivity.sweeps
  in
  let stall instance value =
    (List.find
       (fun (p : Experiments.Sensitivity.point) ->
         p.Experiments.Sensitivity.instance = instance
         && p.Experiments.Sensitivity.value = value)
       bw_sweep.Experiments.Sensitivity.points)
      .Experiments.Sensitivity.stall_fraction
  in
  checkb "SegRR stalls at 1 GB/s" true (stall "SegmentedRR/4" 1.0 > 0.2);
  checkb "SegRR stalls fade at 32 GB/s" true
    (stall "SegmentedRR/4" 32.0 < stall "SegmentedRR/4" 1.0)

(* ------------------------------------------------------ Setup tables *)

let test_setup_tables_print () =
  (* Smoke: both print without raising. *)
  Experiments.Setup_tables.print_table2 ();
  Experiments.Setup_tables.print_table3 ()

let () =
  Alcotest.run "experiments"
    [
      ( "common",
        [
          Alcotest.test_case "sweep size" `Quick test_sweep_size_and_labels;
          Alcotest.test_case "best_by" `Quick test_best_by_agrees_with_manual_scan;
          Alcotest.test_case "instances of style" `Quick test_instances_of_style;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "structure" `Slow test_ablations_structure;
          Alcotest.test_case "naive worse" `Slow
            test_ablations_naive_parallelism_worse;
        ] );
      ( "sensitivity",
        [
          Alcotest.test_case "structure" `Slow test_sensitivity_structure;
          Alcotest.test_case "bandwidth monotone" `Slow
            test_sensitivity_bandwidth_monotone;
          Alcotest.test_case "stalls fade" `Slow
            test_sensitivity_stalls_fade_with_bandwidth;
        ] );
      ( "setup tables",
        [ Alcotest.test_case "print" `Quick test_setup_tables_print ] );
    ]
