(* Integration tests: full-pipeline shape assertions on the paper's
   experiments (the qualitative claims of Sections V-B to V-E). *)

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* -------------------------------------------------- Table I shapes *)

let test_table1_shape () =
  let t = Experiments.Table1.run () in
  check "three rows" 3 (List.length t.Experiments.Table1.rows);
  (* Every metric column has a winner at exactly 1.0, and each row wins
     at least one metric (the "no single best architecture" insight). *)
  let ones f =
    List.length
      (List.filter
         (fun (r : Experiments.Table1.row) -> Float.abs (f r -. 1.0) < 1e-9)
         t.Experiments.Table1.rows)
  in
  checkb "latency winner" true (ones (fun r -> r.Experiments.Table1.latency) >= 1);
  checkb "buffer winner" true (ones (fun r -> r.Experiments.Table1.buffers) >= 1);
  checkb "access winner" true (ones (fun r -> r.Experiments.Table1.accesses) >= 1);
  (* SegmentedRR leads latency (it is listed first, lowest-latency per
     style, and the paper's Table I has it at 1.0). *)
  match t.Experiments.Table1.rows with
  | rr :: seg :: hyb :: [] ->
    checkb "SegmentedRR best latency" true
      (rr.Experiments.Table1.latency <= seg.Experiments.Table1.latency
      && rr.Experiments.Table1.latency <= hyb.Experiments.Table1.latency);
    checkb "SegmentedRR needs most buffers" true
      (rr.Experiments.Table1.buffers > seg.Experiments.Table1.buffers);
    checkb "Hybrid reaches minimal accesses" true
      (Float.abs (hyb.Experiments.Table1.accesses -. 1.0) < 1e-9)
  | _ -> Alcotest.fail "expected three rows"

(* ------------------------------------------------- Table IV shapes *)

let test_table4_accuracy_bands () =
  let t = Experiments.Table4.run () in
  check "150 experiments" 150 t.Experiments.Table4.experiments;
  check "50 settings" 50 t.Experiments.Table4.settings;
  let check_metric name (m : Experiments.Table4.metric_summary) ~avg_floor
      ~min_floor =
    List.iter
      (fun (s : Report.Accuracy.summary) ->
        checkb
          (Printf.sprintf "%s avg %.1f >= %.0f" name s.Report.Accuracy.average
             avg_floor)
          true
          (s.Report.Accuracy.average >= avg_floor);
        checkb
          (Printf.sprintf "%s min %.1f >= %.0f" name s.Report.Accuracy.min
             min_floor)
          true
          (s.Report.Accuracy.min >= min_floor))
      [ m.Experiments.Table4.segmented; m.Experiments.Table4.segmented_rr;
        m.Experiments.Table4.hybrid ]
  in
  (* The paper reports > 90% averages and an 80.7% worst case; hold
     slightly conservative floors. *)
  check_metric "latency" t.Experiments.Table4.latency ~avg_floor:85.0
    ~min_floor:75.0;
  check_metric "throughput" t.Experiments.Table4.throughput ~avg_floor:85.0
    ~min_floor:75.0;
  check_metric "buffers" t.Experiments.Table4.buffers ~avg_floor:90.0
    ~min_floor:80.0;
  (* Accesses are exact, as in the paper. *)
  List.iter
    (fun (s : Report.Accuracy.summary) ->
      checkb "accesses exactly 100%" true (s.Report.Accuracy.min >= 100.0 -. 1e-9))
    [ t.Experiments.Table4.accesses.Experiments.Table4.segmented;
      t.Experiments.Table4.accesses.Experiments.Table4.segmented_rr;
      t.Experiments.Table4.accesses.Experiments.Table4.hybrid ]

let test_table4_prediction_agreement () =
  let t = Experiments.Table4.run () in
  (* The paper: best-architecture predictions agree in >= 139/150 for
     buffers and always for the other metrics; we require >= 80% per
     metric. *)
  List.iter
    (fun (metric, n) ->
      checkb
        (Printf.sprintf "%s agreement %d/%d" metric n t.Experiments.Table4.settings)
        true
        (float_of_int n >= 0.8 *. float_of_int t.Experiments.Table4.settings))
    t.Experiments.Table4.best_arch_agreement

(* -------------------------------------------------- Table V shapes *)

let test_table5_insights () =
  let t = Experiments.Table5.run () in
  check "20 columns" 20 t.Experiments.Table5.columns;
  check "80 cells" 80 (List.length t.Experiments.Table5.cells);
  (* Paper: in 80% of columns no architecture sweeps all four metrics. *)
  checkb "mostly no single winner" true
    (t.Experiments.Table5.no_single_winner_columns >= 10);
  (* Paper: SegmentedRR dominates latency (15/20); we require a strict
     majority. *)
  checkb "SegmentedRR latency majority" true
    (t.Experiments.Table5.segmented_rr_latency_wins >= 10);
  (* Paper: Hybrid always reaches minimum accesses. *)
  checkb "Hybrid accesses >= 16/20" true
    (t.Experiments.Table5.hybrid_access_wins >= 16)

(* ------------------------------------------------- figure 5/8 shapes *)

let test_fig5_shape () =
  let t = Experiments.Tradeoff.fig5 () in
  checkb "30 points (or fewer if infeasible)" true
    (List.length t.Experiments.Tradeoff.points <= 30
    && List.length t.Experiments.Tradeoff.points >= 20);
  (* SegmentedRR instances access more than Hybrid's best (Fig. 5's
     bottleneck story). *)
  let avg style =
    let ps =
      List.filter
        (fun (p : Experiments.Tradeoff.point) ->
          p.Experiments.Tradeoff.style = style)
        t.Experiments.Tradeoff.points
    in
    Util.Stats.mean (List.map (fun (p : Experiments.Tradeoff.point) -> p.Experiments.Tradeoff.second) ps)
  in
  checkb "SegmentedRR accesses above Hybrid" true
    (avg Arch.Block.Segmented_rr > avg Arch.Block.Hybrid)

let test_fig8_shape () =
  let t = Experiments.Tradeoff.fig8 () in
  checkb "has points" true (t.Experiments.Tradeoff.points <> []);
  checkb "annotations present" true
    (List.length t.Experiments.Tradeoff.best_throughput = 3
    && List.length t.Experiments.Tradeoff.best_second = 3)

(* --------------------------------------------------- figure 6 shape *)

let test_fig6_shape () =
  let t = Experiments.Fig6.run () in
  check "27 SegRR segments" 27
    (List.length t.Experiments.Fig6.a.Experiments.Fig6.segments);
  check "7 Segmented segments" 7
    (List.length t.Experiments.Fig6.b.Experiments.Fig6.segments);
  (* SegmentedRR/2 is memory-bottlenecked on ZC706; Segmented/7 is not. *)
  checkb "SegRR stalls" true
    (t.Experiments.Fig6.a.Experiments.Fig6.stall_fraction > 0.02);
  checkb "Segmented does not" true
    (t.Experiments.Fig6.b.Experiments.Fig6.stall_fraction
    < t.Experiments.Fig6.a.Experiments.Fig6.stall_fraction);
  (* The memory bottleneck sits in the tail segments (the paper's
     segments 22-26). *)
  let tail_bound =
    List.filteri
      (fun i (s : Experiments.Fig6.segment_share) ->
        i >= 21 && s.Experiments.Fig6.memory_share > s.Experiments.Fig6.compute_share)
      t.Experiments.Fig6.a.Experiments.Fig6.segments
  in
  checkb "tail segments memory-bound" true (List.length tail_bound >= 3)

(* --------------------------------------------------- figure 7 shape *)

let test_fig7_shape () =
  let t = Experiments.Fig7.run () in
  check "three rows" 3 (List.length t.Experiments.Fig7.rows);
  let fm_share (r : Experiments.Fig7.row) =
    float_of_int r.Experiments.Fig7.fms_bytes
    /. float_of_int (r.Experiments.Fig7.weights_bytes + r.Experiments.Fig7.fms_bytes)
  in
  match t.Experiments.Fig7.rows with
  | [ rr; seg; hyb ] ->
    (* Paper: compressing FMs would be pure overhead for SegmentedRR
       (weights dominate utterly), while Segmented moves substantial FM
       traffic; and weight compression matters most for SegmentedRR. *)
    checkb "SegRR weights-dominated" true (fm_share rr < 0.10);
    checkb "Segmented FM-heavy relative to SegRR" true
      (fm_share seg > fm_share rr);
    checkb "SegRR moves the most weight bytes" true
      (rr.Experiments.Fig7.weights_bytes > seg.Experiments.Fig7.weights_bytes
      && rr.Experiments.Fig7.weights_bytes > hyb.Experiments.Fig7.weights_bytes);
    (* Hybrid's design goal: the smallest total traffic of the three. *)
    let total (r : Experiments.Fig7.row) =
      r.Experiments.Fig7.weights_bytes + r.Experiments.Fig7.fms_bytes
    in
    checkb "Hybrid lowest total accesses" true
      (total hyb <= total seg && total hyb <= total rr)
  | _ -> Alcotest.fail "expected three rows"

(* --------------------------------------------------- figure 9 shape *)

let test_fig9_shape () =
  let t = Experiments.Fig9.run () in
  check "4 Segmented segments" 4
    (List.length t.Experiments.Fig9.segmented.Experiments.Fig9.segments);
  check "2 Hybrid segments" 2
    (List.length t.Experiments.Fig9.hybrid.Experiments.Fig9.segments);
  (* Fig. 9a: the first Segmented segment's buffers dominate; the
     Hybrid's buffer skews to the opposite end. *)
  (match t.Experiments.Fig9.segmented.Experiments.Fig9.segments with
  | first :: rest ->
    checkb "Segmented first segment biggest buffers" true
      (List.for_all
         (fun (s : Experiments.Fig9.segment_stat) ->
           first.Experiments.Fig9.buffer_share
           >= s.Experiments.Fig9.buffer_share)
         rest)
  | [] -> Alcotest.fail "no segments");
  (* Underutilization normalisation: minimum across both sides is 1x. *)
  let all =
    t.Experiments.Fig9.segmented.Experiments.Fig9.segments
    @ t.Experiments.Fig9.hybrid.Experiments.Fig9.segments
  in
  let min_norm =
    Util.Stats.minimum
      (List.map
         (fun (s : Experiments.Fig9.segment_stat) ->
           s.Experiments.Fig9.underutilization_norm)
         all)
  in
  checkb "min normalised to ~1" true (Float.abs (min_norm -. 1.0) < 1e-6)

(* -------------------------------------------------- figure 10 shape *)

let test_fig10_shape () =
  let t = Experiments.Fig10.run ~samples:800 () in
  checkb "space in the billions" true (t.Experiments.Fig10.space_size > 1e10);
  checkb "most samples feasible" true
    (List.length t.Experiments.Fig10.result.Dse.Explore.evaluated > 400);
  checkb "fast evaluation (< 50 ms per design)" true
    (t.Experiments.Fig10.ms_per_design < 50.0);
  (* The custom space contains designs at least matching Segmented/4's
     throughput with smaller buffers (the paper's headline: up to 48%
     smaller). *)
  match t.Experiments.Fig10.buffer_reduction_at_segmented_throughput with
  | None -> Alcotest.fail "no design matches the reference throughput"
  | Some r -> checkb "buffer reduction positive" true (r > 0.0)

(* -------------------------------------------------- extremes shapes *)

let test_extremes_shape () =
  let t = Experiments.Extremes.run () in
  (* Per the paper: the per-layer extreme's idleness makes its latency far
     worse than a single engine's, and multiple-CE accelerators have less
     PE underutilization than generic single engines. *)
  List.iter
    (fun cnn ->
      let find instance =
        List.find_opt
          (fun (r : Experiments.Extremes.row) ->
            r.Experiments.Extremes.cnn = cnn
            && r.Experiments.Extremes.instance = instance)
          t.Experiments.Extremes.rows
      in
      match (find "SingleCE", find "LayerPerCE") with
      | Some single, Some per_layer ->
        checkb
          (cnn ^ ": per-layer latency above single-CE")
          true
          (per_layer.Experiments.Extremes.metrics.Mccm.Metrics.latency_s
          > single.Experiments.Extremes.metrics.Mccm.Metrics.latency_s)
      | _ -> Alcotest.fail "missing extreme rows")
    [ "Res50"; "Dns121"; "MobV2" ]

let test_extremes_multiple_ce_utilization () =
  let t = Experiments.Extremes.run () in
  (* On MobileNetV2 (the heterogeneity poster child), the best multiple-CE
     instance must beat the generic single engine's utilization. *)
  let util prefix =
    List.find_map
      (fun (r : Experiments.Extremes.row) ->
        if
          r.Experiments.Extremes.cnn = "MobV2"
          && String.length r.Experiments.Extremes.instance
             >= String.length prefix
          && String.sub r.Experiments.Extremes.instance 0
               (String.length prefix)
             = prefix
        then Some r.Experiments.Extremes.utilization
        else None)
      t.Experiments.Extremes.rows
  in
  match (util "SingleCE", util "best multiple-CE") with
  | Some s, Some m -> checkb "multiple-CE utilization higher" true (m > s)
  | _ -> Alcotest.fail "missing rows"

let () =
  Alcotest.run "integration"
    [
      ("table1", [ Alcotest.test_case "shape" `Quick test_table1_shape ]);
      ( "table4",
        [
          Alcotest.test_case "accuracy bands" `Slow test_table4_accuracy_bands;
          Alcotest.test_case "prediction agreement" `Slow
            test_table4_prediction_agreement;
        ] );
      ("table5", [ Alcotest.test_case "insights" `Slow test_table5_insights ]);
      ( "extremes",
        [
          Alcotest.test_case "latency ordering" `Slow test_extremes_shape;
          Alcotest.test_case "utilization" `Slow
            test_extremes_multiple_ce_utilization;
        ] );
      ( "figures",
        [
          Alcotest.test_case "fig5" `Quick test_fig5_shape;
          Alcotest.test_case "fig8" `Quick test_fig8_shape;
          Alcotest.test_case "fig6" `Quick test_fig6_shape;
          Alcotest.test_case "fig7" `Quick test_fig7_shape;
          Alcotest.test_case "fig9" `Quick test_fig9_shape;
          Alcotest.test_case "fig10" `Slow test_fig10_shape;
        ] );
    ]
