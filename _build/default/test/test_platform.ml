(* Tests for the FPGA platform descriptions (paper Table II). *)

let check = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-6))
let checkb = Alcotest.(check bool)

let test_table2_values () =
  check "ZC706 DSPs" 900 Platform.Board.zc706.Platform.Board.dsps;
  check "VCU108 DSPs" 768 Platform.Board.vcu108.Platform.Board.dsps;
  check "VCU110 DSPs" 1800 Platform.Board.vcu110.Platform.Board.dsps;
  check "ZCU102 DSPs" 2520 Platform.Board.zcu102.Platform.Board.dsps;
  checkf "ZC706 BRAM MiB" 2.4
    (Util.Units.mib_of_bytes Platform.Board.zc706.Platform.Board.bram_bytes);
  checkf "ZCU102 BRAM MiB" 16.6
    (Util.Units.mib_of_bytes Platform.Board.zcu102.Platform.Board.bram_bytes);
  checkf "ZC706 BW" 3.2e9
    Platform.Board.zc706.Platform.Board.bandwidth_bytes_per_sec;
  checkf "VCU110 BW" 19.2e9
    Platform.Board.vcu110.Platform.Board.bandwidth_bytes_per_sec

let test_all_and_lookup () =
  check "four boards" 4 (List.length Platform.Board.all);
  checkb "lookup zcu102" true (Platform.Board.by_name "zcu102" <> None);
  checkb "lookup ZC706" true (Platform.Board.by_name "ZC706" <> None);
  checkb "lookup unknown" true (Platform.Board.by_name "zc999" = None)

let test_conversions () =
  let b = Platform.Board.zc706 in
  (* 200 MHz default clock: 200e6 cycles is one second. *)
  checkf "cycles to seconds" 1.0
    (Platform.Board.cycles_to_seconds b 200_000_000);
  (* 3.2 GB/s: 3.2e9 bytes in one second. *)
  checkf "bytes to seconds" 1.0
    (Platform.Board.bytes_to_seconds b 3_200_000_000)

let test_custom_board () =
  let b =
    Platform.Board.v ~name:"X" ~dsps:100 ~bram_mib:1.0
      ~bandwidth_gb_per_sec:10.0 ~clock_mhz:100.0 ~bytes_per_element:1 ()
  in
  check "bpe" 1 b.Platform.Board.bytes_per_element;
  checkf "clock" 1e8 b.Platform.Board.clock_hz

let test_invalid_board () =
  Alcotest.check_raises "no DSPs"
    (Invalid_argument "Board.v: non-positive DSP count") (fun () ->
      ignore
        (Platform.Board.v ~name:"X" ~dsps:0 ~bram_mib:1.0
           ~bandwidth_gb_per_sec:1.0 ()))

let test_default_element_size () =
  (* 16-bit fixed point, matching the baseline accelerators. *)
  List.iter
    (fun b -> check "2 bytes" 2 b.Platform.Board.bytes_per_element)
    Platform.Board.all

let () =
  Alcotest.run "platform"
    [
      ( "board",
        [
          Alcotest.test_case "Table II values" `Quick test_table2_values;
          Alcotest.test_case "all and lookup" `Quick test_all_and_lookup;
          Alcotest.test_case "conversions" `Quick test_conversions;
          Alcotest.test_case "custom board" `Quick test_custom_board;
          Alcotest.test_case "invalid board" `Quick test_invalid_board;
          Alcotest.test_case "element size" `Quick test_default_element_size;
        ] );
    ]
