(* Tests for accuracy computation (Eq. 10), normalisation, the tie rule
   and scatter rendering. *)

let checkf = Alcotest.(check (float 1e-9))
let checkb = Alcotest.(check bool)

let test_accuracy_eq10 () =
  checkf "perfect" 100.0 (Report.Accuracy.accuracy ~reference:10.0 ~estimated:10.0);
  checkf "10% off" 90.0 (Report.Accuracy.accuracy ~reference:10.0 ~estimated:9.0);
  checkf "over-estimate symmetric" 90.0
    (Report.Accuracy.accuracy ~reference:10.0 ~estimated:11.0);
  checkf "200% off goes negative" (-100.0)
    (Report.Accuracy.accuracy ~reference:10.0 ~estimated:30.0)

let test_accuracy_zero_reference () =
  Alcotest.check_raises "zero" (Invalid_argument "Accuracy.accuracy: zero reference")
    (fun () -> ignore (Report.Accuracy.accuracy ~reference:0.0 ~estimated:1.0))

let test_summarize () =
  let s = Report.Accuracy.summarize [ 80.0; 90.0; 100.0 ] in
  checkf "max" 100.0 s.Report.Accuracy.max;
  checkf "min" 80.0 s.Report.Accuracy.min;
  checkf "avg" 90.0 s.Report.Accuracy.average

let test_compare_metrics () =
  let m latency =
    {
      Mccm.Metrics.latency_s = latency;
      throughput_ips = 1.0 /. latency;
      buffer_bytes = 1000;
      accesses = Mccm.Access.weights 500;
      feasible = true;
    }
  in
  let c = Report.Accuracy.compare_metrics ~reference:(m 1.0) ~estimated:(m 0.9) in
  checkf "latency 90%" 90.0 c.Report.Accuracy.latency;
  checkf "accesses exact" 100.0 c.Report.Accuracy.accesses

let test_normalize_lower_better () =
  Alcotest.(check (list (float 1e-9)))
    "to best" [ 1.0; 2.0; 4.0 ]
    (Report.Normalize.to_best ~higher_is_better:false [ 2.0; 4.0; 8.0 ])

let test_normalize_higher_better () =
  Alcotest.(check (list (float 1e-9)))
    "inverted ratios" [ 4.0; 2.0; 1.0 ]
    (Report.Normalize.to_best ~higher_is_better:true [ 2.0; 4.0; 8.0 ])

let test_tie_rule () =
  checkb "within 10%" true (Report.Normalize.within_tie ~best:1.0 1.09);
  checkb "outside 10%" false (Report.Normalize.within_tie ~best:1.0 1.11)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_scatter_renders () =
  let s =
    Report.Scatter.render ~x_label:"x" ~y_label:"y"
      [
        { Report.Scatter.name = "a"; marker = '*';
          points = [ (1.0, 1.0); (2.0, 3.0) ] };
        { Report.Scatter.name = "b"; marker = 'o'; points = [ (1.5, 2.0) ] };
      ]
  in
  checkb "has markers" true (contains s "*" && contains s "o");
  checkb "has legend" true (contains s "* = a" && contains s "o = b")

let test_scatter_log () =
  let s =
    Report.Scatter.render ~log_y:true ~x_label:"x" ~y_label:"y"
      [ { Report.Scatter.name = "a"; marker = '*';
          points = [ (1.0, 1.0); (2.0, 1000.0) ] } ]
  in
  checkb "renders" true (String.length s > 0)

let test_scatter_empty () =
  Alcotest.check_raises "no points" (Invalid_argument "Scatter.render: no points")
    (fun () ->
      ignore
        (Report.Scatter.render ~x_label:"x" ~y_label:"y"
           [ { Report.Scatter.name = "a"; marker = '*'; points = [] } ]))

let prop_accuracy_bounded_above =
  QCheck2.Test.make ~name:"accuracy never exceeds 100"
    QCheck2.Gen.(pair (float_range 0.1 100.0) (float_range 0.0 200.0))
    (fun (r, e) -> Report.Accuracy.accuracy ~reference:r ~estimated:e <= 100.0)

let prop_normalize_best_is_one =
  QCheck2.Test.make ~name:"normalised best is exactly 1"
    QCheck2.Gen.(list_size (int_range 1 10) (float_range 0.1 100.0))
    (fun vs ->
      let n = Report.Normalize.to_best ~higher_is_better:false vs in
      List.exists (fun v -> Float.abs (v -. 1.0) < 1e-9) n
      && List.for_all (fun v -> v >= 1.0 -. 1e-9) n)

let properties =
  List.map QCheck_alcotest.to_alcotest
    [ prop_accuracy_bounded_above; prop_normalize_best_is_one ]

let () =
  Alcotest.run "report"
    [
      ( "accuracy",
        [
          Alcotest.test_case "Eq. 10" `Quick test_accuracy_eq10;
          Alcotest.test_case "zero reference" `Quick test_accuracy_zero_reference;
          Alcotest.test_case "summarize" `Quick test_summarize;
          Alcotest.test_case "compare metrics" `Quick test_compare_metrics;
        ] );
      ( "normalize",
        [
          Alcotest.test_case "lower better" `Quick test_normalize_lower_better;
          Alcotest.test_case "higher better" `Quick test_normalize_higher_better;
          Alcotest.test_case "tie rule" `Quick test_tie_rule;
        ] );
      ( "scatter",
        [
          Alcotest.test_case "renders" `Quick test_scatter_renders;
          Alcotest.test_case "log scale" `Quick test_scatter_log;
          Alcotest.test_case "empty" `Quick test_scatter_empty;
        ] );
      ("properties", properties);
    ]
