(* Tests for the per-layer report and the CSV exporter. *)

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let res50 = Cnn.Model_zoo.resnet50 ()

(* ----------------------------------------------------- Layer_report *)

let build archi = Builder.Build.build res50 Platform.Board.zcu102 archi

let test_layer_report_covers_all_layers () =
  List.iter
    (fun archi ->
      let rows = Mccm.Layer_report.of_build (build archi) in
      check "row per layer" (Cnn.Model.num_layers res50) (List.length rows);
      List.iteri
        (fun i (r : Mccm.Layer_report.row) ->
          check "in order" i r.Mccm.Layer_report.layer_index)
        rows)
    [
      Arch.Baselines.segmented ~ces:4 res50;
      Arch.Baselines.segmented_rr ~ces:4 res50;
      Arch.Baselines.hybrid ~ces:4 res50;
    ]

let test_layer_report_accesses_consistent () =
  (* Per-layer accesses must add up to the whole-accelerator metric. *)
  List.iter
    (fun archi ->
      let built = build archi in
      let rows = Mccm.Layer_report.of_build built in
      let total =
        List.fold_left
          (fun acc (r : Mccm.Layer_report.row) ->
            acc + Mccm.Access.total r.Mccm.Layer_report.accesses)
          0 rows
      in
      let metrics = (Mccm.Evaluate.run built).Mccm.Evaluate.metrics in
      check
        (archi.Arch.Block.name ^ " accesses add up")
        (Mccm.Metrics.accesses_bytes metrics)
        total)
    [
      Arch.Baselines.segmented ~ces:4 res50;
      Arch.Baselines.segmented_rr ~ces:3 res50;
      Arch.Baselines.hybrid ~ces:5 res50;
    ]

let test_layer_report_utilization_bounds () =
  let rows =
    Mccm.Layer_report.of_build (build (Arch.Baselines.hybrid ~ces:4 res50))
  in
  List.iter
    (fun (r : Mccm.Layer_report.row) ->
      checkb "util in (0,1]" true
        (r.Mccm.Layer_report.utilization > 0.0
        && r.Mccm.Layer_report.utilization <= 1.0 +. 1e-9))
    rows

let test_layer_report_pipelined_flags () =
  let rows =
    Mccm.Layer_report.of_build (build (Arch.Baselines.hybrid ~ces:4 res50))
  in
  let pipelined, sequential =
    List.partition (fun (r : Mccm.Layer_report.row) -> r.Mccm.Layer_report.pipelined) rows
  in
  check "first part pipelined" 3 (List.length pipelined);
  check "rest sequential" 50 (List.length sequential)

let test_hotspots () =
  let rows =
    Mccm.Layer_report.of_build (build (Arch.Baselines.segmented ~ces:4 res50))
  in
  let hs = Mccm.Layer_report.hotspots ~top:3 rows in
  check "three hotspots" 3 (List.length hs);
  let rec non_increasing = function
    | (a : Mccm.Layer_report.row) :: (b :: _ as rest) ->
      a.Mccm.Layer_report.cycles >= b.Mccm.Layer_report.cycles
      && non_increasing rest
    | _ -> true
  in
  checkb "sorted by cycles" true (non_increasing hs);
  let max_cycles =
    List.fold_left
      (fun acc (r : Mccm.Layer_report.row) -> max acc r.Mccm.Layer_report.cycles)
      0 rows
  in
  check "top is global max" max_cycles
    (List.hd hs).Mccm.Layer_report.cycles

(* -------------------------------------------------------------- Csv *)

let test_csv_basic () =
  let t = Report.Csv.create ~header:[ "a"; "b" ] in
  Report.Csv.add_row t [ "1"; "2" ];
  Report.Csv.add_row t [ "x,y"; "say \"hi\"" ];
  Alcotest.(check string)
    "rendering" "a,b\n1,2\n\"x,y\",\"say \"\"hi\"\"\"\n"
    (Report.Csv.to_string t)

let test_csv_mismatch () =
  let t = Report.Csv.create ~header:[ "a" ] in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Csv.add_row: cell count mismatch") (fun () ->
      Report.Csv.add_row t [ "1"; "2" ])

let test_csv_of_metrics () =
  let m =
    Mccm.Evaluate.metrics res50 Platform.Board.zcu102
      (Arch.Baselines.hybrid ~ces:4 res50)
  in
  let t = Report.Csv.of_metrics_rows ~label_header:"arch" [ ("Hybrid/4", m) ] in
  let s = Report.Csv.to_string t in
  let lines = String.split_on_char '\n' s in
  check "header + row + trailing" 3 (List.length lines);
  checkb "has label" true
    (match lines with
    | _ :: row :: _ -> String.length row > 8 && String.sub row 0 8 = "Hybrid/4"
    | _ -> false)

let test_csv_of_breakdown () =
  let e =
    Mccm.Evaluate.evaluate res50 Platform.Board.zc706
      (Arch.Baselines.segmented ~ces:4 res50)
  in
  let t = Report.Csv.of_breakdown e.Mccm.Evaluate.breakdown in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' (Report.Csv.to_string t))
  in
  (* header + one row per segment *)
  check "rows" (1 + List.length e.Mccm.Evaluate.breakdown.Mccm.Breakdown.segments)
    (List.length lines)

let test_csv_save_and_reload () =
  let t = Report.Csv.create ~header:[ "k"; "v" ] in
  Report.Csv.add_row t [ "x"; "1" ];
  let path = Filename.temp_file "mccm_test" ".csv" in
  Report.Csv.save t ~path;
  let content = In_channel.with_open_text path In_channel.input_all in
  Sys.remove path;
  Alcotest.(check string) "round trip" (Report.Csv.to_string t) content

let () =
  Alcotest.run "reporting"
    [
      ( "layer_report",
        [
          Alcotest.test_case "covers all layers" `Quick
            test_layer_report_covers_all_layers;
          Alcotest.test_case "accesses consistent" `Quick
            test_layer_report_accesses_consistent;
          Alcotest.test_case "utilization bounds" `Quick
            test_layer_report_utilization_bounds;
          Alcotest.test_case "pipelined flags" `Quick
            test_layer_report_pipelined_flags;
          Alcotest.test_case "hotspots" `Quick test_hotspots;
        ] );
      ( "csv",
        [
          Alcotest.test_case "basic" `Quick test_csv_basic;
          Alcotest.test_case "mismatch" `Quick test_csv_mismatch;
          Alcotest.test_case "of metrics" `Quick test_csv_of_metrics;
          Alcotest.test_case "of breakdown" `Quick test_csv_of_breakdown;
          Alcotest.test_case "save/reload" `Quick test_csv_save_and_reload;
        ] );
    ]
