(* Robustness and failure-injection tests: the methodology must degrade
   gracefully — tiny boards produce infeasible-but-evaluated designs, odd
   models evaluate without crashing, and the notation parser never
   raises on garbage. *)

let checkb = Alcotest.(check bool)

let mobv2 = Cnn.Model_zoo.mobilenet_v2 ()

(* ------------------------------------------------- resource starvation *)

let tiny_board ~bram_mib =
  Platform.Board.v ~name:"tiny" ~dsps:64 ~bram_mib ~bandwidth_gb_per_sec:0.5
    ()

let test_starved_bram_is_infeasible_not_crash () =
  (* 0.01 MiB cannot hold even minimal working sets for most designs. *)
  let board = tiny_board ~bram_mib:0.01 in
  List.iter
    (fun (_, archi) ->
      let m = Mccm.Evaluate.metrics mobv2 board archi in
      (* Either infeasible, or a genuinely tiny plan; never an exception,
         always positive numbers. *)
      checkb "latency positive" true (m.Mccm.Metrics.latency_s > 0.0);
      checkb "accesses positive" true (Mccm.Metrics.accesses_bytes m > 0))
    (Arch.Baselines.all_instances mobv2)

let test_starved_bram_flags_infeasible () =
  let board = tiny_board ~bram_mib:0.005 in
  let m =
    Mccm.Evaluate.metrics mobv2 board (Arch.Baselines.segmented ~ces:4 mobv2)
  in
  checkb "flagged infeasible" false m.Mccm.Metrics.feasible

let test_starved_bandwidth_memory_bound () =
  (* A board with near-zero bandwidth must be reported memory-bound. *)
  let board =
    Platform.Board.v ~name:"slow" ~dsps:900 ~bram_mib:2.4
      ~bandwidth_gb_per_sec:0.05 ()
  in
  let e =
    Mccm.Evaluate.evaluate mobv2 board (Arch.Baselines.segmented ~ces:4 mobv2)
  in
  checkb "stalls dominate" true
    (e.Mccm.Evaluate.breakdown.Mccm.Breakdown.stall_fraction > 0.5)

let test_dse_survives_tiny_board () =
  let board = tiny_board ~bram_mib:0.02 in
  let r = Dse.Explore.run ~seed:1L ~samples:50 mobv2 board in
  (* No crash; infeasible designs silently dropped. *)
  checkb "sampled all" true (r.Dse.Explore.sampled = 50)

(* ------------------------------------------------------- tiny models *)

let tiny_model ~layers =
  let ls =
    List.init layers (fun i ->
        Cnn.Layer.v ~index:i ~name:(Printf.sprintf "t%d" i)
          ~kind:Cnn.Layer.Standard
          ~in_shape:(Cnn.Shape.v ~channels:4 ~height:8 ~width:8)
          ~out_channels:4 ~kernel:3 ~stride:1 ~padding:1 ())
  in
  Cnn.Model.v ~name:"T" ~abbreviation:"T" ~layers:ls

let test_two_layer_model () =
  let m = tiny_model ~layers:2 in
  List.iter
    (fun archi ->
      let r = Mccm.Evaluate.metrics m Platform.Board.zc706 archi in
      checkb "evaluates" true (r.Mccm.Metrics.latency_s > 0.0))
    [
      Arch.Baselines.segmented ~ces:2 m;
      Arch.Baselines.segmented_rr ~ces:2 m;
      Arch.Baselines.hybrid ~ces:2 m;
    ]

let test_single_layer_per_engine () =
  (* SegmentedRR with as many engines as layers: a pure layer pipeline. *)
  let m = tiny_model ~layers:6 in
  let r =
    Mccm.Evaluate.metrics m Platform.Board.zc706
      (Arch.Baselines.segmented_rr ~ces:6 m)
  in
  checkb "evaluates" true (r.Mccm.Metrics.throughput_ips > 0.0)

let test_model_vs_sim_on_tiny () =
  let m = tiny_model ~layers:4 in
  let built =
    Builder.Build.build m Platform.Board.zc706
      (Arch.Baselines.hybrid ~ces:3 m)
  in
  let est = (Mccm.Evaluate.run built).Mccm.Evaluate.metrics in
  let ref_ = (Sim.Simulate.run built).Sim.Simulate.metrics in
  Alcotest.(check int)
    "access parity"
    (Mccm.Metrics.accesses_bytes est)
    (Mccm.Metrics.accesses_bytes ref_)

(* ---------------------------------------------------- parser fuzzing *)

let printable_gen = QCheck2.Gen.(string_size ~gen:(char_range ' ' '~') (int_range 0 60))

let prop_notation_never_raises =
  QCheck2.Test.make ~name:"notation parser never raises" ~count:500
    printable_gen (fun s ->
      match Arch.Notation.parse ~num_layers:53 s with
      | Ok _ | Error _ -> true)

let prop_notation_mutations =
  (* Mutate a valid string: the parser must still never raise. *)
  QCheck2.Test.make ~name:"mutated valid notation never raises" ~count:500
    QCheck2.Gen.(pair (int_bound 30) (char_range ' ' '~'))
    (fun (pos, c) ->
      let base = "{L1-L4:CE1, L5-L53:CE2-CE4}" in
      let b = Bytes.of_string base in
      if pos < Bytes.length b then Bytes.set b pos c;
      match Arch.Notation.parse ~num_layers:53 (Bytes.to_string b) with
      | Ok _ | Error _ -> true)

let prop_model_io_never_raises =
  QCheck2.Test.make ~name:"model parser never raises" ~count:500
    QCheck2.Gen.(
      list_size (int_range 0 8)
        (oneofl
           [ "cnn X Y"; "input 3x8x8"; "conv 4"; "dw"; "pw 8"; "pool s=2";
             "fc 10"; "garbage line"; "conv -1"; "set 0x0x0"; "" ]))
    (fun lines ->
      match Cnn.Model_io.of_string (String.concat "\n" lines) with
      | Ok _ | Error _ -> true)

let prop_random_custom_archs_evaluate =
  (* Fuzz the full pipeline: any valid random custom design must evaluate
     under both the model and the surrogate with byte-equal accesses. *)
  QCheck2.Test.make ~name:"random customs evaluate, accesses agree" ~count:25
    QCheck2.Gen.(int_bound 10000)
    (fun seed ->
      let rng = Util.Prng.create ~seed:(Int64.of_int seed) in
      let spec =
        Dse.Space.random_spec rng
          ~num_layers:(Cnn.Model.num_layers mobv2)
          ~ce_counts:[ 2; 3; 4; 5; 6 ]
      in
      let archi = Arch.Custom.arch_of_spec mobv2 spec in
      let built = Builder.Build.build mobv2 Platform.Board.vcu108 archi in
      let est = (Mccm.Evaluate.run built).Mccm.Evaluate.metrics in
      let ref_ = (Sim.Simulate.run built).Sim.Simulate.metrics in
      Mccm.Metrics.accesses_bytes est = Mccm.Metrics.accesses_bytes ref_
      && est.Mccm.Metrics.latency_s > 0.0
      && Builder.Buffer_alloc.audit mobv2 Platform.Board.vcu108 archi
           built.Builder.Build.plan
         = [])

let properties =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_notation_never_raises; prop_notation_mutations;
      prop_model_io_never_raises; prop_random_custom_archs_evaluate;
    ]

let () =
  Alcotest.run "robustness"
    [
      ( "starvation",
        [
          Alcotest.test_case "BRAM starvation no crash" `Quick
            test_starved_bram_is_infeasible_not_crash;
          Alcotest.test_case "BRAM starvation flagged" `Quick
            test_starved_bram_flags_infeasible;
          Alcotest.test_case "bandwidth starvation" `Quick
            test_starved_bandwidth_memory_bound;
          Alcotest.test_case "DSE survives" `Quick test_dse_survives_tiny_board;
        ] );
      ( "tiny models",
        [
          Alcotest.test_case "two layers" `Quick test_two_layer_model;
          Alcotest.test_case "layer per engine" `Quick
            test_single_layer_per_engine;
          Alcotest.test_case "model vs sim" `Quick test_model_vs_sim_on_tiny;
        ] );
      ("fuzz", properties);
    ]
