(* Tiny shared helper for builder tests. *)

let assignment () =
  Builder.Workload.pipelined_assignment ~ces:3 ~first:0 ~last:6
