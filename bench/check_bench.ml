(* Benchmark-regression gate over BENCH_dse.json.

   Usage:
     check_bench <current.json> <baseline.json> [tolerance] [trace_tol]
     check_bench --validate-trace <trace.json>

   In gate mode it fails (exit 1) when any workload's cached evals/sec
   in the current file has regressed by more than [tolerance] (default
   0.20) relative to the committed baseline, or when a baseline workload
   is missing.  Files with the mccm-bench-dse/2 schema also carry a
   per-workload "trace_overhead" (traced arm vs cached arm of the same
   workload, instrumentation fully on); those are gated against
   [trace_tol] (default 0.35 — the absolute span cost is well under a
   microsecond, but the precomputed-table path cut a cached evaluation
   to ~15 us, so the same instrumentation is a ~20% relative overhead
   on a quiet machine; the ceiling leaves headroom for noisy CI
   runners while still catching the order-of-magnitude blowups this
   gate exists for).  Old /1 files
   simply lack the field and skip that gate, so the checker stays
   usable against historic baselines.

   mccm-bench-dse/3 files additionally carry per-workload
   "table_speedup" (list-fold reference path vs precomputed-table path,
   both uncached, best of two interleaved samples each) gated at a 2.0x
   floor, and an "exhaustive_parallel" record with per-domain-count
   specs/sec; the 4-domain rate is gated at 1.5x the 1-domain rate, but
   only when the file's "recommended_domains" is at least 4 — a
   single-core recorder cannot exhibit Domains scaling and its numbers
   would gate on noise.  /2 and /1 files lack all these fields and skip
   the gates.

   mccm-bench-dse/4 files additionally carry an "enumerate_bnb" record
   (best-first branch-and-bound vs pruned scan on the deep ResNet152
   configuration): its "prune_ratio" is gated at a 0.5 floor — the
   headline claim of the admissible segment bounds — and
   "winner_matches_scan" must be true (both searches are exact, so a
   mismatch is a soundness bug, not a perf regression).  Older files
   lack the member and skip the gate.

   mccm-bench-dse/5 files record the warm-pool parallel scan (domains
   spawned once, sessions forked once, timed region covers only the
   steady state), so the Domains-scaling floor rises from 1.5x to 2.5x
   (4-domain vs 1-domain, still only when "recommended_domains" >= 4),
   and "exhaustive_parallel.winners_identical" — the recorded
   {1,2,4} domains x {scan, best-first} x {pruned, unpruned} winner
   matrix — must be true on every file, single-core recorders
   included: determinism does not need cores.  /5 files also carry
   per-domain "cold_seconds" (crew spawned inside the call) and a
   "phases" breakdown (warm-up/fork/chunk/absorb); those are recorded
   for trend inspection, not gated.  Older schemas keep the 1.5x floor
   and skip the new members.

   --validate-trace parses a Chrome trace_event JSON file (as written by
   `mccm --trace` or Mccm_obs.Chrome_trace) and fails unless it holds a
   non-empty "traceEvents" array of well-formed "X" events.

   The toolchain has no JSON library, so a minimal recursive-descent
   parser covering the emitted schema lives here. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let string_lit () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some 'n' -> Buffer.add_char b '\n'; advance (); go ()
        | Some 't' -> Buffer.add_char b '\t'; advance (); go ()
        | Some c -> Buffer.add_char b c; advance (); go ()
        | None -> fail "unterminated escape")
      | Some c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let rec members acc =
          skip_ws ();
          let key = string_lit () in
          skip_ws ();
          expect ':';
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ((key, v) :: acc)
          | Some '}' -> advance (); Obj (List.rev ((key, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); Arr [] end
      else begin
        let rec elements acc =
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elements (v :: acc)
          | Some ']' -> advance (); Arr (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elements []
      end
    | Some '"' -> Str (string_lit ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (number ())
    | None -> fail "unexpected end of input"
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let load path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  parse content

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let num_exn what = function
  | Some (Num f) -> f
  | _ -> failwith (what ^ ": missing or non-numeric")

let str_exn what = function
  | Some (Str s) -> s
  | _ -> failwith (what ^ ": missing or non-string")

(* name -> cached evals/sec for every workload entry. *)
let cached_rates json =
  match member "workloads" json with
  | Some (Arr ws) ->
    List.map
      (fun w ->
        ( str_exn "workload name" (member "name" w),
          num_exn "cached_evals_per_sec" (member "cached_evals_per_sec" w) ))
      ws
  | _ -> failwith "workloads: missing or not an array"

(* name -> trace_overhead for every workload that records one
   (mccm-bench-dse/2); absent on /1 files, where the gate is skipped. *)
let trace_overheads json =
  match member "workloads" json with
  | Some (Arr ws) ->
    List.filter_map
      (fun w ->
        match member "trace_overhead" w with
        | Some (Num f) -> Some (str_exn "workload name" (member "name" w), f)
        | _ -> None)
      ws
  | _ -> failwith "workloads: missing or not an array"

(* name -> table_speedup for every workload that records one
   (mccm-bench-dse/3); absent on older files, where the gate is
   skipped. *)
let table_speedups json =
  match member "workloads" json with
  | Some (Arr ws) ->
    List.filter_map
      (fun w ->
        match member "table_speedup" w with
        | Some (Num f) -> Some (str_exn "workload name" (member "name" w), f)
        | _ -> None)
      ws
  | _ -> failwith "workloads: missing or not an array"

(* Schema generation of the file: the integer N of "mccm-bench-dse/N".
   /1 files predate the member. *)
let schema_version json =
  match member "schema" json with
  | Some (Str s) -> (
    match String.rindex_opt s '/' with
    | Some i -> (
      match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1))
      with
      | Some v -> v
      | None -> failwith ("schema: malformed tag " ^ s))
    | None -> failwith ("schema: malformed tag " ^ s))
  | Some _ -> failwith "schema: not a string"
  | None -> 1

(* (1-domain, 4-domain) specs/sec of the exhaustive_parallel record —
   but only when the recording machine had >= 4 cores to scale onto
   (mccm-bench-dse/3); [None] skips the gate. *)
let parallel_scaling json =
  match
    (member "recommended_domains" json, member "exhaustive_parallel" json)
  with
  | Some (Num rec_d), Some ep when rec_d >= 4.0 -> (
    match member "domains" ep with
    | Some (Arr ds) ->
      let rate want =
        List.find_map
          (fun d ->
            match member "domains" d with
            | Some (Num n) when int_of_float n = want ->
              Some (num_exn "evals_per_sec" (member "evals_per_sec" d))
            | _ -> None)
          ds
      in
      (match (rate 1, rate 4) with
      | Some r1, Some r4 -> Some (r1, r4)
      | _ -> None)
    | _ -> None)
  | _ -> None

(* The winners_identical matrix verdict of the exhaustive_parallel
   record.  Mandatory from mccm-bench-dse/5 on (a /5 file without it is
   malformed, not old). *)
let winners_identical ~version json =
  match member "exhaustive_parallel" json with
  | Some ep -> (
    match member "winners_identical" ep with
    | Some (Bool b) -> Some b
    | Some _ -> failwith "exhaustive_parallel.winners_identical: not a bool"
    | None ->
      if version >= 5 then
        failwith "exhaustive_parallel.winners_identical: missing from /5 file"
      else None)
  | None -> None

(* (prune_ratio, winner_matches_scan) of the enumerate_bnb record
   (mccm-bench-dse/4); [None] on older files skips the gate. *)
let bnb_gate_inputs json =
  match member "enumerate_bnb" json with
  | Some bnb ->
    let matches =
      match member "winner_matches_scan" bnb with
      | Some (Bool b) -> b
      | _ -> failwith "enumerate_bnb.winner_matches_scan: missing"
    in
    Some (num_exn "enumerate_bnb.prune_ratio" (member "prune_ratio" bnb),
          matches)
  | None -> None

let validate_trace path =
  let events =
    match member "traceEvents" (load path) with
    | Some (Arr es) -> es
    | _ -> failwith "traceEvents: missing or not an array"
  in
  if events = [] then failwith "traceEvents: empty";
  List.iteri
    (fun i e ->
      let what field = Printf.sprintf "traceEvents[%d].%s" i field in
      let phase = str_exn (what "ph") (member "ph" e) in
      if phase <> "X" then
        failwith (what "ph" ^ ": expected complete event \"X\"");
      ignore (str_exn (what "name") (member "name" e));
      let dur = num_exn (what "dur") (member "dur" e) in
      ignore (num_exn (what "ts") (member "ts" e));
      ignore (num_exn (what "tid") (member "tid" e));
      if dur < 0.0 then failwith (what "dur" ^ ": negative"))
    events;
  Printf.printf "%s: valid Chrome trace, %d complete event(s)\n" path
    (List.length events)

let gate current_path baseline_path tolerance trace_tol =
  let current_json = load current_path in
  let current = cached_rates current_json in
  let baseline = cached_rates (load baseline_path) in
  let failures = ref 0 in
  List.iter
    (fun (name, base_rate) ->
      match List.assoc_opt name current with
      | None ->
        incr failures;
        Printf.printf "FAIL %-16s missing from %s\n" name current_path
      | Some rate ->
        let floor = base_rate *. (1.0 -. tolerance) in
        let verdict = if rate >= floor then "ok  " else (incr failures; "FAIL") in
        Printf.printf
          "%s %-16s cached %.0f evals/s (baseline %.0f, floor %.0f)\n" verdict
          name rate base_rate floor)
    baseline;
  List.iter
    (fun (name, overhead) ->
      let verdict =
        if overhead <= trace_tol then "ok  " else (incr failures; "FAIL")
      in
      Printf.printf "%s %-16s trace overhead %+.1f%% (ceiling %.0f%%)\n"
        verdict name (100.0 *. overhead) (100.0 *. trace_tol))
    (trace_overheads current_json);
  List.iter
    (fun (name, sp) ->
      let verdict = if sp >= 2.0 then "ok  " else (incr failures; "FAIL") in
      Printf.printf "%s %-16s table speedup %.2fx (floor 2.00x)\n" verdict
        name sp)
    (table_speedups current_json);
  let version = schema_version current_json in
  (match parallel_scaling current_json with
  | None -> ()
  | Some (r1, r4) ->
    (* Warm-pool /5 recordings removed the per-call spawn and fork
       costs from the timed region, so they owe real scaling. *)
    let floor = if version >= 5 then 2.5 else 1.5 in
    let verdict =
      if r4 >= floor *. r1 then "ok  " else (incr failures; "FAIL")
    in
    Printf.printf
      "%s %-16s 4-domain %.0f specs/s vs 1-domain %.0f (floor %.2fx)\n"
      verdict "exhaustive_par" r4 r1 floor);
  (match winners_identical ~version current_json with
  | None -> ()
  | Some ok ->
    let verdict = if ok then "ok  " else (incr failures; "FAIL") in
    Printf.printf
      "%s %-16s winners identical across domains x strategy x pruning: %b\n"
      verdict "exhaustive_par" ok);
  (match bnb_gate_inputs current_json with
  | None -> ()
  | Some (ratio, matches) ->
    let verdict = if ratio >= 0.5 then "ok  " else (incr failures; "FAIL") in
    Printf.printf "%s %-16s prune ratio %.1f%% (floor 50%%)\n" verdict
      "enumerate_bnb" (100.0 *. ratio);
    let verdict = if matches then "ok  " else (incr failures; "FAIL") in
    Printf.printf "%s %-16s winner matches pruned scan: %b\n" verdict
      "enumerate_bnb" matches);
  if !failures > 0 then begin
    Printf.printf "%d gate failure(s)\n" !failures;
    exit 1
  end
  else
    Printf.printf "all workloads within %.0f%% of baseline\n"
      (100.0 *. tolerance)

(* ------------------------------------------------------- serve gate *)

(* BENCH_serve.json (mccm-bench-serve/1, /2 or /3): hard validity
   asserts always (progress was made, nothing errored, nothing
   dropped); /2 files additionally carry the interleaved
   flight-recorder A/B, whose overhead is gated hard at [flight_tol]
   (default 2%) — the recorder rides every production reply, so it
   must stay in the noise; /3 files add the result-cache arms, gated
   hard on their structural claims (warm hits at least 5x cold
   throughput, the thundering herd resolved by exactly one evaluation
   with every reply byte-identical) — these are properties of the
   cache design, not of the box, so no baseline is needed.  The
   throughput floor only gates against a committed baseline recorded on
   a comparable box (same workers and recommended_domains) — it stays
   dormant until such a baseline exists, like the DSE scaling gates
   above. *)
let check_serve ?(flight_tol = 0.02) current_path baseline_path tolerance =
  let json = load current_path in
  (match member "schema" json with
  | Some (Str "mccm-bench-serve/1")
  | Some (Str "mccm-bench-serve/2")
  | Some (Str "mccm-bench-serve/3") -> ()
  | Some (Str other) -> failwith ("serve schema: unexpected " ^ other)
  | _ -> failwith "serve schema: missing");
  let num name = num_exn name (member name json) in
  let failures = ref 0 in
  let hard name ok detail =
    let verdict = if ok then "ok  " else (incr failures; "FAIL") in
    Printf.printf "%s %-16s %s\n" verdict name detail
  in
  let replies = num "total_replies" in
  let errors = num "errors" in
  let dropped = num "dropped" in
  let rate = num "evals_per_sec" in
  hard "serve_progress" (replies > 0.0)
    (Printf.sprintf "%.0f replies (%.0f evals/s)" replies rate);
  hard "serve_errors" (errors = 0.0) (Printf.sprintf "%.0f errors" errors);
  hard "serve_dropped" (dropped = 0.0)
    (Printf.sprintf "%.0f dropped connections" dropped);
  (match member "flight" json with
  | Some flight ->
    let fnum name = num_exn ("flight." ^ name) (member name flight) in
    let off = fnum "disabled_evals_per_sec" in
    let on = fnum "enabled_evals_per_sec" in
    let overhead = fnum "overhead" in
    hard "flight_progress" (off > 0.0 && on > 0.0)
      (Printf.sprintf "%.0f evals/s off, %.0f evals/s on" off on);
    hard "flight_overhead" (overhead <= flight_tol)
      (Printf.sprintf "%.1f%% (budget %.1f%%)" (100.0 *. overhead)
         (100.0 *. flight_tol))
  | None -> ());
  (match member "cache" json with
  | Some cache ->
    let cnum name = num_exn ("cache." ^ name) (member name cache) in
    let cold = cnum "cold_evals_per_sec" in
    let warm = cnum "warm_evals_per_sec" in
    let requests = cnum "requests" in
    hard "cache_progress" (cold > 0.0 && warm > 0.0)
      (Printf.sprintf "%.0f evals/s cold, %.0f evals/s warm" cold warm);
    hard "cache_errors"
      (cnum "errors" = 0.0)
      (Printf.sprintf "%.0f errors" (cnum "errors"));
    hard "cache_warm_hits"
      (cnum "warm_hits" = requests && cnum "warm_misses" = 0.0)
      (Printf.sprintf "%.0f/%.0f hits, %.0f misses" (cnum "warm_hits")
         requests (cnum "warm_misses"));
    hard "cache_speedup"
      (warm >= 5.0 *. cold)
      (Printf.sprintf "%.1fx warm over cold (floor 5.0x)" (warm /. cold));
    (match member "herd" cache with
    | Some herd ->
      let hnum name = num_exn ("herd." ^ name) (member name herd) in
      let size = hnum "size" in
      hard "herd_coalesced"
        (hnum "evaluations" = 1.0 && hnum "coalesced" = size -. 1.0)
        (Printf.sprintf
           "%.0f identical requests -> %.0f evaluation(s), %.0f coalesced"
           size (hnum "evaluations") (hnum "coalesced"));
      hard "herd_identical"
        (member "identical_replies" herd = Some (Bool true))
        "every herd reply byte-identical"
    | None -> hard "herd_present" false "cache member without herd")
  | None -> ());
  (match baseline_path with
  | Some path when Sys.file_exists path ->
    let base = load path in
    let bnum name = num_exn name (member name base) in
    let comparable =
      bnum "workers" = num "workers"
      && bnum "recommended_domains" = num "recommended_domains"
    in
    if comparable then begin
      let floor = bnum "evals_per_sec" *. (1.0 -. tolerance) in
      hard "serve_throughput" (rate >= floor)
        (Printf.sprintf "%.0f evals/s (baseline %.0f, floor %.0f)" rate
           (bnum "evals_per_sec") floor)
    end
    else
      Printf.printf
        "skip serve_throughput: baseline recorded on a different box \
         (workers %.0f/%.0f, cores %.0f/%.0f)\n"
        (bnum "workers") (num "workers")
        (bnum "recommended_domains")
        (num "recommended_domains")
  | Some path ->
    Printf.printf "skip serve_throughput: no baseline at %s (gate dormant)\n"
      path
  | None -> ());
  if !failures > 0 then begin
    Printf.printf "%d serve gate failure(s)\n" !failures;
    exit 1
  end
  else Printf.printf "serve bench ok\n"

let () =
  match Array.to_list Sys.argv with
  | [ _; "--serve"; c ] -> (
    try check_serve c None 0.25
    with Failure msg | Parse_error msg ->
      Printf.printf "FAIL %s: %s\n" c msg;
      exit 1)
  | [ _; "--serve"; c; b ] -> (
    try check_serve c (Some b) 0.25
    with Failure msg | Parse_error msg ->
      Printf.printf "FAIL %s: %s\n" c msg;
      exit 1)
  | [ _; "--serve"; c; b; t ] -> (
    try check_serve c (Some b) (float_of_string t)
    with Failure msg | Parse_error msg ->
      Printf.printf "FAIL %s: %s\n" c msg;
      exit 1)
  | [ _; "--serve"; c; b; t; ft ] -> (
    try
      check_serve ~flight_tol:(float_of_string ft) c (Some b)
        (float_of_string t)
    with Failure msg | Parse_error msg ->
      Printf.printf "FAIL %s: %s\n" c msg;
      exit 1)
  | [ _; "--validate-trace"; path ] -> (
    try validate_trace path
    with Failure msg | Parse_error msg ->
      Printf.printf "FAIL %s: %s\n" path msg;
      exit 1)
  | [ _; c; b ] -> gate c b 0.20 0.35
  | [ _; c; b; t ] -> gate c b (float_of_string t) 0.35
  | [ _; c; b; t; tt ] -> gate c b (float_of_string t) (float_of_string tt)
  | _ ->
    prerr_endline
      "usage: check_bench <current.json> <baseline.json> [tolerance] \
       [trace_tol]\n\
      \       check_bench --serve <current.json> [baseline.json [tolerance \
       [flight_tol]]]\n\
      \       check_bench --validate-trace <trace.json>";
    exit 2
