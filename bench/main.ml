(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section and times the regeneration of each artifact with
   Bechamel (one Test.make per artifact), plus the headline
   evaluations-per-second measurement behind the paper's 100000x claim.

   Every run also benchmarks the DSE evaluation-session cache (cached
   vs. uncached evals/sec on local-search, exhaustive and random-sweep
   workloads, with a bit-exactness cross-check) and writes the numbers,
   together with per-artifact regeneration times, to a machine-readable
   BENCH_dse.json — the perf trajectory this and future PRs gate on
   (see check_bench.ml).

   Usage:
     dune exec bench/main.exe                 # all artifacts + timings
     dune exec bench/main.exe -- table4 fig5  # selected artifacts
     dune exec bench/main.exe -- --full       # Fig. 10 with 100000 samples
     dune exec bench/main.exe -- --no-bench   # skip the Bechamel timings
     dune exec bench/main.exe -- --fig10-samples 200   # shrink fig10
     dune exec bench/main.exe -- --json out.json       # BENCH_dse target *)

(* (artifact name, wall-clock seconds), in execution order. *)
let artifact_times : (string * float) list ref = ref []

let section name f =
  Format.printf "@.===================== %s =====================@.@." name;
  let t0 = Unix.gettimeofday () in
  f ();
  artifact_times := !artifact_times @ [ (name, Unix.gettimeofday () -. t0) ];
  Format.printf "@."

let fig10_samples = ref 5000

let artifacts =
  [
    ("table1", fun () -> Experiments.Table1.print (Experiments.Table1.run ()));
    ("table2", Experiments.Setup_tables.print_table2);
    ("table3", Experiments.Setup_tables.print_table3);
    ("table4", fun () -> Experiments.Table4.print (Experiments.Table4.run ()));
    ("table5", fun () -> Experiments.Table5.print (Experiments.Table5.run ()));
    ("fig5", fun () -> Experiments.Tradeoff.print (Experiments.Tradeoff.fig5 ()));
    ("fig6", fun () -> Experiments.Fig6.print (Experiments.Fig6.run ()));
    ("fig7", fun () -> Experiments.Fig7.print (Experiments.Fig7.run ()));
    ("fig8", fun () -> Experiments.Tradeoff.print (Experiments.Tradeoff.fig8 ()));
    ("fig9", fun () -> Experiments.Fig9.print (Experiments.Fig9.run ()));
    ( "fig10",
      fun () ->
        Experiments.Fig10.print
          (Experiments.Fig10.run ~samples:!fig10_samples ()) );
    ( "ablations",
      fun () -> Experiments.Ablations.print (Experiments.Ablations.run ()) );
    ( "sensitivity",
      fun () ->
        Experiments.Sensitivity.print (Experiments.Sensitivity.run ()) );
    ( "extremes",
      fun () -> Experiments.Extremes.print (Experiments.Extremes.run ()) );
  ]

(* ------------------------------------------------------------------ *)
(* Bechamel timings: one Test.make per artifact (how long regenerating
   it takes) and the per-design evaluation speed (the quantity behind
   the paper's 100000x-faster-than-synthesis claim). *)

let speed_tests () =
  let open Bechamel in
  let xcp = Cnn.Model_zoo.xception () in
  let res50 = Cnn.Model_zoo.resnet50 () in
  let per_design =
    [
      Test.make ~name:"evaluate/Segmented4-XCp-VCU110"
        (Staged.stage (fun () ->
             Mccm.Evaluate.metrics xcp Platform.Board.vcu110
               (Arch.Baselines.segmented ~ces:4 xcp)));
      Test.make ~name:"evaluate/Hybrid7-XCp-VCU110"
        (Staged.stage (fun () ->
             Mccm.Evaluate.metrics xcp Platform.Board.vcu110
               (Arch.Baselines.hybrid ~ces:7 xcp)));
      Test.make ~name:"evaluate/SegmentedRR2-Res50-ZC706"
        (Staged.stage (fun () ->
             Mccm.Evaluate.metrics res50 Platform.Board.zc706
               (Arch.Baselines.segmented_rr ~ces:2 res50)));
      Test.make ~name:"surrogate/Hybrid7-XCp-VCU110"
        (Staged.stage (fun () ->
             Sim.Simulate.evaluate xcp Platform.Board.vcu110
               (Arch.Baselines.hybrid ~ces:7 xcp)));
    ]
  in
  let artifact_tests =
    [
      Test.make ~name:"artifact/table1"
        (Staged.stage (fun () -> ignore (Experiments.Table1.run ())));
      Test.make ~name:"artifact/fig5"
        (Staged.stage (fun () -> ignore (Experiments.Tradeoff.fig5 ())));
      Test.make ~name:"artifact/fig6"
        (Staged.stage (fun () -> ignore (Experiments.Fig6.run ())));
      Test.make ~name:"artifact/fig7"
        (Staged.stage (fun () -> ignore (Experiments.Fig7.run ())));
      Test.make ~name:"artifact/fig8"
        (Staged.stage (fun () -> ignore (Experiments.Tradeoff.fig8 ())));
      Test.make ~name:"artifact/fig9"
        (Staged.stage (fun () -> ignore (Experiments.Fig9.run ())));
      Test.make ~name:"artifact/fig10-100designs"
        (Staged.stage (fun () ->
             ignore (Experiments.Fig10.run ~samples:100 ())));
    ]
  in
  Test.make_grouped ~name:"mccm" (per_design @ artifact_tests)

let run_bechamel () =
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 1.0) () in
  let raw =
    Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] (speed_tests ())
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (t :: _) -> t
          | _ -> Float.nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort compare
  in
  let table =
    Util.Table.create ~title:"Bechamel timings (monotonic clock)"
      ~columns:[ ("benchmark", Util.Table.Left); ("time/run", Util.Table.Right) ]
      ()
  in
  List.iter
    (fun (name, ns) ->
      Util.Table.add_row table
        [ name; Format.asprintf "%a" Util.Units.pp_seconds (ns *. 1e-9) ])
    rows;
  Util.Table.print table;
  (* The paper's speed claim: ~6.3 ms per design vs ~1 hour of synthesis. *)
  match List.assoc_opt "mccm/evaluate/Hybrid7-XCp-VCU110" rows with
  | Some ns when not (Float.is_nan ns) ->
    let per_design_s = ns *. 1e-9 in
    Format.printf
      "@.One MCCM evaluation takes %a; against the paper's ~1 h synthesis \
       per design that is a %.0fx speedup (paper: ~100000x at 6.3 ms per \
       design).@."
      Util.Units.pp_seconds per_design_s
      (3600.0 /. per_design_s)
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* DSE evaluation-session benchmark: the same workload run through an
   uncached session (every request recomputed) and a memoized one, with
   the results compared bit for bit.  The cached/uncached evals-per-sec
   pair per workload is the number BENCH_dse.json records and CI gates
   on. *)

type dse_row = {
  workload : string;
  evals : int;          (* evaluation requests per arm (identical) *)
  uncached_s : float;
  list_uncached_s : float;  (* uncached arm on the list-fold reference path *)
  cached_s : float;
  traced_s : float;     (* cached arm re-run with Mccm_obs fully on *)
  arch_hit_rate : float;
  seg_hit_rate : float;
  plan_hit_rate : float;
  phases : (string * float) list;
      (* instrumented phase -> total seconds inside it (traced arm) *)
}

let evals_per_sec n s = float_of_int n /. Float.max 1e-9 s
let speedup_of r = r.uncached_s /. Float.max 1e-9 r.cached_s
let trace_overhead_of r = (r.traced_s /. Float.max 1e-9 r.cached_s) -. 1.0
let table_speedup_of r = r.list_uncached_s /. Float.max 1e-9 r.uncached_s

let bench_dse () =
  let model = Cnn.Model_zoo.mobilenet_v2 () in
  let board = Platform.Board.vcu108 in
  let num_layers = Cnn.Model.num_layers model in
  let objective (m : Mccm.Metrics.t) = m.Mccm.Metrics.throughput_ips in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  (* Each workload takes the session to evaluate through and returns a
     comparable payload; both arms must agree exactly. *)
  let arm ?(use_table = true) run memoize =
    let session = Mccm.Eval_session.create ~memoize ~use_table model board in
    let payload, seconds = time (fun () -> run session) in
    ((Mccm.Eval_session.stats session).Mccm.Eval_session.evaluations,
     payload, seconds)
  in
  let workload name run =
    (* Untimed warm-up pass so the pre-existing global parallelism memo
       is equally warm for both arms; only session caching is measured. *)
    ignore (arm run false);
    let un_evals, un_payload, un_s = arm run false in
    (* The list-fold reference arm: same workload, uncached, with the
       precomputed table disabled.  table_speedup (list/table, both
       uncached) is a gated number, so both arms take the best of two
       interleaved samples. *)
    let li_evals, li_payload, li_s = arm ~use_table:false run false in
    let _, _, un_s2 = arm run false in
    let _, _, li_s2 = arm ~use_table:false run false in
    let un_s = Float.min un_s un_s2 and li_s = Float.min li_s li_s2 in
    if un_evals <> li_evals then
      failwith (name ^ ": table arms issued different evaluation counts");
    if un_payload <> li_payload then
      failwith (name ^ ": table path is not bit-identical to the list path");
    (* The traced-vs-cached ratio below is a gate, so both arms take
       the best of three interleaved runs: a single wall-clock sample
       of a sub-second arm jitters (GC slices, scheduling) by more than
       the overhead being measured, and minima are stable estimators of
       the true cost.  The traced arm is the same cached workload with
       spans and metrics fully on; its metric snapshot supplies the
       cache hit rates and per-phase time breakdown recorded in the
       JSON. *)
    let ca_evals, ca_payload, ca_s = ref 0, ref un_payload, ref infinity in
    let tr_evals, tr_payload, tr_s = ref 0, ref un_payload, ref infinity in
    let snap = ref (Mccm_obs.Metric.snapshot ()) in
    for _ = 1 to 3 do
      let e, p, s = arm run true in
      ca_evals := e;
      ca_payload := p;
      ca_s := Float.min !ca_s s;
      Mccm_obs.enable ~tracing:true ();
      Mccm_obs.reset ();
      let e, p, s = arm run true in
      tr_evals := e;
      tr_payload := p;
      tr_s := Float.min !tr_s s;
      snap := Mccm_obs.Metric.snapshot ();
      Mccm_obs.disable ();
      Mccm_obs.reset ()
    done;
    let ca_evals, ca_payload, ca_s = (!ca_evals, !ca_payload, !ca_s) in
    let tr_evals, tr_payload, tr_s = (!tr_evals, !tr_payload, !tr_s) in
    let snap = !snap in
    if un_evals <> ca_evals || un_evals <> tr_evals then
      failwith (name ^ ": arms issued different evaluation counts");
    if un_payload <> ca_payload then
      failwith (name ^ ": cached results are not bit-identical to uncached");
    if un_payload <> tr_payload then
      failwith (name ^ ": traced results are not bit-identical to uncached");
    let c n =
      Option.value ~default:0
        (List.assoc_opt n snap.Mccm_obs.Metric.counters)
    in
    let hist_total n =
      match List.assoc_opt n snap.Mccm_obs.Metric.histograms with
      | Some h -> h.Mccm_obs.Metric.sum
      | None -> 0.0
    in
    let rate hit miss =
      let total = hit + miss in
      if total = 0 then 0.0 else float_of_int hit /. float_of_int total
    in
    {
      workload = name;
      evals = un_evals;
      uncached_s = un_s;
      list_uncached_s = li_s;
      cached_s = ca_s;
      traced_s = tr_s;
      arch_hit_rate = rate (c "session.arch.hit") (c "session.arch.miss");
      seg_hit_rate =
        rate
          (c "seg.single.hit" + c "seg.pipelined.hit")
          (c "seg.single.miss" + c "seg.pipelined.miss");
      plan_hit_rate = rate (c "plan.floor.hit") (c "plan.floor.miss");
      phases =
        List.map
          (fun (label, span) -> (label, hist_total span))
          [
            ("eval_single_ce", "span.eval.single_ce");
            ("eval_pipelined", "span.eval.pipelined");
            ("build_plan", "span.build.plan");
            ("build_parallelism_select", "span.build.parallelism_select");
          ];
    }
  in
  (* Multi-start refinement: the standard DSE flow this cache targets —
     many short hill climbs whose trajectories overlap heavily in the
     segments (and often the architectures) they evaluate. *)
  let seeds =
    let rng = Util.Prng.create ~seed:7L in
    List.concat_map
      (fun ces ->
        List.init 24 (fun _ ->
            Dse.Space.random_spec rng ~num_layers ~ce_counts:[ ces ]))
      [ 4; 5; 6 ]
  in
  let rows =
    [
      workload "local_search" (fun session ->
          List.concat_map
            (fun seed ->
              Dse.Enumerate.local_search ~objective ~session model board seed)
            seeds);
      workload "exhaustive" (fun session ->
          Dse.Enumerate.exhaustive ~session ~ces:5 model board);
      workload "explore_random" (fun session ->
          (Dse.Explore.run ~seed:11L ~session ~samples:10000 model board)
            .Dse.Explore.evaluated);
    ]
  in
  let table =
    Util.Table.create ~title:"DSE session cache (MobileNetV2 / VCU108)"
      ~columns:
        [ ("workload", Util.Table.Left); ("evals", Util.Table.Right);
          ("list evals/s", Util.Table.Right);
          ("uncached evals/s", Util.Table.Right);
          ("cached evals/s", Util.Table.Right);
          ("table speedup", Util.Table.Right);
          ("cache speedup", Util.Table.Right);
          ("trace overhead", Util.Table.Right);
          ("seg hits", Util.Table.Right) ]
      ()
  in
  List.iter
    (fun r ->
      Util.Table.add_row table
        [ r.workload; string_of_int r.evals;
          Format.sprintf "%.0f" (evals_per_sec r.evals r.list_uncached_s);
          Format.sprintf "%.0f" (evals_per_sec r.evals r.uncached_s);
          Format.sprintf "%.0f" (evals_per_sec r.evals r.cached_s);
          Format.sprintf "%.1fx" (table_speedup_of r);
          Format.sprintf "%.1fx" (speedup_of r);
          Format.sprintf "%+.1f%%" (100.0 *. trace_overhead_of r);
          Format.sprintf "%.0f%%" (100.0 *. r.seg_hit_rate) ])
    rows;
  Util.Table.print table;
  rows

(* ------------------------------------------------------------------ *)
(* Domains-parallel exhaustive scan: the same bound-pruned argmax scan
   at domain counts 1/2/4 on unmemoized sessions (raw model evaluation
   is what must scale; caching would blur it).  Each domain count is
   timed twice: against a caller-owned warm pool (domains spawned once,
   outside the timed region — the steady-state DSE loop) and cold (the
   call spawns and retires its own crew, so pool amortisation shows up
   as the cold/warm gap).  A traced 4-domain pooled run supplies the
   per-phase breakdown (warm-up / fork / chunk / absorb seconds) the
   JSON records.  CI gates 4-domain vs 1-domain warm throughput — but
   only when the recording machine actually had >= 4 cores, so the JSON
   also records the runner's recommended domain count — plus a
   winners-identical matrix over {1,2,4} domains x {scan, best-first} x
   {pruned, unpruned}. *)

type par_point = {
  pd_domains : int;
  pd_seconds : float;       (* warm caller-owned pool *)
  pd_cold_seconds : float;  (* crew spawned and retired inside the call *)
}

type par_phases = {
  ph_warmup_s : float;
  ph_fork_s : float;
  ph_chunk_s : float;
  ph_absorb_s : float;
  ph_rounds : int;
  ph_chunks : int;
}

type par_bench = {
  par_ces : int;
  par_max_specs : int;
  par_enumerated : int;
  par_prune_ratio : float;
  par_points : par_point list;
  par_phases : par_phases;
  par_winners_identical : bool;
}

let bench_parallel () =
  let model = Cnn.Model_zoo.mobilenet_v2 () in
  let board = Platform.Board.vcu108 in
  let ces = 5 and max_specs = 6000 in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  (* Pin the strategy: `Auto would switch 1-domain runs onto the
     best-first search and the 4-vs-1-domain gate would compare two
     different algorithms. *)
  let run ?pool domains =
    let session = Mccm.Eval_session.create ~memoize:false model board in
    time (fun () ->
        Dse.Enumerate.exhaustive_best ~max_specs ~session ~domains ?pool
          ~clamp:false ~strategy:`Scan ~objective:`Throughput ~ces model board)
  in
  let (ref_best, ref_stats), _ = run 1 in
  let points =
    List.map
      (fun domains ->
        (* Best of two samples per arm; every configuration must return
           the very same winning design (the scan is deterministic by
           construction). *)
        let pool = Util.Parallel.Pool.create ~clamp:false ~domains () in
        let warm =
          Fun.protect
            ~finally:(fun () -> Util.Parallel.Pool.shutdown pool)
            (fun () ->
              ignore (run ~pool domains) (* spend the one-off domain spawns *);
              let (best, _), w1 = run ~pool domains in
              let _, w2 = run ~pool domains in
              if best <> ref_best then
                failwith
                  (Printf.sprintf
                     "exhaustive_parallel: %d-domain pooled scan disagrees \
                      with 1-domain"
                     domains);
              Float.min w1 w2)
        in
        let (best, _), c1 = run domains in
        let _, c2 = run domains in
        if best <> ref_best then
          failwith
            (Printf.sprintf
               "exhaustive_parallel: %d-domain scan disagrees with 1-domain"
               domains);
        {
          pd_domains = domains;
          pd_seconds = warm;
          pd_cold_seconds = Float.min c1 c2;
        })
      [ 1; 2; 4 ]
  in
  (* Per-phase breakdown of one traced 4-domain pooled run: where the
     parallel wall-clock actually goes (warm-up, session forks, chunk
     execution, memo absorption). *)
  let phases =
    let pool = Util.Parallel.Pool.create ~clamp:false ~domains:4 () in
    Fun.protect
      ~finally:(fun () -> Util.Parallel.Pool.shutdown pool)
      (fun () ->
        Mccm_obs.enable ();
        Mccm_obs.reset ();
        ignore (run ~pool 4);
        let snap = Mccm_obs.Metric.snapshot () in
        Mccm_obs.disable ();
        Mccm_obs.reset ();
        let hist n =
          match List.assoc_opt n snap.Mccm_obs.Metric.histograms with
          | Some h -> h.Mccm_obs.Metric.sum
          | None -> 0.0
        in
        let counter n =
          Option.value ~default:0
            (List.assoc_opt n snap.Mccm_obs.Metric.counters)
        in
        {
          ph_warmup_s = hist "dse.parallel.warmup_s";
          ph_fork_s = hist "dse.parallel.fork_s";
          ph_chunk_s = hist "dse.parallel.chunk_s";
          ph_absorb_s = hist "dse.parallel.absorb_s";
          ph_rounds = counter "dse.parallel.rounds";
          ph_chunks = counter "dse.parallel.chunks";
        })
  in
  (* The determinism matrix behind the /5 gate: every combination of
     domain count, search strategy and pruning must return the same
     winner as the sequential unpruned reference. *)
  let winners_identical =
    let winner ~domains ~strategy ~prune =
      let session = Mccm.Eval_session.create ~memoize:false model board in
      fst
        (Dse.Enumerate.exhaustive_best ~max_specs ~session ~domains
           ~clamp:false ~strategy ~prune ~objective:`Throughput ~ces model
           board)
    in
    let reference = winner ~domains:1 ~strategy:`Scan ~prune:false in
    List.for_all
      (fun domains ->
        List.for_all
          (fun strategy ->
            List.for_all
              (fun prune -> winner ~domains ~strategy ~prune = reference)
              [ true; false ])
          [ `Scan; `Best_first ])
      [ 1; 2; 4 ]
  in
  let bench =
    {
      par_ces = ces;
      par_max_specs = max_specs;
      par_enumerated = ref_stats.Dse.Enumerate.enumerated;
      par_prune_ratio =
        float_of_int ref_stats.Dse.Enumerate.pruned
        /. float_of_int (max 1 ref_stats.Dse.Enumerate.enumerated);
      par_points = points;
      par_phases = phases;
      par_winners_identical = winners_identical;
    }
  in
  let table =
    Util.Table.create
      ~title:
        (Format.sprintf
           "Parallel exhaustive scan (MobileNetV2 / VCU108, ces=%d, %d \
            specs, prune ratio %.1f%%, %d core(s) recommended)"
           ces bench.par_enumerated
           (100.0 *. bench.par_prune_ratio)
           (Util.Parallel.recommended ()))
      ~columns:
        [ ("domains", Util.Table.Right); ("warm s", Util.Table.Right);
          ("cold s", Util.Table.Right); ("specs/s", Util.Table.Right);
          ("scaling", Util.Table.Right) ]
      ()
  in
  let base_s = (List.hd points).pd_seconds in
  List.iter
    (fun p ->
      Util.Table.add_row table
        [ string_of_int p.pd_domains;
          Format.sprintf "%.3f" p.pd_seconds;
          Format.sprintf "%.3f" p.pd_cold_seconds;
          Format.sprintf "%.0f"
            (evals_per_sec bench.par_enumerated p.pd_seconds);
          Format.sprintf "%.2fx" (base_s /. Float.max 1e-9 p.pd_seconds) ])
    points;
  Util.Table.print table;
  Format.printf
    "4-domain pooled phases: warmup %.3fs, fork %.3fs, chunk %.3fs, absorb \
     %.3fs over %d round(s) / %d chunk(s)@."
    phases.ph_warmup_s phases.ph_fork_s phases.ph_chunk_s phases.ph_absorb_s
    phases.ph_rounds phases.ph_chunks;
  Format.printf "winners identical across domains x strategy x pruning: %b@."
    winners_identical;
  if not winners_identical then
    failwith "exhaustive_parallel: winner matrix disagrees";
  bench

(* ------------------------------------------------------------------ *)
(* Best-first branch-and-bound vs pruned scan on the deep-space
   configuration (ResNet152, 10 CEs) where the segment bounds actually
   bite: both searches are exact, so the winner must match bit for bit,
   and CI gates the recorded prune ratio at 0.5. *)

type bnb_bench = {
  bb_model : string;
  bb_board : string;
  bb_ces : int;
  bb_max_specs : int;
  bb_enumerated : int;
  bb_evaluated : int;
  bb_pruned : int;
  bb_nodes : int;
  bb_prune_ratio : float;
  bb_seconds : float;
  bb_scan_seconds : float;
  bb_winner_matches_scan : bool;
}

let bench_bnb () =
  let model = Cnn.Model_zoo.resnet152 () in
  let board = Platform.Board.vcu108 in
  let ces = 10 and max_specs = 30000 in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let run strategy =
    let session = Mccm.Eval_session.create ~memoize:false model board in
    time (fun () ->
        Dse.Enumerate.exhaustive_best ~max_specs ~session ~clamp:false
          ~strategy ~objective:`Throughput ~ces model board)
  in
  let (bnb_best, bnb_stats), bnb_s = run `Best_first in
  let (scan_best, _), scan_s = run `Scan in
  if bnb_best <> scan_best then
    failwith "enumerate_bnb: best-first winner disagrees with the pruned scan";
  let bench =
    {
      bb_model = "ResNet152";
      bb_board = "VCU108";
      bb_ces = ces;
      bb_max_specs = max_specs;
      bb_enumerated = bnb_stats.Dse.Enumerate.enumerated;
      bb_evaluated = bnb_stats.Dse.Enumerate.evaluated;
      bb_pruned = bnb_stats.Dse.Enumerate.pruned;
      bb_nodes = bnb_stats.Dse.Enumerate.nodes;
      bb_prune_ratio =
        float_of_int bnb_stats.Dse.Enumerate.pruned
        /. float_of_int (max 1 bnb_stats.Dse.Enumerate.enumerated);
      bb_seconds = bnb_s;
      bb_scan_seconds = scan_s;
      bb_winner_matches_scan = true;
    }
  in
  let table =
    Util.Table.create
      ~title:
        (Format.sprintf
           "Best-first branch-and-bound (%s / %s, ces=%d, %d specs)"
           bench.bb_model bench.bb_board ces bench.bb_enumerated)
      ~columns:
        [ ("search", Util.Table.Left); ("seconds", Util.Table.Right);
          ("evaluated", Util.Table.Right); ("pruned", Util.Table.Right);
          ("nodes", Util.Table.Right) ]
      ()
  in
  Util.Table.add_row table
    [ "best-first"; Format.sprintf "%.3f" bnb_s;
      string_of_int bench.bb_evaluated;
      Format.sprintf "%d (%.1f%%)" bench.bb_pruned
        (100.0 *. bench.bb_prune_ratio);
      string_of_int bench.bb_nodes ];
  Util.Table.add_row table
    [ "pruned scan"; Format.sprintf "%.3f" scan_s; "-"; "-"; "0" ];
  Util.Table.print table;
  Format.printf "winners identical across strategies@.";
  bench

(* Hand-rolled JSON emission (the toolchain has no JSON library); the
   schema is consumed by check_bench.ml and CI. *)
let write_bench_json ~path rows par bnb =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.bprintf buf fmt in
  add "{\n  \"schema\": \"mccm-bench-dse/5\",\n";
  add "  \"fig10_samples\": %d,\n" !fig10_samples;
  add "  \"recommended_domains\": %d,\n" (Util.Parallel.recommended ());
  add "  \"workloads\": [\n";
  List.iteri
    (fun i r ->
      add
        "    { \"name\": \"%s\", \"evals\": %d, \"uncached_s\": %.6f, \
         \"cached_s\": %.6f, \"uncached_evals_per_sec\": %.1f, \
         \"cached_evals_per_sec\": %.1f, \"speedup\": %.2f,\n"
        r.workload r.evals r.uncached_s r.cached_s
        (evals_per_sec r.evals r.uncached_s)
        (evals_per_sec r.evals r.cached_s)
        (speedup_of r);
      add
        "      \"list_uncached_s\": %.6f, \"list_evals_per_sec\": %.1f, \
         \"table_speedup\": %.2f,\n"
        r.list_uncached_s
        (evals_per_sec r.evals r.list_uncached_s)
        (table_speedup_of r);
      add
        "      \"traced_s\": %.6f, \"traced_evals_per_sec\": %.1f, \
         \"trace_overhead\": %.4f,\n"
        r.traced_s
        (evals_per_sec r.evals r.traced_s)
        (trace_overhead_of r);
      add
        "      \"arch_hit_rate\": %.4f, \"seg_hit_rate\": %.4f, \
         \"plan_hit_rate\": %.4f,\n"
        r.arch_hit_rate r.seg_hit_rate r.plan_hit_rate;
      add "      \"phases\": { %s } }%s\n"
        (String.concat ", "
           (List.map
              (fun (label, s) -> Printf.sprintf "\"%s\": %.6f" label s)
              r.phases))
        (if i = List.length rows - 1 then "" else ","))
    rows;
  add "  ],\n";
  add
    "  \"exhaustive_parallel\": { \"ces\": %d, \"max_specs\": %d, \
     \"enumerated\": %d, \"prune_ratio\": %.4f,\n"
    par.par_ces par.par_max_specs par.par_enumerated par.par_prune_ratio;
  add "    \"winners_identical\": %b,\n" par.par_winners_identical;
  add
    "    \"phases\": { \"warmup_s\": %.6f, \"fork_s\": %.6f, \"chunk_s\": \
     %.6f, \"absorb_s\": %.6f, \"rounds\": %d, \"chunks\": %d },\n"
    par.par_phases.ph_warmup_s par.par_phases.ph_fork_s
    par.par_phases.ph_chunk_s par.par_phases.ph_absorb_s
    par.par_phases.ph_rounds par.par_phases.ph_chunks;
  add "    \"domains\": [\n";
  let np = List.length par.par_points in
  List.iteri
    (fun i p ->
      add
        "      { \"domains\": %d, \"seconds\": %.6f, \"evals_per_sec\": \
         %.1f, \"cold_seconds\": %.6f, \"cold_evals_per_sec\": %.1f }%s\n"
        p.pd_domains p.pd_seconds
        (evals_per_sec par.par_enumerated p.pd_seconds)
        p.pd_cold_seconds
        (evals_per_sec par.par_enumerated p.pd_cold_seconds)
        (if i = np - 1 then "" else ","))
    par.par_points;
  add "    ] },\n";
  add
    "  \"enumerate_bnb\": { \"model\": \"%s\", \"board\": \"%s\", \"ces\": \
     %d, \"max_specs\": %d,\n"
    bnb.bb_model bnb.bb_board bnb.bb_ces bnb.bb_max_specs;
  add
    "    \"enumerated\": %d, \"evaluated\": %d, \"pruned\": %d, \"nodes\": \
     %d, \"prune_ratio\": %.4f,\n"
    bnb.bb_enumerated bnb.bb_evaluated bnb.bb_pruned bnb.bb_nodes
    bnb.bb_prune_ratio;
  add
    "    \"seconds\": %.6f, \"scan_seconds\": %.6f, \
     \"winner_matches_scan\": %b },\n"
    bnb.bb_seconds bnb.bb_scan_seconds bnb.bb_winner_matches_scan;
  add "  \"artifacts\": [\n";
  (* Only paper artifacts; the Bechamel and cache sections time themselves. *)
  let times =
    List.filter (fun (name, _) -> List.mem_assoc name artifacts) !artifact_times
  in
  let n = List.length times in
  List.iteri
    (fun i (name, s) ->
      add "    { \"name\": \"%s\", \"seconds\": %.3f }%s\n" name s
        (if i = n - 1 then "" else ","))
    times;
  add "  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Format.printf "wrote %s@." path

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec parse flags picks json = function
    | [] -> (List.rev flags, List.rev picks, json)
    | "--fig10-samples" :: n :: rest ->
      fig10_samples := int_of_string n;
      parse flags picks json rest
    | "--json" :: path :: rest -> parse flags picks (Some path) rest
    | a :: rest when String.length a > 1 && a.[0] = '-' ->
      parse (a :: flags) picks json rest
    | a :: rest -> parse flags (a :: picks) json rest
  in
  let flags, picks, json = parse [] [] None args in
  if List.mem "--full" flags then fig10_samples := 100000;
  let run_bench = not (List.mem "--no-bench" flags) in
  let selected =
    if picks = [] then artifacts
    else
      List.filter_map
        (fun p ->
          match List.assoc_opt p artifacts with
          | Some f -> Some (p, f)
          | None ->
            Format.eprintf "unknown artifact %s (have: %s)@." p
              (String.concat ", " (List.map fst artifacts));
            None)
        picks
  in
  List.iter (fun (name, f) -> section name f) selected;
  if run_bench && picks = [] then section "speed (Bechamel)" run_bechamel;
  let rows = ref [] in
  section "DSE session cache" (fun () -> rows := bench_dse ());
  let par = ref None in
  section "parallel exhaustive scan" (fun () -> par := Some (bench_parallel ()));
  let bnb = ref None in
  section "best-first branch-and-bound" (fun () -> bnb := Some (bench_bnb ()));
  write_bench_json
    ~path:(Option.value json ~default:"BENCH_dse.json")
    !rows
    (Option.get !par)
    (Option.get !bnb)
