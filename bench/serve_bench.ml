(* Sustained-throughput benchmark for the mccm daemon.

   Starts an in-process daemon and hammers it with concurrent clients
   sending evaluate requests over the real Unix socket.  The wall-clock
   budget is split into four interleaved phases — flight recorder
   disabled / enabled / disabled / enabled — toggled in-process, so the
   same warm daemon serves both arms and drift (cache state, CPU
   frequency) cancels out.  Records the combined sustained replies/sec
   plus client-observed latency quantiles, and the per-arm best rates
   with the flight-recorder overhead, into BENCH_serve.json
   (mccm-bench-serve/2; the /1 headline fields are kept, computed over
   the combined window).  check_bench --serve validates the file and —
   when a comparable committed baseline exists — gates the rate and the
   flight overhead.

   Usage: serve.exe [out.json] [--seconds S] [--clients N] [--workers N] *)

module Json = Util.Json

let default_seconds = 5.0

type opts = {
  mutable out : string;
  mutable seconds : float;
  mutable clients : int;
  mutable workers : int;
}

let parse_argv () =
  let o =
    {
      out = "BENCH_serve.json";
      seconds = default_seconds;
      clients = 4;
      workers = Domain.recommended_domain_count ();
    }
  in
  let rec go = function
    | [] -> ()
    | "--seconds" :: v :: rest ->
      o.seconds <- float_of_string v;
      go rest
    | "--clients" :: v :: rest ->
      o.clients <- int_of_string v;
      go rest
    | "--workers" :: v :: rest ->
      o.workers <- int_of_string v;
      go rest
    | path :: rest ->
      o.out <- path;
      go rest
  in
  go (List.tl (Array.to_list Sys.argv));
  o

(* The request mix rotates a handful of distinct designs on one
   (model, board): with store_arch=false this measures the daemon's
   steady-state serve path (session reuse + batching), not a cache
   replay of a single architecture. *)
let archs =
  [| "hybrid/2"; "hybrid/3"; "hybrid/4"; "segmented/2"; "segmented/3";
     "segmentedrr/3" |]

type client_tally = {
  mutable replies : int;
  mutable errors : int;
  mutable dropped : int;
  mutable latencies_ms : float list;
}

let client_loop sock stop tally k =
  match Serve.Client.connect sock with
  | Error _ -> tally.dropped <- tally.dropped + 1
  | Ok c ->
    let i = ref k in
    while not (Atomic.get stop) do
      incr i;
      let arch = archs.(!i mod Array.length archs) in
      let t0 = Mccm_obs.Clock.now_ns () in
      match
        Serve.Client.evaluate ~timeout_s:60.0 c ~model:"MobV2"
          ~board:"VCU108" ~arch
      with
      | Ok _ ->
        tally.replies <- tally.replies + 1;
        tally.latencies_ms <-
          (float_of_int (Mccm_obs.Clock.now_ns () - t0) /. 1e6)
          :: tally.latencies_ms
      | Error ("transport", _) ->
        if not (Atomic.get stop) then tally.dropped <- tally.dropped + 1;
        Atomic.set stop true
      | Error _ -> tally.errors <- tally.errors + 1
    done;
    Serve.Client.close c

type phase_result = {
  p_replies : int;
  p_errors : int;
  p_dropped : int;
  p_elapsed : float;
  p_latencies_ms : float list;
}

let run_phase o sock ~seconds =
  let stop = Atomic.make false in
  let tallies =
    Array.init o.clients (fun _ ->
        { replies = 0; errors = 0; dropped = 0; latencies_ms = [] })
  in
  let t0 = Unix.gettimeofday () in
  let threads =
    Array.to_list
      (Array.mapi
         (fun k t -> Thread.create (fun () -> client_loop sock stop t k) ())
         tallies)
  in
  Thread.delay seconds;
  Atomic.set stop true;
  List.iter Thread.join threads;
  let elapsed = Unix.gettimeofday () -. t0 in
  let total f = Array.fold_left (fun acc t -> acc + f t) 0 tallies in
  {
    p_replies = total (fun t -> t.replies);
    p_errors = total (fun t -> t.errors);
    p_dropped = total (fun t -> t.dropped);
    p_elapsed = elapsed;
    p_latencies_ms =
      Array.fold_left
        (fun acc t -> List.rev_append t.latencies_ms acc)
        [] tallies;
  }

let () =
  let o = parse_argv () in
  let sock =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mccm-bench-%d.sock" (Unix.getpid ()))
  in
  let cfg =
    {
      (Serve.Daemon.default ~socket_path:sock) with
      Serve.Daemon.workers = o.workers;
    }
  in
  let h = Serve.Daemon.spawn cfg in
  (* Warm the session once so every measured phase is steady state. *)
  let warm = Serve.Client.connect_exn sock in
  Array.iter
    (fun arch ->
      match
        Serve.Client.evaluate ~timeout_s:120.0 warm ~model:"MobV2"
          ~board:"VCU108" ~arch
      with
      | Ok _ -> ()
      | Error (code, msg) ->
        Printf.eprintf "warmup %s: %s: %s\n" arch code msg;
        exit 1)
    archs;
  Serve.Client.close warm;
  (* Interleaved A/B: the daemon is in-process, so flipping the flight
     gate flips what its workers consult on the very next request.
     Eight alternating phases, best-of-four per arm: scheduling noise
     on a shared box swings individual windows by several percent, but
     the best window of each arm converges on that arm's true peak, so
     the overhead estimate is stable where a single pair is not. *)
  let phase_s = Float.max 0.4 (o.seconds /. 8.0) in
  let phases =
    List.map
      (fun flight_on ->
        if flight_on then Mccm_obs.Flight.enable ()
        else Mccm_obs.Flight.disable ();
        let r = run_phase o sock ~seconds:phase_s in
        (flight_on, r))
      [ false; true; false; true; false; true; false; true ]
  in
  Mccm_obs.Flight.enable ();
  Serve.Daemon.shutdown h;
  let rate r = float_of_int r.p_replies /. Float.max 1e-9 r.p_elapsed in
  let best on =
    List.fold_left
      (fun acc (o', r) -> if o' = on then Float.max acc (rate r) else acc)
      0.0 phases
  in
  let disabled_rate = best false and enabled_rate = best true in
  let overhead =
    if disabled_rate <= 0.0 then 0.0
    else Float.max 0.0 (1.0 -. (enabled_rate /. disabled_rate))
  in
  (* /1-compatible headline numbers over the combined window *)
  let sum f = List.fold_left (fun acc (_, r) -> acc + f r) 0 phases in
  let replies = sum (fun r -> r.p_replies) in
  let errors = sum (fun r -> r.p_errors) in
  let dropped = sum (fun r -> r.p_dropped) in
  let elapsed =
    List.fold_left (fun acc (_, r) -> acc +. r.p_elapsed) 0.0 phases
  in
  let lat =
    List.fold_left
      (fun acc (_, r) -> List.rev_append r.p_latencies_ms acc)
      [] phases
  in
  let q p = if lat = [] then 0.0 else Util.Stats.quantile lat ~q:p in
  let evals_per_sec = float_of_int replies /. elapsed in
  let doc =
    Json.Obj
      [
        ("schema", Json.Str "mccm-bench-serve/2");
        ("workers", Json.Num (float_of_int o.workers));
        ("clients", Json.Num (float_of_int o.clients));
        ( "recommended_domains",
          Json.Num (float_of_int (Domain.recommended_domain_count ())) );
        ("duration_s", Json.Num elapsed);
        ("total_replies", Json.Num (float_of_int replies));
        ("evals_per_sec", Json.Num evals_per_sec);
        ( "latency_ms",
          Json.Obj
            [
              ("p50", Json.Num (q 0.50));
              ("p95", Json.Num (q 0.95));
              ("p99", Json.Num (q 0.99));
            ] );
        ("errors", Json.Num (float_of_int errors));
        ("dropped", Json.Num (float_of_int dropped));
        ( "flight",
          Json.Obj
            [
              ("disabled_evals_per_sec", Json.Num disabled_rate);
              ("enabled_evals_per_sec", Json.Num enabled_rate);
              ("overhead", Json.Num overhead);
            ] );
      ]
  in
  let oc = open_out o.out in
  output_string oc (Json.to_string_pretty doc);
  output_string oc "\n";
  close_out oc;
  Printf.printf
    "serve bench: %d replies in %.1fs (%.0f evals/s), p50 %.2f ms, p95 %.2f \
     ms, p99 %.2f ms, %d errors, %d dropped\n"
    replies elapsed evals_per_sec (q 0.50) (q 0.95) (q 0.99) errors dropped;
  Printf.printf
    "flight recorder: %.0f evals/s off vs %.0f evals/s on (overhead %.1f%%) \
     -> %s\n"
    disabled_rate enabled_rate (100.0 *. overhead) o.out
