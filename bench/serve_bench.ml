(* Sustained-throughput benchmark for the mccm daemon.

   Starts an in-process daemon, hammers it with concurrent clients
   sending evaluate requests over the real Unix socket for a fixed
   wall-clock budget, and records sustained replies/sec plus
   client-observed latency quantiles into BENCH_serve.json
   (mccm-bench-serve/1).  check_bench --serve validates the file and —
   when a comparable committed baseline exists — gates the rate.

   Usage: serve.exe [out.json] [--seconds S] [--clients N] [--workers N] *)

module Json = Util.Json

let default_seconds = 5.0

type opts = {
  mutable out : string;
  mutable seconds : float;
  mutable clients : int;
  mutable workers : int;
}

let parse_argv () =
  let o =
    {
      out = "BENCH_serve.json";
      seconds = default_seconds;
      clients = 4;
      workers = Domain.recommended_domain_count ();
    }
  in
  let rec go = function
    | [] -> ()
    | "--seconds" :: v :: rest ->
      o.seconds <- float_of_string v;
      go rest
    | "--clients" :: v :: rest ->
      o.clients <- int_of_string v;
      go rest
    | "--workers" :: v :: rest ->
      o.workers <- int_of_string v;
      go rest
    | path :: rest ->
      o.out <- path;
      go rest
  in
  go (List.tl (Array.to_list Sys.argv));
  o

(* The request mix rotates a handful of distinct designs on one
   (model, board): with store_arch=false this measures the daemon's
   steady-state serve path (session reuse + batching), not a cache
   replay of a single architecture. *)
let archs =
  [| "hybrid/2"; "hybrid/3"; "hybrid/4"; "segmented/2"; "segmented/3";
     "segmentedrr/3" |]

type client_tally = {
  mutable replies : int;
  mutable errors : int;
  mutable dropped : int;
  mutable latencies_ms : float list;
}

let client_loop sock stop tally k =
  match Serve.Client.connect sock with
  | Error _ -> tally.dropped <- tally.dropped + 1
  | Ok c ->
    let i = ref k in
    while not (Atomic.get stop) do
      incr i;
      let arch = archs.(!i mod Array.length archs) in
      let t0 = Mccm_obs.Clock.now_ns () in
      match
        Serve.Client.evaluate ~timeout_s:60.0 c ~model:"MobV2"
          ~board:"VCU108" ~arch
      with
      | Ok _ ->
        tally.replies <- tally.replies + 1;
        tally.latencies_ms <-
          (float_of_int (Mccm_obs.Clock.now_ns () - t0) /. 1e6)
          :: tally.latencies_ms
      | Error ("transport", _) ->
        if not (Atomic.get stop) then tally.dropped <- tally.dropped + 1;
        Atomic.set stop true
      | Error _ -> tally.errors <- tally.errors + 1
    done;
    Serve.Client.close c

let () =
  let o = parse_argv () in
  let sock =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mccm-bench-%d.sock" (Unix.getpid ()))
  in
  let cfg =
    {
      (Serve.Daemon.default ~socket_path:sock) with
      Serve.Daemon.workers = o.workers;
    }
  in
  let h = Serve.Daemon.spawn cfg in
  (* Warm the session once so the measured window is steady state. *)
  let warm = Serve.Client.connect_exn sock in
  Array.iter
    (fun arch ->
      match
        Serve.Client.evaluate ~timeout_s:120.0 warm ~model:"MobV2"
          ~board:"VCU108" ~arch
      with
      | Ok _ -> ()
      | Error (code, msg) ->
        Printf.eprintf "warmup %s: %s: %s\n" arch code msg;
        exit 1)
    archs;
  Serve.Client.close warm;
  let stop = Atomic.make false in
  let tallies =
    Array.init o.clients (fun _ ->
        { replies = 0; errors = 0; dropped = 0; latencies_ms = [] })
  in
  let t0 = Unix.gettimeofday () in
  let threads =
    Array.to_list
      (Array.mapi
         (fun k t -> Thread.create (fun () -> client_loop sock stop t k) ())
         tallies)
  in
  Thread.delay o.seconds;
  Atomic.set stop true;
  List.iter Thread.join threads;
  let elapsed = Unix.gettimeofday () -. t0 in
  Serve.Daemon.shutdown h;
  let total f = Array.fold_left (fun acc t -> acc + f t) 0 tallies in
  let replies = total (fun t -> t.replies) in
  let errors = total (fun t -> t.errors) in
  let dropped = total (fun t -> t.dropped) in
  let lat =
    Array.fold_left (fun acc t -> List.rev_append t.latencies_ms acc) []
      tallies
  in
  let q p = if lat = [] then 0.0 else Util.Stats.quantile lat ~q:p in
  let evals_per_sec = float_of_int replies /. elapsed in
  let doc =
    Json.Obj
      [
        ("schema", Json.Str "mccm-bench-serve/1");
        ("workers", Json.Num (float_of_int o.workers));
        ("clients", Json.Num (float_of_int o.clients));
        ( "recommended_domains",
          Json.Num (float_of_int (Domain.recommended_domain_count ())) );
        ("duration_s", Json.Num elapsed);
        ("total_replies", Json.Num (float_of_int replies));
        ("evals_per_sec", Json.Num evals_per_sec);
        ( "latency_ms",
          Json.Obj
            [
              ("p50", Json.Num (q 0.50));
              ("p95", Json.Num (q 0.95));
              ("p99", Json.Num (q 0.99));
            ] );
        ("errors", Json.Num (float_of_int errors));
        ("dropped", Json.Num (float_of_int dropped));
      ]
  in
  let oc = open_out o.out in
  output_string oc (Json.to_string_pretty doc);
  output_string oc "\n";
  close_out oc;
  Printf.printf
    "serve bench: %d replies in %.1fs (%.0f evals/s), p50 %.2f ms, p95 %.2f \
     ms, p99 %.2f ms, %d errors, %d dropped -> %s\n"
    replies elapsed evals_per_sec (q 0.50) (q 0.95) (q 0.99) errors dropped
    o.out
