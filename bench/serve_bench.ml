(* Sustained-throughput benchmark for the mccm daemon.

   Starts an in-process daemon and hammers it with concurrent clients
   sending evaluate requests over the real Unix socket.  The wall-clock
   budget is split into four interleaved phases — flight recorder
   disabled / enabled / disabled / enabled — toggled in-process, so the
   same warm daemon serves both arms and drift (cache state, CPU
   frequency) cancels out.  These legacy arms opt out of the result
   cache ({"cache": false}) so they keep measuring the full serve path
   and stay comparable with pre-cache baselines.

   Three result-cache arms follow, replaying a Zipf-skewed mix of
   distinct designs on a deep model through one pipelined connection
   (a bounded send window, so throughput is serve-path-bound rather
   than round-trip-bound): cold (cache opted out), warm (cache on,
   primed — every request is a reader-path hit), and a coalesced
   thundering herd (workers wedged on sleep ops while N identical
   requests pile onto one queued leader — exactly one evaluation, N
   replies, asserted from the daemon's own counters).

   Everything lands in BENCH_serve.json (mccm-bench-serve/3; the /1
   headline fields are kept, computed over the combined flight window).
   check_bench --serve validates the file and gates the flight
   overhead, the warm/cold speedup and the herd's single evaluation.

   Usage: serve.exe [out.json] [--seconds S] [--clients N] [--workers N] *)

module Json = Util.Json

let default_seconds = 5.0

type opts = {
  mutable out : string;
  mutable seconds : float;
  mutable clients : int;
  mutable workers : int;
}

let parse_argv () =
  let o =
    {
      out = "BENCH_serve.json";
      seconds = default_seconds;
      clients = 4;
      workers = Domain.recommended_domain_count ();
    }
  in
  let rec go = function
    | [] -> ()
    | "--seconds" :: v :: rest ->
      o.seconds <- float_of_string v;
      go rest
    | "--clients" :: v :: rest ->
      o.clients <- int_of_string v;
      go rest
    | "--workers" :: v :: rest ->
      o.workers <- int_of_string v;
      go rest
    | path :: rest ->
      o.out <- path;
      go rest
  in
  go (List.tl (Array.to_list Sys.argv));
  o

(* The request mix rotates a handful of distinct designs on one
   (model, board): with store_arch=false this measures the daemon's
   steady-state serve path (session reuse + batching), not a cache
   replay of a single architecture. *)
let archs =
  [| "hybrid/2"; "hybrid/3"; "hybrid/4"; "segmented/2"; "segmented/3";
     "segmentedrr/3" |]

type client_tally = {
  mutable replies : int;
  mutable errors : int;
  mutable dropped : int;
  mutable latencies_ms : float list;
}

let client_loop sock stop tally k =
  match Serve.Client.connect sock with
  | Error _ -> tally.dropped <- tally.dropped + 1
  | Ok c ->
    let i = ref k in
    while not (Atomic.get stop) do
      incr i;
      let arch = archs.(!i mod Array.length archs) in
      let t0 = Mccm_obs.Clock.now_ns () in
      match
        Serve.Client.evaluate ~timeout_s:60.0 ~cache:false c ~model:"MobV2"
          ~board:"VCU108" ~arch
      with
      | Ok _ ->
        tally.replies <- tally.replies + 1;
        tally.latencies_ms <-
          (float_of_int (Mccm_obs.Clock.now_ns () - t0) /. 1e6)
          :: tally.latencies_ms
      | Error ("transport", _) ->
        if not (Atomic.get stop) then tally.dropped <- tally.dropped + 1;
        Atomic.set stop true
      | Error _ -> tally.errors <- tally.errors + 1
    done;
    Serve.Client.close c

type phase_result = {
  p_replies : int;
  p_errors : int;
  p_dropped : int;
  p_elapsed : float;
  p_latencies_ms : float list;
}

let run_phase o sock ~seconds =
  let stop = Atomic.make false in
  let tallies =
    Array.init o.clients (fun _ ->
        { replies = 0; errors = 0; dropped = 0; latencies_ms = [] })
  in
  let t0 = Unix.gettimeofday () in
  let threads =
    Array.to_list
      (Array.mapi
         (fun k t -> Thread.create (fun () -> client_loop sock stop t k) ())
         tallies)
  in
  Thread.delay seconds;
  Atomic.set stop true;
  List.iter Thread.join threads;
  let elapsed = Unix.gettimeofday () -. t0 in
  let total f = Array.fold_left (fun acc t -> acc + f t) 0 tallies in
  {
    p_replies = total (fun t -> t.replies);
    p_errors = total (fun t -> t.errors);
    p_dropped = total (fun t -> t.dropped);
    p_elapsed = elapsed;
    p_latencies_ms =
      Array.fold_left
        (fun acc t -> List.rev_append t.latencies_ms acc)
        [] tallies;
  }

(* ------------------------------------------------- result-cache arms *)

(* Zipf-skewed design mix on a deep model (the paper's Res152 DSE
   workload): rank r is drawn with weight 1/r through a deterministic
   xorshift64* stream, so every arm replays the same schedule. *)
let zipf_model = "Res152"
let zipf_board = "VCU108"

let zipf_archs =
  Array.of_list
    (List.concat_map
       (fun style ->
         List.map
           (fun n -> Printf.sprintf "%s/%d" style n)
           [ 2; 3; 4; 5; 6; 7; 8 ])
       [ "hybrid"; "segmented"; "segmentedrr" ])

(* Never part of the Zipf mix, so the herd arm starts from a cold key. *)
let herd_arch = "hybrid/10"

let zipf_schedule n =
  let k = Array.length zipf_archs in
  let cum = Array.make k 0.0 in
  let total = ref 0.0 in
  for i = 0 to k - 1 do
    total := !total +. (1.0 /. float_of_int (i + 1));
    cum.(i) <- !total
  done;
  let state = ref 0x2545F4914F6CDD1DL in
  let next () =
    let s = !state in
    let s = Int64.logxor s (Int64.shift_left s 13) in
    let s = Int64.logxor s (Int64.shift_right_logical s 7) in
    let s = Int64.logxor s (Int64.shift_left s 17) in
    state := s;
    Int64.to_float (Int64.shift_right_logical s 11) /. 9007199254740992.0
  in
  Array.init n (fun _ ->
      let u = next () *. !total in
      let rec find i = if i >= k - 1 || cum.(i) >= u then i else find (i + 1) in
      find 0)

let evaluate_frame ~id ~cache arch =
  Json.to_string
    (Json.Obj
       [
         ("id", Json.Num (float_of_int id));
         ("op", Json.Str "evaluate");
         ( "params",
           Json.Obj
             ([
                ("model", Json.Str zipf_model);
                ("board", Json.Str zipf_board);
                ("arch", Json.Str arch);
              ]
             @ if cache then [] else [ ("cache", Json.Bool false) ]) );
       ])

(* One connection, at most [window] requests outstanding: enough to
   amortize the per-message round trip (throughput measures the serve
   path, not socket latency) while bounding both sides' buffers. *)
let pipeline sock frames ~window =
  let c = Serve.Client.connect_exn sock in
  let n = Array.length frames in
  let replies = ref [] in
  let recvd = ref 0 in
  let recv () =
    match Serve.Client.recv_line ~timeout_s:120.0 c with
    | Ok line ->
      replies := line :: !replies;
      incr recvd
    | Error msg -> failwith ("bench pipeline: " ^ msg)
  in
  let t0 = Unix.gettimeofday () in
  Array.iteri
    (fun i frame ->
      if i - !recvd >= window then recv ();
      match Serve.Client.send_line c frame with
      | Ok () -> ()
      | Error msg -> failwith ("bench pipeline: " ^ msg))
    frames;
  while !recvd < n do
    recv ()
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  Serve.Client.close c;
  (elapsed, List.rev !replies)

let reply_result line =
  match Json.parse line with
  | Error _ -> None
  | Ok j -> Option.map Json.to_string (Json.member "result" j)

let counter d name =
  Option.value ~default:0 (List.assoc_opt name (Serve.Daemon.counters d))

let wait_for ?(timeout_s = 30.0) pred =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if pred () then true
    else if Unix.gettimeofday () -. t0 > timeout_s then false
    else begin
      Thread.delay 0.002;
      go ()
    end
  in
  go ()

type herd = {
  h_size : int;
  h_evaluations : int;
  h_coalesced : int;
  h_hits : int;
  h_identical : bool;
  h_wedged : bool;
  h_elapsed : float;
}

(* Thundering herd: wedge every worker on a sleep op, pile [size]
   identical requests onto the wedged queue (one leader + size-1
   coalesced waiters), then let the workers wake.  The daemon's own
   counters prove exactly one evaluation happened. *)
let run_herd d sock ~workers ~size =
  let blocker = Serve.Client.connect_exn sock in
  let dispatched0 = counter d "dispatched" in
  for i = 0 to workers - 1 do
    let frame =
      Json.to_string
        (Json.Obj
           [
             ("id", Json.Num (float_of_int (100_000 + i)));
             ("op", Json.Str "sleep");
             ("params", Json.Obj [ ("seconds", Json.Num 1.0) ]);
           ])
    in
    match Serve.Client.send_line blocker frame with
    | Ok () -> ()
    | Error msg -> failwith ("herd blocker: " ^ msg)
  done;
  let wedged =
    wait_for (fun () -> counter d "dispatched" >= dispatched0 + workers)
  in
  let hits0 = counter d "cache_hits" in
  let misses0 = counter d "cache_misses" in
  let coalesced0 = counter d "cache_coalesced" in
  let frames =
    Array.init size (fun i -> evaluate_frame ~id:i ~cache:true herd_arch)
  in
  let t0 = Unix.gettimeofday () in
  let _, replies = pipeline sock frames ~window:size in
  let elapsed = Unix.gettimeofday () -. t0 in
  (* Drain the blocker's sleep replies before closing. *)
  for _ = 1 to workers do
    ignore (Serve.Client.recv_line ~timeout_s:120.0 blocker)
  done;
  Serve.Client.close blocker;
  let results = List.filter_map reply_result replies in
  let identical =
    match results with
    | [] -> false
    | first :: rest ->
      List.length results = size && List.for_all (String.equal first) rest
  in
  {
    h_size = size;
    h_evaluations = counter d "cache_misses" - misses0;
    h_coalesced = counter d "cache_coalesced" - coalesced0;
    h_hits = counter d "cache_hits" - hits0;
    h_identical = identical;
    h_wedged = wedged;
    h_elapsed = elapsed;
  }

let () =
  let o = parse_argv () in
  let sock =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mccm-bench-%d.sock" (Unix.getpid ()))
  in
  let cfg =
    {
      (Serve.Daemon.default ~socket_path:sock) with
      Serve.Daemon.workers = o.workers;
    }
  in
  let h = Serve.Daemon.spawn cfg in
  (* Warm the session once so every measured phase is steady state. *)
  let warm = Serve.Client.connect_exn sock in
  Array.iter
    (fun arch ->
      match
        Serve.Client.evaluate ~timeout_s:120.0 warm ~model:"MobV2"
          ~board:"VCU108" ~arch
      with
      | Ok _ -> ()
      | Error (code, msg) ->
        Printf.eprintf "warmup %s: %s: %s\n" arch code msg;
        exit 1)
    archs;
  Serve.Client.close warm;
  (* Interleaved A/B: the daemon is in-process, so flipping the flight
     gate flips what its workers consult on the very next request.
     Eight alternating phases, best-of-four per arm: scheduling noise
     on a shared box swings individual windows by several percent, but
     the best window of each arm converges on that arm's true peak, so
     the overhead estimate is stable where a single pair is not. *)
  let phase_s = Float.max 0.4 (o.seconds /. 8.0) in
  let phases =
    List.map
      (fun flight_on ->
        if flight_on then Mccm_obs.Flight.enable ()
        else Mccm_obs.Flight.disable ();
        let r = run_phase o sock ~seconds:phase_s in
        (flight_on, r))
      [ false; true; false; true; false; true; false; true ]
  in
  Mccm_obs.Flight.enable ();
  (* --- result-cache arms: Zipf cold / warm, then the herd --------- *)
  let d = Serve.Daemon.daemon h in
  let n_requests = 4000 and window = 64 in
  let schedule = zipf_schedule n_requests in
  (* Pre-warm the deep model's session (planning memos, segment
     tables) so the cold arm measures the steady uncached serve path,
     not first-contact planning. *)
  ignore
    (pipeline sock
       (Array.mapi (fun i a -> evaluate_frame ~id:i ~cache:false a) zipf_archs)
       ~window:8);
  let mix_frames cache =
    Array.init n_requests (fun i ->
        evaluate_frame ~id:i ~cache zipf_archs.(schedule.(i)))
  in
  let errors_of replies =
    List.fold_left
      (fun acc line ->
        match reply_result line with Some _ -> acc | None -> acc + 1)
      0 replies
  in
  let cold_elapsed, cold_replies = pipeline sock (mix_frames false) ~window in
  (* Prime every design once, then measure pure reader-path hits. *)
  ignore
    (pipeline sock
       (Array.mapi (fun i a -> evaluate_frame ~id:i ~cache:true a) zipf_archs)
       ~window:8);
  let warm_hits0 = counter d "cache_hits" in
  let warm_misses0 = counter d "cache_misses" in
  let warm_elapsed, warm_replies = pipeline sock (mix_frames true) ~window in
  let warm_hits = counter d "cache_hits" - warm_hits0 in
  let warm_misses = counter d "cache_misses" - warm_misses0 in
  let cache_errors = errors_of cold_replies + errors_of warm_replies in
  let cold_rate = float_of_int n_requests /. Float.max 1e-9 cold_elapsed in
  let warm_rate = float_of_int n_requests /. Float.max 1e-9 warm_elapsed in
  let speedup = warm_rate /. Float.max 1e-9 cold_rate in
  let herd = run_herd d sock ~workers:o.workers ~size:64 in
  Serve.Daemon.shutdown h;
  let rate r = float_of_int r.p_replies /. Float.max 1e-9 r.p_elapsed in
  let best on =
    List.fold_left
      (fun acc (o', r) -> if o' = on then Float.max acc (rate r) else acc)
      0.0 phases
  in
  let disabled_rate = best false and enabled_rate = best true in
  let overhead =
    if disabled_rate <= 0.0 then 0.0
    else Float.max 0.0 (1.0 -. (enabled_rate /. disabled_rate))
  in
  (* /1-compatible headline numbers over the combined window *)
  let sum f = List.fold_left (fun acc (_, r) -> acc + f r) 0 phases in
  let replies = sum (fun r -> r.p_replies) in
  let errors = sum (fun r -> r.p_errors) in
  let dropped = sum (fun r -> r.p_dropped) in
  let elapsed =
    List.fold_left (fun acc (_, r) -> acc +. r.p_elapsed) 0.0 phases
  in
  let lat =
    List.fold_left
      (fun acc (_, r) -> List.rev_append r.p_latencies_ms acc)
      [] phases
  in
  let q p = if lat = [] then 0.0 else Util.Stats.quantile lat ~q:p in
  let evals_per_sec = float_of_int replies /. elapsed in
  let doc =
    Json.Obj
      [
        ("schema", Json.Str "mccm-bench-serve/3");
        ("workers", Json.Num (float_of_int o.workers));
        ("clients", Json.Num (float_of_int o.clients));
        ( "recommended_domains",
          Json.Num (float_of_int (Domain.recommended_domain_count ())) );
        ("duration_s", Json.Num elapsed);
        ("total_replies", Json.Num (float_of_int replies));
        ("evals_per_sec", Json.Num evals_per_sec);
        ( "latency_ms",
          Json.Obj
            [
              ("p50", Json.Num (q 0.50));
              ("p95", Json.Num (q 0.95));
              ("p99", Json.Num (q 0.99));
            ] );
        ("errors", Json.Num (float_of_int errors));
        ("dropped", Json.Num (float_of_int dropped));
        ( "flight",
          Json.Obj
            [
              ("disabled_evals_per_sec", Json.Num disabled_rate);
              ("enabled_evals_per_sec", Json.Num enabled_rate);
              ("overhead", Json.Num overhead);
            ] );
        ( "cache",
          Json.Obj
            [
              ("model", Json.Str zipf_model);
              ("board", Json.Str zipf_board);
              ( "distinct_archs",
                Json.Num (float_of_int (Array.length zipf_archs)) );
              ("requests", Json.Num (float_of_int n_requests));
              ("window", Json.Num (float_of_int window));
              ("cold_evals_per_sec", Json.Num cold_rate);
              ("warm_evals_per_sec", Json.Num warm_rate);
              ("speedup", Json.Num speedup);
              ("warm_hits", Json.Num (float_of_int warm_hits));
              ("warm_misses", Json.Num (float_of_int warm_misses));
              ("errors", Json.Num (float_of_int cache_errors));
              ( "herd",
                Json.Obj
                  [
                    ("size", Json.Num (float_of_int herd.h_size));
                    ( "evaluations",
                      Json.Num (float_of_int herd.h_evaluations) );
                    ("coalesced", Json.Num (float_of_int herd.h_coalesced));
                    ("hits", Json.Num (float_of_int herd.h_hits));
                    ("identical_replies", Json.Bool herd.h_identical);
                    ("wedged", Json.Bool herd.h_wedged);
                    ("elapsed_s", Json.Num herd.h_elapsed);
                  ] );
            ] );
      ]
  in
  let oc = open_out o.out in
  output_string oc (Json.to_string_pretty doc);
  output_string oc "\n";
  close_out oc;
  Printf.printf
    "serve bench: %d replies in %.1fs (%.0f evals/s), p50 %.2f ms, p95 %.2f \
     ms, p99 %.2f ms, %d errors, %d dropped\n"
    replies elapsed evals_per_sec (q 0.50) (q 0.95) (q 0.99) errors dropped;
  Printf.printf
    "flight recorder: %.0f evals/s off vs %.0f evals/s on (overhead %.1f%%)\n"
    disabled_rate enabled_rate (100.0 *. overhead);
  Printf.printf
    "result cache: cold %.0f evals/s vs warm %.0f evals/s (%.1fx), %d/%d \
     warm hits, %d errors\n"
    cold_rate warm_rate speedup warm_hits (warm_hits + warm_misses)
    cache_errors;
  Printf.printf
    "herd: %d identical requests -> %d evaluation(s), %d coalesced, %d hits, \
     identical replies %b -> %s\n"
    herd.h_size herd.h_evaluations herd.h_coalesced herd.h_hits
    herd.h_identical o.out
