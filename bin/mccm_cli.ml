(* mccm: command-line front-end to the MCCM evaluation methodology.

   Subcommands:
     eval      evaluate one accelerator (baseline name or paper notation)
     sweep     evaluate all baseline instances on a (CNN, board) pair
     explore   random design-space exploration of custom accelerators
     validate  differential model-vs-simulator validation sweep
     models    list the CNN model zoo
     boards    list the FPGA boards *)

open Cmdliner

(* ------------------------------------------------------- arguments *)

let model_conv =
  (* A zoo abbreviation, or a path to a model-description file (see
     Cnn.Model_io) when it names an existing file. *)
  let parse s =
    match Cnn.Model_zoo.by_abbreviation s with
    | Some m -> Ok m
    | None when Sys.file_exists s -> (
      match Cnn.Model_io.load_file s with
      | Ok m -> Ok m
      | Error msg -> Error (`Msg (Printf.sprintf "%s: %s" s msg)))
    | None ->
      Error
        (`Msg
           (Printf.sprintf
              "unknown CNN %S (expected a file or one of: %s)" s
              (String.concat ", "
                 (List.map
                    (fun m -> m.Cnn.Model.abbreviation)
                    (Cnn.Model_zoo.extended ())))))
  in
  let print ppf m = Format.pp_print_string ppf m.Cnn.Model.abbreviation in
  Arg.conv (parse, print)

let board_conv =
  let parse s =
    match Platform.Board.by_name s with
    | Some b -> Ok b
    | None ->
      Error
        (`Msg
           (Printf.sprintf "unknown board %S (expected one of: %s)" s
              (String.concat ", "
                 (List.map
                    (fun b -> b.Platform.Board.name)
                    Platform.Board.all))))
  in
  let print ppf b = Format.pp_print_string ppf b.Platform.Board.name in
  Arg.conv (parse, print)

let model_arg =
  Arg.(
    required
    & opt (some model_conv) None
    & info [ "m"; "model" ] ~docv:"CNN"
        ~doc:
          "CNN model: a zoo abbreviation (Res152, Res50, XCp, Dns121, \
           MobV2, EffB0, MnasA1) or a path to a model-description file.")

let board_arg =
  Arg.(
    required
    & opt (some board_conv) None
    & info [ "b"; "board" ] ~docv:"BOARD"
        ~doc:"FPGA board (ZC706, VCU108, VCU110 or ZCU102).")

(* Architecture strings resolve through Arch.Shorthand: baseline names
   or the paper's block notation. *)
let arch_of_string model s = Arch.Shorthand.parse model s

(* --------------------------------------------------- observability *)

(* Every subcommand accepts --trace FILE and --stats.  The run is
   covered by a root span so the exported trace accounts for the whole
   command's wall time, not just the instrumented leaves. *)
let obs_args =
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record instrumentation spans and write them to $(docv) as \
             Chrome trace_event JSON (load it in Perfetto at \
             ui.perfetto.dev, or chrome://tracing).")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Collect metrics (cache hit rates, dedup ratios, per-phase \
             span timings) and print the mccm stats summary block after \
             the command.")
  in
  Term.(const (fun trace stats -> (trace, stats)) $ trace $ stats)

let with_obs cmd_name (trace, stats) f =
  let on = trace <> None || stats in
  if on then Mccm_obs.enable ~tracing:(trace <> None) ();
  let finish () =
    if on then begin
      (match trace with
      | Some path ->
        Mccm_obs.write_trace ~path;
        Format.printf "wrote Chrome trace to %s@." path
      | None -> ());
      if stats then
        Format.printf "@.mccm stats:@.%a@." Mccm_obs.pp_summary ();
      Mccm_obs.disable ()
    end
  in
  match Mccm_obs.span ~cat:"cli" ("mccm." ^ cmd_name) f with
  | code ->
    finish ();
    code
  | exception e ->
    finish ();
    raise e

let print_evaluation ~verbose model board archi =
  let built = Builder.Build.build model board archi in
  let e = Mccm.Evaluate.run built in
  Format.printf "%a@." Builder.Build.pp built;
  Format.printf "@.MCCM: %a@." Mccm.Metrics.pp e.Mccm.Evaluate.metrics;
  Format.printf "Roofline: %a@." Mccm.Roofline.pp
    (Mccm.Roofline.analyze model board e.Mccm.Evaluate.metrics);
  if verbose then begin
    Format.printf "@.Fine-grained breakdown:@.%a@." Mccm.Breakdown.pp
      e.Mccm.Evaluate.breakdown;
    let s = Sim.Simulate.run built in
    Format.printf "@.Synthesis surrogate (achieved clock %.0f MHz):@.  %a@."
      (s.Sim.Simulate.achieved_clock_hz /. 1e6)
      Mccm.Metrics.pp s.Sim.Simulate.metrics;
    let c =
      Report.Accuracy.compare_metrics ~reference:s.Sim.Simulate.metrics
        ~estimated:e.Mccm.Evaluate.metrics
    in
    Format.printf
      "Accuracy (Eq. 10): latency %.1f%%, throughput %.1f%%, buffers \
       %.1f%%, accesses %.1f%%@."
      c.Report.Accuracy.latency c.Report.Accuracy.throughput
      c.Report.Accuracy.buffers c.Report.Accuracy.accesses
  end

(* ------------------------------------------------------------- eval *)

let eval_cmd =
  let arch_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ARCH"
          ~doc:
            "Accelerator: segmented/N, segmentedrr/N, hybrid/N, or the \
             paper's notation, e.g. '{L1-L4:CE1, L5-Last:CE2}'.")
  in
  let verbose_arg =
    Arg.(
      value & flag
      & info [ "v"; "verbose" ]
          ~doc:"Also print the fine-grained breakdown and the synthesis \
                surrogate's reference numbers.")
  in
  let run obs model board arch_str verbose =
    with_obs "eval" obs @@ fun () ->
    match arch_of_string model arch_str with
    | Error msg ->
      Format.eprintf "error: %s@." msg;
      1
    | Ok archi ->
      print_evaluation ~verbose model board archi;
      0
  in
  Cmd.v
    (Cmd.info "eval" ~doc:"Evaluate one multiple-CE accelerator with MCCM.")
    Term.(const run $ obs_args $ model_arg $ board_arg $ arch_arg $ verbose_arg)

(* ------------------------------------------------------------ sweep *)

let sweep_cmd =
  let csv_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"PATH" ~doc:"Also write the results as CSV.")
  in
  let run obs model board csv =
    with_obs "sweep" obs @@ fun () ->
    let table =
      Util.Table.create
        ~title:
          (Format.asprintf "Baselines on %s / %s" model.Cnn.Model.abbreviation
             board.Platform.Board.name)
        ~columns:
          [
            ("architecture", Util.Table.Left);
            ("latency", Util.Table.Right);
            ("throughput", Util.Table.Right);
            ("buffers", Util.Table.Right);
            ("accesses", Util.Table.Right);
            ("feasible", Util.Table.Center);
          ]
        ()
    in
    List.iter
      (fun (name, archi) ->
        let m = Mccm.Evaluate.metrics model board archi in
        Util.Table.add_row table
          [
            name;
            Format.asprintf "%a" Util.Units.pp_seconds m.Mccm.Metrics.latency_s;
            Printf.sprintf "%.1f inf/s" m.Mccm.Metrics.throughput_ips;
            Format.asprintf "%a" Util.Units.pp_bytes m.Mccm.Metrics.buffer_bytes;
            Format.asprintf "%a" Util.Units.pp_bytes
              (Mccm.Metrics.accesses_bytes m);
            (if m.Mccm.Metrics.feasible then "yes" else "NO");
          ])
      (Arch.Baselines.all_instances model);
    Util.Table.print table;
    (match csv with
    | None -> ()
    | Some path ->
      let rows =
        List.map
          (fun (name, archi) ->
            (name, Mccm.Evaluate.metrics model board archi))
          (Arch.Baselines.all_instances model)
      in
      Report.Csv.save
        (Report.Csv.of_metrics_rows ~label_header:"architecture" rows)
        ~path;
      Format.printf "wrote %s@." path);
    0
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Evaluate all 30 baseline instances (3 architectures x 2-11 CEs).")
    Term.(const run $ obs_args $ model_arg $ board_arg $ csv_arg)

(* ---------------------------------------------------------- explore *)

let explore_cmd =
  let samples_arg =
    Arg.(
      value & opt int 2000
      & info [ "n"; "samples" ] ~docv:"N"
          ~doc:"Number of random custom designs to evaluate.")
  in
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed (runs are deterministic).")
  in
  let domains_arg =
    Arg.(
      value & opt int 1
      & info [ "j"; "domains" ] ~docv:"N"
          ~doc:
            "Parallel OCaml domains to spread the sweep over \
             (deterministic per (seed, N)).")
  in
  let run obs model board samples seed domains =
    with_obs "explore" obs @@ fun () ->
    let r =
      Dse.Explore.run ~seed:(Int64.of_int seed) ~domains ~samples model board
    in
    Format.printf
      "%d designs sampled, %d distinct (%.1f%% dedup), %d feasible, %.1f s \
       (%.0f designs/s)@."
      samples r.Dse.Explore.distinct
      (100.0
      *. (1.0
         -. (float_of_int r.Dse.Explore.distinct
            /. float_of_int (max 1 samples))))
      (List.length r.Dse.Explore.evaluated)
      r.Dse.Explore.elapsed_s
      (float_of_int samples /. Float.max 1e-9 r.Dse.Explore.elapsed_s);
    Format.printf "session: %a@." Mccm.Eval_session.pp_stats
      r.Dse.Explore.stats;
    Format.printf "Pareto front (throughput vs buffers):@.";
    List.iter
      (fun (p : Dse.Explore.evaluated Dse.Pareto.point) ->
        let e = p.Dse.Pareto.item in
        let archi = Arch.Custom.arch_of_spec model e.Dse.Explore.spec in
        Format.printf "  %-40s %a@."
          (Arch.Notation.to_string archi)
          Mccm.Metrics.pp e.Dse.Explore.metrics)
      r.Dse.Explore.front;
    0
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Randomly explore custom Hybrid-first architectures and print the \
          throughput/buffer Pareto front.")
    Term.(
      const run $ obs_args $ model_arg $ board_arg $ samples_arg $ seed_arg
      $ domains_arg)

(* --------------------------------------------------------- validate *)

let validate_cmd =
  let samples_arg =
    Arg.(
      value & opt int 200
      & info [ "n"; "samples" ] ~docv:"N"
          ~doc:"Number of random (CNN, board, architecture) cases to check.")
  in
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed (runs are deterministic).")
  in
  let domains_arg =
    Arg.(
      value & opt int 1
      & info [ "j"; "domains" ] ~docv:"N"
          ~doc:
            "Parallel OCaml domains to spread the sweep over (the verdicts \
             are identical for every N).")
  in
  let corpus_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"PATH"
          ~doc:
            "Regression corpus to replay before the random sweep (see \
             test/corpus/validate.corpus).")
  in
  let update_arg =
    Arg.(
      value & flag
      & info [ "update-corpus" ]
          ~doc:
            "Append newly found (shrunk) counterexamples to the corpus \
             file, so they replay on every future run.")
  in
  let run obs samples seed domains corpus update =
    with_obs "validate" obs @@ fun () ->
    let t =
      Validate.Sweep.run ~samples ~seed:(Int64.of_int seed) ~domains ?corpus ()
    in
    Format.printf "%a@." Validate.Sweep.pp t;
    if Validate.Sweep.ok t then 0
    else begin
      (match (update, corpus) with
      | true, Some path ->
        List.iter
          (fun (f : Validate.Sweep.failure) ->
            let v =
              Option.value f.Validate.Sweep.shrunk
                ~default:f.Validate.Sweep.verdict
            in
            Validate.Corpus.append path v.Validate.Oracle.case)
          t.Validate.Sweep.failures;
        Format.printf "appended %d counterexample(s) to %s@."
          (List.length t.Validate.Sweep.failures)
          path
      | true, None ->
        Format.eprintf "--update-corpus needs --corpus PATH@."
      | false, _ -> ());
      1
    end
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:
         "Differential validation: cross-check the analytical model \
          against the simulator on randomized cases, with metamorphic \
          invariants and counterexample shrinking.")
    Term.(
      const run $ obs_args $ samples_arg $ seed_arg $ domains_arg $ corpus_arg
      $ update_arg)

(* ----------------------------------------------------------- layers *)

let layers_cmd =
  let arch_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ARCH" ~doc:"Accelerator (as for $(b,eval)).")
  in
  let top_arg =
    Arg.(
      value & opt int 5
      & info [ "top" ] ~docv:"N" ~doc:"How many hotspot layers to flag.")
  in
  let run obs model board arch_str top =
    with_obs "layers" obs @@ fun () ->
    match arch_of_string model arch_str with
    | Error msg ->
      Format.eprintf "error: %s@." msg;
      1
    | Ok archi ->
      let built = Builder.Build.build model board archi in
      let rows = Mccm.Layer_report.of_build built in
      Format.printf "%a@." Mccm.Layer_report.pp rows;
      Format.printf "Hotspots (by cycles):@.";
      List.iter
        (fun (r : Mccm.Layer_report.row) ->
          Format.printf "  L%d %s: %d cycles at %.1f%% utilization@."
            (r.Mccm.Layer_report.layer_index + 1)
            r.Mccm.Layer_report.layer_name r.Mccm.Layer_report.cycles
            (100.0 *. r.Mccm.Layer_report.utilization))
        (Mccm.Layer_report.hotspots ~top rows);
      0
  in
  Cmd.v
    (Cmd.info "layers"
       ~doc:"Per-layer cycles, utilization and traffic of one accelerator.")
    Term.(const run $ obs_args $ model_arg $ board_arg $ arch_arg $ top_arg)

(* ------------------------------------------------------------ trace *)

let trace_cmd =
  let arch_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ARCH" ~doc:"Accelerator (as for $(b,eval)).")
  in
  let block_arg =
    Arg.(
      value & opt int 0
      & info [ "block" ] ~docv:"I"
          ~doc:"0-based architecture-block index to trace.")
  in
  let width_arg =
    Arg.(
      value & opt int 100
      & info [ "width" ] ~docv:"COLS" ~doc:"Timeline width in characters.")
  in
  let run model board arch_str block width =
    match arch_of_string model arch_str with
    | Error msg ->
      Format.eprintf "error: %s@." msg;
      1
    | Ok archi -> (
      let built = Builder.Build.build model board archi in
      match Sim.Simulate.trace_block built ~block with
      | None ->
        Format.printf
          "block %d is a single-CE block (sequential; nothing to trace)@."
          block;
        0
      | Some trace ->
        let lo, hi = Sim.Trace.span trace in
        Format.printf "%d tile events over %.0f cycles:@.@."
          (Sim.Trace.tile_count trace)
          (hi -. lo);
        print_string (Sim.Trace.render_gantt ~width trace);
        0)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Simulate one input through a pipelined block and draw its \
          per-engine tile timeline.")
    Term.(const run $ model_arg $ board_arg $ arch_arg $ block_arg $ width_arg)

(* ----------------------------------------------------- models/boards *)

let models_cmd =
  let run () =
    List.iter
      (fun m -> Format.printf "%a@." Cnn.Model.pp_summary m)
      (Cnn.Model_zoo.extended ());
    0
  in
  Cmd.v (Cmd.info "models" ~doc:"List the CNN model zoo.") Term.(const run $ const ())

let boards_cmd =
  let run () =
    List.iter
      (fun b -> Format.printf "%a@." Platform.Board.pp b)
      Platform.Board.all;
    0
  in
  Cmd.v (Cmd.info "boards" ~doc:"List the FPGA boards.") Term.(const run $ const ())

(* --------------------------------------------------------- compress *)

let compress_cmd =
  let arch_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ARCH" ~doc:"Accelerator (as for $(b,eval)).")
  in
  let ratio_arg =
    Arg.(
      value & opt float 2.0
      & info [ "r"; "ratio" ] ~docv:"R" ~doc:"Compression factor (> 1).")
  in
  let run obs model board arch_str ratio =
    with_obs "compress" obs @@ fun () ->
    match arch_of_string model arch_str with
    | Error msg ->
      Format.eprintf "error: %s@." msg;
      1
    | Ok archi ->
      let e = Mccm.Evaluate.evaluate model board archi in
      let b = e.Mccm.Evaluate.breakdown in
      let target, o =
        Mccm.Compression.best_single_target ~board ~ratio b
      in
      Format.printf "Baseline: %a@." Mccm.Metrics.pp e.Mccm.Evaluate.metrics;
      Format.printf
        "Best single compression target at %.1fx (memory-bound segments \
         only): %s@."
        ratio
        (match target with
        | Mccm.Compression.Weights_only -> "weights"
        | Mccm.Compression.Fms_only -> "feature maps"
        | Mccm.Compression.Both -> "both");
      Format.printf
        "  %d segments affected; execution %a -> %a (%.1f%% faster); \
         traffic %a -> %a@."
        o.Mccm.Compression.segments_affected Util.Units.pp_seconds
        o.Mccm.Compression.baseline_time_s Util.Units.pp_seconds
        o.Mccm.Compression.compressed_time_s
        (100.0 *. (1.0 -. (1.0 /. o.Mccm.Compression.speedup)))
        Mccm.Access.pp o.Mccm.Compression.baseline_accesses Mccm.Access.pp
        o.Mccm.Compression.compressed_accesses;
      0
  in
  Cmd.v
    (Cmd.info "compress"
       ~doc:
         "What-if analysis: which operand is worth compressing, and what \
          it buys (Use Case 2).")
    Term.(const run $ obs_args $ model_arg $ board_arg $ arch_arg $ ratio_arg)

(* ----------------------------------------------------------- refine *)

let refine_cmd =
  let objective_arg =
    Arg.(
      value
      & opt (enum [ ("throughput", `Throughput); ("latency", `Latency) ])
          `Throughput
      & info [ "o"; "objective" ] ~docv:"OBJ"
          ~doc:"Objective to improve: $(b,throughput) or $(b,latency).")
  in
  let pipelined_arg =
    Arg.(
      value & opt int 4
      & info [ "p"; "pipelined" ] ~docv:"F"
          ~doc:"Pipelined-block depth of the seed design.")
  in
  let tail_arg =
    Arg.(
      value & opt int 3
      & info [ "t"; "tail" ] ~docv:"S"
          ~doc:"Tail segments of the seed design.")
  in
  let run obs model board objective pipelined tail =
    with_obs "refine" obs @@ fun () ->
    let seed_arch =
      Arch.Custom.balanced model ~pipelined_layers:pipelined
        ~tail_segments:tail
    in
    let seed =
      {
        Arch.Custom.pipelined_layers = pipelined;
        tail_boundaries =
          (match seed_arch.Arch.Block.blocks with
          | _ :: tail_blocks ->
            List.filteri (fun i _ -> i > 0)
              (List.map
                 (fun b -> fst (Arch.Block.layer_range b))
                 tail_blocks)
          | [] -> []);
      }
    in
    let f m =
      match objective with
      | `Throughput -> m.Mccm.Metrics.throughput_ips
      | `Latency -> -.m.Mccm.Metrics.latency_s
    in
    let steps = Dse.Enumerate.local_search ~objective:f model board seed in
    List.iter
      (fun (s : Dse.Enumerate.step) ->
        Format.printf "%-28s %-44s %a@." s.Dse.Enumerate.moved
          (Arch.Notation.to_string
             (Arch.Custom.arch_of_spec model s.Dse.Enumerate.spec))
          Mccm.Metrics.pp s.Dse.Enumerate.metrics)
      steps;
    0
  in
  Cmd.v
    (Cmd.info "refine"
       ~doc:
         "Hill-climb a custom design's boundaries toward an objective \
          (Use Case 3's guided exploration).")
    Term.(
      const run $ obs_args $ model_arg $ board_arg $ objective_arg
      $ pipelined_arg $ tail_arg)

(* -------------------------------------------------------- enumerate *)

let enumerate_cmd =
  let ces_arg =
    Arg.(
      value & opt int 8
      & info [ "c"; "ces" ] ~docv:"CES"
          ~doc:"Compute-engine count: every custom design with exactly \
                $(docv) engines is considered.")
  in
  let max_specs_arg =
    Arg.(
      value & opt int 20000
      & info [ "max-specs" ] ~docv:"N"
          ~doc:"Stop listing the space after $(docv) specs.")
  in
  let domains_arg =
    Arg.(
      value & opt int 1
      & info [ "j"; "domains" ] ~docv:"N"
          ~doc:
            "Parallel OCaml domains to spread the scan over \
             (deterministic: the best design is the same for every \
             $(docv)).")
  in
  let best_arg =
    Arg.(
      value
      & opt (enum [ ("throughput", `Throughput); ("latency", `Latency) ])
          `Throughput
      & info [ "best" ] ~docv:"OBJ"
          ~doc:"Objective to optimise: $(b,throughput) or $(b,latency).")
  in
  let no_prune_arg =
    Arg.(
      value & flag
      & info [ "no-prune" ]
          ~doc:
            "Disable the admissible-bound prune (every spec is \
             evaluated; the chosen design is unchanged).")
  in
  let scan_arg =
    Arg.(
      value & flag
      & info [ "scan" ]
          ~doc:
            "Force the chunked scan instead of the best-first \
             branch-and-bound (the default with pruning on and one \
             domain).  The chosen design is unchanged.")
  in
  let no_clamp_arg =
    Arg.(
      value & flag
      & info [ "no-clamp" ]
          ~doc:
            "Honour $(b,-j) exactly instead of clamping it to the \
             machine's recommended domain count.  The chosen design is \
             unchanged; useful for exercising the multi-domain path on \
             small machines.")
  in
  let run obs model board ces max_specs domains best no_prune scan no_clamp =
    with_obs "enumerate" obs @@ fun () ->
    let started = Unix.gettimeofday () in
    let strategy = if scan then `Scan else `Auto in
    let winner, stats =
      Dse.Enumerate.exhaustive_best ~max_specs ~domains
        ~clamp:(not no_clamp) ~prune:(not no_prune) ~strategy ~objective:best
        ~ces model board
    in
    let elapsed = Unix.gettimeofday () -. started in
    Format.printf
      "%d specs enumerated, %d evaluated, %d pruned (%.1f%%), %d B&B \
       node(s), %d domain(s), %.2f s (%.0f specs/s)@."
      stats.Dse.Enumerate.enumerated stats.Dse.Enumerate.evaluated
      stats.Dse.Enumerate.pruned
      (100.0
      *. float_of_int stats.Dse.Enumerate.pruned
      /. float_of_int (max 1 stats.Dse.Enumerate.enumerated))
      stats.Dse.Enumerate.nodes stats.Dse.Enumerate.domains_used elapsed
      (float_of_int stats.Dse.Enumerate.enumerated
      /. Float.max 1e-9 elapsed);
    match winner with
    | None ->
      Format.printf "no feasible design with %d CEs@." ces;
      1
    | Some e ->
      Format.printf "best %s: %-40s %a@."
        (match best with
        | `Throughput -> "throughput"
        | `Latency -> "latency")
        (Arch.Notation.to_string
           (Arch.Custom.arch_of_spec model e.Dse.Explore.spec))
        Mccm.Metrics.pp e.Dse.Explore.metrics;
      0
  in
  Cmd.v
    (Cmd.info "enumerate"
       ~doc:
         "Search every custom design at a fixed CE count — best-first \
          branch-and-bound, or a bound-pruned Domains-parallel scan — \
          and print the best design for an objective.")
    Term.(
      const run $ obs_args $ model_arg $ board_arg $ ces_arg $ max_specs_arg
      $ domains_arg $ best_arg $ no_prune_arg $ scan_arg $ no_clamp_arg)

(* ------------------------------------------------------------ serve *)

let socket_arg =
  Arg.(
    value
    & opt string "mccm.sock"
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path of the evaluation daemon.")

let serve_cmd =
  let workers_arg =
    Arg.(
      value & opt int 0
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Worker domains for the evaluation pool (0 = the runtime's \
             recommended domain count).")
  in
  let queue_arg =
    Arg.(
      value & opt int 256
      & info [ "queue-cap" ] ~docv:"N"
          ~doc:
            "Bounded pending-request queue; beyond it requests are \
             refused immediately with an $(i,overloaded) reply.")
  in
  let batch_arg =
    Arg.(
      value & opt int 16
      & info [ "batch" ] ~docv:"N"
          ~doc:
            "Maximum consecutive same-session evaluate requests served \
             through one memoized batch (1 disables batching).")
  in
  let max_frame_arg =
    Arg.(
      value
      & opt int Serve.Protocol.default_max_frame_bytes
      & info [ "max-frame" ] ~docv:"BYTES"
          ~doc:"Per-frame size cap; larger frames get an \
                $(i,oversized_frame) reply.")
  in
  let store_arch_arg =
    Arg.(
      value & flag
      & info [ "store-arch" ]
          ~doc:
            "Let sessions keep whole-architecture results across \
             requests.  Faster for workloads that revisit the same \
             design, but the footprint grows with distinct designs \
             seen; off by default so a long-lived daemon's RSS stays \
             flat.")
  in
  let telemetry_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "telemetry" ] ~docv:"FILE"
          ~doc:
            "Append one JSONL stats snapshot (the $(b,stats) reply \
             shape) to $(docv) every telemetry tick.")
  in
  let prom_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "prom" ] ~docv:"FILE"
          ~doc:
            "Maintain $(docv) as a Prometheus text-format export, \
             replaced atomically (tmp + rename) every telemetry tick — \
             point a node_exporter textfile collector or a scraper \
             sidecar at it.")
  in
  let interval_arg =
    Arg.(
      value & opt float 2.0
      & info [ "telemetry-interval" ] ~docv:"SECONDS"
          ~doc:"Telemetry writer tick period.")
  in
  let flight_cap_arg =
    Arg.(
      value & opt int 512
      & info [ "flight-cap" ] ~docv:"N"
          ~doc:
            "Per-domain flight-recorder ring capacity (0 disables the \
             recorder; the $(b,recent) op then reports it disabled).")
  in
  let slow_ms_arg =
    Arg.(
      value & opt float 50.0
      & info [ "slow-ms" ] ~docv:"MS"
          ~doc:
            "Requests at least $(docv) milliseconds of evaluation time \
             are retained by the flight recorder beyond ring eviction.")
  in
  let cache_cap_arg =
    Arg.(
      value & opt int 4096
      & info [ "cache-capacity" ] ~docv:"N"
          ~doc:
            "Content-addressed result-cache capacity in entries \
             (striped LRU).  A repeated evaluate payload is answered \
             from the reader path, bit-identical and without queueing; \
             identical concurrent requests coalesce onto one \
             evaluation.  0 disables the cache.")
  in
  let no_cache_arg =
    Arg.(
      value & flag
      & info [ "no-cache" ]
          ~doc:
            "Disable the result cache and single-flight coalescing \
             (same as $(b,--cache-capacity) $(i,0)).")
  in
  let run obs socket workers queue_cap batch max_frame store_arch telemetry
      prom interval flight_cap slow_ms cache_cap no_cache =
    with_obs "serve" obs @@ fun () ->
    let cfg = Serve.Daemon.default ~socket_path:socket in
    let cfg =
      {
        cfg with
        Serve.Daemon.workers =
          (if workers > 0 then workers else cfg.Serve.Daemon.workers);
        queue_capacity = queue_cap;
        batch_limit = batch;
        max_frame_bytes = max_frame;
        store_arch;
        flight_capacity = flight_cap;
        flight_slow_ms = slow_ms;
        cache_capacity = (if no_cache then 0 else max 0 cache_cap);
        telemetry_path = telemetry;
        prom_path = prom;
        telemetry_interval_s = interval;
      }
    in
    match Serve.Daemon.create cfg with
    | exception Failure msg ->
      Format.eprintf "error: %s@." msg;
      1
    | d ->
      (* stop only flips an atomic, so it is legal in a signal context;
         run returns after the graceful drain. *)
      let on_signal _ = Serve.Daemon.stop d in
      Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
      Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
      Format.printf "mccm daemon (%s) listening on %s (%d workers)@."
        Serve.Protocol.version socket
        (Serve.Daemon.config d).Serve.Daemon.workers;
      Serve.Daemon.run d;
      Format.printf "drained; %d requests served@."
        (match List.assoc_opt "completed" (Serve.Daemon.counters d) with
        | Some n -> n
        | None -> 0);
      0
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the persistent evaluation daemon: one process pays model \
          table and plan-cache warm-up once and serves evaluate / \
          explore / enumerate / validate requests over a Unix-domain \
          socket (newline-delimited JSON).")
    Term.(
      const run $ obs_args $ socket_arg $ workers_arg $ queue_arg $ batch_arg
      $ max_frame_arg $ store_arch_arg $ telemetry_arg $ prom_arg
      $ interval_arg $ flight_cap_arg $ slow_ms_arg $ cache_cap_arg
      $ no_cache_arg)

(* ----------------------------------------------------------- client *)

let client_cmd =
  let op_arg =
    Arg.(
      required
      & pos 0 (some (enum (List.map (fun o -> (Serve.Protocol.op_to_string o, o)) Serve.Protocol.all_ops))) None
      & info [] ~docv:"OP"
          ~doc:
            "Request: $(b,ping), $(b,evaluate), $(b,explore), \
             $(b,enumerate), $(b,validate), $(b,stats), $(b,health), \
             $(b,recent), $(b,sleep) or $(b,shutdown).")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"MS"
          ~doc:
            "Relative deadline; the daemon refuses the request with \
             $(i,deadline_exceeded) once the budget expires before \
             evaluation starts.")
  in
  let params_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "params" ] ~docv:"JSON"
          ~doc:
            "Raw request parameters as a JSON object; overrides every \
             other parameter option.")
  in
  let str_opt name doc =
    Arg.(value & opt (some string) None & info [ name ] ~docv:"S" ~doc)
  in
  let int_opt name doc =
    Arg.(value & opt (some int) None & info [ name ] ~docv:"N" ~doc)
  in
  let model_arg = str_opt "model" "Model zoo abbreviation (see $(b,mccm models))." in
  let board_arg = str_opt "board" "Board catalogue name (see $(b,mccm boards))." in
  let arch_arg = str_opt "arch" "Accelerator shorthand or paper notation." in
  let objective_arg = str_opt "objective" "enumerate objective: throughput|latency." in
  let samples_arg = int_opt "samples" "explore/validate sample count." in
  let seed_arg = int_opt "seed" "PRNG seed." in
  let ces_arg = int_opt "ces" "enumerate CE count." in
  let max_specs_arg = int_opt "max-specs" "enumerate spec cap." in
  let n_arg = int_opt "n" "recent flight-record count." in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Machine-readable output: one compact JSON object on \
             stdout, $(b,{\"ok\":true,\"result\":..}) or \
             $(b,{\"ok\":false,\"error\":{\"code\":..,\"message\":..}}) \
             (still exit 1 on error).")
  in
  let run obs socket op deadline_ms raw model board arch objective samples
      seed ces max_specs n json =
    with_obs "client" obs @@ fun () ->
    let params =
      match raw with
      | Some text -> (
        match Util.Json.parse text with
        | Ok j -> j
        | Error msg -> failwith (Printf.sprintf "--params: %s" msg))
      | None ->
        let num = Option.map float_of_int in
        Util.Json.obj
          [
            ("model", Option.map (fun s -> Util.Json.Str s) model);
            ("board", Option.map (fun s -> Util.Json.Str s) board);
            ("arch", Option.map (fun s -> Util.Json.Str s) arch);
            ("objective", Option.map (fun s -> Util.Json.Str s) objective);
            ("samples", Option.map (fun n -> Util.Json.Num n) (num samples));
            ("seed", Option.map (fun n -> Util.Json.Num n) (num seed));
            ("ces", Option.map (fun n -> Util.Json.Num n) (num ces));
            ( "max_specs",
              Option.map (fun n -> Util.Json.Num n) (num max_specs) );
            ("n", Option.map (fun n -> Util.Json.Num n) (num n));
          ]
    in
    let report_error code msg =
      if json then
        print_endline
          (Util.Json.to_string
             (Util.Json.Obj
                [
                  ("ok", Util.Json.Bool false);
                  ( "error",
                    Util.Json.Obj
                      [
                        ("code", Util.Json.Str code);
                        ("message", Util.Json.Str msg);
                      ] );
                ]))
      else Format.eprintf "error: %s: %s@." code msg;
      1
    in
    match Serve.Client.connect socket with
    | Error msg -> report_error "transport" msg
    | Ok c ->
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          match Serve.Client.call ?deadline_ms c op params with
          | Ok result ->
            if json then
              print_endline
                (Util.Json.to_string
                   (Util.Json.Obj
                      [ ("ok", Util.Json.Bool true); ("result", result) ]))
            else print_endline (Util.Json.to_string_pretty result);
            0
          | Error (code, msg) -> report_error code msg)
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Send one request to a running $(b,mccm serve) daemon and print \
          the JSON result.")
    Term.(
      const run $ obs_args $ socket_arg $ op_arg $ deadline_arg $ params_arg
      $ model_arg $ board_arg $ arch_arg $ objective_arg $ samples_arg
      $ seed_arg $ ces_arg $ max_specs_arg $ n_arg $ json_arg)

(* -------------------------------------------------------------- top *)

(* Live daemon dashboard: poll [stats], decode the exact metrics
   snapshot, and turn consecutive snapshots into interval rates and
   interval latency quantiles via Metric.delta.  One connection for the
   whole watch — the polls themselves are served inline by the daemon's
   reader thread, so the dashboard keeps refreshing even when every
   worker is busy. *)
let top_cmd =
  let interval_arg =
    Arg.(
      value & opt float 1.0
      & info [ "interval" ] ~docv:"SECONDS"
          ~doc:"Refresh period (clamped to at least 0.1 s).")
  in
  let count_arg =
    Arg.(
      value & opt int 0
      & info [ "count" ] ~docv:"N"
          ~doc:
            "Stop after $(docv) refreshes; 0 runs until interrupted or \
             the daemon goes away.")
  in
  let run socket interval count =
    let module Json = Util.Json in
    let module Metric = Mccm_obs.Metric in
    let interval = Float.max 0.1 interval in
    let number name j = Option.bind (Json.member name j) Json.number in
    let counter_of reply name =
      match
        Option.bind (Json.member "counters" reply) (Json.member name)
      with
      | Some v -> ( match Json.number v with Some f -> int_of_float f | None -> 0)
      | None -> 0
    in
    let rejected reply =
      counter_of reply "rejected_overloaded"
      + counter_of reply "rejected_deadline"
      + counter_of reply "rejected_shutdown"
      + counter_of reply "rejected_parse"
      + counter_of reply "rejected_oversized"
    in
    let errors reply =
      counter_of reply "errors_bad_params" + counter_of reply "errors_internal"
    in
    (* "serve.<op>.latency" -> Some "<op>" *)
    let op_of_latency name =
      let prefix = "serve." and suffix = ".latency" in
      let n = String.length name in
      let pn = String.length prefix and sn = String.length suffix in
      if n > pn + sn && String.sub name 0 pn = prefix
         && String.sub name (n - sn) sn = suffix
      then Some (String.sub name pn (n - pn - sn))
      else None
    in
    let pp_ms h q =
      Printf.sprintf "%.2f ms" (1e3 *. Metric.quantile h ~q)
    in
    let render reply ~(window : Metric.snapshot) ~dt ~prev_counters =
      let buf = Buffer.create 1024 in
      let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
      let snap =
        match Option.map Metric.of_json (Json.member "metrics" reply) with
        | Some (Ok s) -> Some s
        | _ -> None
      in
      let version =
        match Json.member "version" reply with
        | Some (Json.Str v) -> v
        | _ -> "?"
      in
      let draining =
        match Json.member "draining" reply with
        | Some (Json.Bool b) -> b
        | _ -> false
      in
      let gauge name =
        Option.bind snap (fun s -> List.assoc_opt name s.Metric.gauges)
      in
      line "mccm top — %s · %s · up %.0f s · %d workers%s" socket version
        (Option.value ~default:0.0 (number "uptime_s" reply))
        (int_of_float (Option.value ~default:0.0 (number "workers" reply)))
        (if draining then " · DRAINING" else "");
      line "queue %d/%d (peak %s) · sessions %d · window %.1f s"
        (int_of_float (Option.value ~default:0.0 (number "queue_depth" reply)))
        (int_of_float
           (Option.value ~default:0.0 (number "queue_capacity" reply)))
        (match gauge "serve.queue.peak" with
        | Some p -> Printf.sprintf "%.0f" p
        | None -> "-")
        (int_of_float (Option.value ~default:0.0 (number "sessions" reply)))
        dt;
      let window_of label total =
        total - Option.value ~default:0 (List.assoc_opt label prev_counters)
      in
      let cache_num name =
        match
          Option.bind (Json.member "cache" reply) (fun c ->
              Option.bind (Json.member name c) Json.number)
        with
        | Some f -> int_of_float f
        | None -> 0
      in
      let wh = window_of "cache_hits" (counter_of reply "cache_hits") in
      let wm = window_of "cache_misses" (counter_of reply "cache_misses") in
      line "cache %d/%d entries · window hit rate %s · coalesced %d"
        (cache_num "entries") (cache_num "capacity")
        (if wh + wm > 0 then
           Printf.sprintf "%.0f%%"
             (100.0 *. float_of_int wh /. float_of_int (wh + wm))
         else "-")
        (counter_of reply "cache_coalesced");
      let activity =
        Util.Table.create ~title:"activity"
          ~columns:
            [ ("counter", Util.Table.Left); ("total", Util.Table.Right);
              ("window", Util.Table.Right); ("rate", Util.Table.Right) ]
          ()
      in
      List.iter
        (fun (label, total) ->
          let before =
            Option.value ~default:0 (List.assoc_opt label prev_counters)
          in
          let d = total - before in
          Util.Table.add_row activity
            [ label; string_of_int total; string_of_int d;
              Printf.sprintf "%.1f/s" (float_of_int d /. dt) ])
        [
          ("requests", counter_of reply "requests");
          ("completed", counter_of reply "completed");
          ("replies", counter_of reply "replies");
          ("batches", counter_of reply "batches");
          ("cache_hits", counter_of reply "cache_hits");
          ("cache_misses", counter_of reply "cache_misses");
          ("cache_coalesced", counter_of reply "cache_coalesced");
          ("cache_evictions", counter_of reply "cache_evictions");
          ("registry_full", counter_of reply "registry_full");
          ("rejected", rejected reply);
          ("errors", errors reply);
        ];
      Buffer.add_string buf (Util.Table.render activity);
      Buffer.add_char buf '\n';
      (match snap with
      | None -> ()
      | Some snap ->
        let rows =
          List.filter_map
            (fun (name, life) ->
              match op_of_latency name with
              | Some op when life.Metric.count > 0 ->
                let win =
                  Option.value ~default:Metric.{ life with count = 0; samples = [||] }
                    (List.assoc_opt name window.Metric.histograms)
                in
                (* interval quantiles when the window saw traffic,
                   lifetime otherwise *)
                let h =
                  if win.Metric.count > 0 && Array.length win.Metric.samples > 0
                  then win
                  else life
                in
                Some
                  [ op; string_of_int win.Metric.count;
                    string_of_int life.Metric.count;
                    pp_ms h 0.5; pp_ms h 0.95; pp_ms h 0.99 ]
              | _ -> None)
            snap.Metric.histograms
        in
        if rows <> [] then begin
          let lat =
            Util.Table.create ~title:"latency by op (window, lifetime fallback)"
              ~columns:
                [ ("op", Util.Table.Left); ("window n", Util.Table.Right);
                  ("total n", Util.Table.Right); ("p50", Util.Table.Right);
                  ("p95", Util.Table.Right); ("p99", Util.Table.Right) ]
              ()
          in
          List.iter (Util.Table.add_row lat) rows;
          Buffer.add_string buf (Util.Table.render lat);
          Buffer.add_char buf '\n'
        end);
      Buffer.contents buf
    in
    match Serve.Client.connect socket with
    | Error msg ->
      Format.eprintf "error: %s@." msg;
      1
    | Ok c ->
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          let tty = Unix.isatty Unix.stdout in
          let prev = ref None in
          let rec loop i =
            match Serve.Client.stats ~timeout_s:5.0 c with
            | Error (code, msg) ->
              if i = 0 then begin
                Format.eprintf "error: %s: %s@." code msg;
                1
              end
              else begin
                Format.printf "daemon gone (%s: %s)@." code msg;
                0
              end
            | Ok reply ->
              let now = Unix.gettimeofday () in
              let snap =
                match Option.map Metric.of_json (Json.member "metrics" reply) with
                | Some (Ok s) -> s
                | _ -> { Metric.counters = []; gauges = []; histograms = [] }
              in
              let counter_keys =
                [ "requests"; "completed"; "replies"; "batches";
                  "cache_hits"; "cache_misses"; "cache_coalesced";
                  "cache_evictions"; "registry_full" ]
              in
              let cur_counters =
                ("rejected", rejected reply) :: ("errors", errors reply)
                :: List.map (fun k -> (k, counter_of reply k)) counter_keys
              in
              let dt, prev_counters, prev_snap =
                match !prev with
                | Some (t0, counters0, snap0) ->
                  (Float.max 1e-9 (now -. t0), counters0, snap0)
                | None ->
                  (* first frame: the window is the daemon's whole life *)
                  ( Float.max 1e-9
                      (Option.value ~default:interval (number "uptime_s" reply)),
                    [],
                    { Metric.counters = []; gauges = []; histograms = [] } )
              in
              let window = Metric.delta snap prev_snap in
              prev := Some (now, cur_counters, snap);
              let frame = render reply ~window ~dt ~prev_counters in
              if tty then print_string "\027[2J\027[H";
              print_string frame;
              flush stdout;
              if count > 0 && i + 1 >= count then 0
              else begin
                Unix.sleepf interval;
                loop (i + 1)
              end
          in
          loop 0)
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live dashboard over a running $(b,mccm serve) daemon: poll \
          $(b,stats), difference consecutive exact metric snapshots, \
          and show throughput / rejection rates and per-op interval \
          latency quantiles.")
    Term.(const run $ socket_arg $ interval_arg $ count_arg)

let () =
  let doc = "Analytical cost model for multiple compute-engine CNN accelerators" in
  let info = Cmd.info "mccm" ~version:"1.0.0" ~doc in
  exit (Cmd.eval' (Cmd.group info
          [ eval_cmd; sweep_cmd; explore_cmd; validate_cmd; compress_cmd;
            refine_cmd; enumerate_cmd; layers_cmd; trace_cmd; models_cmd;
            boards_cmd; serve_cmd; client_cmd; top_cmd ]))
