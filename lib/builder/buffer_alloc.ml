let cd = Util.Int_math.ceil_div

let c_floor_hit = Mccm_obs.Metric.counter "plan.floor.hit"
let c_floor_miss = Mccm_obs.Metric.counter "plan.floor.miss"


type single_plan = {
  weights_tile_bytes : int;
  fm_capacity_bytes : int;
  fm_ideal_bytes : int;
}

type pipelined_plan = {
  tiles_per_image : int;
  width_split : int;
  tile_rows : int array;
  fm_tile_bytes : int array;
  weights_retained : bool array;
  weights_staging_bytes : int;
}

type block_plan =
  | Plan_single of single_plan
  | Plan_pipelined of pipelined_plan

type t = {
  block_plans : block_plan array;
  inter_seg_on_chip : bool array;
  inter_seg_bytes : int array;
  total_bytes : int;
  feasible : bool;
}

(* Working representation while the greedy passes mutate decisions. *)
type wsingle = {
  s_weights_tile : int;
  s_fm_min : int;
  s_fm_ideal : int;
  mutable s_fm_cap : int;
}

type wpipe = {
  p_first : int;
  p_engs : Engine.Ce.t array;
  p_ws : int;
  mutable p_rows : int array;
  mutable p_fm_tile : int array;
  p_aligned_min : int array;
      (* smallest unroll-aligned rows; the preferred fallback when the
         board has room for it *)
  p_retained : bool array;
  mutable p_staging : int;
}

type wblock = Wsingle of wsingle | Wpipe of wpipe

let fm_tile_bytes_of ~bpe ~width_split layer ~rows =
  let o = Cnn.Layer.out_shape layer in
  cd (rows * o.Cnn.Shape.width * o.Cnn.Shape.channels * bpe) width_split

(* Weight streams are double-buffered at burst granularity, not at full
   filter-group granularity: the carved-out buffer caps at this many
   elements per copy.  The access model is unaffected (weights move the
   same number of times); only the BRAM carve-out shrinks. *)
let weight_stream_granule_elements = 16384

(* ------------------------------------------------------------ cache *)

(* The pipelined tile-count/width-split search is the planner's hot spot
   and a pure function of the block's layer range and its engines'
   parallelisms for a fixed (model, board): its soft BRAM budget derives
   from the block's own MAC share, never from the rest of the
   architecture.  A cache is scoped to one (model, board) pair by its
   owner (an evaluation session), so keys carry only the layer range and
   the engine signatures; the greedy passes that later mutate the floor
   stay per-architecture and uncached. *)

type engine_sig = {
  e_pes : int;
  e_par : int * int * int * int * int * int;
  e_df : Engine.Dataflow.t;
}

let engine_sig (e : Engine.Ce.t) =
  let f d = Engine.Parallelism.factor e.Engine.Ce.parallelism d in
  {
    e_pes = e.Engine.Ce.pes;
    e_par =
      ( f Engine.Parallelism.Filters,
        f Engine.Parallelism.Channels,
        f Engine.Parallelism.Height,
        f Engine.Parallelism.Width,
        f Engine.Parallelism.Kernel_h,
        f Engine.Parallelism.Kernel_w );
    e_df = e.Engine.Ce.dataflow;
  }

let fp_engine_sig h s =
  let a, b, c, d, e, f = s.e_par in
  let h = Util.Fingerprint.int h s.e_pes in
  let h = List.fold_left Util.Fingerprint.int h [ a; b; c; d; e; f ] in
  Util.Fingerprint.int h
    (match s.e_df with
    | Engine.Dataflow.Weight_stationary -> 0
    | Engine.Dataflow.Output_stationary -> 1
    | Engine.Dataflow.Input_stationary -> 2)

type block_key = {
  k_fp : int;
  k_first : int;
  k_last : int;
  k_engs : engine_sig array;
}

let block_key ~first ~last engs =
  let h = Util.Fingerprint.empty in
  let h = Util.Fingerprint.int h first in
  let h = Util.Fingerprint.int h last in
  let h = Util.Fingerprint.array fp_engine_sig h engs in
  { k_fp = Util.Fingerprint.to_int h; k_first = first; k_last = last;
    k_engs = engs }

module Block_tbl = Hashtbl.Make (struct
  type t = block_key

  let hash k = k.k_fp

  let equal a b =
    a.k_fp = b.k_fp && a.k_first = b.k_first && a.k_last = b.k_last
    && a.k_engs = b.k_engs
end)

(* Immutable floors; the working copies handed to the greedy passes are
   rebuilt fresh on every hit. *)
type pipe_floor = {
  pf_ws : int;
  pf_rows : int array;
  pf_fm_tile : int array;
  pf_aligned_min : int array;
}

type single_floor = {
  sf_weights_tile : int;
  sf_fm_min : int;
  sf_fm_ideal : int;
}

type cache = {
  pipes : pipe_floor Block_tbl.t;
  singles : single_floor Block_tbl.t;
  mutable cache_hits : int;
  mutable cache_misses : int;
}

let create_cache () =
  { pipes = Block_tbl.create 128; singles = Block_tbl.create 128;
    cache_hits = 0; cache_misses = 0 }

let cache_hits c = c.cache_hits
let cache_misses c = c.cache_misses

(* The copy starts with fresh counters so a later [absorb_cache] adds
   only the fork's own activity, not a second copy of the parent's. *)
let copy_cache c =
  { pipes = Block_tbl.copy c.pipes; singles = Block_tbl.copy c.singles;
    cache_hits = 0; cache_misses = 0 }

let absorb_cache ~into c =
  Block_tbl.iter
    (fun k v -> if not (Block_tbl.mem into.pipes k) then Block_tbl.add into.pipes k v)
    c.pipes;
  Block_tbl.iter
    (fun k v ->
      if not (Block_tbl.mem into.singles k) then Block_tbl.add into.singles k v)
    c.singles;
  into.cache_hits <- into.cache_hits + c.cache_hits;
  into.cache_misses <- into.cache_misses + c.cache_misses

(* The planning floor (row-streaming minima and tiling search) is the
   expensive part of a plan; wrap its computation in a span so traces
   separate floor time from the greedy capacity passes, and count
   hits/misses in the global registry next to the per-cache counters. *)
let timed_floor compute =
  Mccm_obs.span ~cat:"build" "build.planning_floor" compute

(* Process-global floor memo for table-backed, session-less plans.
   Floors are pure functions of (model, board, layer range, engine
   signatures) and independent of the build options; the table's uid
   names the model cheaply, so — like {!Parallelism_select}'s global
   memo — results can be shared across plans, sessions and domains.
   The mutex is held only around the lookup/insert; computation runs
   outside it (a racing duplicate computes the identical value). *)
let global_pipes : (int * Platform.Board.t * block_key, pipe_floor) Hashtbl.t =
  Hashtbl.create 256

let global_singles :
    (int * Platform.Board.t * block_key, single_floor) Hashtbl.t =
  Hashtbl.create 256

let global_lock = Mutex.create ()

let memo_global tbl key compute =
  let cached =
    Mutex.lock global_lock;
    let r = Hashtbl.find_opt tbl key in
    Mutex.unlock global_lock;
    r
  in
  match cached with
  | Some v -> v
  | None ->
    let v = timed_floor compute in
    Mutex.lock global_lock;
    (if not (Hashtbl.mem tbl key) then Hashtbl.add tbl key v);
    Mutex.unlock global_lock;
    v

let memo_block tbl cache key compute =
  match cache with
  | None -> timed_floor compute
  | Some c -> (
    let tbl = tbl c in
    match Block_tbl.find_opt tbl key with
    | Some v ->
      c.cache_hits <- c.cache_hits + 1;
      Mccm_obs.Metric.incr c_floor_hit;
      v
    | None ->
      c.cache_misses <- c.cache_misses + 1;
      Mccm_obs.Metric.incr c_floor_miss;
      let v = timed_floor compute in
      Block_tbl.add tbl key v;
      v)

let plan ?(minimal = false) ?cache ?table model board archi ~engines =
  (match table with Some t -> Cnn.Table.check t model | None -> ());
  let bpe = board.Platform.Board.bytes_per_element in
  let bram = board.Platform.Board.bram_bytes in
  let blocks = Array.of_list archi.Arch.Block.blocks in
  let nb = Array.length blocks in
  let total_macs =
    max 1
      (match table with
      | Some t -> Cnn.Table.total_macs t
      | None -> Cnn.Model.total_macs model)
  in
  let weight_bytes i =
    match table with
    | Some t -> bpe * Cnn.Table.weight_elements t i
    | None -> bpe * Cnn.Layer.weight_elements (Cnn.Model.layer model i)
  in
  (* Table-aware per-layer reads (absolute layer index).  Each computes
     exactly the integer the [Layer.t] reference produces; the table
     path just skips the [out_shape] recomputation and extent-list
     allocations. *)
  let out_h_at i =
    match table with
    | Some t -> Cnn.Table.out_height t i
    | None -> (Cnn.Layer.out_shape (Cnn.Model.layer model i)).Cnn.Shape.height
  in
  let fm_tile_at ~width_split i ~rows =
    match table with
    | Some t ->
      cd (rows * Cnn.Table.out_width t i * Cnn.Table.out_channels t i * bpe)
        width_split
    | None ->
      fm_tile_bytes_of ~bpe ~width_split (Cnn.Model.layer model i) ~rows
  in
  let weight_tile_elements_at e i =
    match table with
    | Some t ->
      let total = Cnn.Table.weight_elements t i in
      let filters = if Cnn.Table.is_depthwise t i then 1 else Cnn.Table.out_channels t i in
      let par_f =
        Engine.Parallelism.factor e.Engine.Ce.parallelism
          Engine.Parallelism.Filters
      in
      cd total (cd filters (max 1 par_f))
    | None -> Tiling.weight_tile_elements e (Cnn.Model.layer model i)
  in
  let tile_cycles_at e i ~rows =
    match table with
    | Some t -> Engine.Ce.tile_cycles_at e t i ~rows
    | None -> Engine.Ce.tile_cycles e (Cnn.Model.layer model i) ~rows
  in
  let memo sel_session sel_global key compute =
    match (cache, table) with
    | None, Some t ->
      memo_global sel_global (Cnn.Table.uid t, board, key) compute
    | _ -> memo_block sel_session cache key compute
  in
  let make_single ~ce ~first ~last =
    let engine = engines.(ce) in
    let floor =
      memo
        (fun c -> c.singles)
        global_singles
        (block_key ~first ~last [| engine_sig engine |])
        (fun () ->
          match table with
          | Some t ->
            let wt = ref 1 and mf = ref 1 in
            for i = first to last do
              wt := max !wt (weight_tile_elements_at engine i);
              mf :=
                max !mf
                  (Cnn.Table.band1_elements t i
                  + (Cnn.Table.out_width t i * Cnn.Table.out_channels t i))
            done;
            let fm_ideal = bpe * Cnn.Table.max_fms_range t ~first ~last in
            { sf_weights_tile =
                2 * bpe * min weight_stream_granule_elements !wt;
              sf_fm_min = min fm_ideal (bpe * !mf);
              sf_fm_ideal = fm_ideal }
          | None ->
            let range = Cnn.Model.layers_in_range model ~first ~last in
            let weights_tile =
              2 * bpe
              * min weight_stream_granule_elements
                  (List.fold_left
                     (fun a l -> max a (Tiling.weight_tile_elements engine l))
                     1 range)
            in
            let fm_ideal = bpe * Cnn.Model.max_fms_elements model ~first ~last in
            let fm_min =
              min fm_ideal
                (bpe
                * List.fold_left (fun a l -> max a (Tiling.min_fm_elements l)) 1 range
                )
            in
            { sf_weights_tile = weights_tile; sf_fm_min = fm_min;
              sf_fm_ideal = fm_ideal })
    in
    Wsingle
      { s_weights_tile = floor.sf_weights_tile; s_fm_min = floor.sf_fm_min;
        s_fm_ideal = floor.sf_fm_ideal; s_fm_cap = floor.sf_fm_min }
  in
  let pipe_floor ~engs ~first ~last () =
    let ces = Array.length engs in
    let n = last - first + 1 in
    let out_h i = out_h_at (first + i) in
    let par_h i =
      max 1
        (Engine.Parallelism.factor
           engs.(i mod ces).Engine.Ce.parallelism
           Engine.Parallelism.Height)
    in
    (* Tile rows are aligned to the engine's height unrolling so no tile
       wastes unroll lanes, except possibly the layer-sized last band. *)
    let aligned i target =
      let oh = out_h i in
      if target >= oh then oh
      else
        let r = Util.Int_math.round_up_to ~multiple:(par_h i) (max 1 target) in
        if r >= oh then oh else r
    in
    let rows_for t = Array.init n (fun i -> aligned i (cd (out_h i) t)) in
    let bytes_of ~ws rows =
      let s = ref 0 in
      Array.iteri
        (fun i r -> s := !s + (2 * fm_tile_at ~width_split:ws (first + i) ~rows:r))
        rows;
      !s
    in
    let max_t = ref 1 in
    for i = 0 to n - 1 do
      max_t := max !max_t (out_h i)
    done;
    let unaligned_rows_for t =
      Array.init n (fun i -> max 1 (cd (out_h i) t))
    in
    (* Tiling trades pipeline-fill skew (Eq. 2: more tiles overlap
       better) against weight traffic (Eq. 7: streamed weights are
       re-fetched once per tile) and against the BRAM left for weight
       retention.  Each candidate tiling is scored with a closed-form
       latency estimate - max of the skewed compute schedule and the
       off-chip traffic it implies at the retention its FM tiles leave
       room for - and the cheapest feasible one wins. *)
    let hard =
      let block_macs =
        match table with
        | Some t -> Cnn.Table.macs_range t ~first ~last
        | None -> Cnn.Model.macs_in_range model ~first ~last
      in
      bram * block_macs / total_macs
    in
    let w_b = Array.init n (fun i -> weight_bytes (first + i)) in
    let num_rounds = cd n ces in
    let staging_est =
      let best = ref 1 in
      for i = 0 to n - 1 do
        best :=
          max !best (weight_tile_elements_at engs.(i mod ces) (first + i))
      done;
      2 * bpe * min weight_stream_granule_elements !best
    in
    let bytes_per_cycle =
      board.Platform.Board.bandwidth_bytes_per_sec
      /. board.Platform.Board.clock_hz
    in
    let estimate ~ws rows =
      let fm = bytes_of ~ws rows in
      if fm + staging_est > hard then None
      else begin
        let tiles i = cd (out_h i) rows.(i) * ws in
        (* Mirror the greedy's tier-1 order: most re-fetches avoided per
           retained byte first. *)
        let avail = ref (hard - fm - staging_est) in
        let retained = Array.make n false in
        List.init n Fun.id
        |> List.filter (fun i -> tiles i > 1)
        |> List.sort (fun a b ->
               match compare (tiles b) (tiles a) with
               | 0 -> (
                   match compare w_b.(b) w_b.(a) with
                   | 0 -> compare a b
                   | c -> c)
               | c -> c)
        |> List.iter (fun i ->
               if w_b.(i) <= !avail then begin
                 retained.(i) <- true;
                 avail := !avail - w_b.(i)
               end);
        let traffic = ref 0 in
        for i = 0 to n - 1 do
          traffic := !traffic + (w_b.(i) * if retained.(i) then 1 else tiles i)
        done;
        (* Actual per-layer pace: tiles x per-tile cycles, which also
           prices the unroll lanes a misaligned band wastes. *)
        let paced i =
          tiles i
          * cd (tile_cycles_at engs.(i mod ces) (first + i) ~rows:rows.(i)) ws
        in
        let compute = ref 0.0 in
        for r = 0 to num_rounds - 1 do
          let lo = r * ces and hi = min (n - 1) ((r * ces) + ces - 1) in
          let rmax = ref 0 and tmin = ref max_int in
          for i = lo to hi do
            rmax := max !rmax (paced i);
            tmin := min !tmin (tiles i)
          done;
          (* Pipeline fill: trailing engines wait ~one tile of the pacing
             layer per stage before streaming in earnest. *)
          compute :=
            !compute
            +. float_of_int !rmax
            +. (float_of_int ((hi - lo) * !rmax) /. float_of_int (max 1 !tmin))
        done;
        Some (Float.max !compute (float_of_int !traffic /. bytes_per_cycle))
      end
    in
    let pick ~ws rows_of =
      let best = ref None in
      let prev = ref [||] in
      for t = 1 to !max_t do
        let rows = rows_of t in
        if rows <> !prev then begin
          prev := rows;
          match estimate ~ws rows with
          | None -> ()
          | Some e -> (
              match !best with
              | Some (be, _) when be <= e -> ()
              | _ -> best := Some (e, rows))
        end
      done;
      Option.map snd !best
    in
    let aligned_min = rows_for !max_t in
    let rows, ws =
      (* Preference order: unroll-aligned bands first (splitting the
         width instead of shrinking rows below the H unroll keeps the
         lanes busy), then unaligned bands as a last resort. *)
      let rec widen rows_of ws =
        if ws > 64 then None
        else
          match pick ~ws rows_of with
          | Some rows -> Some (rows, ws)
          | None -> widen rows_of (ws + 1)
      in
      match widen rows_for 1 with
      | Some r -> r
      | None -> (
          match widen unaligned_rows_for 1 with
          | Some r -> r
          | None -> (unaligned_rows_for !max_t, 1))
    in
    let fm_tile rows =
      Array.init n (fun i -> fm_tile_at ~width_split:ws (first + i) ~rows:rows.(i))
    in
    { pf_ws = ws; pf_rows = rows; pf_fm_tile = fm_tile rows;
      pf_aligned_min = aligned_min }
  in
  let make_pipe ~ce_first ~ce_last ~first ~last =
    let ces = ce_last - ce_first + 1 in
    let engs = Array.sub engines ce_first ces in
    let floor =
      memo
        (fun c -> c.pipes)
        global_pipes
        (block_key ~first ~last (Array.map engine_sig engs))
        (pipe_floor ~engs ~first ~last)
    in
    (* The greedy passes mutate rows/tiles in place; the cached floor must
       stay pristine, so hand them copies.  [pf_aligned_min] is read-only
       downstream and may be shared. *)
    Wpipe
      { p_first = first; p_engs = engs; p_ws = floor.pf_ws;
        p_rows = Array.copy floor.pf_rows;
        p_fm_tile = Array.copy floor.pf_fm_tile;
        p_aligned_min = floor.pf_aligned_min;
        p_retained = Array.make (last - first + 1) false; p_staging = 0 }
  in
  let work =
    Array.map
      (function
        | Arch.Block.Single { ce; first; last } -> make_single ~ce ~first ~last
        | Arch.Block.Pipelined { ce_first; ce_last; first; last } ->
          make_pipe ~ce_first ~ce_last ~first ~last)
      blocks
  in
  let inter_bytes =
    Array.init (max 0 (nb - 1)) (fun i ->
        let _, last = Arch.Block.layer_range blocks.(i) in
        bpe * Cnn.Shape.elements (Cnn.Layer.out_shape (Cnn.Model.layer model last)))
  in
  let inter_on = Array.make (max 0 (nb - 1)) false in
  let restage p =
    let ces = Array.length p.p_engs in
    let best = ref 0 in
    Array.iteri
      (fun i retained ->
        if not retained then
          best :=
            max !best (weight_tile_elements_at p.p_engs.(i mod ces) (p.p_first + i)))
      p.p_retained;
    p.p_staging <- 2 * bpe * min weight_stream_granule_elements !best
  in
  Array.iter (function Wpipe p -> restage p | Wsingle _ -> ()) work;
  let total () =
    let s = ref 0 in
    Array.iter
      (function
        | Wsingle b -> s := !s + b.s_weights_tile + b.s_fm_cap
        | Wpipe p ->
          Array.iteri
            (fun i tile ->
              s := !s + (2 * tile);
              if p.p_retained.(i) then s := !s + weight_bytes (p.p_first + i))
            p.p_fm_tile;
          if Array.exists not p.p_retained then s := !s + p.p_staging)
      work;
    Array.iteri (fun i on -> if on then s := !s + (2 * inter_bytes.(i))) inter_on;
    !s
  in
  if not minimal then begin
    (* Blocks that were forced below unroll-aligned tile rows by their
       soft budget get upgraded to the aligned minimum when the board as
       a whole still fits: fewer tiles mean fewer weight re-fetches. *)
    Array.iter
      (function
        | Wsingle _ -> ()
        | Wpipe p when p.p_ws > 1 -> ()
        | Wpipe p ->
          let tile_sum rows =
            let s = ref 0 in
            Array.iteri
              (fun i r ->
                s := !s + (2 * fm_tile_at ~width_split:1 (p.p_first + i) ~rows:r))
              rows;
            !s
          in
          let delta = tile_sum p.p_aligned_min - tile_sum p.p_rows in
          if delta > 0 && total () + delta <= bram then begin
            p.p_rows <- Array.copy p.p_aligned_min;
            p.p_fm_tile <-
              Array.init (Array.length p.p_rows) (fun i ->
                  fm_tile_at ~width_split:1 (p.p_first + i) ~rows:p.p_rows.(i))
          end)
      work;
    let leftover = ref (bram - total ()) in
    (* Retention candidates: (tiles, weight bytes, ordinal, block, layer). *)
    let candidates =
      let acc = ref [] and ord = ref 0 in
      Array.iter
        (function
          | Wsingle _ -> ()
          | Wpipe p ->
            Array.iteri
              (fun i rows ->
                let tiles = cd (out_h_at (p.p_first + i)) rows * p.p_ws in
                incr ord;
                acc := (tiles, weight_bytes (p.p_first + i), !ord, p, i) :: !acc)
              p.p_rows)
        work;
      List.rev !acc
    in
    let retain_pass keep order_cmp =
      List.iter
        (fun (_, w, _, p, i) ->
          if (not p.p_retained.(i)) && w <= !leftover then begin
            p.p_retained.(i) <- true;
            leftover := !leftover - w
          end)
        (List.sort order_cmp (List.filter keep candidates))
    in
    (* 1. Retain multi-tile weights: most re-fetches avoided per byte
       first (Eq. 7 streams a layer's weights once per tile). *)
    retain_pass
      (fun (tiles, _, _, _, _) -> tiles > 1)
      (fun (t1, w1, o1, _, _) (t2, w2, o2, _, _) ->
        match compare t2 t1 with
        | 0 -> ( match compare w2 w1 with 0 -> compare o1 o2 | c -> c)
        | c -> c);
    (* 2. Grow single-CE FM capacities toward their ideals, proportional
       to each block's deficit. *)
    let singles =
      Array.to_list work
      |> List.filter_map (function Wsingle b -> Some b | Wpipe _ -> None)
    in
    let deficit b = b.s_fm_ideal - b.s_fm_cap in
    let sumd = List.fold_left (fun a b -> a + deficit b) 0 singles in
    if sumd > 0 && !leftover > 0 then
      if sumd <= !leftover then begin
        List.iter (fun b -> b.s_fm_cap <- b.s_fm_ideal) singles;
        leftover := !leftover - sumd
      end
      else begin
        let share = List.map (fun b -> (b, !leftover * deficit b / sumd)) singles in
        let slack =
          !leftover - List.fold_left (fun a (_, g) -> a + g) 0 share
        in
        let by_remainder =
          List.sort
            (fun (b1, g1) (b2, g2) ->
              compare
                ((!leftover * deficit b2) - (g2 * sumd))
                ((!leftover * deficit b1) - (g1 * sumd)))
            share
        in
        let slack = ref slack in
        List.iter
          (fun (b, g) ->
            let g =
              if !slack > 0 && g < deficit b then (decr slack; g + 1) else g
            in
            b.s_fm_cap <- b.s_fm_cap + g)
          by_remainder;
        leftover := 0
      end;
    (* 3. Inter-segment double buffers (Eq. 8), left to right. *)
    Array.iteri
      (fun i bytes ->
        let cost = 2 * bytes in
        if cost <= !leftover then begin
          inter_on.(i) <- true;
          leftover := !leftover - cost
        end)
      inter_bytes;
    (* 4. Retain whatever streamed weights still fit (single-tile layers
       cost no extra traffic but avoid the per-image staging round trip). *)
    retain_pass
      (fun (_, _, _, p, i) -> not p.p_retained.(i))
      (fun (_, w1, o1, _, _) (_, w2, o2, _, _) ->
        match compare w2 w1 with 0 -> compare o1 o2 | c -> c);
    Array.iter (function Wpipe p -> restage p | Wsingle _ -> ()) work
  end;
  let block_plans =
    Array.map
      (function
        | Wsingle b ->
          Plan_single
            { weights_tile_bytes = b.s_weights_tile;
              fm_capacity_bytes = b.s_fm_cap;
              fm_ideal_bytes = b.s_fm_ideal }
        | Wpipe p ->
          Plan_pipelined
            { tiles_per_image = cd (out_h_at p.p_first) p.p_rows.(0) * p.p_ws;
              width_split = p.p_ws;
              tile_rows = p.p_rows;
              fm_tile_bytes = p.p_fm_tile;
              weights_retained = p.p_retained;
              weights_staging_bytes = p.p_staging })
      work
  in
  let total_bytes = total () in
  { block_plans; inter_seg_on_chip = inter_on; inter_seg_bytes = inter_bytes;
    total_bytes; feasible = total_bytes <= bram }

let audit model board archi (t : t) =
  let problems = ref [] in
  let add fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let bpe = board.Platform.Board.bytes_per_element in
  let blocks = Array.of_list archi.Arch.Block.blocks in
  let nb = Array.length blocks in
  if Array.length t.block_plans <> nb then
    add "block_plans has %d entries for %d blocks" (Array.length t.block_plans) nb
  else if
    Array.length t.inter_seg_on_chip <> nb - 1
    || Array.length t.inter_seg_bytes <> nb - 1
  then add "inter-segment arrays must have %d entries" (nb - 1)
  else begin
    Array.iteri
      (fun bi block ->
        match (block, t.block_plans.(bi)) with
        | Arch.Block.Single { first; last; _ }, Plan_single p ->
          let range = Cnn.Model.layers_in_range model ~first ~last in
          let max_w =
            List.fold_left (fun a l -> max a (Cnn.Layer.weight_elements l)) 1 range
          in
          let ideal = bpe * Cnn.Model.max_fms_elements model ~first ~last in
          if p.weights_tile_bytes <= 0 || p.weights_tile_bytes > 2 * bpe * max_w
          then
            add "block %d: weight tile %d outside (0, %d]" bi
              p.weights_tile_bytes (2 * bpe * max_w);
          if p.fm_ideal_bytes <> ideal then
            add "block %d: fm_ideal_bytes %d, expected %d" bi p.fm_ideal_bytes
              ideal;
          if p.fm_capacity_bytes <= 0 || p.fm_capacity_bytes > p.fm_ideal_bytes
          then
            add "block %d: fm capacity %d outside (0, %d]" bi
              p.fm_capacity_bytes p.fm_ideal_bytes
        | Arch.Block.Pipelined { first; last; _ }, Plan_pipelined p ->
          let n = last - first + 1 in
          if
            Array.length p.tile_rows <> n
            || Array.length p.fm_tile_bytes <> n
            || Array.length p.weights_retained <> n
          then add "block %d: plan arrays must have %d entries" bi n
          else begin
            if p.width_split < 1 then
              add "block %d: width_split %d < 1" bi p.width_split;
            for i = 0 to n - 1 do
              let layer = Cnn.Model.layer model (first + i) in
              let oh = (Cnn.Layer.out_shape layer).Cnn.Shape.height in
              let rows = p.tile_rows.(i) in
              if rows < 1 || rows > oh then
                add "block %d layer %d: tile rows %d outside [1, %d]" bi
                  (first + i) rows oh
              else begin
                let expect =
                  fm_tile_bytes_of ~bpe ~width_split:(max 1 p.width_split) layer
                    ~rows
                in
                if p.fm_tile_bytes.(i) <> expect then
                  add "block %d layer %d: fm tile %d bytes, expected %d" bi
                    (first + i) p.fm_tile_bytes.(i) expect
              end
            done;
            (if p.tile_rows.(0) >= 1 then
               let expect =
                 Tiling.num_row_tiles (Cnn.Model.layer model first)
                   ~rows:p.tile_rows.(0)
                 * max 1 p.width_split
               in
               if p.tiles_per_image <> expect then
                 add "block %d: tiles_per_image %d, expected %d" bi
                   p.tiles_per_image expect);
            let streamed_max = ref 0 in
            Array.iteri
              (fun i retained ->
                if not retained then
                  streamed_max :=
                    max !streamed_max
                      (bpe
                      * Cnn.Layer.weight_elements
                          (Cnn.Model.layer model (first + i))))
              p.weights_retained;
            if !streamed_max > 0 then begin
              if
                p.weights_staging_bytes <= 0
                || p.weights_staging_bytes > 2 * !streamed_max
              then
                add "block %d: weight staging %d outside (0, %d]" bi
                  p.weights_staging_bytes (2 * !streamed_max)
            end
            else if p.weights_staging_bytes < 0 then
              add "block %d: negative weight staging" bi
          end
        | Arch.Block.Single _, Plan_pipelined _ ->
          add "block %d: pipelined plan for a single-CE block" bi
        | Arch.Block.Pipelined _, Plan_single _ ->
          add "block %d: single-CE plan for a pipelined block" bi)
      blocks;
    Array.iteri
      (fun i bytes ->
        let _, last = Arch.Block.layer_range blocks.(i) in
        let expect =
          bpe * Cnn.Shape.elements (Cnn.Layer.out_shape (Cnn.Model.layer model last))
        in
        if bytes <> expect then
          add "boundary %d: %d bytes, expected %d" i bytes expect)
      t.inter_seg_bytes;
    if !problems = [] then begin
      let s = ref 0 in
      Array.iteri
        (fun bi plan ->
          match plan with
          | Plan_single p ->
            s := !s + p.weights_tile_bytes + p.fm_capacity_bytes
          | Plan_pipelined p ->
            let first, _ = Arch.Block.layer_range blocks.(bi) in
            Array.iteri
              (fun i tile ->
                s := !s + (2 * tile);
                if p.weights_retained.(i) then
                  s :=
                    !s
                    + bpe
                      * Cnn.Layer.weight_elements
                          (Cnn.Model.layer model (first + i)))
              p.fm_tile_bytes;
            if Array.exists not p.weights_retained then
              s := !s + p.weights_staging_bytes)
        t.block_plans;
      Array.iteri
        (fun i on -> if on then s := !s + (2 * t.inter_seg_bytes.(i)))
        t.inter_seg_on_chip;
      if t.total_bytes <> !s then
        add "total_bytes %d, recount %d" t.total_bytes !s;
      let feasible = !s <= board.Platform.Board.bram_bytes in
      if t.feasible <> feasible then
        add "feasible %b, recount says %b" t.feasible feasible
    end
  end;
  List.rev !problems
