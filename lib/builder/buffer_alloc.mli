(** Per-block BRAM plans (paper Eq. 4--9).

    The planner decides, for a concrete architecture on a concrete
    board, how the on-chip memory is partitioned: per single-CE block a
    double-buffered weight tile and a feature-map capacity (Eq. 4/6);
    per pipelined block double-buffered FM tile buffers, which layers
    keep their weights resident and which stream them per tile (Eq. 7),
    and a staging buffer for the streamed ones; plus optional
    inter-segment double buffers between adjacent blocks (Eq. 8/9).

    All byte figures use the board's [bytes_per_element]. *)

type single_plan = {
  weights_tile_bytes : int;
      (** double-buffered resident weight tile (2 x largest filter-group
          tile over the block's layers) *)
  fm_capacity_bytes : int;
      (** on-chip feature-map capacity granted to the block; between the
          row-streaming minimum and [fm_ideal_bytes] *)
  fm_ideal_bytes : int;
      (** capacity that would hold the block's largest per-layer FM
          residency entirely on chip (Eq. 4 first term) *)
}

type pipelined_plan = {
  tiles_per_image : int;  (** tile count of the block's first layer *)
  width_split : int;      (** vertical FM cuts; 1 = row bands only *)
  tile_rows : int array;  (** OFM rows per tile, one entry per layer *)
  fm_tile_bytes : int array;  (** single-copy FM tile bytes per layer *)
  weights_retained : bool array;
      (** true = weights stay resident all image; false = streamed per
          tile (Eq. 7 re-fetches them [tiles] times) *)
  weights_staging_bytes : int;
      (** double-buffered staging for streamed weights; 0 when every
          layer is retained *)
}

type block_plan =
  | Plan_single of single_plan
  | Plan_pipelined of pipelined_plan

type t = {
  block_plans : block_plan array;  (** one entry per architecture block *)
  inter_seg_on_chip : bool array;
      (** boundary [i] (between blocks [i] and [i+1]): true = the
          boundary OFM is double-buffered on chip (Eq. 8) *)
  inter_seg_bytes : int array;  (** single-copy boundary OFM bytes *)
  total_bytes : int;  (** everything above, summed the way Eq. 9 counts *)
  feasible : bool;    (** [total_bytes <= board.bram_bytes] *)
}

type cache
(** Memo table for the per-block planning floors — the pipelined
    tile-count/width-split search (the planner's hot spot) and the
    single-CE weight-tile/FM bounds.  Both are pure functions of the
    block's layer range and its engines' signatures (PE count,
    parallelism factors, dataflow) for a fixed (model, board) pair, so a
    cache must only ever be used with the (model, board) it first saw;
    {!Mccm.Eval_session} enforces this scoping.  The greedy passes that
    spend leftover BRAM across blocks remain per-architecture and are
    never cached.  A cache is not thread-safe; use {!copy_cache} to give
    each domain its own and {!absorb_cache} to merge afterwards. *)

val create_cache : unit -> cache

val copy_cache : cache -> cache
(** Snapshot for handing to another domain.  The copy's hit/miss
    counters start at zero so {!absorb_cache} adds only the fork's own
    activity. *)

val absorb_cache : into:cache -> cache -> unit
(** Merge entries (and hit/miss counters) from a forked cache;
    first-writer wins on key clashes (entries are content-keyed, so
    clashing values are equal anyway). *)

val cache_hits : cache -> int
val cache_misses : cache -> int

val plan :
  ?minimal:bool ->
  ?cache:cache ->
  ?table:Cnn.Table.t ->
  Cnn.Model.t ->
  Platform.Board.t ->
  Arch.Block.arch ->
  engines:Engine.Ce.t array ->
  t
(** [plan model board archi ~engines] sizes every buffer.  Starting
    from the floor (row-streaming FM minima, nothing retained, no
    inter-segment buffers), leftover BRAM is spent greedily: first on
    retaining multi-tile pipelined weights (ordered by streaming traffic
    saved per buffer byte), then on growing single-CE FM capacities
    toward their ideals (proportional to deficit), then on
    inter-segment double buffers, then on retaining the remaining
    streamed weights.  With [minimal:true] the floor plan is returned
    unchanged.  The plan never exceeds the BRAM budget unless even the
    floor does not fit, in which case [feasible] is [false].

    [cache] memoizes the per-block floors across calls; plans produced
    with and without a cache are bit-identical (the cache only skips
    recomputing pure functions).

    [engines] must be the architecture's engines indexed by CE id
    (as produced by {!Build.build}). *)

val audit :
  Cnn.Model.t -> Platform.Board.t -> Arch.Block.arch -> t -> string list
(** [audit model board archi t] re-derives every engine-independent
    invariant of [t] and returns human-readable descriptions of the
    violations, [[]] when the plan is internally consistent: per-block
    plan kinds and array lengths, tile-row ranges, the FM tile-byte and
    tiles-per-image formulas, weight-tile and staging bounds,
    inter-segment byte formulas, and that [total_bytes] and [feasible]
    match a recount. *)
