type options = {
  parallelism : [ `Optimized | `Naive ];
  pe_allocation : [ `Proportional | `Balanced ];
  buffers : [ `Greedy | `Minimal ];
}

let default_options =
  { parallelism = `Optimized; pe_allocation = `Proportional; buffers = `Greedy }

type built_block =
  | Built_single of { engine : Engine.Ce.t; first : int; last : int }
  | Built_pipelined of {
      engines : Engine.Ce.t array;
      first : int;
      last : int;
    }

type t = {
  model : Cnn.Model.t;
  board : Platform.Board.t;
  archi : Arch.Block.arch;
  engines : Engine.Ce.t array;
  blocks : built_block array;
  plan : Buffer_alloc.t;
}

(* Largest cube edge fitting the PE count: the strawman parallelism the
   ablations compare against. *)
let naive_parallelism pes =
  let s = ref 1 in
  while (!s + 1) * (!s + 1) * (!s + 1) <= pes do
    incr s
  done;
  Engine.Parallelism.three_d ~filters:!s ~height:!s ~width:!s

(* Build-time memo shared across calls scoped to one (model, board,
   options) triple by its owner ({!Mccm.Eval_session}): the
   {!Buffer_alloc} planning floors, plus the parallelism chosen for a
   CE's layer assignment.  The parallelism key is the assignment's
   descriptor — (kind, block first/last, slot, slot count, PE count) —
   which fully determines the layer list, so the per-call construction
   of the layers and of {!Parallelism_select}'s loop-extent signature is
   skipped entirely on a hit.  Only the chosen {!Engine.Parallelism.t}
   is cached; the {!Engine.Ce.t} is rebuilt per call so display ids
   stay correct. *)
type cache = {
  c_plans : Buffer_alloc.cache;
  c_pars : (int * int * int * int * int * int, Engine.Parallelism.t) Hashtbl.t;
}

let create_cache () =
  { c_plans = Buffer_alloc.create_cache (); c_pars = Hashtbl.create 64 }

let copy_cache c =
  { c_plans = Buffer_alloc.copy_cache c.c_plans;
    c_pars = Hashtbl.copy c.c_pars }

let absorb_cache ~into c =
  Buffer_alloc.absorb_cache ~into:into.c_plans c.c_plans;
  Hashtbl.iter
    (fun k v -> if not (Hashtbl.mem into.c_pars k) then Hashtbl.add into.c_pars k v)
    c.c_pars

let plan_cache c = c.c_plans

let c_builds = Mccm_obs.Metric.counter "build.builds"

let build ?(options = default_options) ?cache ?table model board archi =
  Mccm_obs.span ~cat:"build" "build.build" @@ fun () ->
  Mccm_obs.Metric.incr c_builds;
  (match table with Some t -> Cnn.Table.check t model | None -> ());
  let blocks = Array.of_list archi.Arch.Block.blocks in
  let num_ces = Arch.Block.total_ces archi in
  let layer_lists = Array.make num_ces [] in
  let in_pipeline = Array.make num_ces false in
  (* Per-CE assignment descriptor, the parallelism-memo key prefix. *)
  let desc = Array.make num_ces (0, 0, 0, 0, 0) in
  Array.iter
    (function
      | Arch.Block.Single { ce; first; last } ->
        layer_lists.(ce) <- List.init (last - first + 1) (fun k -> first + k);
        desc.(ce) <- (0, first, last, 0, 1)
      | Arch.Block.Pipelined { ce_first; ce_last; first; last } ->
        let ces = ce_last - ce_first + 1 in
        let slots = Workload.pipelined_assignment ~ces ~first ~last in
        Array.iteri
          (fun s ls ->
            layer_lists.(ce_first + s) <- ls;
            in_pipeline.(ce_first + s) <- true;
            desc.(ce_first + s) <- (1, first, last, s, ces))
          slots)
    blocks;
  let macs_of ls =
    match table with
    | Some t -> List.fold_left (fun a i -> a + Cnn.Table.macs t i) 0 ls
    | None ->
      List.fold_left
        (fun a i -> a + Cnn.Layer.macs (Cnn.Model.layer model i))
        0 ls
  in
  let make_engines pes =
    Array.init num_ces (fun ce ->
        let parallelism =
          match options.parallelism with
          | `Naive -> naive_parallelism pes.(ce)
          | `Optimized -> (
            let compute () =
              Mccm_obs.span ~cat:"build" "build.parallelism_select"
                (fun () ->
                  match table with
                  | Some t ->
                    Parallelism_select.choose_indices ~pes:pes.(ce) t
                      layer_lists.(ce)
                  | None ->
                    Parallelism_select.choose ~pes:pes.(ce)
                      ~layers:
                        (List.map (Cnn.Model.layer model) layer_lists.(ce)))
            in
            match cache with
            | None -> compute ()
            | Some c -> (
              let kind, first, last, slot, ces = desc.(ce) in
              let key = (kind, first, last, slot, ces, pes.(ce)) in
              match Hashtbl.find_opt c.c_pars key with
              | Some p -> p
              | None ->
                let p = compute () in
                Hashtbl.add c.c_pars key p;
                p))
        in
        Engine.Ce.v ~id:(ce + 1) ~pes:pes.(ce) ~parallelism
          ~dataflow:
            (if in_pipeline.(ce) then Engine.Dataflow.Weight_stationary
             else Engine.Dataflow.Output_stationary))
  in
  let workloads = Array.map macs_of layer_lists in
  let engines =
    ref
      (make_engines
         (Pe_allocation.distribute ~budget:board.Platform.Board.dsps
            ~workloads))
  in
  (match options.pe_allocation with
  | `Proportional -> ()
  | `Balanced ->
    (* Redistribute PEs proportionally to each engine's modelled busy
       work (cycles x PEs approximates its PE-invariant load), keeping a
       redistribution only while the busiest/laziest spread shrinks. *)
    let cycles es =
      Array.init num_ces (fun ce ->
          match table with
          | Some t ->
            List.fold_left
              (fun a i -> a + Engine.Ce.layer_cycles_at es.(ce) t i)
              0 layer_lists.(ce)
          | None ->
            List.fold_left
              (fun a i ->
                a + Engine.Ce.layer_cycles es.(ce) (Cnn.Model.layer model i))
              0 layer_lists.(ce))
    in
    let spread cyc =
      let busiest = Array.fold_left max 1 cyc in
      let laziest =
        Array.fold_left (fun a c -> if c > 0 then min a c else a) busiest cyc
      in
      float_of_int busiest /. float_of_int (max 1 laziest)
    in
    let best = ref (spread (cycles !engines)) in
    (try
       for _pass = 1 to 3 do
         let cyc = cycles !engines in
         let wl =
           Array.init num_ces (fun ce ->
               max 1 cyc.(ce) * (!engines).(ce).Engine.Ce.pes)
         in
         let es =
           make_engines
             (Pe_allocation.distribute ~budget:board.Platform.Board.dsps
                ~workloads:wl)
         in
         let sp = spread (cycles es) in
         if sp < !best then begin
           engines := es;
           best := sp
         end
         else raise Exit
       done
     with Exit -> ()));
  let engines = !engines in
  let built_blocks =
    Array.map
      (function
        | Arch.Block.Single { ce; first; last } ->
          Built_single { engine = engines.(ce); first; last }
        | Arch.Block.Pipelined { ce_first; ce_last; first; last } ->
          Built_pipelined
            { engines = Array.sub engines ce_first (ce_last - ce_first + 1);
              first; last })
      blocks
  in
  let plan =
    Mccm_obs.span ~cat:"build" "build.plan" (fun () ->
        Buffer_alloc.plan
          ~minimal:(options.buffers = `Minimal)
          ?cache:(Option.map plan_cache cache) ?table model board archi
          ~engines)
  in
  { model; board; archi; engines; blocks = built_blocks; plan }

let engine_for_layer t i =
  let rec find bi =
    if bi >= Array.length t.blocks then
      invalid_arg
        (Printf.sprintf "Build.engine_for_layer: layer %d out of range" i)
    else
      match t.blocks.(bi) with
      | Built_single { engine; first; last } when i >= first && i <= last ->
        engine
      | Built_pipelined { engines; first; last } when i >= first && i <= last
        ->
        engines.((i - first) mod Array.length engines)
      | _ -> find (bi + 1)
  in
  find 0

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@,board: %a@,engines:" Arch.Block.pp t.archi
    Platform.Board.pp t.board;
  Array.iter (fun e -> Format.fprintf ppf "@,  %a" Engine.Ce.pp e) t.engines;
  Format.fprintf ppf "@,buffers: %d / %d bytes%s@]"
    t.plan.Buffer_alloc.total_bytes t.board.Platform.Board.bram_bytes
    (if t.plan.Buffer_alloc.feasible then "" else " (infeasible)")
