(** End-to-end construction of a concrete accelerator instance.

    [build] maps an abstract architecture (blocks over layer ranges)
    onto a board: it distributes the DSP budget over engines
    proportionally to their MAC workload, picks each engine's
    parallelism for the layers it will run, assigns dataflows
    (weight-stationary inside pipelined blocks, output-stationary for
    single-CE blocks, per paper Section III-B), and sizes every on-chip
    buffer via {!Buffer_alloc}. *)

type options = {
  parallelism : [ `Optimized | `Naive ];
      (** [`Optimized] searches 7-smooth degrees minimising Eq.-1
          cycles; [`Naive] uses the largest cube fitting the PE count *)
  pe_allocation : [ `Proportional | `Balanced ];
      (** [`Proportional] splits PEs by MACs; [`Balanced] additionally
          iterates on modelled engine cycles to shrink the busiest/
          laziest spread, keeping only improving redistributions *)
  buffers : [ `Greedy | `Minimal ];
      (** [`Greedy] spends leftover BRAM on retention/capacity/
          inter-segment buffers; [`Minimal] keeps the floor plan *)
}

val default_options : options
(** [{ parallelism = `Optimized; pe_allocation = `Proportional;
      buffers = `Greedy }] *)

type built_block =
  | Built_single of { engine : Engine.Ce.t; first : int; last : int }
  | Built_pipelined of {
      engines : Engine.Ce.t array;
      first : int;
      last : int;
    }

type t = {
  model : Cnn.Model.t;
  board : Platform.Board.t;
  archi : Arch.Block.arch;
  engines : Engine.Ce.t array;  (** all engines, indexed by CE id - 1 *)
  blocks : built_block array;   (** one per architecture block, in order *)
  plan : Buffer_alloc.t;
}

type cache
(** Build-time memo: {!Buffer_alloc} planning floors plus the
    parallelism chosen per CE layer assignment.  A cache must only be
    used with the one (model, board, options) triple it was created
    for — {!Mccm.Eval_session} enforces that scoping.  Results are
    bit-identical with and without it.  Not thread-safe: hand each
    domain its own {!copy_cache} and merge with {!absorb_cache}. *)

val create_cache : unit -> cache

val copy_cache : cache -> cache
(** Snapshot for handing to another domain (planning-floor counters in
    the copy start at zero so {!absorb_cache} adds only the fork's own
    activity). *)

val absorb_cache : into:cache -> cache -> unit
(** Merge entries and counters from a forked cache; first writer wins
    on key clashes (content-keyed, so clashing values are equal). *)

val plan_cache : cache -> Buffer_alloc.cache
(** The embedded planning-floor cache (for its hit/miss counters). *)

val build :
  ?options:options ->
  ?cache:cache ->
  ?table:Cnn.Table.t ->
  Cnn.Model.t ->
  Platform.Board.t ->
  Arch.Block.arch ->
  t
(** [build model board archi] instantiates [archi] on [board].  Engine
    ids are 1-based CE indices; the PE allocations sum to exactly
    [board.dsps].  [cache] memoizes {!Buffer_alloc} planning floors and
    per-CE parallelism choices across calls that share (model, board,
    options); results are bit-identical with and without it.
    @raise Invalid_argument if the architecture has more engines than
    the board has DSPs. *)

val engine_for_layer : t -> int -> Engine.Ce.t
(** [engine_for_layer t i] is the engine that runs layer [i]: the
    block's engine for single-CE blocks, the round-robin slot for
    pipelined blocks.
    @raise Invalid_argument if no block covers layer [i]. *)

val pp : Format.formatter -> t -> unit
(** Multi-line summary: architecture, board, engines, buffer budget. *)
