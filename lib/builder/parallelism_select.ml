module P = Engine.Parallelism

(* Ascending 7-smooth numbers up to [limit]. *)
let smooth_upto limit =
  if limit < 1 then []
  else begin
    let acc = ref [] in
    let rec loop7 v = if v <= limit then (acc := v :: !acc; loop7 (v * 7)) in
    let rec loop5 v = if v <= limit then (loop7 v; loop5 (v * 5)) in
    let rec loop3 v = if v <= limit then (loop5 v; loop3 (v * 3)) in
    let rec loop2 v = if v <= limit then (loop3 v; loop2 (v * 2)) in
    loop2 1;
    List.sort_uniq compare !acc
  end

let smooth_degree n =
  if n < 1 then 1 else List.fold_left max 1 (smooth_upto n)

(* Smallest 7-smooth number >= n.  A power of two always lies in
   [n, 2n), so searching up to 2n suffices. *)
let next_smooth_geq n =
  if n <= 1 then 1
  else List.find (fun s -> s >= n) (smooth_upto (2 * n))

(* choose is on the DSE hot path (thousands of engines per sweep) and
   candidate evaluation is pure, so results are memoised by the engine's
   PE count and the layers' loop-extent signature.  Exploration runs in
   parallel domains; the table is mutex-protected. *)
let cache :
    (int * bool * (int * int * int * int) list, P.t) Hashtbl.t =
  Hashtbl.create 64

let cache_lock = Mutex.create ()

(* The search proper, keyed by the loop-extent signature.  [choose] and
   [choose_indices] build identical (pes, channel_mode, terms) keys from
   the layer list and the table respectively, so the two entry points
   share memoised results. *)
let solve ~pes ~channel_mode ~terms =
    let key = (pes, channel_mode, terms) in
    let cached =
      Mutex.lock cache_lock;
      let r = Hashtbl.find_opt cache key in
      Mutex.unlock cache_lock;
      r
    in
    match cached with
    | Some p -> p
    | None ->
      let cd = Util.Int_math.ceil_div in
      let max_of sel = List.fold_left (fun a t -> max a (sel t)) 1 terms in
      let max1 = max_of (fun (d, _, _, _) -> d) in
      let maxh = max_of (fun (_, h, _, _) -> h) in
      let maxw = max_of (fun (_, _, w, _) -> w) in
      let cost d1 h w =
        List.fold_left
          (fun acc (e1, eh, ew, rest) ->
            acc + (rest * cd e1 d1 * cd eh h * cd ew w))
          0 terms
      in
      let best = ref (cost 1 1 1, 1, 1, 1) in
      let consider d1 h w =
        let c = cost d1 h w in
        let bc, bd, bh, _ = !best in
        if c < bc || (c = bc && (d1 > bd || (d1 = bd && h > bh))) then
          best := (c, d1, h, w)
      in
      List.iter
        (fun d1 ->
          let rem = pes / d1 in
          List.iter
            (fun h ->
              let w = smooth_degree (min (rem / h) (next_smooth_geq maxw)) in
              consider d1 h w)
            (smooth_upto (min rem (next_smooth_geq maxh))))
        (smooth_upto (min pes (next_smooth_geq max1)));
      let _, d1, h, w = !best in
      let p =
        P.of_factors
          (if channel_mode then [ (P.Channels, d1); (P.Height, h); (P.Width, w) ]
           else [ (P.Filters, d1); (P.Height, h); (P.Width, w) ])
      in
      Mutex.lock cache_lock;
      (if not (Hashtbl.mem cache key) then Hashtbl.add cache key p);
      Mutex.unlock cache_lock;
      p

let choose ~pes ~layers =
  if pes < 1 then invalid_arg "Parallelism_select.choose: pes < 1";
  match layers with
  | [] -> P.scalar
  | _ ->
    let dw_macs, total_macs =
      List.fold_left
        (fun (dw, tot) l ->
          let m = Cnn.Layer.macs l in
          ((if l.Cnn.Layer.kind = Cnn.Layer.Depthwise then dw + m else dw),
           tot + m))
        (0, 0) layers
    in
    let channel_mode = 2 * dw_macs >= total_macs in
    (* Per layer: (first-dim extent, height, width, product of the
       un-unrolled extents). *)
    let terms =
      List.map
        (fun l ->
          let e d = Cnn.Layer.loop_extent l d in
          let k2 = e `Kernel_h * e `Kernel_w in
          let h = e `Height and w = e `Width in
          if channel_mode then (e `Channels, h, w, e `Filters * k2)
          else (e `Filters, h, w, e `Channels * k2))
        layers
    in
    solve ~pes ~channel_mode ~terms

(* Front cache for the table entry point, keyed by (table uid, pes,
   layer indices) — the caller's index list is hashed as-is, so a hit
   costs no per-layer work at all (the terms-keyed cache below still
   unifies results across tables and with [choose], but building its
   key walks every layer). *)
let fast_cache : (int * int * int list, P.t) Hashtbl.t = Hashtbl.create 256
let fast_lock = Mutex.create ()

(* ------------------------------------------------------ cycle floors *)

(* Divisor candidates for minimising [d -> ceil_div e d] under a cap:
   the O(sqrt e) quotient breakpoints (smallest d per quotient) plus
   the cap itself. *)
let ceil_candidates e cap =
  let m = max 1 (min e cap) in
  let acc = ref [ m ] in
  let q = ref 1 in
  let continue = ref (e >= 1) in
  while !continue do
    let d = Util.Int_math.ceil_div e !q in
    if d <= m then acc := d :: !acc;
    if d <= 1 then continue := false
    else begin
      let q' = Util.Int_math.ceil_div e (d - 1) in
      if q' <= !q then continue := false else q := q'
    end
  done;
  List.sort_uniq compare !acc

(* Minimum Eq.-1 cycles of one layer over every (d1, h, w) with
   [d1 * h * w <= budget]: [rest] covers the never-unrolled extents.
   This really is the minimum, not just a bound: for a fixed ceil
   quotient the smallest divisor achieving it dominates (it leaves the
   most budget to the later dimensions), and for fixed (d1, h) the
   cost only falls as w grows, so the largest feasible w dominates. *)
let min_cycles_mode ~budget ~e1 ~eh ~ew ~rest =
  let cd = Util.Int_math.ceil_div in
  let best = ref max_int in
  List.iter
    (fun d1 ->
      let rem = budget / d1 in
      if rem >= 1 then
        List.iter
          (fun h ->
            let w = max 1 (min ew (rem / h)) in
            if rem / h >= 1 then begin
              let c = rest * cd e1 d1 * cd eh h * cd ew w in
              if c < !best then best := c
            end)
          (ceil_candidates eh rem))
    (ceil_candidates e1 budget);
  !best

(* Floors are probed repeatedly with per-layer budgets by the DSE bound
   precomputation; same mutex-protected memo idiom as the caches above. *)
let floor_cache : (int * int * int, int) Hashtbl.t = Hashtbl.create 256
let floor_lock = Mutex.create ()

let cycle_floor ~pes table i =
  if pes < 1 then invalid_arg "Parallelism_select.cycle_floor: pes < 1";
  let key = (Cnn.Table.uid table, pes, i) in
  let cached =
    Mutex.lock floor_lock;
    let r = Hashtbl.find_opt floor_cache key in
    Mutex.unlock floor_lock;
    r
  in
  match cached with
  | Some c -> c
  | None ->
    let ef, ec, eh, ew, ekh, ekw = Cnn.Table.extents table i in
    let k2 = ekh * ekw in
    (* Engines unroll (Filters, Height, Width) or (Channels, Height,
       Width); the floor takes the min over both modes, so it holds
       whichever mode [choose]/[choose_indices] (or the naive-cube
       ablation) ends up in. *)
    let c =
      min
        (min_cycles_mode ~budget:pes ~e1:ef ~eh ~ew ~rest:(ec * k2))
        (min_cycles_mode ~budget:pes ~e1:ec ~eh ~ew ~rest:(ef * k2))
    in
    Mutex.lock floor_lock;
    (if not (Hashtbl.mem floor_cache key) then Hashtbl.add floor_cache key c);
    Mutex.unlock floor_lock;
    c

let utilization_ceiling ~pes table i =
  let floor = cycle_floor ~pes table i in
  if floor <= 0 then 1.0
  else
    let ideal = float_of_int (Cnn.Table.macs table i) /. float_of_int pes in
    Float.min 1.0 (ideal /. float_of_int floor)

let choose_indices ~pes table indices =
  if pes < 1 then invalid_arg "Parallelism_select.choose_indices: pes < 1";
  match indices with
  | [] -> P.scalar
  | _ -> (
    let fast_key = (Cnn.Table.uid table, pes, indices) in
    let cached =
      Mutex.lock fast_lock;
      let r = Hashtbl.find_opt fast_cache fast_key in
      Mutex.unlock fast_lock;
      r
    in
    match cached with
    | Some p -> p
    | None ->
    let dw_macs, total_macs =
      List.fold_left
        (fun (dw, tot) i ->
          let m = Cnn.Table.macs table i in
          ((if Cnn.Table.is_depthwise table i then dw + m else dw), tot + m))
        (0, 0) indices
    in
    let channel_mode = 2 * dw_macs >= total_macs in
    let terms =
      List.map
        (fun i ->
          let ef, ec, eh, ew, ekh, ekw = Cnn.Table.extents table i in
          let k2 = ekh * ekw in
          if channel_mode then (ec, eh, ew, ef * k2)
          else (ef, eh, ew, ec * k2))
        indices
    in
    let p = solve ~pes ~channel_mode ~terms in
    Mutex.lock fast_lock;
    (if not (Hashtbl.mem fast_cache fast_key) then
       Hashtbl.add fast_cache fast_key p);
    Mutex.unlock fast_lock;
    p)
