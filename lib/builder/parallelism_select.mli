(** Unroll-degree (parallelism) selection for a compute engine.

    MCCM engines unroll three loop dimensions (paper Section II-B):
    filters (or channels for depthwise-dominated engines), OFM height
    and OFM width.  Unroll degrees are kept 7-smooth — every prime
    factor is at most 7 — matching the divisor structure of real CNN
    loop extents so that ceil-division waste stays low. *)

val smooth_degree : int -> int
(** [smooth_degree n] is the largest 7-smooth number that is at most
    [n], or 1 when [n < 1]. *)

val choose : pes:int -> layers:Cnn.Layer.t list -> Engine.Parallelism.t
(** [choose ~pes ~layers] picks a 3-D parallelism whose total degree is
    at most [pes], minimising the summed Eq.-1 cycle count of [layers].

    The unrolled dimensions are (Filters, Height, Width) unless the
    layer list is dominated by depthwise MACs, in which case
    (Channels, Height, Width) is unrolled instead — depthwise layers
    have a filter extent of 1, so filter unrolling would leave the
    engine idle.  Ties prefer a larger first-dimension factor, then a
    larger height factor.  Returns {!Engine.Parallelism.scalar} for an
    empty layer list.

    @raise Invalid_argument if [pes < 1]. *)

val cycle_floor : pes:int -> Cnn.Table.t -> int -> int
(** [cycle_floor ~pes table i] is the minimum Eq.-1 cycle count of the
    table's layer [i] over {e every} integer 3-D parallelism of total
    degree at most [pes] — both unroll modes ((Filters, Height, Width)
    and (Channels, Height, Width)), all degrees, not just 7-smooth
    ones.  It therefore lower-bounds the per-layer cycles of any engine
    this module (or the naive-cube ablation) can construct with at most
    [pes] PEs, which makes it the compute-floor primitive of the DSE
    pruning bounds ({!Dse.Bounds}).  Nonincreasing in [pes]; results
    are memoised per (table, pes, layer).
    @raise Invalid_argument if [pes < 1]. *)

val utilization_ceiling : pes:int -> Cnn.Table.t -> int -> float
(** [utilization_ceiling ~pes table i] is the best PE utilization any
    [pes]-PE engine can reach on layer [i]:
    [macs / (pes * cycle_floor)], clamped to [0, 1].  The compute floor
    in {!Dse.Bounds} is exactly
    [macs / (pes * utilization_ceiling * clock)] seconds. *)

val choose_indices :
  pes:int -> Cnn.Table.t -> int list -> Engine.Parallelism.t
(** [choose_indices ~pes table indices] is [choose ~pes ~layers] for the
    table's layers at [indices], reading extents and MAC counts from the
    precomputed table instead of [Cnn.Layer] accessors.  Both entry
    points build identical memo keys, so they share cached results and
    return bit-identical parallelisms. *)
