(** Unroll-degree (parallelism) selection for a compute engine.

    MCCM engines unroll three loop dimensions (paper Section II-B):
    filters (or channels for depthwise-dominated engines), OFM height
    and OFM width.  Unroll degrees are kept 7-smooth — every prime
    factor is at most 7 — matching the divisor structure of real CNN
    loop extents so that ceil-division waste stays low. *)

val smooth_degree : int -> int
(** [smooth_degree n] is the largest 7-smooth number that is at most
    [n], or 1 when [n < 1]. *)

val choose : pes:int -> layers:Cnn.Layer.t list -> Engine.Parallelism.t
(** [choose ~pes ~layers] picks a 3-D parallelism whose total degree is
    at most [pes], minimising the summed Eq.-1 cycle count of [layers].

    The unrolled dimensions are (Filters, Height, Width) unless the
    layer list is dominated by depthwise MACs, in which case
    (Channels, Height, Width) is unrolled instead — depthwise layers
    have a filter extent of 1, so filter unrolling would leave the
    engine idle.  Ties prefer a larger first-dimension factor, then a
    larger height factor.  Returns {!Engine.Parallelism.scalar} for an
    empty layer list.

    @raise Invalid_argument if [pes < 1]. *)

val choose_indices :
  pes:int -> Cnn.Table.t -> int list -> Engine.Parallelism.t
(** [choose_indices ~pes table indices] is [choose ~pes ~layers] for the
    table's layers at [indices], reading extents and MAC counts from the
    precomputed table instead of [Cnn.Layer] accessors.  Both entry
    points build identical memo keys, so they share cached results and
    return bit-identical parallelisms. *)
