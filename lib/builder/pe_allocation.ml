let share_upper_bound ~budget ~engines ~workload ~total =
  if engines < 1 then invalid_arg "Pe_allocation.share_upper_bound: no engines";
  if budget < engines then
    invalid_arg "Pe_allocation.share_upper_bound: budget below engine count";
  if workload < 0 || total < 0 then
    invalid_arg "Pe_allocation.share_upper_bound: negative workload";
  let spare = budget - engines in
  (* [distribute] gives 1 (floor) + spare * w / total (proportional,
     integer division) + at most 1 (largest-remainder leftover); no
     engine can exceed the budget minus one PE for each other engine.
     A zero total falls back to uniform weights inside [distribute], so
     only the hard cap applies. *)
  let cap = spare + 1 in
  if total <= 0 || workload >= total then cap
  else min cap (2 + (spare * workload / total))

let distribute ~budget ~workloads =
  let n = Array.length workloads in
  if n = 0 then [||]
  else begin
    if budget < n then
      invalid_arg
        (Printf.sprintf
           "Pe_allocation.distribute: budget %d cannot give %d engines a PE"
           budget n);
    Array.iter
      (fun w ->
        if w < 0 then
          invalid_arg "Pe_allocation.distribute: negative workload")
      workloads;
    let total = Array.fold_left ( + ) 0 workloads in
    let weights = if total = 0 then Array.make n 1 else workloads in
    let wsum = Array.fold_left ( + ) 0 weights in
    (* Floor of one PE per engine, then proportional shares of the rest. *)
    let spare = budget - n in
    let extra = Array.map (fun w -> spare * w / wsum) weights in
    let leftover = spare - Array.fold_left ( + ) 0 extra in
    let idx = Array.init n Fun.id in
    let remainder i = (spare * weights.(i)) - (extra.(i) * wsum) in
    Array.sort
      (fun a b ->
        match compare (remainder b) (remainder a) with
        | 0 -> compare a b
        | c -> c)
      idx;
    for k = 0 to leftover - 1 do
      let i = idx.(k) in
      extra.(i) <- extra.(i) + 1
    done;
    Array.map (fun e -> 1 + e) extra
  end
