(** Distribution of the board's PE (DSP) budget across compute engines. *)

val share_upper_bound :
  budget:int -> engines:int -> workload:int -> total:int -> int
(** [share_upper_bound ~budget ~engines ~workload ~total] bounds from
    above the PE count {!distribute} can give an engine whose workload
    is [workload] out of a [total] shared by [engines] engines:

    [min (budget - engines + 1) (2 + (budget - engines) * workload / total)]

    — one floor PE, the proportional share of the spare budget, at most
    one largest-remainder PE, and never more than the budget minus one
    PE per other engine.  This is the admissibility anchor of the DSE
    segment bounds ({!Dse.Bounds}): for every workload vector with the
    given total, [distribute ~budget ~workloads].(i) <=
    [share_upper_bound ~budget ~engines ~workload:workloads.(i)
    ~total].  With [total <= 0] (uniform fallback) or [workload >=
    total] only the hard cap applies.

    @raise Invalid_argument if [engines < 1], [budget < engines], or a
    count is negative. *)

val distribute : budget:int -> workloads:int array -> int array
(** [distribute ~budget ~workloads] splits [budget] PEs over
    [Array.length workloads] engines proportionally to each engine's
    workload (MACs or cycle estimate), with two invariants:

    - every engine receives at least one PE;
    - the allocations sum to exactly [budget].

    The fractional shares left after the proportional floor are handed
    out by largest remainder, so the result is deterministic.  An
    all-zero workload array is treated as uniform.

    @raise Invalid_argument if [budget < Array.length workloads] (the
    budget cannot give every engine a PE) or if any workload is
    negative. *)
