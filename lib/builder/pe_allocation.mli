(** Distribution of the board's PE (DSP) budget across compute engines. *)

val distribute : budget:int -> workloads:int array -> int array
(** [distribute ~budget ~workloads] splits [budget] PEs over
    [Array.length workloads] engines proportionally to each engine's
    workload (MACs or cycle estimate), with two invariants:

    - every engine receives at least one PE;
    - the allocations sum to exactly [budget].

    The fractional shares left after the proportional floor are handed
    out by largest remainder, so the result is deterministic.  An
    all-zero workload array is treated as uniform.

    @raise Invalid_argument if [budget < Array.length workloads] (the
    budget cannot give every engine a PE) or if any workload is
    negative. *)
