let cd = Util.Int_math.ceil_div

let weight_tile_elements ce layer =
  let total = Cnn.Layer.weight_elements layer in
  let filters = Cnn.Layer.loop_extent layer `Filters in
  let par_f =
    Engine.Parallelism.factor ce.Engine.Ce.parallelism Engine.Parallelism.Filters
  in
  let groups = cd filters (max 1 par_f) in
  cd total groups

let tile_rows layer ~tiles =
  if tiles < 1 then invalid_arg "Tiling.tile_rows: tiles < 1";
  cd (Cnn.Layer.out_shape layer).Cnn.Shape.height tiles

let num_row_tiles layer ~rows =
  if rows < 1 then invalid_arg "Tiling.num_row_tiles: rows < 1";
  cd (Cnn.Layer.out_shape layer).Cnn.Shape.height rows

let ifm_rows_for_ofm_rows layer ~rows =
  if rows < 1 then invalid_arg "Tiling.ifm_rows_for_ofm_rows: rows < 1";
  let padded_h =
    layer.Cnn.Layer.in_shape.Cnn.Shape.height + (2 * layer.Cnn.Layer.padding)
  in
  min (layer.Cnn.Layer.kernel + ((rows - 1) * layer.Cnn.Layer.stride)) padded_h

let producer_tile ~producer_tiles ~consumer_tiles t =
  if producer_tiles < 1 || consumer_tiles < 1 then
    invalid_arg "Tiling.producer_tile: non-positive tile count";
  if t < 0 then invalid_arg "Tiling.producer_tile: negative tile index";
  min (producer_tiles - 1) (cd ((t + 1) * producer_tiles) consumer_tiles - 1)

let min_fm_elements layer =
  let i = layer.Cnn.Layer.in_shape in
  let o = Cnn.Layer.out_shape layer in
  (ifm_rows_for_ofm_rows layer ~rows:1 * i.Cnn.Shape.width * i.Cnn.Shape.channels)
  + (o.Cnn.Shape.width * o.Cnn.Shape.channels)
