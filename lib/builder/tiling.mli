(** Tile arithmetic shared by the pipelined-CEs schedule (paper Eq. 2/3)
    and the buffer planner (Eq. 4/7).

    Pipelined blocks process feature maps in horizontal bands of OFM
    rows.  These helpers convert between OFM row counts, the IFM rows
    (halo included) needed to produce them, weight tile sizes under a
    filter-parallel engine, and the producer/consumer tile dependence
    used by the skewed tile pipeline. *)

val weight_tile_elements : Engine.Ce.t -> Cnn.Layer.t -> int
(** [weight_tile_elements ce l] is the number of weight elements the
    engine holds resident at once when streaming [l]'s weights by filter
    group: the total weights divided by the number of filter groups,
    where the group count is [ceil (filters / Par(Filters))].  Always at
    least 1 and at most [Cnn.Layer.weight_elements l]. *)

val tile_rows : Cnn.Layer.t -> tiles:int -> int
(** [tile_rows l ~tiles] is the OFM rows per tile when [l]'s output
    height is cut into [tiles] bands: [ceil (out_h / tiles)].
    @raise Invalid_argument if [tiles < 1]. *)

val num_row_tiles : Cnn.Layer.t -> rows:int -> int
(** [num_row_tiles l ~rows] is the number of bands of [rows] OFM rows
    covering [l]'s output height: [ceil (out_h / rows)].
    @raise Invalid_argument if [rows < 1]. *)

val ifm_rows_for_ofm_rows : Cnn.Layer.t -> rows:int -> int
(** [ifm_rows_for_ofm_rows l ~rows] is the (padded) IFM rows needed to
    compute [rows] consecutive OFM rows: [kernel + (rows - 1) * stride],
    clamped to the padded input height.  Monotone in [rows] and never
    below the kernel extent.
    @raise Invalid_argument if [rows < 1]. *)

val producer_tile : producer_tiles:int -> consumer_tiles:int -> int -> int
(** [producer_tile ~producer_tiles ~consumer_tiles t] is the index of
    the last producer tile that must be complete before the consumer can
    start its tile [t], when producer and consumer cut the same image
    into [producer_tiles] and [consumer_tiles] bands respectively.  The
    result is in [0, producer_tiles - 1].
    @raise Invalid_argument on non-positive tile counts or negative [t]. *)

val min_fm_elements : Cnn.Layer.t -> int
(** [min_fm_elements l] is the smallest on-chip feature-map working set
    that still lets [l] execute with row-granular streaming: one OFM
    row's IFM band plus one OFM row.  Resident shortcut tensors are not
    counted — in this regime they spill off chip, which the single-CE
    model charges as extra accesses.  Strictly below
    [Cnn.Layer.fms_elements l] for multi-row outputs. *)
