let pipelined_assignment ~ces ~first ~last =
  if ces < 1 then invalid_arg "Workload.pipelined_assignment: ces < 1";
  if last < first then
    invalid_arg "Workload.pipelined_assignment: empty layer range";
  Array.init ces (fun s ->
      let rec collect i = if i > last then [] else i :: collect (i + ces) in
      collect (first + s))
