(** Layer-to-engine assignment inside a pipelined block. *)

val pipelined_assignment : ces:int -> first:int -> last:int -> int list array
(** [pipelined_assignment ~ces ~first ~last] assigns the layer indices
    [first..last] to [ces] engines round-robin: engine slot [s] runs
    layers [first+s, first+s+ces, first+s+2*ces, ...].  Slot lists are
    in ascending layer order; slots beyond the layer count are empty.

    @raise Invalid_argument if [ces < 1] or [last < first]. *)
