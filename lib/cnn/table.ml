(* Flat, precomputed per-layer scalar table.

   Every per-layer quantity the cost models read — MACs, weight/FM
   footprints, shapes, loop extents, streaming bands — is derived from
   [Layer.t] accessors that recompute [Shape.conv_output] (an
   allocation) on every call.  One O(n) pass at table-construction time
   hoists them all into unboxed int arrays, and prefix sums / a sparse
   range-max table turn the segment aggregates the models fold over
   ([sum MACs], [sum weights], [max FMs]) into O(1) array arithmetic.

   All stored quantities are integers computed by exactly the formulas
   in [Layer]/[Model], so any aggregate read through the table is
   bit-identical to the list-fold reference path. *)

type t = {
  model : Model.t;
  uid : int;                    (* process-unique; cheap memo keys *)
  n : int;
  macs : int array;
  weights : int array;          (* weight elements *)
  ifm : int array;              (* IFM elements *)
  ofm : int array;              (* OFM elements *)
  extra : int array;            (* extra resident elements *)
  fms : int array;              (* ifm + ofm + extra *)
  in_h : int array;
  in_w : int array;
  in_c : int array;
  out_h : int array;
  out_w : int array;
  out_c : int array;
  kernel : int array;
  stride : int array;
  padding : int array;
  is_dw : bool array;           (* kind = Depthwise *)
  (* The six Eq.-1 loop extents, in [Parallelism.all_dims] order. *)
  ext_f : int array;
  ext_c : int array;
  ext_h : int array;
  ext_w : int array;
  ext_kh : int array;
  ext_kw : int array;
  band1 : int array;
      (* IFM elements of the one-OFM-row streaming band:
         [Tiling.ifm_rows_for_ofm_rows ~rows:1 * in_w * in_c] *)
  macs_pfx : int array;         (* length n+1; macs_pfx.(i) = sum macs.(0..i-1) *)
  weights_pfx : int array;      (* likewise for weight elements *)
  fms_sparse : int array array;
      (* fms_sparse.(k).(i) = max fms.(i .. i + 2^k - 1) *)
  macs_sparse : int array array; (* likewise over macs *)
  log2 : int array;             (* log2.(l) = floor (log2 l), length n+1 *)
}

let next_uid = Atomic.make 0

let of_model model =
  let n = Model.num_layers model in
  let geti f = Array.init n (fun i -> f (Model.layer model i)) in
  let macs = geti Layer.macs in
  let weights = geti Layer.weight_elements in
  let ifm = geti Layer.ifm_elements in
  let ofm = geti Layer.ofm_elements in
  let extra = geti (fun l -> l.Layer.extra_resident_elements) in
  let fms = geti Layer.fms_elements in
  let in_shape f = geti (fun l -> f l.Layer.in_shape) in
  let in_h = in_shape (fun s -> s.Shape.height) in
  let in_w = in_shape (fun s -> s.Shape.width) in
  let in_c = in_shape (fun s -> s.Shape.channels) in
  let out_shape f = geti (fun l -> f (Layer.out_shape l)) in
  let out_h = out_shape (fun s -> s.Shape.height) in
  let out_w = out_shape (fun s -> s.Shape.width) in
  let out_c = out_shape (fun s -> s.Shape.channels) in
  let kernel = geti (fun l -> l.Layer.kernel) in
  let stride = geti (fun l -> l.Layer.stride) in
  let padding = geti (fun l -> l.Layer.padding) in
  let is_dw = Array.init n (fun i ->
      (Model.layer model i).Layer.kind = Layer.Depthwise)
  in
  let ext d = geti (fun l -> Layer.loop_extent l d) in
  let ext_f = ext `Filters in
  let ext_c = ext `Channels in
  let ext_h = ext `Height in
  let ext_w = ext `Width in
  let ext_kh = ext `Kernel_h in
  let ext_kw = ext `Kernel_w in
  (* One-OFM-row IFM band (the [rows = 1] case of
     [Builder.Tiling.ifm_rows_for_ofm_rows], inlined — [Cnn] sits below
     [Builder]): [min kernel (in_h + 2 * padding)] rows of IFM. *)
  let band1 =
    Array.init n (fun i ->
        min kernel.(i) (in_h.(i) + (2 * padding.(i))) * in_w.(i) * in_c.(i))
  in
  let prefix a =
    let p = Array.make (n + 1) 0 in
    for i = 0 to n - 1 do
      p.(i + 1) <- p.(i) + a.(i)
    done;
    p
  in
  let log2 = Array.make (n + 1) 0 in
  for l = 2 to n do
    log2.(l) <- log2.(l / 2) + 1
  done;
  let levels = log2.(n) + 1 in
  let sparse_max a =
    let s = Array.make levels [||] in
    s.(0) <- Array.copy a;
    for k = 1 to levels - 1 do
      let half = 1 lsl (k - 1) in
      let width = n - (1 lsl k) + 1 in
      let prev = s.(k - 1) in
      s.(k) <- Array.init (max 0 width) (fun i -> max prev.(i) prev.(i + half))
    done;
    s
  in
  let fms_sparse = sparse_max fms in
  let macs_sparse = sparse_max macs in
  {
    model; uid = Atomic.fetch_and_add next_uid 1;
    n; macs; weights; ifm; ofm; extra; fms;
    in_h; in_w; in_c; out_h; out_w; out_c;
    kernel; stride; padding; is_dw;
    ext_f; ext_c; ext_h; ext_w; ext_kh; ext_kw;
    band1;
    macs_pfx = prefix macs;
    weights_pfx = prefix weights;
    fms_sparse; macs_sparse; log2;
  }

let model t = t.model
let uid t = t.uid
let num_layers t = t.n
let for_model t m = t.model == m

let check t m =
  if not (t.model == m) then
    invalid_arg "Cnn.Table: table built for a different model"

let check_range t ~first ~last =
  if first < 0 || last >= t.n || first > last then
    invalid_arg
      (Printf.sprintf "Cnn.Table: invalid layer range [%d, %d] (%d layers)"
         first last t.n)

(* Per-layer accessors (unchecked: the models already validate ranges). *)
let macs t i = t.macs.(i)
let weight_elements t i = t.weights.(i)
let ifm_elements t i = t.ifm.(i)
let ofm_elements t i = t.ofm.(i)
let extra_resident_elements t i = t.extra.(i)
let fms_elements t i = t.fms.(i)
let in_height t i = t.in_h.(i)
let in_width t i = t.in_w.(i)
let in_channels t i = t.in_c.(i)
let out_height t i = t.out_h.(i)
let out_width t i = t.out_w.(i)
let out_channels t i = t.out_c.(i)
let kernel t i = t.kernel.(i)
let stride t i = t.stride.(i)
let padding t i = t.padding.(i)
let is_depthwise t i = t.is_dw.(i)
let band1_elements t i = t.band1.(i)

let extents t i =
  (t.ext_f.(i), t.ext_c.(i), t.ext_h.(i), t.ext_w.(i), t.ext_kh.(i),
   t.ext_kw.(i))

(* Segment aggregates: O(1) from the precomputed structures.  Integer
   sums are order-independent, so they equal the list folds exactly. *)

let total_macs t = t.macs_pfx.(t.n)
let total_weights t = t.weights_pfx.(t.n)

let macs_range t ~first ~last =
  check_range t ~first ~last;
  t.macs_pfx.(last + 1) - t.macs_pfx.(first)

let weights_range t ~first ~last =
  check_range t ~first ~last;
  t.weights_pfx.(last + 1) - t.weights_pfx.(first)

let max_fms_range t ~first ~last =
  check_range t ~first ~last;
  let len = last - first + 1 in
  let k = t.log2.(len) in
  let row = t.fms_sparse.(k) in
  max row.(first) row.(last + 1 - (1 lsl k))

let max_macs_range t ~first ~last =
  check_range t ~first ~last;
  let len = last - first + 1 in
  let k = t.log2.(len) in
  let row = t.macs_sparse.(k) in
  max row.(first) row.(last + 1 - (1 lsl k))
