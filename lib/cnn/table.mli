(** Flat, precomputed per-layer scalar table.

    One O(n) pass over a model hoists every per-layer quantity the cost
    models read (MACs, weight/FM footprints, shapes, Eq.-1 loop extents,
    streaming bands) into unboxed int arrays, plus prefix sums and a
    sparse range-max table so segment aggregates become O(1) array
    arithmetic instead of O(len) list folds over [Layer.t].

    Every stored value is computed by exactly the integer formulas in
    {!Layer} and {!Model}, so reads through the table are bit-identical
    to the list-fold reference path ({!Model.layers_in_range} and
    friends, which remain the slow/reference implementation). *)

type t

val of_model : Model.t -> t
(** [of_model m] precomputes the table — one [Layer] accessor pass. *)

val model : t -> Model.t
val num_layers : t -> int

val uid : t -> int
(** Process-unique table id, assigned at construction — a cheap memo
    key for caches that want "same table" without hashing the model. *)

val for_model : t -> Model.t -> bool
(** [for_model t m] is true when [t] was built from exactly [m]
    (physical equality — sessions and builds share the model value). *)

val check : t -> Model.t -> unit
(** @raise Invalid_argument unless [for_model t m]. *)

(** {1 Per-layer scalars}

    Unchecked array reads — callers validate ranges once (the models
    already do). *)

val macs : t -> int -> int
val weight_elements : t -> int -> int
val ifm_elements : t -> int -> int
val ofm_elements : t -> int -> int
val extra_resident_elements : t -> int -> int
val fms_elements : t -> int -> int
val in_height : t -> int -> int
val in_width : t -> int -> int
val in_channels : t -> int -> int
val out_height : t -> int -> int
val out_width : t -> int -> int
val out_channels : t -> int -> int
val kernel : t -> int -> int
val stride : t -> int -> int
val padding : t -> int -> int
val is_depthwise : t -> int -> bool

val band1_elements : t -> int -> int
(** IFM elements of the one-OFM-row streaming band:
    [min kernel (in_h + 2 padding) * in_w * in_c] — the [rows = 1] case
    of [Builder.Tiling.ifm_rows_for_ofm_rows] times the band area. *)

val extents : t -> int -> int * int * int * int * int * int
(** The six Eq.-1 loop extents, in [Parallelism.all_dims] order:
    (filters, channels, height, width, kernel_h, kernel_w). *)

(** {1 Segment aggregates} — O(1) each. *)

val total_macs : t -> int
val total_weights : t -> int

val macs_range : t -> first:int -> last:int -> int
(** Equals [Model.macs_in_range] (prefix-sum difference).
    @raise Invalid_argument on an invalid range. *)

val weights_range : t -> first:int -> last:int -> int
(** Equals [Model.weights_in_range].
    @raise Invalid_argument on an invalid range. *)

val max_fms_range : t -> first:int -> last:int -> int
(** Equals [Model.max_fms_elements] (sparse-table range max).
    @raise Invalid_argument on an invalid range. *)

val max_macs_range : t -> first:int -> last:int -> int
(** Largest single-layer MAC count in [first, last] (sparse-table range
    max) — e.g. the widest layer a segment of the range must contain,
    which anchors the suffix floors of [Dse.Bounds].
    @raise Invalid_argument on an invalid range. *)
