(* Tight admissible lower bounds on custom-design segment times, built
   from the Cnn.Table prefix aggregates.

   Everything here bounds the exact model from below (cycles/seconds)
   or above (throughput).  The floors rest on four facts about any
   design the builder produces from a custom spec under the default
   (proportional) PE allocation:

   - per-layer quantization floor: an engine with at most [p] PEs needs
     at least [Parallelism_select.cycle_floor ~pes:p] cycles on a layer
     — the minimum of Eq. 1 over every 3-D parallelism of degree <= p;
   - PE-share ceiling: [Pe_allocation.distribute] gives an engine with
     workload [m] out of [total] at most
     [share_upper_bound ~budget:dsps ~engines:ces ~workload:m ~total]
     PEs, and never more than [dsps - ces + 1] (every other engine
     keeps its floor PE).  Both caps are nondecreasing in [m]; the
     real-valued relaxation of the share cap additionally makes
     [m / cap m] monotone (see [alloc_floor_f] vs [alloc_floor_int]);
   - work conservation: an engine's busy cycles times its PE count is
     at least its MAC count (Eq. 1 again), so a block's interval is at
     least [macs / pes] and the whole design's interval is at least
     [total_macs / dsps] (mediant inequality over the blocks);
   - memory floor: every weight byte and the network's input and
     output feature maps cross the off-chip port at least once per
     image, whatever the buffer plan.

   Every floor query is scaled by [1 - eps] before it is returned.  The
   slack is needed because the exact evaluator does not compute a
   block's interval as [float (sum cycles) /. clock]: a single-CE
   block's interval is a per-layer float sum of
   [max compute_s memory_s] terms, which can round an ulp below the
   floor's integer-sum-then-divide — an unguarded floor would then
   exceed the exact value it claims to bound.  The chain's true
   relative rounding error is bounded by a few hundred ulps (~1e-14);
   [eps = 1e-9] dominates it by five orders of magnitude while costing
   under a thousandth of a cycle per million.  The slack only ever
   RELAXES a floor, so it cannot break admissibility — it merely leaves
   a 1e-9-wide score band un-prunable. *)

let eps = 1e-9

(* Applied to every returned floor; see the header. *)
let guard x = x *. (1.0 -. eps)

type t = {
  table : Cnn.Table.t;
  board : Platform.Board.t;
  clock : float;
  peak : float;                 (* dsps * clock, MACs/s *)
  mem_floor_s : float;          (* (weights + net input + output) / bw *)
  dsps : int;
  total_macs : int;
  lock : Mutex.t;
  mutable contexts : (int * ctx) list;
}

(* Per-CE-count context: the quantization floors depend on the PE cap
   [dsps - ces + 1] and the head floors on the per-layer share ceiling,
   both functions of [ces] alone given the table and board. *)
and ctx = {
  cx_owner : t;
  cx_cap : int;                 (* dsps - ces + 1, at least 1 *)
  cx_spare : int;               (* dsps - ces, at least 0 *)
  cx_levels : int array;
      (* descending PE levels, a geometric grid from the cap down to 1:
         a segment's quantization floor is read at the smallest level
         at least its share ceiling (floors only weaken with more PEs,
         so rounding the ceiling up a level stays admissible) *)
  cx_qlvl_pfx : int array array;
      (* per level, length n+1: prefix sums of cycle_floor at that
         level's PE count *)
  cx_qlvl_sfxmax : int array array;
      (* per level, length n+1: max leveled floor over layers >= i *)
  cx_head_pfxmax : float array;
      (* length n+1: max over layers < i of the layer's floor at its
         own head-engine share ceiling *)
  cx_head_ceil_pfx : int array;
      (* length n+1: summed per-layer integer share ceilings of layers
         < i — caps the head's total PE count tighter than the
         real-valued formula *)
}

let create table board =
  let n = Cnn.Table.num_layers table in
  let bpe = board.Platform.Board.bytes_per_element in
  let mem_bytes =
    (Cnn.Table.total_weights table + Cnn.Table.ifm_elements table 0
    + Cnn.Table.ofm_elements table (n - 1))
    * bpe
  in
  {
    table;
    board;
    clock = board.Platform.Board.clock_hz;
    peak =
      float_of_int board.Platform.Board.dsps *. board.Platform.Board.clock_hz;
    mem_floor_s = Platform.Board.bytes_to_seconds board mem_bytes;
    dsps = board.Platform.Board.dsps;
    total_macs = Cnn.Table.total_macs table;
    lock = Mutex.create ();
    contexts = [];
  }

let table t = t.table
let clock_hz t = t.clock
let mem_floor_s t = t.mem_floor_s

let global_ii_cycles t =
  if t.dsps > 0 then float_of_int t.total_macs /. float_of_int t.dsps else 0.0

let make_ctx t ces =
  let n = Cnn.Table.num_layers t.table in
  let cap = max 1 (t.dsps - ces + 1) in
  let spare = max 0 (t.dsps - ces) in
  (* Geometric PE grid (ratio ~1.1) from the cap down to a single PE.
     Rounding a segment's share ceiling up to the next level costs at
     most one grid step of tightness; evaluating each layer's floor at
     every level is what makes the leveled queries O(1). *)
  let levels =
    let rec go acc v = if v <= 1 then List.rev (1 :: acc) else go (v :: acc) (min (v - 1) (v * 10 / 11)) in
    Array.of_list (if cap <= 1 then [ 1 ] else go [] cap)
  in
  let nl = Array.length levels in
  let qlvl_pfx = Array.make_matrix nl (n + 1) 0 in
  let qlvl_sfxmax = Array.make_matrix nl (n + 1) 0 in
  for k = 0 to nl - 1 do
    let q =
      Array.init n (fun i ->
          Builder.Parallelism_select.cycle_floor ~pes:levels.(k) t.table i)
    in
    for i = 0 to n - 1 do
      qlvl_pfx.(k).(i + 1) <- qlvl_pfx.(k).(i) + q.(i)
    done;
    for i = n - 1 downto 0 do
      qlvl_sfxmax.(k).(i) <- max qlvl_sfxmax.(k).(i + 1) q.(i)
    done
  done;
  let head_pfxmax = Array.make (n + 1) 0.0 in
  let head_ceil_pfx = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    (* A head engine runs exactly one layer, so its workload in the
       builder's distribute call is that layer's MACs: the share
       ceiling is per-layer exact. *)
    let p =
      if t.dsps >= ces then
        Builder.Pe_allocation.share_upper_bound ~budget:t.dsps ~engines:ces
          ~workload:(Cnn.Table.macs t.table i) ~total:t.total_macs
      else 1
    in
    let p = max 1 p in
    let fl = Builder.Parallelism_select.cycle_floor ~pes:p t.table i in
    head_pfxmax.(i + 1) <- Float.max head_pfxmax.(i) (float_of_int fl);
    head_ceil_pfx.(i + 1) <- head_ceil_pfx.(i) + p
  done;
  {
    cx_owner = t;
    cx_cap = cap;
    cx_spare = spare;
    cx_levels = levels;
    cx_qlvl_pfx = qlvl_pfx;
    cx_qlvl_sfxmax = qlvl_sfxmax;
    cx_head_pfxmax = head_pfxmax;
    cx_head_ceil_pfx = head_ceil_pfx;
  }

let context t ~ces =
  if ces < 2 then invalid_arg "Bounds.context: ces < 2";
  let existing =
    Mutex.lock t.lock;
    let r = List.assoc_opt ces t.contexts in
    Mutex.unlock t.lock;
    r
  in
  match existing with
  | Some c -> c
  | None ->
    let c = make_ctx t ces in
    Mutex.lock t.lock;
    let r =
      match List.assoc_opt ces t.contexts with
      | Some c' -> c'
      | None ->
        t.contexts <- (ces, c) :: t.contexts;
        c
    in
    Mutex.unlock t.lock;
    r

(* Real-valued allocation floor: cycles of a single-CE segment with
   [m] MACs are at least [m / min (cap, 2 + spare * m / total)] — the
   engine's PE count is bounded by both caps, and the real-valued
   denominator dominates the integer share ceiling.  Monotone in [m]
   (numerator and the min of two nondecreasing denominators).  The
   [1 - eps] scale absorbs the divisions' float rounding. *)
let alloc_floor_f ctx mf =
  if mf <= 0.0 then 0.0
  else begin
    let t = ctx.cx_owner in
    let cap = float_of_int ctx.cx_cap in
    let denom =
      if t.total_macs <= 0 then cap
      else
        Float.min cap
          (2.0
          +. float_of_int ctx.cx_spare *. mf /. float_of_int t.total_macs)
    in
    mf /. denom
  end

(* Integer share ceiling of a single-CE segment holding [m] MACs —
   [Pe_allocation.share_upper_bound] without its argument checks.
   Nondecreasing in [m]. *)
let seg_ceiling ctx m =
  let t = ctx.cx_owner in
  if t.total_macs <= 0 || m >= t.total_macs then ctx.cx_cap
  else min ctx.cx_cap (2 + (ctx.cx_spare * m / t.total_macs))

(* Allocation floor at the integer share ceiling — tighter than the
   real-valued [alloc_floor_f] by up to one PE's worth, and subadditive
   ([sum m_j / g (sum m_j) <= sum (m_j / g m_j)] needs only [g]
   nondecreasing).  NOT monotone in [m]: [m / g m] drops where the
   integer ceiling steps up ([m / (p + 1)] can undercut [(m - 1) / p]),
   so the monotone core and the suffix widest-layer term — whose
   admissibility arguments compare floors at different MAC counts —
   must keep [alloc_floor_f]. *)
let alloc_floor_int ctx m =
  if m <= 0 then 0.0
  else float_of_int m /. float_of_int (seg_ceiling ctx m)

(* Smallest grid level at least [c] PEs: rightmost index of the
   descending [cx_levels] whose value is >= c. *)
let level_index ctx c =
  let levels = ctx.cx_levels in
  let lo = ref 0 and hi = ref (Array.length levels - 1) in
  if levels.(!hi) >= c then !hi
  else begin
    (* invariant: levels.(lo) >= c > levels.(hi) *)
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if levels.(mid) >= c then lo := mid else hi := mid
    done;
    !lo
  end

(* Summed leveled quantization floors of layers [first, last] for an
   engine holding at most [m_ceiling_of] MACs' proportional share. *)
let leveled_qsum ctx ~first ~last ~m_ceiling_of =
  let k = level_index ctx (seg_ceiling ctx m_ceiling_of) in
  ctx.cx_qlvl_pfx.(k).(last + 1) - ctx.cx_qlvl_pfx.(k).(first)

let segment_ii_floor ctx ~first ~last =
  let t = ctx.cx_owner in
  let m = Cnn.Table.macs_range t.table ~first ~last in
  let q = float_of_int (leveled_qsum ctx ~first ~last ~m_ceiling_of:m) in
  guard (Float.max q (alloc_floor_int ctx m))

let segment_ii_floor_monotone ctx ~first ~last =
  let t = ctx.cx_owner in
  let m = Cnn.Table.macs_range t.table ~first ~last in
  let q = float_of_int (ctx.cx_qlvl_pfx.(0).(last + 1) - ctx.cx_qlvl_pfx.(0).(first)) in
  guard (Float.max q (alloc_floor_f ctx (float_of_int m)))

let head_ii_floor ctx ~f =
  if f <= 0 then 0.0
  else begin
    let t = ctx.cx_owner in
    let mh = float_of_int (Cnn.Table.macs_range t.table ~first:0 ~last:(f - 1)) in
    (* The bottleneck engine is at least the largest per-layer floor,
       and at least the head's mean: summed head PE counts are at most
       f + spare (every other engine keeps a PE) and at most the summed
       per-layer integer share ceilings. *)
    let pes = min (f + ctx.cx_spare) ctx.cx_head_ceil_pfx.(f) in
    let mean = if pes > 0 then mh /. float_of_int pes else 0.0 in
    guard (Float.max ctx.cx_head_pfxmax.(f) mean)
  end

let suffix_ii_floor ctx ~first ~segments =
  let t = ctx.cx_owner in
  let n = Cnn.Table.num_layers t.table in
  if first >= n || segments < 1 then 0.0
  else begin
    let msuf = Cnn.Table.macs_range t.table ~first ~last:(n - 1) in
    let mmax = Cnn.Table.max_macs_range t.table ~first ~last:(n - 1) in
    (* Every tail segment holds at most the whole suffix's MACs, so the
       suffix-level grid row is admissible for each of them. *)
    let k = level_index ctx (seg_ceiling ctx msuf) in
    let qsum = ctx.cx_qlvl_pfx.(k).(n) - ctx.cx_qlvl_pfx.(k).(first) in
    let sm = float_of_int segments in
    (* Four ways the slowest of the [segments] tail segments is pinned
       from below: the segment holding any given layer pays its leveled
       floor; the one holding the widest layer pays its allocation
       floor; and the slowest is at least the mean of both floor
       families. *)
    guard
      (Float.max
         (float_of_int ctx.cx_qlvl_sfxmax.(k).(first))
         (Float.max
            (* [alloc_floor_f], not the tighter integer floor: the
               segment holding the widest layer has [m_j >= mmax], and
               only the real floor is monotone across that
               comparison. *)
            (alloc_floor_f ctx (float_of_int mmax))
            (Float.max
               (float_of_int qsum /. sm)
               (alloc_floor_f ctx (float_of_int msuf /. sm)))))
  end

let suffix_latency_floor ctx ~first =
  let t = ctx.cx_owner in
  let n = Cnn.Table.num_layers t.table in
  if first >= n then 0.0
  else begin
    let msuf_i = Cnn.Table.macs_range t.table ~first ~last:(n - 1) in
    let qsum =
      float_of_int (leveled_qsum ctx ~first ~last:(n - 1) ~m_ceiling_of:msuf_i)
    in
    (* Summed segment floors: the quantization floors add up, and the
       allocation floor is subadditive (nondecreasing integer share
       ceiling), so its value on the whole suffix bounds any split's
       sum. *)
    guard (Float.max qsum (alloc_floor_int ctx msuf_i))
  end

(* ------------------------------------------- composed partial bounds *)

(* The conversion chain below — [_ /. clock], [Float.max], [1.0 /. _] —
   is the exact model's own ([Platform.Board.cycles_to_seconds], the
   block fold in [Mccm.Evaluate]); every op is monotone, so a floor
   cycle count that never exceeds the exact block's yields a bound that
   never undercuts (throughput) the exact score, bit-for-bit, with no
   slack factor. *)

let partial_throughput_bound ctx ~worst_cycles ~first ~segments =
  let t = ctx.cx_owner in
  let cyc =
    Float.max
      (Float.max worst_cycles (suffix_ii_floor ctx ~first ~segments))
      (global_ii_cycles t *. (1.0 -. eps))
  in
  let ii = Float.max (cyc /. t.clock) t.mem_floor_s in
  if ii <= 0.0 then infinity else 1.0 /. ii

let partial_latency_bound ctx ~latency_cycles ~sum_sqrt_macs ~first =
  let t = ctx.cx_owner in
  let n = Cnn.Table.num_layers t.table in
  let cyc = latency_cycles +. suffix_latency_floor ctx ~first in
  let sq =
    sum_sqrt_macs
    +.
    if first < n then
      sqrt (float_of_int (Cnn.Table.macs_range t.table ~first ~last:(n - 1)))
    else 0.0
  in
  (* Latency floors cross a many-term float sum, so one global [1 - eps]
     scale covers the whole chain's rounding. *)
  Float.max
    (Float.max (cyc /. t.clock) (sq *. sq /. t.peak))
    t.mem_floor_s
  *. (1.0 -. eps)

(* ---------------------------------------------- whole-spec bounds *)

(* Tail segment [first, last] inclusive, as (first, last) pairs. *)
let tail_ranges t spec =
  let n = Cnn.Table.num_layers t.table in
  let f = spec.Arch.Custom.pipelined_layers in
  let starts = f :: spec.Arch.Custom.tail_boundaries in
  let ends =
    List.map (fun b -> b - 1) spec.Arch.Custom.tail_boundaries @ [ n - 1 ]
  in
  List.combine starts ends

let compute_ii_floor_cycles t spec =
  let ctx = context t ~ces:(Arch.Custom.total_ces spec) in
  let f = spec.Arch.Custom.pipelined_layers in
  let worst =
    List.fold_left
      (fun acc (first, last) ->
        Float.max acc (segment_ii_floor ctx ~first ~last))
      (head_ii_floor ctx ~f) (tail_ranges t spec)
  in
  Float.max worst (global_ii_cycles t *. (1.0 -. eps))

let throughput_upper_bound t spec =
  let cyc = compute_ii_floor_cycles t spec in
  let ii = Float.max (cyc /. t.clock) t.mem_floor_s in
  if ii <= 0.0 then infinity else 1.0 /. ii

(* ---------------------------------------------- flat-row bounds *)

(* The scan hot loop reads specs straight out of a [Space.Flat] buffer:
   same floors, same accumulation order as the list-based bounds above
   (so the results are bit-identical), but no per-candidate allocation
   — the row is walked in place and the caller hoists the [ctx] lookup
   (one mutex round per scan, not per spec). *)

let compute_ii_floor_cycles_flat ctx buf ~width i =
  let t = ctx.cx_owner in
  let n = Cnn.Table.num_layers t.table in
  let f = Space.Flat.pipelined buf ~width i in
  let worst = ref (head_ii_floor ctx ~f) in
  let first = ref f in
  let k = ref 0 in
  let more = ref true in
  while !more && !k <= width - 2 do
    let b = Space.Flat.boundary buf ~width i ~k:!k in
    if b = 0 then more := false
    else begin
      worst := Float.max !worst (segment_ii_floor ctx ~first:!first ~last:(b - 1));
      first := b;
      incr k
    end
  done;
  worst := Float.max !worst (segment_ii_floor ctx ~first:!first ~last:(n - 1));
  Float.max !worst (global_ii_cycles t *. (1.0 -. eps))

let throughput_upper_bound_flat ctx buf ~width i =
  let t = ctx.cx_owner in
  let cyc = compute_ii_floor_cycles_flat ctx buf ~width i in
  let ii = Float.max (cyc /. t.clock) t.mem_floor_s in
  if ii <= 0.0 then infinity else 1.0 /. ii

let latency_lower_bound_flat ctx buf ~width i =
  let t = ctx.cx_owner in
  let n = Cnn.Table.num_layers t.table in
  let f = Space.Flat.pipelined buf ~width i in
  let compute = ref (head_ii_floor ctx ~f) in
  let sq =
    ref (sqrt (float_of_int (Cnn.Table.macs_range t.table ~first:0 ~last:(f - 1))))
  in
  let first = ref f in
  let k = ref 0 in
  let more = ref true in
  while !more && !k <= width - 2 do
    let b = Space.Flat.boundary buf ~width i ~k:!k in
    if b = 0 then more := false
    else begin
      compute := !compute +. segment_ii_floor ctx ~first:!first ~last:(b - 1);
      sq :=
        !sq
        +. sqrt
             (float_of_int
                (Cnn.Table.macs_range t.table ~first:!first ~last:(b - 1)));
      first := b;
      incr k
    end
  done;
  compute := !compute +. segment_ii_floor ctx ~first:!first ~last:(n - 1);
  sq :=
    !sq
    +. sqrt
         (float_of_int (Cnn.Table.macs_range t.table ~first:!first ~last:(n - 1)));
  Float.max
    (Float.max (!compute /. t.clock) (!sq *. !sq /. t.peak))
    t.mem_floor_s
  *. (1.0 -. eps)

let latency_lower_bound t spec =
  let ctx = context t ~ces:(Arch.Custom.total_ces spec) in
  let f = spec.Arch.Custom.pipelined_layers in
  let tails = tail_ranges t spec in
  let compute_cyc =
    List.fold_left
      (fun acc (first, last) -> acc +. segment_ii_floor ctx ~first ~last)
      (head_ii_floor ctx ~f) tails
  in
  let sum_sqrt =
    List.fold_left
      (fun acc (first, last) ->
        acc +. sqrt (float_of_int (Cnn.Table.macs_range t.table ~first ~last)))
      (sqrt (float_of_int (Cnn.Table.macs_range t.table ~first:0 ~last:(f - 1))))
      tails
  in
  Float.max
    (Float.max (compute_cyc /. t.clock) (sum_sqrt *. sum_sqrt /. t.peak))
    t.mem_floor_s
  *. (1.0 -. eps)
