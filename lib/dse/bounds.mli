(** Tight admissible segment bounds for custom-design pruning.

    A custom spec is a pipelined head (one layer per engine) followed
    by single-CE tail segments, all coarse-grained pipelined, so its
    exact interval is the slowest block and its exact latency the sum
    of blocks.  This module derives per-segment lower bounds on those
    block times straight from the {!Cnn.Table} prefix aggregates — O(1)
    per query after a per-(table, board, CE count) precomputation — by
    combining:

    - a {e quantization floor}: each layer needs at least
      [Builder.Parallelism_select.cycle_floor ~pes] cycles on any
      engine with at most [pes] PEs, evaluated at the PE cap
      [dsps - ces + 1] (segments) or the layer's own proportional share
      ceiling [Builder.Pe_allocation.share_upper_bound] (head engines,
      whose builder workload is exactly one layer);
    - an {e allocation floor}: a segment with [m] MACs runs on an
      engine holding at most [min (cap, 2 + spare * m / total)] PEs
      (integer division — the builder's own share ceiling, nondecreasing
      in [m]), so it needs at least [m] over that many cycles;
    - the {e mediant floor} [total_macs / dsps] on the whole interval
      (work conservation over all engines);
    - the {e memory floor}: weights plus network input and output
      cross the off-chip port at least once per image.

    {b Admissibility contract.}  For every design the builder produces
    under the default build options (proportional PE allocation; any
    parallelism or buffer mode), each query below is at most (cycles /
    latency) or at least (throughput) the exact evaluated value, so
    pruning on these bounds never changes a best-first or scanning
    search's winner.  The [`Balanced] PE-allocation ablation can exceed
    an engine's proportional share; bounds are not admissible for it.
    The QCheck2 suite in [test/test_bounds.ml] exercises every clause
    of this contract over random model/board/spec draws. *)

type t
(** Bound context for one (table, board) pair.  Per-CE-count floors are
    derived lazily and memoised; the memo is mutex-protected, so a
    context may be shared across domains (warm the CE counts you need
    before forking to keep the parallel phase read-only). *)

type ctx
(** Per-CE-count floor tables (PE cap, quantization prefix sums, head
    share ceilings) — the unit of {!segment_ii_floor} and friends. *)

val create : Cnn.Table.t -> Platform.Board.t -> t
(** O(1); the per-CE-count work happens on first {!context} use
    (O(n sqrt extents) per CE count). *)

val context : t -> ces:int -> ctx
(** The floor tables for designs with exactly [ces] engines.
    @raise Invalid_argument if [ces < 2]. *)

val table : t -> Cnn.Table.t
val clock_hz : t -> float

val mem_floor_s : t -> float
(** Off-chip traffic floor in seconds per image: (weights + network
    input + network output) bytes over bandwidth.  Lower-bounds the
    exact [Mccm.Evaluate] [ii_memory_s] of every design. *)

val global_ii_cycles : t -> float
(** [total_macs / dsps] — no schedule beats work conservation. *)

(** {1 O(1) per-segment floors}

    All in cycles.  Each is a lower bound on the corresponding exact
    block quantity of any design containing that block (see the
    admissibility contract above). *)

val head_ii_floor : ctx -> f:int -> float
(** Lower bound on the interval (bottleneck-engine busy time) of the
    pipelined head over layers [0, f): the largest per-layer floor at
    each layer's share ceiling, and the head mean over its summed PE
    ceiling.  Nondecreasing in [f]. *)

val segment_ii_floor : ctx -> first:int -> last:int -> float
(** Lower bound on a single-CE tail segment's latency (= its interval):
    summed quantization floors at the smallest grid level covering the
    segment's share ceiling, and the allocation floor of its MAC total.
    Always at least {!segment_ii_floor_monotone}.  Monotone under
    extension while the share level is unchanged; a level jump may
    relax the quantization term by up to one grid step (~10%), never
    below the monotone core. *)

val segment_ii_floor_monotone : ctx -> first:int -> last:int -> float
(** The provably monotone core of {!segment_ii_floor}: cap-level
    quantization sum plus the allocation floor.  Growing [last] or
    shrinking [first] never lowers it (the quantization term gains
    nonnegative summands; the allocation floor is nondecreasing in the
    MAC total). *)

val suffix_ii_floor : ctx -> first:int -> segments:int -> float
(** Lower bound on the {e slowest} of [segments] tail segments
    partitioning layers [first ..] — however the partition is chosen:
    the largest cap-level layer floor in the suffix, the allocation
    floor of its widest layer, and the means (summed floors, suffix
    MACs) over [segments].  At most [max segment_ii_floor] of every
    concrete split, which is what makes branch-and-bound nodes
    prunable before their boundaries are materialised. *)

val suffix_latency_floor : ctx -> first:int -> float
(** Lower bound on the {e summed} latency of the tail segments over
    layers [first ..], independent of how many: summed cap-level floors
    and the (subadditive) allocation floor of the whole suffix. *)

(** {1 Composed bounds} *)

val partial_throughput_bound :
  ctx -> worst_cycles:float -> first:int -> segments:int -> float
(** Optimistic throughput (images/s, admissible upper bound) of every
    completion of a partial spec whose fixed blocks' floors max to
    [worst_cycles] and whose remaining layers [first ..] must form
    [segments] segments.  Composes {!suffix_ii_floor} with the mediant
    and memory floors.  Every underlying floor carries a [1 - 1e-9]
    rounding guard (the exact evaluator's per-layer float sums can
    round below an unguarded integer floor), so the bound can exceed
    the exact best completion by at most one part in 1e9 — admissible
    always, and the searches break exact score ties by enumeration
    rank. *)

val partial_latency_bound :
  ctx -> latency_cycles:float -> sum_sqrt_macs:float -> first:int -> float
(** Optimistic latency (seconds, admissible lower bound) of every
    completion: fixed-block floor sum [latency_cycles] plus
    {!suffix_latency_floor}, the Cauchy-Schwarz PE-allocation floor
    ((sum of block sqrt-MACs)^2 over board peak — [sqrt] of the suffix
    MACs lower-bounds any split's contribution), and the memory floor,
    with a [1 - 1e-9] rounding slack. *)

val compute_ii_floor_cycles : t -> Arch.Custom.spec -> float
(** The compute side of a whole spec's interval floor, in cycles: max
    of head/segment floors and {!global_ii_cycles}.  Divided by
    {!clock_hz}, lower-bounds the exact [Mccm.Evaluate] [ii_compute_s]
    — the bound-vs-exact hook the property suite checks. *)

val throughput_upper_bound : t -> Arch.Custom.spec -> float
(** Admissible (never below any achievable value) throughput bound for
    a complete spec, images/s. *)

val latency_lower_bound : t -> Arch.Custom.spec -> float
(** Admissible (never above any achievable value) latency bound for a
    complete spec, seconds. *)

(** {1 Flat-row bounds}

    The same whole-spec bounds evaluated straight off a
    {!Space.Flat.buf} row: identical floors in identical accumulation
    order, so for a row encoding spec [p] under the ctx for [p]'s CE
    count they return bit-for-bit the values of
    {!throughput_upper_bound} / {!latency_lower_bound} / {!compute_ii_floor_cycles}
    — but with no per-candidate allocation and the [ctx] lookup
    hoisted out of the scan loop (pass [context t ~ces] once). *)

val compute_ii_floor_cycles_flat :
  ctx -> Space.Flat.buf -> width:int -> int -> float

val throughput_upper_bound_flat :
  ctx -> Space.Flat.buf -> width:int -> int -> float

val latency_lower_bound_flat :
  ctx -> Space.Flat.buf -> width:int -> int -> float
