(* Warm per-worker evaluation-session crews.

   Every Domains-parallel consumer in the DSE layer used to pay the
   same three costs on every parallel call: a [Domain.spawn] per chunk,
   an [Eval_session.fork] per chunk, and a cold start inside each fork
   (empty plan/segment tables, unprimed builder memos).  A crew
   amortises all three: it runs on a persistent {!Util.Parallel.Pool}
   (spawn once), forks exactly one session per pool worker (the caller
   keeps the parent as worker 0), and forks only after an optional
   sequential warm-up pass has populated the parent's tables — so every
   fork starts warm.  Chunk-to-worker assignment is racy, but each
   worker's session is a semantically invisible cache: as long as the
   mapped function's output depends only on its [(lo, hi)] range the
   overall result is deterministic, chunk results merging in order. *)

let h_warm = Mccm_obs.Metric.histogram "dse.parallel.warmup_s"
let h_fork = Mccm_obs.Metric.histogram "dse.parallel.fork_s"
let h_chunk = Mccm_obs.Metric.histogram "dse.parallel.chunk_s"
let h_absorb = Mccm_obs.Metric.histogram "dse.parallel.absorb_s"
let c_rounds = Mccm_obs.Metric.counter "dse.parallel.rounds"
let c_chunks = Mccm_obs.Metric.counter "dse.parallel.chunks"

let secs t0 t1 = float_of_int (t1 - t0) *. 1e-9

type t = {
  pool : Util.Parallel.Pool.t option; (* None: strictly sequential *)
  owned : bool;                       (* shutdown on finish? *)
  session : Mccm.Eval_session.t;
  mutable forks : Mccm.Eval_session.t array;
      (* [||] until first parallel round; then [forks.(0) == session]
         and [forks.(w)] is worker [w]'s private fork *)
}

let create ?pool ?clamp ?(domains = 1) session =
  match pool with
  | Some p -> { pool = Some p; owned = false; session; forks = [||] }
  | None ->
    let d = Util.Parallel.effective ?clamp ~domains ~n:max_int () in
    if d = 1 then { pool = None; owned = false; session; forks = [||] }
    else
      {
        pool = Some (Util.Parallel.Pool.create ~clamp:false ~domains:d ());
        owned = true;
        session;
        forks = [||];
      }

let size t =
  match t.pool with None -> 1 | Some p -> Util.Parallel.Pool.size p

let session t = t.session

let warmed t = Array.length t.forks > 0

let warmup t f =
  (* Only worth running when the crew will fork — and only before it
     has: a later warm-up could not reach already-forked sessions. *)
  if size t > 1 && not (warmed t) then begin
    let t0 = Mccm_obs.Clock.now_ns () in
    f ();
    Mccm_obs.Metric.observe h_warm (secs t0 (Mccm_obs.Clock.now_ns ()))
  end

let ensure_forks t =
  if not (warmed t) then begin
    let t0 = Mccm_obs.Clock.now_ns () in
    t.forks <-
      Array.init (size t) (fun w ->
          if w = 0 then t.session else Mccm.Eval_session.fork t.session);
    Mccm_obs.Metric.observe h_fork (secs t0 (Mccm_obs.Clock.now_ns ()))
  end;
  t.forks

let map t ?chunk_hint ~n f =
  if n = 0 then []
  else
    match t.pool with
    | None -> [ f ~session:t.session ~lo:0 ~hi:n ]
    | Some p when Util.Parallel.Pool.size p = 1 ->
      [ f ~session:t.session ~lo:0 ~hi:n ]
    | Some p ->
      let forks = ensure_forks t in
      let res =
        Util.Parallel.Pool.map p ?chunk_hint ~n
          (fun ~worker ~chunk:_ ~lo ~hi ->
            let c0 = Mccm_obs.Clock.now_ns () in
            let r = f ~session:forks.(worker) ~lo ~hi in
            Mccm_obs.Metric.observe h_chunk
              (secs c0 (Mccm_obs.Clock.now_ns ()));
            r)
      in
      Mccm_obs.Metric.incr c_rounds;
      Mccm_obs.Metric.add c_chunks (List.length res);
      res

let finish t =
  let nf = Array.length t.forks in
  if nf > 1 then begin
    let t0 = Mccm_obs.Clock.now_ns () in
    for w = 1 to nf - 1 do
      Mccm.Eval_session.absorb ~into:t.session t.forks.(w)
    done;
    Mccm_obs.Metric.observe h_absorb (secs t0 (Mccm_obs.Clock.now_ns ()))
  end;
  t.forks <- [||];
  if t.owned then
    match t.pool with
    | Some p -> Util.Parallel.Pool.shutdown p
    | None -> ()

let with_crew ?pool ?clamp ?domains session f =
  let c = create ?pool ?clamp ?domains session in
  Fun.protect ~finally:(fun () -> finish c) (fun () -> f c)
