(** Warm per-worker evaluation-session crews for Domains-parallel DSE.

    The pre-pool parallel paths paid a [Domain.spawn], an
    [Mccm.Eval_session.fork] and a cold fork start {e per chunk}.  A
    crew binds one parent session to a persistent
    {!Util.Parallel.Pool}: domains spawn once (or are borrowed from a
    caller-supplied pool), exactly one session fork is made per pool
    worker — the caller keeps the parent itself as worker 0 — and the
    forks are cut only after an optional sequential {!warmup} pass has
    populated the parent's plan/segment tables, so every worker starts
    warm.  {!finish} absorbs the forks back into the parent, which
    therefore keeps learning across crews.

    {b Determinism.}  {!map}'s chunk-to-worker assignment is racy, but
    a worker's session is a semantically invisible (bit-exact) cache:
    if the mapped function's output depends only on its [(lo, hi)]
    range, the in-order merge makes the overall result independent of
    the crew size, the chunking, and the schedule.

    Rounds, chunk counts and per-phase durations (warm-up, fork, chunk
    execution, absorb) are recorded under the [dse.parallel.*] metric
    names when {!Mccm_obs} stats are on. *)

type t

val create :
  ?pool:Util.Parallel.Pool.t ->
  ?clamp:bool ->
  ?domains:int ->
  Mccm.Eval_session.t ->
  t
(** [create ~domains session] builds a crew around [session].  With
    [pool] the crew borrows it (its size rules; it is not shut down by
    {!finish}); otherwise [domains] (default 1, clamped to
    [Domain.recommended_domain_count] unless [~clamp:false]) sizes an
    owned pool, or no pool at all when the effective count is 1. *)

val size : t -> int
(** Workers the crew can use, caller included; [>= 1]. *)

val session : t -> Mccm.Eval_session.t
(** The parent session. *)

val warmed : t -> bool
(** Whether the per-worker forks have been cut. *)

val warmup : t -> (unit -> unit) -> unit
(** [warmup t f] runs [f ()] sequentially on the caller — intended to
    evaluate a small strided sample through the parent session — but
    only when the crew will actually fork ([size > 1]) and has not yet
    ({!warmed} is false).  No-op otherwise. *)

val map :
  t ->
  ?chunk_hint:int ->
  n:int ->
  (session:Mccm.Eval_session.t -> lo:int -> hi:int -> 'a) ->
  'a list
(** [map t ~n f] evaluates [f] over contiguous chunks of [0, n) —
    {!Util.Parallel.Pool.map} chunking, [chunk_hint] default 256 —
    each call on its worker's fork (cut on first use), and returns the
    chunk results in order.  Sequential crews run one inline call on
    the parent.  [f]'s output must depend only on [(lo, hi)]. *)

val finish : t -> unit
(** Absorb the forks back into the parent session and, if the crew
    owns its pool, shut it down.  The crew may be reused afterwards
    (fresh forks are cut on the next {!map}). *)

val with_crew :
  ?pool:Util.Parallel.Pool.t ->
  ?clamp:bool ->
  ?domains:int ->
  Mccm.Eval_session.t ->
  (t -> 'a) ->
  'a
(** [create] + guaranteed {!finish}. *)
