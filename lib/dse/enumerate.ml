(* Exhaustive enumeration and hill-climbing over custom specs. *)

let h_neighbourhood = Mccm_obs.Metric.histogram "dse.neighbourhood_size"
let c_steps = Mccm_obs.Metric.counter "dse.local_search.steps"
let c_exhaustive = Mccm_obs.Metric.counter "dse.exhaustive.specs"
let c_evaluated = Mccm_obs.Metric.counter "dse.exhaustive.evaluated"
let c_pruned = Mccm_obs.Metric.counter "dse.exhaustive.pruned"
let c_ls_pruned = Mccm_obs.Metric.counter "dse.local_search.pruned"
let g_best_objective = Mccm_obs.Metric.gauge "dse.best_objective"

let enumerate_specs ~num_layers ~ces ~max_specs =
  if ces < 2 then invalid_arg "Enumerate.enumerate_specs: ces < 2";
  let out = ref [] in
  let count = ref 0 in
  let emit spec =
    if !count < max_specs then begin
      incr count;
      out := spec :: !out
    end
  in
  (* Choose boundaries of [s - 1] cut points in (f, num_layers) in
     lexicographic order. *)
  let rec boundaries ~from ~remaining acc f =
    if !count >= max_specs then ()
    else if remaining = 0 then
      emit { Arch.Custom.pipelined_layers = f; tail_boundaries = List.rev acc }
    else
      for b = from to num_layers - remaining do
        boundaries ~from:(b + 1) ~remaining:(remaining - 1) (b :: acc) f
      done
  in
  let f_max = min (ces - 1) (num_layers - 1) in
  for f = 1 to f_max do
    let s = ces - f in
    if num_layers - f >= s then
      boundaries ~from:(f + 1) ~remaining:(s - 1) [] f
  done;
  List.rev !out

let session_or_fresh session model board =
  match session with
  | Some s -> s
  | None -> Mccm.Eval_session.create model board

let table_or_fresh session model =
  match Mccm.Eval_session.table session with
  | Some t when Cnn.Table.for_model t model -> t
  | _ -> Cnn.Table.of_model model

(* Per-block MAC totals of a spec, O(blocks) via the table's prefix
   sums: the pipelined head [0, f) followed by the tail segments. *)
let block_macs table spec =
  let n = Cnn.Table.num_layers table in
  let f = spec.Arch.Custom.pipelined_layers in
  let starts = f :: spec.Arch.Custom.tail_boundaries in
  let ends =
    List.map (fun b -> b - 1) spec.Arch.Custom.tail_boundaries @ [ n - 1 ]
  in
  Cnn.Table.macs_range table ~first:0 ~last:(f - 1)
  :: List.map2
       (fun first last -> Cnn.Table.macs_range table ~first ~last)
       starts ends

(* Admissible bounds for pruning.  They must never fall below an
   achievable throughput / above an achievable latency, or pruning
   would change results.  Three facts hold for every design the
   builder can produce on a custom spec:

   - an engine's Eq.-1 cycle count for a layer is at least the layer's
     minimum over EVERY integer 3-D parallelism of total degree at most
     [dsps] — the builder's engines unroll exactly three dimensions
     ((Filters|Channels), Height, Width) with PEs at most the board's
     DSP budget, so that minimum (precomputed per layer below) is a
     superset optimum;
   - a pipelined block's initiation interval is its slowest engine's
     busy time, which is at least the largest per-layer floor in the
     block and at least the mean (sum over engines);
   - every weight byte crosses the off-chip port at least once per
     image (retention saves re-loads, not the first load), as do the
     network's input and output FMs (a custom spec's first block input
     and last block output are always off-chip).

   The 1e-7 slack absorbs float rounding in the comparison chain; it
   only loosens the bound. *)
let slack = 1e-7

(* Divisor candidates for minimising [d -> ceil_div e d] under a cap:
   the O(sqrt e) quotient breakpoints (smallest d per quotient) plus
   the cap itself. *)
let ceil_candidates e cap =
  let m = max 1 (min e cap) in
  let acc = ref [ m ] in
  let q = ref 1 in
  let continue = ref (e >= 1) in
  while !continue do
    let d = Util.Int_math.ceil_div e !q in
    if d <= m then acc := d :: !acc;
    if d <= 1 then continue := false
    else begin
      let q' = Util.Int_math.ceil_div e (d - 1) in
      if q' <= !q then continue := false else q := q'
    end
  done;
  List.sort_uniq compare !acc

(* Minimum Eq.-1 cycles of one layer over every (d1, h, w) with
   [d1 * h * w <= budget]: [rest] covers the never-unrolled extents. *)
let min_cycles_mode ~budget ~e1 ~eh ~ew ~rest =
  let cd = Util.Int_math.ceil_div in
  let best = ref max_int in
  List.iter
    (fun d1 ->
      let rem = budget / d1 in
      if rem >= 1 then
        List.iter
          (fun h ->
            let w = max 1 (min ew (rem / h)) in
            if rem / h >= 1 then begin
              let c = rest * cd e1 d1 * cd eh h * cd ew w in
              if c < !best then best := c
            end)
          (ceil_candidates eh rem))
    (ceil_candidates e1 budget);
  !best

type bounds = {
  b_clock : float;
  b_peak : float;               (* dsps * clock, MACs/s *)
  b_mem_floor_s : float;        (* (weights + net input + net output) / bw *)
  b_cmin_pfx : int array;       (* prefix sums of per-layer cycle floors *)
  b_cmin_headmax : int array;   (* headmax.(i) = max cmin over layers < i *)
  b_table : Cnn.Table.t;
}

let bounds table board =
  let n = Cnn.Table.num_layers table in
  let dsps = board.Platform.Board.dsps in
  let cmin =
    Array.init n (fun i ->
        let ef, ec, eh, ew, ekh, ekw = Cnn.Table.extents table i in
        let k2 = ekh * ekw in
        min
          (min_cycles_mode ~budget:dsps ~e1:ef ~eh ~ew ~rest:(ec * k2))
          (min_cycles_mode ~budget:dsps ~e1:ec ~eh ~ew ~rest:(ef * k2)))
  in
  let pfx = Array.make (n + 1) 0 in
  let headmax = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    pfx.(i + 1) <- pfx.(i) + cmin.(i);
    headmax.(i + 1) <- max headmax.(i) cmin.(i)
  done;
  let bpe = board.Platform.Board.bytes_per_element in
  let mem_bytes =
    (Cnn.Table.total_weights table + Cnn.Table.ifm_elements table 0
    + Cnn.Table.ofm_elements table (n - 1))
    * bpe
  in
  {
    b_clock = board.Platform.Board.clock_hz;
    b_peak = float_of_int dsps *. board.Platform.Board.clock_hz;
    b_mem_floor_s = Platform.Board.bytes_to_seconds board mem_bytes;
    b_cmin_pfx = pfx;
    b_cmin_headmax = headmax;
    b_table = table;
  }

(* Tail segment [first, last] inclusive, as (first, last) pairs. *)
let tail_ranges table spec =
  let n = Cnn.Table.num_layers table in
  let f = spec.Arch.Custom.pipelined_layers in
  let starts = f :: spec.Arch.Custom.tail_boundaries in
  let ends =
    List.map (fun b -> b - 1) spec.Arch.Custom.tail_boundaries @ [ n - 1 ]
  in
  List.combine starts ends

let throughput_upper_bound b spec =
  let f = spec.Arch.Custom.pipelined_layers in
  (* Coarse pipelining: the interval is the slowest block.  Head block:
     one layer per engine, so the bottleneck engine is at least the
     largest layer floor and at least the mean.  Tail blocks: a single
     engine runs the whole range, so at least the summed floors. *)
  let head_cyc =
    Float.max
      (float_of_int b.b_cmin_headmax.(f))
      (float_of_int b.b_cmin_pfx.(f) /. float_of_int f)
  in
  let worst_cyc =
    List.fold_left
      (fun acc (first, last) ->
        Float.max acc
          (float_of_int (b.b_cmin_pfx.(last + 1) - b.b_cmin_pfx.(first))))
      head_cyc (tail_ranges b.b_table spec)
  in
  let ii = Float.max (worst_cyc /. b.b_clock) b.b_mem_floor_s in
  if ii <= 0.0 then infinity else 1.0 /. ii *. (1.0 +. slack)

let latency_lower_bound b spec =
  let f = spec.Arch.Custom.pipelined_layers in
  let tails = tail_ranges b.b_table spec in
  (* Latency sums block times: head at least its bottleneck floor, each
     tail at least its summed layer floors. *)
  let compute_cyc =
    List.fold_left
      (fun acc (first, last) ->
        acc +. float_of_int (b.b_cmin_pfx.(last + 1) - b.b_cmin_pfx.(first)))
      (Float.max
         (float_of_int b.b_cmin_headmax.(f))
         (float_of_int b.b_cmin_pfx.(f) /. float_of_int f))
      tails
  in
  (* Allocation-aware floor: block times are also at least
     macs_b / (pes_b * clock) with [sum pes_b = dsps]; Cauchy-Schwarz
     minimises the sum at pes_b proportional to sqrt(macs_b). *)
  let sum_sqrt =
    List.fold_left
      (fun acc m -> acc +. sqrt (float_of_int m))
      0.0
      (block_macs b.b_table spec)
  in
  Float.max
    (Float.max (compute_cyc /. b.b_clock) (sum_sqrt *. sum_sqrt /. b.b_peak))
    b.b_mem_floor_s
  *. (1.0 -. slack)

let exhaustive ?(max_specs = 20000) ?session ?(domains = 1) ?clamp ~ces model
    board =
  Mccm_obs.span ~cat:"dse" "dse.exhaustive" @@ fun () ->
  let session = session_or_fresh session model board in
  let specs =
    Array.of_list
      (enumerate_specs ~num_layers:(Cnn.Model.num_layers model) ~ces
         ~max_specs)
  in
  let n = Array.length specs in
  Mccm_obs.Metric.add c_exhaustive n;
  (* Lexicographic neighbours share almost all their blocks, so the
     session's segment/plan tables turn the scan largely into lookups. *)
  let eval_slice session lo hi =
    let out = ref [] in
    for i = lo to hi - 1 do
      let spec = specs.(i) in
      let archi = Arch.Custom.arch_of_spec model spec in
      let metrics = Mccm.Eval_session.metrics session archi in
      if metrics.Mccm.Metrics.feasible then
        out := { Explore.spec; metrics } :: !out
    done;
    List.rev !out
  in
  let d = Util.Parallel.effective ?clamp ~domains ~n () in
  if d = 1 then eval_slice session 0 n
  else begin
    let forks = Array.init d (fun _ -> Mccm.Eval_session.fork session) in
    let slices =
      Util.Parallel.chunked_map ~clamp:false ~domains:d ~n
        (fun ~chunk ~lo ~hi -> eval_slice forks.(chunk) lo hi)
    in
    Array.iter (fun f -> Mccm.Eval_session.absorb ~into:session f) forks;
    List.concat slices
  end

type objective = [ `Throughput | `Latency ]

type search_stats = {
  enumerated : int;
  evaluated : int;
  pruned : int;
  domains_used : int;
}

let exhaustive_best ?(max_specs = 20000) ?session ?(domains = 1) ?clamp
    ?(prune = true) ~objective ~ces model board =
  Mccm_obs.span ~cat:"dse" "dse.exhaustive_best" @@ fun () ->
  let session = session_or_fresh session model board in
  let table = table_or_fresh session model in
  let specs =
    Array.of_list
      (enumerate_specs ~num_layers:(Cnn.Model.num_layers model) ~ces
         ~max_specs)
  in
  let n = Array.length specs in
  Mccm_obs.Metric.add c_exhaustive n;
  let score m =
    if not m.Mccm.Metrics.feasible then neg_infinity
    else
      match objective with
      | `Throughput -> m.Mccm.Metrics.throughput_ips
      | `Latency -> -.m.Mccm.Metrics.latency_s
  in
  let b = bounds table board in
  let bound spec =
    match objective with
    | `Throughput -> throughput_upper_bound b spec
    | `Latency -> -.(latency_lower_bound b spec)
  in
  (* Scan a slice keeping a local incumbent (first strict maximum, like
     the sequential scan).  A spec is skipped when its admissible bound
     cannot strictly beat the incumbent; since every element of a chunk
     follows its own incumbent in global enumeration order, merging the
     chunk bests in chunk order on strict improvement reproduces the
     sequential unpruned scan's answer exactly. *)
  let scan session lo hi =
    let best = ref None in
    let evaluated = ref 0 and pruned = ref 0 in
    for i = lo to hi - 1 do
      let spec = specs.(i) in
      let cur =
        match !best with Some (_, s) -> s | None -> neg_infinity
      in
      if prune && bound spec <= cur then incr pruned
      else begin
        incr evaluated;
        let m =
          Mccm.Eval_session.metrics session (Arch.Custom.arch_of_spec model spec)
        in
        let s = score m in
        if s > cur then best := Some ({ Explore.spec; metrics = m }, s)
      end
    done;
    (!best, !evaluated, !pruned)
  in
  let d = Util.Parallel.effective ?clamp ~domains ~n () in
  let chunks =
    if d = 1 then [ scan session 0 n ]
    else begin
      let forks = Array.init d (fun _ -> Mccm.Eval_session.fork session) in
      let res =
        Util.Parallel.chunked_map ~clamp:false ~domains:d ~n
          (fun ~chunk ~lo ~hi -> scan forks.(chunk) lo hi)
      in
      Array.iter (fun f -> Mccm.Eval_session.absorb ~into:session f) forks;
      res
    end
  in
  let best, evaluated, pruned =
    List.fold_left
      (fun (best, ev, pr) (b, e, p) ->
        let best =
          match (best, b) with
          | None, b -> b
          | Some _, None -> best
          | Some (_, sb), Some (_, s) when s > sb -> b
          | Some _, Some _ -> best
        in
        (best, ev + e, pr + p))
      (None, 0, 0) chunks
  in
  Mccm_obs.Metric.add c_evaluated evaluated;
  Mccm_obs.Metric.add c_pruned pruned;
  (match best with
  | Some (_, s) when s > neg_infinity ->
    Mccm_obs.Metric.update_max g_best_objective s
  | _ -> ());
  ( Option.map fst best,
    { enumerated = n; evaluated; pruned; domains_used = d } )

type step = {
  moved : string;
  spec : Arch.Custom.spec;
  metrics : Mccm.Metrics.t;
}

(* All one-move neighbours of a spec that remain in range. *)
let neighbours ~num_layers (spec : Arch.Custom.spec) =
  let f = spec.Arch.Custom.pipelined_layers in
  let bs = spec.Arch.Custom.tail_boundaries in
  let valid s =
    let rec ok prev = function
      | [] -> true
      | b :: rest -> b > prev && b < num_layers && ok b rest
    in
    s.Arch.Custom.pipelined_layers >= 1
    && s.Arch.Custom.pipelined_layers < num_layers
    && ok s.Arch.Custom.pipelined_layers s.Arch.Custom.tail_boundaries
  in
  let shift_boundary i delta =
    let bs' = List.mapi (fun j b -> if j = i then b + delta else b) bs in
    ( Printf.sprintf "shift boundary %d by %+d" (i + 1) delta,
      { Arch.Custom.pipelined_layers = f; tail_boundaries = bs' } )
  in
  let change_depth delta =
    ( Printf.sprintf "pipelined depth %+d" delta,
      { Arch.Custom.pipelined_layers = f + delta; tail_boundaries = bs } )
  in
  let split_largest =
    (* Insert a boundary in the middle of the widest tail segment. *)
    let edges = (f :: bs) @ [ num_layers ] in
    let rec widest best = function
      | a :: (b :: _ as rest) ->
        let best =
          match best with
          | Some (ba, bb) when bb - ba >= b - a -> best
          | _ -> Some (a, b)
        in
        widest best rest
      | _ -> best
    in
    match widest None edges with
    | Some (a, b) when b - a >= 2 ->
      let mid = (a + b) / 2 in
      [
        ( Printf.sprintf "split segment at L%d" (mid + 1),
          { Arch.Custom.pipelined_layers = f;
            tail_boundaries = List.sort compare (mid :: bs) } );
      ]
    | _ -> []
  in
  let merge_each =
    List.mapi
      (fun i _ ->
        ( Printf.sprintf "merge at boundary %d" (i + 1),
          { Arch.Custom.pipelined_layers = f;
            tail_boundaries = List.filteri (fun j _ -> j <> i) bs } ))
      bs
  in
  let shifts =
    List.concat
      (List.mapi (fun i _ -> [ shift_boundary i 1; shift_boundary i (-1) ]) bs)
  in
  List.filter
    (fun (_, s) -> valid s)
    (shifts @ [ change_depth 1; change_depth (-1) ] @ split_largest
    @ merge_each)

let local_search ~objective ?(max_steps = 25) ?session ?(domains = 1) ?clamp
    ?bound model board seed =
  Mccm_obs.span ~cat:"dse" "dse.local_search" @@ fun () ->
  let num_layers = Cnn.Model.num_layers model in
  let session = session_or_fresh session model board in
  (* A move touches one or two block boundaries, so re-evaluating a
     neighbour recomputes only the touched blocks; every other segment
     (and the climb's revisits of the current spec's neighbours) comes
     out of the session. *)
  let eval spec =
    Mccm.Eval_session.metrics session (Arch.Custom.arch_of_spec model spec)
  in
  let score m =
    if m.Mccm.Metrics.feasible then objective m else neg_infinity
  in
  let rec climb spec metrics steps_left trajectory =
    if steps_left = 0 then List.rev trajectory
    else begin
      let current = score metrics in
      if current > neg_infinity then
        Mccm_obs.Metric.update_max g_best_objective current;
      let neigh = neighbours ~num_layers spec in
      Mccm_obs.Metric.incr c_steps;
      Mccm_obs.Metric.observe h_neighbourhood
        (float_of_int (List.length neigh));
      (* A neighbour is accepted only on a strict improvement over
         [current], so one whose admissible score bound cannot exceed
         [current] is skipped without evaluation — the selection below
         would have dropped it anyway. *)
      let cands =
        match bound with
        | None -> Array.of_list neigh
        | Some b ->
          let kept =
            List.filter (fun (_, c) -> not (b c <= current)) neigh
          in
          Mccm_obs.Metric.add c_ls_pruned
            (List.length neigh - List.length kept);
          Array.of_list kept
      in
      let nc = Array.length cands in
      let d = Util.Parallel.effective ?clamp ~domains ~n:nc () in
      let evaluated =
        if d = 1 then
          Array.to_list
            (Array.map (fun (moved, c) -> (moved, c, eval c)) cands)
        else begin
          let forks =
            Array.init d (fun _ -> Mccm.Eval_session.fork session)
          in
          let slices =
            Util.Parallel.chunked_map ~clamp:false ~domains:d ~n:nc
              (fun ~chunk ~lo ~hi ->
                let out = ref [] in
                for i = lo to hi - 1 do
                  let moved, c = cands.(i) in
                  out :=
                    ( moved,
                      c,
                      Mccm.Eval_session.metrics forks.(chunk)
                        (Arch.Custom.arch_of_spec model c) )
                    :: !out
                done;
                List.rev !out)
          in
          Array.iter
            (fun f -> Mccm.Eval_session.absorb ~into:session f)
            forks;
          List.concat slices
        end
      in
      let best =
        List.fold_left
          (fun acc (moved, candidate, m) ->
            let s = score m in
            match acc with
            | Some (_, _, sb) when sb >= s -> acc
            | _ when s > current -> Some ((moved, candidate, m), m, s)
            | _ -> acc)
          None evaluated
      in
      match best with
      | None -> List.rev trajectory
      | Some ((moved, spec', m), _, _) ->
        climb spec' m (steps_left - 1)
          ({ moved; spec = spec'; metrics = m } :: trajectory)
    end
  in
  let m0 = eval seed in
  climb seed m0 max_steps [ { moved = "seed"; spec = seed; metrics = m0 } ]
