(* Exhaustive enumeration and hill-climbing over custom specs. *)

let h_neighbourhood = Mccm_obs.Metric.histogram "dse.neighbourhood_size"
let c_steps = Mccm_obs.Metric.counter "dse.local_search.steps"
let c_exhaustive = Mccm_obs.Metric.counter "dse.exhaustive.specs"
let g_best_objective = Mccm_obs.Metric.gauge "dse.best_objective"

let enumerate_specs ~num_layers ~ces ~max_specs =
  if ces < 2 then invalid_arg "Enumerate.enumerate_specs: ces < 2";
  let out = ref [] in
  let count = ref 0 in
  let emit spec =
    if !count < max_specs then begin
      incr count;
      out := spec :: !out
    end
  in
  (* Choose boundaries of [s - 1] cut points in (f, num_layers) in
     lexicographic order. *)
  let rec boundaries ~from ~remaining acc f =
    if !count >= max_specs then ()
    else if remaining = 0 then
      emit { Arch.Custom.pipelined_layers = f; tail_boundaries = List.rev acc }
    else
      for b = from to num_layers - remaining do
        boundaries ~from:(b + 1) ~remaining:(remaining - 1) (b :: acc) f
      done
  in
  let f_max = min (ces - 1) (num_layers - 1) in
  for f = 1 to f_max do
    let s = ces - f in
    if num_layers - f >= s then
      boundaries ~from:(f + 1) ~remaining:(s - 1) [] f
  done;
  List.rev !out

let session_or_fresh session model board =
  match session with
  | Some s -> s
  | None -> Mccm.Eval_session.create model board

let exhaustive ?(max_specs = 20000) ?session ~ces model board =
  Mccm_obs.span ~cat:"dse" "dse.exhaustive" @@ fun () ->
  let session = session_or_fresh session model board in
  let specs =
    enumerate_specs ~num_layers:(Cnn.Model.num_layers model) ~ces ~max_specs
  in
  Mccm_obs.Metric.add c_exhaustive (List.length specs);
  (* Lexicographic neighbours share almost all their blocks, so the
     session's segment/plan tables turn the scan largely into lookups. *)
  List.filter_map
    (fun spec ->
      let archi = Arch.Custom.arch_of_spec model spec in
      let metrics = Mccm.Eval_session.metrics session archi in
      if metrics.Mccm.Metrics.feasible then
        Some { Explore.spec; metrics }
      else None)
    specs

type step = {
  moved : string;
  spec : Arch.Custom.spec;
  metrics : Mccm.Metrics.t;
}

(* All one-move neighbours of a spec that remain in range. *)
let neighbours ~num_layers (spec : Arch.Custom.spec) =
  let f = spec.Arch.Custom.pipelined_layers in
  let bs = spec.Arch.Custom.tail_boundaries in
  let valid s =
    let rec ok prev = function
      | [] -> true
      | b :: rest -> b > prev && b < num_layers && ok b rest
    in
    s.Arch.Custom.pipelined_layers >= 1
    && s.Arch.Custom.pipelined_layers < num_layers
    && ok s.Arch.Custom.pipelined_layers s.Arch.Custom.tail_boundaries
  in
  let shift_boundary i delta =
    let bs' = List.mapi (fun j b -> if j = i then b + delta else b) bs in
    ( Printf.sprintf "shift boundary %d by %+d" (i + 1) delta,
      { Arch.Custom.pipelined_layers = f; tail_boundaries = bs' } )
  in
  let change_depth delta =
    ( Printf.sprintf "pipelined depth %+d" delta,
      { Arch.Custom.pipelined_layers = f + delta; tail_boundaries = bs } )
  in
  let split_largest =
    (* Insert a boundary in the middle of the widest tail segment. *)
    let edges = (f :: bs) @ [ num_layers ] in
    let rec widest best = function
      | a :: (b :: _ as rest) ->
        let best =
          match best with
          | Some (ba, bb) when bb - ba >= b - a -> best
          | _ -> Some (a, b)
        in
        widest best rest
      | _ -> best
    in
    match widest None edges with
    | Some (a, b) when b - a >= 2 ->
      let mid = (a + b) / 2 in
      [
        ( Printf.sprintf "split segment at L%d" (mid + 1),
          { Arch.Custom.pipelined_layers = f;
            tail_boundaries = List.sort compare (mid :: bs) } );
      ]
    | _ -> []
  in
  let merge_each =
    List.mapi
      (fun i _ ->
        ( Printf.sprintf "merge at boundary %d" (i + 1),
          { Arch.Custom.pipelined_layers = f;
            tail_boundaries = List.filteri (fun j _ -> j <> i) bs } ))
      bs
  in
  let shifts =
    List.concat
      (List.mapi (fun i _ -> [ shift_boundary i 1; shift_boundary i (-1) ]) bs)
  in
  List.filter
    (fun (_, s) -> valid s)
    (shifts @ [ change_depth 1; change_depth (-1) ] @ split_largest
    @ merge_each)

let local_search ~objective ?(max_steps = 25) ?session model board seed =
  Mccm_obs.span ~cat:"dse" "dse.local_search" @@ fun () ->
  let num_layers = Cnn.Model.num_layers model in
  let session = session_or_fresh session model board in
  (* A move touches one or two block boundaries, so re-evaluating a
     neighbour recomputes only the touched blocks; every other segment
     (and the climb's revisits of the current spec's neighbours) comes
     out of the session. *)
  let eval spec =
    Mccm.Eval_session.metrics session (Arch.Custom.arch_of_spec model spec)
  in
  let score m =
    if m.Mccm.Metrics.feasible then objective m else neg_infinity
  in
  let rec climb spec metrics steps_left trajectory =
    if steps_left = 0 then List.rev trajectory
    else begin
      let current = score metrics in
      if current > neg_infinity then
        Mccm_obs.Metric.update_max g_best_objective current;
      let neigh = neighbours ~num_layers spec in
      Mccm_obs.Metric.incr c_steps;
      Mccm_obs.Metric.observe h_neighbourhood
        (float_of_int (List.length neigh));
      let best =
        List.fold_left
          (fun acc (moved, candidate) ->
            let m = eval candidate in
            let s = score m in
            match acc with
            | Some (_, _, sb) when sb >= s -> acc
            | _ when s > current -> Some ((moved, candidate, m), m, s)
            | _ -> acc)
          None neigh
      in
      match best with
      | None -> List.rev trajectory
      | Some ((moved, spec', m), _, _) ->
        climb spec' m (steps_left - 1)
          ({ moved; spec = spec'; metrics = m } :: trajectory)
    end
  in
  let m0 = eval seed in
  climb seed m0 max_steps [ { moved = "seed"; spec = seed; metrics = m0 } ]
