(* Exhaustive enumeration, best-first branch-and-bound, and
   hill-climbing over custom specs. *)

let h_neighbourhood = Mccm_obs.Metric.histogram "dse.neighbourhood_size"
let c_steps = Mccm_obs.Metric.counter "dse.local_search.steps"
let c_exhaustive = Mccm_obs.Metric.counter "dse.exhaustive.specs"
let c_evaluated = Mccm_obs.Metric.counter "dse.exhaustive.evaluated"
let c_pruned = Mccm_obs.Metric.counter "dse.exhaustive.pruned"
let c_nodes = Mccm_obs.Metric.counter "dse.bnb.nodes"
let c_ls_pruned = Mccm_obs.Metric.counter "dse.local_search.pruned"
let g_best_objective = Mccm_obs.Metric.gauge "dse.best_objective"

let enumerate_specs ~num_layers ~ces ~max_specs =
  if ces < 2 then invalid_arg "Enumerate.enumerate_specs: ces < 2";
  let out = ref [] in
  let count = ref 0 in
  let emit spec =
    if !count < max_specs then begin
      incr count;
      out := spec :: !out
    end
  in
  (* Choose boundaries of [s - 1] cut points in (f, num_layers) in
     lexicographic order. *)
  let rec boundaries ~from ~remaining acc f =
    if !count >= max_specs then ()
    else if remaining = 0 then
      emit { Arch.Custom.pipelined_layers = f; tail_boundaries = List.rev acc }
    else
      for b = from to num_layers - remaining do
        boundaries ~from:(b + 1) ~remaining:(remaining - 1) (b :: acc) f
      done
  in
  let f_max = min (ces - 1) (num_layers - 1) in
  for f = 1 to f_max do
    let s = ces - f in
    if num_layers - f >= s then
      boundaries ~from:(f + 1) ~remaining:(s - 1) [] f
  done;
  List.rev !out

let session_or_fresh session model board =
  match session with
  | Some s -> s
  | None -> Mccm.Eval_session.create model board

let table_or_fresh session model =
  match Mccm.Eval_session.table session with
  | Some t when Cnn.Table.for_model t model -> t
  | _ -> Cnn.Table.of_model model

(* The admissible bound machinery lives in {!Bounds}; these aliases
   keep the historical entry points (and their callers) intact. *)
type bounds = Bounds.t

let bounds table board = Bounds.create table board
let throughput_upper_bound = Bounds.throughput_upper_bound
let latency_lower_bound = Bounds.latency_lower_bound

(* Sequential warm-up for a crew: run a small strided sample of the
   spec rows through the parent session so its plan/segment tables —
   and the builder's process-global memos — are populated before the
   per-worker forks are cut.  Caching is bit-invisible, so the warm-up
   cannot change any result; it only moves the cold start off the
   parallel phase. *)
let warm_strided ~session ~buf ~width ~n model =
  let stride = max 1 (n / 16) in
  let i = ref 0 in
  while !i < n do
    ignore
      (Mccm.Eval_session.metrics ~store_arch:false session
         (Arch.Custom.arch_of_spec model (Space.Flat.decode buf ~width !i)));
    i := !i + stride
  done

let exhaustive ?(max_specs = 20000) ?session ?(domains = 1) ?clamp ?pool ~ces
    model board =
  Mccm_obs.span ~cat:"dse" "dse.exhaustive" @@ fun () ->
  let session = session_or_fresh session model board in
  let width = Space.Flat.width ~ces in
  let buf =
    Space.Flat.enumerate ~num_layers:(Cnn.Model.num_layers model) ~ces
      ~max_specs
  in
  let n = Space.Flat.count buf ~width in
  Mccm_obs.Metric.add c_exhaustive n;
  (* Lexicographic neighbours share almost all their blocks, so the
     session's segment/plan tables turn the scan largely into lookups. *)
  let eval_slice ~session ~lo ~hi =
    let out = ref [] in
    for i = lo to hi - 1 do
      let spec = Space.Flat.decode buf ~width i in
      let archi = Arch.Custom.arch_of_spec model spec in
      let metrics = Mccm.Eval_session.metrics ~store_arch:false session archi in
      if metrics.Mccm.Metrics.feasible then
        out := { Explore.spec; metrics } :: !out
    done;
    List.rev !out
  in
  Crew.with_crew ?pool ?clamp ~domains session (fun crew ->
      Crew.warmup crew (fun () -> warm_strided ~session ~buf ~width ~n model);
      List.concat (Crew.map crew ~n eval_slice))

type objective = [ `Throughput | `Latency ]

type strategy = [ `Auto | `Best_first | `Scan ]

type search_stats = {
  enumerated : int;
  evaluated : int;
  pruned : int;
  nodes : int;
  domains_used : int;
}

let sat_add a b = if a > max_int - b then max_int else a + b

(* A branch-and-bound node: a partial spec with pipelined depth [nb_f]
   and fixed tail boundaries [nb_rev] (reversed), leaving layers
   [nb_next ..] to be split into [nb_segments] more segments.  Its
   complete specs form a contiguous run of the lexicographic
   enumeration order starting at index [nb_rank]; [nb_count] is how
   many of them fall under the spec cap.  The running aggregates carry
   the fixed blocks' floors so a child's bound costs O(1). *)
type bnb_node = {
  nb_bound : float;     (* optimistic objective score of the subtree *)
  nb_rank : int;
  nb_count : int;
  nb_f : int;
  nb_rev : int list;
  nb_next : int;
  nb_segments : int;
  nb_worst : float;     (* max fixed-block interval floor, cycles *)
  nb_lat : float;       (* summed fixed-block floors, cycles *)
  nb_sq : float;        (* summed sqrt(block MACs) *)
}

(* Sequential best-first branch-and-bound.  The frontier is a max-heap
   on the node bound (ties: earliest lexicographic rank), so promising
   regions are refined first and the incumbent climbs fast; a popped
   node that cannot beat the incumbent — strictly below it, or exactly
   at it with only later-rank (tie-losing) specs — kills its whole
   subtree and, because the heap pops bounds in nonincreasing order,
   everything still queued behind it.  That discipline plus the rank
   tie-break on acceptance reproduces the unpruned sequential scan's
   winner bit-for-bit: the lexicographically first spec attaining the
   best score. *)
let best_first ~max_specs ~session ~table ~prune ~score ~objective ~ces model
    board =
  let n = Cnn.Model.num_layers model in
  let b = Bounds.create table board in
  let ctx = Bounds.context b ~ces in
  let space =
    let total = ref 0 in
    for f = 1 to min (ces - 1) (n - 1) do
      let s = ces - f in
      if n - f >= s then
        total :=
          sat_add !total (Space.completions ~num_layers:n ~first:f ~segments:s)
    done;
    !total
  in
  let cap_total = min space max_specs in
  Mccm_obs.Metric.add c_exhaustive cap_total;
  let node_bound ~worst ~lat ~sq ~first ~segments =
    match objective with
    | `Throughput ->
      Bounds.partial_throughput_bound ctx ~worst_cycles:worst ~first ~segments
    | `Latency ->
      -.Bounds.partial_latency_bound ctx ~latency_cycles:lat ~sum_sqrt_macs:sq
          ~first
  in
  let heap =
    Util.Heap.create ~cmp:(fun a b ->
        match Float.compare b.nb_bound a.nb_bound with
        | 0 -> compare a.nb_rank b.nb_rank
        | c -> c)
  in
  let best = ref None in
  let evaluated = ref 0 and pruned = ref 0 and nodes = ref 0 in
  let cur () = match !best with Some (_, s, _) -> s | None -> neg_infinity in
  (* A subtree is dead when it cannot beat the incumbent even on the
     tie-break: its bound is strictly below, or exactly at the
     incumbent score with every rank in the subtree after the
     incumbent's (an equal-score leaf there loses the earlier-rank
     tie).  Admissible bounds make both cases exact, so pruning never
     changes the winner. *)
  let dead node =
    match !best with
    | None -> false
    | Some (_, s, r) ->
      node.nb_bound < s || (node.nb_bound = s && node.nb_rank > r)
  in
  let consider node =
    if prune && dead node then pruned := !pruned + node.nb_count
    else Util.Heap.push heap node
  in
  let rank = ref 0 in
  for f = 1 to min (ces - 1) (n - 1) do
    let s = ces - f in
    if n - f >= s then begin
      let raw = Space.completions ~num_layers:n ~first:f ~segments:s in
      let count =
        if !rank >= cap_total then 0 else min raw (cap_total - !rank)
      in
      if count > 0 then begin
        let hf = Bounds.head_ii_floor ctx ~f in
        let sq =
          sqrt (float_of_int (Cnn.Table.macs_range table ~first:0 ~last:(f - 1)))
        in
        consider
          {
            nb_bound = node_bound ~worst:hf ~lat:hf ~sq ~first:f ~segments:s;
            nb_rank = !rank;
            nb_count = count;
            nb_f = f;
            nb_rev = [];
            nb_next = f;
            nb_segments = s;
            nb_worst = hf;
            nb_lat = hf;
            nb_sq = sq;
          }
      end;
      rank := sat_add !rank raw
    end
  done;
  let expand node =
    let r = node.nb_next and m = node.nb_segments in
    let child_rank = ref node.nb_rank in
    (* Children in boundary order keep ranks equal to enumeration
       indices; later siblings only have larger ranks, so the cap cuts
       a suffix of them. *)
    (try
       for bnd = r + 1 to n - m + 1 do
         if !child_rank >= cap_total then raise Exit;
         let raw =
           Space.completions ~num_layers:n ~first:bnd ~segments:(m - 1)
         in
         let count = min raw (cap_total - !child_rank) in
         if count > 0 then begin
           let sf = Bounds.segment_ii_floor ctx ~first:r ~last:(bnd - 1) in
           let worst = Float.max node.nb_worst sf in
           let lat = node.nb_lat +. sf in
           let sq =
             node.nb_sq
             +. sqrt
                  (float_of_int
                     (Cnn.Table.macs_range table ~first:r ~last:(bnd - 1)))
           in
           consider
             {
               nb_bound =
                 node_bound ~worst ~lat ~sq ~first:bnd ~segments:(m - 1);
               nb_rank = !child_rank;
               nb_count = count;
               nb_f = node.nb_f;
               nb_rev = bnd :: node.nb_rev;
               nb_next = bnd;
               nb_segments = m - 1;
               nb_worst = worst;
               nb_lat = lat;
               nb_sq = sq;
             }
         end;
         child_rank := sat_add !child_rank raw
       done
     with Exit -> ())
  in
  let rec drain () =
    match Util.Heap.pop heap with
    | None -> ()
    | Some node ->
      incr nodes;
      if prune && dead node then begin
        (* The heap pops bounds in nonincreasing order (rank-ascending
           within a bound): every queued subtree is either strictly
           below the incumbent or an equal-bound later-rank tie loser.
           Flush and finish. *)
        pruned := !pruned + node.nb_count;
        let rec flush () =
          match Util.Heap.pop heap with
          | None -> ()
          | Some nd ->
            pruned := !pruned + nd.nb_count;
            flush ()
        in
        flush ()
      end
      else begin
        (if node.nb_segments = 1 then begin
           (* The last segment is forced: the node IS a complete spec. *)
           incr evaluated;
           let spec =
             {
               Arch.Custom.pipelined_layers = node.nb_f;
               tail_boundaries = List.rev node.nb_rev;
             }
           in
           let m =
             Mccm.Eval_session.metrics ~store_arch:false session
               (Arch.Custom.arch_of_spec model spec)
           in
           let s = score m in
           let c = cur () in
           let better =
             s > c
             || s = c && s > neg_infinity
                &&
                match !best with
                | Some (_, _, r) -> node.nb_rank < r
                | None -> false
           in
           if better then
             best := Some ({ Explore.spec; metrics = m }, s, node.nb_rank)
         end
         else expand node);
        drain ()
      end
  in
  drain ();
  Mccm_obs.Metric.add c_evaluated !evaluated;
  Mccm_obs.Metric.add c_pruned !pruned;
  Mccm_obs.Metric.add c_nodes !nodes;
  (match !best with
  | Some (_, s, _) when s > neg_infinity ->
    Mccm_obs.Metric.update_max g_best_objective s
  | _ -> ());
  ( Option.map (fun (e, _, _) -> e) !best,
    {
      enumerated = cap_total;
      evaluated = !evaluated;
      pruned = !pruned;
      nodes = !nodes;
      domains_used = 1;
    } )

(* Chunked scan over the flat spec rows (the multi-domain path, and
   the pruning-off reference). *)
let scan_best ~max_specs ~session ~table ~domains ~clamp ~pool ~prune ~score
    ~objective ~ces model board =
  let width = Space.Flat.width ~ces in
  let buf =
    Space.Flat.enumerate ~num_layers:(Cnn.Model.num_layers model) ~ces
      ~max_specs
  in
  let n = Space.Flat.count buf ~width in
  Mccm_obs.Metric.add c_exhaustive n;
  let b = Bounds.create table board in
  (* Hoisting the per-CE-count ctx takes the memo mutex out of the hot
     loop, and the flat bounds walk each row in place: a pruned
     candidate costs no allocation at all — rows are decoded to a spec
     only when they survive the bound and must be evaluated. *)
  let ctx = if prune then Some (Bounds.context b ~ces) else None in
  let bound =
    match (objective, ctx) with
    | _, None -> fun _ -> infinity
    | `Throughput, Some cx ->
      fun i -> Bounds.throughput_upper_bound_flat cx buf ~width i
    | `Latency, Some cx ->
      fun i -> -.(Bounds.latency_lower_bound_flat cx buf ~width i)
  in
  (* Scan a slice keeping a local incumbent (first strict maximum, like
     the sequential scan).  A spec is skipped when its admissible bound
     cannot strictly beat the incumbent; since every element of a chunk
     follows its own incumbent in global enumeration order, merging the
     chunk bests in chunk order on strict improvement reproduces the
     sequential unpruned scan's answer exactly — for any chunk count. *)
  let scan ~session ~lo ~hi =
    let best = ref None in
    let evaluated = ref 0 and pruned = ref 0 in
    for i = lo to hi - 1 do
      let cur =
        match !best with Some (_, s) -> s | None -> neg_infinity
      in
      if prune && bound i <= cur then incr pruned
      else begin
        incr evaluated;
        let spec = Space.Flat.decode buf ~width i in
        let m =
          Mccm.Eval_session.metrics ~store_arch:false session
            (Arch.Custom.arch_of_spec model spec)
        in
        let s = score m in
        if s > cur then best := Some ({ Explore.spec; metrics = m }, s)
      end
    done;
    (!best, !evaluated, !pruned)
  in
  let crew_size = ref 1 in
  let chunks =
    Crew.with_crew ?pool ?clamp ~domains session (fun crew ->
        crew_size := Crew.size crew;
        Crew.warmup crew (fun () ->
            warm_strided ~session ~buf ~width ~n model);
        Crew.map crew ~n scan)
  in
  let best, evaluated, pruned =
    List.fold_left
      (fun (best, ev, pr) (b, e, p) ->
        let best =
          match (best, b) with
          | None, b -> b
          | Some _, None -> best
          | Some (_, sb), Some (_, s) when s > sb -> b
          | Some _, Some _ -> best
        in
        (best, ev + e, pr + p))
      (None, 0, 0) chunks
  in
  Mccm_obs.Metric.add c_evaluated evaluated;
  Mccm_obs.Metric.add c_pruned pruned;
  (match best with
  | Some (_, s) when s > neg_infinity ->
    Mccm_obs.Metric.update_max g_best_objective s
  | _ -> ());
  ( Option.map fst best,
    { enumerated = n; evaluated; pruned; nodes = 0; domains_used = !crew_size }
  )

let exhaustive_best ?(max_specs = 20000) ?session ?(domains = 1) ?clamp ?pool
    ?(prune = true) ?(strategy = `Auto) ~objective ~ces model board =
  Mccm_obs.span ~cat:"dse" "dse.exhaustive_best" @@ fun () ->
  let session = session_or_fresh session model board in
  let table = table_or_fresh session model in
  let score m =
    if not m.Mccm.Metrics.feasible then neg_infinity
    else
      match objective with
      | `Throughput -> m.Mccm.Metrics.throughput_ips
      | `Latency -> -.m.Mccm.Metrics.latency_s
  in
  let use_best_first =
    match strategy with
    | `Best_first -> true
    | `Scan -> false
    | `Auto -> prune && domains = 1 && Option.is_none pool
  in
  if use_best_first then
    best_first ~max_specs ~session ~table ~prune ~score ~objective ~ces model
      board
  else
    scan_best ~max_specs ~session ~table ~domains ~clamp ~pool ~prune ~score
      ~objective ~ces model board

type step = {
  moved : string;
  spec : Arch.Custom.spec;
  metrics : Mccm.Metrics.t;
}

(* All one-move neighbours of a spec that remain in range. *)
let neighbours ~num_layers (spec : Arch.Custom.spec) =
  let f = spec.Arch.Custom.pipelined_layers in
  let bs = spec.Arch.Custom.tail_boundaries in
  let valid s =
    let rec ok prev = function
      | [] -> true
      | b :: rest -> b > prev && b < num_layers && ok b rest
    in
    s.Arch.Custom.pipelined_layers >= 1
    && s.Arch.Custom.pipelined_layers < num_layers
    && ok s.Arch.Custom.pipelined_layers s.Arch.Custom.tail_boundaries
  in
  let shift_boundary i delta =
    let bs' = List.mapi (fun j b -> if j = i then b + delta else b) bs in
    ( Printf.sprintf "shift boundary %d by %+d" (i + 1) delta,
      { Arch.Custom.pipelined_layers = f; tail_boundaries = bs' } )
  in
  let change_depth delta =
    ( Printf.sprintf "pipelined depth %+d" delta,
      { Arch.Custom.pipelined_layers = f + delta; tail_boundaries = bs } )
  in
  let split_largest =
    (* Insert a boundary in the middle of the widest tail segment. *)
    let edges = (f :: bs) @ [ num_layers ] in
    let rec widest best = function
      | a :: (b :: _ as rest) ->
        let best =
          match best with
          | Some (ba, bb) when bb - ba >= b - a -> best
          | _ -> Some (a, b)
        in
        widest best rest
      | _ -> best
    in
    match widest None edges with
    | Some (a, b) when b - a >= 2 ->
      let mid = (a + b) / 2 in
      [
        ( Printf.sprintf "split segment at L%d" (mid + 1),
          { Arch.Custom.pipelined_layers = f;
            tail_boundaries = List.sort compare (mid :: bs) } );
      ]
    | _ -> []
  in
  let merge_each =
    List.mapi
      (fun i _ ->
        ( Printf.sprintf "merge at boundary %d" (i + 1),
          { Arch.Custom.pipelined_layers = f;
            tail_boundaries = List.filteri (fun j _ -> j <> i) bs } ))
      bs
  in
  let shifts =
    List.concat
      (List.mapi (fun i _ -> [ shift_boundary i 1; shift_boundary i (-1) ]) bs)
  in
  List.filter
    (fun (_, s) -> valid s)
    (shifts @ [ change_depth 1; change_depth (-1) ] @ split_largest
    @ merge_each)

let local_search ~objective ?(max_steps = 25) ?session ?(domains = 1) ?clamp
    ?pool ?bound model board seed =
  Mccm_obs.span ~cat:"dse" "dse.local_search" @@ fun () ->
  let num_layers = Cnn.Model.num_layers model in
  let session = session_or_fresh session model board in
  (* A move touches one or two block boundaries, so re-evaluating a
     neighbour recomputes only the touched blocks; every other segment
     (and the climb's revisits of the current spec's neighbours) comes
     out of the session. *)
  let eval spec =
    Mccm.Eval_session.metrics session (Arch.Custom.arch_of_spec model spec)
  in
  let score m =
    if m.Mccm.Metrics.feasible then objective m else neg_infinity
  in
  (* One crew for the whole climb: the old path re-forked the session
     and re-spawned a domain per chunk on every single step.  Here the
     per-worker forks are cut once — after the seed evaluation has
     warmed the parent — and every step's neighbourhood is mapped as
     singleton chunks over the same crew. *)
  Crew.with_crew ?pool ?clamp ~domains session @@ fun crew ->
  let eval_all cands =
    List.concat
      (Crew.map crew ~chunk_hint:1 ~n:(Array.length cands)
         (fun ~session ~lo ~hi ->
           let out = ref [] in
           for i = lo to hi - 1 do
             let moved, c = cands.(i) in
             out :=
               ( moved,
                 c,
                 Mccm.Eval_session.metrics session
                   (Arch.Custom.arch_of_spec model c) )
               :: !out
           done;
           List.rev !out))
  in
  let rec climb spec metrics steps_left trajectory =
    if steps_left = 0 then List.rev trajectory
    else begin
      let current = score metrics in
      if current > neg_infinity then
        Mccm_obs.Metric.update_max g_best_objective current;
      let neigh = neighbours ~num_layers spec in
      Mccm_obs.Metric.incr c_steps;
      Mccm_obs.Metric.observe h_neighbourhood
        (float_of_int (List.length neigh));
      (* A neighbour is accepted only on a strict improvement over
         [current], so one whose admissible score bound cannot exceed
         [current] is skipped without evaluation — the selection below
         would have dropped it anyway. *)
      let cands =
        match bound with
        | None -> Array.of_list neigh
        | Some b ->
          let kept =
            List.filter (fun (_, c) -> not (b c <= current)) neigh
          in
          Mccm_obs.Metric.add c_ls_pruned
            (List.length neigh - List.length kept);
          Array.of_list kept
      in
      let evaluated = eval_all cands in
      let best =
        List.fold_left
          (fun acc (moved, candidate, m) ->
            let s = score m in
            match acc with
            | Some (_, _, sb) when sb >= s -> acc
            | _ when s > current -> Some ((moved, candidate, m), m, s)
            | _ -> acc)
          None evaluated
      in
      match best with
      | None -> List.rev trajectory
      | Some ((moved, spec', m), _, _) ->
        climb spec' m (steps_left - 1)
          ({ moved; spec = spec'; metrics = m } :: trajectory)
    end
  in
  let m0 = eval seed in
  climb seed m0 max_steps [ { moved = "seed"; spec = seed; metrics = m0 } ]
