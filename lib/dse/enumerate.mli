(** Exhaustive and guided exploration complements to random sampling.

    Random sampling (the paper's Fig. 10) covers the huge spaces; when the
    space slice is small — a fixed CE count with few tail segments — it can
    be enumerated exactly, and a promising design can be refined by local
    search over its boundaries (the paper's "take the most promising
    architectures as starting points ... explore architectures that
    mitigate these bottlenecks"). *)

val enumerate_specs :
  num_layers:int -> ces:int -> max_specs:int -> Arch.Custom.spec list
(** [enumerate_specs ~num_layers ~ces ~max_specs] lists every custom spec
    with exactly [ces] engines, in lexicographic order, stopping after
    [max_specs] (the caller bounds the work; the spaces explode).
    @raise Invalid_argument if [ces < 2]. *)

val exhaustive :
  ?max_specs:int ->
  ?session:Mccm.Eval_session.t ->
  ces:int ->
  Cnn.Model.t ->
  Platform.Board.t ->
  Explore.evaluated list
(** [exhaustive ~ces model board] evaluates every (up to [max_specs],
    default 20000) custom design with exactly [ces] engines; feasible
    ones, in enumeration order.  [session] (default: a fresh one)
    memoizes segment terms across the lexicographic scan — neighbouring
    specs share nearly all blocks — and across calls; results are
    bit-identical with or without it. *)

type step = {
  moved : string;                 (** human-readable description *)
  spec : Arch.Custom.spec;
  metrics : Mccm.Metrics.t;
}

val neighbours :
  num_layers:int -> Arch.Custom.spec -> (string * Arch.Custom.spec) list
(** [neighbours ~num_layers spec] is the single-move neighbourhood
    {!local_search} climbs over — every boundary shift by one layer,
    pipelined-depth change by one, widest-tail-segment split and
    single-boundary merge that stays a valid spec — each with a
    human-readable move description. *)

val local_search :
  objective:(Mccm.Metrics.t -> float) ->
  ?max_steps:int ->
  ?session:Mccm.Eval_session.t ->
  Cnn.Model.t ->
  Platform.Board.t ->
  Arch.Custom.spec ->
  step list
(** [local_search ~objective model board seed] hill-climbs from [seed],
    at each step trying every {!neighbours} move, keeping the neighbour
    that most improves [objective] (higher is better).  Returns the
    improvement trajectory, seed first; stops at a local optimum or
    after [max_steps] (default 25) moves.  [session] (default: a fresh
    one) memoizes evaluation — a move touches at most two blocks, so
    only those are recomputed; results are bit-identical with or
    without it. *)
