(** Exhaustive and guided exploration complements to random sampling.

    Random sampling (the paper's Fig. 10) covers the huge spaces; when the
    space slice is small — a fixed CE count with few tail segments — it can
    be enumerated exactly, and a promising design can be refined by local
    search over its boundaries (the paper's "take the most promising
    architectures as starting points ... explore architectures that
    mitigate these bottlenecks"). *)

val enumerate_specs :
  num_layers:int -> ces:int -> max_specs:int -> Arch.Custom.spec list
(** [enumerate_specs ~num_layers ~ces ~max_specs] lists every custom spec
    with exactly [ces] engines, in lexicographic order, stopping after
    [max_specs] (the caller bounds the work; the spaces explode).
    @raise Invalid_argument if [ces < 2]. *)

val exhaustive :
  ?max_specs:int ->
  ?session:Mccm.Eval_session.t ->
  ?domains:int ->
  ?clamp:bool ->
  ?pool:Util.Parallel.Pool.t ->
  ces:int ->
  Cnn.Model.t ->
  Platform.Board.t ->
  Explore.evaluated list
(** [exhaustive ~ces model board] evaluates every (up to [max_specs],
    default 20000) custom design with exactly [ces] engines; feasible
    ones, in enumeration order.  Specs are enumerated straight into an
    unboxed {!Space.Flat} buffer and decoded per evaluation.  [session]
    (default: a fresh one) memoizes segment terms across the
    lexicographic scan — neighbouring specs share nearly all blocks —
    and across calls; results are bit-identical with or without it.
    [domains] (default 1) runs the scan on a {!Crew}: one warm session
    fork per pool worker (after a sequential strided warm-up pass),
    deterministic contiguous chunks merged in order, forks absorbed at
    the end.  [domains] is clamped to [Domain.recommended_domain_count]
    unless [~clamp:false]; [pool] reuses a caller-owned domain pool
    (then [domains]/[clamp] are ignored).  The result is identical for
    every domain count. *)

type objective = [ `Throughput | `Latency ]

type strategy = [ `Auto | `Best_first | `Scan ]
(** How {!exhaustive_best} walks the space.  [`Scan] materialises the
    spec list and scans it in deterministic contiguous chunks (the only
    strategy that uses [domains]).  [`Best_first] runs the sequential
    branch-and-bound: partial specs ordered by their composed optimistic
    bound ({!Bounds.partial_throughput_bound} /
    {!Bounds.partial_latency_bound}), so hopeless subtrees die before
    their specs are ever materialised.  [`Auto] (the default) picks
    [`Best_first] when pruning is on and a single domain was requested,
    [`Scan] otherwise.  All strategies return the same winner. *)

type search_stats = {
  enumerated : int;      (** specs in scope (after [max_specs]) *)
  evaluated : int;       (** specs actually run through the model *)
  pruned : int;          (** specs skipped by the admissible bound *)
  nodes : int;           (** branch-and-bound nodes popped (0 for scans) *)
  domains_used : int;
}

type bounds = Bounds.t
(** Precomputed bound context for one (model table, board) pair — see
    {!Bounds}.  Kept as an alias (with the constructors below) for the
    callers of the pre-[Bounds] API. *)

val bounds : Cnn.Table.t -> Platform.Board.t -> bounds
(** [Bounds.create]. *)

val throughput_upper_bound : bounds -> Arch.Custom.spec -> float
(** [Bounds.throughput_upper_bound]: admissible (never below any
    achievable value) throughput bound for a custom spec, images/s. *)

val latency_lower_bound : bounds -> Arch.Custom.spec -> float
(** [Bounds.latency_lower_bound]: admissible (never above any
    achievable value) latency bound, seconds. *)

val exhaustive_best :
  ?max_specs:int ->
  ?session:Mccm.Eval_session.t ->
  ?domains:int ->
  ?clamp:bool ->
  ?pool:Util.Parallel.Pool.t ->
  ?prune:bool ->
  ?strategy:strategy ->
  objective:objective ->
  ces:int ->
  Cnn.Model.t ->
  Platform.Board.t ->
  Explore.evaluated option * search_stats
(** [exhaustive_best ~objective ~ces model board] returns the first
    feasible spec (in enumeration order) attaining the best objective —
    highest throughput or lowest latency — plus search statistics.
    [prune] (default true) skips specs (and, under [`Best_first], whole
    subtrees of partial specs) whose admissible bound cannot strictly
    beat the running incumbent; because the bounds are admissible and
    acceptance requires strict improvement (ties broken towards the
    earlier enumeration rank), the returned design is bit-identical
    across [prune], [strategy], [domains] and [pool] choices.  The
    [`Scan] path enumerates into a {!Space.Flat} buffer, prunes with
    the allocation-free flat bounds (ctx hoisted out of the loop) and
    decodes only surviving rows; with [pool] it runs on the caller's
    persistent domain pool ([`Auto] then picks [`Scan]). *)

type step = {
  moved : string;                 (** human-readable description *)
  spec : Arch.Custom.spec;
  metrics : Mccm.Metrics.t;
}

val neighbours :
  num_layers:int -> Arch.Custom.spec -> (string * Arch.Custom.spec) list
(** [neighbours ~num_layers spec] is the single-move neighbourhood
    {!local_search} climbs over — every boundary shift by one layer,
    pipelined-depth change by one, widest-tail-segment split and
    single-boundary merge that stays a valid spec — each with a
    human-readable move description. *)

val local_search :
  objective:(Mccm.Metrics.t -> float) ->
  ?max_steps:int ->
  ?session:Mccm.Eval_session.t ->
  ?domains:int ->
  ?clamp:bool ->
  ?pool:Util.Parallel.Pool.t ->
  ?bound:(Arch.Custom.spec -> float) ->
  Cnn.Model.t ->
  Platform.Board.t ->
  Arch.Custom.spec ->
  step list
(** [local_search ~objective model board seed] hill-climbs from [seed],
    at each step trying every {!neighbours} move, keeping the neighbour
    that most improves [objective] (higher is better).  Returns the
    improvement trajectory, seed first; stops at a local optimum or
    after [max_steps] (default 25) moves.  [session] (default: a fresh
    one) memoizes evaluation — a move touches at most two blocks, so
    only those are recomputed; results are bit-identical with or
    without it.  [domains] (default 1, clamped like {!exhaustive})
    evaluates each step's neighbourhood on one {!Crew} kept for the
    whole climb — domains spawn and sessions fork once per search, not
    once per step; [pool] reuses a caller-owned domain pool across
    searches.  [bound] (an admissible upper bound on the objective's
    score, e.g. {!throughput_upper_bound} partially applied) skips
    neighbours that cannot strictly beat the current spec.  None of
    these change the trajectory. *)
