type evaluated = { spec : Arch.Custom.spec; metrics : Mccm.Metrics.t }

type result = {
  sampled : int;
  distinct : int;
  evaluated : evaluated list;
  front : evaluated Pareto.point list;
  elapsed_s : float;
  stats : Mccm.Eval_session.stats;
}

let c_sampled = Mccm_obs.Metric.counter "dse.sampled"
let c_distinct = Mccm_obs.Metric.counter "dse.distinct"
let c_duplicates = Mccm_obs.Metric.counter "dse.duplicates"
let c_feasible = Mccm_obs.Metric.counter "dse.feasible"
let g_best = Mccm_obs.Metric.gauge "dse.best_throughput_ips"

let point (e : evaluated) =
  {
    Pareto.item = e;
    objective_up = e.metrics.Mccm.Metrics.throughput_ips;
    objective_down = float_of_int e.metrics.Mccm.Metrics.buffer_bytes;
  }

(* Evaluate a contiguous slice of the pre-drawn spec array, keeping
   draw order.  Every draw goes through the session — a duplicate is
   exactly the arch-cache hit the session exists to serve — and the
   feasibility split happens later, on assembly. *)
let eval_slice ~session ~specs ~lo ~hi model =
  Mccm_obs.span ~cat:"dse" "dse.eval_slice"
    ~args:[ ("designs", string_of_int (hi - lo)) ]
  @@ fun () ->
  let evaluated = ref [] in
  for i = lo to hi - 1 do
    let spec = specs.(i) in
    let archi = Arch.Custom.arch_of_spec model spec in
    let metrics = Mccm.Eval_session.metrics session archi in
    evaluated := { spec; metrics } :: !evaluated
  done;
  List.rev !evaluated

let run ?(seed = 42L) ?(ce_counts = Arch.Baselines.default_ce_counts)
    ?(domains = 1) ?clamp ?pool ?session ~samples model board =
  if samples <= 0 then invalid_arg "Explore.run: non-positive sample count";
  if domains <= 0 then invalid_arg "Explore.run: non-positive domain count";
  let session =
    match session with
    | None -> Mccm.Eval_session.create model board
    | Some s ->
      if Mccm.Eval_session.board s <> board then
        invalid_arg "Explore.run: session bound to a different board";
      s
  in
  let started = Unix.gettimeofday () in
  (* Sampling is decoupled from evaluation: the whole design set is drawn
     up front from one PRNG stream, so the sampled set — and hence the
     result — depends only on [seed], never on how many domains evaluate
     it (evaluation itself is pure). *)
  let drawn =
    Mccm_obs.span ~cat:"dse" "dse.draw" (fun () ->
        let rng = Util.Prng.create ~seed in
        let num_layers = Cnn.Model.num_layers model in
        Array.init samples (fun _ ->
            Space.random_spec rng ~num_layers ~ce_counts))
  in
  Mccm_obs.Metric.add c_sampled samples;
  (* Every draw is evaluated through the session: a repeated spec is an
     arch-cache hit, not a precomputed skip, so the session's hit-rate
     statistics measure real duplication and a warm session keeps paying
     off across runs.  Dedup happens on assembly below. *)
  let all =
    Mccm_obs.span ~cat:"dse" "dse.eval"
      ~args:[ ("designs", string_of_int samples) ]
    @@ fun () ->
    (* Contiguous chunks, concatenated back in order.  Each pool worker
       evaluates on its own session fork (the tables are not
       thread-safe), cut once per run after a sequential strided
       warm-up; forks merge back at the end, so a session reused across
       runs keeps learning.  Caching is bit-invisible, hence the result
       stays independent of the domain count, the pool and the
       chunking. *)
    Crew.with_crew ?pool ?clamp ~domains session (fun crew ->
        Crew.warmup crew (fun () ->
            let stride = max 1 (samples / 16) in
            let i = ref 0 in
            while !i < samples do
              ignore
                (Mccm.Eval_session.metrics session
                   (Arch.Custom.arch_of_spec model drawn.(!i)));
              i := !i + stride
            done);
        List.concat
          (Crew.map crew ~n:samples (fun ~session ~lo ~hi ->
               eval_slice ~session ~specs:drawn ~lo ~hi model)))
  in
  (* Keep each distinct design's first occurrence; feasible ones make
     the result.  [sampled] still counts every draw, so the dedup ratio
     and the seed-determinism contract are unchanged. *)
  let seen = Hashtbl.create (2 * samples) in
  let evaluated =
    List.filter
      (fun e ->
        if Hashtbl.mem seen e.spec then false
        else begin
          Hashtbl.add seen e.spec ();
          if e.metrics.Mccm.Metrics.feasible then begin
            Mccm_obs.Metric.incr c_feasible;
            Mccm_obs.Metric.update_max g_best
              e.metrics.Mccm.Metrics.throughput_ips;
            true
          end
          else false
        end)
      all
  in
  let distinct = Hashtbl.length seen in
  Mccm_obs.Metric.add c_distinct distinct;
  Mccm_obs.Metric.add c_duplicates (samples - distinct);
  let elapsed_s = Unix.gettimeofday () -. started in
  {
    sampled = samples;
    distinct;
    evaluated;
    front = Pareto.front (List.map point evaluated);
    elapsed_s;
    stats = Mccm.Eval_session.stats session;
  }

let improvement_over r ~reference =
  let ref_thr = reference.Mccm.Metrics.throughput_ips in
  let ref_buf = float_of_int reference.Mccm.Metrics.buffer_bytes in
  let matching_thr =
    List.filter
      (fun e -> e.metrics.Mccm.Metrics.throughput_ips >= ref_thr)
      r.evaluated
  in
  let no_buf_increase =
    List.filter
      (fun e -> float_of_int e.metrics.Mccm.Metrics.buffer_bytes <= ref_buf)
      r.evaluated
  in
  if matching_thr = [] && no_buf_increase = [] then None
  else begin
    let buffer_reduction =
      match matching_thr with
      | [] -> 0.0
      | es ->
        let best =
          Util.Stats.minimum
            (List.map
               (fun e -> float_of_int e.metrics.Mccm.Metrics.buffer_bytes)
               es)
        in
        Float.max 0.0 (1.0 -. (best /. ref_buf))
    in
    let throughput_gain =
      match no_buf_increase with
      | [] -> 0.0
      | es ->
        let best =
          Util.Stats.maximum
            (List.map (fun e -> e.metrics.Mccm.Metrics.throughput_ips) es)
        in
        Float.max 0.0 ((best /. ref_thr) -. 1.0)
    in
    Some (buffer_reduction, throughput_gain)
  end
