(** Random design-space exploration driven by MCCM's fast evaluation
    (paper Use Case 3 / Fig. 10). *)

type evaluated = {
  spec : Arch.Custom.spec;
  metrics : Mccm.Metrics.t;
}

type result = {
  sampled : int;                      (** designs drawn, duplicates included *)
  distinct : int;
      (** distinct designs after deduplication; the dedup ratio is
          [1 - distinct / sampled] *)
  evaluated : evaluated list;
      (** feasible distinct designs, first-occurrence order *)
  front : evaluated Pareto.point list;
      (** throughput-up / buffer-down Pareto front *)
  elapsed_s : float;                  (** wall time of the sweep *)
  stats : Mccm.Eval_session.stats;    (** session counters after the sweep *)
}

val run :
  ?seed:int64 ->
  ?ce_counts:int list ->
  ?domains:int ->
  ?clamp:bool ->
  ?pool:Util.Parallel.Pool.t ->
  ?session:Mccm.Eval_session.t ->
  samples:int ->
  Cnn.Model.t ->
  Platform.Board.t ->
  result
(** [run ~samples model board] draws custom designs uniformly (CE counts
    default to the paper's 2-11), evaluates each with the analytical
    model, and extracts the throughput/buffer Pareto front.  Every draw
    goes through [session] — a duplicate is an architecture-cache hit,
    so the session's hit-rate statistics reflect real duplication — and
    [evaluated] keeps each distinct design's first occurrence, feasible
    ones only.  Deterministic for a fixed [seed] (default 42),
    independent of [domains], [pool] and of [session] warmth.

    [domains] (default 1) spreads the evaluation over a {!Crew}: one
    warm session fork per pool worker, deterministic contiguous chunks
    merged in draw order.  The whole design set is drawn from a single
    PRNG stream before any evaluation starts, so a given
    [(seed, samples)] pair yields the same designs — and the same
    result, in the same order — for every domain count.  The value is
    clamped to [Domain.recommended_domain_count ()] unless
    [~clamp:false] (oversubscribing cores only adds garbage-collector
    synchronisation); [pool] reuses a caller-owned persistent domain
    pool instead (then [domains]/[clamp] are ignored).

    [session] (default: a fresh one) memoizes evaluation across the
    sweep and across calls — pass one session to successive runs on the
    same (model, board) to keep its caches warm.  With a multi-worker
    crew each worker evaluates on a {!Mccm.Eval_session.fork}, merged
    back at the end.
    @raise Invalid_argument if [session] is bound to a different
    board. *)

val improvement_over :
  result -> reference:Mccm.Metrics.t -> (float * float) option
(** [improvement_over r ~reference] summarises Fig. 10's headline: among
    explored designs with throughput at least the reference's, the
    largest buffer reduction; and among all, the largest throughput gain
    at no buffer increase.  Returns
    [(buffer_reduction_frac, throughput_gain_frac)], or [None] when no
    design qualifies on either count. *)
