(** Random design-space exploration driven by MCCM's fast evaluation
    (paper Use Case 3 / Fig. 10). *)

type evaluated = {
  spec : Arch.Custom.spec;
  metrics : Mccm.Metrics.t;
}

type result = {
  sampled : int;                      (** designs drawn *)
  evaluated : evaluated list;         (** feasible ones, evaluation order *)
  front : evaluated Pareto.point list;
      (** throughput-up / buffer-down Pareto front *)
  elapsed_s : float;                  (** wall time of the sweep *)
}

val run :
  ?seed:int64 ->
  ?ce_counts:int list ->
  ?domains:int ->
  samples:int ->
  Cnn.Model.t ->
  Platform.Board.t ->
  result
(** [run ~samples model board] draws custom designs uniformly (CE counts
    default to the paper's 2-11), evaluates each with the analytical
    model, and extracts the throughput/buffer Pareto front.  Infeasible
    designs are dropped.  Deterministic for a fixed [seed] (default 42)
    and fixed [domains].

    [domains] (default 1) spreads the evaluation over that many parallel
    OCaml domains.  The whole design set is drawn from a single PRNG
    stream before any evaluation starts, so a given [(seed, samples)]
    pair yields the same designs — and the same result, in the same
    order — for every domain count.  The value is clamped to
    [Domain.recommended_domain_count ()]; oversubscribing cores only
    adds garbage-collector synchronisation. *)

val improvement_over :
  result -> reference:Mccm.Metrics.t -> (float * float) option
(** [improvement_over r ~reference] summarises Fig. 10's headline: among
    explored designs with throughput at least the reference's, the
    largest buffer reduction; and among all, the largest throughput gain
    at no buffer increase.  Returns
    [(buffer_reduction_frac, throughput_gain_frac)], or [None] when no
    design qualifies on either count. *)
