(* Binomial in floats: the design-space sizes exceed integer range. *)
let float_binomial n k =
  if k < 0 || k > n then 0.0
  else begin
    let k = min k (n - k) in
    let acc = ref 1.0 in
    for i = 1 to k do
      acc := !acc *. float_of_int (n - k + i) /. float_of_int i
    done;
    !acc
  end

(* Binomial in saturating integers: exact while it fits, [max_int]
   beyond.  The branch-and-bound enumerator only ever compares these
   counts against a spec cap, so saturation is harmless there. *)
let binomial_capped n k =
  if k < 0 || k > n then 0
  else begin
    let k = min k (n - k) in
    let acc = ref 1 in
    (try
       for i = 1 to k do
         let m = n - k + i in
         if !acc > max_int / m then begin
           acc := max_int;
           raise Exit
         end;
         (* C(n-k+i, i) is an integer, so the running product stays
            divisible by i. *)
         acc := !acc * m / i
       done
     with Exit -> ());
    !acc
  end

let completions ~num_layers ~first ~segments =
  if segments < 1 || first < 0 || first >= num_layers then 0
  else binomial_capped (num_layers - first - 1) (segments - 1)

let designs_for_ce_count ~num_layers ~ces =
  let total = ref 0.0 in
  for f = 1 to ces - 1 do
    let s = ces - f in
    let tail_layers = num_layers - f in
    if tail_layers >= s then
      total := !total +. float_binomial (tail_layers - 1) (s - 1)
  done;
  !total

let total_designs ~num_layers ~ce_counts =
  List.fold_left
    (fun acc ces -> acc +. designs_for_ce_count ~num_layers ~ces)
    0.0 ce_counts

let random_spec rng ~num_layers ~ce_counts =
  if ce_counts = [] then invalid_arg "Space.random_spec: no CE counts";
  let candidates =
    List.filter
      (fun c -> c >= 2 && designs_for_ce_count ~num_layers ~ces:c > 0.0)
      ce_counts
  in
  if candidates = [] then
    invalid_arg "Space.random_spec: no feasible CE count";
  let ces = Util.Prng.choose rng (Array.of_list candidates) in
  (* Draw the pipelined-block depth, then the tail split. *)
  let rec draw_f () =
    let f = Util.Prng.int_in_range rng ~lo:1 ~hi:(ces - 1) in
    let s = ces - f in
    if num_layers - f >= s then (f, s) else draw_f ()
  in
  let f, s = draw_f () in
  let tail_boundaries =
    if s = 1 then []
    else
      Util.Prng.sorted_distinct_ints rng ~count:(s - 1) ~lo:(f + 1)
        ~hi:(num_layers - 1)
  in
  { Arch.Custom.pipelined_layers = f; tail_boundaries }
