(* Binomial in floats: the design-space sizes exceed integer range. *)
let float_binomial n k =
  if k < 0 || k > n then 0.0
  else begin
    let k = min k (n - k) in
    let acc = ref 1.0 in
    for i = 1 to k do
      acc := !acc *. float_of_int (n - k + i) /. float_of_int i
    done;
    !acc
  end

(* Binomial in saturating integers: exact while it fits, [max_int]
   beyond.  The branch-and-bound enumerator only ever compares these
   counts against a spec cap, so saturation is harmless there. *)
let binomial_capped n k =
  if k < 0 || k > n then 0
  else begin
    let k = min k (n - k) in
    let acc = ref 1 in
    (try
       for i = 1 to k do
         let m = n - k + i in
         if !acc > max_int / m then begin
           acc := max_int;
           raise Exit
         end;
         (* C(n-k+i, i) is an integer, so the running product stays
            divisible by i. *)
         acc := !acc * m / i
       done
     with Exit -> ());
    !acc
  end

let completions ~num_layers ~first ~segments =
  if segments < 1 || first < 0 || first >= num_layers then 0
  else binomial_capped (num_layers - first - 1) (segments - 1)

let designs_for_ce_count ~num_layers ~ces =
  let total = ref 0.0 in
  for f = 1 to ces - 1 do
    let s = ces - f in
    let tail_layers = num_layers - f in
    if tail_layers >= s then
      total := !total +. float_binomial (tail_layers - 1) (s - 1)
  done;
  !total

let total_designs ~num_layers ~ce_counts =
  List.fold_left
    (fun acc ces -> acc +. designs_for_ce_count ~num_layers ~ces)
    0.0 ce_counts

let sat_add a b = if a > max_int - b then max_int else a + b

let designs_capped ~num_layers ~ces =
  let total = ref 0 in
  for f = 1 to min (ces - 1) (num_layers - 1) do
    let s = ces - f in
    if num_layers - f >= s then
      total := sat_add !total (completions ~num_layers ~first:f ~segments:s)
  done;
  !total

(* ------------------------------------------------- flat encoding *)

module Flat = struct
  (* One spec per [width]-slot row: slot 0 is the pipelined depth [f],
     slots 1 .. width - 1 the tail boundaries in ascending order,
     0-padded.  Zero is a safe end sentinel — a real boundary is at
     least [f + 1 >= 2].  A Bigarray holds unboxed ints outside the
     OCaml heap: enumerating into it allocates nothing per candidate,
     the GC never scans it, and domains share it without write
     conflicts (disjoint rows). *)

  type buf = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

  let width ~ces =
    if ces < 2 then invalid_arg "Space.Flat.width: ces < 2";
    ces - 1

  let create ~width n =
    if width < 1 then invalid_arg "Space.Flat.create: width < 1";
    if n < 0 then invalid_arg "Space.Flat.create: negative count";
    let buf =
      Bigarray.Array1.create Bigarray.int Bigarray.c_layout (n * width)
    in
    Bigarray.Array1.fill buf 0;
    buf

  let count buf ~width = Bigarray.Array1.dim buf / width
  let pipelined buf ~width i = buf.{i * width}

  let boundary buf ~width i ~k = buf.{(i * width) + 1 + k}

  let segments buf ~width i =
    let off = i * width in
    let s = ref 1 in
    (try
       for k = 1 to width - 1 do
         if buf.{off + k} = 0 then raise Exit;
         incr s
       done
     with Exit -> ());
    !s

  let encode buf ~width ~at spec =
    let f = spec.Arch.Custom.pipelined_layers in
    let bs = spec.Arch.Custom.tail_boundaries in
    if f < 1 then invalid_arg "Space.Flat.encode: pipelined_layers < 1";
    if 1 + List.length bs > width then
      invalid_arg "Space.Flat.encode: spec too wide for row";
    let off = at * width in
    for k = 0 to width - 1 do
      buf.{off + k} <- 0
    done;
    buf.{off} <- f;
    List.iteri
      (fun j b ->
        if b < 2 then invalid_arg "Space.Flat.encode: boundary < 2";
        buf.{off + 1 + j} <- b)
      bs

  let decode buf ~width i =
    let off = i * width in
    let rec tail k acc =
      if k >= width then List.rev acc
      else
        let b = buf.{off + k} in
        if b = 0 then List.rev acc else tail (k + 1) (b :: acc)
    in
    { Arch.Custom.pipelined_layers = buf.{off}; tail_boundaries = tail 1 [] }

  let enumerate ~num_layers ~ces ~max_specs =
    if ces < 2 then invalid_arg "Space.Flat.enumerate: ces < 2";
    let w = width ~ces in
    let total = min max_specs (designs_capped ~num_layers ~ces) in
    let total = max 0 total in
    let buf = create ~width:w total in
    let filled = ref 0 in
    (* Same recursion as [Enumerate.enumerate_specs], writing rows
       directly: [cur] is the row under construction, [depth] its next
       free slot. *)
    let cur = Array.make w 0 in
    let emit depth =
      if !filled < total then begin
        let off = !filled * w in
        for k = 0 to depth - 1 do
          buf.{off + k} <- cur.(k)
        done;
        incr filled
      end
    in
    let rec boundaries ~from ~remaining ~depth =
      if !filled >= total then ()
      else if remaining = 0 then emit depth
      else
        for b = from to num_layers - remaining do
          cur.(depth) <- b;
          boundaries ~from:(b + 1) ~remaining:(remaining - 1)
            ~depth:(depth + 1)
        done
    in
    for f = 1 to min (ces - 1) (num_layers - 1) do
      let s = ces - f in
      if num_layers - f >= s then begin
        cur.(0) <- f;
        boundaries ~from:(f + 1) ~remaining:(s - 1) ~depth:1
      end
    done;
    buf
end

let random_spec rng ~num_layers ~ce_counts =
  if ce_counts = [] then invalid_arg "Space.random_spec: no CE counts";
  let candidates =
    List.filter
      (fun c -> c >= 2 && designs_for_ce_count ~num_layers ~ces:c > 0.0)
      ce_counts
  in
  if candidates = [] then
    invalid_arg "Space.random_spec: no feasible CE count";
  let ces = Util.Prng.choose rng (Array.of_list candidates) in
  (* Draw the pipelined-block depth, then the tail split. *)
  let rec draw_f () =
    let f = Util.Prng.int_in_range rng ~lo:1 ~hi:(ces - 1) in
    let s = ces - f in
    if num_layers - f >= s then (f, s) else draw_f ()
  in
  let f, s = draw_f () in
  let tail_boundaries =
    if s = 1 then []
    else
      Util.Prng.sorted_distinct_ints rng ~count:(s - 1) ~lo:(f + 1)
        ~hi:(num_layers - 1)
  in
  { Arch.Custom.pipelined_layers = f; tail_boundaries }
