(** The custom design space of the paper's Use Case 3.

    A custom accelerator is a Hybrid-like tile-pipelined first block over
    the first [f] layers followed by [s] Segmented-like single-CE blocks
    over the rest, coarse-grained pipelined throughout.  For a CNN with
    [n] layers and a CE budget of [c] engines, the free choices are [f],
    [s] with [f + s = c], and the [s - 1] tail segment boundaries — a
    space that grows as sums of binomials and reaches tens of billions of
    designs for Xception (the paper quotes roughly 97.1 billion for CE
    counts 2 to 11). *)

val completions : num_layers:int -> first:int -> segments:int -> int
(** [completions ~num_layers ~first ~segments] counts the ways to split
    layers [first .. num_layers - 1] into exactly [segments] non-empty
    single-CE segments: [C(num_layers - first - 1, segments - 1)],
    saturating at [max_int] (callers compare against a spec cap, so the
    saturated value behaves like "more than any cap").  This is the
    subtree-size arithmetic of the branch-and-bound enumerator: a
    partial spec whose fixed prefix ends at [first] with [segments]
    tail segments still open roots exactly this many complete specs,
    contiguous in lexicographic enumeration order.  Returns 0 when the
    range is empty or [segments < 1]. *)

val designs_for_ce_count : num_layers:int -> ces:int -> float
(** [designs_for_ce_count ~num_layers ~ces] counts the custom designs
    using exactly [ces] engines: sum over [f >= 1, s >= 1, f + s = ces]
    of [C(num_layers - f - 1, s - 1)].  Returned as float — the counts
    overflow 62-bit integers for deep CNNs. *)

val total_designs : num_layers:int -> ce_counts:int list -> float
(** Total across a list of CE counts (the paper sweeps 2 to 11). *)

val designs_capped : num_layers:int -> ces:int -> int
(** Integer twin of {!designs_for_ce_count}: exact while it fits,
    saturating at [max_int].  This is the length the flat enumerator
    would produce uncapped; callers [min] it against a spec cap. *)

(** Unboxed flat spec rows for allocation-free enumeration.

    A spec with CE budget [ces] fits a row of [width ~ces = ces - 1]
    int slots: slot 0 holds the pipelined depth [f], slots
    [1 .. width - 1] the ascending tail boundaries, padded with 0 (a
    real boundary is at least [f + 1 >= 2], so 0 is an unambiguous end
    sentinel; a spec with [s] tail segments uses [s - 1] boundary
    slots and [f + s = ces] only when the row is full).  Rows live in
    a [Bigarray] off the OCaml heap: the enumeration and bound-pruning
    hot loops touch no GC-visible allocation per candidate, and
    domains can read (and write disjoint rows of) one shared buffer
    without coordination. *)
module Flat : sig
  type buf = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

  val width : ces:int -> int
  (** Slots per row, [ces - 1].
      @raise Invalid_argument if [ces < 2]. *)

  val create : width:int -> int -> buf
  (** [create ~width n] is a zeroed buffer of [n] rows. *)

  val count : buf -> width:int -> int
  (** Rows in the buffer. *)

  val pipelined : buf -> width:int -> int -> int
  (** [pipelined buf ~width i] is row [i]'s pipelined depth [f]. *)

  val boundary : buf -> width:int -> int -> k:int -> int
  (** [boundary buf ~width i ~k] is row [i]'s [k]-th boundary slot
      ([k] in [0 .. width - 2]); 0 means the row's boundaries ended
      before slot [k]. *)

  val segments : buf -> width:int -> int -> int
  (** Row [i]'s tail segment count [s] (nonzero boundary slots + 1);
      the row's CE count is [pipelined + segments]. *)

  val encode : buf -> width:int -> at:int -> Arch.Custom.spec -> unit
  (** Write a spec into row [at].
      @raise Invalid_argument if the spec needs more than [width]
      slots or violates the row invariants ([f >= 1], boundaries
      [>= 2]). *)

  val decode : buf -> width:int -> int -> Arch.Custom.spec
  (** Read row [i] back as a list-based spec.
      [decode] after {!encode} is the identity on valid specs. *)

  val enumerate : num_layers:int -> ces:int -> max_specs:int -> buf
  (** All specs with exactly [ces] engines in lexicographic order —
      the same order, count, and cap behaviour as
      [Enumerate.enumerate_specs] — written straight into a fresh
      buffer of [min max_specs (designs_capped ...)] rows.
      @raise Invalid_argument if [ces < 2]. *)
end

val random_spec :
  Util.Prng.t -> num_layers:int -> ce_counts:int list -> Arch.Custom.spec
(** [random_spec rng ~num_layers ~ce_counts] draws a design uniformly
    enough for exploration: a CE count from [ce_counts], a split of it
    into [f] and [s], and [s - 1] distinct random boundaries.
    @raise Invalid_argument if [ce_counts] is empty or infeasible for
    the layer count. *)
