(** The custom design space of the paper's Use Case 3.

    A custom accelerator is a Hybrid-like tile-pipelined first block over
    the first [f] layers followed by [s] Segmented-like single-CE blocks
    over the rest, coarse-grained pipelined throughout.  For a CNN with
    [n] layers and a CE budget of [c] engines, the free choices are [f],
    [s] with [f + s = c], and the [s - 1] tail segment boundaries — a
    space that grows as sums of binomials and reaches tens of billions of
    designs for Xception (the paper quotes roughly 97.1 billion for CE
    counts 2 to 11). *)

val completions : num_layers:int -> first:int -> segments:int -> int
(** [completions ~num_layers ~first ~segments] counts the ways to split
    layers [first .. num_layers - 1] into exactly [segments] non-empty
    single-CE segments: [C(num_layers - first - 1, segments - 1)],
    saturating at [max_int] (callers compare against a spec cap, so the
    saturated value behaves like "more than any cap").  This is the
    subtree-size arithmetic of the branch-and-bound enumerator: a
    partial spec whose fixed prefix ends at [first] with [segments]
    tail segments still open roots exactly this many complete specs,
    contiguous in lexicographic enumeration order.  Returns 0 when the
    range is empty or [segments < 1]. *)

val designs_for_ce_count : num_layers:int -> ces:int -> float
(** [designs_for_ce_count ~num_layers ~ces] counts the custom designs
    using exactly [ces] engines: sum over [f >= 1, s >= 1, f + s = ces]
    of [C(num_layers - f - 1, s - 1)].  Returned as float — the counts
    overflow 62-bit integers for deep CNNs. *)

val total_designs : num_layers:int -> ce_counts:int list -> float
(** Total across a list of CE counts (the paper sweeps 2 to 11). *)

val random_spec :
  Util.Prng.t -> num_layers:int -> ce_counts:int list -> Arch.Custom.spec
(** [random_spec rng ~num_layers ~ce_counts] draws a design uniformly
    enough for exploration: a CE count from [ce_counts], a split of it
    into [f] and [s], and [s - 1] distinct random boundaries.
    @raise Invalid_argument if [ce_counts] is empty or infeasible for
    the layer count. *)
