type t = {
  id : int;
  pes : int;
  parallelism : Parallelism.t;
  dataflow : Dataflow.t;
}

let v ~id ~pes ~parallelism ~dataflow =
  if pes <= 0 then invalid_arg "Engine.v: non-positive PE count";
  if Parallelism.degree parallelism > pes then
    invalid_arg "Engine.v: parallelism degree exceeds PE budget";
  { id; pes; parallelism; dataflow }

(* Eq. 1: one ceil-division term per convolution loop dimension. *)
let cycles_with_extents t extents =
  List.fold_left
    (fun acc (d, extent) ->
      acc * Util.Int_math.ceil_div extent (Parallelism.factor t.parallelism d))
    1 extents

let dim_extents layer =
  List.map
    (fun d -> (d, Parallelism.layer_dim_extent layer d))
    Parallelism.all_dims

let layer_cycles t layer = cycles_with_extents t (dim_extents layer)

let tile_cycles t layer ~rows =
  let rows = max 1 rows in
  let extents =
    List.map
      (fun (d, extent) ->
        match d with
        | Parallelism.Height -> (d, min rows extent)
        | _ -> (d, extent))
      (dim_extents layer)
  in
  cycles_with_extents t extents

let ideal_cycles ~pes layer =
  Util.Int_math.ceil_div (Cnn.Layer.macs layer) pes

(* Table-indexed fast path: the same Eq.-1 products computed from
   precomputed loop extents instead of per-call [Layer.out_shape]
   recomputation.  Integer products agree with [cycles_with_extents]
   exactly (same factors, and machine-int multiplication is
   order-independent), so results are bit-identical. *)

let cd = Util.Int_math.ceil_div

let layer_cycles_at t tbl i =
  let p = t.parallelism in
  let f d = Parallelism.factor p d in
  let ef, ec, eh, ew, ekh, ekw = Cnn.Table.extents tbl i in
  cd ef (f Parallelism.Filters)
  * cd ec (f Parallelism.Channels)
  * cd eh (f Parallelism.Height)
  * cd ew (f Parallelism.Width)
  * cd ekh (f Parallelism.Kernel_h)
  * cd ekw (f Parallelism.Kernel_w)

let tile_cycles_at t tbl i ~rows =
  let rows = max 1 rows in
  let p = t.parallelism in
  let f d = Parallelism.factor p d in
  let ef, ec, eh, ew, ekh, ekw = Cnn.Table.extents tbl i in
  cd ef (f Parallelism.Filters)
  * cd ec (f Parallelism.Channels)
  * cd (min rows eh) (f Parallelism.Height)
  * cd ew (f Parallelism.Width)
  * cd ekh (f Parallelism.Kernel_h)
  * cd ekw (f Parallelism.Kernel_w)

let ideal_cycles_at ~pes tbl i = cd (Cnn.Table.macs tbl i) pes

let utilization t layer =
  let actual = layer_cycles t layer in
  let ideal = ideal_cycles ~pes:t.pes layer in
  float_of_int ideal /. float_of_int actual

let average_utilization t layers =
  if layers = [] then invalid_arg "Engine.average_utilization: empty list";
  let weighted, total =
    List.fold_left
      (fun (w, tot) l ->
        let m = float_of_int (Cnn.Layer.macs l) in
        (w +. (m *. utilization t l), tot +. m))
      (0.0, 0.0) layers
  in
  weighted /. total

(* Mirrors [average_utilization]'s left-to-right float accumulation
   exactly (same additions in the same order on the same values), so
   the result is bit-identical to the list fold. *)
let average_utilization_at t tbl ~first ~last =
  if first > last then invalid_arg "Engine.average_utilization_at: empty range";
  let weighted = ref 0.0 and total = ref 0.0 in
  for i = first to last do
    let m = float_of_int (Cnn.Table.macs tbl i) in
    let u =
      float_of_int (ideal_cycles_at ~pes:t.pes tbl i)
      /. float_of_int (layer_cycles_at t tbl i)
    in
    weighted := !weighted +. (m *. u);
    total := !total +. m
  done;
  !weighted /. !total

let pp ppf t =
  Format.fprintf ppf "CE%d[%d PEs, %a, %a]" t.id t.pes Parallelism.pp
    t.parallelism Dataflow.pp t.dataflow
