(** A compute engine: a grid of PEs with a parallelism strategy and a
    dataflow.

    The central quantity is {!layer_cycles}, the paper's Equation 1:

    {v Lat(L, CE) = prod over d in DD of ceil(|d| / Par(CE, d)) v}

    with the constraint that the product of parallelism factors does not
    exceed the engine's PE count.  Ceil divisions are where PE
    underutilization comes from: an engine whose factors do not divide a
    layer's loop extents wastes PEs on the ragged edges. *)

type t = private {
  id : int;                      (** 1-based, unique within an accelerator *)
  pes : int;                     (** PE (DSP) budget of this engine *)
  parallelism : Parallelism.t;
  dataflow : Dataflow.t;
}

val v : id:int -> pes:int -> parallelism:Parallelism.t -> dataflow:Dataflow.t -> t
(** Builds an engine.
    @raise Invalid_argument if [pes <= 0] or if the parallelism degree
    exceeds [pes] (violates the PE constraint of Eq. 1). *)

val layer_cycles : t -> Cnn.Layer.t -> int
(** [layer_cycles ce l] is Eq. 1's latency, in cycles, of processing the
    whole layer [l] on [ce]. *)

val tile_cycles : t -> Cnn.Layer.t -> rows:int -> int
(** [tile_cycles ce l ~rows] is the latency of one feature-map tile of
    [rows] OFM rows (full width, all channels) — the [FMsTile] granularity
    of paper Eq. 2.  [rows] is clamped to the layer's OFM height. *)

val ideal_cycles : pes:int -> Cnn.Layer.t -> int
(** [ideal_cycles ~pes l] is the lower bound [ceil(MACs / pes)]: latency at
    perfect PE utilization. *)

val utilization : t -> Cnn.Layer.t -> float
(** [utilization ce l] in (0, 1]: {!ideal_cycles} over {!layer_cycles} with
    [ce]'s full PE budget.  1.0 means no PE ever idles. *)

val average_utilization : t -> Cnn.Layer.t list -> float
(** MAC-weighted average of {!utilization} over a set of layers — the
    quantity a single-CE block optimises for (paper Section IV-A1).
    @raise Invalid_argument on an empty list. *)

val pp : Format.formatter -> t -> unit
(** e.g. ["CE3[256 PEs, F16xH4xW4, OS]"]. *)

(** {1 Table-indexed fast path}

    The same quantities computed from a {!Cnn.Table} by absolute layer
    index — no [Layer.out_shape] recomputation, no per-call extent-list
    allocation.  Results are bit-identical to the [Layer.t] versions. *)

val layer_cycles_at : t -> Cnn.Table.t -> int -> int
(** [layer_cycles_at ce tbl i] equals
    [layer_cycles ce (Model.layer m i)]. *)

val tile_cycles_at : t -> Cnn.Table.t -> int -> rows:int -> int
(** [tile_cycles_at ce tbl i ~rows] equals
    [tile_cycles ce (Model.layer m i) ~rows]. *)

val ideal_cycles_at : pes:int -> Cnn.Table.t -> int -> int
(** [ideal_cycles_at ~pes tbl i] equals
    [ideal_cycles ~pes (Model.layer m i)]. *)

val average_utilization_at : t -> Cnn.Table.t -> first:int -> last:int -> float
(** [average_utilization_at ce tbl ~first ~last] equals
    [average_utilization ce (Model.layers_in_range m ~first ~last)]
    bit-exactly (identical float operations in identical order).
    @raise Invalid_argument on an empty range. *)
