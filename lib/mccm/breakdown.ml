type segment = {
  label : string;
  block_index : int;
  compute_s : float;
  memory_s : float;
  time_s : float;
  buffer_bytes : int;
  utilization : float;
  accesses : Access.t;
}

type t = {
  segments : segment list;
  accesses : Access.t;
  stall_fraction : float;
}

let underutilization s = 1.0 -. s.utilization

let memory_bound s = s.memory_s > s.compute_s

let memory_bound_count t =
  List.length (List.filter memory_bound t.segments)

let segment_times t = List.map (fun s -> s.time_s) t.segments

let of_segments (segments : segment list) =
  let accesses =
    Access.sum (List.map (fun (s : segment) -> s.accesses) segments)
  in
  let total_time =
    List.fold_left (fun acc s -> acc +. s.time_s) 0.0 segments
  in
  let stalled =
    List.fold_left
      (fun acc s -> acc +. Float.max 0.0 (s.memory_s -. s.compute_s))
      0.0 segments
  in
  let stall_fraction = if total_time > 0.0 then stalled /. total_time else 0.0 in
  { segments; accesses; stall_fraction }

let pp ppf t =
  Format.fprintf ppf "%-8s %12s %12s %12s %8s %10s@." "segment" "compute"
    "memory" "buffer" "util" "accesses";
  List.iter
    (fun s ->
      Format.fprintf ppf "%-8s %12s %12s %12s %7.1f%% %10s@." s.label
        (Format.asprintf "%a" Util.Units.pp_seconds s.compute_s)
        (Format.asprintf "%a" Util.Units.pp_seconds s.memory_s)
        (Format.asprintf "%a" Util.Units.pp_bytes s.buffer_bytes)
        (100.0 *. s.utilization)
        (Format.asprintf "%a" Util.Units.pp_bytes (Access.total s.accesses)))
    t.segments;
  Format.fprintf ppf "stall fraction: %.1f%%" (100.0 *. t.stall_fraction)
