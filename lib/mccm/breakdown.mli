(** Fine-grained evaluation outputs (paper Use Case 2).

    A {e segment} is the paper's unit of fine-grained reporting: one
    single-CE block, one pipelined-CEs block that fits its layers in a
    single pass, or — for a pipelined block that processes its layers in
    several round-robin passes — one such round (Fig. 6a labels
    SegmentedRR rounds as segments). *)

type segment = {
  label : string;            (** e.g. ["seg3"] *)
  block_index : int;         (** which architecture block it belongs to *)
  compute_s : float;         (** pure compute time of the segment *)
  memory_s : float;          (** off-chip transfer time of the segment *)
  time_s : float;            (** max of the two (overlap assumption) *)
  buffer_bytes : int;        (** on-chip buffer attributed to the segment *)
  utilization : float;       (** MAC-weighted PE utilization in (0, 1] *)
  accesses : Access.t;       (** off-chip traffic of the segment *)
}

type t = {
  segments : segment list;   (** in execution order *)
  accesses : Access.t;       (** whole-accelerator split (Fig. 7) *)
  stall_fraction : float;
      (** share of execution time engines spend waiting for memory:
          sum of max(0, memory - compute) over segment time (Fig. 6a's
          "29% of the overall execution time, CEs are idle") *)
}

val underutilization : segment -> float
(** [1 - utilization]: the quantity Fig. 9b plots. *)

val memory_bound : segment -> bool
(** True when the segment's transfer time exceeds its compute time — the
    paper's criterion for where compression (and more bandwidth) pays. *)

val memory_bound_count : t -> int
(** Number of memory-bound segments; the quantity the differential
    validator's bandwidth-monotonicity law tracks. *)

val segment_times : t -> float list
(** Per-segment execution times in execution order, for per-segment
    comparison against a reference. *)

val of_segments : segment list -> t
(** Aggregates totals and the stall fraction from per-segment data. *)

val pp : Format.formatter -> t -> unit
(** Tabular dump of all segments. *)
