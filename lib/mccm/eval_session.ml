(* A session binds one (model, board, build options) triple and layers
   three content-keyed memo tables under the end-to-end evaluation:

   - a whole-architecture table keyed by the block structure (the
     display name is excluded — nothing the evaluator computes reads
     it), which turns revisits of the same candidate into a lookup;
   - {!Seg_cache}, sharing per-segment model results between distinct
     architectures that agree on a block (layer range + engines + plan
     slice + boundary flags);
   - {!Builder.Build}'s build-time cache, sharing planning floors and
     per-CE parallelism choices between such blocks at build time.

   Because every key carries its full structural payload, a hit is
   bit-identical to recomputation; the session changes wall-clock only. *)

module Fp = Util.Fingerprint

(* Global observability counters next to the per-session ones: the
   per-session stats stay the API (fork/absorb keeps them exact per
   session); these feed `mccm --stats` and the bench phase breakdown
   across every session in the process. *)
let c_evals = Mccm_obs.Metric.counter "session.evaluations"
let c_arch_hit = Mccm_obs.Metric.counter "session.arch.hit"
let c_arch_miss = Mccm_obs.Metric.counter "session.arch.miss"

type arch_key = {
  a_fp : int;
  a_style : Arch.Block.style;
  a_blocks : Arch.Block.t list;
  a_coarse : bool;
}

let fp_block h = function
  | Arch.Block.Single { ce; first; last } ->
    List.fold_left Fp.int (Fp.int h 0) [ ce; first; last ]
  | Arch.Block.Pipelined { ce_first; ce_last; first; last } ->
    List.fold_left Fp.int (Fp.int h 1) [ ce_first; ce_last; first; last ]

let arch_key (a : Arch.Block.arch) =
  let h = Fp.empty in
  let h =
    Fp.int h
      (match a.Arch.Block.style with
      | Arch.Block.Segmented -> 0
      | Arch.Block.Segmented_rr -> 1
      | Arch.Block.Hybrid -> 2
      | Arch.Block.Custom -> 3)
  in
  let h = Fp.bool h a.Arch.Block.coarse_pipelined in
  let h = Fp.list fp_block h a.Arch.Block.blocks in
  { a_fp = Fp.to_int h; a_style = a.Arch.Block.style;
    a_blocks = a.Arch.Block.blocks; a_coarse = a.Arch.Block.coarse_pipelined }

module Arch_tbl = Hashtbl.Make (struct
  type t = arch_key

  let hash k = k.a_fp

  let equal x y =
    x.a_fp = y.a_fp && x.a_coarse = y.a_coarse && x.a_style = y.a_style
    && x.a_blocks = y.a_blocks
end)

type t = {
  model : Cnn.Model.t;
  board : Platform.Board.t;
  options : Builder.Build.options;
  memoize : bool;
  table : Cnn.Table.t option;
  seg : Seg_cache.t;
  bcache : Builder.Build.cache;
  archs : Evaluate.t Arch_tbl.t;
  mutable n_evals : int;
  mutable n_arch_hits : int;
}

type stats = {
  evaluations : int;
  arch_hits : int;
  seg_hits : int;
  seg_misses : int;
  seg_single : int * int;
  seg_pipelined : int * int;
  plan_hits : int;
  plan_misses : int;
}

let create ?(options = Builder.Build.default_options) ?(memoize = true)
    ?(use_table = true) model board =
  {
    model;
    board;
    options;
    memoize;
    table = (if use_table then Some (Cnn.Table.of_model model) else None);
    seg = Seg_cache.create ();
    bcache = Builder.Build.create_cache ();
    archs = Arch_tbl.create 512;
    n_evals = 0;
    n_arch_hits = 0;
  }

let model t = t.model
let board t = t.board
let memoized t = t.memoize
let table t = t.table

let evaluate ?(store_arch = true) t archi =
  t.n_evals <- t.n_evals + 1;
  Mccm_obs.Metric.incr c_evals;
  if not t.memoize then
    Evaluate.run ?table:t.table
      (Builder.Build.build ~options:t.options ?table:t.table t.model t.board
         archi)
  else begin
    let key = arch_key archi in
    match Arch_tbl.find_opt t.archs key with
    | Some e ->
      t.n_arch_hits <- t.n_arch_hits + 1;
      Mccm_obs.Metric.incr c_arch_hit;
      e
    | None ->
      Mccm_obs.Metric.incr c_arch_miss;
      let built =
        Builder.Build.build ~options:t.options ~cache:t.bcache ?table:t.table
          t.model t.board archi
      in
      let e = Evaluate.run ~cache:t.seg ?table:t.table built in
      if store_arch then Arch_tbl.add t.archs key e;
      e
  end

let metrics ?store_arch t archi = (evaluate ?store_arch t archi).Evaluate.metrics

let metrics_batch ?store_arch t archis = List.map (metrics ?store_arch t) archis

let fork t =
  {
    t with
    seg = Seg_cache.copy t.seg;
    bcache = Builder.Build.copy_cache t.bcache;
    archs = Arch_tbl.copy t.archs;
    n_evals = 0;
    n_arch_hits = 0;
  }

let absorb ~into t =
  Seg_cache.absorb ~into:into.seg t.seg;
  Builder.Build.absorb_cache ~into:into.bcache t.bcache;
  Arch_tbl.iter
    (fun k v ->
      if not (Arch_tbl.mem into.archs k) then Arch_tbl.add into.archs k v)
    t.archs;
  into.n_evals <- into.n_evals + t.n_evals;
  into.n_arch_hits <- into.n_arch_hits + t.n_arch_hits

let stats t =
  {
    evaluations = t.n_evals;
    arch_hits = t.n_arch_hits;
    seg_hits = Seg_cache.hits t.seg;
    seg_misses = Seg_cache.misses t.seg;
    seg_single = Seg_cache.single_counts t.seg;
    seg_pipelined = Seg_cache.pipelined_counts t.seg;
    plan_hits =
      Builder.Buffer_alloc.cache_hits (Builder.Build.plan_cache t.bcache);
    plan_misses =
      Builder.Buffer_alloc.cache_misses (Builder.Build.plan_cache t.bcache);
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "@[<h>%d evals: %d arch hits, %d/%d segment hits, %d/%d plan hits@]"
    s.evaluations s.arch_hits s.seg_hits (s.seg_hits + s.seg_misses)
    s.plan_hits (s.plan_hits + s.plan_misses)
