(** Memoized evaluation sessions for design-space exploration.

    A session binds one (model, board, build options) triple and
    memoizes the expensive pure stages of {!Evaluate.evaluate} across
    candidate architectures:

    - whole architectures, keyed by block structure (style, blocks,
      coarse pipelining — the display name is excluded, so renamed
      twins share one evaluation);
    - per-segment model results ({!Seg_cache}), shared between distinct
      architectures that agree on a block's layer range, engines, plan
      slice and boundary flags — a local-search move that shifts one
      boundary recomputes only the blocks it touches;
    - the builder's planning floors ({!Builder.Buffer_alloc}), sharing
      the pipelined tile search the same way at build time.

    Every cache key carries its full structural payload next to a
    precomputed content fingerprint, so hits are bit-identical to fresh
    evaluation — the session is semantically invisible and shows up only
    in wall-clock.  Created with [~memoize:false], a session bypasses
    every table (each request recomputes from scratch) while still
    counting evaluations, which is what the benchmark's uncached arm and
    the bit-exactness property tests run against.

    Sessions are not thread-safe.  For a Domains-parallel sweep, give
    each domain {!fork} of a shared session and {!absorb} the forks
    after joining; since caching never changes results, the sweep's
    output is independent of the fork/absorb schedule. *)

type t

val create :
  ?options:Builder.Build.options ->
  ?memoize:bool ->
  ?use_table:bool ->
  Cnn.Model.t ->
  Platform.Board.t ->
  t
(** [create model board] opens a session.  [options] defaults to
    {!Builder.Build.default_options}; [memoize] defaults to [true].
    [use_table] (default [true]) builds a {!Cnn.Table} once and threads
    it through every build and evaluation, replacing per-layer list
    walks with O(1) array reads; [~use_table:false] keeps the list-fold
    reference path — results are bit-identical either way. *)

val model : t -> Cnn.Model.t
val board : t -> Platform.Board.t

val memoized : t -> bool
(** Whether this session caches ([false] for the uncached baseline). *)

val table : t -> Cnn.Table.t option
(** The session's precomputed per-layer table, when enabled. *)

val evaluate : ?store_arch:bool -> t -> Arch.Block.arch -> Evaluate.t
(** [evaluate t archi] is [Evaluate.evaluate (model t) (board t) archi]
    (under the session's build options), served from the caches when
    possible.  [store_arch] (default [true]) controls whether a miss is
    added to the whole-architecture table; pass [false] from callers
    that never revisit a candidate (exhaustive enumeration) to keep the
    session's footprint flat — the segment and builder caches still
    memoize, and results are bit-identical either way. *)

val metrics : ?store_arch:bool -> t -> Arch.Block.arch -> Metrics.t
(** [(evaluate t archi).metrics]. *)

val metrics_batch :
  ?store_arch:bool -> t -> Arch.Block.arch list -> Metrics.t list
(** [metrics_batch t archis] evaluates the candidates in order within
    one session, so later candidates reuse everything earlier ones
    computed.  Equivalent to [List.map (metrics t) archis].
    [store_arch] as in {!evaluate} — the serving daemon batches
    one-shot requests with [~store_arch:false] to keep its footprint
    flat. *)

val fork : t -> t
(** Snapshot for another domain: same (model, board, options), copied
    tables, zeroed counters (so a later {!absorb} adds only the fork's
    own activity). *)

val absorb : into:t -> t -> unit
(** Merge a fork's cache entries and counters back.  First-writer wins
    on key clashes; entries are content-keyed, so clashing values are
    equal and the merge order never affects results. *)

type stats = {
  evaluations : int;  (** requests served, cached or not *)
  arch_hits : int;    (** served from the whole-architecture table *)
  seg_hits : int;
  seg_misses : int;   (** segment-model lookups on arch misses *)
  seg_single : int * int;
      (** (hits, misses) for single-CE segments alone *)
  seg_pipelined : int * int;
      (** (hits, misses) for pipelined blocks alone *)
  plan_hits : int;
  plan_misses : int;  (** planning-floor lookups on arch misses *)
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
