(* Observability hooks: one span per block-model evaluation (split by
   single-CE vs pipelined — the two model families the paper composes)
   plus one around each whole run.  Dormant, each is a single atomic
   load (see Mccm_obs.Control). *)
let c_single = Mccm_obs.Metric.counter "eval.single_ce.blocks"
let c_pipelined = Mccm_obs.Metric.counter "eval.pipelined.blocks"

type block_eval = {
  block_index : int;
  latency_s : float;
  ii_s : float;
  accesses : Access.t;
  segments : Breakdown.segment list;
}

type t = {
  metrics : Metrics.t;
  breakdown : Breakdown.t;
  blocks : block_eval list;
  initiation_interval_s : float;
  ii_compute_s : float;
  ii_memory_s : float;
}

let boundary_flags plan ~num_blocks ~index =
  let on_chip = plan.Builder.Buffer_alloc.inter_seg_on_chip in
  let input_on_chip = if index = 0 then false else on_chip.(index - 1) in
  let output_on_chip =
    if index = num_blocks - 1 then false else on_chip.(index)
  in
  (input_on_chip, output_on_chip)

(* Buffer bytes attributed to a block, including the on-chip double buffer
   toward its successor (Eq. 8's 2 x interSegBufferSz). *)
let block_buffer_bytes ?table (built : Builder.Build.t) ~index =
  let plan = built.Builder.Build.plan in
  let base =
    match
      (plan.Builder.Buffer_alloc.block_plans.(index),
       built.Builder.Build.blocks.(index))
    with
    | Builder.Buffer_alloc.Plan_single p, _ ->
      p.Builder.Buffer_alloc.weights_tile_bytes
      + p.Builder.Buffer_alloc.fm_capacity_bytes
    | ( Builder.Buffer_alloc.Plan_pipelined p,
        Builder.Build.Built_pipelined { first; _ } ) ->
      let bpe = built.Builder.Build.board.Platform.Board.bytes_per_element in
      let acc = ref 0 in
      Array.iteri
        (fun i tile ->
          acc := !acc + (2 * tile);
          if p.Builder.Buffer_alloc.weights_retained.(i) then
            let elems =
              match table with
              | Some t -> Cnn.Table.weight_elements t (first + i)
              | None ->
                Cnn.Layer.weight_elements
                  (Cnn.Model.layer built.Builder.Build.model (first + i))
            in
            acc := !acc + (elems * bpe))
        p.Builder.Buffer_alloc.fm_tile_bytes;
      let any_streamed = Array.exists not p.Builder.Buffer_alloc.weights_retained in
      if any_streamed then
        acc := !acc + p.Builder.Buffer_alloc.weights_staging_bytes;
      !acc
    | Builder.Buffer_alloc.Plan_pipelined _, Builder.Build.Built_single _ ->
      assert false
  in
  let inter =
    if
      index < Array.length plan.Builder.Buffer_alloc.inter_seg_on_chip
      && plan.Builder.Buffer_alloc.inter_seg_on_chip.(index)
    then 2 * plan.Builder.Buffer_alloc.inter_seg_bytes.(index)
    else 0
  in
  base + inter

let eval_block ?cache ?table (built : Builder.Build.t) ~index ~segment_counter
    =
  let model = built.Builder.Build.model in
  let board = built.Builder.Build.board in
  let plan = built.Builder.Build.plan in
  let num_blocks = Array.length built.Builder.Build.blocks in
  let input_on_chip, output_on_chip =
    boundary_flags plan ~num_blocks ~index
  in
  let next_label () =
    incr segment_counter;
    Printf.sprintf "seg%d" !segment_counter
  in
  match
    (built.Builder.Build.blocks.(index),
     plan.Builder.Buffer_alloc.block_plans.(index))
  with
  | ( Builder.Build.Built_single { engine; first; last },
      Builder.Buffer_alloc.Plan_single splan ) ->
    (* The span covers only the model computation: a segment-cache hit
       is a table probe whose cost a span would dwarf, and hits are
       already counted by Seg_cache ("seg.single.hit"). *)
    let compute () =
      Mccm_obs.span ~cat:"mccm" "eval.single_ce" @@ fun () ->
      Mccm_obs.Metric.incr c_single;
      Single_ce_model.evaluate_with_validity ?table ~model ~board ~engine
        ~plan:splan ~first ~last ~input_on_chip ~output_on_chip ()
    in
    let r =
      match cache with
      | None -> fst (compute ())
      | Some c ->
        Seg_cache.single c ~engine
          ~cap:splan.Builder.Buffer_alloc.fm_capacity_bytes ~first ~last
          ~input_on_chip ~output_on_chip compute
    in
    let segment =
      {
        Breakdown.label = next_label ();
        block_index = index;
        compute_s = r.Single_ce_model.compute_s;
        memory_s = r.Single_ce_model.memory_s;
        time_s = r.Single_ce_model.latency_s;
        buffer_bytes = block_buffer_bytes ?table built ~index;
        utilization = r.Single_ce_model.utilization;
        accesses = r.Single_ce_model.accesses;
      }
    in
    {
      block_index = index;
      latency_s = r.Single_ce_model.latency_s;
      ii_s = r.Single_ce_model.latency_s;
      accesses = r.Single_ce_model.accesses;
      segments = [ segment ];
    }
  | ( Builder.Build.Built_pipelined { engines; first; last; _ },
      Builder.Buffer_alloc.Plan_pipelined pplan ) ->
    let compute () =
      Mccm_obs.span ~cat:"mccm" "eval.pipelined" @@ fun () ->
      Mccm_obs.Metric.incr c_pipelined;
      Pipelined_model.evaluate ?table ~model ~board ~engines ~plan:pplan
        ~first ~last ~input_on_chip ~output_on_chip ()
    in
    let r =
      match cache with
      | None -> compute ()
      | Some c ->
        Seg_cache.pipelined c ~engines ~plan:pplan ~first ~last ~input_on_chip
          ~output_on_chip compute
    in
    let segments =
      match r.Pipelined_model.rounds with
      | [ only ] ->
        [
          {
            Breakdown.label = next_label ();
            block_index = index;
            compute_s = only.Pipelined_model.compute_s;
            memory_s = only.Pipelined_model.memory_s;
            time_s = only.Pipelined_model.time_s;
            buffer_bytes = block_buffer_bytes ?table built ~index;
            utilization = only.Pipelined_model.utilization;
            accesses = only.Pipelined_model.accesses;
          };
        ]
      | rounds ->
        List.map
          (fun (round : Pipelined_model.round_result) ->
            {
              Breakdown.label = next_label ();
              block_index = index;
              compute_s = round.Pipelined_model.compute_s;
              memory_s = round.Pipelined_model.memory_s;
              time_s = round.Pipelined_model.time_s;
              buffer_bytes = round.Pipelined_model.buffer_bytes;
              utilization = round.Pipelined_model.utilization;
              accesses = round.Pipelined_model.accesses;
            })
          rounds
    in
    {
      block_index = index;
      latency_s = r.Pipelined_model.latency_s;
      ii_s = r.Pipelined_model.bottleneck_s;
      accesses = r.Pipelined_model.accesses;
      segments;
    }
  | Builder.Build.Built_single _, Builder.Buffer_alloc.Plan_pipelined _
  | Builder.Build.Built_pipelined _, Builder.Buffer_alloc.Plan_single _ ->
    assert false

let run ?cache ?table (built : Builder.Build.t) =
  Mccm_obs.span ~cat:"mccm" "eval.run" @@ fun () ->
  (match table with
  | Some t -> Cnn.Table.check t built.Builder.Build.model
  | None -> ());
  let board = built.Builder.Build.board in
  let plan = built.Builder.Build.plan in
  let num_blocks = Array.length built.Builder.Build.blocks in
  let segment_counter = ref 0 in
  let blocks =
    List.init num_blocks (fun index ->
        eval_block ?cache ?table built ~index ~segment_counter)
  in
  let accesses = Access.sum (List.map (fun b -> b.accesses) blocks) in
  let latency_s = List.fold_left (fun a b -> a +. b.latency_s) 0.0 blocks in
  (* Throughput: slowest stage when inter-segment pipelining overlaps
     blocks on distinct inputs; whole schedule otherwise (a lone pipelined
     block still overlaps inputs at tile granularity via its ii). *)
  let ii_compute =
    if built.Builder.Build.archi.Arch.Block.coarse_pipelined then
      List.fold_left (fun a b -> Float.max a b.ii_s) 0.0 blocks
    else
      match blocks with
      | [ only ] -> only.ii_s
      | _ -> latency_s
  in
  let ii_memory =
    Platform.Board.bytes_to_seconds board (Access.total accesses)
  in
  let ii = Float.max ii_compute ii_memory in
  let throughput_ips = if ii > 0.0 then 1.0 /. ii else 0.0 in
  let metrics =
    {
      Metrics.latency_s;
      throughput_ips;
      buffer_bytes = plan.Builder.Buffer_alloc.total_bytes;
      accesses;
      feasible = plan.Builder.Buffer_alloc.feasible;
    }
  in
  let breakdown =
    Breakdown.of_segments (List.concat_map (fun b -> b.segments) blocks)
  in
  { metrics; breakdown; blocks; initiation_interval_s = ii;
    ii_compute_s = ii_compute; ii_memory_s = ii_memory }

let evaluate model board archi =
  let table = Cnn.Table.of_model model in
  run ~table (Builder.Build.build ~table model board archi)

let metrics model board archi = (evaluate model board archi).metrics
