(** Bottom-up composition of block models into a full multiple-CE
    accelerator evaluation (paper Section IV-B, Eq. 8 and 9).

    Latency composes as the sum of block latencies (each input flows
    through the blocks in order, whether or not the blocks overlap on
    different inputs).  Throughput composes as the inverse of the slowest
    stage: with inter-segment (coarse-grained) pipelining each block is a
    stage working on its own input; without it the whole schedule repeats
    per input — except that a lone pipelined-CEs block overlaps successive
    inputs at tile granularity (Eq. 3).  A shared off-chip memory port
    additionally bounds throughput by total traffic over bandwidth.
    Buffers and accesses come from the buffer plan and the block models
    (Eq. 8/9: inter-segment interfaces are double-buffered on-chip or
    spilled). *)

type block_eval = {
  block_index : int;
  latency_s : float;          (** one-input latency through this block *)
  ii_s : float;               (** the block's initiation interval *)
  accesses : Access.t;
  segments : Breakdown.segment list;
}

type t = {
  metrics : Metrics.t;
  breakdown : Breakdown.t;
  blocks : block_eval list;
  initiation_interval_s : float;
      (** steady-state spacing between completed inputs — the inverse of
          throughput, and the paper's second ("batch") latency
          definition: time per input when processing a batch *)
  ii_compute_s : float;
      (** the compute side of the interval (slowest stage, or the whole
          schedule without coarse pipelining) before the memory-port
          bound; [initiation_interval_s = max ii_compute_s ii_memory_s].
          Exposed so admissible compute floors (e.g. [Dse.Bounds]) can
          be property-tested against the exact value they bound rather
          than only against the combined interval *)
  ii_memory_s : float;
      (** the shared-port side: total off-chip traffic over bandwidth —
          the exact value the DSE memory floor lower-bounds *)
}

val run : ?cache:Seg_cache.t -> ?table:Cnn.Table.t -> Builder.Build.t -> t
(** [run built] evaluates a built accelerator analytically.  [cache]
    memoizes per-segment model results across calls sharing a (model,
    board) pair — see {!Seg_cache}; results are bit-identical with and
    without it.  [table] (a {!Cnn.Table} built from the same model)
    switches per-layer scalar reads in the block models to the
    precomputed O(1) fast path — also bit-identical.  Most callers want
    {!Eval_session} instead of passing a cache directly. *)

val evaluate : Cnn.Model.t -> Platform.Board.t -> Arch.Block.arch -> t
(** [evaluate model board archi] builds with the Multiple-CE Builder and
    runs the cost model — the methodology's end-to-end entry point. *)

val metrics : Cnn.Model.t -> Platform.Board.t -> Arch.Block.arch -> Metrics.t
(** Shorthand for [(evaluate ...).metrics]. *)
