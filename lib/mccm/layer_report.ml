type row = {
  layer_index : int;
  layer_name : string;
  kind : Cnn.Layer.kind;
  engine_id : int;
  pipelined : bool;
  cycles : int;
  utilization : float;
  accesses : Access.t;
}

let boundary_flags plan ~num_blocks ~index =
  let on_chip = plan.Builder.Buffer_alloc.inter_seg_on_chip in
  let input_on_chip = if index = 0 then false else on_chip.(index - 1) in
  let output_on_chip =
    if index = num_blocks - 1 then false else on_chip.(index)
  in
  (input_on_chip, output_on_chip)

let single_rows (built : Builder.Build.t) ~engine ~plan ~first ~last
    ~input_on_chip ~output_on_chip =
  let model = built.Builder.Build.model in
  let board = built.Builder.Build.board in
  let r =
    Single_ce_model.evaluate ~model ~board ~engine ~plan ~first ~last
      ~input_on_chip ~output_on_chip ()
  in
  List.map
    (fun (lr : Single_ce_model.layer_result) ->
      let layer = Cnn.Model.layer model lr.Single_ce_model.layer_index in
      {
        layer_index = lr.Single_ce_model.layer_index;
        layer_name = layer.Cnn.Layer.name;
        kind = layer.Cnn.Layer.kind;
        engine_id = engine.Engine.Ce.id;
        pipelined = false;
        cycles = lr.Single_ce_model.compute_cycles;
        utilization = Engine.Ce.utilization engine layer;
        accesses = lr.Single_ce_model.accesses;
      })
    r.Single_ce_model.layers

let pipelined_rows (built : Builder.Build.t) ~engines ~plan ~first ~last
    ~input_on_chip ~output_on_chip =
  let model = built.Builder.Build.model in
  let board = built.Builder.Build.board in
  let bpe = board.Platform.Board.bytes_per_element in
  let ces = Array.length engines in
  List.init (last - first + 1) (fun i ->
      let layer = Cnn.Model.layer model (first + i) in
      let engine = engines.(i mod ces) in
      let rows = plan.Builder.Buffer_alloc.tile_rows.(i) in
      let ws = plan.Builder.Buffer_alloc.width_split in
      let tiles = Builder.Tiling.num_row_tiles layer ~rows * ws in
      let tile_cyc =
        Util.Int_math.ceil_div (Engine.Ce.tile_cycles engine layer ~rows) ws
      in
      let cycles = tiles * tile_cyc in
      let w_bytes = Cnn.Layer.weight_elements layer * bpe in
      let weights =
        if plan.Builder.Buffer_alloc.weights_retained.(i) then w_bytes
        else w_bytes * tiles
      in
      let fms =
        (if first + i = first && not input_on_chip then
           Cnn.Layer.ifm_elements layer * bpe
         else 0)
        + (if first + i = last && not output_on_chip then
             Cnn.Layer.ofm_elements layer * bpe
           else 0)
      in
      {
        layer_index = first + i;
        layer_name = layer.Cnn.Layer.name;
        kind = layer.Cnn.Layer.kind;
        engine_id = engine.Engine.Ce.id;
        pipelined = true;
        cycles;
        utilization =
          (let ideal =
             Engine.Ce.ideal_cycles ~pes:engine.Engine.Ce.pes layer
           in
           float_of_int ideal /. float_of_int (max 1 cycles));
        accesses = Access.add (Access.weights weights) (Access.fms fms);
      })

let of_build (built : Builder.Build.t) =
  let plan = built.Builder.Build.plan in
  let num_blocks = Array.length built.Builder.Build.blocks in
  List.concat
    (List.init num_blocks (fun index ->
         let input_on_chip, output_on_chip =
           boundary_flags plan ~num_blocks ~index
         in
         match
           ( built.Builder.Build.blocks.(index),
             plan.Builder.Buffer_alloc.block_plans.(index) )
         with
         | ( Builder.Build.Built_single { engine; first; last },
             Builder.Buffer_alloc.Plan_single splan ) ->
           single_rows built ~engine ~plan:splan ~first ~last ~input_on_chip
             ~output_on_chip
         | ( Builder.Build.Built_pipelined { engines; first; last; _ },
             Builder.Buffer_alloc.Plan_pipelined pplan ) ->
           pipelined_rows built ~engines ~plan:pplan ~first ~last
             ~input_on_chip ~output_on_chip
         | Builder.Build.Built_single _, Builder.Buffer_alloc.Plan_pipelined _
         | Builder.Build.Built_pipelined _, Builder.Buffer_alloc.Plan_single _
           ->
           assert false))

let hotspots ?(top = 5) rows =
  let sorted = List.sort (fun a b -> compare b.cycles a.cycles) rows in
  List.filteri (fun i _ -> i < top) sorted

let pp ppf rows =
  Format.fprintf ppf "%-5s %-12s %-5s %-4s %-5s %12s %7s %12s@." "layer"
    "name" "kind" "CE" "pipe" "cycles" "util" "accesses";
  List.iter
    (fun r ->
      Format.fprintf ppf "L%-4d %-12s %-5s %-4d %-5s %12d %6.1f%% %12s@."
        (r.layer_index + 1) r.layer_name
        (Cnn.Layer.kind_to_string r.kind)
        r.engine_id
        (if r.pipelined then "yes" else "no")
        r.cycles
        (100.0 *. r.utilization)
        (Format.asprintf "%a" Util.Units.pp_bytes (Access.total r.accesses)))
    rows
