type round_result = {
  round_index : int;
  layer_indices : int list;
  compute_cycles : int;
  accesses : Access.t;
  compute_s : float;
  memory_s : float;
  time_s : float;
  buffer_bytes : int;
  utilization : float;
}

type result = {
  rounds : round_result list;
  latency_s : float;
  compute_s : float;
  memory_s : float;
  accesses : Access.t;
  busy_s_per_engine : float array;
  bottleneck_s : float;
  utilization : float;
}

type layer_info = {
  model_index : int;
  engine_slot : int;   (* position of its engine within the block *)
  tiles : int;
  tile_cyc : int;
  weight_bytes : int;
  retained : bool;
  macs : int;
  ideal_cycles : int;
  pes : int;
}

let layer_infos ?table ~model ~board ~engines ~plan ~first ~last () =
  let bpe = board.Platform.Board.bytes_per_element in
  let ces = Array.length engines in
  match table with
  | Some tbl ->
    Array.init (last - first + 1) (fun i ->
        let idx = first + i in
        let slot = i mod ces in
        let engine = engines.(slot) in
        let rows = plan.Builder.Buffer_alloc.tile_rows.(i) in
        let ws = plan.Builder.Buffer_alloc.width_split in
        let tiles =
          Util.Int_math.ceil_div (Cnn.Table.out_height tbl idx) rows * ws
        in
        {
          model_index = idx;
          engine_slot = slot;
          tiles;
          tile_cyc =
            Util.Int_math.ceil_div
              (Engine.Ce.tile_cycles_at engine tbl idx ~rows)
              ws;
          weight_bytes = Cnn.Table.weight_elements tbl idx * bpe;
          retained = plan.Builder.Buffer_alloc.weights_retained.(i);
          macs = Cnn.Table.macs tbl idx;
          ideal_cycles =
            Engine.Ce.ideal_cycles_at ~pes:engine.Engine.Ce.pes tbl idx;
          pes = engine.Engine.Ce.pes;
        })
  | None ->
    Array.init (last - first + 1) (fun i ->
        let layer = Cnn.Model.layer model (first + i) in
        let slot = i mod ces in
        let engine = engines.(slot) in
        let rows = plan.Builder.Buffer_alloc.tile_rows.(i) in
        let ws = plan.Builder.Buffer_alloc.width_split in
        let tiles = Builder.Tiling.num_row_tiles layer ~rows * ws in
        {
          model_index = first + i;
          engine_slot = slot;
          tiles;
          tile_cyc =
            Util.Int_math.ceil_div (Engine.Ce.tile_cycles engine layer ~rows) ws;
          weight_bytes = Cnn.Layer.weight_elements layer * bpe;
          retained = plan.Builder.Buffer_alloc.weights_retained.(i);
          macs = Cnn.Layer.macs layer;
          ideal_cycles = Engine.Ce.ideal_cycles ~pes:engine.Engine.Ce.pes layer;
          pes = engine.Engine.Ce.pes;
        })

(* Eq. 2 evaluated exactly on the continuous tile schedule: tile [t] of a
   layer starts when its covering producer tile is done and its engine is
   free; the block's latency is the completion of the last tile of the
   last layer.  For a single round of uniform tiles this reduces to
   (tiles + CEs - 1) x tile-time, the classic skewed-pipeline latency of
   Fig. 4b. *)
let latency_cycles infos ~ces =
  let free = Array.make ces 0 in
  let prev = ref [||] in
  Array.iteri
    (fun li l ->
      let completion = Array.make l.tiles 0 in
      for t = 0 to l.tiles - 1 do
        let input_ready =
          if li = 0 then 0
          else
            let p = !prev in
            p.(Builder.Tiling.producer_tile
                 ~producer_tiles:(Array.length p) ~consumer_tiles:l.tiles t)
        in
        let start = max input_ready free.(l.engine_slot) in
        completion.(t) <- start + l.tile_cyc;
        free.(l.engine_slot) <- completion.(t)
      done;
      prev := completion)
    infos;
  Array.fold_left max 0 free

let evaluate ?table ~model ~board ~engines ~plan ~first ~last ~input_on_chip
    ~output_on_chip () =
  let bpe = board.Platform.Board.bytes_per_element in
  let ces = Array.length engines in
  let n = last - first + 1 in
  let num_rounds = Util.Int_math.ceil_div n ces in
  let infos = layer_infos ?table ~model ~board ~engines ~plan ~first ~last () in
  (* Eq. 3: per-engine busy time per input. *)
  let busy_cycles = Array.make ces 0 in
  Array.iter
    (fun l ->
      busy_cycles.(l.engine_slot) <-
        busy_cycles.(l.engine_slot) + (l.tiles * l.tile_cyc))
    infos;
  let boundary_fms ~round =
    let input =
      if round = 0 && not input_on_chip then
        match table with
        | Some tbl -> Cnn.Table.ifm_elements tbl first * bpe
        | None -> Cnn.Layer.ifm_elements (Cnn.Model.layer model first) * bpe
      else 0
    in
    let output =
      if round = num_rounds - 1 && not output_on_chip then
        match table with
        | Some tbl -> Cnn.Table.ofm_elements tbl last * bpe
        | None -> Cnn.Layer.ofm_elements (Cnn.Model.layer model last) * bpe
      else 0
    in
    input + output
  in
  let rounds =
    List.init num_rounds (fun r ->
        let lo = r * ces in
        let hi = min (n - 1) (lo + ces - 1) in
        let round_infos = Array.sub infos lo (hi - lo + 1) in
        (* The round's wall share is paced by its critical engine. *)
        let compute_cycles =
          Array.fold_left
            (fun acc l -> max acc (l.tiles * l.tile_cyc))
            0 round_infos
        in
        (* Eq. 7: streamed weights are re-fetched at every tile stage. *)
        let weight_bytes =
          Array.fold_left
            (fun acc l ->
              acc + (l.weight_bytes * if l.retained then 1 else l.tiles))
            0 round_infos
        in
        let accesses =
          Access.add
            (Access.weights weight_bytes)
            (Access.fms (boundary_fms ~round:r))
        in
        let buffer_bytes =
          let acc = ref 0 in
          Array.iteri
            (fun k l ->
              let off = lo + k in
              acc := !acc + (2 * plan.Builder.Buffer_alloc.fm_tile_bytes.(off));
              if l.retained then acc := !acc + l.weight_bytes)
            round_infos;
          !acc
        in
        let utilization =
          let weighted = ref 0.0 and total = ref 0.0 in
          Array.iter
            (fun l ->
              let actual = l.tiles * l.tile_cyc in
              weighted :=
                !weighted
                +. (float_of_int l.macs
                   *. float_of_int l.ideal_cycles
                   /. float_of_int actual);
              total := !total +. float_of_int l.macs)
            round_infos;
          if !total > 0.0 then !weighted /. !total else 1.0
        in
        let compute_s = Platform.Board.cycles_to_seconds board compute_cycles in
        let memory_s =
          Platform.Board.bytes_to_seconds board (Access.total accesses)
        in
        let layer_indices =
          Array.to_list (Array.map (fun l -> l.model_index) round_infos)
        in
        {
          round_index = r;
          layer_indices;
          compute_cycles;
          accesses;
          compute_s;
          memory_s;
          time_s = Float.max compute_s memory_s;
          buffer_bytes;
          utilization;
        })
  in
  let accesses =
    Access.sum (List.map (fun (r : round_result) -> r.accesses) rounds)
  in
  let compute_latency_s =
    Platform.Board.cycles_to_seconds board (latency_cycles infos ~ces)
  in
  let memory_s = Platform.Board.bytes_to_seconds board (Access.total accesses) in
  let latency_s = Float.max compute_latency_s memory_s in
  let compute_s = compute_latency_s in
  let busy_s_per_engine =
    Array.map (fun c -> Platform.Board.cycles_to_seconds board c) busy_cycles
  in
  let bottleneck_s = Array.fold_left Float.max 0.0 busy_s_per_engine in
  let utilization =
    let weighted = ref 0.0 and total = ref 0.0 in
    Array.iter
      (fun l ->
        let actual = l.tiles * l.tile_cyc in
        weighted :=
          !weighted
          +. (float_of_int l.macs
             *. float_of_int l.ideal_cycles
             /. float_of_int actual);
        total := !total +. float_of_int l.macs)
      infos;
    if !total > 0.0 then !weighted /. !total else 1.0
  in
  {
    rounds;
    latency_s;
    compute_s;
    memory_s;
    accesses;
    busy_s_per_engine;
    bottleneck_s;
    utilization;
  }
