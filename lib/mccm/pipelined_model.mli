(** Analytical model of the pipelined-CEs building block
    (paper Section IV-A, Eq. 2, 3, 5 and 7).

    The block's engines process consecutive layers concurrently at tile
    granularity.  When the layer range exceeds the engine count the block
    processes [CEs] layers at a time, round-robin (paper Section III-B);
    successive rounds overlap tile-wise through the double buffers, so
    feature maps never leave the chip (Section IV-A3).  Latency follows
    Eq. 2 evaluated on the continuous tile schedule: one tile time per
    layer to fill the chain, then the busiest engine paces the rest — for
    a single round of uniform tiles this reduces to the classic
    [(tiles + CEs - 1) x tile-time] skewed pipeline of Fig. 4b.
    Throughput is bounded by the busiest engine's total tile time per
    input (Eq. 3).  Weights not retained on-chip are re-streamed at every
    tile stage their layer is active in (Eq. 7). *)

type round_result = {
  round_index : int;
  layer_indices : int list;    (** model layers of this round, in order *)
  compute_cycles : int;        (** Eq. 2 over the round's stages *)
  accesses : Access.t;
  compute_s : float;
  memory_s : float;
  time_s : float;              (** max of compute and memory *)
  buffer_bytes : int;          (** tiles + retained weights of the round *)
  utilization : float;
}

type result = {
  rounds : round_result list;
  latency_s : float;           (** sum of round times *)
  compute_s : float;
  memory_s : float;
  accesses : Access.t;
  busy_s_per_engine : float array;
      (** per engine: total tile time per input (Eq. 3's inner sum) *)
  bottleneck_s : float;        (** max over engines — 1/throughput bound *)
  utilization : float;         (** MAC-weighted across all layers *)
}

val evaluate :
  ?table:Cnn.Table.t ->
  model:Cnn.Model.t ->
  board:Platform.Board.t ->
  engines:Engine.Ce.t array ->
  plan:Builder.Buffer_alloc.pipelined_plan ->
  first:int ->
  last:int ->
  input_on_chip:bool ->
  output_on_chip:bool ->
  unit ->
  result
(** [evaluate] models layers [first..last] on [engines] under [plan].
    Boundary-FM conventions match {!Single_ce_model.evaluate}.  [table]
    (a {!Cnn.Table} built from [model]) switches per-layer scalar reads
    to the precomputed fast path; results are bit-identical with or
    without it. *)
