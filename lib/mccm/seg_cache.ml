(* Content-keyed memo tables for per-segment model results.

   A key captures everything the segment models read: the layer range,
   the engine signatures (PE count, parallelism factors, dataflow — the
   CE id is display-only and deliberately excluded), the block's buffer
   plan slice, and the boundary flags.  The model and board are NOT in
   the key: a cache is scoped to one (model, board) pair by its owner
   ({!Eval_session}), which makes (first, last) a complete proxy for the
   layer contents.

   Keys pair a precomputed {!Util.Fingerprint} digest (fast hashing)
   with the full structural payload (exact equality on lookup), so a
   hash collision only costs a comparison, never correctness. *)

type engine_sig = {
  pes : int;
  par : int * int * int * int * int * int;
  df : int;
}

let engine_sig (e : Engine.Ce.t) =
  let f d = Engine.Parallelism.factor e.Engine.Ce.parallelism d in
  {
    pes = e.Engine.Ce.pes;
    par =
      ( f Engine.Parallelism.Filters,
        f Engine.Parallelism.Channels,
        f Engine.Parallelism.Height,
        f Engine.Parallelism.Width,
        f Engine.Parallelism.Kernel_h,
        f Engine.Parallelism.Kernel_w );
    df =
      (match e.Engine.Ce.dataflow with
      | Engine.Dataflow.Weight_stationary -> 0
      | Engine.Dataflow.Output_stationary -> 1
      | Engine.Dataflow.Input_stationary -> 2);
  }

module Fp = Util.Fingerprint

let fp_engine_sig h s =
  let a, b, c, d, e, f = s.par in
  let h = Fp.int h s.pes in
  let h = List.fold_left Fp.int h [ a; b; c; d; e; f ] in
  Fp.int h s.df

(* The single-CE evaluator reads its plan slice only through
   [fm_capacity_bytes], and is piecewise constant in it — so the key
   deliberately EXCLUDES the plan, and each entry stores a list of
   (cap_lo, cap_hi, result) pieces.  A lookup hits when the requested
   capacity falls inside a recorded validity interval, which makes the
   cache immune to the byte-granular capacity churn of the planner's
   global proportional grants (a one-boundary move otherwise shifts
   every block's grant by a few bytes and would defeat the cache). *)
type single_key = {
  s_fp : int;
  s_first : int;
  s_last : int;
  s_eng : engine_sig;
  s_in : bool;
  s_out : bool;
}

let single_key ~eng ~first ~last ~input_on_chip ~output_on_chip =
  let h = Fp.empty in
  let h = Fp.int h first in
  let h = Fp.int h last in
  let h = fp_engine_sig h eng in
  let h = Fp.bool h input_on_chip in
  let h = Fp.bool h output_on_chip in
  { s_fp = Fp.to_int h; s_first = first; s_last = last; s_eng = eng;
    s_in = input_on_chip; s_out = output_on_chip }

(* The pipelined evaluator reads its plan slice only through
   [width_split], [tile_rows], [fm_tile_bytes] and [weights_retained] —
   the key deliberately carries exactly those fields, so plan slices
   differing only in unread fields (notably [weights_staging_bytes],
   which churns at byte granularity with the planner's leftover budget)
   share one entry. *)
type pipe_key = {
  p_fp : int;
  p_first : int;
  p_last : int;
  p_engs : engine_sig array;
  p_ws : int;
  p_rows : int array;
  p_fm : int array;
  p_ret : bool array;
  p_in : bool;
  p_out : bool;
}

let pipe_key ~engs ~plan ~first ~last ~input_on_chip ~output_on_chip =
  let ws = plan.Builder.Buffer_alloc.width_split in
  let rows = plan.Builder.Buffer_alloc.tile_rows in
  let fm = plan.Builder.Buffer_alloc.fm_tile_bytes in
  let ret = plan.Builder.Buffer_alloc.weights_retained in
  let h = Fp.empty in
  let h = Fp.int h first in
  let h = Fp.int h last in
  let h = Fp.array fp_engine_sig h engs in
  let h = Fp.int h ws in
  let h = Fp.array Fp.int h rows in
  let h = Fp.array Fp.int h fm in
  let h = Fp.array Fp.bool h ret in
  let h = Fp.bool h input_on_chip in
  let h = Fp.bool h output_on_chip in
  { p_fp = Fp.to_int h; p_first = first; p_last = last; p_engs = engs;
    p_ws = ws; p_rows = rows; p_fm = fm; p_ret = ret;
    p_in = input_on_chip; p_out = output_on_chip }

module Single_tbl = Hashtbl.Make (struct
  type t = single_key

  let hash k = k.s_fp

  let equal a b =
    a.s_fp = b.s_fp && a.s_first = b.s_first && a.s_last = b.s_last
    && a.s_in = b.s_in && a.s_out = b.s_out && a.s_eng = b.s_eng
end)

module Pipe_tbl = Hashtbl.Make (struct
  type t = pipe_key

  let hash k = k.p_fp

  let equal a b =
    a.p_fp = b.p_fp && a.p_first = b.p_first && a.p_last = b.p_last
    && a.p_in = b.p_in && a.p_out = b.p_out && a.p_ws = b.p_ws
    && a.p_engs = b.p_engs && a.p_rows = b.p_rows && a.p_fm = b.p_fm
    && a.p_ret = b.p_ret
end)

(* Global hit/miss counters alongside the per-cache ones: forked caches
   all feed the same process-wide metrics, which is what `mccm --stats`
   and the bench hit-rate fields report. *)
let c_s_hit = Mccm_obs.Metric.counter "seg.single.hit"
let c_s_miss = Mccm_obs.Metric.counter "seg.single.miss"
let c_p_hit = Mccm_obs.Metric.counter "seg.pipelined.hit"
let c_p_miss = Mccm_obs.Metric.counter "seg.pipelined.miss"

type single_piece = {
  cap_lo : int;
  cap_hi : int;
  piece : Single_ce_model.result;
}

type t = {
  singles : single_piece list Single_tbl.t;
  pipes : Pipelined_model.result Pipe_tbl.t;
  mutable s_hits : int;
  mutable s_misses : int;
  mutable p_hits : int;
  mutable p_misses : int;
}

let create () =
  { singles = Single_tbl.create 256; pipes = Pipe_tbl.create 256;
    s_hits = 0; s_misses = 0; p_hits = 0; p_misses = 0 }

let hits t = t.s_hits + t.p_hits
let misses t = t.s_misses + t.p_misses

let single_counts t = (t.s_hits, t.s_misses)
let pipelined_counts t = (t.p_hits, t.p_misses)

(* The copy starts with fresh counters so a later [absorb] adds only the
   fork's own activity, not a second copy of the parent's. *)
let copy t =
  { singles = Single_tbl.copy t.singles; pipes = Pipe_tbl.copy t.pipes;
    s_hits = 0; s_misses = 0; p_hits = 0; p_misses = 0 }

let absorb ~into t =
  (* Per-piece union: two domains may have explored different capacity
     pieces of the same segment.  Exact-duplicate intervals (the common
     case) are dropped; first writer wins on any overlap. *)
  Single_tbl.iter
    (fun k pieces ->
      match Single_tbl.find_opt into.singles k with
      | None -> Single_tbl.add into.singles k pieces
      | Some existing ->
        let fresh =
          List.filter
            (fun p ->
              not
                (List.exists
                   (fun q -> q.cap_lo = p.cap_lo && q.cap_hi = p.cap_hi)
                   existing))
            pieces
        in
        if fresh <> [] then
          Single_tbl.replace into.singles k (existing @ fresh))
    t.singles;
  Pipe_tbl.iter
    (fun k v -> if not (Pipe_tbl.mem into.pipes k) then Pipe_tbl.add into.pipes k v)
    t.pipes;
  into.s_hits <- into.s_hits + t.s_hits;
  into.s_misses <- into.s_misses + t.s_misses;
  into.p_hits <- into.p_hits + t.p_hits;
  into.p_misses <- into.p_misses + t.p_misses

let single t ~engine ~cap ~first ~last ~input_on_chip ~output_on_chip compute =
  let key =
    single_key ~eng:(engine_sig engine) ~first ~last ~input_on_chip
      ~output_on_chip
  in
  let pieces =
    Option.value (Single_tbl.find_opt t.singles key) ~default:[]
  in
  match
    List.find_opt (fun p -> p.cap_lo <= cap && cap <= p.cap_hi) pieces
  with
  | Some p ->
    t.s_hits <- t.s_hits + 1;
    Mccm_obs.Metric.incr c_s_hit;
    p.piece
  | None ->
    t.s_misses <- t.s_misses + 1;
    Mccm_obs.Metric.incr c_s_miss;
    let r, (cap_lo, cap_hi) = compute () in
    Single_tbl.replace t.singles key ({ cap_lo; cap_hi; piece = r } :: pieces);
    r

let pipelined t ~engines ~plan ~first ~last ~input_on_chip ~output_on_chip
    compute =
  let key =
    pipe_key ~engs:(Array.map engine_sig engines) ~plan ~first ~last
      ~input_on_chip ~output_on_chip
  in
  match Pipe_tbl.find_opt t.pipes key with
  | Some r ->
    t.p_hits <- t.p_hits + 1;
    Mccm_obs.Metric.incr c_p_hit;
    r
  | None ->
    t.p_misses <- t.p_misses + 1;
    Mccm_obs.Metric.incr c_p_miss;
    let r = compute () in
    Pipe_tbl.add t.pipes key r;
    r
