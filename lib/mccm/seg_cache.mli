(** Content-keyed memo tables for per-segment model results.

    A cache stores {!Single_ce_model.result} and
    {!Pipelined_model.result} values keyed by everything those models
    read: the layer range, the engine signatures (PE count, parallelism
    factors, dataflow — the display-only CE id is excluded), the
    boundary on-chip flags, and the block's buffer-plan slice (in full
    for pipelined blocks; as a capacity-validity interval for single-CE
    blocks, which read the plan only through [fm_capacity_bytes]).  The model and
    board are deliberately absent from keys: a cache must only ever be
    used with the one (model, board) pair it was created for, which
    makes the layer range a complete proxy for layer contents.
    {!Eval_session} enforces that scoping — use it rather than this
    module unless you are extending the evaluator itself.

    Cached results are immutable and shared; hits are bit-identical to
    recomputation by construction (keys carry full structural payloads,
    so fingerprint collisions cannot alias distinct keys).  A cache is
    not thread-safe: give each domain its own via {!copy} and merge with
    {!absorb}. *)

type t

val create : unit -> t

val single :
  t ->
  engine:Engine.Ce.t ->
  cap:int ->
  first:int ->
  last:int ->
  input_on_chip:bool ->
  output_on_chip:bool ->
  (unit -> Single_ce_model.result * (int * int)) ->
  Single_ce_model.result
(** [single t ~cap ... compute] returns a memoized result valid at FM
    capacity [cap], or runs [compute] once (it must return the result
    together with its capacity-validity interval, as
    {!Single_ce_model.evaluate_with_validity} does) and stores the
    piece.  The single-CE evaluator is piecewise constant in its
    capacity, so entries are (interval, result) pieces per (layer range,
    engine, boundary flags) — a hit only needs [cap] to land inside a
    recorded interval, which makes the cache immune to the byte-level
    capacity churn of the planner's global proportional grants. *)

val pipelined :
  t ->
  engines:Engine.Ce.t array ->
  plan:Builder.Buffer_alloc.pipelined_plan ->
  first:int ->
  last:int ->
  input_on_chip:bool ->
  output_on_chip:bool ->
  (unit -> Pipelined_model.result) ->
  Pipelined_model.result

val hits : t -> int
val misses : t -> int

val single_counts : t -> int * int
(** Hit/miss counts for the single-CE table alone. *)

val pipelined_counts : t -> int * int
(** Hit/miss counts for the pipelined table alone. *)

val copy : t -> t
(** Snapshot for handing to another domain.  The copy's hit/miss
    counters start at zero so {!absorb} adds only the fork's own
    activity. *)

val absorb : into:t -> t -> unit
(** Merge entries and counters from a forked cache; first-writer wins on
    key clashes (content-keyed, so clashing values are equal anyway). *)
