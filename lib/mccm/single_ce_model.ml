type layer_result = {
  layer_index : int;
  compute_cycles : int;
  accesses : Access.t;
  ifm_on_chip : bool;
  ofm_stays_on_chip : bool;
}

type result = {
  layers : layer_result list;
  compute_cycles : int;
  accesses : Access.t;
  compute_s : float;
  memory_s : float;
  latency_s : float;
  utilization : float;
}

(* The evaluator reads its buffer plan only through [fm_capacity_bytes],
   and every use is either a threshold test ([t <= cap]) or a ceiling
   division of a constant by a window carved out of the capacity — so
   the result is a piecewise-constant function of the capacity.  A
   [validity] accumulator records, as the DP runs, the inclusive
   capacity interval on which every branch taken and every quotient
   computed stays the same; any capacity inside the interval provably
   yields a bit-identical result.  {!Seg_cache} uses this to survive the
   byte-granular churn of the planner's global proportional grants. *)
type validity = { mutable lo : int; mutable hi : int }

(* Outcome-preserving threshold test: [t <= cap], narrowing [v] to the
   capacities that decide the same way. *)
let le_cap v cap t =
  if t <= cap then begin
    if t > v.lo then v.lo <- t;
    true
  end
  else begin
    if t - 1 < v.hi then v.hi <- t - 1;
    false
  end

(* Value-preserving [ceil_div x avail] for [avail = max 1 (cap - reserved)]:
   narrows [v] to the capacities producing the same quotient. *)
let cd_window v cap ~reserved x =
  let avail = max 1 (cap - reserved) in
  if cap - reserved < 1 then begin
    (* Clamp active: any capacity <= reserved gives the same window. *)
    if reserved < v.hi then v.hi <- reserved
  end
  else begin
    if reserved + 1 > v.lo then v.lo <- reserved + 1;
    if x > 0 then begin
      let n = Util.Int_math.ceil_div x avail in
      let alo = Util.Int_math.ceil_div x n in
      if reserved + alo > v.lo then v.lo <- reserved + alo;
      if n > 1 then begin
        let ahi = (x - 1) / (n - 1) in
        if reserved + ahi < v.hi then v.hi <- reserved + ahi
      end
    end
  end;
  Util.Int_math.ceil_div x avail

(* Eq. 6 for one layer, as a set of legal buffering decisions rather
   than a single greedy pick.  Each candidate is [(accesses, stays)]:
   the off-chip traffic the decision costs and whether it leaves the
   OFM resident for the next layer.  [ifm_in_cap] is true when the IFM
   occupies this block's FM capacity (it was produced by the previous
   layer); when the IFM sits in an inter-segment buffer it is on-chip
   but costs no capacity.  [ofm_to_interseg] frees the OFM from the
   capacity and forbids spilling it. *)
let layer_candidates ~validity ~plan ~w ~ifm ~ofm ~extra ~band ~ifm_on_chip
    ~ifm_in_cap ~ofm_to_interseg =
  let cap = plan.Builder.Buffer_alloc.fm_capacity_bytes in
  let le_cap t = le_cap validity cap t in
  let ifm_cap_bytes = if ifm_in_cap then ifm else 0 in
  let ofm_cap_bytes = if ofm_to_interseg then 0 else ofm in
  (* A resident shortcut stays on-chip only while everything fits; when a
     layer spills, the shortcut spills too, at roughly one pass of its
     bytes per carrying layer (a residual chain of two carrying layers
     pays its store once and its reload once). *)
  let extra_spill = Access.fms extra in
  let cands = ref [] in
  let add acc stays = cands := (acc, stays) :: !cands in
  if ifm_on_chip then begin
    if le_cap (ifm_cap_bytes + ofm_cap_bytes + extra) then begin
      (* Ideal case: one access per weight. *)
      add (Access.weights w) true;
      (* Voluntarily spilling the OFM can still pay off when the next
         layer would otherwise be squeezed out of its capacity. *)
      if not ofm_to_interseg then
        add (Access.add (Access.weights w) (Access.fms ofm)) false
    end
    else begin
      (* Keep the OFM resident by evicting the shortcut instead. *)
      if extra > 0 && le_cap (ifm_cap_bytes + ofm_cap_bytes) then
        add (Access.add (Access.weights w) extra_spill) true;
      (* IFM is resident but the OFM cannot stay: stream it out.  The
         shortcut only spills if it no longer fits beside the IFM. *)
      let es =
        if le_cap (ifm_cap_bytes + extra) then Access.zero else extra_spill
      in
      add
        (Access.add
           (Access.add (Access.weights w) es)
           (if ofm_to_interseg then Access.zero else Access.fms ofm))
        ofm_to_interseg
    end
  end
  else begin
    (* IFM off-chip; [band] is the one-OFM-row IFM streaming band. *)
    let ifm_band = band in
    if le_cap (ifm + ofm_cap_bytes + extra) then begin
      (* Load the IFM once; everything is buffered afterwards. *)
      add (Access.add (Access.weights w) (Access.fms ifm)) true;
      if not ofm_to_interseg then
        add (Access.add (Access.weights w) (Access.fms (ifm + ofm))) false
    end
    else begin
      if extra > 0 && le_cap (ifm + ofm_cap_bytes) then
        add
          (Access.add (Access.weights w)
             (Access.add (Access.fms ifm) extra_spill))
          true;
      (* Streaming regime: charge the cheaper of Eq. 6's two options
         under each feasible reservation of the capacity. *)
      let stream ~extra_kept ~keep_ofm =
        let extra_reserved = if extra_kept then extra else 0 in
        let es = if extra_kept then Access.zero else extra_spill in
        let reserved = extra_reserved + if keep_ofm then ofm else 0 in
        (* Option 1 — OS, locally input-stationary: each IFM chunk is
           loaded once and the weights re-streamed per chunk. *)
        let opt1_w = w * cd_window validity cap ~reserved ifm in
        let opt1_fm = ifm in
        (* Option 2 — OS, locally weight-stationary: each weight chunk is
           loaded once and the IFM re-streamed per chunk. *)
        let opt2_w = w in
        let opt2_fm = ifm * cd_window validity cap ~reserved w in
        let w_acc, ifm_acc =
          if opt1_w + opt1_fm <= opt2_w + opt2_fm then (opt1_w, opt1_fm)
          else (opt2_w, opt2_fm)
        in
        let ofm_acc = if keep_ofm || ofm_to_interseg then 0 else ofm in
        add
          (Access.add es
             (Access.add (Access.weights w_acc) (Access.fms (ifm_acc + ofm_acc))))
          (keep_ofm || ofm_to_interseg)
      in
      let extra_fits = le_cap (extra + ofm_cap_bytes + ifm_band) in
      let keep_fits ~extra_reserved =
        (not ofm_to_interseg) && le_cap (ofm + extra_reserved + ifm_band)
      in
      stream ~extra_kept:false ~keep_ofm:false;
      if extra_fits then stream ~extra_kept:true ~keep_ofm:false;
      if keep_fits ~extra_reserved:0 then stream ~extra_kept:false ~keep_ofm:true;
      if extra_fits && keep_fits ~extra_reserved:extra then
        stream ~extra_kept:true ~keep_ofm:true
    end
  end;
  List.rev !cands

let evaluate_with_validity ?table ~model ~board ~engine ~plan ~first ~last
    ~input_on_chip ~output_on_chip () =
  let bpe = board.Platform.Board.bytes_per_element in
  let validity = { lo = 0; hi = max_int } in
  (* Per-layer scalar view, in bytes: (weights, ifm, ofm, extra,
     one-row IFM band, Eq.-1 cycles).  The table path reads precomputed
     arrays; the reference path recomputes from [Layer.t] — both produce
     identical integers. *)
  let view =
    match table with
    | Some tbl ->
      fun i ->
        ( Cnn.Table.weight_elements tbl i * bpe,
          Cnn.Table.ifm_elements tbl i * bpe,
          Cnn.Table.ofm_elements tbl i * bpe,
          Cnn.Table.extra_resident_elements tbl i * bpe,
          Cnn.Table.band1_elements tbl i * bpe,
          Engine.Ce.layer_cycles_at engine tbl i )
    | None ->
      fun i ->
        let layer = Cnn.Model.layer model i in
        ( Cnn.Layer.weight_elements layer * bpe,
          Cnn.Layer.ifm_elements layer * bpe,
          Cnn.Layer.ofm_elements layer * bpe,
          layer.Cnn.Layer.extra_resident_elements * bpe,
          Builder.Tiling.ifm_rows_for_ofm_rows layer ~rows:1
          * layer.Cnn.Layer.in_shape.Cnn.Shape.width
          * layer.Cnn.Layer.in_shape.Cnn.Shape.channels
          * bpe,
          Engine.Ce.layer_cycles engine layer )
  in
  (* Two-state DP over the layer chain: a state is whether the layer's
     IFM is resident in the block's FM capacity.  Charging the cheapest
     chain (not a per-layer greedy) keeps the modelled traffic monotone
     in the capacity: a keep-the-OFM decision that squeezes a later
     layer's streaming window is outbid by the spill chain. *)
  let better a b =
    match (a, b) with
    | None, x | x, None -> x
    | Some (ta, _), Some (tb, _) ->
      if Access.total ta <= Access.total tb then a else b
  in
  let step i states =
    let w, ifm, ofm, extra, band, compute_cycles = view i in
    let is_last = i = last in
    let ofm_to_interseg = is_last && output_on_chip in
    let next = [| None; None |] in
    List.iter
      (fun (ifm_on_chip, ifm_in_cap, state) ->
        match state with
        | None -> ()
        | Some (total, trace) ->
          List.iter
            (fun (accesses, stays) ->
              (* A last layer writing off-chip does not leave its OFM for
                 anyone. *)
              let accesses =
                if is_last && (not output_on_chip) && stays then
                  Access.add accesses (Access.fms ofm)
                else accesses
              in
              let r =
                {
                  layer_index = i;
                  compute_cycles;
                  accesses;
                  ifm_on_chip;
                  ofm_stays_on_chip = stays;
                }
              in
              let j = if stays then 1 else 0 in
              next.(j) <-
                better next.(j) (Some (Access.add total accesses, r :: trace)))
            (layer_candidates ~validity ~plan ~w ~ifm ~ofm ~extra ~band
               ~ifm_on_chip ~ifm_in_cap ~ofm_to_interseg))
      states;
    next
  in
  (* The block input arrives either off-chip or through an inter-segment
     buffer: on-chip but outside the capacity. *)
  let after_first =
    step first
      [ (input_on_chip, false, Some (Access.zero, [])) ]
  in
  let final =
    let rec loop i states =
      if i > last then states
      else
        loop (i + 1)
          (step i [ (false, true, states.(0)); (true, true, states.(1)) ])
    in
    loop (first + 1) after_first
  in
  let layers =
    match better final.(0) final.(1) with
    | Some (_, trace) -> List.rev trace
    | None -> assert false (* every layer contributes >= 1 candidate *)
  in
  let compute_cycles =
    List.fold_left (fun a (r : layer_result) -> a + r.compute_cycles) 0 layers
  in
  let accesses =
    Access.sum (List.map (fun (r : layer_result) -> r.accesses) layers)
  in
  let compute_s = Platform.Board.cycles_to_seconds board compute_cycles in
  let memory_s = Platform.Board.bytes_to_seconds board (Access.total accesses) in
  (* Per-layer overlap of compute and transfer (double-buffered streams). *)
  let latency_s =
    List.fold_left
      (fun acc (r : layer_result) ->
        let c = Platform.Board.cycles_to_seconds board r.compute_cycles in
        let m =
          Platform.Board.bytes_to_seconds board (Access.total r.accesses)
        in
        acc +. Float.max c m)
      0.0 layers
  in
  let utilization =
    match table with
    | Some tbl -> Engine.Ce.average_utilization_at engine tbl ~first ~last
    | None ->
      Engine.Ce.average_utilization engine
        (Cnn.Model.layers_in_range model ~first ~last)
  in
  ( { layers; compute_cycles; accesses; compute_s; memory_s; latency_s;
      utilization },
    (validity.lo, validity.hi) )

let evaluate ?table ~model ~board ~engine ~plan ~first ~last ~input_on_chip
    ~output_on_chip () =
  fst
    (evaluate_with_validity ?table ~model ~board ~engine ~plan ~first ~last
       ~input_on_chip ~output_on_chip ())
