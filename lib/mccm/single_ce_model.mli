(** Analytical model of the single-CE building block
    (paper Section IV-A, Eq. 1, 4 and 6).

    A single-CE block processes its layer range to completion, one layer
    at a time, reusing one buffer.  Latency is the sum of per-layer Eq. 1
    cycle counts; off-chip accesses follow Eq. 6 — when a layer's IFM and
    OFM fit in the block's FM capacity the layer costs exactly its weights,
    otherwise the cheaper of the output-stationary local-input-stationary
    and local-weight-stationary streaming schemes is charged.  Whether
    each layer's OFM stays resident for its successor is not decided
    greedily: the evaluator enumerates the legal per-layer buffering
    decisions and charges the cheapest chain (a two-state dynamic
    program), which keeps the modelled traffic monotone in the block's
    FM capacity. *)

type layer_result = {
  layer_index : int;
  compute_cycles : int;        (** Eq. 1 *)
  accesses : Access.t;         (** Eq. 6 for this layer *)
  ifm_on_chip : bool;          (** whether the IFM was already on-chip *)
  ofm_stays_on_chip : bool;    (** whether the OFM remains for the next layer *)
}

type result = {
  layers : layer_result list;
  compute_cycles : int;        (** sum over layers *)
  accesses : Access.t;         (** sum over layers *)
  compute_s : float;
  memory_s : float;
  latency_s : float;           (** max(compute, memory) per layer, summed *)
  utilization : float;         (** MAC-weighted PE utilization *)
}

val evaluate :
  ?table:Cnn.Table.t ->
  model:Cnn.Model.t ->
  board:Platform.Board.t ->
  engine:Engine.Ce.t ->
  plan:Builder.Buffer_alloc.single_plan ->
  first:int ->
  last:int ->
  input_on_chip:bool ->
  output_on_chip:bool ->
  unit ->
  result
(** [evaluate] walks layers [first..last] on [engine].  [table] (a
    {!Cnn.Table} built from [model]) switches the per-layer scalar
    reads to the precomputed fast path; results are bit-identical with
    or without it.
    [input_on_chip] tells whether the block's input FMs arrive through an
    on-chip inter-segment buffer; [output_on_chip] whether its final OFM
    leaves through one.  Boundary FM traffic is charged here (a load when
    the input is off-chip, a store when the output is), so composing
    blocks sums accesses without double counting. *)

val evaluate_with_validity :
  ?table:Cnn.Table.t ->
  model:Cnn.Model.t ->
  board:Platform.Board.t ->
  engine:Engine.Ce.t ->
  plan:Builder.Buffer_alloc.single_plan ->
  first:int ->
  last:int ->
  input_on_chip:bool ->
  output_on_chip:bool ->
  unit ->
  result * (int * int)
(** Like {!evaluate}, but also returns the inclusive interval
    [(cap_lo, cap_hi)] of [fm_capacity_bytes] values over which the
    result is bit-identical.  The evaluator reads its plan only through
    the capacity, and only in threshold tests and ceiling divisions, so
    the result is piecewise constant in it; the interval is the piece
    containing [plan.fm_capacity_bytes] (conservatively narrowed —
    every branch taken and quotient computed is pinned).  {!Seg_cache}
    uses this so the byte-granular churn of the planner's proportional
    grants does not defeat segment-level memoization. *)
