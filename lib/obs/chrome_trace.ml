let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let add_event b (e : Span.event) =
  let us ns = float_of_int ns /. 1000.0 in
  Printf.bprintf b
    "{\"ph\": \"X\", \"pid\": 0, \"tid\": %d, \"ts\": %.3f, \"dur\": %.3f, \
     \"name\": \"%s\", \"cat\": \"%s\""
    e.Span.tid (us e.Span.ts_ns) (us e.Span.dur_ns) (escape e.Span.name)
    (escape e.Span.cat);
  if e.Span.args <> [] then begin
    Buffer.add_string b ", \"args\": {";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string b ", ";
        Printf.bprintf b "\"%s\": \"%s\"" (escape k) (escape v))
      e.Span.args;
    Buffer.add_char b '}'
  end;
  Buffer.add_char b '}'

let to_string events =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string b ",";
      Buffer.add_string b "\n";
      add_event b e)
    events;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

let write ~path events =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string events))
