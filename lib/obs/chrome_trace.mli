(** Export spans as Chrome [trace_event] JSON.

    The emitted file loads directly in Perfetto (https://ui.perfetto.dev)
    or chrome://tracing: one "X" (complete) event per span, with [ts]
    and [dur] in microseconds, [tid] the OCaml domain id and [pid]
    fixed at 0.  Span args become the event's [args] object. *)

val to_string : Span.event list -> string
(** The full trace JSON document for [events]. *)

val write : path:string -> Span.event list -> unit
(** [write ~path events] saves {!to_string} to [path]. *)
