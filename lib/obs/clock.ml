external now_ns : unit -> int = "mccm_obs_clock_ns" [@@noalloc]
