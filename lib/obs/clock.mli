(** Monotonic time source for spans and phase timers.

    Wall-clock time ([Unix.gettimeofday]) can jump under NTP adjustment;
    span durations must not.  This reads [CLOCK_MONOTONIC] through a
    no-allocation C stub and reports nanoseconds since an unspecified
    epoch — only differences are meaningful. *)

val now_ns : unit -> int
(** Current monotonic time in nanoseconds.  Never allocates. *)
