(* Bit 0: stats recording; bit 1: span events kept for export; bit 2:
   flight recorder.  A single atomic int so every disabled fast path is
   one load. *)

let stats_bit = 1
let trace_bit = 2
let flight_bit = 4
let state = Atomic.make 0

let enabled () = Atomic.get state <> 0
let stats_on () = Atomic.get state land stats_bit <> 0
let tracing_on () = Atomic.get state land trace_bit <> 0
let flight_on () = Atomic.get state land flight_bit <> 0
let span_on () = Atomic.get state land (stats_bit lor trace_bit) <> 0

let enable ?(tracing = false) () =
  let rec go () =
    let cur = Atomic.get state in
    let v =
      cur land flight_bit
      lor stats_bit
      lor (if tracing then trace_bit else 0)
    in
    if not (Atomic.compare_and_set state cur v) then go ()
  in
  go ()

let set_flight on =
  let rec go () =
    let cur = Atomic.get state in
    let v = if on then cur lor flight_bit else cur land lnot flight_bit in
    if not (Atomic.compare_and_set state cur v) then go ()
  in
  go ()

let disable () = Atomic.set state 0
