(* Bit 0: stats recording; bit 1: span events kept for export.  A
   single atomic int so the disabled fast path is one load. *)

let stats_bit = 1
let trace_bit = 2
let state = Atomic.make 0

let enabled () = Atomic.get state <> 0
let stats_on () = Atomic.get state land stats_bit <> 0
let tracing_on () = Atomic.get state land trace_bit <> 0

let enable ?(tracing = false) () =
  Atomic.set state (stats_bit lor if tracing then trace_bit else 0)

let disable () = Atomic.set state 0
