(** The single switch every instrumentation hook checks.

    Hooks throughout the evaluator, builder, DSE and validation layers
    compile to [if Control.stats_on () then ...] (or [span_on] /
    [flight_on]) — one atomic load on a read-mostly cache line when
    instrumentation is off, which is what keeps the disabled overhead
    under the bench gate's threshold.

    Three facets share the one atomic word: {e stats} (metric counters,
    gauges and span duration histograms record), {e tracing} (span
    events are kept for Chrome-trace export) and {e flight} (the
    {!Flight} per-request ring recorder).  Tracing implies stats, so a
    traced run always has the duration histograms behind its phase
    breakdown; flight is independent of both, so a serving daemon can
    keep its flight recorder on without paying for span
    instrumentation. *)

val enabled : unit -> bool
(** Any instrumentation on? *)

val stats_on : unit -> bool
(** Metrics (counters / gauges / histograms) recording? *)

val tracing_on : unit -> bool
(** Span events kept for trace export? *)

val flight_on : unit -> bool
(** Per-request flight recorder on? *)

val span_on : unit -> bool
(** Stats or tracing on — the {!Span.with_span} gate.  Flight alone
    does not light span instrumentation. *)

val enable : ?tracing:bool -> unit -> unit
(** Turn stats on; with [tracing:true] (default false) also keep span
    events.  The flight bit is preserved. *)

val set_flight : bool -> unit
(** Switch the flight recorder on or off, leaving stats/tracing
    untouched. *)

val disable : unit -> unit
(** Turn everything off (stats, tracing and flight).  Recorded data is
    kept until {!Metric.reset} / {!Span.clear} / {!Flight.clear}. *)
