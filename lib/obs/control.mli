(** The single switch every instrumentation hook checks.

    Hooks throughout the evaluator, builder, DSE and validation layers
    compile to [if Control.enabled () then ...] — one atomic load on a
    read-mostly cache line when instrumentation is off, which is what
    keeps the disabled overhead under the bench gate's threshold.

    Two facets can be on: {e stats} (metric counters, gauges and span
    duration histograms record) and {e tracing} (span events are kept
    for Chrome-trace export).  Tracing implies stats, so a traced run
    always has the duration histograms behind its phase breakdown. *)

val enabled : unit -> bool
(** Any instrumentation on?  The one check on hot paths. *)

val stats_on : unit -> bool
(** Metrics (counters / gauges / histograms) recording? *)

val tracing_on : unit -> bool
(** Span events kept for trace export? *)

val enable : ?tracing:bool -> unit -> unit
(** Turn stats on; with [tracing:true] (default false) also keep span
    events. *)

val disable : unit -> unit
(** Turn everything off.  Recorded data is kept until
    {!Metric.reset} / {!Span.clear}. *)
