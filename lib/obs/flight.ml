(* Fixed-capacity per-domain ring of per-request records, behind the
   same one-atomic-load gate as spans (Control.flight_on).  The record
   path touches only domain-local mutable state; a slow-request side
   buffer keeps the worst offenders even after the ring has wrapped
   past them. *)

type record = {
  rid : string;
  op : string;
  worker : int;
  t_ns : int;
  queue_ns : int;
  eval_ns : int;
  bytes_in : int;
  bytes_out : int;
  outcome : string;
}

type cell = {
  mutable ring : record option array;
  mutable pos : int;
  mutable total : int;
  mutable slow : record list; (* length <= slow_keep *)
  mutable slow_len : int;
}

let capacity = Atomic.make 512
let slow_ns = Atomic.make 50_000_000
let slow_keep = Atomic.make 32

let cells_mutex = Mutex.create ()
let cells : cell list ref = ref []

let fresh_cell () =
  {
    ring = Array.make (max 1 (Atomic.get capacity)) None;
    pos = 0;
    total = 0;
    slow = [];
    slow_len = 0;
  }

let key =
  Domain.DLS.new_key (fun () ->
      let c = fresh_cell () in
      Mutex.protect cells_mutex (fun () -> cells := c :: !cells);
      c)

let clear () =
  Mutex.protect cells_mutex (fun () ->
      List.iter
        (fun c ->
          c.ring <- Array.make (max 1 (Atomic.get capacity)) None;
          c.pos <- 0;
          c.total <- 0;
          c.slow <- [];
          c.slow_len <- 0)
        !cells)

let configure ?capacity:cap ?slow_ms ?slow_keep:keep () =
  Option.iter (fun c -> Atomic.set capacity (max 1 c)) cap;
  Option.iter
    (fun ms -> Atomic.set slow_ns (int_of_float (Float.max 0.0 ms *. 1e6)))
    slow_ms;
  Option.iter (fun k -> Atomic.set slow_keep (max 1 k)) keep;
  clear ()

let enabled = Control.flight_on
let enable () = Control.set_flight true
let disable () = Control.set_flight false

(* Replace-min retention: cheap because slow records are, by
   definition, rare. *)
let add_slow c r =
  if c.slow_len < Atomic.get slow_keep then begin
    c.slow <- r :: c.slow;
    c.slow_len <- c.slow_len + 1
  end
  else begin
    let min_r =
      List.fold_left (fun m x -> if x.eval_ns < m.eval_ns then x else m)
        (List.hd c.slow) (List.tl c.slow)
    in
    if r.eval_ns > min_r.eval_ns then begin
      let dropped = ref false in
      c.slow <-
        r
        :: List.filter
             (fun x ->
               if (not !dropped) && x == min_r then begin
                 dropped := true;
                 false
               end
               else true)
             c.slow
    end
  end

let record ~rid ~op ~worker ~queue_ns ~eval_ns ~bytes_in ~bytes_out ~outcome =
  if Control.flight_on () then begin
    let c = Domain.DLS.get key in
    let r =
      {
        rid;
        op;
        worker;
        t_ns = Clock.now_ns ();
        queue_ns;
        eval_ns;
        bytes_in;
        bytes_out;
        outcome;
      }
    in
    c.ring.(c.pos) <- Some r;
    c.pos <- (c.pos + 1) mod Array.length c.ring;
    c.total <- c.total + 1;
    if eval_ns >= Atomic.get slow_ns then add_slow c r
  end

let total () =
  Mutex.protect cells_mutex (fun () ->
      List.fold_left (fun acc c -> acc + c.total) 0 !cells)

let dump () =
  let cells = Mutex.protect cells_mutex (fun () -> !cells) in
  let of_cell c =
    let live =
      Array.to_list c.ring
      |> List.filter_map (fun r -> r)
    in
    (* A slow record that is still in the ring is the same physical
       record; keep one copy. *)
    let extra = List.filter (fun s -> not (List.memq s live)) c.slow in
    live @ extra
  in
  List.concat_map of_cell cells
  |> List.sort (fun a b -> compare a.t_ns b.t_ns)

let to_json r =
  let n v = Util.Json.Num (float_of_int v) in
  Util.Json.Obj
    [
      ("rid", Util.Json.Str r.rid);
      ("op", Util.Json.Str r.op);
      ("worker", n r.worker);
      ("t_ns", n r.t_ns);
      ("queue_ns", n r.queue_ns);
      ("eval_ns", n r.eval_ns);
      ("bytes_in", n r.bytes_in);
      ("bytes_out", n r.bytes_out);
      ("outcome", Util.Json.Str r.outcome);
    ]
