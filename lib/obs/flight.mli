(** Flight recorder: a fixed-capacity per-domain ring buffer of
    structured per-request records, for answering "what just went
    through this daemon?" on a live process.

    Recording is gated on {!Control.flight_on} — the same
    one-atomic-load discipline as spans — and the record path writes
    only domain-local state (one array store, no lock, no cross-domain
    traffic).  Each domain keeps the last [capacity] records plus a
    side buffer of up to [slow_keep] records whose evaluation time met
    the [slow_ms] threshold, retained by replace-min so the worst
    offenders survive arbitrarily long after the ring has wrapped past
    them.

    {!dump} is a snapshot-merge like {!Metric.snapshot}: it folds every
    domain's cell (ring plus slow buffer, deduplicated) into one list
    sorted by completion time.  It is exact at quiescent points; during
    concurrent recording it is best-effort (it may miss the very latest
    records, like a metric snapshot).  Records written from sibling
    systhreads of one domain (the daemon's reader threads share domain
    0) may race slot-for-slot; per-{e domain} writers are exact. *)

type record = {
  rid : string;      (** client-supplied or daemon-minted request id *)
  op : string;       (** protocol op name, e.g. ["evaluate"] *)
  worker : int;      (** worker index; [-1] = answered at the gate *)
  t_ns : int;        (** completion time, monotonic clock *)
  queue_ns : int;    (** enqueue → dispatch *)
  eval_ns : int;     (** dispatch → reply *)
  bytes_in : int;    (** request frame length *)
  bytes_out : int;   (** reply frame length (incl. newline) *)
  outcome : string;  (** ["ok"] or a protocol error code *)
}

val configure :
  ?capacity:int -> ?slow_ms:float -> ?slow_keep:int -> unit -> unit
(** Set ring capacity per domain (default 512), the slow-request
    threshold on [eval_ns] (default 50 ms) and how many slow records to
    retain per domain (default 32).  Clears all existing cells (rings
    are re-sized lazily per domain on its next record). *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit
(** Aliases of {!Control.flight_on} / {!Control.set_flight}. *)

val record :
  rid:string -> op:string -> worker:int -> queue_ns:int -> eval_ns:int ->
  bytes_in:int -> bytes_out:int -> outcome:string -> unit
(** Record one completed (or rejected) request.  One atomic load and
    nothing else while the recorder is off. *)

val dump : unit -> record list
(** Merge every domain's ring and slow buffer, deduplicated, sorted by
    {!field-t_ns} ascending. *)

val total : unit -> int
(** Lifetime records across all domains (including ones the rings have
    dropped). *)

val clear : unit -> unit
(** Drop all records (cells and slow buffers). *)

val to_json : record -> Util.Json.t
(** One record as a flat JSON object (the [recent] protocol op's
    element schema). *)
