module Control = Control
module Clock = Clock
module Metric = Metric
module Span = Span
module Chrome_trace = Chrome_trace
module Flight = Flight
module Prometheus = Prometheus

let enabled = Control.enabled
let enable = Control.enable
let disable = Control.disable
let span = Span.with_span

let reset () =
  Metric.reset ();
  Span.clear ()

let write_trace ~path = Chrome_trace.write ~path (Span.events ())

let pp_summary ppf () = Metric.pp ppf (Metric.snapshot ())
