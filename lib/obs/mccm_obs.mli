(** Observability for the MCCM toolchain: structured tracing, metrics
    and profiling across the evaluator, builder, DSE and validation
    layers.

    The library is dormant by default: every hook threaded through the
    stack starts with one atomic load ({!Control.enabled}) and does
    nothing else while instrumentation is off — the bench gate holds the
    disabled overhead under 2% on the cached-DSE hot path.  Switched on
    (CLI [--stats] / [--trace FILE], or {!enable}), spans feed
    per-domain buffers exportable as Chrome [trace_event] JSON
    ({!Chrome_trace}, loadable in Perfetto) and duration histograms,
    while counters and gauges record cache hit rates, dedup ratios and
    best-so-far trajectories in the global {!Metric} registry.

    Span taxonomy (categories in parentheses): [eval.run],
    [eval.single_ce], [eval.pipelined] (mccm); [build.build],
    [build.parallelism_select], [build.plan], [build.planning_floor]
    (build); [dse.draw], [dse.eval], [dse.eval_slice],
    [dse.exhaustive], [dse.exhaustive_best], [dse.local_search] (dse);
    [validate.sweep] phases
    and one [validate.<invariant>] per invariant check (validate);
    [serve.<op>] per-request spans in the daemon's workers (serve, with
    a [rid] arg carrying the request id); [mccm.<subcommand>] CLI roots
    (cli).  Metric names mirror the subsystem: [session.*], [seg.*],
    [plan.*], [build.*], [dse.*], [validate.*], [serve.*]
    (work-request/reply/rejection counters,
    [serve.queue.depth]/[serve.queue.peak] gauges and per-endpoint
    [serve.<op>.latency] histograms from the evaluation daemon), and a
    ["span.<name>"] duration histogram per span.

    Beyond spans and metrics the library carries two telemetry planes
    for the serving stack: {!Flight}, a per-domain ring buffer of
    structured per-request records (request id, op, queue-wait and
    evaluation nanoseconds, bytes in/out, outcome, worker) gated like
    everything else on one atomic load and dumped via snapshot-merge;
    and exact snapshot serialization ({!Metric.to_json} /
    {!Metric.of_json} / {!Metric.delta}) plus a Prometheus text
    renderer ({!Prometheus}) so a live process can be polled, scraped
    and diffed without stopping it. *)

module Control = Control
module Clock = Clock
module Metric = Metric
module Span = Span
module Chrome_trace = Chrome_trace
module Flight = Flight
module Prometheus = Prometheus

val enabled : unit -> bool
(** Alias of {!Control.enabled} — the hook gate. *)

val enable : ?tracing:bool -> unit -> unit
(** Alias of {!Control.enable}. *)

val disable : unit -> unit
(** Alias of {!Control.disable}. *)

val span :
  ?cat:string -> ?args:(string * string) list -> string ->
  (unit -> 'a) -> 'a
(** Alias of {!Span.with_span}. *)

val reset : unit -> unit
(** {!Metric.reset} plus {!Span.clear}: a clean slate between runs. *)

val write_trace : path:string -> unit
(** Export every recorded span to [path] as Chrome trace JSON. *)

val pp_summary : Format.formatter -> unit -> unit
(** The "mccm stats" block: the current {!Metric.snapshot} rendered as
    tables (counters, gauges, span-duration quantiles). *)
