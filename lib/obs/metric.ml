type counter = { c_name : string; c_cell : int Atomic.t }
type gauge = { g_name : string; g_cell : float Atomic.t }

(* One histogram cell per (histogram, domain): the observe path touches
   only domain-local mutable state, so parallel sweeps never contend.
   Cells register themselves in [hist_cells] on first use so a snapshot
   can find them after their domain has joined. *)
type hcell = {
  mutable h_samples : float array;
  mutable h_len : int;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type histogram = { h_name : string; h_cap : int; h_key : hcell Domain.DLS.key }

let registry_mutex = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 64
let hist_cells : (string * hcell) list ref = ref []

let with_registry f = Mutex.protect registry_mutex f

(* Gauges start at nan = "unset": max-merging and rendering skip them
   without a separate presence bit. *)
let unset = Float.nan

let counter name =
  with_registry (fun () ->
      match Hashtbl.find_opt counters name with
      | Some c -> c
      | None ->
        let c = { c_name = name; c_cell = Atomic.make 0 } in
        Hashtbl.add counters name c;
        c)

let gauge name =
  with_registry (fun () ->
      match Hashtbl.find_opt gauges name with
      | Some g -> g
      | None ->
        let g = { g_name = name; g_cell = Atomic.make unset } in
        Hashtbl.add gauges name g;
        g)

let fresh_cell () =
  {
    h_samples = [||];
    h_len = 0;
    h_count = 0;
    h_sum = 0.0;
    h_min = infinity;
    h_max = neg_infinity;
  }

let histogram ?(cap = 8192) name =
  with_registry (fun () ->
      match Hashtbl.find_opt histograms name with
      | Some h -> h
      | None ->
        let h =
          {
            h_name = name;
            h_cap = max 1 cap;
            h_key =
              Domain.DLS.new_key (fun () ->
                  let cell = fresh_cell () in
                  Mutex.protect registry_mutex (fun () ->
                      hist_cells := (name, cell) :: !hist_cells);
                  cell);
          }
        in
        Hashtbl.add histograms name h;
        h)

let incr c = if Control.stats_on () then Atomic.incr c.c_cell
let add c n = if Control.stats_on () then ignore (Atomic.fetch_and_add c.c_cell n)
let value c = Atomic.get c.c_cell
let set g v = if Control.stats_on () then Atomic.set g.g_cell v

let update_max g v =
  if Control.stats_on () then begin
    let rec go () =
      let cur = Atomic.get g.g_cell in
      if Float.is_nan cur || v > cur then
        if not (Atomic.compare_and_set g.g_cell cur v) then go ()
    in
    go ()
  end

let observe h v =
  if Control.stats_on () then begin
    let c = Domain.DLS.get h.h_key in
    c.h_count <- c.h_count + 1;
    c.h_sum <- c.h_sum +. v;
    if v < c.h_min then c.h_min <- v;
    if v > c.h_max then c.h_max <- v;
    if c.h_len < h.h_cap then begin
      if c.h_len = Array.length c.h_samples then begin
        let grown = Array.make (min h.h_cap (max 16 (2 * c.h_len))) 0.0 in
        Array.blit c.h_samples 0 grown 0 c.h_len;
        c.h_samples <- grown
      end;
      c.h_samples.(c.h_len) <- v;
      c.h_len <- c.h_len + 1
    end
  end

(* ------------------------------------------------------- snapshots *)

type hist_snapshot = {
  count : int;
  sum : float;
  min : float;
  max : float;
  samples : float array;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist_snapshot) list;
}

let empty_hist =
  { count = 0; sum = 0.0; min = infinity; max = neg_infinity; samples = [||] }

let merge_hist a b =
  let samples = Array.append a.samples b.samples in
  Array.sort compare samples;
  {
    count = a.count + b.count;
    sum = a.sum +. b.sum;
    min = Float.min a.min b.min;
    max = Float.max a.max b.max;
    samples;
  }

let by_name (a, _) (b, _) = compare (a : string) b

let snapshot () =
  with_registry (fun () ->
      let counters =
        Hashtbl.fold (fun name c acc -> (name, Atomic.get c.c_cell) :: acc)
          counters []
        |> List.sort by_name
      in
      let gauges =
        Hashtbl.fold
          (fun name g acc ->
            let v = Atomic.get g.g_cell in
            if Float.is_nan v then acc else (name, v) :: acc)
          gauges []
        |> List.sort by_name
      in
      let hists = Hashtbl.create 16 in
      List.iter
        (fun (name, (c : hcell)) ->
          let piece =
            {
              count = c.h_count;
              sum = c.h_sum;
              min = c.h_min;
              max = c.h_max;
              samples = Array.sub c.h_samples 0 c.h_len;
            }
          in
          let prev =
            Option.value (Hashtbl.find_opt hists name) ~default:empty_hist
          in
          Hashtbl.replace hists name (merge_hist prev piece))
        !hist_cells;
      let histograms =
        Hashtbl.fold (fun name h acc -> (name, h) :: acc) hists []
        |> List.sort by_name
      in
      { counters; gauges; histograms })

(* Union of two sorted assoc lists, combining values on a shared key —
   the merge is commutative as long as [combine] is. *)
let union combine a b =
  let rec go a b =
    match (a, b) with
    | [], rest | rest, [] -> rest
    | (ka, va) :: ta, (kb, vb) :: tb ->
      if ka < kb then (ka, va) :: go ta b
      else if kb < ka then (kb, vb) :: go a tb
      else (ka, combine va vb) :: go ta tb
  in
  go a b

let merge a b =
  {
    counters = union ( + ) a.counters b.counters;
    gauges = union Float.max a.gauges b.gauges;
    histograms = union merge_hist a.histograms b.histograms;
  }

let reset () =
  with_registry (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.c_cell 0) counters;
      Hashtbl.iter (fun _ g -> Atomic.set g.g_cell unset) gauges;
      List.iter
        (fun (_, c) ->
          c.h_samples <- [||];
          c.h_len <- 0;
          c.h_count <- 0;
          c.h_sum <- 0.0;
          c.h_min <- infinity;
          c.h_max <- neg_infinity)
        !hist_cells)

let quantile h ~q =
  Util.Stats.quantile (Array.to_list h.samples) ~q

(* ----------------------------------------------- snapshot JSON *)

(* Exact serialization over Util.Json: full sample arrays (so quantiles
   recompute bit-for-bit after a round trip through %.17g floats), with
   the empty-histogram sentinels min = infinity / max = neg_infinity
   encoded as JSON null (Util.Json renders non-finite numbers as null
   anyway, so this keeps the value-level and string-level round trips
   identical). *)

let hist_to_json h =
  let bound v = if Float.is_finite v then Util.Json.Num v else Util.Json.Null in
  Util.Json.Obj
    [
      ("count", Util.Json.Num (float_of_int h.count));
      ("sum", Util.Json.Num h.sum);
      ("min", bound h.min);
      ("max", bound h.max);
      ( "samples",
        Util.Json.Arr
          (Array.to_list (Array.map (fun v -> Util.Json.Num v) h.samples)) );
    ]

let to_json s =
  Util.Json.Obj
    [
      ( "counters",
        Util.Json.Obj
          (List.map
             (fun (k, v) -> (k, Util.Json.Num (float_of_int v)))
             s.counters) );
      ( "gauges",
        Util.Json.Obj (List.map (fun (k, v) -> (k, Util.Json.Num v)) s.gauges)
      );
      ( "histograms",
        Util.Json.Obj (List.map (fun (k, h) -> (k, hist_to_json h)) s.histograms)
      );
    ]

let of_json j =
  let ( let* ) = Result.bind in
  let obj what = function
    | Some (Util.Json.Obj kvs) -> Ok kvs
    | Some _ -> Error (what ^ ": expected an object")
    | None -> Error (what ^ ": missing")
  in
  let num what = function
    | Some (Util.Json.Num v) -> Ok v
    | Some _ | None -> Error (what ^ ": expected a number")
  in
  let int_ what = function
    | Some (Util.Json.Num v) when Float.is_integer v -> Ok (int_of_float v)
    | Some _ | None -> Error (what ^ ": expected an integer")
  in
  let bound what ~empty = function
    | Some Util.Json.Null -> Ok empty
    | Some (Util.Json.Num v) -> Ok v
    | Some _ | None -> Error (what ^ ": expected a number or null")
  in
  let rec each f acc = function
    | [] -> Ok (List.rev acc)
    | kv :: tl ->
      let* x = f kv in
      each f (x :: acc) tl
  in
  let hist_of_json name = function
    | Util.Json.Obj _ as hj ->
      let m k = Util.Json.member k hj in
      let* count = int_ (name ^ ".count") (m "count") in
      let* sum = num (name ^ ".sum") (m "sum") in
      let* min = bound (name ^ ".min") ~empty:infinity (m "min") in
      let* max = bound (name ^ ".max") ~empty:neg_infinity (m "max") in
      let* samples =
        match m "samples" with
        | Some (Util.Json.Arr xs) ->
          let* l =
            each
              (function
                | Util.Json.Num v -> Ok v
                | _ -> Error (name ^ ".samples: expected numbers"))
              [] xs
          in
          Ok (Array.of_list l)
        | Some _ | None -> Error (name ^ ".samples: expected an array")
      in
      Ok { count; sum; min; max; samples }
    | _ -> Error (name ^ ": expected a histogram object")
  in
  match j with
  | Util.Json.Obj _ ->
    let* cs = obj "counters" (Util.Json.member "counters" j) in
    let* counters =
      each
        (fun (k, v) ->
          let* n = int_ ("counters." ^ k) (Some v) in
          Ok (k, n))
        [] cs
    in
    let* gs = obj "gauges" (Util.Json.member "gauges" j) in
    let* gauges =
      each
        (fun (k, v) ->
          let* n = num ("gauges." ^ k) (Some v) in
          Ok (k, n))
        [] gs
    in
    let* hs = obj "histograms" (Util.Json.member "histograms" j) in
    let* histograms =
      each
        (fun (k, v) ->
          let* h = hist_of_json ("histograms." ^ k) v in
          Ok (k, h))
        [] hs
    in
    Ok { counters; gauges; histograms }
  | _ -> Error "snapshot: expected an object"

(* ----------------------------------------------------------- delta *)

(* Sorted-multiset difference [later \ earlier]; under the monotone
   precondition every sample of [earlier] still appears in [later]. *)
let diff_samples later earlier =
  let n = Array.length later and m = Array.length earlier in
  let out = ref [] in
  let i = ref 0 and j = ref 0 in
  (* [incr] is shadowed by this module's counter op. *)
  let bump r = r := !r + 1 in
  while !i < n do
    let v = later.(!i) in
    if !j >= m then begin
      out := v :: !out;
      bump i
    end
    else
      let c = compare earlier.(!j) v in
      if c = 0 then begin
        bump i;
        bump j
      end
      else if c < 0 then bump j
      else begin
        out := v :: !out;
        bump i
      end
  done;
  Array.of_list (List.rev !out)

let delta_hist later earlier =
  let count = Stdlib.max 0 (later.count - earlier.count) in
  let samples = diff_samples later.samples earlier.samples in
  if count = 0 && Array.length samples = 0 then empty_hist
  else
    {
      count;
      sum = later.sum -. earlier.sum;
      min = later.min;
      max = later.max;
      samples;
    }

let delta later earlier =
  let counters =
    List.map
      (fun (k, v) ->
        (k, v - Option.value ~default:0 (List.assoc_opt k earlier.counters)))
      later.counters
  in
  let histograms =
    List.map
      (fun (k, h) ->
        ( k,
          delta_hist h
            (Option.value ~default:empty_hist
               (List.assoc_opt k earlier.histograms)) ))
      later.histograms
  in
  { counters; gauges = later.gauges; histograms }

(* ------------------------------------------------------- rendering *)

let pp ppf s =
  (* Defensive sort: snapshots are built sorted, but render
     deterministically whatever the caller assembled. *)
  let s =
    {
      counters = List.sort by_name s.counters;
      gauges = List.sort by_name s.gauges;
      histograms = List.sort by_name s.histograms;
    }
  in
  let scalars =
    Util.Table.create ~title:"counters & gauges"
      ~columns:[ ("metric", Util.Table.Left); ("value", Util.Table.Right) ]
      ()
  in
  List.iter
    (fun (name, v) ->
      if v <> 0 then Util.Table.add_row scalars [ name; string_of_int v ])
    s.counters;
  List.iter
    (fun (name, v) ->
      Util.Table.add_row scalars [ name; Format.sprintf "%.4g" v ])
    s.gauges;
  Format.fprintf ppf "@[<v>%s" (String.trim (Util.Table.render scalars));
  let nonempty = List.filter (fun (_, h) -> h.count > 0) s.histograms in
  if nonempty <> [] then begin
    let hists =
      Util.Table.create ~title:"span durations"
        ~columns:
          [ ("span", Util.Table.Left); ("count", Util.Table.Right);
            ("total", Util.Table.Right); ("p50", Util.Table.Right);
            ("p95", Util.Table.Right); ("p99", Util.Table.Right);
            ("max", Util.Table.Right) ]
        ()
    in
    let ms v = Format.sprintf "%.3f ms" (1e3 *. v) in
    List.iter
      (fun (name, h) ->
        Util.Table.add_row hists
          [ name; string_of_int h.count; ms h.sum;
            ms (quantile h ~q:0.50); ms (quantile h ~q:0.95);
            ms (quantile h ~q:0.99); ms h.max ])
      nonempty;
    Format.fprintf ppf "@,%s" (String.trim (Util.Table.render hists))
  end;
  Format.fprintf ppf "@]"

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json_string s =
  let b = Buffer.create 1024 in
  let add fmt = Printf.bprintf b fmt in
  let obj fields emit =
    add "{";
    List.iteri
      (fun i x ->
        if i > 0 then add ", ";
        emit x)
      fields;
    add "}"
  in
  add "{\"counters\": ";
  obj s.counters (fun (name, v) -> add "\"%s\": %d" (json_escape name) v);
  add ", \"gauges\": ";
  obj s.gauges (fun (name, v) -> add "\"%s\": %.9g" (json_escape name) v);
  add ", \"histograms\": ";
  obj
    (List.filter (fun (_, h) -> h.count > 0) s.histograms)
    (fun (name, h) ->
      add
        "\"%s\": {\"count\": %d, \"sum\": %.9g, \"min\": %.9g, \"max\": \
         %.9g, \"p50\": %.9g, \"p95\": %.9g, \"p99\": %.9g}"
        (json_escape name) h.count h.sum h.min h.max
        (quantile h ~q:0.50) (quantile h ~q:0.95) (quantile h ~q:0.99));
  add "}";
  Buffer.contents b
