(** Process-wide registry of named counters, gauges and histograms.

    Hot-path operations are O(1) and gated on {!Control.stats_on}:
    counters are atomic increments (exact under parallel increments from
    any number of domains), gauges are atomic stores / compare-and-set
    maxima, and histogram observations append to a per-domain cell — no
    lock and no cross-domain traffic on the record path.

    Registration ({!counter} / {!gauge} / {!histogram}) is get-or-create
    by name under a mutex; call sites hold the returned handle (usually
    at module initialisation) so the hot path never touches the
    registry.  A {!snapshot} folds every domain's cells into an
    immutable value; take snapshots at quiescent points (after domains
    join) — concurrent observation during a snapshot can miss the very
    latest samples.  Snapshots {!merge} commutatively: counters add,
    gauges take the maximum, histograms pool their samples — so merging
    per-process or per-run snapshots is order-insensitive. *)

type counter
type gauge
type histogram

val counter : string -> counter
(** Get or create the counter [name]. *)

val gauge : string -> gauge
(** Get or create the gauge [name].  A gauge starts unset (rendered and
    snapshotted only once written). *)

val histogram : ?cap:int -> string -> histogram
(** Get or create the histogram [name].  Each histogram keeps count,
    sum, min and max exactly, plus up to [cap] (default 8192, first
    [cap] observations; fixed at creation) raw samples per domain for
    quantile estimation. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int
(** Current value (readable whether or not stats are on). *)

val set : gauge -> float -> unit
val update_max : gauge -> float -> unit
(** Raise the gauge to [v] if [v] exceeds its current value (or it is
    unset) — best-so-far trajectories. *)

val observe : histogram -> float -> unit
(** Record one sample (by convention, durations in seconds). *)

(** {1 Snapshots} *)

type hist_snapshot = {
  count : int;
  sum : float;
  min : float;          (** [infinity] when empty *)
  max : float;          (** [neg_infinity] when empty *)
  samples : float array;
      (** sorted ascending; capped at record time, complete below the
          cap *)
}

type snapshot = {
  counters : (string * int) list;            (** sorted by name *)
  gauges : (string * float) list;            (** set gauges only *)
  histograms : (string * hist_snapshot) list;
}

val snapshot : unit -> snapshot
(** Fold the whole registry (all domains' cells) into one value. *)

val merge : snapshot -> snapshot -> snapshot
(** Commutative union: counters add, gauges max, histograms pool
    (count/sum add, min/max widen, samples merge sorted). *)

val reset : unit -> unit
(** Zero every counter, unset every gauge, drop every histogram sample.
    Registered names (and handles held by call sites) stay valid. *)

val quantile : hist_snapshot -> q:float -> float
(** Linear-interpolation quantile ([q] in [0, 1]) over the snapshot's
    retained samples via {!Util.Stats.quantile}.
    @raise Invalid_argument on an empty histogram or [q] out of
    range. *)

val pp : Format.formatter -> snapshot -> unit
(** Render as {!Util.Table} blocks: counters/gauges, then histograms
    with count, total and p50/p95/p99 from {!quantile}. *)

val to_json_string : snapshot -> string
(** Hand-rolled JSON object (the toolchain has no JSON library):
    [{"counters": {..}, "gauges": {..}, "histograms": {name: {count,
    sum, min, max, p50, p95, p99}}}]. *)
