(** Process-wide registry of named counters, gauges and histograms.

    Hot-path operations are O(1) and gated on {!Control.stats_on}:
    counters are atomic increments (exact under parallel increments from
    any number of domains), gauges are atomic stores / compare-and-set
    maxima, and histogram observations append to a per-domain cell — no
    lock and no cross-domain traffic on the record path.

    Registration ({!counter} / {!gauge} / {!histogram}) is get-or-create
    by name under a mutex; call sites hold the returned handle (usually
    at module initialisation) so the hot path never touches the
    registry.  A {!snapshot} folds every domain's cells into an
    immutable value; take snapshots at quiescent points (after domains
    join) — concurrent observation during a snapshot can miss the very
    latest samples.  Snapshots {!merge} commutatively: counters add,
    gauges take the maximum, histograms pool their samples — so merging
    per-process or per-run snapshots is order-insensitive. *)

type counter
type gauge
type histogram

val counter : string -> counter
(** Get or create the counter [name]. *)

val gauge : string -> gauge
(** Get or create the gauge [name].  A gauge starts unset (rendered and
    snapshotted only once written). *)

val histogram : ?cap:int -> string -> histogram
(** Get or create the histogram [name].  Each histogram keeps count,
    sum, min and max exactly, plus up to [cap] (default 8192, first
    [cap] observations; fixed at creation) raw samples per domain for
    quantile estimation. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int
(** Current value (readable whether or not stats are on). *)

val set : gauge -> float -> unit
val update_max : gauge -> float -> unit
(** Raise the gauge to [v] if [v] exceeds its current value (or it is
    unset) — best-so-far trajectories. *)

val observe : histogram -> float -> unit
(** Record one sample (by convention, durations in seconds). *)

(** {1 Snapshots} *)

type hist_snapshot = {
  count : int;
  sum : float;
  min : float;          (** [infinity] when empty *)
  max : float;          (** [neg_infinity] when empty *)
  samples : float array;
      (** sorted ascending; capped at record time, complete below the
          cap *)
}

type snapshot = {
  counters : (string * int) list;            (** sorted by name *)
  gauges : (string * float) list;            (** set gauges only *)
  histograms : (string * hist_snapshot) list;
}

val snapshot : unit -> snapshot
(** Fold the whole registry (all domains' cells) into one value. *)

val merge : snapshot -> snapshot -> snapshot
(** Commutative union: counters add, gauges max, histograms pool
    (count/sum add, min/max widen, samples merge sorted). *)

val reset : unit -> unit
(** Zero every counter, unset every gauge, drop every histogram sample.
    Registered names (and handles held by call sites) stay valid. *)

val quantile : hist_snapshot -> q:float -> float
(** Linear-interpolation quantile ([q] in [0, 1]) over the snapshot's
    retained samples via {!Util.Stats.quantile}.
    @raise Invalid_argument on an empty histogram or [q] out of
    range. *)

val to_json : snapshot -> Util.Json.t
(** Exact serialization: [{"counters": {name: int}, "gauges": {name:
    num}, "histograms": {name: {count, sum, min, max, samples: [..]}}}].
    Full sample arrays cross the wire (not precomputed quantiles), so
    {!quantile} on a decoded snapshot is bit-identical to the original;
    floats survive {!Util.Json.to_string} at full [%.17g] precision.
    The empty-histogram sentinels ([min = infinity],
    [max = neg_infinity]) encode as [null].  Non-finite samples are not
    representable (they would render as [null]); observations are
    durations and sizes, which are finite. *)

val of_json : Util.Json.t -> (snapshot, string) result
(** Inverse of {!to_json}: [of_json (to_json s) = Ok s], including
    through a {!Util.Json.to_string} / [parse] string round trip.
    Key order is preserved, so snapshots (always sorted) decode
    sorted. *)

val delta : snapshot -> snapshot -> snapshot
(** [delta later earlier] — what happened between two snapshots of the
    same registry: counters subtract, histograms subtract (count and
    sum subtract, samples are the sorted multiset difference, min/max
    are [later]'s), gauges keep [later]'s value.  Keys come from
    [later] only.  For a monotone pair (i.e. [later = merge earlier g]
    for some [g]), [merge earlier (delta later earlier) = later] — the
    property the test suite pins — so pollers can turn two absolute
    snapshots into an interval snapshot and compute rates and
    interval quantiles from it. *)

val pp : Format.formatter -> snapshot -> unit
(** Render as {!Util.Table} blocks: counters/gauges, then histograms
    with count, total and p50/p95/p99 from {!quantile}.  Output is
    fully deterministic: every block is sorted by name regardless of
    the order the caller assembled the snapshot in (pinned by a golden
    test). *)

val to_json_string : snapshot -> string
(** Legacy compact rendering with precomputed quantiles: [{"counters":
    {..}, "gauges": {..}, "histograms": {name: {count, sum, min, max,
    p50, p95, p99}}}] at [%.9g].  Lossy; prefer {!to_json} for
    anything that needs to decode. *)
