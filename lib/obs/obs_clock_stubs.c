/* Monotonic clock for Mccm_obs spans.

   Returns nanoseconds since an unspecified epoch as an OCaml immediate
   int (63 bits hold ~146 years of nanoseconds), so a clock read never
   allocates — span bookkeeping must not disturb what it measures. */

#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value mccm_obs_clock_ns(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
}
