(* Prometheus text exposition format (version 0.0.4) over a Metric
   snapshot.  Counters map to counters, gauges to gauges and histograms
   to summaries (quantile labels + _sum/_count), which is the honest
   translation of "raw samples with exact quantiles".  Values render
   through Util.Json.num_to_string so a scrape and the JSON telemetry
   agree bit-for-bit. *)

let sanitize name =
  String.map
    (fun ch ->
      match ch with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> ch
      | _ -> '_')
    name

let value v = Util.Json.num_to_string v

let render ?(namespace = "mccm") ?(extra_counters = []) ?(extra_gauges = [])
    (s : Metric.snapshot) =
  let b = Buffer.create 4096 in
  let full name = namespace ^ "_" ^ sanitize name in
  let scalar kind name v =
    let n = full name in
    Printf.bprintf b "# TYPE %s %s\n%s %s\n" n kind n v
  in
  List.iter
    (fun (name, v) -> scalar "counter" name (string_of_int v))
    extra_counters;
  List.iter
    (fun (name, v) ->
      if Float.is_finite v then scalar "gauge" name (value v))
    extra_gauges;
  List.iter
    (fun (name, v) -> scalar "counter" name (string_of_int v))
    s.Metric.counters;
  List.iter
    (fun (name, v) ->
      if Float.is_finite v then scalar "gauge" name (value v))
    s.Metric.gauges;
  List.iter
    (fun (name, (h : Metric.hist_snapshot)) ->
      let n = full name in
      Printf.bprintf b "# TYPE %s summary\n" n;
      if h.Metric.count > 0 && Array.length h.Metric.samples > 0 then
        List.iter
          (fun (q, label) ->
            Printf.bprintf b "%s{quantile=\"%s\"} %s\n" n label
              (value (Metric.quantile h ~q)))
          [ (0.5, "0.5"); (0.95, "0.95"); (0.99, "0.99") ];
      Printf.bprintf b "%s_sum %s\n" n (value h.Metric.sum);
      Printf.bprintf b "%s_count %d\n" n h.Metric.count)
    s.Metric.histograms;
  Buffer.contents b
