(** Prometheus text exposition (format 0.0.4) for {!Metric} snapshots.

    Counters render as [counter], gauges as [gauge] and histograms as
    [summary] families (p50/p95/p99 [quantile] labels computed from the
    retained samples, plus [_sum] and [_count]).  Metric names are
    prefixed with the namespace and sanitized to the Prometheus
    alphabet (every other character becomes ['_'], so
    [serve.evaluate.latency] scrapes as
    [mccm_serve_evaluate_latency]).  Values go through
    {!Util.Json.num_to_string}, so a scrape agrees bit-for-bit with the
    JSON telemetry stream.  Non-finite gauge values are skipped;
    quantile lines are emitted only for non-empty histograms. *)

val render :
  ?namespace:string ->
  ?extra_counters:(string * int) list ->
  ?extra_gauges:(string * float) list ->
  Metric.snapshot ->
  string
(** Render the whole snapshot (default namespace ["mccm"]).
    [extra_counters] / [extra_gauges] prepend process-level series that
    live outside the {!Metric} registry (the daemon's always-on
    counters). *)
