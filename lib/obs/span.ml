type event = {
  name : string;
  cat : string;
  ts_ns : int;
  dur_ns : int;
  tid : int;
  depth : int;
  args : (string * string) list;
}

(* Per-domain buffer: the record path is an unsynchronised cons onto
   the domain's own list.  Buffers register themselves in [bufs] on the
   domain's first span so {!events} still sees them after the domain
   joins. *)
type buf = { tid : int; mutable depth : int; mutable events : event list }

let bufs_mutex = Mutex.create ()
let bufs : buf list ref = ref []

let key =
  Domain.DLS.new_key (fun () ->
      let b =
        { tid = (Domain.self () :> int); depth = 0; events = [] }
      in
      Mutex.protect bufs_mutex (fun () -> bufs := b :: !bufs);
      b)

(* Span histograms resolve through a per-domain memo so the exit path
   costs one unsynchronised Hashtbl probe instead of a string concat
   plus a mutex-protected registry lookup on every span. *)
let span_hists = Domain.DLS.new_key (fun () -> Hashtbl.create 64)

let observe_span name dur_ns =
  let tbl = Domain.DLS.get span_hists in
  let h =
    match Hashtbl.find_opt tbl name with
    | Some h -> h
    | None ->
      let h = Metric.histogram ("span." ^ name) in
      Hashtbl.add tbl name h;
      h
  in
  Metric.observe h (1e-9 *. float_of_int dur_ns)

let with_span ?(cat = "mccm") ?(args = []) name f =
  if not (Control.span_on ()) then f ()
  else begin
    let b = Domain.DLS.get key in
    let t0 = Clock.now_ns () in
    b.depth <- b.depth + 1;
    let finish () =
      let dur_ns = Clock.now_ns () - t0 in
      b.depth <- b.depth - 1;
      if Control.tracing_on () then
        b.events <-
          { name; cat; ts_ns = t0; dur_ns; tid = b.tid; depth = b.depth;
            args }
          :: b.events;
      if Control.stats_on () then observe_span name dur_ns
    in
    match f () with
    | r ->
      finish ();
      r
    | exception e ->
      finish ();
      raise e
  end

let events () =
  let all =
    Mutex.protect bufs_mutex (fun () ->
        List.concat_map (fun b -> b.events) !bufs)
  in
  List.sort
    (fun a b ->
      match compare a.ts_ns b.ts_ns with
      | 0 -> compare a.depth b.depth
      | c -> c)
    all

let clear () =
  Mutex.protect bufs_mutex (fun () ->
      List.iter (fun b -> b.events <- []) !bufs)
