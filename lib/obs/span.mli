(** Monotonic-clock spans with stack nesting and per-domain buffers.

    A span is opened and closed around a function call ({!with_span});
    its event records the span's monotonic start time, duration, domain
    id and nesting depth at open.  Because spans follow call structure,
    events on one domain are always properly nested: two spans on the
    same domain are either disjoint or one contains the other — which is
    exactly the shape the Chrome [trace_event] "X" (complete) events of
    {!Chrome_trace} need to reconstruct the flame graph.

    Each domain appends to its own buffer (registered globally on the
    domain's first span, so buffers outlive their domain's join); the
    record path takes no lock.  When {!Control.enabled} is off,
    {!with_span} is a single atomic load and a tail call.  Span
    durations additionally feed a ["span.<name>"] histogram in
    {!Metric} whenever stats are on, tracing or not. *)

type event = {
  name : string;
  cat : string;                 (** Chrome-trace category *)
  ts_ns : int;                  (** monotonic open time *)
  dur_ns : int;
  tid : int;                    (** domain id *)
  depth : int;                  (** nesting depth at open, 0 = root *)
  args : (string * string) list;
}

val with_span :
  ?cat:string -> ?args:(string * string) list -> string ->
  (unit -> 'a) -> 'a
(** [with_span name f] runs [f ()] inside a span.  [cat] defaults to
    ["mccm"].  The span closes (and records) even when [f] raises. *)

val events : unit -> event list
(** Every recorded event from every domain, sorted by start time then
    depth (a parent sorts before the children it opened at the same
    nanosecond). *)

val clear : unit -> unit
(** Drop all recorded events (all domains). *)
