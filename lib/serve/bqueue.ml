(* Bounded blocking FIFO shared between connection threads (producers)
   and pool-worker domains (consumers).  See bqueue.mli. *)

type 'a t = {
  capacity : int;
  q : 'a Queue.t;
  m : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Bqueue.create: capacity must be >= 1";
  {
    capacity;
    q = Queue.create ();
    m = Mutex.create ();
    nonempty = Condition.create ();
    closed = false;
  }

let with_lock t f =
  Mutex.lock t.m;
  match f () with
  | v ->
    Mutex.unlock t.m;
    v
  | exception e ->
    Mutex.unlock t.m;
    raise e

let try_push t v =
  with_lock t (fun () ->
      if t.closed || Queue.length t.q >= t.capacity then false
      else begin
        Queue.push v t.q;
        Condition.signal t.nonempty;
        true
      end)

let pop t =
  with_lock t (fun () ->
      let rec wait () =
        if not (Queue.is_empty t.q) then Some (Queue.pop t.q)
        else if t.closed then None
        else begin
          Condition.wait t.nonempty t.m;
          wait ()
        end
      in
      wait ())

let pop_head_if t pred =
  with_lock t (fun () ->
      match Queue.peek_opt t.q with
      | Some v when pred v -> Some (Queue.pop t.q)
      | _ -> None)

let close t =
  with_lock t (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

let closed t = with_lock t (fun () -> t.closed)
let length t = with_lock t (fun () -> Queue.length t.q)
