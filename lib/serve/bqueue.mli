(** Bounded blocking FIFO — the daemon's request queue.

    Producers (connection threads) use {!try_push}, which {e never}
    blocks: a full queue returns [false] immediately, and the caller
    answers the client with an [overloaded] reply — backpressure is
    explicit, the daemon never buffers without bound.  Consumers
    (worker domains) block in {!pop} until an item or {!close} arrives;
    after [close] the queue drains — remaining items are still served —
    and then every pop returns [None], which is the workers' signal to
    exit.  Safe across any mix of systhreads and domains (one mutex,
    one condition). *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument when [capacity < 1]. *)

val try_push : 'a t -> 'a -> bool
(** Non-blocking; [false] when full or closed. *)

val pop : 'a t -> 'a option
(** Blocking; [None] once closed {e and} drained. *)

val pop_head_if : 'a t -> ('a -> bool) -> 'a option
(** Non-blocking: pop the head iff the predicate accepts it.  Only ever
    inspects the head, so FIFO order is preserved — this is how a
    worker gathers a batch of {e consecutive} compatible requests. *)

val close : 'a t -> unit
(** Reject further pushes; wake all blocked consumers.  Idempotent. *)

val closed : 'a t -> bool
val length : 'a t -> int
