(* Synchronous client for the mccm evaluation daemon.  See client.mli. *)

module Json = Util.Json

type t = {
  fd : Unix.file_descr;
  acc : Buffer.t;       (* bytes read past the last complete line *)
  chunk : Bytes.t;
  mutable next_id : int;
  mutable closed : bool;
}

let connect path =
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | fd -> (
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () ->
      Ok
        {
          fd;
          acc = Buffer.create 4096;
          chunk = Bytes.create 65536;
          next_id = 0;
          closed = false;
        }
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Printf.sprintf "%s: %s" path (Unix.error_message e)))

let connect_exn path =
  match connect path with Ok t -> t | Error msg -> failwith msg

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let send_bytes t s =
  let len = String.length s in
  let sent = ref 0 in
  try
    while !sent < len do
      sent := !sent + Unix.write_substring t.fd s !sent (len - !sent)
    done;
    Ok ()
  with Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let send_line t line = send_bytes t (line ^ "\n")

(* One reply line; [timeout_s] bounds the whole wait. *)
let recv_line ?timeout_s t =
  let deadline =
    Option.map (fun s -> Unix.gettimeofday () +. s) timeout_s
  in
  let take_line () =
    let s = Buffer.contents t.acc in
    match String.index_opt s '\n' with
    | None -> None
    | Some i ->
      Buffer.clear t.acc;
      Buffer.add_substring t.acc s (i + 1) (String.length s - i - 1);
      Some (String.sub s 0 i)
  in
  let rec loop () =
    match take_line () with
    | Some line -> Ok line
    | None -> (
      let remaining =
        match deadline with
        | None -> -1.0 (* block *)
        | Some d ->
          let r = d -. Unix.gettimeofday () in
          if r <= 0.0 then 0.0 else r
      in
      if remaining = 0.0 then Error "timeout waiting for reply"
      else
        let ready, _, _ =
          try Unix.select [ t.fd ] [] [] remaining
          with Unix.Unix_error (Unix.EINTR, _, _) -> ([ t.fd ], [], [])
        in
        if ready = [] then Error "timeout waiting for reply"
        else
          match Unix.read t.fd t.chunk 0 (Bytes.length t.chunk) with
          | 0 -> Error "connection closed by daemon"
          | n ->
            Buffer.add_subbytes t.acc t.chunk 0 n;
            loop ()
          | exception Unix.Unix_error (e, _, _) ->
            Error (Unix.error_message e))
  in
  loop ()

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  Json.Num (float_of_int id)

let call ?timeout_s ?deadline_ms t op params =
  let id = fresh_id t in
  let req =
    Protocol.request_to_json { Protocol.id; op; deadline_ms; params }
  in
  match send_line t (Json.to_string req) with
  | Error msg -> Error ("transport", msg)
  | Ok () -> (
    (* One outstanding request per [call]: the next reply with our id
       is ours.  Replies to other ids (from interleaved callers on a
       shared connection, which this sync client does not do) would be
       a protocol violation here. *)
    let rec read_matching () =
      match recv_line ?timeout_s t with
      | Error msg -> Error ("transport", msg)
      | Ok line -> (
        match Protocol.parse_reply line with
        | Error msg -> Error ("transport", msg)
        | Ok { Protocol.reply_id; outcome } ->
          if reply_id = id then outcome else read_matching ())
    in
    read_matching ())

(* ----------------------------------------------------- conveniences *)

let ping ?timeout_s t = call ?timeout_s t Protocol.Ping Json.Null
let stats ?timeout_s t = call ?timeout_s t Protocol.Stats Json.Null
let health ?timeout_s t = call ?timeout_s t Protocol.Health Json.Null

let recent ?timeout_s ?n t =
  let params =
    match n with
    | None -> Json.Null
    | Some n -> Json.Obj [ ("n", Json.Num (float_of_int n)) ]
  in
  call ?timeout_s t Protocol.Recent params

let shutdown ?timeout_s t = call ?timeout_s t Protocol.Shutdown Json.Null

let sleep ?timeout_s ?deadline_ms t ~seconds =
  call ?timeout_s ?deadline_ms t Protocol.Sleep
    (Json.Obj [ ("seconds", Json.Num seconds) ])

let cache_field cache =
  match cache with Some b -> [ ("cache", Json.Bool b) ] | None -> []

let evaluate_params ?cache ~model ~board ~arch () =
  Json.Obj
    ([ ("model", Json.Str model); ("board", Json.Str board);
       ("arch", Json.Str arch) ]
    @ cache_field cache)

let evaluate ?timeout_s ?deadline_ms ?cache t ~model ~board ~arch =
  match
    call ?timeout_s ?deadline_ms t Protocol.Evaluate
      (evaluate_params ?cache ~model ~board ~arch ())
  with
  | Error _ as e -> e
  | Ok result -> (
    match Option.map Protocol.metrics_of_json (Json.member "metrics" result) with
    | Some (Ok m) -> Ok m
    | Some (Error msg) -> Error ("transport", msg)
    | None -> Error ("transport", "reply without \"metrics\""))

let evaluate_case ?timeout_s ?deadline_ms ?cache t (case : Validate.Case.t) =
  match
    call ?timeout_s ?deadline_ms t Protocol.Evaluate
      (Json.Obj
         (("case", Json.Str (Validate.Case.to_string case))
         :: cache_field cache))
  with
  | Error _ as e -> e
  | Ok result -> (
    match Option.map Protocol.metrics_of_json (Json.member "metrics" result) with
    | Some (Ok m) -> Ok m
    | Some (Error msg) -> Error ("transport", msg)
    | None -> Error ("transport", "reply without \"metrics\""))
