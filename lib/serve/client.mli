(** Synchronous client for the mccm evaluation daemon.

    One connection, one outstanding request at a time: {!call} sends a
    frame and blocks until the matching reply arrives.  Concurrency is
    achieved by opening one client per thread (connections are cheap;
    the daemon multiplexes them onto its worker pool).  The raw
    {!send_bytes}/{!recv_line} layer is exposed for the protocol fuzz
    suite, which needs to write malformed and partial frames. *)

type t

val connect : string -> (t, string) result
(** Connect to a daemon's socket path.  Single attempt; use
    {!Daemon.wait_ready} first when racing a daemon start. *)

val connect_exn : string -> t
(** @raise Failure instead of returning [Error]. *)

val close : t -> unit
(** Idempotent. *)

val call :
  ?timeout_s:float ->
  ?deadline_ms:float ->
  t ->
  Protocol.op ->
  Util.Json.t ->
  (Util.Json.t, string * string) result
(** [call t op params] sends one request (fresh id, [deadline_ms]
    forwarded) and waits for its reply: [Ok result] or
    [Error (code, message)] — transport failures use the pseudo-code
    ["transport"].  [timeout_s] bounds the wait. *)

(** {1 Raw layer (fuzzing, scripting)} *)

val send_bytes : t -> string -> (unit, string) result
(** Write bytes verbatim — partial frames, garbage, anything. *)

val send_line : t -> string -> (unit, string) result
(** [send_bytes] with a trailing newline. *)

val recv_line : ?timeout_s:float -> t -> (string, string) result
(** Next complete reply line (LF stripped). *)

(** {1 Conveniences} *)

val ping : ?timeout_s:float -> t -> (Util.Json.t, string * string) result

val stats : ?timeout_s:float -> t -> (Util.Json.t, string * string) result
(** Live counters plus the full metrics snapshot ([metrics] member
    decodes with {!Mccm_obs.Metric.of_json}).  Served inline by the
    daemon's reader thread — works under full saturation. *)

val health : ?timeout_s:float -> t -> (Util.Json.t, string * string) result
(** Small liveness summary (status/queue/workers/sessions); inline. *)

val recent :
  ?timeout_s:float -> ?n:int -> t -> (Util.Json.t, string * string) result
(** Last [n] (default 50) flight-recorder entries, newest first;
    inline. *)

val shutdown : ?timeout_s:float -> t -> (Util.Json.t, string * string) result

val sleep :
  ?timeout_s:float ->
  ?deadline_ms:float ->
  t ->
  seconds:float ->
  (Util.Json.t, string * string) result

val evaluate :
  ?timeout_s:float ->
  ?deadline_ms:float ->
  ?cache:bool ->
  t ->
  model:string ->
  board:string ->
  arch:string ->
  (Mccm.Metrics.t, string * string) result
(** Evaluate by zoo abbreviation / board name / {!Arch.Shorthand}
    string; the reply's metrics decode bit-identically to in-process
    evaluation.  [?cache] sets the request's ["cache"] param:
    [Some false] opts out of the daemon's result cache (the reply is
    still bit-identical — that is the cache's contract); omitted means
    the daemon default (cache on when enabled). *)

val evaluate_case :
  ?timeout_s:float ->
  ?deadline_ms:float ->
  ?cache:bool ->
  t ->
  Validate.Case.t ->
  (Mccm.Metrics.t, string * string) result
(** Evaluate a full corpus case (exact round-trip serialisation, so
    synthetic models and boards replay bit-identically).  [?cache] as
    in {!evaluate}. *)
