(* The mccm evaluation daemon.  See daemon.mli for the architecture
   overview; the short version:

   - one accept systhread + one reader systhread per connection parse
     and validate frames, answer control ops inline, and push
     evaluation work onto a bounded {!Bqueue} (full queue => immediate
     [overloaded] reply — backpressure is explicit);
   - worker domains dispatched through {!Util.Parallel.Pool.run} pull
     work, each evaluating on warm per-worker {!Mccm.Eval_session}
     forks (the {!Dse.Crew} discipline: fork once per worker, absorb
     at drain) and batching consecutive compatible evaluate requests
     through [metrics_batch];
   - graceful drain: a stop request (signal, [shutdown] op, or
     {!stop}) flips one atomic; the accept loop stops accepting and
     closes the queue, workers finish everything already queued, and
     [run] then unblocks any idle readers and joins every thread. *)

module Json = Util.Json
module Metric = Mccm_obs.Metric

(* ------------------------------------------------------ obs handles *)

let m_requests = Metric.counter "serve.requests"
let m_replies = Metric.counter "serve.replies"
let m_overloaded = Metric.counter "serve.rejected.overloaded"
let m_deadline = Metric.counter "serve.rejected.deadline"
let m_errors = Metric.counter "serve.errors"
let m_batches = Metric.counter "serve.batches"
let m_cache_hits = Metric.counter "serve.cache.hits"
let m_cache_misses = Metric.counter "serve.cache.misses"
let m_cache_coalesced = Metric.counter "serve.cache.coalesced"
let m_cache_evictions = Metric.counter "serve.cache.evictions"
let m_registry_full = Metric.counter "serve.registry.full"
let g_cache_size = Metric.gauge "serve.cache.size"
let g_cache_capacity = Metric.gauge "serve.cache.capacity"
let g_queue_depth = Metric.gauge "serve.queue.depth"
let g_queue_peak = Metric.gauge "serve.queue.peak"

let latency_hist =
  (* One duration histogram per endpoint, pre-registered so the worker
     hot path never touches the registry. *)
  List.map
    (fun op ->
      ( op,
        Metric.histogram
          (Printf.sprintf "serve.%s.latency" (Protocol.op_to_string op)) ))
    Protocol.all_ops

let observe_latency op seconds =
  match List.assoc_opt op latency_hist with
  | Some h -> Metric.observe h seconds
  | None -> ()

(* --------------------------------------------------------- counters *)

type counters = {
  connections_opened : int Atomic.t;
  connections_closed : int Atomic.t;
  frames : int Atomic.t;
  requests : int Atomic.t;
  enqueued : int Atomic.t;
  dispatched : int Atomic.t;
  completed : int Atomic.t;
  replies : int Atomic.t;
  batches : int Atomic.t;
  batched : int Atomic.t;
  cache_hits : int Atomic.t;
  cache_misses : int Atomic.t;
  cache_coalesced : int Atomic.t;
  cache_evictions : int Atomic.t;
  registry_full : int Atomic.t;
  rejected_parse : int Atomic.t;
  rejected_oversized : int Atomic.t;
  rejected_overloaded : int Atomic.t;
  rejected_deadline : int Atomic.t;
  rejected_shutdown : int Atomic.t;
  errors_bad_params : int Atomic.t;
  errors_internal : int Atomic.t;
  write_failures : int Atomic.t;
}

let new_counters () =
  {
    connections_opened = Atomic.make 0;
    connections_closed = Atomic.make 0;
    frames = Atomic.make 0;
    requests = Atomic.make 0;
    enqueued = Atomic.make 0;
    dispatched = Atomic.make 0;
    completed = Atomic.make 0;
    replies = Atomic.make 0;
    batches = Atomic.make 0;
    batched = Atomic.make 0;
    cache_hits = Atomic.make 0;
    cache_misses = Atomic.make 0;
    cache_coalesced = Atomic.make 0;
    cache_evictions = Atomic.make 0;
    registry_full = Atomic.make 0;
    rejected_parse = Atomic.make 0;
    rejected_oversized = Atomic.make 0;
    rejected_overloaded = Atomic.make 0;
    rejected_deadline = Atomic.make 0;
    rejected_shutdown = Atomic.make 0;
    errors_bad_params = Atomic.make 0;
    errors_internal = Atomic.make 0;
    write_failures = Atomic.make 0;
  }

let counters_alist c =
  [
    ("connections_opened", Atomic.get c.connections_opened);
    ("connections_closed", Atomic.get c.connections_closed);
    ("frames", Atomic.get c.frames);
    ("requests", Atomic.get c.requests);
    ("enqueued", Atomic.get c.enqueued);
    ("dispatched", Atomic.get c.dispatched);
    ("completed", Atomic.get c.completed);
    ("replies", Atomic.get c.replies);
    ("batches", Atomic.get c.batches);
    ("batched", Atomic.get c.batched);
    ("cache_hits", Atomic.get c.cache_hits);
    ("cache_misses", Atomic.get c.cache_misses);
    ("cache_coalesced", Atomic.get c.cache_coalesced);
    ("cache_evictions", Atomic.get c.cache_evictions);
    ("registry_full", Atomic.get c.registry_full);
    ("rejected_parse", Atomic.get c.rejected_parse);
    ("rejected_oversized", Atomic.get c.rejected_oversized);
    ("rejected_overloaded", Atomic.get c.rejected_overloaded);
    ("rejected_deadline", Atomic.get c.rejected_deadline);
    ("rejected_shutdown", Atomic.get c.rejected_shutdown);
    ("errors_bad_params", Atomic.get c.errors_bad_params);
    ("errors_internal", Atomic.get c.errors_internal);
    ("write_failures", Atomic.get c.write_failures);
  ]

let incr a = Atomic.incr a

(* ----------------------------------------------------------- config *)

type config = {
  socket_path : string;
  workers : int;
  queue_capacity : int;
  max_frame_bytes : int;
  batch_limit : int;
  store_arch : bool;
  max_sessions : int;
  cache_capacity : int;
  max_samples : int;
  max_specs_cap : int;
  max_sleep_s : float;
  flight_capacity : int;
  flight_slow_ms : float;
  telemetry_path : string option;
  prom_path : string option;
  telemetry_interval_s : float;
}

let default ~socket_path =
  {
    socket_path;
    workers = max 1 (Util.Parallel.recommended ());
    queue_capacity = 256;
    max_frame_bytes = Protocol.default_max_frame_bytes;
    batch_limit = 16;
    store_arch = false;
    max_sessions = 64;
    cache_capacity = 4096;
    max_samples = 100_000;
    max_specs_cap = 2_000_000;
    max_sleep_s = 30.0;
    flight_capacity = 512;
    flight_slow_ms = 50.0;
    telemetry_path = None;
    prom_path = None;
    telemetry_interval_s = 2.0;
  }

(* ------------------------------------------------------ connections *)

type conn = {
  fd : Unix.file_descr;
  out_m : Mutex.t;
  mutable alive : bool;
  cid : int;
}

(* ------------------------------------------------------------- work *)

type job =
  | J_eval of Arch.Block.arch
  | J_explore of { samples : int; seed : int64 }
  | J_enumerate of {
      ces : int;
      objective : Dse.Enumerate.objective;
      max_specs : int;
      prune : bool;
    }
  | J_validate of { samples : int; seed : int64 }
  | J_sleep of float

type work = {
  w_id : Json.t;
  w_rid : string; (* telemetry request id: client id rendered, or minted *)
  w_op : Protocol.op;
  w_conn : conn;
  w_key : string; (* session key; "" when the job carries no session *)
  w_ckey : string; (* result-cache key; "" when not cacheable *)
  w_model : Cnn.Model.t option;
  w_board : Platform.Board.t option;
  w_job : job;
  w_enqueued_ns : int;
  w_deadline_ns : int option;
  w_bytes_in : int;
  mutable w_dispatched_ns : int; (* stamped when a worker pops it *)
  mutable w_worker : int; (* worker index; -1 until dispatched *)
}

(* ----------------------------------------------------------- daemon *)

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  queue : work Bqueue.t;
  stop_flag : bool Atomic.t;
  conns : (int, conn) Hashtbl.t;
  conn_threads : (int, Thread.t) Hashtbl.t;
  conns_m : Mutex.t;
  next_cid : int Atomic.t;
  next_rid : int Atomic.t;
  sessions : (string, Mccm.Eval_session.t) Hashtbl.t;
  sessions_m : Mutex.t;
  (* Content-addressed result cache (rendered result JSON, so a hit's
     reply is byte-identical to the evaluation that populated it) and
     the single-flight waiter table: while a cacheable evaluate sits
     in the queue, identical requests attach to it instead of queuing. *)
  cache : string Util.Cache.t option;
  inflight : (string, work list ref) Hashtbl.t;
  inflight_m : Mutex.t;
  c : counters;
  started_ns : int;
  mutable state : [ `Created | `Running | `Stopped ];
  state_m : Mutex.t;
}

let now_ns () = Mccm_obs.Clock.now_ns ()

let stop t = Atomic.set t.stop_flag true
let stopping t = Atomic.get t.stop_flag
let queue_depth t = Bqueue.length t.queue
let counters t = counters_alist t.c
let config t = t.cfg

let session_count t =
  Mutex.lock t.sessions_m;
  let n = Hashtbl.length t.sessions in
  Mutex.unlock t.sessions_m;
  n

(* ------------------------------------------------------------ bind *)

let bind_socket path =
  if String.length path >= 104 then
    failwith (Printf.sprintf "socket path too long (%d bytes): %s"
                (String.length path) path);
  let addr = Unix.ADDR_UNIX path in
  (if Sys.file_exists path then
     (* A stale socket from a crashed daemon is reclaimed; a live one
        (something accepts our connect) is an error. *)
     let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
     match Unix.connect probe addr with
     | () ->
       Unix.close probe;
       failwith (Printf.sprintf "%s: a daemon is already serving here" path)
     | exception Unix.Unix_error _ ->
       Unix.close probe;
       (try Unix.unlink path with Unix.Unix_error _ -> ()));
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind fd addr;
     Unix.listen fd 64
   with e ->
     Unix.close fd;
     raise e);
  fd

let create cfg =
  if cfg.workers < 1 then invalid_arg "Daemon.create: workers must be >= 1";
  if cfg.batch_limit < 1 then
    invalid_arg "Daemon.create: batch_limit must be >= 1";
  if cfg.cache_capacity < 0 then
    invalid_arg "Daemon.create: cache_capacity must be >= 0";
  Metric.set g_cache_capacity (float_of_int cfg.cache_capacity);
  (* The flight recorder is process-global (like the Metric registry);
     the daemon arms it at creation so `recent` works out of the box. *)
  if cfg.flight_capacity > 0 then begin
    Mccm_obs.Flight.configure ~capacity:cfg.flight_capacity
      ~slow_ms:cfg.flight_slow_ms ();
    Mccm_obs.Flight.enable ()
  end;
  {
    cfg;
    listen_fd = bind_socket cfg.socket_path;
    queue = Bqueue.create ~capacity:cfg.queue_capacity;
    stop_flag = Atomic.make false;
    conns = Hashtbl.create 32;
    conn_threads = Hashtbl.create 32;
    conns_m = Mutex.create ();
    next_cid = Atomic.make 0;
    next_rid = Atomic.make 0;
    sessions = Hashtbl.create 16;
    sessions_m = Mutex.create ();
    cache =
      (if cfg.cache_capacity > 0 then
         Some (Util.Cache.create ~capacity:cfg.cache_capacity ())
       else None);
    inflight = Hashtbl.create 64;
    inflight_m = Mutex.create ();
    c = new_counters ();
    started_ns = now_ns ();
    state = `Created;
    state_m = Mutex.create ();
  }

(* ---------------------------------------------------------- replies *)

let write_line t conn frame =
  Mutex.lock conn.out_m;
  (try
     if conn.alive then begin
       let line = frame ^ "\n" in
       let len = String.length line in
       let bytes = Bytes.unsafe_of_string line in
       let sent = ref 0 in
       while !sent < len do
         sent := !sent + Unix.write conn.fd bytes !sent (len - !sent)
       done;
       incr t.c.replies
     end
   with Unix.Unix_error _ | Sys_error _ ->
     conn.alive <- false;
     incr t.c.write_failures);
  Mutex.unlock conn.out_m

let reply_ok t conn ~id ?rid result =
  write_line t conn (Protocol.ok_frame ~id ?rid result)

let reply_error t conn ~id ?rid code msg =
  write_line t conn (Protocol.error_frame ~id ?rid code msg)

(* Telemetry request id: the client's own id rendered compactly when it
   sent one, a daemon-minted "m<seq>" otherwise.  The same string goes
   into span args, flight records and (on error replies, or ok replies
   to id-less requests) the reply frame, so all three correlate. *)
let mint_rid t (id : Json.t) =
  let s =
    match id with
    | Json.Null -> "m" ^ string_of_int (Atomic.fetch_and_add t.next_rid 1)
    | Json.Str s -> s
    | other -> Json.to_string other
  in
  if String.length s > 64 then String.sub s 0 64 else s

(* ------------------------------------------------------- resolution *)

exception Bad of string

let badf fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let require_int ?default params key =
  match Json.member key params with
  | None -> (
    match default with
    | Some d -> d
    | None -> badf "missing %S" key)
  | Some j -> (
    match Json.int_ j with
    | Some v -> v
    | None -> badf "%S must be an integer" key)

let opt_string params key =
  match Json.member key params with
  | None -> None
  | Some j -> (
    match Json.string_ j with
    | Some s -> Some s
    | None -> badf "%S must be a string" key)

let board_key (b : Platform.Board.t) =
  Printf.sprintf "%s,%d,%d,%h,%h,%d" b.Platform.Board.name
    b.Platform.Board.dsps b.Platform.Board.bram_bytes
    b.Platform.Board.bandwidth_bytes_per_sec b.Platform.Board.clock_hz
    b.Platform.Board.bytes_per_element

let session_key model board =
  (* Content-addressed: a model arriving as inline text and the same
     model from the zoo share one session.  The full serialisation is
     the key — a hash digest alone could alias two models and silently
     serve one's metrics for the other. *)
  board_key board ^ "|" ^ Cnn.Model_io.to_string model

(* (model, board) from params: zoo abbreviation or inline model text,
   board by catalogue name; or a full corpus case block. *)
let resolve_target params =
  match opt_string params "case" with
  | Some text -> (
    match Validate.Case.of_string text with
    | Error msg -> badf "case: %s" msg
    | Ok case ->
      let archi =
        try Validate.Case.materialize case
        with Invalid_argument msg -> badf "case: %s" msg
      in
      (case.Validate.Case.model, case.Validate.Case.board, Some archi))
  | None ->
    let model =
      match (opt_string params "model", opt_string params "model_text") with
      | Some abbrev, None -> (
        match Cnn.Model_zoo.by_abbreviation abbrev with
        | Some m -> m
        | None -> badf "unknown model %S" abbrev)
      | None, Some text -> (
        match Cnn.Model_io.of_string text with
        | Ok m -> m
        | Error msg -> badf "model_text: %s" msg)
      | Some _, Some _ -> badf "give either \"model\" or \"model_text\""
      | None, None -> badf "missing \"model\" (or \"model_text\"/\"case\")"
    in
    let board =
      match opt_string params "board" with
      | None -> badf "missing \"board\""
      | Some name -> (
        match Platform.Board.by_name name with
        | Some b -> b
        | None -> badf "unknown board %S" name)
    in
    let archi =
      match opt_string params "arch" with
      | None -> None
      | Some s -> (
        match Arch.Shorthand.parse model s with
        | Ok a -> Some a
        | Error msg -> badf "arch: %s" msg)
    in
    (model, board, archi)

let resolve_job cfg (req : Protocol.request) =
  let params = req.Protocol.params in
  match req.Protocol.op with
  | Protocol.Evaluate ->
    let model, board, archi = resolve_target params in
    let archi =
      match archi with Some a -> a | None -> badf "missing \"arch\""
    in
    (Some model, Some board, session_key model board, J_eval archi)
  | Protocol.Explore ->
    let model, board, _ = resolve_target params in
    let samples = require_int params "samples" ~default:2000 in
    if samples < 1 then badf "\"samples\" must be >= 1";
    if samples > cfg.max_samples then
      badf "\"samples\" exceeds the server cap (%d)" cfg.max_samples;
    let seed = Int64.of_int (require_int params "seed" ~default:42) in
    (Some model, Some board, session_key model board, J_explore { samples; seed })
  | Protocol.Enumerate ->
    let model, board, _ = resolve_target params in
    let ces = require_int params "ces" ~default:4 in
    if ces < 2 then badf "\"ces\" must be >= 2";
    let max_specs = require_int params "max_specs" ~default:20_000 in
    if max_specs < 1 then badf "\"max_specs\" must be >= 1";
    if max_specs > cfg.max_specs_cap then
      badf "\"max_specs\" exceeds the server cap (%d)" cfg.max_specs_cap;
    let objective =
      match opt_string params "objective" with
      | None | Some "throughput" -> `Throughput
      | Some "latency" -> `Latency
      | Some other -> badf "unknown objective %S" other
    in
    let prune =
      match Json.member "prune" params with
      | None -> true
      | Some j -> (
        match Json.bool_ j with
        | Some b -> b
        | None -> badf "\"prune\" must be a boolean")
    in
    ( Some model,
      Some board,
      session_key model board,
      J_enumerate { ces; objective; max_specs; prune } )
  | Protocol.Validate ->
    let samples = require_int params "samples" ~default:50 in
    if samples < 1 then badf "\"samples\" must be >= 1";
    if samples > cfg.max_samples then
      badf "\"samples\" exceeds the server cap (%d)" cfg.max_samples;
    let seed = Int64.of_int (require_int params "seed" ~default:42) in
    (None, None, "", J_validate { samples; seed })
  | Protocol.Sleep ->
    let seconds =
      match Json.member "seconds" params with
      | None -> badf "missing \"seconds\""
      | Some j -> (
        match Json.number j with
        | Some s when s >= 0.0 && s <= cfg.max_sleep_s -> s
        | Some _ -> badf "\"seconds\" out of range [0, %g]" cfg.max_sleep_s
        | None -> badf "\"seconds\" must be a number")
    in
    (None, None, "", J_sleep seconds)
  | Protocol.Ping | Protocol.Stats | Protocol.Health | Protocol.Recent
  | Protocol.Shutdown ->
    badf "control op cannot be queued"

(* ----------------------------------------------------- result cache *)

(* The result cache is keyed on the raw request payload — the strings
   the client sent, before any resolution — so a hit costs a parse, a
   digest and a table probe, never a model deserialisation or a zoo
   lookup.  Identical payloads resolve identically (resolution is
   pure) and only successful results are published, so a raw key can
   never alias two different answers.  Fields are length-prefixed to
   keep the concatenation unambiguous. *)
let raw_cache_key params =
  let b = Buffer.create 96 in
  let feed k =
    match Json.member k params with
    | None -> Buffer.add_char b '-'
    | Some (Json.Str s) ->
      Buffer.add_string b (string_of_int (String.length s));
      Buffer.add_char b ':';
      Buffer.add_string b s
    | Some _ -> raise_notrace Exit (* the slow path reports the error *)
  in
  match List.iter feed [ "case"; "model"; "model_text"; "board"; "arch" ] with
  | () -> Some (Buffer.contents b)
  | exception Exit -> None

(* "" = not cacheable: another op, cache disabled, or client opt-out
   via the optional evaluate param {"cache": false}. *)
let evaluate_cache_key cfg (req : Protocol.request) =
  if cfg.cache_capacity <= 0 || req.Protocol.op <> Protocol.Evaluate then ""
  else
    let params = req.Protocol.params in
    let wanted =
      match Json.member "cache" params with
      | None -> true
      | Some j -> (
        match Json.bool_ j with
        | Some b -> b
        | None -> badf "\"cache\" must be a boolean")
    in
    if not wanted then ""
    else match raw_cache_key params with Some k -> k | None -> ""

(* --------------------------------------------------------- sessions *)

(* Parent sessions are process-global (one per (model, board) content
   key, capped); workers evaluate on private forks cut lazily and
   absorbed back at drain — the Crew discipline, stretched over the
   daemon's whole lifetime. *)

let parent_session t ~key ~model ~board =
  Mutex.lock t.sessions_m;
  let parent =
    match Hashtbl.find_opt t.sessions key with
    | Some s -> Some s
    | None ->
      if Hashtbl.length t.sessions >= t.cfg.max_sessions then None
      else begin
        let s = Mccm.Eval_session.create model board in
        Hashtbl.add t.sessions key s;
        Some s
      end
  in
  (* Forking under the registry mutex: absorb (at drain) also holds it,
     so a fork never reads tables an absorb is mutating. *)
  let fork = Option.map Mccm.Eval_session.fork parent in
  Mutex.unlock t.sessions_m;
  fork

let worker_fork t forks ~key ~model ~board =
  match Hashtbl.find_opt forks key with
  | Some s -> Some s
  | None -> (
    match parent_session t ~key ~model ~board with
    | None ->
      (* Registry full: evaluate uncached — and count it, so the
         misconfiguration shows up in stats/top instead of only as
         mysteriously slow evaluates. *)
      incr t.c.registry_full;
      Metric.incr m_registry_full;
      None
    | Some fork ->
      Hashtbl.add forks key fork;
      Some fork)

let absorb_forks t forks =
  Mutex.lock t.sessions_m;
  Hashtbl.iter
    (fun key fork ->
      match Hashtbl.find_opt t.sessions key with
      | Some parent -> Mccm.Eval_session.absorb ~into:parent fork
      | None -> ())
    forks;
  Mutex.unlock t.sessions_m;
  Hashtbl.reset forks

(* ------------------------------------------------------ job running *)

let set_depth_gauge t =
  let d = float_of_int (Bqueue.length t.queue) in
  Metric.set g_queue_depth d;
  Metric.update_max g_queue_peak d

let expired w =
  match w.w_deadline_ns with
  | Some d -> now_ns () > d
  | None -> false

(* Work replies record telemetry (latency histogram, obs reply counter,
   flight record) BEFORE the reply frame is written: once a client has
   read the reply, the registry already reflects it, so a quiescent
   daemon's Metric.snapshot matches what any later stats poll reports
   bit-for-bit (a property the test suite pins). *)
let finish_reply t w result =
  let now = now_ns () in
  observe_latency w.w_op (float_of_int (now - w.w_enqueued_ns) /. 1e9);
  Metric.incr m_replies;
  let rid = if w.w_id = Json.Null then Some w.w_rid else None in
  let frame = Protocol.ok_frame ~id:w.w_id ?rid result in
  Mccm_obs.Flight.record ~rid:w.w_rid ~op:(Protocol.op_to_string w.w_op)
    ~worker:w.w_worker
    ~queue_ns:(max 0 (w.w_dispatched_ns - w.w_enqueued_ns))
    ~eval_ns:(max 0 (now - w.w_dispatched_ns))
    ~bytes_in:w.w_bytes_in
    ~bytes_out:(String.length frame + 1)
    ~outcome:"ok";
  write_line t w.w_conn frame;
  incr t.c.completed

let reply_work_error t w code msg =
  let now = now_ns () in
  Metric.incr m_replies;
  let frame = Protocol.error_frame ~id:w.w_id ~rid:w.w_rid code msg in
  Mccm_obs.Flight.record ~rid:w.w_rid ~op:(Protocol.op_to_string w.w_op)
    ~worker:w.w_worker
    ~queue_ns:(max 0 (w.w_dispatched_ns - w.w_enqueued_ns))
    ~eval_ns:(max 0 (now - w.w_dispatched_ns))
    ~bytes_in:w.w_bytes_in
    ~bytes_out:(String.length frame + 1)
    ~outcome:(Protocol.error_code_to_string code);
  write_line t w.w_conn frame

let reject_deadline t w =
  incr t.c.rejected_deadline;
  Metric.incr m_deadline;
  reply_work_error t w Protocol.Deadline_exceeded
    "deadline expired before evaluation started"

(* Rejection at the gate, from a reader thread: no worker ever saw the
   request, so the flight record carries worker = -1 and no timings. *)
let reject_at_gate t conn ~id ~rid ~op ~bytes_in code msg =
  Metric.incr m_replies;
  let frame = Protocol.error_frame ~id ~rid code msg in
  Mccm_obs.Flight.record ~rid ~op:(Protocol.op_to_string op) ~worker:(-1)
    ~queue_ns:0 ~eval_ns:0 ~bytes_in
    ~bytes_out:(String.length frame + 1)
    ~outcome:(Protocol.error_code_to_string code);
  write_line t conn frame

let gate_reject_work t w code msg =
  reject_at_gate t w.w_conn ~id:w.w_id ~rid:w.w_rid ~op:w.w_op
    ~bytes_in:w.w_bytes_in code msg

(* ------------------------------------------- cache and single-flight *)

(* Byte-identical to [Protocol.ok_frame ~id ?rid result] for the
   [result] whose compact rendering is [rendered]: the cache stores
   the result member pre-rendered (rendering is deterministic), so a
   hit's reply frame matches the evaluation that populated the entry
   bit for bit without re-rendering the metrics. *)
let cached_ok_frame ~id ?rid rendered =
  let b = Buffer.create (String.length rendered + 48) in
  Buffer.add_string b "{\"id\":";
  Buffer.add_string b (Json.to_string id);
  Buffer.add_string b ",\"ok\":true,";
  (match rid with
  | Some r ->
    Buffer.add_string b "\"rid\":";
    Buffer.add_string b (Json.to_string (Json.Str r));
    Buffer.add_char b ','
  | None -> ());
  Buffer.add_string b "\"result\":";
  Buffer.add_string b rendered;
  Buffer.add_char b '}';
  Buffer.contents b

(* A cache hit answered inline on the reader thread: the queue and the
   worker pool never see the request.  Same telemetry discipline as
   [finish_reply] — latency, reply counter and flight record land
   before the frame is written; worker is -1 (no worker saw it). *)
let finish_cached t conn ~id ~rid ~op ~bytes_in ~received_ns rendered =
  incr t.c.cache_hits;
  Metric.incr m_cache_hits;
  let now = now_ns () in
  observe_latency op (float_of_int (now - received_ns) /. 1e9);
  Metric.incr m_replies;
  let rid_out = if id = Json.Null then Some rid else None in
  let frame = cached_ok_frame ~id ?rid:rid_out rendered in
  Mccm_obs.Flight.record ~rid ~op:(Protocol.op_to_string op) ~worker:(-1)
    ~queue_ns:0 ~eval_ns:0 ~bytes_in
    ~bytes_out:(String.length frame + 1)
    ~outcome:"ok";
  write_line t conn frame;
  incr t.c.completed

(* Reader-path cache consult.  Opt-outs, malformed "cache" members and
   already-expired deadlines all fall through to the slow path, which
   validates and rejects as before; only a clean hit is served here. *)
let serve_cached t conn ~id ~rid ~op ~bytes_in (req : Protocol.request) =
  match t.cache with
  | None -> false
  | Some cache ->
    req.Protocol.op = Protocol.Evaluate
    && (match req.Protocol.deadline_ms with
       | Some ms -> ms > 0.0
       | None -> true)
    && (match Json.member "cache" req.Protocol.params with
       | None | Some (Json.Bool true) -> true
       | Some _ -> false)
    &&
    match raw_cache_key req.Protocol.params with
    | None -> false
    | Some ckey -> (
      match Util.Cache.find cache ckey with
      | None -> false
      | Some rendered ->
        finish_cached t conn ~id ~rid ~op ~bytes_in ~received_ns:(now_ns ())
          rendered;
        true)

(* While a cacheable evaluate (the "leader") sits in the queue, its
   inflight entry collects identical requests; the dispatching worker
   drains the entry and replies to everyone from one evaluation. *)
let drain_waiters t w =
  if w.w_ckey = "" then []
  else begin
    Mutex.lock t.inflight_m;
    let ws =
      match Hashtbl.find_opt t.inflight w.w_ckey with
      | Some waiters ->
        Hashtbl.remove t.inflight w.w_ckey;
        List.rev !waiters
      | None -> []
    in
    Mutex.unlock t.inflight_m;
    ws
  end

let push_work t w =
  if Bqueue.try_push t.queue w then begin
    incr t.c.enqueued;
    set_depth_gauge t
  end
  else begin
    (* The leader never made the queue: anyone already attached to it
       must be turned away too, or they would wait forever. *)
    let stranded = w :: drain_waiters t w in
    List.iter
      (fun v ->
        if stopping t then begin
          incr t.c.rejected_shutdown;
          gate_reject_work t v Protocol.Shutting_down "daemon is draining"
        end
        else begin
          incr t.c.rejected_overloaded;
          Metric.incr m_overloaded;
          gate_reject_work t v Protocol.Overloaded
            (Printf.sprintf "request queue full (%d)" t.cfg.queue_capacity)
        end)
      stranded
  end

(* Coalesce-or-enqueue: the first cacheable request for a key becomes
   the queued leader (and counts the cache miss); identical requests
   arriving before it is dispatched attach as waiters and never touch
   the queue. *)
let enqueue_work t w =
  if w.w_ckey = "" then push_work t w
  else begin
    Mutex.lock t.inflight_m;
    match Hashtbl.find_opt t.inflight w.w_ckey with
    | Some waiters ->
      waiters := w :: !waiters;
      Mutex.unlock t.inflight_m;
      incr t.c.cache_coalesced;
      Metric.incr m_cache_coalesced
    | None ->
      Hashtbl.add t.inflight w.w_ckey (ref []);
      Mutex.unlock t.inflight_m;
      incr t.c.cache_misses;
      Metric.incr m_cache_misses;
      push_work t w
  end

(* Publish a finished evaluation under its cache key.  The rendered
   string is what future hits splice into their frames. *)
let publish t w result =
  match t.cache with
  | Some cache when w.w_ckey <> "" ->
    let rendered = Json.to_string result in
    let evicted = Util.Cache.add cache w.w_ckey rendered in
    if evicted > 0 then begin
      ignore (Atomic.fetch_and_add t.c.cache_evictions evicted);
      Metric.add m_cache_evictions evicted
    end;
    Metric.set g_cache_size (float_of_int (Util.Cache.length cache))
  | _ -> ()

let json_of_evaluated model (e : Dse.Explore.evaluated) =
  Json.Obj
    [
      ( "arch",
        Json.Str
          (Arch.Notation.to_string
             (Arch.Custom.arch_of_spec model e.Dse.Explore.spec)) );
      ("metrics", Protocol.json_of_metrics e.Dse.Explore.metrics);
    ]

let run_explore session model board ~samples ~seed =
  let r = Dse.Explore.run ~seed ~samples ?session model board in
  Json.Obj
    [
      ("sampled", Json.Num (float_of_int r.Dse.Explore.sampled));
      ("distinct", Json.Num (float_of_int r.Dse.Explore.distinct));
      ( "feasible",
        Json.Num (float_of_int (List.length r.Dse.Explore.evaluated)) );
      ("elapsed_s", Json.Num r.Dse.Explore.elapsed_s);
      ( "front",
        Json.Arr
          (List.map
             (fun (p : Dse.Explore.evaluated Dse.Pareto.point) ->
               json_of_evaluated model p.Dse.Pareto.item)
             r.Dse.Explore.front) );
    ]

let run_enumerate session model board ~ces ~objective ~max_specs ~prune =
  let winner, stats =
    Dse.Enumerate.exhaustive_best ~max_specs ?session ~prune ~objective ~ces
      model board
  in
  Json.Obj
    [
      ( "winner",
        match winner with
        | None -> Json.Null
        | Some e -> json_of_evaluated model e );
      ("enumerated", Json.Num (float_of_int stats.Dse.Enumerate.enumerated));
      ("evaluated", Json.Num (float_of_int stats.Dse.Enumerate.evaluated));
      ("pruned", Json.Num (float_of_int stats.Dse.Enumerate.pruned));
      ("nodes", Json.Num (float_of_int stats.Dse.Enumerate.nodes));
    ]

let run_validate ~samples ~seed =
  let r = Validate.Sweep.run ~samples ~seed () in
  Json.Obj
    [
      ("ok", Json.Bool (Validate.Sweep.ok r));
      ("corpus_cases", Json.Num (float_of_int r.Validate.Sweep.corpus_cases));
      ( "generated_cases",
        Json.Num (float_of_int r.Validate.Sweep.generated_cases) );
      ( "failures",
        Json.Num (float_of_int (List.length r.Validate.Sweep.failures)) );
      ( "worst",
        Json.Obj
          [
            ("latency", Json.Num r.Validate.Sweep.worst.Validate.Envelope.latency);
            ( "throughput",
              Json.Num r.Validate.Sweep.worst.Validate.Envelope.throughput );
            ( "accesses",
              Json.Num r.Validate.Sweep.worst.Validate.Envelope.accesses );
            ("buffers", Json.Num r.Validate.Sweep.worst.Validate.Envelope.buffers);
          ] );
      ("elapsed_s", Json.Num r.Validate.Sweep.elapsed_s);
    ]

(* A batch: the head work item plus every consecutive queued evaluate
   on the same session key, popped without ever skipping over an
   unrelated request (FIFO order is preserved exactly). *)
let collect_batch t first =
  match first.w_job with
  | J_eval _ when t.cfg.batch_limit > 1 ->
    let items = ref [ first ] in
    let count = ref 1 in
    let continue = ref true in
    while !continue && !count < t.cfg.batch_limit do
      match
        Bqueue.pop_head_if t.queue (fun w ->
            w.w_key = first.w_key
            && match w.w_job with J_eval _ -> true | _ -> false)
      with
      | Some w ->
        items := w :: !items;
        count := !count + 1;
        Atomic.incr t.c.dispatched
      | None -> continue := false
    done;
    List.rev !items
  | _ -> [ first ]

let process_eval_batch t forks items =
  match items with
  | [] -> ()
  | first :: _ ->
    (* Each leader picks up its coalesced waiters at dispatch; waiters
       inherit the leader's dispatch stamp (their own enqueue time
       still dates the queue wait) and deadline admission is honored
       per recipient.  A unit evaluates if any recipient is live. *)
    let units =
      List.filter_map
        (fun w ->
          let waiters = drain_waiters t w in
          List.iter
            (fun v ->
              v.w_dispatched_ns <- w.w_dispatched_ns;
              v.w_worker <- w.w_worker)
            waiters;
          let live, dead =
            List.partition (fun v -> not (expired v)) (w :: waiters)
          in
          List.iter (reject_deadline t) dead;
          if live = [] then None else Some (w, live))
        items
    in
    if units <> [] then begin
      let model = Option.get first.w_model in
      let board = Option.get first.w_board in
      let archs =
        List.map
          (fun (w, _) ->
            match w.w_job with J_eval a -> a | _ -> assert false)
          units
      in
      let results =
        match worker_fork t forks ~key:first.w_key ~model ~board with
        | Some session ->
          Mccm.Eval_session.metrics_batch ~store_arch:t.cfg.store_arch
            session archs
        | None -> List.map (fun a -> Mccm.Evaluate.metrics model board a) archs
      in
      if List.length units >= 2 then begin
        incr t.c.batches;
        Metric.incr m_batches;
        Atomic.set t.c.batched (Atomic.get t.c.batched + List.length units)
      end;
      List.iter2
        (fun (w, live) m ->
          let result = Json.Obj [ ("metrics", Protocol.json_of_metrics m) ] in
          publish t w result;
          List.iter (fun v -> finish_reply t v result) live)
        units results
    end

let process_one t forks w =
  match w.w_job with
  | J_eval _ -> assert false (* handled by process_eval_batch *)
  | J_sleep seconds ->
    Unix.sleepf seconds;
    finish_reply t w (Json.Obj [ ("slept_s", Json.Num seconds) ])
  | J_explore { samples; seed } ->
    let model = Option.get w.w_model and board = Option.get w.w_board in
    let session = worker_fork t forks ~key:w.w_key ~model ~board in
    finish_reply t w (run_explore session model board ~samples ~seed)
  | J_enumerate { ces; objective; max_specs; prune } ->
    let model = Option.get w.w_model and board = Option.get w.w_board in
    let session = worker_fork t forks ~key:w.w_key ~model ~board in
    finish_reply t w
      (run_enumerate session model board ~ces ~objective ~max_specs ~prune)
  | J_validate { samples; seed } ->
    finish_reply t w (run_validate ~samples ~seed)

let guarded t w f =
  match
    Mccm_obs.span ~cat:"serve"
      ~args:[ ("rid", w.w_rid) ]
      ("serve." ^ Protocol.op_to_string w.w_op)
      f
  with
  | () -> ()
  | exception (Invalid_argument msg | Failure msg) ->
    incr t.c.errors_bad_params;
    Metric.incr m_errors;
    reply_work_error t w Protocol.Bad_params msg
  | exception e ->
    incr t.c.errors_internal;
    Metric.incr m_errors;
    reply_work_error t w Protocol.Internal (Printexc.to_string e)

let worker_loop t worker =
  let forks = Hashtbl.create 8 in
  let stamp w =
    w.w_dispatched_ns <- now_ns ();
    w.w_worker <- worker
  in
  let rec loop () =
    match Bqueue.pop t.queue with
    | None -> ()
    | Some w ->
      incr t.c.dispatched;
      (match w.w_job with
      | J_eval _ ->
        let batch = collect_batch t w in
        List.iter stamp batch;
        set_depth_gauge t;
        guarded t w (fun () -> process_eval_batch t forks batch)
      | _ ->
        stamp w;
        set_depth_gauge t;
        if expired w then reject_deadline t w
        else guarded t w (fun () -> process_one t forks w));
      loop ()
  in
  (try loop () with _ -> ());
  absorb_forks t forks

(* ------------------------------------------------------ control ops *)

let uptime_s t = float_of_int (now_ns () - t.started_ns) /. 1e9

let stats_json t =
  let counters =
    Json.Obj
      (List.map (fun (k, v) -> (k, Json.Num (float_of_int v))) (counters t))
  in
  let snap = Metric.snapshot () in
  let obs =
    if Mccm_obs.Control.stats_on () then begin
      let latencies =
        List.filter_map
          (fun (name, h) ->
            let prefix = "serve." and suffix = ".latency" in
            let n = String.length name in
            let pn = String.length prefix and sn = String.length suffix in
            if
              n > pn + sn
              && String.sub name 0 pn = prefix
              && String.sub name (n - sn) sn = suffix
              && h.Metric.count > 0
            then
              Some
                ( String.sub name pn (n - pn - sn),
                  Json.Obj
                    [
                      ("count", Json.Num (float_of_int h.Metric.count));
                      ("p50", Json.Num (Metric.quantile h ~q:0.5));
                      ("p95", Json.Num (Metric.quantile h ~q:0.95));
                      ("p99", Json.Num (Metric.quantile h ~q:0.99));
                    ] )
            else None)
          snap.Metric.histograms
      in
      Some (Json.Obj [ ("latency", Json.Obj latencies) ])
    end
    else None
  in
  Json.obj
    [
      ("version", Some (Json.Str Protocol.version));
      ("uptime_s", Some (Json.Num (uptime_s t)));
      ("workers", Some (Json.Num (float_of_int t.cfg.workers)));
      ("queue_depth", Some (Json.Num (float_of_int (queue_depth t))));
      ( "queue_capacity",
        Some (Json.Num (float_of_int t.cfg.queue_capacity)) );
      ("draining", Some (Json.Bool (stopping t)));
      ("sessions", Some (Json.Num (float_of_int (session_count t))));
      ( "cache",
        Some
          (Json.Obj
             [
               ("capacity", Json.Num (float_of_int t.cfg.cache_capacity));
               ( "entries",
                 Json.Num
                   (float_of_int
                      (match t.cache with
                      | Some c -> Util.Cache.length c
                      | None -> 0)) );
             ]) );
      ("counters", Some counters);
      (* The full registry, exactly: Metric.of_json on this member
         reconstructs the snapshot bit-for-bit (counters, gauges and
         raw histogram samples, hence quantiles too). *)
      ("metrics", Some (Metric.to_json snap));
      ("obs", obs);
    ]

let health_json t =
  Json.Obj
    [
      ("status", Json.Str (if stopping t then "draining" else "ok"));
      ("version", Json.Str Protocol.version);
      ("uptime_s", Json.Num (uptime_s t));
      ("workers", Json.Num (float_of_int t.cfg.workers));
      ("queue_depth", Json.Num (float_of_int (queue_depth t)));
      ("queue_capacity", Json.Num (float_of_int t.cfg.queue_capacity));
      ("sessions", Json.Num (float_of_int (session_count t)));
      ("completed", Json.Num (float_of_int (Atomic.get t.c.completed)));
      ( "rejected",
        Json.Num
          (float_of_int
             (Atomic.get t.c.rejected_overloaded
             + Atomic.get t.c.rejected_deadline
             + Atomic.get t.c.rejected_shutdown)) );
    ]

let recent_json ~n =
  let newest = List.rev (Mccm_obs.Flight.dump ()) in
  let rec take k = function
    | [] -> []
    | x :: tl -> if k <= 0 then [] else x :: take (k - 1) tl
  in
  Json.Obj
    [
      ("enabled", Json.Bool (Mccm_obs.Flight.enabled ()));
      ("total", Json.Num (float_of_int (Mccm_obs.Flight.total ())));
      ( "records",
        Json.Arr (List.map Mccm_obs.Flight.to_json (take n newest)) );
    ]

(* -------------------------------------------------------- telemetry *)

(* Optional periodic writer (a systhread on the main domain, like the
   readers): one JSONL stats snapshot appended per tick, and/or a
   Prometheus text file replaced atomically (tmp + rename) per tick. *)

let telemetry_tick t =
  (match t.cfg.telemetry_path with
  | None -> ()
  | Some path -> (
    try
      let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
      output_string oc (Json.to_string (stats_json t));
      output_char oc '\n';
      close_out oc
    with Sys_error _ -> ()));
  match t.cfg.prom_path with
  | None -> ()
  | Some path -> (
    try
      let text =
        Mccm_obs.Prometheus.render
          ~extra_counters:
            (List.map (fun (k, v) -> ("serve_" ^ k, v)) (counters t))
          ~extra_gauges:
            [
              ("serve_queue_depth_now", float_of_int (queue_depth t));
              ("serve_uptime_seconds", uptime_s t);
            ]
          (Metric.snapshot ())
      in
      let tmp = path ^ ".tmp" in
      let oc = open_out tmp in
      output_string oc text;
      close_out oc;
      Sys.rename tmp path
    with Sys_error _ -> ())

let telemetry_loop t done_flag =
  let interval = Float.max 0.05 t.cfg.telemetry_interval_s in
  let rec loop () =
    if not (Atomic.get done_flag) then begin
      telemetry_tick t;
      let slept = ref 0.0 in
      while (not (Atomic.get done_flag)) && !slept < interval do
        Thread.delay 0.05;
        slept := !slept +. 0.05
      done;
      loop ()
    end
  in
  loop ();
  (* One final tick so the files reflect the drained state. *)
  telemetry_tick t

(* ----------------------------------------------------- frame intake *)

(* Control ops (ping/stats/health/recent/shutdown) are answered here,
   inline on the reader thread from lock-free snapshots — they are
   never queued, so they keep working while every worker domain is
   saturated or the daemon is draining.  They also deliberately touch
   no Metric counter: a stats poll must not perturb the snapshot it
   reports (the bit-for-bit round-trip test relies on this). *)
let handle_request t conn ~bytes_in (req : Protocol.request) =
  let id = req.Protocol.id in
  let rid = mint_rid t id in
  match req.Protocol.op with
  | Protocol.Ping ->
    reply_ok t conn ~id
      (Json.Obj
         [
           ("pong", Json.Bool true);
           ("version", Json.Str Protocol.version);
           ("uptime_s", Json.Num (uptime_s t));
         ])
  | Protocol.Stats -> reply_ok t conn ~id (stats_json t)
  | Protocol.Health -> reply_ok t conn ~id (health_json t)
  | Protocol.Recent -> (
    match require_int req.Protocol.params "n" ~default:50 with
    | exception Bad msg -> reply_error t conn ~id ~rid Protocol.Bad_params msg
    | n -> reply_ok t conn ~id (recent_json ~n:(min (max 0 n) 10_000)))
  | Protocol.Shutdown ->
    reply_ok t conn ~id (Json.Obj [ ("draining", Json.Bool true) ]);
    stop t
  | _ -> (
    let op = req.Protocol.op in
    Metric.incr m_requests;
    if stopping t then begin
      incr t.c.rejected_shutdown;
      reject_at_gate t conn ~id ~rid ~op ~bytes_in Protocol.Shutting_down
        "daemon is draining"
    end
    else if serve_cached t conn ~id ~rid ~op ~bytes_in req then ()
    else
      match
        let resolved = resolve_job t.cfg req in
        (resolved, evaluate_cache_key t.cfg req)
      with
      | exception Bad msg ->
        incr t.c.errors_bad_params;
        Metric.incr m_errors;
        reject_at_gate t conn ~id ~rid ~op ~bytes_in Protocol.Bad_params msg
      | (model, board, key, job), ckey -> (
        let enq = now_ns () in
        let deadline_ns =
          Option.map
            (fun ms -> enq + int_of_float (ms *. 1e6))
            req.Protocol.deadline_ms
        in
        match deadline_ns with
        | Some d when d <= enq ->
          (* Already expired: answered at the gate, the queue and the
             worker pool never see it. *)
          incr t.c.rejected_deadline;
          Metric.incr m_deadline;
          reject_at_gate t conn ~id ~rid ~op ~bytes_in
            Protocol.Deadline_exceeded "deadline expired on arrival"
        | _ ->
          enqueue_work t
            {
              w_id = id;
              w_rid = rid;
              w_op = op;
              w_conn = conn;
              w_key = key;
              w_ckey = ckey;
              w_model = model;
              w_board = board;
              w_job = job;
              w_enqueued_ns = enq;
              w_deadline_ns = deadline_ns;
              w_bytes_in = bytes_in;
              w_dispatched_ns = 0;
              w_worker = -1;
            }))

let handle_frame t conn line =
  incr t.c.frames;
  match Protocol.parse_request line with
  | Error (id, code, msg) ->
    incr t.c.rejected_parse;
    reply_error t conn ~id ~rid:(mint_rid t id) code msg
  | Ok req ->
    incr t.c.requests;
    handle_request t conn ~bytes_in:(String.length line) req

(* -------------------------------------------------- connection loop *)

let conn_loop t conn =
  let chunk = Bytes.create 65536 in
  let acc = Buffer.create 4096 in
  let discard = ref false in
  let process_data data =
    (* In discard mode (after an oversized frame) bytes are dropped up
       to the next newline, then parsing resumes. *)
    let data =
      if not !discard then data
      else
        match String.index_opt data '\n' with
        | None -> ""
        | Some i ->
          discard := false;
          String.sub data (i + 1) (String.length data - i - 1)
    in
    if data <> "" then begin
      Buffer.add_string acc data;
      let rec split () =
        let s = Buffer.contents acc in
        match String.index_opt s '\n' with
        | Some i ->
          let line = String.sub s 0 i in
          Buffer.clear acc;
          Buffer.add_substring acc s (i + 1) (String.length s - i - 1);
          let line =
            (* Tolerate CRLF clients. *)
            if String.length line > 0 && line.[String.length line - 1] = '\r'
            then String.sub line 0 (String.length line - 1)
            else line
          in
          if line <> "" then
            if String.length line > t.cfg.max_frame_bytes then begin
              incr t.c.frames;
              incr t.c.rejected_oversized;
              reply_error t conn ~id:Json.Null Protocol.Oversized_frame
                (Printf.sprintf "frame exceeds %d bytes" t.cfg.max_frame_bytes)
            end
            else handle_frame t conn line;
          split ()
        | None ->
          if Buffer.length acc > t.cfg.max_frame_bytes then begin
            incr t.c.frames;
            incr t.c.rejected_oversized;
            reply_error t conn ~id:Json.Null Protocol.Oversized_frame
              (Printf.sprintf "frame exceeds %d bytes" t.cfg.max_frame_bytes);
            Buffer.clear acc;
            discard := true
          end
      in
      split ()
    end
  in
  let rec loop () =
    match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
      process_data (Bytes.sub_string chunk 0 n);
      loop ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | exception Unix.Unix_error _ -> ()
  in
  loop ();
  conn.alive <- false;
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  Mutex.lock t.conns_m;
  Hashtbl.remove t.conns conn.cid;
  Mutex.unlock t.conns_m;
  incr t.c.connections_closed

(* ------------------------------------------------------ accept loop *)

let accept_loop t =
  let rec loop () =
    if stopping t then ()
    else begin
      (* select with a timeout so a stop request is observed promptly
         even when no client ever connects. *)
      let ready, _, _ =
        try Unix.select [ t.listen_fd ] [] [] 0.2
        with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      (if ready <> [] then
         match Unix.accept t.listen_fd with
         | fd, _ ->
           let cid = Atomic.fetch_and_add t.next_cid 1 in
           let conn = { fd; out_m = Mutex.create (); alive = true; cid } in
           incr t.c.connections_opened;
           Mutex.lock t.conns_m;
           Hashtbl.replace t.conns cid conn;
           Hashtbl.replace t.conn_threads cid
             (Thread.create (fun () -> conn_loop t conn) ());
           Mutex.unlock t.conns_m
         | exception Unix.Unix_error _ -> ());
      loop ()
    end
  in
  loop ();
  (* Drain begins: no new work is admitted; everything already queued
     will be served before the workers exit. *)
  Bqueue.close t.queue

(* -------------------------------------------------------------- run *)

let run t =
  Mutex.lock t.state_m;
  (match t.state with
  | `Created -> t.state <- `Running
  | `Running | `Stopped ->
    Mutex.unlock t.state_m;
    invalid_arg "Daemon.run: already run");
  Mutex.unlock t.state_m;
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let acceptor = Thread.create (fun () -> accept_loop t) () in
  let telemetry_done = Atomic.make false in
  let telemetry =
    if t.cfg.telemetry_path = None && t.cfg.prom_path = None then None
    else Some (Thread.create (fun () -> telemetry_loop t telemetry_done) ())
  in
  (* Worker domains via the shared persistent pool.  The pool is sized
     workers + 1 and the caller's own slot is a no-op: the main thread
     then idles inside [Pool.run] instead of computing, so the accept
     and reader systhreads (which live on the main domain) keep their
     scheduling latency even under full evaluation load. *)
  Util.Parallel.Pool.with_pool ~clamp:false ~domains:(t.cfg.workers + 1)
    (fun pool ->
      Util.Parallel.Pool.run pool (fun worker ->
          if worker > 0 then worker_loop t (worker - 1)));
  (* Workers are done (queue closed and drained).  Unblock idle
     readers and join every thread. *)
  Thread.join acceptor;
  Atomic.set telemetry_done true;
  Option.iter Thread.join telemetry;
  Mutex.lock t.conns_m;
  let conns = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
  let threads = Hashtbl.fold (fun _ th acc -> th :: acc) t.conn_threads [] in
  Hashtbl.reset t.conn_threads;
  Mutex.unlock t.conns_m;
  List.iter
    (fun c ->
      try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    conns;
  List.iter Thread.join threads;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ | Sys_error _ -> ());
  Mutex.lock t.state_m;
  t.state <- `Stopped;
  Mutex.unlock t.state_m

(* ------------------------------------------------- test scaffolding *)

type handle = { daemon : t; runner : Thread.t }

let daemon h = h.daemon

let wait_ready ?(timeout_s = 10.0) path =
  (* Poll until a ping round-trips: proves the accept loop is serving,
     not merely that the socket file exists. *)
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec attempt () =
    if Unix.gettimeofday () > deadline then
      failwith ("daemon not ready within timeout: " ^ path)
    else
      let ok =
        match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
        | fd -> (
          match
            Unix.connect fd (Unix.ADDR_UNIX path);
            let frame = "{\"id\":0,\"op\":\"ping\"}\n" in
            ignore (Unix.write_substring fd frame 0 (String.length frame));
            let buf = Bytes.create 4096 in
            let n = Unix.read fd buf 0 4096 in
            n > 0
          with
          | ok ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            ok
          | exception _ ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            false)
        | exception _ -> false
      in
      if ok then ()
      else begin
        Thread.delay 0.02;
        attempt ()
      end
  in
  attempt ()

let spawn cfg =
  let d = create cfg in
  let runner = Thread.create (fun () -> run d) () in
  (try wait_ready cfg.socket_path
   with e ->
     stop d;
     Thread.join runner;
     raise e);
  { daemon = d; runner }

let shutdown h =
  stop h.daemon;
  Thread.join h.runner
