(** The persistent mccm evaluation daemon.

    One process serves any number of clients over a Unix-domain socket
    ({!Protocol} framing), paying process startup, {!Cnn.Table}
    construction and plan-cache warm-up once instead of per query:

    - {b I/O plane} — an accept systhread plus one reader systhread per
      connection.  Readers parse and validate frames, answer control
      ops ([ping]/[stats]/[health]/[recent]/[shutdown]) inline from
      lock-free snapshots — out-of-band, never queued behind evaluate
      traffic, so telemetry polls keep answering while every worker is
      saturated or the daemon is draining — and push evaluation work
      onto a bounded {!Bqueue}.  A full queue is answered with an
      immediate [overloaded] reply — the daemon never buffers without
      bound.  A request whose relative deadline is already expired at
      the gate is refused with [deadline_exceeded] without ever
      touching the queue or the worker pool.
    - {b Compute plane} — [workers] domains dispatched through one
      {!Util.Parallel.Pool.run} round (the caller's pool slot idles, so
      the I/O systhreads on the main domain stay responsive).  Each
      worker evaluates on private {!Mccm.Eval_session} forks cut lazily
      from a process-global, content-keyed parent registry and absorbed
      back at drain — the {!Dse.Crew} warm-session discipline stretched
      over the daemon's lifetime.  Consecutive queued [evaluate]
      requests on the same (model, board) are served through one
      {!Mccm.Eval_session.metrics_batch} call.
    - {b Drain} — {!stop} (also reachable via the [shutdown] op or a
      signal handler; it only flips an atomic, so it is safe from a
      signal context) stops the accept loop, closes the queue, lets the
      workers finish everything already queued, absorbs their session
      forks, then unblocks idle readers, joins every thread and unlinks
      the socket.
    - {b Health} — lock-free internal counters are always on (the
      [stats] op and {!counters}); with {!Mccm_obs} stats enabled the
      daemon additionally records [serve.*] metrics: per-endpoint
      latency histograms, queue depth/peak gauges, rejection counters —
      next to the evaluator's own cache hit-rate counters.  Every
      [stats] reply embeds the full {!Mccm_obs.Metric} snapshot as
      exact JSON ([metrics] member), and work telemetry is recorded
      {e before} the reply frame is written, so a quiescent daemon's
      in-process snapshot matches what a poll reports bit-for-bit.
    - {b Flight recorder} — unless [flight_capacity = 0], {!create}
      arms {!Mccm_obs.Flight}: every work reply and rejection leaves a
      structured record (request id, op, worker, queue-wait ns, eval
      ns, bytes in/out, outcome), served by the [recent] op.  Request
      ids ([rid]) are client-supplied or daemon-minted and propagate
      into span args and reply frames.
    - {b Telemetry writer} — with [telemetry_path]/[prom_path] set, a
      systhread writes one JSONL stats snapshot per
      [telemetry_interval_s] tick and/or replaces a Prometheus
      text-format file atomically (tmp + rename), with a final tick
      after the drain. *)

type config = {
  socket_path : string;
  workers : int;           (** worker domains, [>= 1] *)
  queue_capacity : int;    (** pending-request bound; default 256 *)
  max_frame_bytes : int;   (** per-frame cap; default 1 MiB *)
  batch_limit : int;       (** max evaluate requests per batch; 1 disables *)
  store_arch : bool;
      (** whether sessions keep whole-arch results per request (PR 6's
          [?store_arch] discipline); [false] keeps RSS flat under
          sustained non-repeating load — segment and plan caches still
          memoize *)
  max_sessions : int;      (** parent-session registry cap; beyond it new
                               (model, board) pairs evaluate uncached
                               (counted by [registry_full]) *)
  cache_capacity : int;
      (** result-cache entries ({!Util.Cache} striped LRU over the raw
          evaluate payload); a hit replies from the reader thread,
          byte-identical to the evaluation that populated it, without
          touching the queue.  While a cacheable evaluate is queued,
          identical requests coalesce onto it (single-flight): one
          evaluation, N replies, deadlines honored per waiter.  [0]
          disables both.  Clients opt out per request with
          [{"cache": false}]. *)
  max_samples : int;       (** server-side cap on explore/validate samples *)
  max_specs_cap : int;     (** server-side cap on enumerate max_specs *)
  max_sleep_s : float;     (** cap on the [sleep] testing op *)
  flight_capacity : int;
      (** per-domain flight-recorder ring size; [0] leaves the recorder
          untouched (off unless something else armed it) *)
  flight_slow_ms : float;  (** slow-request retention threshold *)
  telemetry_path : string option;  (** JSONL stats snapshots, appended *)
  prom_path : string option;       (** Prometheus text file, tmp+rename *)
  telemetry_interval_s : float;    (** writer tick; default 2 s *)
}

val default : socket_path:string -> config
(** Defaults: recommended-domain-count workers, queue 256, 1 MiB
    frames, batch 16, [store_arch = false], 64 sessions, result cache
    4096 entries, flight ring 512 x 50 ms, no telemetry files. *)

type t

val create : config -> t
(** Bind and listen on [config.socket_path].  A stale socket file with
    no live daemon behind it is reclaimed.
    @raise Failure when a live daemon already serves on the path, or
    the path exceeds the [sun_path] limit.
    @raise Invalid_argument on a non-positive [workers]/[batch_limit]. *)

val run : t -> unit
(** Serve until {!stop}; returns after the graceful drain completes.
    Blocks the calling thread (the CLI's main); tests use {!spawn}.
    @raise Invalid_argument when called twice. *)

val stop : t -> unit
(** Request a graceful drain.  Only flips an atomic — safe to call from
    a signal handler or any thread; {!run} returns once the drain is
    done. *)

val stopping : t -> bool

val counters : t -> (string * int) list
(** Snapshot of the internal request-lifecycle counters (always on,
    independent of {!Mccm_obs}): connections opened/closed, frames,
    requests, enqueued/dispatched/completed, replies, batches,
    rejections by reason, errors, write failures.  Every counter is
    monotone non-decreasing over the daemon's life. *)

val queue_depth : t -> int
val session_count : t -> int
val config : t -> config

(** {1 Test scaffolding} *)

type handle

val spawn : config -> handle
(** {!create} + {!run} on a fresh thread + block until a ping
    round-trips.  @raise Failure when the daemon does not become ready
    (the thread is stopped and joined first). *)

val shutdown : handle -> unit
(** {!stop} + join the {!spawn} thread. *)

val daemon : handle -> t

val wait_ready : ?timeout_s:float -> string -> unit
(** Poll [socket_path] until a ping round-trips (for daemons started as
    a separate process).  @raise Failure on timeout. *)
