(* Wire protocol of the mccm evaluation daemon: newline-delimited JSON
   frames over a Unix-domain socket.  See protocol.mli. *)

module Json = Util.Json

let version = "mccm-serve/2"
let default_max_frame_bytes = 1 lsl 20

(* -------------------------------------------------------------- ops *)

type op =
  | Ping
  | Evaluate
  | Explore
  | Enumerate
  | Validate
  | Stats
  | Health
  | Recent
  | Sleep
  | Shutdown

let all_ops =
  [
    Ping; Evaluate; Explore; Enumerate; Validate; Stats; Health; Recent;
    Sleep; Shutdown;
  ]

let op_to_string = function
  | Ping -> "ping"
  | Evaluate -> "evaluate"
  | Explore -> "explore"
  | Enumerate -> "enumerate"
  | Validate -> "validate"
  | Stats -> "stats"
  | Health -> "health"
  | Recent -> "recent"
  | Sleep -> "sleep"
  | Shutdown -> "shutdown"

let op_of_string s =
  List.find_opt (fun op -> op_to_string op = s) all_ops

(* ----------------------------------------------------------- errors *)

type error_code =
  | Parse_error
  | Invalid_request
  | Unknown_op
  | Bad_params
  | Overloaded
  | Deadline_exceeded
  | Oversized_frame
  | Shutting_down
  | Internal

let error_code_to_string = function
  | Parse_error -> "parse_error"
  | Invalid_request -> "invalid_request"
  | Unknown_op -> "unknown_op"
  | Bad_params -> "bad_params"
  | Overloaded -> "overloaded"
  | Deadline_exceeded -> "deadline_exceeded"
  | Oversized_frame -> "oversized_frame"
  | Shutting_down -> "shutting_down"
  | Internal -> "internal"

(* --------------------------------------------------------- requests *)

type request = {
  id : Json.t;
  op : op;
  deadline_ms : float option;
  params : Json.t;
}

let request_to_json { id; op; deadline_ms; params } =
  Json.obj
    [
      ("id", if id = Json.Null then None else Some id);
      ("op", Some (Json.Str (op_to_string op)));
      ("deadline_ms", Option.map (fun ms -> Json.Num ms) deadline_ms);
      ("params", match params with Json.Null -> None | p -> Some p);
    ]

let request_of_json j =
  match j with
  | Json.Obj _ -> (
    let id = Option.value (Json.member "id" j) ~default:Json.Null in
    match Json.member "op" j with
    | None -> Error (id, Invalid_request, "missing \"op\" field")
    | Some opj -> (
      match Json.string_ opj with
      | None -> Error (id, Invalid_request, "\"op\" must be a string")
      | Some name -> (
        match op_of_string name with
        | None -> Error (id, Unknown_op, Printf.sprintf "unknown op %S" name)
        | Some op -> (
          let params =
            Option.value (Json.member "params" j) ~default:Json.Null
          in
          match params with
          | Json.Obj _ | Json.Null -> (
            match Json.member "deadline_ms" j with
            | None -> Ok { id; op; deadline_ms = None; params }
            | Some dj -> (
              match Json.number dj with
              | Some ms when Float.is_nan ms ->
                Error (id, Invalid_request, "\"deadline_ms\" is NaN")
              | Some ms -> Ok { id; op; deadline_ms = Some ms; params }
              | None ->
                Error (id, Invalid_request, "\"deadline_ms\" must be a number")
              ))
          | _ ->
            Error (id, Invalid_request, "\"params\" must be an object")))))
  | _ -> Error (Json.Null, Invalid_request, "frame is not a JSON object")

let parse_request line =
  match Json.parse line with
  | Error msg -> Error (Json.Null, Parse_error, msg)
  | Ok j -> request_of_json j

(* ---------------------------------------------------------- replies *)

let rid_field rid =
  match rid with Some r -> [ ("rid", Json.Str r) ] | None -> []

let ok_frame ~id ?rid result =
  Json.to_string
    (Json.Obj
       (("id", id) :: ("ok", Json.Bool true)
       :: (rid_field rid @ [ ("result", result) ])))

let error_frame ~id ?rid code msg =
  Json.to_string
    (Json.Obj
       (("id", id) :: ("ok", Json.Bool false)
       :: (rid_field rid
          @ [
              ( "error",
                Json.Obj
                  [
                    ("code", Json.Str (error_code_to_string code));
                    ("message", Json.Str msg);
                  ] );
            ])))

type reply = {
  reply_id : Json.t;
  outcome : (Json.t, string * string) result;
}

let parse_reply line =
  match Json.parse line with
  | Error msg -> Error ("reply is not JSON: " ^ msg)
  | Ok j -> (
    let reply_id = Option.value (Json.member "id" j) ~default:Json.Null in
    match Json.member "ok" j with
    | Some (Json.Bool true) -> (
      match Json.member "result" j with
      | Some r -> Ok { reply_id; outcome = Ok r }
      | None -> Error "ok reply without \"result\"")
    | Some (Json.Bool false) -> (
      match Json.member "error" j with
      | Some e ->
        let code =
          Option.value ~default:"?"
            (Option.bind (Json.member "code" e) Json.string_)
        in
        let msg =
          Option.value ~default:""
            (Option.bind (Json.member "message" e) Json.string_)
        in
        Ok { reply_id; outcome = Error (code, msg) }
      | None -> Error "error reply without \"error\"")
    | _ -> Error "reply without boolean \"ok\"")

(* ---------------------------------------------------- metrics codec *)

let json_of_metrics (m : Mccm.Metrics.t) =
  Json.Obj
    [
      ("latency_s", Json.Num m.Mccm.Metrics.latency_s);
      ("throughput_ips", Json.Num m.Mccm.Metrics.throughput_ips);
      ("buffer_bytes", Json.Num (float_of_int m.Mccm.Metrics.buffer_bytes));
      ( "weights_bytes",
        Json.Num (float_of_int m.Mccm.Metrics.accesses.Mccm.Access.weights_bytes)
      );
      ( "fms_bytes",
        Json.Num (float_of_int m.Mccm.Metrics.accesses.Mccm.Access.fms_bytes) );
      ("feasible", Json.Bool m.Mccm.Metrics.feasible);
    ]

let metrics_of_json j =
  let num k = Option.bind (Json.member k j) Json.number in
  let int k = Option.bind (Json.member k j) Json.int_ in
  let bool k = Option.bind (Json.member k j) Json.bool_ in
  match
    ( num "latency_s",
      num "throughput_ips",
      int "buffer_bytes",
      int "weights_bytes",
      int "fms_bytes",
      bool "feasible" )
  with
  | Some latency_s, Some throughput_ips, Some buffer_bytes, Some w, Some f,
    Some feasible ->
    Ok
      {
        Mccm.Metrics.latency_s;
        throughput_ips;
        buffer_bytes;
        accesses = { Mccm.Access.weights_bytes = w; fms_bytes = f };
        feasible;
      }
  | _ -> Error "malformed metrics object"
