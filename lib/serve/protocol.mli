(** Wire protocol of the mccm evaluation daemon.

    Framing is newline-delimited JSON over a Unix-domain socket: every
    request and every reply is exactly one JSON object on one
    LF-terminated line.  A connection may pipeline any number of
    requests; replies carry the request's [id] back verbatim, and may
    arrive in any order relative to other outstanding requests on the
    same connection (the daemon's workers complete independently).

    Request frame:
    {v {"id": <any>, "op": "<op>", "deadline_ms": <num?>, "params": {..}} v}

    [id] is echoed back untouched (clients use it to match pipelined
    replies); [deadline_ms] is a {e relative} budget in milliseconds —
    a request whose budget expires before a worker starts it is
    answered with [deadline_exceeded] instead of being evaluated.

    Reply frames:
    {v {"id": <echo>, "ok": true,  "rid": "..?", "result": {..}}
       {"id": <echo>, "ok": false, "rid": "..?",
        "error": {"code": "..", "message": ".."}} v}

    [rid] is the request id the daemon's telemetry knows the request
    by: the client-supplied [id] rendered compactly, or a daemon-minted
    one when the client sent none.  It appears on every error reply and
    on success replies to id-less requests, and the same string shows
    up in span args and flight-recorder entries, so a trace, a flight
    record and a reply correlate.

    Every frame the daemon receives — including malformed, truncated or
    oversized ones — is answered with exactly one reply frame; the
    connection survives all of them (the fuzz suite holds the daemon to
    this).  All numbers are rendered with round-tripping precision
    ({!Util.Json}), so metrics received over the wire are bit-identical
    to in-process evaluation.

    Revision /2 is backward compatible with /1 requests: every /1 frame
    is a valid /2 frame with the same meaning, and /2 only adds ops
    ([health], [recent]) and optional reply fields ([rid]), which /1
    clients ignore. *)

val version : string
(** Protocol identifier, ["mccm-serve/2"]; reported by [ping]. *)

val default_max_frame_bytes : int
(** Default per-frame size cap (1 MiB); longer lines are answered with
    [oversized_frame] and discarded up to the next newline. *)

(** {1 Operations} *)

type op =
  | Ping       (** liveness + version; served inline, never queued *)
  | Evaluate   (** one (model, board, arch) through the cost model *)
  | Explore    (** random DSE sweep ({!Dse.Explore.run}) *)
  | Enumerate  (** fixed-CE-count search ({!Dse.Enumerate.exhaustive_best}) *)
  | Validate   (** differential sweep ({!Validate.Sweep.run}) *)
  | Stats      (** live counters + full metrics snapshot; served inline *)
  | Health     (** small liveness/queue summary; served inline *)
  | Recent     (** last [params.n] flight-recorder entries; served inline *)
  | Sleep      (** hold a worker for [params.seconds] — testing aid *)
  | Shutdown   (** initiate graceful drain; served inline *)

val all_ops : op list
val op_to_string : op -> string
val op_of_string : string -> op option

(** {1 Error codes} *)

type error_code =
  | Parse_error        (** frame is not valid JSON *)
  | Invalid_request    (** valid JSON, wrong shape *)
  | Unknown_op
  | Bad_params
  | Overloaded         (** request queue full — backpressure *)
  | Deadline_exceeded
  | Oversized_frame
  | Shutting_down      (** daemon is draining; request not accepted *)
  | Internal

val error_code_to_string : error_code -> string

(** {1 Requests} *)

type request = {
  id : Util.Json.t;            (** [Null] when the client sent none *)
  op : op;
  deadline_ms : float option;  (** relative budget, milliseconds *)
  params : Util.Json.t;        (** [Obj _] or [Null] *)
}

val request_to_json : request -> Util.Json.t

val request_of_json :
  Util.Json.t -> (request, Util.Json.t * error_code * string) result
(** The error carries the echoable [id] (best effort) next to the code. *)

val parse_request :
  string -> (request, Util.Json.t * error_code * string) result
(** [request_of_json] over [Util.Json.parse]. *)

(** {1 Replies} *)

val ok_frame : id:Util.Json.t -> ?rid:string -> Util.Json.t -> string
(** One success frame (no trailing newline). *)

val error_frame :
  id:Util.Json.t -> ?rid:string -> error_code -> string -> string
(** One error frame (no trailing newline). *)

type reply = {
  reply_id : Util.Json.t;
  outcome : (Util.Json.t, string * string) result;
      (** [Ok result] or [Error (code, message)] *)
}

val parse_reply : string -> (reply, string) result
(** Client side: decode one reply frame. *)

(** {1 Metrics codec} *)

val json_of_metrics : Mccm.Metrics.t -> Util.Json.t
(** [{latency_s, throughput_ips, buffer_bytes, weights_bytes,
    fms_bytes, feasible}] with round-tripping floats. *)

val metrics_of_json : Util.Json.t -> (Mccm.Metrics.t, string) result
(** Exact inverse of {!json_of_metrics} — the bit-exactness property
    tests compare reconstructed metrics with [=]. *)
