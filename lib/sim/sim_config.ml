type t = {
  dma_latency_cycles : int;
  layer_setup_cycles : int;
  tile_sync_cycles : int;
  bram_bank_bytes : int;
  base_clock_margin : float;
  dsp_fill_margin : float;
  bram_fill_margin : float;
  perfect_overlap : bool;
}

let default =
  {
    dma_latency_cycles = 256;
    layer_setup_cycles = 800;
    tile_sync_cycles = 40;
    bram_bank_bytes = 4608; (* one BRAM36: 36 Kbit *)
    base_clock_margin = 0.015;
    dsp_fill_margin = 0.03;
    bram_fill_margin = 0.03;
    perfect_overlap = false;
  }

let ideal =
  {
    dma_latency_cycles = 0;
    layer_setup_cycles = 0;
    tile_sync_cycles = 0;
    bram_bank_bytes = 1;
    base_clock_margin = 0.0;
    dsp_fill_margin = 0.0;
    bram_fill_margin = 0.0;
    perfect_overlap = true;
  }

let achieved_clock_hz cfg board ~dsps_used ~bram_used =
  let frac used total =
    if total <= 0 then 0.0
    else Float.min 1.0 (float_of_int used /. float_of_int total)
  in
  let derate =
    cfg.base_clock_margin
    +. (cfg.dsp_fill_margin *. frac dsps_used board.Platform.Board.dsps)
    +. (cfg.bram_fill_margin *. frac bram_used board.Platform.Board.bram_bytes)
  in
  board.Platform.Board.clock_hz *. (1.0 -. derate)
