(** Configuration of the synthesis-surrogate simulator.

    The paper validates MCCM against Vitis HLS synthesis; this repository
    substitutes a tile-level discrete-event simulator that models the
    implementation effects the analytical model abstracts away.  Each
    effect is a documented constant here:

    - DMA transfers pay a fixed initiation latency per burst;
    - every layer pays a control/setup overhead (loop-nest prologue,
      descriptor programming);
    - pipelined engines pay a synchronisation overhead per tile handoff;
    - buffers are carved out of discrete BRAM banks, rounding sizes up;
    - timing closure degrades the achieved clock as the design fills the
      device (DSP and BRAM utilisation), as it does in real synthesis.

    The [ideal] configuration disables every effect, in which case the
    simulator must agree with the analytical model exactly — a property
    the test suite checks. *)

type t = {
  dma_latency_cycles : int;      (** per-burst initiation latency *)
  layer_setup_cycles : int;      (** per-layer control overhead *)
  tile_sync_cycles : int;        (** per-tile pipeline handoff overhead *)
  bram_bank_bytes : int;         (** granularity of buffer allocation *)
  base_clock_margin : float;     (** fixed achieved-clock derating *)
  dsp_fill_margin : float;       (** extra derating at 100% DSP use *)
  bram_fill_margin : float;      (** extra derating at 100% BRAM use *)
  perfect_overlap : bool;
      (** model an infinitely deep prefetcher: transfers never gate
          compute directly; instead each schedule step pays the larger of
          its compute and transfer time, and a block can never finish
          before the port has streamed its traffic.  This is precisely the
          double-buffering limit the analytical model assumes, so with the
          other overheads at zero the simulator and the model must agree
          exactly — the property the differential validator
          ({!Validate.Oracle}) checks. *)
}

val default : t
(** Values representative of the AMD toolflow the paper used: 256-cycle
    DMA bursts, 800-cycle layer setup, 40-cycle tile sync, 4.5 KiB
    (BRAM36) banks, and 1.5% + 3% + 3% clock derating terms. *)

val ideal : t
(** Every overhead zero, no derating: the surrogate collapses onto the
    analytical model. *)

val achieved_clock_hz : t -> Platform.Board.t -> dsps_used:int -> bram_used:int -> float
(** [achieved_clock_hz cfg board ~dsps_used ~bram_used] is the clock the
    "synthesised" design closes timing at. *)
