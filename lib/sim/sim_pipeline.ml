type t = {
  finish_cycle : float;
  latency_cycles : float;
  interval_cycles : float;
  accesses : Mccm.Access.t;
  port_cycles : float;
}

type layer_sim = {
  tiles : int;
  tile_cyc : float;
  slot : int;            (* engine position within the block *)
  weight_bytes : int;
  retained : bool;
  ifm_tile_bytes : int;  (* input streamed per tile when off-chip *)
  ofm_tile_bytes : int;  (* output streamed per tile when off-chip *)
}

let build_layers ~model ~board ~engines ~plan ~first ~last =
  let bpe = board.Platform.Board.bytes_per_element in
  let ces = Array.length engines in
  Array.init (last - first + 1) (fun i ->
      let layer = Cnn.Model.layer model (first + i) in
      let slot = i mod ces in
      let rows = plan.Builder.Buffer_alloc.tile_rows.(i) in
      let ws = plan.Builder.Buffer_alloc.width_split in
      let tiles = Builder.Tiling.num_row_tiles layer ~rows * ws in
      {
        tiles;
        tile_cyc =
          float_of_int
            (Util.Int_math.ceil_div
               (Engine.Ce.tile_cycles engines.(slot) layer ~rows)
               ws);
        slot;
        weight_bytes = Cnn.Layer.weight_elements layer * bpe;
        retained = plan.Builder.Buffer_alloc.weights_retained.(i);
        ifm_tile_bytes =
          Util.Int_math.ceil_div (Cnn.Layer.ifm_elements layer * bpe) tiles;
        ofm_tile_bytes =
          Util.Int_math.ceil_div (Cnn.Layer.ofm_elements layer * bpe) tiles;
      })

let simulate ~trace ~cfg ~dma ~model ~board ~engines ~plan ~first ~last
    ~input_on_chip ~output_on_chip ~start ~images =
  if images < 1 then invalid_arg "Sim_pipeline.simulate: images < 1";
  let layers = build_layers ~model ~board ~engines ~plan ~first ~last in
  let n = Array.length layers in
  let ces = Array.length engines in
  let overlap = cfg.Sim_config.perfect_overlap in
  let bpe = board.Platform.Board.bytes_per_element in
  let sync = float_of_int cfg.Sim_config.tile_sync_cycles in
  let engine_free = Array.make ces start in
  (* Per-image engine occupancy: in the steady state a work-conserving
     schedule fills dependency stalls with other inputs' work, so the
     initiation interval is paced by the busiest engine (Eq. 3) or by the
     shared port, whichever is slower. *)
  let busy = Array.make ces 0.0 in
  let port_cycles = ref 0.0 in
  let request ?(label = "dma") at bytes =
    if bytes > 0 then begin
      port_cycles := !port_cycles +. Dma.transfer_cycles dma ~bytes;
      let finish = Dma.request dma ~at ~bytes in
      (match trace with
      | Some tr ->
        Trace.emit tr (Trace.Burst { bytes; start = at; finish; label })
      | None -> ());
      finish
    end
    else at
  in
  let finishes = Array.make images 0.0 in
  let port_cycles_first_image = ref 0.0 in
  let image_start = ref start in
  for img = 0 to images - 1 do
    (* completion.(l) holds per-tile completion times of layer l. *)
    let completion = Array.map (fun l -> Array.make l.tiles 0.0) layers in
    (* Retained weights are fetched once per input, before its first
       round needs them. *)
    Array.iteri
      (fun i l ->
        if l.retained then
          ignore
            (request
               ~label:(Printf.sprintf "weights L%d" (first + i + 1))
               !image_start l.weight_bytes))
      layers;
    (* Under perfect overlap the boundary streams are charged to the port
       once per image with their exact byte counts (no per-tile ceiling),
       matching Eq. 7/9's accounting. *)
    if overlap && not input_on_chip then
      ignore
        (request ~label:"input" !image_start
           (Cnn.Layer.ifm_elements (Cnn.Model.layer model first) * bpe));
    (* Layer-major evaluation of the tile schedule: every engine walks
       its layers (and their tiles) in order, so every engine-availability
       and producer-tile dependency is computed before it is read. *)
    for li = 0 to n - 1 do
      let l = layers.(li) in
      (* Weight streams are double-buffered: the burst for tile [t] is
         issued when tile [t-1] begins, overlapping transfer with
         compute. *)
      let prefetch_at = ref engine_free.(l.slot) in
      for t = 0 to l.tiles - 1 do
        (* Input dependency: previous layer's covering tile, or the image
           input stream for the first layer. *)
        let input_ready =
          if li = 0 then
            if input_on_chip || overlap then !image_start
            else
              request
                (Float.max !image_start engine_free.(l.slot))
                l.ifm_tile_bytes
          else
            let p = layers.(li - 1) in
            completion.(li - 1).(Builder.Tiling.producer_tile
                                   ~producer_tiles:p.tiles
                                   ~consumer_tiles:l.tiles t)
        in
        let weights_ready =
          if l.retained then !image_start
          else begin
            let done_ =
              request
                ~label:(Printf.sprintf "weights L%d" (first + li + 1))
                !prefetch_at l.weight_bytes
            in
            (* Perfect overlap: the stream is still paid for at the port,
               but an ideal prefetcher hides it from the tile schedule. *)
            if overlap then !image_start else done_
          end
        in
        let begin_ =
          Float.max
            (Float.max input_ready weights_ready)
            (Float.max engine_free.(l.slot) !image_start)
        in
        prefetch_at := begin_;
        let done_ = begin_ +. l.tile_cyc +. sync in
        let done_ =
          if li = n - 1 && not output_on_chip && not overlap then
            request done_ l.ofm_tile_bytes
          else done_
        in
        completion.(li).(t) <- done_;
        engine_free.(l.slot) <- done_;
        (match trace with
        | Some tr when img = 0 ->
          Trace.emit tr
            (Trace.Tile
               {
                 layer = first + li;
                 tile = t;
                 engine = engines.(l.slot).Engine.Ce.id;
                 start = begin_;
                 finish = done_;
               })
        | Some _ | None -> ());
        if img = 0 then busy.(l.slot) <- busy.(l.slot) +. l.tile_cyc +. sync
      done
    done;
    let last_l = layers.(n - 1) in
    finishes.(img) <- completion.(n - 1).(last_l.tiles - 1);
    if overlap && not output_on_chip then
      ignore
        (request ~label:"output"
           finishes.(img)
           (Cnn.Layer.ofm_elements (Cnn.Model.layer model last) * bpe));
    if img = 0 then port_cycles_first_image := !port_cycles;
    (* The next input may enter as soon as the first engine frees up. *)
    image_start := engine_free.(0)
  done;
  (* Per-image accesses: replay the model's Eq. 7 accounting (the
     simulation moved images x that amount through the port). *)
  let weights =
    Array.fold_left
      (fun acc l ->
        acc + (l.weight_bytes * if l.retained then 1 else l.tiles))
      0 layers
  in
  let fms =
    (if input_on_chip then 0
     else Cnn.Layer.ifm_elements (Cnn.Model.layer model first) * bpe)
    + (if output_on_chip then 0
       else Cnn.Layer.ofm_elements (Cnn.Model.layer model last) * bpe)
  in
  let port_per_image = !port_cycles /. float_of_int images in
  let interval =
    Float.max (Array.fold_left Float.max 0.0 busy) port_per_image
  in
  (* Bursts overlap freely inside the schedule (see {!Dma.request}), but
     the physical port still cannot stream one input's traffic faster
     than its bandwidth: the first image cannot finish before the port
     has moved its bytes (the analytical max(compute, memory) of
     Eq. 2).  Without this clamp a weight-heavy schedule whose streams
     overlap across engines would report a latency below the single-port
     bound. *)
  let first_image_latency =
    Float.max (finishes.(0) -. start) !port_cycles_first_image
  in
  {
    finish_cycle = finishes.(images - 1);
    latency_cycles = first_image_latency;
    interval_cycles = interval;
    accesses =
      Mccm.Access.add (Mccm.Access.weights weights) (Mccm.Access.fms fms);
    port_cycles = port_per_image;
  }
