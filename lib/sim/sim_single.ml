type t = {
  finish_cycle : float;
  busy_cycles : float;
  accesses : Mccm.Access.t;
  port_cycles : float;
}

(* How many weight bursts a layer streams through the port.  The DMA
   engine coalesces consecutive filter groups into long bursts (at least
   32 KiB), as real weight streamers do. *)
let min_burst_bytes = 32768

let weight_groups engine layer ~bpe =
  let tile =
    max min_burst_bytes (Builder.Tiling.weight_tile_elements engine layer * bpe)
  in
  let total = Cnn.Layer.weight_elements layer * bpe in
  max 1 (Util.Int_math.ceil_div total tile)

let simulate ~cfg ~dma ~model ~board ~engine ~plan ~first ~last ~input_on_chip
    ~output_on_chip ~start =
  (* Replay the analytical model's access decisions for exact byte
     parity; the event simulation below only adds time. *)
  let reference =
    Mccm.Single_ce_model.evaluate ~model ~board ~engine ~plan ~first ~last
      ~input_on_chip ~output_on_chip ()
  in
  let port_cycles = ref 0.0 in
  let t = ref start in
  if cfg.Sim_config.perfect_overlap then
    (* Infinitely deep prefetch: every stream is double-buffered behind
       the previous layer, so a layer advances time by the larger of its
       compute and its transfer, never their interleaving. *)
    List.iter
      (fun (lr : Mccm.Single_ce_model.layer_result) ->
        let bytes = Mccm.Access.total lr.Mccm.Single_ce_model.accesses in
        let transfer = Dma.transfer_cycles dma ~bytes in
        ignore (Dma.request dma ~at:!t ~bytes);
        port_cycles := !port_cycles +. transfer;
        t :=
          !t
          +. float_of_int cfg.Sim_config.layer_setup_cycles
          +. Float.max
               (float_of_int lr.Mccm.Single_ce_model.compute_cycles)
               transfer)
      reference.Mccm.Single_ce_model.layers
  else
  List.iter
    (fun (lr : Mccm.Single_ce_model.layer_result) ->
      let layer = Cnn.Model.layer model lr.Mccm.Single_ce_model.layer_index in
      let setup_done =
        !t +. float_of_int cfg.Sim_config.layer_setup_cycles
      in
      let w_bytes =
        lr.Mccm.Single_ce_model.accesses.Mccm.Access.weights_bytes
      in
      let fm_bytes = lr.Mccm.Single_ce_model.accesses.Mccm.Access.fms_bytes in
      (* Weights stream in [groups] bursts, double-buffered: compute waits
         only for the first burst; the rest overlap. *)
      let groups =
        weight_groups engine layer
          ~bpe:board.Platform.Board.bytes_per_element
      in
      let per_group = Util.Int_math.ceil_div w_bytes groups in
      let first_burst_done =
        Dma.request dma ~at:setup_done ~bytes:(min per_group w_bytes)
      in
      port_cycles := !port_cycles +. Dma.transfer_cycles dma ~bytes:(min per_group w_bytes);
      let dma_done = ref first_burst_done in
      let remaining = ref (w_bytes - min per_group w_bytes) in
      while !remaining > 0 do
        let b = min per_group !remaining in
        dma_done := Dma.request dma ~at:!dma_done ~bytes:b;
        port_cycles := !port_cycles +. Dma.transfer_cycles dma ~bytes:b;
        remaining := !remaining - b
      done;
      (* Spilled FMs stream in buffer-sized bursts through the same port. *)
      let fm_burst =
        max 4096 (plan.Builder.Buffer_alloc.fm_capacity_bytes / 4)
      in
      let fm_remaining = ref fm_bytes in
      while !fm_remaining > 0 do
        let b = min fm_burst !fm_remaining in
        dma_done := Dma.request dma ~at:!dma_done ~bytes:b;
        port_cycles := !port_cycles +. Dma.transfer_cycles dma ~bytes:b;
        fm_remaining := !fm_remaining - b
      done;
      let compute_finish =
        Float.max first_burst_done setup_done
        +. float_of_int (Engine.Ce.layer_cycles engine layer)
      in
      t := Float.max compute_finish !dma_done)
    reference.Mccm.Single_ce_model.layers;
  {
    finish_cycle = !t;
    busy_cycles = !t -. start;
    accesses = reference.Mccm.Single_ce_model.accesses;
    port_cycles = !port_cycles;
  }
