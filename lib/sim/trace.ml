type event =
  | Tile of {
      layer : int;
      tile : int;
      engine : int;
      start : float;
      finish : float;
    }
  | Burst of { bytes : int; start : float; finish : float; label : string }

type t = { mutable rev_events : event list; mutable count : int }

let create () = { rev_events = []; count = 0 }

let emit t e =
  t.rev_events <- e :: t.rev_events;
  t.count <- t.count + 1

let events t = List.rev t.rev_events

let tile_count t =
  List.length
    (List.filter (function Tile _ -> true | Burst _ -> false) t.rev_events)

let bounds_of = function
  | Tile { start; finish; _ } -> (start, finish)
  | Burst { start; finish; _ } -> (start, finish)

let span t =
  match t.rev_events with
  | [] -> (0.0, 0.0)
  | es ->
    List.fold_left
      (fun (lo, hi) e ->
        let s, f = bounds_of e in
        (Float.min lo s, Float.max hi f))
      (infinity, neg_infinity) es

let export_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "event,layer,tile,engine,bytes,label,start,finish\n";
  List.iter
    (fun e ->
      match e with
      | Tile { layer; tile; engine; start; finish } ->
        Buffer.add_string buf
          (Printf.sprintf "tile,%d,%d,%d,,,%.0f,%.0f\n" layer tile engine
             start finish)
      | Burst { bytes; start; finish; label } ->
        Buffer.add_string buf
          (Printf.sprintf "burst,,,,%d,%s,%.0f,%.0f\n" bytes label start
             finish))
    (events t);
  Buffer.contents buf

let render_gantt ?(width = 100) t =
  match t.rev_events with
  | [] -> "(empty trace)\n"
  | _ ->
    let lo, hi = span t in
    let extent = Float.max 1e-9 (hi -. lo) in
    let cell time =
      let c =
        int_of_float ((time -. lo) /. extent *. float_of_int (width - 1))
      in
      Util.Int_math.clamp ~lo:0 ~hi:(width - 1) c
    in
    let engines =
      List.sort_uniq compare
        (List.filter_map
           (function Tile { engine; _ } -> Some engine | Burst _ -> None)
           t.rev_events)
    in
    let buf = Buffer.create 4096 in
    Buffer.add_string buf
      (Printf.sprintf "cycles %.0f .. %.0f (one column = %.0f cycles)\n" lo hi
         (extent /. float_of_int width));
    List.iter
      (fun engine ->
        let lane = Bytes.make width ' ' in
        List.iter
          (function
            | Tile { engine = e; layer; start; finish; _ } when e = engine ->
              let a = cell start and b = cell finish in
              let mark = if layer mod 2 = 0 then '#' else '=' in
              for i = a to b do
                Bytes.set lane i mark
              done
            | Tile _ | Burst _ -> ())
          (events t);
        Buffer.add_string buf (Printf.sprintf "CE%-3d |%s|\n" engine (Bytes.to_string lane)))
      engines;
    let dma_lane = Bytes.make width ' ' in
    List.iter
      (function
        | Burst { start; finish; _ } ->
          for i = cell start to cell finish do
            Bytes.set dma_lane i '~'
          done
        | Tile _ -> ())
      (events t);
    Buffer.add_string buf (Printf.sprintf "DMA   |%s|\n" (Bytes.to_string dma_lane));
    Buffer.add_string buf
      "('#'/'=' alternate per layer; '~' marks off-chip bursts)\n";
    Buffer.contents buf
