(** Event traces from the synthesis-surrogate simulator.

    The block simulators optionally emit one event per scheduled tile (or
    layer, for single-CE blocks) and per DMA burst; this module collects
    them and renders per-engine Gantt timelines — the view an architect
    uses to see pipeline skew, round-robin wrap-around and memory stalls
    at a glance. *)

type event =
  | Tile of {
      layer : int;       (** model layer index *)
      tile : int;        (** tile index within the layer *)
      engine : int;      (** 1-based CE id *)
      start : float;     (** cycles *)
      finish : float;
    }
  | Burst of {
      bytes : int;
      start : float;
      finish : float;
      label : string;    (** e.g. ["weights L5"] *)
    }

type t
(** A mutable event collector. *)

val create : unit -> t

val emit : t -> event -> unit
(** Record one event (called by the simulators). *)

val events : t -> event list
(** All recorded events, in emission order. *)

val tile_count : t -> int
(** Number of {!Tile} events. *)

val span : t -> float * float
(** [(earliest start, latest finish)] over all events; [(0., 0.)] when
    empty. *)

val export_csv : t -> string
(** One CSV row per event
    ([event,layer,tile,engine,bytes,label,start,finish]) in emission
    order — the machine-readable export the differential validator
    attaches to failing pipelined cases. *)

val render_gantt : ?width:int -> t -> string
(** [render_gantt t] draws one lane per engine (tiles as ['#'] runs,
    different layers alternating ['#']/['=']) and one lane for the DMA
    port (['~']), over a [width]-character time axis (default 100). *)
