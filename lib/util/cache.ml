(* Lock-striped LRU.  See cache.mli for the contract.

   Layout: one shard = mutex + hashtable + intrusive doubly-linked
   recency list.  The table is keyed by (digest, key) with the digest
   as the hash and full string equality as the tie-breaker, so the
   string is compared at most once per probe and collisions cannot
   alias.  The digest's high bits pick the shard (the table masks low
   bits for bucketing, so using low bits for both would cluster every
   shard's keys into a fraction of its buckets). *)

type key = { digest : int; str : string }

module K = struct
  type t = key

  let equal a b = a.digest = b.digest && String.equal a.str b.str
  let hash a = a.digest
end

module H = Hashtbl.Make (K)

type 'v node = {
  n_key : key;
  mutable n_value : 'v;
  mutable n_prev : 'v node option; (* toward most-recently-used *)
  mutable n_next : 'v node option; (* toward least-recently-used *)
}

type 'v shard = {
  m : Mutex.t;
  tbl : 'v node H.t;
  cap : int;
  mutable mru : 'v node option;
  mutable lru : 'v node option;
  mutable size : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type 'v t = { shards : 'v shard array; total_capacity : int }

type stats = {
  entries : int;
  capacity : int;
  hits : int;
  misses : int;
  evictions : int;
}

let create ?(shards = 16) ~capacity () =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be >= 1";
  let n =
    let want = max 1 (min shards capacity) in
    (* Round down to a power of two so shard selection is a mask. *)
    let p = ref 1 in
    while !p * 2 <= want do
      p := !p * 2
    done;
    !p
  in
  let base = capacity / n and rem = capacity mod n in
  let shard i =
    {
      m = Mutex.create ();
      tbl = H.create 64;
      cap = base + (if i < rem then 1 else 0);
      mru = None;
      lru = None;
      size = 0;
      hits = 0;
      misses = 0;
      evictions = 0;
    }
  in
  { shards = Array.init n shard; total_capacity = capacity }

let digest_of str = Fingerprint.to_int (Fingerprint.string Fingerprint.empty str)

let shard_of t key =
  (t.shards.((key.digest lsr 24) land (Array.length t.shards - 1)), key)

let locate t str =
  let key = { digest = digest_of str; str } in
  shard_of t key

(* ------------------------------------------------- list maintenance *)
(* All list surgery runs with the shard mutex held. *)

let unlink s node =
  (match node.n_prev with
  | Some p -> p.n_next <- node.n_next
  | None -> s.mru <- node.n_next);
  (match node.n_next with
  | Some nx -> nx.n_prev <- node.n_prev
  | None -> s.lru <- node.n_prev);
  node.n_prev <- None;
  node.n_next <- None

let push_front s node =
  node.n_prev <- None;
  node.n_next <- s.mru;
  (match s.mru with Some old -> old.n_prev <- Some node | None -> ());
  s.mru <- Some node;
  match s.lru with None -> s.lru <- Some node | Some _ -> ()

let promote s node =
  match s.mru with
  | Some front when front == node -> ()
  | _ ->
    unlink s node;
    push_front s node

(* ------------------------------------------------------- operations *)

let find t str =
  let s, key = locate t str in
  Mutex.lock s.m;
  let r =
    match H.find_opt s.tbl key with
    | Some node ->
      s.hits <- s.hits + 1;
      promote s node;
      Some node.n_value
    | None ->
      s.misses <- s.misses + 1;
      None
  in
  Mutex.unlock s.m;
  r

let add t str v =
  let s, key = locate t str in
  Mutex.lock s.m;
  let evicted =
    match H.find_opt s.tbl key with
    | Some node ->
      node.n_value <- v;
      promote s node;
      0
    | None ->
      let node = { n_key = key; n_value = v; n_prev = None; n_next = None } in
      H.add s.tbl key node;
      push_front s node;
      s.size <- s.size + 1;
      if s.size > s.cap then begin
        (match s.lru with
        | Some victim ->
          unlink s victim;
          H.remove s.tbl victim.n_key;
          s.size <- s.size - 1;
          s.evictions <- s.evictions + 1
        | None -> assert false);
        1
      end
      else 0
  in
  Mutex.unlock s.m;
  evicted

let mem t str =
  let s, key = locate t str in
  Mutex.lock s.m;
  let r = H.mem s.tbl key in
  Mutex.unlock s.m;
  r

let length t =
  Array.fold_left
    (fun acc s ->
      Mutex.lock s.m;
      let n = s.size in
      Mutex.unlock s.m;
      acc + n)
    0 t.shards

let capacity t = t.total_capacity
let shards t = Array.length t.shards

let stats_of_shard s =
  Mutex.lock s.m;
  let r =
    {
      entries = s.size;
      capacity = s.cap;
      hits = s.hits;
      misses = s.misses;
      evictions = s.evictions;
    }
  in
  Mutex.unlock s.m;
  r

let shard_stats t = Array.map stats_of_shard t.shards

let stats t =
  Array.fold_left
    (fun acc s ->
      {
        entries = acc.entries + s.entries;
        capacity = acc.capacity + s.capacity;
        hits = acc.hits + s.hits;
        misses = acc.misses + s.misses;
        evictions = acc.evictions + s.evictions;
      })
    { entries = 0; capacity = 0; hits = 0; misses = 0; evictions = 0 }
    (shard_stats t)

let clear t =
  Array.iter
    (fun s ->
      Mutex.lock s.m;
      H.reset s.tbl;
      s.mru <- None;
      s.lru <- None;
      s.size <- 0;
      Mutex.unlock s.m)
    t.shards
