(** Lock-striped, capacity-bounded LRU cache, safe under Domains.

    Keys are strings (a canonical serialisation of whatever the entry
    is content-addressed by); each key is digested once per operation
    with {!Fingerprint} and the digest picks the shard, hashes within
    the shard's table, and guards equality — lookups compare the full
    key string only when digests match, so a hash collision can never
    alias two entries (the {!Fingerprint} discipline).

    Each shard is an independent LRU: a mutex, a hash table, and an
    intrusive recency list, with its own hit/miss/eviction counters
    maintained under the mutex.  Capacity is partitioned across shards
    at creation (total never exceeds [capacity]), so eviction order is
    LRU per shard — a standard striped approximation of global LRU
    that trades exact recency for uncontended parallel access.

    Values are never mutated by the cache; callers on different
    domains may freely read a value returned by {!find} as long as
    the values themselves are immutable (which cached results are). *)

type 'v t

type stats = {
  entries : int;
  capacity : int;
  hits : int;
  misses : int;
  evictions : int;
}

val create : ?shards:int -> capacity:int -> unit -> 'v t
(** [create ~capacity ()] makes a cache holding at most [capacity]
    entries in total.  [shards] (default 16) is rounded down to a
    power of two and clamped to [capacity] so every shard holds at
    least one entry.  @raise Invalid_argument if [capacity < 1]. *)

val find : 'v t -> string -> 'v option
(** Look up a key; a hit promotes the entry to most-recently-used and
    counts a hit, a miss counts a miss. *)

val add : 'v t -> string -> 'v -> int
(** Insert (or replace, promoting) an entry.  Returns the number of
    entries evicted to stay within capacity (0 or 1). *)

val mem : 'v t -> string -> bool
(** Presence test: no promotion, no counter update. *)

val length : 'v t -> int
(** Current number of entries (sums shard sizes; a pure read). *)

val capacity : 'v t -> int
val shards : 'v t -> int

val stats : 'v t -> stats
(** Totals across shards. *)

val shard_stats : 'v t -> stats array
(** Per-shard counters, indexed by shard. *)

val clear : 'v t -> unit
(** Drop every entry.  Counters are kept (they are lifetime totals). *)
