(* FNV-style multiplicative hash over native ints (unboxed — cache keys
   are built on hot paths, so the combinators must not allocate).  The
   combinators fold structure into the accumulator; collections feed
   their length first so [1; 2] and [1], [2] never collide by
   concatenation.  Multiplication only diffuses upward, so [to_int]
   finishes with xor-shift avalanche rounds before handing the digest to
   a hash table that keys on low bits. *)

type t = int

(* 63-bit truncation of the FNV-1a offset basis / prime pair. *)
let empty = 0x4bf29ce484222325
let prime = 0x100000001b3

let int h v = (h lxor v) * prime

let bool h b = int h (if b then 1 else 0)

let float h f = int h (Int64.to_int (Int64.bits_of_float f))

let string h s =
  let h = ref (int h (String.length s)) in
  String.iter (fun c -> h := int !h (Char.code c)) s;
  !h

let list f h l = List.fold_left f (int h (List.length l)) l

let array f h a = Array.fold_left f (int h (Array.length a)) a

let pair f g h (a, b) = g (f h a) b

let to_int h =
  let h = h lxor (h lsr 33) in
  let h = h * 0xff51afd7ed558cc in
  let h = h lxor (h lsr 29) in
  h land max_int
