(** Content-hash keys for memoization tables.

    A fingerprint is an FNV-style multiplicative hash folded over a
    canonical feed, computed entirely in unboxed native-int arithmetic
    (the combinators run on hot cache-key paths and must not allocate).
    Cache keys pair a fingerprint (fast hashing into the table) with the
    full structural payload (exact equality on lookup), so a hash
    collision can never alias two distinct keys — it only costs an extra
    comparison.  Collections feed their length before their elements,
    keeping concatenations unambiguous. *)

type t

val empty : t
(** The offset basis; start every key here. *)

val int : t -> int -> t
val bool : t -> bool -> t

val float : t -> float -> t
(** Folds the IEEE-754 bit pattern, so [0.0] and [-0.0] differ and NaNs
    hash stably. *)

val string : t -> string -> t

val list : (t -> 'a -> t) -> t -> 'a list -> t
val array : (t -> 'a -> t) -> t -> 'a array -> t
val pair : (t -> 'a -> t) -> (t -> 'b -> t) -> t -> 'a * 'b -> t

val to_int : t -> int
(** Non-negative native-int digest (both 64-bit halves folded in);
    suitable as a [Hashtbl] hash. *)
