(* Array-backed binary min-heap with the classic sift-up / sift-down
   invariant: a.(i) <= a.(2i+1), a.(2i+2) under cmp for i < len. *)

type 'a t = { mutable a : 'a array; mutable len : int; cmp : 'a -> 'a -> int }

let create ~cmp = { a = [||]; len = 0; cmp }

let length t = t.len

let is_empty t = t.len = 0

let swap a i j =
  let tmp = a.(i) in
  a.(i) <- a.(j);
  a.(j) <- tmp

let push t x =
  if t.len = Array.length t.a then begin
    (* Grow by doubling; the pushed element doubles as the filler for
       the not-yet-used slots. *)
    let a' = Array.make (max 4 (2 * t.len)) x in
    Array.blit t.a 0 a' 0 t.len;
    t.a <- a'
  end;
  let a = t.a in
  let i = ref t.len in
  a.(!i) <- x;
  t.len <- t.len + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let p = (!i - 1) / 2 in
    if t.cmp a.(!i) a.(p) < 0 then begin
      swap a !i p;
      i := p
    end
    else continue := false
  done

let pop t =
  if t.len = 0 then None
  else begin
    let a = t.a in
    let root = a.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      a.(0) <- a.(t.len);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let s = ref !i in
        if l < t.len && t.cmp a.(l) a.(!s) < 0 then s := l;
        if r < t.len && t.cmp a.(r) a.(!s) < 0 then s := r;
        if !s <> !i then begin
          swap a !i !s;
          i := !s
        end
        else continue := false
      done
    end;
    Some root
  end

let peek t = if t.len = 0 then None else Some t.a.(0)
