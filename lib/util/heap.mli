(** Mutable binary heap over a caller-supplied total order.

    [pop] returns the smallest element under [cmp], so a max-heap (e.g.
    a best-first frontier keyed on an upper bound) is obtained by
    flipping the comparison.  Not thread-safe. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** [create ~cmp] is an empty heap ordered by [cmp]. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** O(log n). *)

val pop : 'a t -> 'a option
(** Remove and return the [cmp]-smallest element; O(log n).  Among
    [cmp]-equal elements the extraction order is unspecified — give
    [cmp] a total tie-break when determinism matters. *)

val peek : 'a t -> 'a option
(** The element {!pop} would return, without removing it; O(1). *)
