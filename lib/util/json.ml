(* Minimal JSON: strict parser with a depth cap, compact/pretty
   printers with round-tripping floats.  See json.mli. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ---------------------------------------------------------- parser *)

exception Fail of string * int

let parse ?(max_depth = 64) (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (msg, !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    if
      !pos + String.length word <= n
      && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let hex_digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail "malformed \\u escape"
  in
  let utf8_add b cp =
    (* Encode one scalar value; protocol strings are mostly ASCII, but
       a fuzzer will feed anything. *)
    if cp < 0x80 then Buffer.add_char b (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let string_lit () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some '"' -> Buffer.add_char b '"'; advance (); go ()
        | Some '\\' -> Buffer.add_char b '\\'; advance (); go ()
        | Some '/' -> Buffer.add_char b '/'; advance (); go ()
        | Some 'b' -> Buffer.add_char b '\b'; advance (); go ()
        | Some 'f' -> Buffer.add_char b '\012'; advance (); go ()
        | Some 'n' -> Buffer.add_char b '\n'; advance (); go ()
        | Some 'r' -> Buffer.add_char b '\r'; advance (); go ()
        | Some 't' -> Buffer.add_char b '\t'; advance (); go ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > n then fail "truncated \\u escape";
          let cp =
            (hex_digit s.[!pos] lsl 12)
            lor (hex_digit s.[!pos + 1] lsl 8)
            lor (hex_digit s.[!pos + 2] lsl 4)
            lor hex_digit s.[!pos + 3]
          in
          pos := !pos + 4;
          (* Surrogate pairs collapse to the replacement character:
             nothing in the toolchain emits astral-plane text, and a
             lone surrogate must not produce invalid UTF-8. *)
          utf8_add b (if cp >= 0xD800 && cp <= 0xDFFF then 0xFFFD else cp);
          go ()
        | _ -> fail "invalid escape")
      | Some c when Char.code c < 0x20 -> fail "control character in string"
      | Some c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    if !pos = start then fail "expected value";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec value depth =
    if depth > max_depth then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = string_lit () in
          skip_ws ();
          expect ':';
          let v = value (depth + 1) in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((key, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elements acc =
          let v = value (depth + 1) in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            Arr (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elements []
      end
    | Some '"' -> Str (string_lit ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (number ())
    | None -> fail "unexpected end of input"
  in
  match
    let v = value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail (msg, at) ->
    Error (Printf.sprintf "%s at byte %d" msg at)

(* --------------------------------------------------------- printers *)

let escape_into b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let num_to_string f =
  (* %.17g round-trips every finite double through float_of_string;
     JSON has no NaN/infinity, so those degrade to null. *)
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let rec compact_into b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Num f ->
    if Float.is_nan f || Float.abs f = Float.infinity then
      Buffer.add_string b "null"
    else Buffer.add_string b (num_to_string f)
  | Str s -> escape_into b s
  | Arr vs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char b ',';
        compact_into b v)
      vs;
    Buffer.add_char b ']'
  | Obj kvs ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        escape_into b k;
        Buffer.add_char b ':';
        compact_into b v)
      kvs;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  compact_into b v;
  Buffer.contents b

let to_string_pretty v =
  let b = Buffer.create 256 in
  let pad depth = Buffer.add_string b (String.make (2 * depth) ' ') in
  let rec go depth = function
    | (Null | Bool _ | Num _ | Str _) as v -> compact_into b v
    | Arr [] -> Buffer.add_string b "[]"
    | Arr vs ->
      Buffer.add_string b "[\n";
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_string b ",\n";
          pad (depth + 1);
          go (depth + 1) v)
        vs;
      Buffer.add_char b '\n';
      pad depth;
      Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj kvs ->
      Buffer.add_string b "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string b ",\n";
          pad (depth + 1);
          escape_into b k;
          Buffer.add_string b ": ";
          go (depth + 1) v)
        kvs;
      Buffer.add_char b '\n';
      pad depth;
      Buffer.add_char b '}'
  in
  go 0 v;
  Buffer.contents b

(* -------------------------------------------------------- accessors *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let string_ = function Str s -> Some s | _ -> None
let number = function Num f -> Some f | _ -> None

let int_ = function
  | Num f
    when Float.is_integer f
         && f >= Int.to_float min_int
         && f <= Int.to_float max_int ->
    Some (Float.to_int f)
  | _ -> None

let bool_ = function Bool b -> Some b | _ -> None
let list_ = function Arr vs -> Some vs | _ -> None

let obj fields =
  Obj (List.filter_map (fun (k, v) -> Option.map (fun v -> (k, v)) v) fields)
