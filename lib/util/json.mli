(** Minimal JSON values, parser and printers.

    The toolchain deliberately carries no third-party JSON dependency;
    this module is the one shared implementation behind the serving
    protocol ({!Serve.Protocol}), replacing the ad-hoc parsers that
    individual tools previously embedded.  It covers exactly what those
    producers and consumers need:

    - a strict recursive-descent parser with a nesting-depth cap (deep
      frames fail with [Error], they can never overflow the stack — the
      daemon feeds it untrusted bytes);
    - compact and indented printers whose float rendering ([%.17g])
      round-trips IEEE-754 doubles exactly, so metrics serialised over
      the wire compare bit-identical to in-process evaluation;
    - total accessors returning [option], so protocol code can validate
      field-by-field without exceptions.

    Numbers are represented as [float] (JSON's own model); integers are
    exact up to 2{^53}, far beyond any byte count or counter the
    toolchain emits. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : ?max_depth:int -> string -> (t, string) result
(** [parse s] parses exactly one JSON value spanning the whole of [s]
    (surrounding whitespace allowed; trailing bytes are an error).
    [max_depth] (default 64) bounds array/object nesting.  The error
    message carries the byte offset of the failure. *)

val to_string : t -> string
(** Compact rendering (no insignificant whitespace).
    [parse (to_string v)] reconstructs [v] exactly, NaN and infinities
    excepted (JSON cannot carry them; they render as [null]). *)

val to_string_pretty : t -> string
(** Two-space-indented rendering, for humans ([mccm client] output). *)

val num_to_string : float -> string
(** The printers' float rendering on its own: integral values below
    10{^15} as [%.0f], everything else as [%.17g] (exact double
    round-trip).  Shared with the Prometheus text exporter so scraped
    values match the JSON telemetry bit-for-bit. *)

(** {1 Accessors} — all total; [None] on shape mismatch. *)

val member : string -> t -> t option
(** Field of an object; [None] on missing field or non-object. *)

val string_ : t -> string option
val number : t -> float option

val int_ : t -> int option
(** A number that is integral and within [int] range. *)

val bool_ : t -> bool option
val list_ : t -> t list option

val obj : (string * t option) list -> t
(** Build an object, dropping [None] fields — optional reply fields
    serialise only when set. *)
