let recommended () = Domain.recommended_domain_count ()

let effective ?(clamp = true) ~domains ~n () =
  let d = max 1 domains in
  let d = if clamp then min d (recommended ()) else d in
  min d (max 1 n)

let bounds ~chunks ~n =
  (* Never emit empty chunks: with fewer items than requested chunks the
     tail chunks would all be [(n, n)] — cap the chunk count at [n] (but
     at least 1, so [n = 0] still yields the single empty range). *)
  let chunks = max 1 (min chunks (max 1 n)) in
  let per = n / chunks and rem = n mod chunks in
  let bound i = (i * per) + min i rem in
  Array.init chunks (fun i -> (bound i, bound (i + 1)))

let chunked_map ?clamp ~domains ~n f =
  let d = effective ?clamp ~domains ~n () in
  if d = 1 then [ f ~chunk:0 ~lo:0 ~hi:n ]
  else
    let parts = bounds ~chunks:d ~n in
    let workers =
      Array.mapi
        (fun chunk (lo, hi) -> Domain.spawn (fun () -> f ~chunk ~lo ~hi))
        parts
    in
    Array.to_list (Array.map Domain.join workers)

(* ------------------------------------------------------------- pool *)

module Pool = struct
  (* A persistent crew of worker domains.  The calling domain is worker
     0; [size - 1] spawned domains are workers 1 .. size - 1.  Work
     arrives as whole rounds (a closure every worker runs once),
     announced by bumping [epoch] under the lock; workers park on
     [work] between rounds, the caller parks on [finished] until the
     round's last spawned worker checks out.  One pool serves any
     number of rounds — the per-round cost is a broadcast and a
     condition-variable join, never a [Domain.spawn]. *)

  type t = {
    size : int;
    mutable doms : unit Domain.t array;
    lock : Mutex.t;
    work : Condition.t;
    finished : Condition.t;
    mutable job : (int -> unit) option; (* worker id -> unit *)
    mutable epoch : int;
    mutable busy : int;         (* spawned workers still in this round *)
    mutable stopped : bool;
    mutable failure : exn option; (* first worker exception of the round *)
  }

  let size t = t.size

  let rec worker_loop t ~id my_epoch =
    Mutex.lock t.lock;
    while (not t.stopped) && t.epoch = my_epoch do
      Condition.wait t.work t.lock
    done;
    if t.stopped then Mutex.unlock t.lock
    else begin
      let epoch = t.epoch in
      let job = Option.get t.job in
      Mutex.unlock t.lock;
      let result = try Ok (job id) with exn -> Error exn in
      Mutex.lock t.lock;
      (match result with
      | Ok () -> ()
      | Error exn -> if t.failure = None then t.failure <- Some exn);
      t.busy <- t.busy - 1;
      if t.busy = 0 then Condition.broadcast t.finished;
      Mutex.unlock t.lock;
      worker_loop t ~id epoch
    end

  let create ?clamp ~domains () =
    (* [n] is unknown at pool-creation time, so only the
       recommended-domain clamp applies here; every round's chunking
       re-clamps against its own [n]. *)
    let size = effective ?clamp ~domains ~n:max_int () in
    let t =
      {
        size;
        doms = [||];
        lock = Mutex.create ();
        work = Condition.create ();
        finished = Condition.create ();
        job = None;
        epoch = 0;
        busy = 0;
        stopped = false;
        failure = None;
      }
    in
    (* Worker [w >= 1] lives in [doms.(w - 1)] for the pool's whole
       life, so a caller's per-worker state (say a forked evaluation
       session) stays on the domain that created it. *)
    t.doms <-
      Array.init (size - 1) (fun i ->
          Domain.spawn (fun () -> worker_loop t ~id:(i + 1) 0));
    t

  let shutdown t =
    Mutex.lock t.lock;
    let was_stopped = t.stopped in
    t.stopped <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.lock;
    if not was_stopped then begin
      Array.iter Domain.join t.doms;
      t.doms <- [||]
    end

  let with_pool ?clamp ~domains f =
    let t = create ?clamp ~domains () in
    Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

  let run t job =
    if t.size = 1 then job 0
    else begin
      Mutex.lock t.lock;
      if t.stopped then begin
        Mutex.unlock t.lock;
        invalid_arg "Parallel.Pool.run: pool is shut down"
      end;
      t.failure <- None;
      t.job <- Some job;
      t.epoch <- t.epoch + 1;
      t.busy <- t.size - 1;
      Condition.broadcast t.work;
      Mutex.unlock t.lock;
      let caller = try Ok (job 0) with exn -> Error exn in
      Mutex.lock t.lock;
      while t.busy > 0 do
        Condition.wait t.finished t.lock
      done;
      t.job <- None;
      let worker_failure = t.failure in
      t.failure <- None;
      Mutex.unlock t.lock;
      (match caller with Ok () -> () | Error exn -> raise exn);
      match worker_failure with None -> () | Some exn -> raise exn
    end

  (* Deterministic oversubscribed chunking: enough chunks that one slow
     chunk cannot straggle a whole worker's share (up to 8 per worker),
     but each at least [chunk_hint] items so the per-chunk dispatch (an
     atomic fetch-and-add) stays amortised.  A pure function of
     (size, chunk_hint, n) — never of timing. *)
  let chunk_count t ~chunk_hint ~n =
    if t.size = 1 || n <= 1 then min 1 n
    else max 1 (min n (max t.size (min (t.size * 8) (n / max 1 chunk_hint))))

  let map t ?(chunk_hint = 256) ~n f =
    if n < 0 then invalid_arg "Parallel.Pool.map: negative n";
    if n = 0 then []
    else if t.size = 1 then [ f ~worker:0 ~chunk:0 ~lo:0 ~hi:n ]
    else begin
      let parts = bounds ~chunks:(chunk_count t ~chunk_hint ~n) ~n in
      let chunks = Array.length parts in
      let results = Array.make chunks None in
      let next = Atomic.make 0 in
      run t (fun worker ->
          let rec pull () =
            let chunk = Atomic.fetch_and_add next 1 in
            if chunk < chunks then begin
              let lo, hi = parts.(chunk) in
              results.(chunk) <- Some (f ~worker ~chunk ~lo ~hi);
              pull ()
            end
          in
          pull ());
      Array.to_list
        (Array.map
           (function
             | Some v -> v
             | None -> invalid_arg "Parallel.Pool.map: unfinished chunk")
           results)
    end
end

let map_pooled ?pool ?clamp ?chunk_hint ~domains ~n f =
  match pool with
  | Some p -> Pool.map p ?chunk_hint ~n f
  | None ->
    let d = effective ?clamp ~domains ~n () in
    if d = 1 then [ f ~worker:0 ~chunk:0 ~lo:0 ~hi:n ]
    else
      Pool.with_pool ~clamp:false ~domains:d (fun p ->
          Pool.map p ?chunk_hint ~n f)
