let recommended () = Domain.recommended_domain_count ()

let effective ?(clamp = true) ~domains ~n () =
  let d = max 1 domains in
  let d = if clamp then min d (recommended ()) else d in
  min d (max 1 n)

let bounds ~chunks ~n =
  let chunks = max 1 chunks in
  let per = n / chunks and rem = n mod chunks in
  let bound i = (i * per) + min i rem in
  Array.init chunks (fun i -> (bound i, bound (i + 1)))

let chunked_map ?clamp ~domains ~n f =
  let d = effective ?clamp ~domains ~n () in
  if d = 1 then [ f ~chunk:0 ~lo:0 ~hi:n ]
  else
    let parts = bounds ~chunks:d ~n in
    let workers =
      Array.mapi
        (fun chunk (lo, hi) -> Domain.spawn (fun () -> f ~chunk ~lo ~hi))
        parts
    in
    Array.to_list (Array.map Domain.join workers)
