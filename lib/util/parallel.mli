(** Deterministic fork/join scaffolding for Domains-parallel sweeps.

    Every parallel consumer in the repo (DSE exploration, enumeration,
    validation sweeps) shares the same shape: split [0, n) into
    contiguous chunks, evaluate the chunks on a fixed crew of domains,
    merge in chunk order.  The chunk boundaries depend only on the item
    and worker counts — never on timing — so any per-chunk results can
    be merged in a fixed order and the overall output is
    schedule-independent.

    Two execution strategies share that contract: {!chunked_map} spawns
    one short-lived domain per chunk (simple, but pays a
    [Domain.spawn] per chunk), and {!Pool} keeps a persistent crew of
    worker domains that serve any number of rounds — the right tool
    when a search makes many parallel passes (local-search steps,
    repeated sweeps) or when per-worker warm state (forked evaluation
    sessions) should live as long as the whole search. *)

val recommended : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val effective : ?clamp:bool -> domains:int -> n:int -> unit -> int
(** [effective ~domains ~n ()] is the number of chunks actually used
    for [n] work items: [domains] clamped to at least 1, to
    {!recommended} (unless [~clamp:false] — useful to exercise true
    multi-domain schedules on small machines), and to [n] (but at least
    1 even when [n = 0]). *)

val bounds : chunks:int -> n:int -> (int * int) array
(** [bounds ~chunks ~n] splits [0, n) into contiguous half-open
    intervals [(lo, hi)] whose sizes differ by at most one, earlier
    chunks taking the remainder.  Concatenating them in order yields
    exactly [0, n).  The chunk count is capped at [max 1 n], so no
    returned interval is empty while [n > 0] (asking for more chunks
    than items just returns [n] singletons). *)

val chunked_map :
  ?clamp:bool ->
  domains:int ->
  n:int ->
  (chunk:int -> lo:int -> hi:int -> 'a) ->
  'a list
(** [chunked_map ~domains ~n f] applies [f ~chunk ~lo ~hi] to each
    chunk of [0, n) (see {!bounds}, with {!effective} chunks) and
    returns the results in chunk order.  With one effective chunk the
    call runs inline in the current domain; otherwise one domain is
    spawned per chunk and joined in order.  [f] must be safe to run
    concurrently with itself on disjoint chunks. *)

(** Persistent worker-domain pool. *)
module Pool : sig
  type t
  (** A fixed crew of domains: the creating domain participates as
      worker 0, and [size - 1] spawned domains are workers
      [1 .. size - 1].  Worker ids are stable for the pool's life, so
      per-worker caller state (a forked evaluation session, a scratch
      buffer) stays on the domain that created it across any number of
      {!run}/{!map} rounds. *)

  val create : ?clamp:bool -> domains:int -> unit -> t
  (** [create ~domains ()] spawns the crew once.  [domains] is clamped
      to at least 1 and (unless [~clamp:false]) to {!recommended}.
      Callers are responsible for {!shutdown} — or use {!with_pool}. *)

  val size : t -> int
  (** Total workers, the caller included; [size >= 1]. *)

  val run : t -> (int -> unit) -> unit
  (** [run t job] executes [job worker] once per worker — the caller
      runs [job 0] in its own domain — and returns when every worker
      has finished.  [job] must be safe to run concurrently with itself
      under distinct worker ids.  If any invocation raises, the round
      still completes and one of the exceptions is re-raised (the
      caller's own first); the pool stays usable.
      @raise Invalid_argument after {!shutdown}. *)

  val chunk_count : t -> chunk_hint:int -> n:int -> int
  (** The number of chunks {!map} will use for [n] items: up to 8 per
      worker for load balance, but each at least [chunk_hint] items so
      per-chunk dispatch stays amortised; always in [[1, n]] for
      [n >= 1].  A pure function of [(size t, chunk_hint, n)]. *)

  val map :
    t ->
    ?chunk_hint:int ->
    n:int ->
    (worker:int -> chunk:int -> lo:int -> hi:int -> 'a) ->
    'a list
  (** [map t ~n f] splits [0, n) into {!chunk_count} contiguous chunks
      ({!bounds}; [chunk_hint] defaults to 256), evaluates them on the
      crew — idle workers pull the next unclaimed chunk, so chunk ids
      and bounds are deterministic while the chunk-to-worker assignment
      is not — and returns the results in chunk order.  For a
      schedule-independent overall result, [f]'s output must depend
      only on [(chunk, lo, hi)], never on [worker] (per-worker caches
      that are semantically invisible are fine).  A single-worker pool
      runs one chunk inline.  [n = 0] returns []. *)

  val shutdown : t -> unit
  (** Stop and join the spawned domains.  Idempotent.  Any later
      {!run}/{!map} with [size > 1] raises. *)

  val with_pool : ?clamp:bool -> domains:int -> (t -> 'a) -> 'a
  (** [with_pool ~domains f] is [f (create ~domains ())] with a
      guaranteed {!shutdown}, even on exceptions. *)
end

val map_pooled :
  ?pool:Pool.t ->
  ?clamp:bool ->
  ?chunk_hint:int ->
  domains:int ->
  n:int ->
  (worker:int -> chunk:int -> lo:int -> hi:int -> 'a) ->
  'a list
(** [map_pooled ~domains ~n f] is {!Pool.map} on [pool] when given
    (then [domains]/[clamp] are ignored — the pool's size rules), and
    otherwise a convenience wrapper that runs inline when
    [effective ~domains ~n] is 1 or inside a temporary
    {!Pool.with_pool} crew of that size when it is not. *)
