(** Deterministic fork/join scaffolding for Domains-parallel sweeps.

    Every parallel consumer in the repo (DSE exploration, enumeration,
    validation sweeps) shares the same shape: split [0, n) into [d]
    contiguous chunks, run one domain per chunk, join in chunk order.
    The chunk boundaries depend only on [(d, n)] — never on timing — so
    any per-chunk results can be merged in a fixed order and the overall
    output is schedule-independent. *)

val recommended : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val effective : ?clamp:bool -> domains:int -> n:int -> unit -> int
(** [effective ~domains ~n ()] is the number of chunks actually used
    for [n] work items: [domains] clamped to at least 1, to
    {!recommended} (unless [~clamp:false] — useful to exercise true
    multi-domain schedules on small machines), and to [n] (but at least
    1 even when [n = 0]). *)

val bounds : chunks:int -> n:int -> (int * int) array
(** [bounds ~chunks ~n] splits [0, n) into [chunks] contiguous
    half-open intervals [(lo, hi)] whose sizes differ by at most one,
    earlier chunks taking the remainder.  Concatenating them in order
    yields exactly [0, n). *)

val chunked_map :
  ?clamp:bool ->
  domains:int ->
  n:int ->
  (chunk:int -> lo:int -> hi:int -> 'a) ->
  'a list
(** [chunked_map ~domains ~n f] applies [f ~chunk ~lo ~hi] to each
    chunk of [0, n) (see {!bounds}, with {!effective} chunks) and
    returns the results in chunk order.  With one effective chunk the
    call runs inline in the current domain; otherwise one domain is
    spawned per chunk and joined in order.  [f] must be safe to run
    concurrently with itself on disjoint chunks. *)
