let require_non_empty name l =
  if l = [] then invalid_arg (name ^ ": empty list")

let mean l =
  require_non_empty "Stats.mean" l;
  List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let geomean l =
  require_non_empty "Stats.geomean" l;
  let log_sum =
    List.fold_left
      (fun acc x ->
        if x <= 0.0 then invalid_arg "Stats.geomean: non-positive element"
        else acc +. log x)
      0.0 l
  in
  exp (log_sum /. float_of_int (List.length l))

let minimum l =
  require_non_empty "Stats.minimum" l;
  List.fold_left min infinity l

let maximum l =
  require_non_empty "Stats.maximum" l;
  List.fold_left max neg_infinity l

let stddev l =
  require_non_empty "Stats.stddev" l;
  let m = mean l in
  let var =
    List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 l
    /. float_of_int (List.length l)
  in
  sqrt var

let percentile l ~p =
  require_non_empty "Stats.percentile" l;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = List.sort compare l in
  let n = List.length sorted in
  let rank =
    if p = 0.0 then 1
    else int_of_float (ceil (p /. 100.0 *. float_of_int n))
  in
  List.nth sorted (Int_math.clamp ~lo:0 ~hi:(n - 1) (rank - 1))

let quantile l ~q =
  require_non_empty "Stats.quantile" l;
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.quantile: q out of range";
  let a = Array.of_list (List.sort compare l) in
  let n = Array.length a in
  if n = 1 then a.(0)
  else begin
    (* Linear interpolation between closest ranks (Hyndman–Fan type 7,
       the numpy/R default): h = (n - 1) q lands between a.(i) and
       a.(i + 1). *)
    let h = q *. float_of_int (n - 1) in
    let i = Int_math.clamp ~lo:0 ~hi:(n - 2) (int_of_float (Float.floor h)) in
    let frac = h -. float_of_int i in
    a.(i) +. (frac *. (a.(i + 1) -. a.(i)))
  end

let arg_by better f l =
  match l with
  | [] -> invalid_arg "Stats.argmin/argmax: empty list"
  | x :: rest ->
    let best, _ =
      List.fold_left
        (fun (bx, bv) y ->
          let v = f y in
          if better v bv then (y, v) else (bx, bv))
        (x, f x) rest
    in
    best

let argmin f l = arg_by ( < ) f l
let argmax f l = arg_by ( > ) f l
