(** Small descriptive-statistics helpers for result aggregation
    (accuracy summaries of Table IV, sweep post-processing). *)

val mean : float list -> float
(** Arithmetic mean.  @raise Invalid_argument on an empty list. *)

val geomean : float list -> float
(** Geometric mean of positive values.  @raise Invalid_argument on an empty
    list or any non-positive element. *)

val minimum : float list -> float
(** Smallest element.  @raise Invalid_argument on an empty list. *)

val maximum : float list -> float
(** Largest element.  @raise Invalid_argument on an empty list. *)

val stddev : float list -> float
(** Population standard deviation.  @raise Invalid_argument on an empty
    list. *)

val percentile : float list -> p:float -> float
(** [percentile l ~p] for [p] in [\[0, 100\]], nearest-rank method.
    @raise Invalid_argument on an empty list or [p] outside the range. *)

val quantile : float list -> q:float -> float
(** [quantile l ~q] for [q] in [\[0, 1\]], linear interpolation between
    closest ranks (Hyndman–Fan type 7: the value at fractional rank
    [(n - 1) q] of the sorted list).  [quantile ~q:0.0] is the minimum,
    [~q:1.0] the maximum, [~q:0.5] the median.  Used for the span
    duration p50/p95/p99 of {!Mccm_obs}'s metric snapshots.
    @raise Invalid_argument on an empty list or [q] outside the
    range. *)

val argmin : ('a -> float) -> 'a list -> 'a
(** [argmin f l] is the element minimising [f].  @raise Invalid_argument on
    an empty list. *)

val argmax : ('a -> float) -> 'a list -> 'a
(** [argmax f l] is the element maximising [f].  @raise Invalid_argument on
    an empty list. *)
