type arch_spec =
  | Segmented of int
  | Segmented_rr of int
  | Hybrid of int
  | Custom of Arch.Custom.spec

type t = {
  label : string;
  model : Cnn.Model.t;
  board : Platform.Board.t;
  arch : arch_spec;
}

let v ?(label = "case") model board arch = { label; model; board; arch }

let ces = function
  | Segmented n | Segmented_rr n | Hybrid n -> n
  | Custom spec -> Arch.Custom.total_ces spec

let materialize t =
  match t.arch with
  | Segmented ces -> Arch.Baselines.segmented ~ces t.model
  | Segmented_rr ces -> Arch.Baselines.segmented_rr ~ces t.model
  | Hybrid ces -> Arch.Baselines.hybrid ~ces t.model
  | Custom spec -> Arch.Custom.arch_of_spec t.model spec

let arch_to_string = function
  | Segmented n -> Printf.sprintf "segmented %d" n
  | Segmented_rr n -> Printf.sprintf "segmented_rr %d" n
  | Hybrid n -> Printf.sprintf "hybrid %d" n
  | Custom { Arch.Custom.pipelined_layers; tail_boundaries } ->
    Printf.sprintf "custom %d %s" pipelined_layers
      (match tail_boundaries with
      | [] -> "-"
      | bs -> String.concat "," (List.map string_of_int bs))

let arch_of_string s =
  match String.split_on_char ' ' (String.trim s) with
  | [ "segmented"; n ] -> Ok (Segmented (int_of_string n))
  | [ "segmented_rr"; n ] -> Ok (Segmented_rr (int_of_string n))
  | [ "hybrid"; n ] -> Ok (Hybrid (int_of_string n))
  | [ "custom"; f; bs ] ->
    let tail_boundaries =
      if bs = "-" then []
      else List.map int_of_string (String.split_on_char ',' bs)
    in
    Ok (Custom { Arch.Custom.pipelined_layers = int_of_string f; tail_boundaries })
  | _ -> Error (Printf.sprintf "unreadable arch %S" s)

let arch_of_string s =
  try arch_of_string s
  with Failure _ -> Error (Printf.sprintf "unreadable arch %S" s)

(* Boards serialise by name when they are catalogue boards and by raw
   parameters otherwise.  [bram_bytes / 1048576.] and the [%h] hex floats
   round-trip bit-exactly, which the corpus relies on: a replayed case
   must evaluate to the very same numbers. *)
let board_to_string (b : Platform.Board.t) =
  match Platform.Board.by_name b.Platform.Board.name with
  | Some known when known = b -> Printf.sprintf "board %s" b.Platform.Board.name
  | Some _ | None ->
    Printf.sprintf "board raw %s %d %d %h %h %d"
      (String.map (fun c -> if c = ' ' then '-' else c) b.Platform.Board.name)
      b.Platform.Board.dsps b.Platform.Board.bram_bytes
      b.Platform.Board.bandwidth_bytes_per_sec b.Platform.Board.clock_hz
      b.Platform.Board.bytes_per_element

let board_of_string s =
  match String.split_on_char ' ' (String.trim s) with
  | [ "board"; name ] -> (
    match Platform.Board.by_name name with
    | Some b -> Ok b
    | None -> Error (Printf.sprintf "unknown board %S" name))
  | [ "board"; "raw"; name; dsps; bram_bytes; bw; clock; bpe ] -> (
    try
      Ok
        (Platform.Board.v ~name ~dsps:(int_of_string dsps)
           ~bram_mib:(float_of_string bram_bytes /. 1048576.0)
           ~bandwidth_gb_per_sec:(float_of_string bw /. 1e9)
           ~clock_mhz:(float_of_string clock /. 1e6)
           ~bytes_per_element:(int_of_string bpe) ())
    with Failure _ | Invalid_argument _ ->
      Error (Printf.sprintf "unreadable raw board %S" s))
  | _ -> Error (Printf.sprintf "unreadable board %S" s)

let scale_board ?(dsps_x = 1) ?(bram_x = 1) ?(bw_x = 1.0) (b : Platform.Board.t)
    =
  Platform.Board.v
    ~name:(b.Platform.Board.name ^ "+")
    ~dsps:(b.Platform.Board.dsps * dsps_x)
    ~bram_mib:(float_of_int (b.Platform.Board.bram_bytes * bram_x) /. 1048576.0)
    ~bandwidth_gb_per_sec:(b.Platform.Board.bandwidth_bytes_per_sec *. bw_x /. 1e9)
    ~clock_mhz:(b.Platform.Board.clock_hz /. 1e6)
    ~bytes_per_element:b.Platform.Board.bytes_per_element ()

let to_string t =
  String.concat "\n"
    [
      Printf.sprintf "case %s" t.label;
      board_to_string t.board;
      Printf.sprintf "arch %s" (arch_to_string t.arch);
      "model";
      String.trim (Cnn.Model_io.to_string t.model);
      "endmodel";
      "endcase";
      "";
    ]

(* Consume one [case .. endcase] block from [lines]; returns the parsed
   case and the remaining lines.  Blank lines and ['#'] comments between
   cases are skipped. *)
let of_lines lines =
  let ( let* ) = Result.bind in
  let rec skip_blank = function
    | l :: rest when String.trim l = "" || String.trim l <> "" && (String.trim l).[0] = '#'
      -> skip_blank rest
    | rest -> rest
  in
  match skip_blank lines with
  | [] -> Ok None
  | first :: rest ->
    let* label =
      match String.split_on_char ' ' (String.trim first) with
      | "case" :: l -> Ok (String.concat " " l)
      | _ -> Error (Printf.sprintf "expected 'case <label>', got %S" first)
    in
    let* board, rest =
      match rest with
      | b :: rest -> Result.map (fun b -> (b, rest)) (board_of_string b)
      | [] -> Error "missing board line"
    in
    let* arch, rest =
      match rest with
      | a :: rest -> (
        match String.split_on_char ' ' (String.trim a) with
        | "arch" :: spec ->
          Result.map
            (fun a -> (a, rest))
            (arch_of_string (String.concat " " spec))
        | _ -> Error (Printf.sprintf "expected 'arch ...', got %S" a))
      | [] -> Error "missing arch line"
    in
    let* rest =
      match rest with
      | m :: rest when String.trim m = "model" -> Ok rest
      | _ -> Error "expected 'model'"
    in
    let rec take_model acc = function
      | l :: rest when String.trim l = "endmodel" -> Ok (List.rev acc, rest)
      | l :: rest -> take_model (l :: acc) rest
      | [] -> Error "unterminated model block"
    in
    let* model_lines, rest = take_model [] rest in
    let* model = Cnn.Model_io.of_string (String.concat "\n" model_lines) in
    let* rest =
      match rest with
      | e :: rest when String.trim e = "endcase" -> Ok rest
      | _ -> Error "expected 'endcase'"
    in
    Ok (Some ({ label; model; board; arch }, rest))

let of_string s =
  match of_lines (String.split_on_char '\n' s) with
  | Ok (Some (t, _)) -> Ok t
  | Ok None -> Error "empty case text"
  | Error e -> Error e

let pp ppf t =
  Format.fprintf ppf "%s: %s (%d layers) on %s, %s" t.label
    t.model.Cnn.Model.abbreviation
    (Cnn.Model.num_layers t.model)
    t.board.Platform.Board.name (arch_to_string t.arch)
