(** One differential-validation case: a (CNN model, board, architecture)
    triple.

    The architecture is kept as a {e recipe} (baseline style + CE count,
    or a custom spec) rather than a materialised block list, so cases can
    be shrunk — a recipe re-materialises against a truncated model — and
    serialised to the regression corpus.  Serialisation is exact: known
    boards round-trip by name, synthetic boards by raw parameters with
    hex ([%h]) floats, and models through {!Cnn.Model_io}, so a replayed
    case evaluates to bit-identical metrics. *)

type arch_spec =
  | Segmented of int       (** [Arch.Baselines.segmented ~ces] *)
  | Segmented_rr of int    (** [Arch.Baselines.segmented_rr ~ces] *)
  | Hybrid of int          (** [Arch.Baselines.hybrid ~ces] *)
  | Custom of Arch.Custom.spec

type t = {
  label : string;
  model : Cnn.Model.t;
  board : Platform.Board.t;
  arch : arch_spec;
}

val v : ?label:string -> Cnn.Model.t -> Platform.Board.t -> arch_spec -> t

val ces : arch_spec -> int
(** Engines the recipe uses. *)

val materialize : t -> Arch.Block.arch
(** Instantiate the recipe against the case's model.
    @raise Invalid_argument when the recipe is out of range for the
    model (shrinkers must guard against this). *)

val scale_board :
  ?dsps_x:int -> ?bram_x:int -> ?bw_x:float -> Platform.Board.t ->
  Platform.Board.t
(** Multiply a board's resource budgets — the metamorphic step of the
    monotonicity invariants. *)

val arch_to_string : arch_spec -> string
val arch_of_string : string -> (arch_spec, string) result

val to_string : t -> string
(** Render as a [case .. endcase] text block, newline-terminated. *)

val of_string : string -> (t, string) result
(** Parse a single [case .. endcase] block. *)

val of_lines :
  string list -> ((t * string list) option, string) result
(** Consume one case block from a line stream, skipping leading blank and
    comment lines; [Ok None] at end of input.  Returns the remaining
    lines, so a corpus file parses by iteration. *)

val pp : Format.formatter -> t -> unit
(** One-line description. *)
