let of_string s =
  let rec loop acc lines =
    match Case.of_lines lines with
    | Ok None -> Ok (List.rev acc)
    | Ok (Some (case, rest)) -> loop (case :: acc) rest
    | Error e ->
      Error (Printf.sprintf "corpus entry %d: %s" (List.length acc + 1) e)
  in
  loop [] (String.split_on_char '\n' s)

let to_string cases = String.concat "\n" (List.map Case.to_string cases)

let load path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> of_string (really_input_string ic (in_channel_length ic)))

let save path cases =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string cases))

let append path case =
  let existing = match load path with Ok cs -> cs | Error _ -> [] in
  save path (existing @ [ case ])
