(** The committed regression corpus: a text file of [case .. endcase]
    blocks ({!Case.to_string} format).

    Every case that ever failed validation is appended here (shrunk
    form) and replayed at the start of every sweep, before any random
    generation — a fixed bug stays fixed.  Serialisation is exact, so a
    replayed case exercises the very same numbers that failed. *)

val of_string : string -> (Case.t list, string) result
val to_string : Case.t list -> string

val load : string -> (Case.t list, string) result
(** [Error] carries the system or parse error message. *)

val save : string -> Case.t list -> unit
val append : string -> Case.t -> unit
(** Append one case, preserving existing entries (an unreadable file is
    treated as empty). *)
