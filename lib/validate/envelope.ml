type t = {
  latency : float;
  throughput : float;
  accesses : float;
  buffers : float;
}

type errors = t

(* "Exact" allows for float summation-order differences only: the model
   sums seconds where the simulator sums cycles, so agreement is ulp
   level (worst observed 5e-14), never bit level.  Byte counts carry no
   rounding and must match exactly. *)
let exact = { latency = 1e-9; throughput = 1e-9; accesses = 0.0; buffers = 0.0 }

(* Bounds for the realistic simulator configuration on workloads above
   the overhead floor (see {!Invariant.realistic_envelope}), set with
   margin over the worst errors measured across seeded 400-case sweeps
   (docs/MODEL.md records the measurement: latency <= 0.40,
   throughput <= 1.19, buffers <= 0.57 at the 1 ms floor).  Access
   replay is exact by construction; throughput carries the widest band
   because the simulated initiation interval also pays per-burst DMA
   latency and per-tile sync that Eq. 3 folds away. *)
let default =
  { latency = 0.50; throughput = 1.50; accesses = 0.0; buffers = 0.75 }

let rel ~reference actual =
  if Float.abs reference > 0.0 then
    Float.abs (actual -. reference) /. Float.abs reference
  else Float.abs actual

let errors ~model ~sim =
  {
    latency =
      rel ~reference:sim.Mccm.Metrics.latency_s model.Mccm.Metrics.latency_s;
    throughput =
      rel ~reference:sim.Mccm.Metrics.throughput_ips
        model.Mccm.Metrics.throughput_ips;
    accesses =
      rel
        ~reference:(float_of_int (Mccm.Metrics.accesses_bytes sim))
        (float_of_int (Mccm.Metrics.accesses_bytes model));
    buffers =
      rel
        ~reference:(float_of_int sim.Mccm.Metrics.buffer_bytes)
        (float_of_int model.Mccm.Metrics.buffer_bytes);
  }

let worst a b =
  {
    latency = Float.max a.latency b.latency;
    throughput = Float.max a.throughput b.throughput;
    accesses = Float.max a.accesses b.accesses;
    buffers = Float.max a.buffers b.buffers;
  }

let zero = { latency = 0.0; throughput = 0.0; accesses = 0.0; buffers = 0.0 }

let violations t (e : errors) =
  List.filter_map
    (fun (name, err, bound) -> if err > bound then Some (name, err, bound) else None)
    [
      ("latency", e.latency, t.latency);
      ("throughput", e.throughput, t.throughput);
      ("accesses", e.accesses, t.accesses);
      ("buffers", e.buffers, t.buffers);
    ]

let pp ppf e =
  Format.fprintf ppf
    "latency %.2e  throughput %.2e  accesses %.2e  buffers %.2e" e.latency
    e.throughput e.accesses e.buffers
