(** Per-metric relative-error envelopes for analytical-vs-simulated
    comparison.

    The simulator is treated as ground truth (the role Vitis HLS plays
    in the paper's Table IV): errors are [|model - sim| / |sim|], per
    metric.  An envelope states how far the analytical model may deviate
    before the comparison counts as a failure. *)

type t = {
  latency : float;
  throughput : float;
  accesses : float;   (** byte counts replay exactly: bound is 0 *)
  buffers : float;
}

type errors = t
(** Measured relative errors, same shape as the bounds. *)

val exact : t
(** The ideal-configuration envelope: 1e-9 on the time metrics (float
    summation order only), exact byte counts. *)

val default : t
(** The realistic-configuration envelope documented in docs/MODEL.md. *)

val errors : model:Mccm.Metrics.t -> sim:Mccm.Metrics.t -> errors
(** Per-metric relative errors of [model] against [sim]. *)

val zero : errors
val worst : errors -> errors -> errors
(** Componentwise maximum — fold it over a sweep for the error table. *)

val violations : t -> errors -> (string * float * float) list
(** [(metric, error, bound)] for every metric exceeding its bound. *)

val pp : Format.formatter -> errors -> unit
