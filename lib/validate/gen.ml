let zoo = lazy (Array.of_list (Cnn.Model_zoo.extended ()))
let boards = Array.of_list Platform.Board.all

(* Synthetic CNNs stress shapes the zoo does not: odd channel counts,
   aggressive stride chains, shortcut residency on arbitrary layers. *)
let synthetic_model rng ~index =
  let n = Util.Prng.int_in_range rng ~lo:4 ~hi:18 in
  let spatial = Util.Prng.choose rng [| 8; 14; 16; 28; 32; 56 |] in
  let ch0 = Util.Prng.choose rng [| 3; 8; 16; 24 |] in
  let shape = ref (Cnn.Shape.v ~channels:ch0 ~height:spatial ~width:spatial) in
  let layers =
    List.init n (fun i ->
        let in_shape = !shape in
        let c = in_shape.Cnn.Shape.channels in
        let kind =
          match Util.Prng.int rng ~bound:10 with
          | 0 | 1 -> Cnn.Layer.Depthwise
          | 2 | 3 | 4 -> Cnn.Layer.Pointwise
          | _ -> Cnn.Layer.Standard
        in
        let kernel =
          match kind with
          | Cnn.Layer.Pointwise | Cnn.Layer.Fully_connected -> 1
          | Cnn.Layer.Depthwise | Cnn.Layer.Standard ->
            Util.Prng.choose rng [| 3; 3; 3; 5 |]
        in
        let stride =
          if
            in_shape.Cnn.Shape.height >= 4
            && Util.Prng.int rng ~bound:5 = 0
          then 2
          else 1
        in
        let out_channels =
          match kind with
          | Cnn.Layer.Depthwise -> c
          | _ -> min 256 (c * Util.Prng.choose rng [| 1; 1; 2 |])
        in
        let extra_resident_elements =
          if Util.Prng.int rng ~bound:8 = 0 then
            Cnn.Shape.elements in_shape
          else 0
        in
        let l =
          Cnn.Layer.v ~index:i
            ~name:(Printf.sprintf "l%d" (i + 1))
            ~kind ~in_shape ~out_channels ~kernel ~stride
            ~padding:(kernel / 2) ~extra_resident_elements ()
        in
        shape := Cnn.Layer.out_shape l;
        l)
  in
  Cnn.Model.v
    ~name:(Printf.sprintf "Synthetic-%d" index)
    ~abbreviation:(Printf.sprintf "Syn%d" index)
    ~layers

let model rng ~index =
  if Util.Prng.int rng ~bound:10 < 3 then
    Util.Prng.choose rng (Lazy.force zoo)
  else synthetic_model rng ~index

let board rng ~index =
  if Util.Prng.bool rng then Util.Prng.choose rng boards
  else
    let kib = Util.Prng.int_in_range rng ~lo:512 ~hi:32768 in
    Platform.Board.v
      ~name:(Printf.sprintf "RB%d" index)
      ~dsps:(Util.Prng.int_in_range rng ~lo:64 ~hi:4096)
      ~bram_mib:(float_of_int kib /. 1024.0)
      ~bandwidth_gb_per_sec:
        (float_of_int (Util.Prng.int_in_range rng ~lo:10 ~hi:400) /. 10.0)
      ~clock_mhz:(float_of_int (Util.Prng.int_in_range rng ~lo:100 ~hi:400))
      ~bytes_per_element:(Util.Prng.choose rng [| 1; 2; 2; 4 |])
      ()

let arch rng ~num_layers =
  let max_ces = min 8 num_layers in
  let baseline_ces = Util.Prng.int_in_range rng ~lo:2 ~hi:(max 2 max_ces) in
  match Util.Prng.int rng ~bound:4 with
  | 0 -> Case.Segmented baseline_ces
  | 1 -> Case.Segmented_rr baseline_ces
  | 2 -> Case.Hybrid baseline_ces
  | _ ->
    let ce_counts =
      List.filter (fun c -> c <= num_layers - 1)
        (List.init 7 (fun i -> i + 2))
    in
    if ce_counts = [] then Case.Segmented baseline_ces
    else Case.Custom (Dse.Space.random_spec rng ~num_layers ~ce_counts)

let case rng ~index =
  let m = model rng ~index in
  Case.v
    ~label:(Printf.sprintf "gen-%d" index)
    m (board rng ~index)
    (arch rng ~num_layers:(Cnn.Model.num_layers m))
