(** Seeded random generation of validation cases.

    Draws (model, board, architecture) triples from a {!Util.Prng}
    stream: ~30% zoo networks / 70% synthetic CNNs, ~50% catalogue
    boards / 50% random boards, and a uniform mix of the three baseline
    styles and random custom specs.  Every generated recipe is valid for
    its model (CE counts are clamped to the layer count), so
    {!Case.materialize} never raises on a generated case.  Equal seeds
    yield equal case streams. *)

val synthetic_model : Util.Prng.t -> index:int -> Cnn.Model.t
(** A random 4-18 layer CNN mixing standard/depthwise/pointwise
    convolutions, strides and residual residency.  [index] only names
    the model. *)

val model : Util.Prng.t -> index:int -> Cnn.Model.t
val board : Util.Prng.t -> index:int -> Platform.Board.t
val arch : Util.Prng.t -> num_layers:int -> Case.arch_spec

val case : Util.Prng.t -> index:int -> Case.t
(** One full triple, labelled ["gen-<index>"]. *)
