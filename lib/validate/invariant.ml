type ctx = {
  case : Case.t;
  built : Builder.Build.t;
  model_eval : Mccm.Evaluate.t;
  sim_real : Sim.Simulate.t;
  sim_ideal : Sim.Simulate.t;
}

type outcome = Pass | Skip of string | Fail of string

type t = { name : string; check : ctx -> outcome }

let context case =
  let archi = Case.materialize case in
  let built = Builder.Build.build case.Case.model case.Case.board archi in
  {
    case;
    built;
    model_eval = Mccm.Evaluate.run built;
    sim_real = Sim.Simulate.run built;
    sim_ideal = Sim.Simulate.run ~cfg:Sim.Sim_config.ideal built;
  }

let feasible ctx = ctx.model_eval.Mccm.Evaluate.metrics.Mccm.Metrics.feasible

let rebuild_scaled ctx ?dsps_x ?bram_x ?bw_x () =
  let board = Case.scale_board ?dsps_x ?bram_x ?bw_x ctx.case.Case.board in
  Builder.Build.build ctx.case.Case.model board (Case.materialize ctx.case)

(* Tile geometry of a plan, ignoring retention and capacity grants: when
   it is unchanged across a board scaling, the access model is provably
   monotone (the DP only gains options), so those comparisons run with
   zero tolerance. *)
let tiling_shape (d : Builder.Build.t) =
  Array.to_list
    (Array.map
       (function
         | Builder.Buffer_alloc.Plan_single s ->
           `S s.Builder.Buffer_alloc.weights_tile_bytes
         | Builder.Buffer_alloc.Plan_pipelined p ->
           `P
             ( Array.to_list p.Builder.Buffer_alloc.tile_rows,
               p.Builder.Buffer_alloc.width_split ))
       d.Builder.Build.plan.Builder.Buffer_alloc.block_plans)

let same_plan (a : Builder.Build.t) (b : Builder.Build.t) =
  a.Builder.Build.plan = b.Builder.Build.plan

let latency_of e = e.Mccm.Evaluate.metrics.Mccm.Metrics.latency_s
let accesses_of e = Mccm.Metrics.accesses_bytes e.Mccm.Evaluate.metrics

let sanity =
  {
    name = "sanity";
    check =
      (fun ctx ->
        let m = ctx.model_eval.Mccm.Evaluate.metrics in
        let bad name v =
          if Float.is_nan v || v <= 0.0 then Some (name, v) else None
        in
        match
          List.find_map
            (fun (n, v) -> bad n v)
            [
              ("latency", m.Mccm.Metrics.latency_s);
              ("throughput", m.Mccm.Metrics.throughput_ips);
            ]
        with
        | Some (n, v) -> Fail (Printf.sprintf "%s = %g" n v)
        | None ->
          if
            m.Mccm.Metrics.feasible
            && m.Mccm.Metrics.buffer_bytes
               > ctx.case.Case.board.Platform.Board.bram_bytes
          then
            Fail
              (Printf.sprintf "feasible but buffers %d > BRAM %d"
                 m.Mccm.Metrics.buffer_bytes
                 ctx.case.Case.board.Platform.Board.bram_bytes)
          else Pass);
  }

let sim_dominates =
  {
    name = "sim-dominates";
    check =
      (fun ctx ->
        let m = ctx.model_eval.Mccm.Evaluate.metrics in
        let s = ctx.sim_real.Sim.Simulate.metrics in
        if
          s.Mccm.Metrics.latency_s
          < m.Mccm.Metrics.latency_s *. (1.0 -. 1e-9)
        then
          Fail
            (Printf.sprintf "sim latency %g below analytical bound %g"
               s.Mccm.Metrics.latency_s m.Mccm.Metrics.latency_s)
        else if
          Mccm.Metrics.accesses_bytes s <> Mccm.Metrics.accesses_bytes m
        then
          Fail
            (Printf.sprintf "sim accesses %d <> analytical %d"
               (Mccm.Metrics.accesses_bytes s)
               (Mccm.Metrics.accesses_bytes m))
        else if s.Mccm.Metrics.buffer_bytes < m.Mccm.Metrics.buffer_bytes then
          Fail
            (Printf.sprintf "sim buffers %d below analytical %d"
               s.Mccm.Metrics.buffer_bytes m.Mccm.Metrics.buffer_bytes)
        else Pass);
  }

let envelope_check name bounds metrics_of =
  {
    name;
    check =
      (fun ctx ->
        let e =
          Envelope.errors
            ~model:ctx.model_eval.Mccm.Evaluate.metrics
            ~sim:(metrics_of ctx)
        in
        match Envelope.violations bounds e with
        | [] -> Pass
        | vs ->
          Fail
            (String.concat "; "
               (List.map
                  (fun (metric, err, bound) ->
                    Printf.sprintf "%s error %.3g > %.3g" metric err bound)
                  vs)));
  }

let ideal_exact =
  envelope_check "ideal-exact" Envelope.exact (fun ctx ->
      ctx.sim_ideal.Sim.Simulate.metrics)

(* Below this analytical latency the workload is overhead-dominated:
   fixed per-layer setup and per-tile sync costs swamp the transfer and
   compute terms the model captures, and relative errors are unbounded
   (a 4-layer 8x8 network is all setup).  The envelope is documented
   for, and enforced on, workloads at realistic scale only. *)
let envelope_latency_floor_s = 1e-3

let realistic_envelope bounds =
  let e = envelope_check "realistic-envelope" bounds (fun ctx ->
      ctx.sim_real.Sim.Simulate.metrics)
  in
  {
    e with
    check =
      (fun ctx ->
        let l = latency_of ctx.model_eval in
        if l < envelope_latency_floor_s then
          Skip
            (Printf.sprintf
               "overhead-dominated workload (latency %g s below %g s floor)" l
               envelope_latency_floor_s)
        else e.check ctx);
  }

let mono_bandwidth =
  {
    name = "mono-bandwidth";
    check =
      (fun ctx ->
        if not (feasible ctx) then Skip "infeasible base design"
        else begin
          let scaled = Mccm.Evaluate.run (rebuild_scaled ctx ~bw_x:2.0 ()) in
          let l0 = latency_of ctx.model_eval and l1 = latency_of scaled in
          let mb e =
            Mccm.Breakdown.memory_bound_count e.Mccm.Evaluate.breakdown
          in
          if l1 > l0 *. (1.0 +. 1e-9) then
            Fail (Printf.sprintf "2x bandwidth: latency %g -> %g" l0 l1)
          else if mb scaled > mb ctx.model_eval then
            Fail
              (Printf.sprintf "2x bandwidth: memory-bound segments %d -> %d"
                 (mb ctx.model_eval) (mb scaled))
          else Pass
        end);
  }

let mono_dsps ~replan_slack =
  {
    name = "mono-dsps";
    check =
      (fun ctx ->
        if not (feasible ctx) then Skip "infeasible base design"
        else begin
          let built = rebuild_scaled ctx ~dsps_x:2 () in
          let scaled = Mccm.Evaluate.run built in
          let l0 = latency_of ctx.model_eval and l1 = latency_of scaled in
          if same_plan ctx.built built then
            if l1 > l0 *. (1.0 +. 1e-9) then
              Fail
                (Printf.sprintf "2x DSPs, same plan: latency %g -> %g" l0 l1)
            else Pass
          else if l1 > l0 *. (1.0 +. replan_slack) then
            Fail
              (Printf.sprintf
                 "2x DSPs: latency %g -> %g (+%.1f%%, replanned, slack %.0f%%)"
                 l0 l1
                 (100.0 *. ((l1 /. l0) -. 1.0))
                 (100.0 *. replan_slack))
          else Pass
        end);
  }

let mono_bram ~replan_slack =
  {
    name = "mono-bram";
    check =
      (fun ctx ->
        if not (feasible ctx) then Skip "infeasible base design"
        else begin
          let built = rebuild_scaled ctx ~bram_x:2 () in
          let scaled = Mccm.Evaluate.run built in
          let a0 = accesses_of ctx.model_eval and a1 = accesses_of scaled in
          if tiling_shape ctx.built = tiling_shape built then
            if a1 > a0 then
              Fail
                (Printf.sprintf "2x BRAM, same tiling: accesses %d -> %d" a0
                   a1)
            else Pass
          else if float_of_int a1 > float_of_int a0 *. (1.0 +. replan_slack)
          then
            Fail
              (Printf.sprintf
                 "2x BRAM: accesses %d -> %d (+%.1f%%, replanned, slack %.0f%%)"
                 a0 a1
                 (100.0 *. ((float_of_int a1 /. float_of_int a0) -. 1.0))
                 (100.0 *. replan_slack))
          else Pass
        end);
  }

let cache_exact =
  {
    name = "cache-exact";
    check =
      (fun ctx ->
        (* Run the case twice through a fresh memoized session: the first
           evaluation exercises the segment/plan caches bottom-up, the
           second is a whole-architecture hit.  Both must equal the
           uncached reference bit for bit — the session contract is that
           caching is semantically invisible. *)
        let session =
          Mccm.Eval_session.create ctx.case.Case.model ctx.case.Case.board
        in
        let archi = Case.materialize ctx.case in
        match Mccm.Eval_session.metrics_batch session [ archi; archi ] with
        | [ cold; warm ] ->
          let reference = ctx.model_eval.Mccm.Evaluate.metrics in
          if cold <> reference then
            Fail "cold cached metrics differ from uncached evaluation"
          else if warm <> reference then
            Fail "memoized metrics differ from uncached evaluation"
          else Pass
        | _ -> Fail "metrics_batch did not preserve arity");
  }

let default_suite ?(envelope = Envelope.default) ?(replan_slack = 0.5) () =
  [
    sanity;
    cache_exact;
    sim_dominates;
    ideal_exact;
    realistic_envelope envelope;
    mono_bandwidth;
    mono_dsps ~replan_slack;
    mono_bram ~replan_slack;
  ]
