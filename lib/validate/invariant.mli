(** The differential-validation invariant suite.

    Each invariant is a named check over a fully evaluated case — the
    analytical evaluation plus two simulator runs (realistic and ideal
    configurations).  The default suite checks, in order:

    - {b sanity}: metrics are positive and finite; a feasible plan fits
      its board's BRAM.
    - {b cache-exact}: replaying the case twice through a fresh
      {!Mccm.Eval_session} (cold caches, then a whole-architecture hit)
      returns metrics bit-identical to the uncached evaluation.
    - {b sim-dominates}: the realistic simulator can only be slower than
      the analytical lower bound; byte counts replay exactly; discrete
      BRAM banks can only round buffers up.
    - {b ideal-exact}: under {!Sim.Sim_config.ideal} the simulator and
      the model agree within {!Envelope.exact}.
    - {b realistic-envelope}: per-metric relative error against the
      realistic simulator stays inside the documented envelope.
    - {b mono-bandwidth} / {b mono-dsps} / {b mono-bram}: metamorphic
      monotonicity laws under doubling one board resource.  When the
      builder's plan survives the scaling unchanged the law is provable
      and enforced strictly; when the heuristic planner re-plans, only a
      loose catastrophe bound ([replan_slack]) applies — the greedy
      planner is genuinely non-monotone (observed up to +37% latency for
      doubled DSPs on BRAM-starved boards), and that is a planner
      quality finding, not a model error.  docs/MODEL.md discusses the
      two tiers. *)

type ctx = {
  case : Case.t;
  built : Builder.Build.t;
  model_eval : Mccm.Evaluate.t;
  sim_real : Sim.Simulate.t;     (** {!Sim.Sim_config.default} *)
  sim_ideal : Sim.Simulate.t;    (** {!Sim.Sim_config.ideal} *)
}

type outcome = Pass | Skip of string | Fail of string

type t = { name : string; check : ctx -> outcome }

val context : Case.t -> ctx
(** Build and evaluate a case through both engines.
    @raise Invalid_argument when the case's recipe cannot materialise. *)

val sanity : t
val cache_exact : t
val sim_dominates : t
val ideal_exact : t
val realistic_envelope : Envelope.t -> t
val mono_bandwidth : t
val mono_dsps : replan_slack:float -> t
val mono_bram : replan_slack:float -> t

val default_suite :
  ?envelope:Envelope.t -> ?replan_slack:float -> unit -> t list
(** The suite above; [envelope] defaults to {!Envelope.default},
    [replan_slack] to [0.5]. *)
