type verdict = {
  case : Case.t;
  failures : (string * string) list;
  skipped : (string * string) list;
  errors : Envelope.errors option;
}

let ok v = v.failures = []

(* Per-invariant pass/fail/skip counters ("validate.<name>.pass" ...)
   and one span per invariant check, so a traced sweep shows which
   invariant dominates and `mccm --stats` totals its outcomes.  The
   get-or-create registry lookup is negligible next to the simulator
   runs behind each check. *)
let count_outcome name outcome =
  if Mccm_obs.Control.stats_on () then
    Mccm_obs.Metric.incr
      (Mccm_obs.Metric.counter
         (Printf.sprintf "validate.%s.%s" name outcome))

let check ~suite case =
  match
    Mccm_obs.span ~cat:"validate" "validate.context" (fun () ->
        Invariant.context case)
  with
  | exception (Invalid_argument msg | Failure msg) ->
    (* A case whose evaluation raises is itself a finding: the builder
       and both evaluators must accept every valid triple. *)
    count_outcome "evaluate" "fail";
    { case; failures = [ ("evaluate", msg) ]; skipped = []; errors = None }
  | ctx ->
    let failures = ref [] and skipped = ref [] in
    List.iter
      (fun (inv : Invariant.t) ->
        match
          Mccm_obs.span ~cat:"validate"
            ("validate." ^ inv.Invariant.name)
            (fun () -> inv.Invariant.check ctx)
        with
        | Invariant.Pass -> count_outcome inv.Invariant.name "pass"
        | Invariant.Skip reason ->
          count_outcome inv.Invariant.name "skip";
          skipped := (inv.Invariant.name, reason) :: !skipped
        | Invariant.Fail detail ->
          count_outcome inv.Invariant.name "fail";
          failures := (inv.Invariant.name, detail) :: !failures
        | exception (Invalid_argument msg | Failure msg) ->
          count_outcome inv.Invariant.name "fail";
          failures := (inv.Invariant.name, "raised: " ^ msg) :: !failures)
      suite;
    {
      case;
      failures = List.rev !failures;
      skipped = List.rev !skipped;
      errors =
        Some
          (Envelope.errors
             ~model:ctx.Invariant.model_eval.Mccm.Evaluate.metrics
             ~sim:ctx.Invariant.sim_real.Sim.Simulate.metrics);
    }

let pp ppf v =
  Format.fprintf ppf "%a: %s" Case.pp v.case
    (if ok v then "ok"
     else
       String.concat "; "
         (List.map (fun (n, d) -> Printf.sprintf "%s: %s" n d) v.failures))
