type verdict = {
  case : Case.t;
  failures : (string * string) list;
  skipped : (string * string) list;
  errors : Envelope.errors option;
}

let ok v = v.failures = []

let check ~suite case =
  match Invariant.context case with
  | exception (Invalid_argument msg | Failure msg) ->
    (* A case whose evaluation raises is itself a finding: the builder
       and both evaluators must accept every valid triple. *)
    { case; failures = [ ("evaluate", msg) ]; skipped = []; errors = None }
  | ctx ->
    let failures = ref [] and skipped = ref [] in
    List.iter
      (fun (inv : Invariant.t) ->
        match inv.Invariant.check ctx with
        | Invariant.Pass -> ()
        | Invariant.Skip reason ->
          skipped := (inv.Invariant.name, reason) :: !skipped
        | Invariant.Fail detail ->
          failures := (inv.Invariant.name, detail) :: !failures
        | exception (Invalid_argument msg | Failure msg) ->
          failures := (inv.Invariant.name, "raised: " ^ msg) :: !failures)
      suite;
    {
      case;
      failures = List.rev !failures;
      skipped = List.rev !skipped;
      errors =
        Some
          (Envelope.errors
             ~model:ctx.Invariant.model_eval.Mccm.Evaluate.metrics
             ~sim:ctx.Invariant.sim_real.Sim.Simulate.metrics);
    }

let pp ppf v =
  Format.fprintf ppf "%a: %s" Case.pp v.case
    (if ok v then "ok"
     else
       String.concat "; "
         (List.map (fun (n, d) -> Printf.sprintf "%s: %s" n d) v.failures))
