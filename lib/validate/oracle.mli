(** The differential-testing oracle: one case in, one verdict out.

    Evaluates the case through the analytical model and both simulator
    configurations, runs every invariant of the given suite, and
    collects failures rather than stopping at the first — a failing case
    usually violates related laws together, and the full list helps the
    shrinker preserve the interesting failure. *)

type verdict = {
  case : Case.t;
  failures : (string * string) list;  (** (invariant, detail), in suite order *)
  skipped : (string * string) list;   (** (invariant, reason) *)
  errors : Envelope.errors option;
      (** analytical-vs-realistic-sim errors; [None] when evaluation
          itself raised *)
}

val ok : verdict -> bool
(** No failures (skips are fine). *)

val check : suite:Invariant.t list -> Case.t -> verdict
(** Exceptions from materialisation or evaluation are reported as an
    ["evaluate"] failure — the toolchain must accept every valid
    triple. *)

val pp : Format.formatter -> verdict -> unit
