(* Rebuild a model with every channel count divided by [cdiv] and every
   spatial extent divided by [sdiv] (floors, clamped to 1).  Shape
   discontinuities between consecutive layers (pooling) scale along. *)
let scaled_model (m : Cnn.Model.t) ~cdiv ~sdiv =
  let sc c = max 1 (c / cdiv) in
  let sp x = max 1 (x / sdiv) in
  let shape (s : Cnn.Shape.t) =
    Cnn.Shape.v ~channels:(sc s.Cnn.Shape.channels)
      ~height:(sp s.Cnn.Shape.height) ~width:(sp s.Cnn.Shape.width)
  in
  let layers =
    List.init (Cnn.Model.num_layers m) (fun i ->
        let l = Cnn.Model.layer m i in
        let in_shape = shape l.Cnn.Layer.in_shape in
        Cnn.Layer.v ~index:i ~name:l.Cnn.Layer.name ~kind:l.Cnn.Layer.kind
          ~in_shape
          ~out_channels:
            (match l.Cnn.Layer.kind with
            | Cnn.Layer.Depthwise -> in_shape.Cnn.Shape.channels
            | _ -> sc l.Cnn.Layer.out_channels)
          ~kernel:l.Cnn.Layer.kernel ~stride:l.Cnn.Layer.stride
          ~padding:l.Cnn.Layer.padding
          ~extra_resident_elements:
            (l.Cnn.Layer.extra_resident_elements / (cdiv * sdiv * sdiv))
          ())
  in
  Cnn.Model.v ~name:m.Cnn.Model.name ~abbreviation:m.Cnn.Model.abbreviation
    ~layers

let truncated_model (m : Cnn.Model.t) ~keep =
  let layers = List.init keep (Cnn.Model.layer m) in
  Cnn.Model.v ~name:m.Cnn.Model.name ~abbreviation:m.Cnn.Model.abbreviation
    ~layers

(* Clamp an arch recipe to a model with [n] layers. *)
let clamp_arch arch ~n =
  if n < 2 then None
  else
    match arch with
    | Case.Segmented c -> Some (Case.Segmented (max 2 (min c n)))
    | Case.Segmented_rr c -> Some (Case.Segmented_rr (max 2 (min c n)))
    | Case.Hybrid c -> Some (Case.Hybrid (max 2 (min c n)))
    | Case.Custom { Arch.Custom.pipelined_layers; tail_boundaries } ->
      let f = max 1 (min pipelined_layers (n - 1)) in
      let bs = List.filter (fun b -> b > f && b < n) tail_boundaries in
      Some (Case.Custom { Arch.Custom.pipelined_layers = f; tail_boundaries = bs })

let scale_case (case : Case.t) ~cdiv ~sdiv =
  let model = scaled_model case.Case.model ~cdiv ~sdiv in
  Some { case with Case.model }

let truncate_case (case : Case.t) ~keep =
  if keep >= Cnn.Model.num_layers case.Case.model then None
  else
    let model = truncated_model case.Case.model ~keep in
    Option.map
      (fun arch -> { case with Case.model; arch })
      (clamp_arch case.Case.arch ~n:keep)

let shrink_board (case : Case.t) ~dsps_div ~bram_div ~bw_div =
  let b = case.Case.board in
  let dsps = max 16 (b.Platform.Board.dsps / dsps_div) in
  let bram = max 65536 (b.Platform.Board.bram_bytes / bram_div) in
  let bw = Float.max 1e8 (b.Platform.Board.bandwidth_bytes_per_sec /. bw_div) in
  if
    dsps = b.Platform.Board.dsps
    && bram = b.Platform.Board.bram_bytes
    && bw = b.Platform.Board.bandwidth_bytes_per_sec
  then None
  else
    Some
      {
        case with
        Case.board =
          Platform.Board.v ~name:b.Platform.Board.name ~dsps
            ~bram_mib:(float_of_int bram /. 1048576.0)
            ~bandwidth_gb_per_sec:(bw /. 1e9)
            ~clock_mhz:(b.Platform.Board.clock_hz /. 1e6)
            ~bytes_per_element:b.Platform.Board.bytes_per_element ();
      }

let fewer_ces (case : Case.t) =
  match case.Case.arch with
  | Case.Segmented c when c > 2 -> Some { case with Case.arch = Case.Segmented (c - 1) }
  | Case.Segmented_rr c when c > 2 ->
    Some { case with Case.arch = Case.Segmented_rr (c - 1) }
  | Case.Hybrid c when c > 2 -> Some { case with Case.arch = Case.Hybrid (c - 1) }
  | Case.Custom { Arch.Custom.pipelined_layers = f; tail_boundaries = bs } -> (
    match (List.rev bs, f) with
    | b :: rest, _ ->
      ignore b;
      Some
        {
          case with
          Case.arch =
            Case.Custom
              { Arch.Custom.pipelined_layers = f; tail_boundaries = List.rev rest };
        }
    | [], f when f > 1 ->
      Some
        {
          case with
          Case.arch =
            Case.Custom
              { Arch.Custom.pipelined_layers = f - 1; tail_boundaries = [] };
        }
    | [], _ -> None)
  | _ -> None

(* Candidate shrinking steps, most aggressive first: halve the network,
   then halve its tensors, then halve the board, then simplify the
   architecture, then chip off single layers. *)
let steps (case : Case.t) =
  let n = Cnn.Model.num_layers case.Case.model in
  (* A halving step that has already floored (channels at 1, board at its
     minimum) yields a case identical to the input; accepting it would
     spin the greedy loop without progress, so such no-ops are dropped. *)
  let changed (c : Case.t) =
    c.Case.model <> case.Case.model
    || c.Case.board <> case.Case.board
    || c.Case.arch <> case.Case.arch
  in
  List.filter_map
    (fun f ->
      match f () with
      | Some c when changed c -> Some c
      | Some _ | None -> None
      | exception Invalid_argument _ -> None)
    [
      (fun () -> truncate_case case ~keep:(max 2 (n / 2)));
      (fun () -> scale_case case ~cdiv:2 ~sdiv:1);
      (fun () -> scale_case case ~cdiv:1 ~sdiv:2);
      (fun () -> shrink_board case ~dsps_div:2 ~bram_div:1 ~bw_div:1.0);
      (fun () -> shrink_board case ~dsps_div:1 ~bram_div:2 ~bw_div:1.0);
      (fun () -> shrink_board case ~dsps_div:1 ~bram_div:1 ~bw_div:2.0);
      (fun () -> fewer_ces case);
      (fun () -> truncate_case case ~keep:(n - 1));
    ]

(* A shrunk case must reproduce at least one of the original failing
   invariants — shrinking onto a different failure would hide the
   finding being minimised. *)
let still_fails ~suite ~names case =
  let v = Oracle.check ~suite case in
  List.exists (fun (n, _) -> List.mem n names) v.Oracle.failures

let minimize ?(max_steps = 64) ~suite verdict =
  match verdict.Oracle.failures with
  | [] -> None
  | failures ->
    let names = List.map fst failures in
    let rec loop case budget =
      if budget <= 0 then case
      else
        match
          List.find_opt (still_fails ~suite ~names) (steps case)
        with
        | Some smaller ->
          loop { smaller with Case.label = smaller.Case.label ^ "'" } (budget - 1)
        | None -> case
    in
    let shrunk = loop verdict.Oracle.case max_steps in
    if shrunk == verdict.Oracle.case then None
    else Some (Oracle.check ~suite shrunk)
