(** Counterexample shrinking.

    A failing validation case from the randomized generator is rarely
    minimal; this module greedily applies size-reducing transformations
    — truncate the network, halve channel counts, halve spatial extents,
    halve board budgets, simplify the architecture — accepting a step
    only while the shrunk case still fails {e one of the same
    invariants} as the original (failing differently would hide the
    finding being minimised).  Steps that produce invalid layers or
    recipes are skipped, so the result is always a well-formed,
    corpus-serialisable case. *)

val steps : Case.t -> Case.t list
(** The candidate one-step reductions of a case, most aggressive first,
    with ill-formed candidates already filtered out.  Exposed for tests
    and shrink debugging. *)

val minimize :
  ?max_steps:int ->
  suite:Invariant.t list ->
  Oracle.verdict ->
  Oracle.verdict option
(** [minimize ~suite verdict] shrinks a failing verdict's case;
    [max_steps] (default 64) bounds accepted shrink steps.  Returns the
    re-checked verdict of the smaller case, or [None] when the verdict
    was passing or no step could shrink it. *)
