type failure = { verdict : Oracle.verdict; shrunk : Oracle.verdict option }

type t = {
  corpus_cases : int;
  generated_cases : int;
  failures : failure list;
  worst : Envelope.errors;
  elapsed_s : float;
}

let ok t = t.failures = []

let c_cases = Mccm_obs.Metric.counter "validate.cases"

let check_slice ~suite cases lo hi =
  Mccm_obs.span ~cat:"validate" "validate.check_slice"
    ~args:[ ("cases", string_of_int (hi - lo)) ]
  @@ fun () ->
  let out = ref [] in
  for i = lo to hi - 1 do
    Mccm_obs.Metric.incr c_cases;
    out := Oracle.check ~suite cases.(i) :: !out
  done;
  List.rev !out

let run ?(suite = Invariant.default_suite ()) ?(samples = 200) ?(seed = 42L)
    ?(domains = 1) ?clamp ?pool ?corpus () =
  Mccm_obs.span ~cat:"validate" "validate.sweep" @@ fun () ->
  if samples < 0 then invalid_arg "Sweep.run: negative sample count";
  if domains <= 0 then invalid_arg "Sweep.run: non-positive domain count";
  let started = Unix.gettimeofday () in
  (* The regression corpus replays first, sequentially: committed
     counterexamples are few, and a regression there should surface
     before any random search time is spent. *)
  let corpus_cases =
    match corpus with
    | None -> []
    | Some path -> (
      match Corpus.load path with
      | Ok cases -> cases
      | Error e -> failwith (Printf.sprintf "corpus %s: %s" path e))
  in
  let corpus_verdicts =
    Mccm_obs.span ~cat:"validate" "validate.corpus" (fun () ->
        List.map (Oracle.check ~suite) corpus_cases)
  in
  (* Cases are drawn from one PRNG stream before evaluation starts, so
     the sweep is a deterministic function of [seed] alone — never of
     the domain count (same discipline as {!Dse.Explore.run}). *)
  let cases =
    let rng = Util.Prng.create ~seed in
    let a = ref [] in
    for i = 0 to samples - 1 do
      a := Gen.case rng ~index:i :: !a
    done;
    Array.of_list (List.rev !a)
  in
  (* Cases carry their own model/board draws, so there is no session to
     share — the pooled map still amortises domain spawns across
     chunks (and across sweeps, when the caller passes a pool). *)
  let generated_verdicts =
    List.concat
      (Util.Parallel.map_pooled ?pool ?clamp ~domains ~n:samples
         (fun ~worker:_ ~chunk:_ ~lo ~hi -> check_slice ~suite cases lo hi))
  in
  let verdicts = corpus_verdicts @ generated_verdicts in
  let failures =
    List.filter_map
      (fun v ->
        if Oracle.ok v then None
        else Some { verdict = v; shrunk = Shrink.minimize ~suite v })
      verdicts
  in
  let worst =
    List.fold_left
      (fun acc (v : Oracle.verdict) ->
        match v.Oracle.errors with
        | Some e -> Envelope.worst acc e
        | None -> acc)
      Envelope.zero verdicts
  in
  {
    corpus_cases = List.length corpus_verdicts;
    generated_cases = List.length generated_verdicts;
    failures;
    worst;
    elapsed_s = Unix.gettimeofday () -. started;
  }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>validated %d corpus + %d generated cases in %.1f s@,\
     worst analytical-vs-sim error: %a@,%s@]" t.corpus_cases
    t.generated_cases t.elapsed_s Envelope.pp t.worst
    (if t.failures = [] then "all invariants hold"
     else Printf.sprintf "%d FAILING case(s)" (List.length t.failures));
  List.iter
    (fun f ->
      Format.fprintf ppf "@,FAIL %a" Oracle.pp f.verdict;
      match f.shrunk with
      | Some s ->
        Format.fprintf ppf "@,  shrunk to: %a@,%s" Oracle.pp s
          (Case.to_string s.Oracle.case)
      | None -> ())
    t.failures
