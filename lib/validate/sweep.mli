(** The differential-validation sweep driver.

    A sweep replays the committed regression corpus first (sequentially
    — those cases are few and a regression there must surface before
    any random search time is spent), then draws [samples] fresh cases
    from a seeded generator and checks every one against the invariant
    suite.  Generated cases are drawn from a single PRNG stream before
    evaluation begins, so the sweep result is a deterministic function
    of [seed] alone: running with [domains = 4] produces exactly the
    same verdicts as [domains = 1].  Failing cases are shrunk to
    minimal counterexamples after the parallel phase. *)

type failure = { verdict : Oracle.verdict; shrunk : Oracle.verdict option }

type t = {
  corpus_cases : int;
  generated_cases : int;
  failures : failure list;
  worst : Envelope.errors;
      (** componentwise worst analytical-vs-realistic-sim relative error
          over every case that evaluated cleanly *)
  elapsed_s : float;
}

val ok : t -> bool

val run :
  ?suite:Invariant.t list ->
  ?samples:int ->
  ?seed:int64 ->
  ?domains:int ->
  ?clamp:bool ->
  ?pool:Util.Parallel.Pool.t ->
  ?corpus:string ->
  unit ->
  t
(** [run ()] checks 200 seeded cases on one domain with the default
    suite and no corpus.  [domains] is clamped to
    [Domain.recommended_domain_count ()] unless [~clamp:false]; [pool]
    runs the chunks on a caller-owned persistent domain pool instead
    (then [domains]/[clamp] are ignored) — amortising domain spawns
    across repeated sweeps.  Raises [Failure] when [corpus] is given
    but unreadable — a committed corpus that cannot be replayed is
    itself a failure. *)

val pp : Format.formatter -> t -> unit
