(* Shared QCheck2 generators for the whole test suite.

   Domain values (models, boards, architectures, full validation cases)
   are drawn by bridging a QCheck2-generated seed into the library's own
   seeded generators ({!Validate.Gen}), so property tests and the
   differential-validation sweep sample the very same distribution.
   Plain scalar generators used by several suites live here too, so the
   ranges (layer indices, tile counts, Pareto coordinates) stay
   consistent across files. *)

open QCheck2

let seed = Gen.map Int64.of_int (Gen.int_bound 0x3FFFFFFF)

let prng = Gen.map (fun s -> Util.Prng.create ~seed:s) seed

(* ------------------------------------------------ domain generators *)

let model = Gen.map (fun rng -> Validate.Gen.model rng ~index:0) prng

let synthetic_model =
  Gen.map (fun rng -> Validate.Gen.synthetic_model rng ~index:0) prng

let board = Gen.map (fun rng -> Validate.Gen.board rng ~index:0) prng

let case = Gen.map (fun rng -> Validate.Gen.case rng ~index:0) prng

let arch_spec_for m =
  Gen.map
    (fun rng -> Validate.Gen.arch rng ~num_layers:(Cnn.Model.num_layers m))
    prng

(* A custom design-space spec for a fixed layer count, as Dse.Space
   draws them. *)
let custom_spec ~num_layers =
  Gen.map
    (fun rng ->
      Dse.Space.random_spec rng ~num_layers
        ~ce_counts:(List.filter (fun c -> c <= num_layers) [ 2; 3; 4; 5 ]))
    prng

(* ------------------------------------------------ scalar generators *)

(* A valid layer index of the ResNet-50 zoo model (53 layers), the
   reference workload of the tiling properties. *)
let res50_layer_index = Gen.int_range 0 52

let tile_count = Gen.int_range 1 200

(* (budget, workloads) for PE-distribution properties: budgets from a
   handful of PEs to a large board, over up to 8 engines. *)
let pe_budget_workloads =
  Gen.(
    pair (int_range 10 3000) (array_size (int_range 1 8) (int_range 0 1000)))

(* 2-D objective coordinates for Pareto properties. *)
let pareto_coords ~max_points =
  Gen.(
    list_size (int_range 1 max_points)
      (pair (float_range 0.0 10.0) (float_range 0.0 10.0)))
