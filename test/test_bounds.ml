(* Property suite for the Dse.Bounds admissibility contract.

   Every floor in Dse.Bounds claims to bound the exact model from below
   (cycles, latency) or above (throughput) for any design the builder
   produces under the default options.  The properties here check each
   clause of that claim against the exact evaluator on random
   (model, board, spec) triples drawn from the same seeded generators
   as the differential-validation sweep, so a counterexample shrinks to
   a single replayable seed.  Seeds that ever falsified a property live
   in [corpus/bounds.corpus] and are replayed on every run. *)

open QCheck2

let corpus_path =
  if Sys.file_exists "corpus/bounds.corpus" then "corpus/bounds.corpus"
  else "test/corpus/bounds.corpus"

(* ------------------------------------------------------ test cases *)

type case = {
  seed : int;
  model : Cnn.Model.t;
  cboard : Platform.Board.t;
  spec : Arch.Custom.spec;
}

(* One integer seed determines the whole case through a single PRNG
   stream — the QCheck2 shrinker works on the seed, and the corpus
   stores seeds. *)
let case_of_seed seed =
  let rng = Util.Prng.create ~seed:(Int64.of_int seed) in
  let model = Validate.Gen.model rng ~index:0 in
  let cboard = Validate.Gen.board rng ~index:0 in
  let n = Cnn.Model.num_layers model in
  let spec =
    Dse.Space.random_spec rng ~num_layers:n
      ~ce_counts:(List.filter (fun c -> c <= n) [ 2; 3; 4; 5; 6 ])
  in
  { seed; model; cboard; spec }

let print_case c =
  Printf.sprintf "seed %d: %s on %s, spec {f=%d; boundaries=[%s]}" c.seed
    c.model.Cnn.Model.name
    c.cboard.Platform.Board.name
    c.spec.Arch.Custom.pipelined_layers
    (String.concat ";"
       (List.map string_of_int c.spec.Arch.Custom.tail_boundaries))

let gen_case = Gen.map case_of_seed (Gen.int_bound 0x3FFFFFFF)

let exact c =
  Mccm.Evaluate.evaluate c.model c.cboard
    (Arch.Custom.arch_of_spec c.model c.spec)

let bounds_of c =
  Dse.Bounds.create (Cnn.Table.of_model c.model) c.cboard

(* Head range [0, f) and tail segments of a spec as (first, last)
   pairs, mirroring the evaluator's block order. *)
let tail_ranges ~num_layers spec =
  let f = spec.Arch.Custom.pipelined_layers in
  let starts = f :: spec.Arch.Custom.tail_boundaries in
  let ends =
    List.map (fun b -> b - 1) spec.Arch.Custom.tail_boundaries
    @ [ num_layers - 1 ]
  in
  List.combine starts ends

let run_prop ?(count = 60) name gen prop =
  QCheck_alcotest.to_alcotest
    (Test.make ~count ~name ~print:print_case gen prop)

(* ------------------------------------------------- the properties *)

(* 1. The whole-spec throughput bound never undercuts the exact
   throughput (admissible upper bound). *)
let prop_throughput_ub c =
  let e = exact c in
  let ub = Dse.Bounds.throughput_upper_bound (bounds_of c) c.spec in
  ub >= e.Mccm.Evaluate.metrics.Mccm.Metrics.throughput_ips

(* 2. The whole-spec latency bound never exceeds the exact latency
   (admissible lower bound). *)
let prop_latency_lb c =
  let e = exact c in
  let lb = Dse.Bounds.latency_lower_bound (bounds_of c) c.spec in
  lb <= e.Mccm.Evaluate.metrics.Mccm.Metrics.latency_s

(* 3. The split floors bound the exact interval's two sides separately:
   compute floor vs ii_compute_s, memory floor vs ii_memory_s. *)
let prop_split_floors c =
  let e = exact c in
  let t = bounds_of c in
  Dse.Bounds.compute_ii_floor_cycles t c.spec /. Dse.Bounds.clock_hz t
  <= e.Mccm.Evaluate.ii_compute_s
  && Dse.Bounds.mem_floor_s t <= e.Mccm.Evaluate.ii_memory_s

(* 4. Each per-block floor bounds that block's exact interval: the head
   floor vs the pipelined block, each segment floor vs its single-CE
   block.  This is the per-segment clause the composed bounds build
   on. *)
let prop_block_floors c =
  let e = exact c in
  let t = bounds_of c in
  let clock = Dse.Bounds.clock_hz t in
  let ctx = Dse.Bounds.context t ~ces:(Arch.Custom.total_ces c.spec) in
  let n = Cnn.Model.num_layers c.model in
  let f = c.spec.Arch.Custom.pipelined_layers in
  match e.Mccm.Evaluate.blocks with
  | [] -> false
  | head :: tails ->
    let tails_ok =
      List.for_all2
        (fun (first, last) (b : Mccm.Evaluate.block_eval) ->
          Dse.Bounds.segment_ii_floor ctx ~first ~last /. clock
          <= b.Mccm.Evaluate.ii_s)
        (tail_ranges ~num_layers:n c.spec)
        tails
    in
    Dse.Bounds.head_ii_floor ctx ~f /. clock <= head.Mccm.Evaluate.ii_s
    && tails_ok

(* 5. The monotone core: never above the tight leveled floor, and
   nondecreasing when the segment is extended on either side. *)
let prop_monotone_core c =
  let t = bounds_of c in
  let ctx = Dse.Bounds.context t ~ces:(Arch.Custom.total_ces c.spec) in
  let n = Cnn.Model.num_layers c.model in
  List.for_all
    (fun (first, last) ->
      let core = Dse.Bounds.segment_ii_floor_monotone ctx ~first ~last in
      core <= Dse.Bounds.segment_ii_floor ctx ~first ~last
      && (last + 1 >= n
         || core
            <= Dse.Bounds.segment_ii_floor_monotone ctx ~first ~last:(last + 1)
         )
      && (first = 0
         || core
            <= Dse.Bounds.segment_ii_floor_monotone ctx ~first:(first - 1)
                 ~last))
    (tail_ranges ~num_layers:n c.spec)

(* 6. Suffix composition: the boundary-free suffix floors never exceed
   what the spec's own concrete split pays — the slowest-segment floor
   bounds the max, the summed-latency floor bounds the sum. *)
let prop_suffix_composition c =
  let t = bounds_of c in
  let ctx = Dse.Bounds.context t ~ces:(Arch.Custom.total_ces c.spec) in
  let n = Cnn.Model.num_layers c.model in
  let tails = tail_ranges ~num_layers:n c.spec in
  let first = c.spec.Arch.Custom.pipelined_layers in
  let seg_floors =
    List.map
      (fun (first, last) -> Dse.Bounds.segment_ii_floor ctx ~first ~last)
      tails
  in
  Dse.Bounds.suffix_ii_floor ctx ~first ~segments:(List.length tails)
  <= List.fold_left Float.max 0.0 seg_floors
  && Dse.Bounds.suffix_latency_floor ctx ~first
     <= List.fold_left ( +. ) 0.0 seg_floors

(* 7. The global mediant floor holds for the whole design: no schedule
   beats work conservation over the board's PEs. *)
let prop_global_floor c =
  let e = exact c in
  let t = bounds_of c in
  Dse.Bounds.global_ii_cycles t /. Dse.Bounds.clock_hz t
  <= e.Mccm.Evaluate.ii_compute_s +. 1e-12 *. e.Mccm.Evaluate.ii_compute_s

(* ----------------------------------------------------- corpus replay *)

let corpus_seeds path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let rec go acc =
      match input_line ic with
      | exception End_of_file ->
        close_in ic;
        List.rev acc
      | line ->
        let line = String.trim line in
        if line = "" || line.[0] = '#' then go acc
        else go (int_of_string line :: acc)
    in
    go []
  end

let test_corpus_replay () =
  let seeds = corpus_seeds corpus_path in
  Alcotest.(check bool) "corpus non-empty" true (seeds <> []);
  List.iter
    (fun seed ->
      let c = case_of_seed seed in
      let checkp name p =
        if not (try p c with _ -> false) then
          Alcotest.failf "corpus seed %d violates %s (%s)" seed name
            (print_case c)
      in
      checkp "throughput upper bound" prop_throughput_ub;
      checkp "latency lower bound" prop_latency_lb;
      checkp "split floors" prop_split_floors;
      checkp "block floors" prop_block_floors;
      checkp "monotone core" prop_monotone_core;
      checkp "suffix composition" prop_suffix_composition;
      checkp "global floor" prop_global_floor)
    seeds

let () =
  Alcotest.run "bounds"
    [
      ( "admissibility",
        [
          run_prop "throughput upper bound >= exact" gen_case
            prop_throughput_ub;
          run_prop "latency lower bound <= exact" gen_case prop_latency_lb;
          run_prop "compute/memory floors bound their sides" gen_case
            prop_split_floors;
          run_prop "per-block floors bound block intervals" gen_case
            prop_block_floors;
          run_prop "global mediant floor" gen_case prop_global_floor;
        ] );
      ( "structure",
        [
          run_prop "monotone core: ordered and monotone" gen_case
            prop_monotone_core;
          run_prop "suffix floors compose" gen_case prop_suffix_composition;
        ] );
      ( "corpus",
        [ Alcotest.test_case "replay" `Quick test_corpus_replay ] );
    ]
